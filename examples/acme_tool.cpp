// A small Acme workbench: parse an architecture description (a file given
// on the command line, or the paper's built-in grid architecture), check
// it against the client-server style, evaluate Armani constraint
// expressions against it, and pretty-print it back.
//
//   acme_tool [file.acme] [--eval "<armani expression>"]
#include <fstream>
#include <iostream>
#include <sstream>

#include "acme/adl.hpp"
#include "acme/evaluator.hpp"
#include "acme/expr_parser.hpp"
#include "model/types.hpp"

int main(int argc, char** argv) {
  using namespace arcadia;

  std::string source = acme::grid_acme_source();
  std::vector<std::string> expressions = {
      "size(self.Components)",
      "forall c : ClientT in self.Components | averageLatency <= 2.0",
      "exists g : ServerGroupT in self.Components | g.replicationCount >= 3",
      "select one g : ServerGroupT in self.Components | "
      "connected(g, select one c : ClientT in self.Components | "
      "c.name == \"User3\")",
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--eval" && i + 1 < argc) {
      expressions.assign(1, argv[++i]);
    } else if (arg[0] != '-') {
      std::ifstream in(arg);
      if (!in) {
        std::cerr << "cannot open " << arg << "\n";
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    }
  }

  try {
    auto system = acme::parse_system(source);
    std::cout << "parsed system '" << system->name() << "': "
              << system->components().size() << " components, "
              << system->connectors().size() << " connectors, "
              << system->attachments().size() << " attachments\n\n";

    for (const model::Component* c : system->components()) {
      std::cout << "  component " << c->name() << " : " << c->type_name();
      if (c->has_representation()) {
        std::cout << " (representation with "
                  << c->representation_const().components().size()
                  << " members)";
      }
      std::cout << "\n";
    }

    model::Style style = model::client_server_style();
    auto problems = style.check_system(*system);
    std::cout << "\nstyle check (" << style.name() << "): ";
    if (problems.empty()) {
      std::cout << "OK\n";
    } else {
      std::cout << problems.size() << " problem(s)\n";
      for (const auto& p : problems) std::cout << "  - " << p << "\n";
    }

    acme::Evaluator evaluator;
    std::cout << "\nconstraint expressions:\n";
    for (const std::string& src : expressions) {
      acme::EvalContext ctx(*system);
      try {
        auto expr = acme::parse_expression(src);
        acme::EvalValue v = evaluator.evaluate(*expr, ctx);
        std::cout << "  " << src << "\n    => " << v.to_string() << "\n";
      } catch (const Error& e) {
        std::cout << "  " << src << "\n    !! " << e.what() << "\n";
      }
    }

    std::cout << "\npretty-printed:\n" << acme::print_system(*system);
  } catch (const ParseError& e) {
    std::cerr << "parse failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
