// Quickstart: run the paper's experiment end-to-end — build the Figure 6
// testbed, attach the adaptation framework, drive the Figure 7 schedule,
// and print what happened. A shortened horizon keeps it snappy; pass
// --full for the whole 1800 s run, --control to disable adaptation.
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace arcadia;
  bool full = false;
  bool adaptation = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--full") full = true;
    if (arg == "--control") adaptation = false;
    if (arg == "--verbose") Logger::instance().set_level(LogLevel::Info);
  }

  core::ExperimentOptions options;
  options.adaptation = adaptation;
  if (!full) {
    // Quick run: quiescent 60 s, bandwidth trouble until 300 s, done.
    options.scenario.horizon = SimTime::seconds(420);
    options.scenario.quiescent_end = SimTime::seconds(60);
    options.scenario.stress_start = SimTime::seconds(300);
    options.scenario.stress_end = SimTime::seconds(360);
  }

  std::cout << "Running " << (adaptation ? "adaptive" : "control")
            << " experiment (" << options.scenario.horizon.as_seconds()
            << " s simulated)...\n";
  core::ExperimentResult result = core::run_experiment(options);

  std::cout << "\nsimulated " << result.sim_events << " events; "
            << result.requests_issued << " requests issued, "
            << result.responses_completed << " responses completed\n\n";

  core::print_latency_figure(std::cout, result, SimTime::seconds(30));
  std::cout << "\n";
  core::print_load_figure(std::cout, result, SimTime::seconds(30));
  std::cout << "\n";
  core::print_repairs(std::cout, result);

  std::cout << "\nmean fraction of time above the 2 s bound: "
            << result.mean_fraction_above() << "\n";
  return 0;
}
