// Quickstart on the builder/registry API: pick a scenario from the
// ScenarioRegistry by name, run it with the adaptation framework, and
// print what happened.
//
//   quickstart                      # shortened paper experiment
//   quickstart --scenario flash-crowd
//   quickstart --list               # the scenario catalog
//   quickstart --policy worst-first # violation policy by registry name
//   quickstart --builder            # the 10-line FrameworkBuilder loop
//   quickstart --full --control --verbose
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/framework_builder.hpp"
#include "core/report.hpp"
#include "repair/registry.hpp"
#include "sim/scenario_registry.hpp"
#include "util/log.hpp"

namespace {

using namespace arcadia;

void print_catalog() {
  std::cout << "registered scenarios:\n";
  for (const std::string& name : sim::ScenarioRegistry::instance().names()) {
    std::cout << "  " << name << "\n      "
              << sim::ScenarioRegistry::instance().at(name).description
              << "\n";
  }
}

/// The README's minimal loop: registry scenario + FrameworkBuilder.
int run_builder_demo() {
  sim::Simulator s;
  sim::Testbed tb = sim::build_scenario(s, "flash-crowd");
  auto fw = core::FrameworkBuilder(s, tb).with_policy("worst-first")
                .build_started();
  tb.start();
  s.run_until(SimTime::seconds(900));
  std::cout << "flash-crowd: " << fw->engine().stats().committed
            << " repairs committed, " << fw->engine().stats().servers_added
            << " servers recruited\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "paper-fig6";
  std::string policy;
  bool full = false;
  bool adaptation = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--full") full = true;
    if (arg == "--control") adaptation = false;
    if (arg == "--verbose") Logger::instance().set_level(LogLevel::Info);
    if (arg == "--list") return print_catalog(), 0;
    if (arg == "--builder") return run_builder_demo();
    if (arg == "--scenario" && i + 1 < argc) scenario = argv[++i];
    if (arg == "--policy" && i + 1 < argc) policy = argv[++i];
  }

  core::ExperimentOptions options;
  try {
    options = core::options_for(scenario);
    if (!policy.empty()) repair::PolicyRegistry::instance().at(policy);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  options.adaptation = adaptation;
  options.framework.policy_name = policy;
  if (!full && scenario == "paper-fig6") {
    // Quick run: quiescent 60 s, bandwidth trouble until 300 s, done.
    options.scenario.horizon = SimTime::seconds(420);
    options.scenario.quiescent_end = SimTime::seconds(60);
    options.scenario.stress_start = SimTime::seconds(300);
    options.scenario.stress_end = SimTime::seconds(360);
  }

  std::cout << "Running scenario '" << scenario << "' ("
            << (adaptation ? "adaptive" : "control") << ", "
            << options.scenario.horizon.as_seconds() << " s simulated)...\n";
  core::ExperimentResult result = core::run_experiment(options);

  std::cout << "\nsimulated " << result.sim_events << " events; "
            << result.requests_issued << " requests issued, "
            << result.responses_completed << " responses completed\n\n";

  core::print_latency_figure(std::cout, result, SimTime::seconds(30));
  std::cout << "\n";
  core::print_load_figure(std::cout, result, SimTime::seconds(30));
  std::cout << "\n";
  core::print_repairs(std::cout, result);

  std::cout << "\nmean fraction of time above the 2 s bound: "
            << result.mean_fraction_above() << "\n";
  return 0;
}
