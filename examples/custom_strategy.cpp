// Authoring a custom repair strategy. The framework accepts any repair
// script in the Figure 5 language: this one ("conservative") never recruits
// spare servers — it only sheds load by moving clients — which keeps the
// operating cost flat at the price of worse stress-phase latency. The demo
// runs it against the default strategy and compares.
//
// This is the externalized-adaptation payoff the paper argues for:
// changing the adaptation policy is editing a script, not the application.
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

const char* conservative_script() {
  return R"script(
invariant r : averageLatency <= maxLatency !-> fixLatency(r);

strategy fixLatency(badClient : ClientT) = {
  if (fixBandwidth(badClient, roleOf(badClient))) {
    commit repair;
  } else if (shedLoad(badClient)) {
    commit repair;
  } else {
    abort NoCheapRepair;
  }
}

// Move a starved client to the best-bandwidth group (as in Figure 5).
tactic fixBandwidth(client : ClientT, role : ClientRoleT) : boolean = {
  if (role.bandwidth >= minBandwidth) {
    return false;
  }
  let goodSGrp : ServerGroupT = findGoodSGrp(client, minBandwidth);
  if (goodSGrp != nil) {
    client.move(goodSGrp);
    return true;
  }
  return false;
}

// Never add servers; just rebalance clients across the groups we pay for.
tactic shedLoad(client : ClientT) : boolean = {
  let current : ServerGroupT = groupOf(client);
  if (current == nil) {
    return false;
  }
  if (current.load <= maxServerLoad) {
    return false;
  }
  let target : ServerGroupT = findLessLoadedSGrp(client, current);
  if (target == nil) {
    return false;
  }
  client.move(target);
  return true;
}
)script";
}

void summarize(const char* name, const arcadia::core::ExperimentResult& r) {
  std::cout << name << ": fraction above 2 s = " << r.mean_fraction_above()
            << ", repairs committed = " << r.repair_stats.committed
            << ", servers added = " << r.repair_stats.servers_added
            << ", moves = " << r.repair_stats.moves << "\n";
}

}  // namespace

int main() {
  using namespace arcadia;
  std::cout << "=== Custom repair strategy: cost-conservative vs default ===\n\n";

  core::ExperimentOptions defaults;
  defaults.adaptation = true;
  core::ExperimentResult standard = core::run_experiment(defaults);

  core::ExperimentOptions conservative = defaults;
  conservative.framework.script_source = conservative_script();
  core::ExperimentResult cheap = core::run_experiment(conservative);

  summarize("default (grow + move)   ", standard);
  summarize("conservative (move only)", cheap);

  std::cout << "\nThe conservative policy spends zero extra servers";
  if (cheap.repair_stats.servers_added == 0) {
    std::cout << " (verified)";
  }
  std::cout << ",\nbut leaves more of the stress phase above the latency "
               "bound:\n\n";
  core::print_load_figure(std::cout, cheap, SimTime::seconds(120));
  return 0;
}
