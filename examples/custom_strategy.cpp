// Authoring a custom repair strategy through the repair registries — no
// engine subclassing, no rewiring. A "conservative" native strategy that
// never recruits spare servers (it only sheds load by moving clients) is
// registered under the constraint's handler name, and a custom violation
// policy under its own name; the framework picks both up by string key.
// The demo runs the default strategy and the conservative one and compares.
//
// This is the externalized-adaptation payoff the paper argues for:
// changing the adaptation policy is registering a strategy, not editing
// the application or the framework.
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "repair/registry.hpp"
#include "repair/strategy.hpp"

namespace {

using namespace arcadia;

/// Never add servers; rebalance across the groups we already pay for.
repair::CxxStrategy conservative_fix_latency() {
  repair::CxxStrategy s;
  s.name = "fixLatency";  // shadow the handler the constraints invoke
  s.policy = repair::StrategyPolicy::FirstSuccess;
  s.tactics.push_back({"fixBandwidth", repair::tactic_fix_bandwidth});
  s.tactics.push_back({"shedLoad", repair::tactic_fix_load_by_move});
  return s;
}

void summarize(const char* name, const core::ExperimentResult& r) {
  std::cout << name << ": fraction above 2 s = " << r.mean_fraction_above()
            << ", repairs committed = " << r.repair_stats.committed
            << ", servers added = " << r.repair_stats.servers_added
            << ", moves = " << r.repair_stats.moves << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Custom repair strategy via StrategyRegistry ===\n\n";

  // A custom violation policy, selectable by name anywhere a
  // FrameworkConfig travels: repair the *least* recently reported
  // violation last, i.e. keep the paper's first-reported order but skip
  // utilization constraints (cost trimming) entirely.
  repair::PolicyRegistry::instance().add_or_replace(
      "latency-only",
      [](const std::vector<const repair::Violation*>& candidates)
          -> std::size_t {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (candidates[i]->constraint->handler != "trimServers") return i;
        }
        return candidates.size();  // only trims pending: decline
      });

  core::ExperimentOptions defaults = core::options_for("paper-fig6");
  defaults.adaptation = true;
  defaults.framework.use_script = false;  // native registry strategies
  core::ExperimentResult standard = core::run_experiment(defaults);

  // Shadow the stock fixLatency with the conservative variant; every
  // engine assembled afterwards resolves the new one by name.
  repair::CxxStrategy original =
      repair::StrategyRegistry::instance().at("fixLatency");
  repair::StrategyRegistry::instance().add_or_replace(
      conservative_fix_latency());

  core::ExperimentOptions conservative = defaults;
  conservative.framework.policy_name = "latency-only";
  core::ExperimentResult cheap = core::run_experiment(conservative);

  repair::StrategyRegistry::instance().add_or_replace(original);  // restore

  summarize("default (grow + move)   ", standard);
  summarize("conservative (move only)", cheap);

  std::cout << "\nThe conservative policy spends zero extra servers";
  if (cheap.repair_stats.servers_added == 0) {
    std::cout << " (verified)";
  }
  std::cout << ",\nbut leaves more of the stress phase above the latency "
               "bound:\n\n";
  core::print_load_figure(std::cout, cheap, SimTime::seconds(120));
  return 0;
}
