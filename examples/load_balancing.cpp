// The paper's full experiment as a narrative demo: run the control and the
// repaired system over the 1800 s Figure 7 schedule, print the repair
// timeline as it happens, and finish with the control-vs-repair comparison
// (the headline of Section 5.2).
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace arcadia;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--verbose") {
      Logger::instance().set_level(LogLevel::Info);
    }
  }

  // The paper's scenario, by registry name: 1800 s, seed 42.
  core::ExperimentOptions options = core::options_for("paper-fig6");

  std::cout << "=== Grid storage load balancing (Cheng et al., HPDC'02) ===\n";
  std::cout << "Testbed: 5 routers, 11 machines, 10 Mbps links (Figure 6)\n";
  std::cout << "Schedule: quiescent 0-120 s; bandwidth competition vs C3/C4 "
               "120-600 s;\n          20 KB @ 2/s stress 600-1200 s; recovery "
               "1200-1800 s (Figure 7)\n\n";

  std::cout << "--- control run (no adaptation) ---\n";
  core::PairedResults pair = core::run_control_and_repair(options);
  std::cout << "requests: " << pair.control.requests_issued << ", responses: "
            << pair.control.responses_completed << "\n";
  std::cout << "worst queue: " << pair.control.max_queue_length()
            << " requests\n";

  std::cout << "\n--- adaptive run ---\n";
  core::print_repairs(std::cout, pair.repair);

  std::cout << "\n--- latency under repair (Figure 11 content) ---\n";
  core::print_latency_figure(std::cout, pair.repair, SimTime::seconds(120));

  core::print_comparison(std::cout, pair.control, pair.repair);

  std::cout << "\nPaper's conclusion: \"the latency experienced by clients "
               "was less than two\nseconds for most of the time [while] the "
               "control spent a considerable amount\nof time over two "
               "seconds\" — reproduced above.\n";
  return 0;
}
