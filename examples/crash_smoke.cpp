// CI crash-matrix smoke driver: runs one profile twice — once clean, once
// killed at seeded sim-times (including between a snapshot's tmp write and
// its rename) and restarted from durable state — and checks the durability
// invariants the journal exists to guarantee: the restored run survives
// every crash, re-converges, and ends bit-identical to the uncrashed run
// (same model digest, same repair count, byte-identical journal). On
// failure it records the crash seed (failing_crash_seed.txt) so the exact
// cell can be replayed; the durable dirs are left behind for arcreplay.
//
// Usage: crash_smoke <lossy-grid|flaky-ops|grid-4x16> [crash-seed]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/recovery.hpp"
#include "durability/io.hpp"
#include "durability/journal.hpp"
#include "fault/crash_plan.hpp"

using namespace arcadia;

namespace {

int fail(const std::string& profile, std::uint64_t seed,
         const std::string& why) {
  std::cerr << "CRASH SMOKE FAILED [" << profile << "]: " << why << "\n"
            << "failing crash seed: 0x" << std::hex << seed << std::dec
            << "\n";
  std::ofstream out("failing_crash_seed.txt");
  out << profile << " 0x" << std::hex << seed << std::dec << "  # " << why
      << "\n";
  return 1;
}

void wipe_dir(const std::string& dir) {
  durability::ensure_dir(dir);
  for (const std::string& name : durability::list_dir(dir)) {
    durability::remove_file(dir + "/" + name);
  }
}

core::RecoveryOptions profile_options(const std::string& profile,
                                      const std::string& dir) {
  core::ExperimentOptions base = core::options_for(profile);
  // Same CI-budget horizon compressions as fault_smoke, so the stress and
  // churn windows that force repairs still land inside the run.
  if (profile == "lossy-grid") {
    base.scenario.horizon = SimTime::seconds(500);
    base.scenario.stress_start = SimTime::seconds(150);
    base.scenario.stress_end = SimTime::seconds(330);
  } else if (profile == "flaky-ops") {
    base.scenario.horizon = SimTime::seconds(800);
  } else {
    // grid-4x16 keeps the fig-6 default stress at 600 s; pull it inside
    // the compressed horizon so the baseline actually repairs.
    base.scenario.horizon = SimTime::seconds(500);
    base.scenario.stress_start = SimTime::seconds(150);
    base.scenario.stress_end = SimTime::seconds(330);
  }
  core::RecoveryOptions opts;
  opts.dir = dir;
  opts.scenario = profile;
  opts.config = base.scenario;
  opts.framework = base.framework;
  opts.framework.durability.snapshot_period = SimTime::seconds(90);
  return opts;
}

int run_profile(const std::string& profile, std::uint64_t seed) {
  const std::string clean_dir = "crash_smoke-" + profile + "-clean.durable";
  const std::string crash_dir = "crash_smoke-" + profile + ".durable";
  wipe_dir(clean_dir);
  wipe_dir(crash_dir);

  // The uncrashed baseline: same scenario, same seeds, empty crash plan.
  core::RecoveryOptions clean_opts = profile_options(profile, clean_dir);
  const core::RecoveryResult clean = core::run_with_recovery(clean_opts);

  // The crashed run: three seeded kills inside the active window, every
  // second one targeting the snapshot rename gap.
  core::RecoveryOptions crash_opts = profile_options(profile, crash_dir);
  const SimTime horizon = crash_opts.config.horizon;
  crash_opts.crashes = fault::CrashPlan::seeded(
      seed, 3, SimTime::seconds(100), horizon - SimTime::seconds(60),
      /*mid_snapshot_every=*/2);
  const core::RecoveryResult crashed = core::run_with_recovery(crash_opts);

  if (crashed.crashes_survived == 0) {
    return fail(profile, seed, "no crash point fired before the horizon");
  }
  if (crashed.segments != crashed.crashes_survived + 1) {
    return fail(profile, seed,
                "segment count " + std::to_string(crashed.segments) +
                    " != crashes+1 (" +
                    std::to_string(crashed.crashes_survived + 1) + ")");
  }
  if (clean.repairs_committed == 0) {
    return fail(profile, seed, "baseline run committed no repairs — the "
                               "profile is not stressing anything");
  }
  if (crashed.model_digest != clean.model_digest) {
    return fail(profile, seed, "restored run's final model diverged from "
                               "the uncrashed run");
  }
  if (crashed.repairs_committed != clean.repairs_committed) {
    return fail(profile, seed,
                "repair count diverged: crashed " +
                    std::to_string(crashed.repairs_committed) + " vs clean " +
                    std::to_string(clean.repairs_committed));
  }
  // The replay-with-catchup discipline makes the surviving journal
  // byte-identical to the uncrashed one — the strongest oracle we have.
  const std::vector<std::uint8_t> clean_journal =
      durability::read_file(clean_dir + "/" + durability::kJournalFile);
  const std::vector<std::uint8_t> crash_journal =
      durability::read_file(crash_dir + "/" + durability::kJournalFile);
  if (clean_journal != crash_journal) {
    return fail(profile, seed,
                "journals differ: clean " +
                    std::to_string(clean_journal.size()) + " bytes, crashed " +
                    std::to_string(crash_journal.size()) + " bytes");
  }

  std::cout << "OK " << profile << ": survived " << crashed.crashes_survived
            << " crashes across " << crashed.segments << " segments, "
            << crashed.repairs_committed << " repairs committed, journal "
            << crash_journal.size() << " bytes bit-identical to clean run";
  for (const std::string& warning : crashed.warnings) {
    if (!warning.empty()) {
      std::cout << "\n  recovered past torn tail: " << warning;
    }
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: crash_smoke <lossy-grid|flaky-ops|grid-4x16> "
                 "[crash-seed]\n";
    return 2;
  }
  const std::string profile = argv[1];
  std::uint64_t seed = 0xC4A5ECAFEULL;
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 0);

  if (profile != "lossy-grid" && profile != "flaky-ops" &&
      profile != "grid-4x16") {
    std::cerr << "unknown crash profile: " << profile << "\n";
    return 2;
  }
  try {
    return run_profile(profile, seed);
  } catch (const std::exception& e) {
    return fail(profile, seed, std::string("exception: ") + e.what());
  }
}
