// The monitoring infrastructure by itself (Figure 4): probes observing a
// running system publish on the probe bus; gauges interpret observations
// as architectural properties and report on the gauge bus; a consumer
// prints what the model layer would see. No repairs — this is the reusable
// substrate the paper argues should be shared across applications.
#include <iomanip>
#include <iostream>

#include "events/bus.hpp"
#include "monitor/gauge.hpp"
#include "monitor/gauge_manager.hpp"
#include "monitor/probes.hpp"
#include "monitor/topics.hpp"
#include "remos/remos.hpp"
#include "sim/scenario_registry.hpp"

int main() {
  using namespace arcadia;
  std::cout << "=== Monitoring infrastructure demo (probes -> gauges -> "
               "consumer) ===\n\n";

  sim::Simulator sim;
  sim::ScenarioConfig cfg = sim::scenario_defaults("paper-fig6");
  cfg.horizon = SimTime::seconds(300);
  cfg.quiescent_end = SimTime::seconds(120);  // competition starts at 120 s
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6", cfg);

  remos::RemosService remos(sim, *tb.net);
  events::SimEventBus probe_bus(sim, events::fixed_delay(SimTime::millis(5)));
  events::SimEventBus gauge_bus(
      sim, events::network_delay(*tb.net, SimTime::millis(50), false));

  // Probes observe the running system.
  monitor::ProbeSet probes = monitor::make_standard_probes(
      sim, *tb.app, remos, probe_bus, SimTime::seconds(1));
  probes.start_all();

  // Gauges interpret probe streams as model properties.
  monitor::GaugeManagerConfig gauge_cfg;
  monitor::GaugeManager gauges(sim, probe_bus, gauge_bus, gauge_cfg);
  gauges.deploy(monitor::make_latency_gauge(
      sim, "User3", tb.app->client_node(tb.clients[2]), SimTime::seconds(30)));
  gauges.deploy(monitor::make_bandwidth_gauge(
      sim, "User3", "Conn_User3.clientSide",
      tb.app->client_node(tb.clients[2])));
  gauges.deploy(monitor::make_load_gauge(sim, "ServerGrp1",
                                         tb.app->queue_node(),
                                         SimTime::seconds(30)));

  // A gauge consumer — what the architecture manager subscribes as.
  std::cout << std::left << std::setw(9) << "time_s" << std::setw(28)
            << "element.property" << "value\n";
  gauge_bus.subscribe(
      events::Filter::topic(monitor::topics::kGaugeReport),
      [&](const events::Notification& n) {
        static SimTime last_print = SimTime::seconds(-100);
        if (sim.now() - last_print < SimTime::seconds(10)) return;
        last_print = sim.now();
        std::cout << std::left << std::setw(9) << sim.now().as_seconds()
                  << std::setw(28)
                  << n.get(monitor::topics::kAttrElement).as_string() + "." +
                         n.get(monitor::topics::kAttrProperty).as_string()
                  << n.get(monitor::topics::kAttrValue).as_double() << "\n";
      },
      tb.manager_node);

  tb.start();
  sim.run_until(cfg.horizon);

  std::cout << "\nbus stats: probe bus published " << probe_bus.stats().published
            << ", gauge bus delivered " << gauge_bus.stats().delivered << "\n";
  std::cout << "watch the latency/bandwidth values collapse after the "
               "competition starts at 120 s —\nexactly the signal the "
               "architecture manager repairs from.\n";
  return 0;
}
