// CI fault-matrix smoke driver: runs one fault profile end to end and
// checks the robustness invariants the fault plane exists to guarantee —
// faults were really injected, the loop absorbed them (retries, verdict
// holds, health transitions), and the run converged. On failure it prints
// and records the fault seed (failing_fault_seed.txt) so the exact cell
// can be replayed: the same (workload seed, fault seed) pair reproduces
// the run bit for bit.
//
// Usage: fault_smoke <lossy-grid|flaky-ops|crashy-fleet> [fault-seed]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/framework_builder.hpp"
#include "core/report.hpp"
#include "sim/scenario_registry.hpp"

using namespace arcadia;

namespace {

int fail(const std::string& profile, std::uint64_t seed,
         const std::string& why) {
  std::cerr << "FAULT SMOKE FAILED [" << profile << "]: " << why << "\n"
            << "failing fault seed: 0x" << std::hex << seed << std::dec
            << "\n";
  std::ofstream out("failing_fault_seed.txt");
  out << profile << " 0x" << std::hex << seed << std::dec << "  # " << why
      << "\n";
  return 1;
}

/// lossy-grid / flaky-ops: one adaptive experiment over the registered
/// scenario, horizon compressed to CI budget but still covering the
/// stress/churn windows that force repairs.
int run_scenario_profile(const std::string& profile, std::uint64_t seed) {
  core::ExperimentOptions opt = core::options_for(profile);
  opt.scenario.fault.seed = seed;
  if (profile == "lossy-grid") {
    opt.scenario.horizon = SimTime::seconds(500);
    opt.scenario.stress_start = SimTime::seconds(150);
    opt.scenario.stress_end = SimTime::seconds(330);
  } else {
    // Outside the churn's outage windows (240-360, 540-660, 840-960): an
    // outage in progress at the horizon leaves runtime actives legitimately
    // below the model, which is the environment's doing, not the loop's.
    opt.scenario.horizon = SimTime::seconds(800);
  }
  const core::ExperimentResult r = core::run_experiment(opt);

  core::write_fault_stats_csv(std::cout, r);
  const auto& fs = r.fault_stats;
  const std::uint64_t injected = fs.reports_dropped + fs.reports_delayed +
                                 fs.reports_duplicated + fs.ops_transient +
                                 fs.ops_permanent + fs.ops_stalled;
  if (injected == 0) {
    return fail(profile, seed, "no faults injected — the plane is dead");
  }
  if (r.repairs.empty()) {
    return fail(profile, seed, "no repairs fired — nothing was stressed");
  }
  if (!r.consistency_issues.empty()) {
    std::string why = "model/runtime diverged:";
    for (const std::string& issue : r.consistency_issues) why += " " + issue;
    return fail(profile, seed, why);
  }
  if (r.repair_stats.committed == 0) {
    return fail(profile, seed, "no repair ever committed under faults");
  }
  std::cout << "OK " << profile << ": " << injected << " faults injected, "
            << r.repair_stats.committed << " repairs committed ("
            << r.repair_stats.ops_retried << " op retries, "
            << r.verdict_holds << " verdict holds)\n";
  return 0;
}

/// crashy-fleet: a 3-tenant fleet where every tenant crashes mid-run; the
/// health state machine must walk the dark shards to quarantined and back
/// to healthy once their gauges report again.
int run_crashy_fleet(std::uint64_t seed) {
  sim::Simulator sim;
  core::FleetOptions opt;
  opt.scenario = "fleet-4x16";
  opt.tenants = 3;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults("fleet-4x16");
  opt.config.grid.groups = 2;
  opt.config.grid.clients = 8;
  opt.config.grid.spares = 1;
  opt.config.fleet.phase_shift = SimTime::seconds(30);
  opt.config.fault.enabled = true;
  opt.config.fault.seed = seed;
  opt.config.fault.fleet.tenant_crash = 1.0;
  opt.config.fault.fleet.crash_min = SimTime::seconds(100);
  opt.config.fault.fleet.crash_max = SimTime::seconds(140);
  opt.config.fault.fleet.crash_duration = SimTime::seconds(90);
  auto fleet = core::FrameworkBuilder::build_fleet(sim, opt);
  fleet->start();
  sim.run_until(SimTime::seconds(400));

  std::uint64_t crashes = 0;
  for (std::size_t t = 0; t < fleet->tenant_count(); ++t) {
    if (const fault::FaultPlane* plane =
            fleet->tenant(t).framework->fault_plane()) {
      crashes += plane->stats().tenant_crashes;
    }
  }
  core::FleetManager* mgr = fleet->manager();
  if (crashes == 0) {
    return fail("crashy-fleet", seed, "no tenant crash was injected");
  }
  if (!mgr || mgr->stats().shards_quarantined == 0) {
    return fail("crashy-fleet", seed,
                "no shard was quarantined despite every tenant crashing");
  }
  for (std::size_t s = 0; s < mgr->shard_count(); ++s) {
    if (mgr->shard_health(s) != core::ShardHealth::Healthy) {
      return fail("crashy-fleet", seed,
                  "shard " + std::to_string(s) +
                      " did not recover to healthy by the horizon");
    }
  }
  std::cout << "OK crashy-fleet: " << crashes << " tenant crashes, "
            << mgr->stats().shards_quarantined
            << " quarantine transitions, all shards healthy again\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fault_smoke <lossy-grid|flaky-ops|crashy-fleet> "
                 "[fault-seed]\n";
    return 2;
  }
  const std::string profile = argv[1];
  std::uint64_t seed = 0xFA117C0DEULL;
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 0);

  try {
    if (profile == "crashy-fleet") return run_crashy_fleet(seed);
    if (profile == "lossy-grid" || profile == "flaky-ops") {
      return run_scenario_profile(profile, seed);
    }
    std::cerr << "unknown fault profile: " << profile << "\n";
    return 2;
  } catch (const std::exception& e) {
    return fail(profile, seed, std::string("exception: ") + e.what());
  }
}
