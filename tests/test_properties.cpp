// Cross-seed property tests over the full adaptation loop: invariants that
// must hold for ANY workload realization, not just the calibrated one.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace arcadia::core {
namespace {

ExperimentOptions sweep_options(std::uint64_t seed) {
  ExperimentOptions opt;
  opt.scenario.seed = seed;
  opt.scenario.horizon = SimTime::seconds(700);
  opt.scenario.quiescent_end = SimTime::seconds(60);
  opt.scenario.stress_start = SimTime::seconds(400);
  opt.scenario.stress_end = SimTime::seconds(550);
  return opt;
}

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, AdaptationNeverLosesToControl) {
  ExperimentOptions opt = sweep_options(GetParam());
  PairedResults pair = run_control_and_repair(opt);
  // The throttled clients are above the bound for most of the bandwidth
  // phase in the control; adaptation must cut the mean materially.
  EXPECT_GT(pair.control.mean_fraction_above(), 0.1);
  EXPECT_LT(pair.repair.mean_fraction_above(),
            pair.control.mean_fraction_above());
}

TEST_P(SeedSweepTest, RepairsAreWellFormed) {
  ExperimentOptions opt = sweep_options(GetParam());
  opt.adaptation = true;
  ExperimentResult r = run_experiment(opt);
  ASSERT_FALSE(r.repairs.empty());
  for (const auto& rec : r.repairs) {
    EXPECT_TRUE(rec.committed || rec.aborted);
    EXPECT_FALSE(rec.committed && rec.aborted && rec.abort_reason.empty());
    if (rec.finished && rec.committed) {
      EXPECT_GE(rec.completed, rec.started);
      // Every committed repair did something at the model layer.
      EXPECT_FALSE(rec.ops.empty());
      // Cost accounting adds up to no more than the duration.
      SimTime parts = rec.decision_cost + rec.query_cost + rec.op_cost +
                      rec.gauge_cost;
      EXPECT_LE(parts, rec.duration() + SimTime::millis(1));
    }
  }
  // Repairs never overlap (the engine serializes them).
  auto windows = r.repair_windows;
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].first, windows[i - 1].second);
  }
}

TEST_P(SeedSweepTest, ModelAndRuntimeStayConsistent) {
  ExperimentOptions opt = sweep_options(GetParam());
  opt.adaptation = true;
  ExperimentResult r = run_experiment(opt);
  // Skip the check only if a repair was still mid-flight at the horizon
  // (the translator may not have run yet for it).
  for (const auto& rec : r.repairs) {
    if (rec.committed && !rec.finished) return;
  }
  EXPECT_TRUE(r.consistency_issues.empty())
      << (r.consistency_issues.empty() ? "" : r.consistency_issues.front());
}

TEST_P(SeedSweepTest, ConservationOfRequests) {
  ExperimentOptions opt = sweep_options(GetParam());
  opt.adaptation = true;
  ExperimentResult r = run_experiment(opt);
  EXPECT_LE(r.responses_completed, r.requests_issued);
  // The system keeps up overall: the vast majority of requests complete.
  EXPECT_GT(static_cast<double>(r.responses_completed),
            0.8 * static_cast<double>(r.requests_issued));
  // Raw latency samples equal completed responses.
  std::size_t samples = 0;
  for (const auto& c : r.clients) samples += c.raw_latency.size();
  EXPECT_EQ(samples, r.responses_completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(11, 42, 137, 1009, 90210));

}  // namespace
}  // namespace arcadia::core
