// ScenarioRegistry: the catalog carries the built-in library, look-ups
// fail loudly, and — the load-bearing property — every registered scenario
// builds, runs under the adaptation framework, and keeps the
// model<->runtime correspondence clean.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "sim/scenario_library.hpp"
#include "sim/scenario_registry.hpp"

namespace arcadia::sim {
namespace {

TEST(ScenarioRegistryTest, CatalogHasTheBuiltinLibrary) {
  ScenarioRegistry& reg = ScenarioRegistry::instance();
  EXPECT_GE(reg.size(), 4u);
  for (const char* name : {"paper-fig6", "paper-fig6-bidir", "grid-4x16",
                           "flash-crowd", "server-churn"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_FALSE(reg.at(name).description.empty()) << name;
  }
  std::vector<std::string> names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioRegistryTest, UnknownScenarioThrowsWithCatalog) {
  try {
    ScenarioRegistry::instance().at("no-such-scenario");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("paper-fig6"), std::string::npos);
  }
}

TEST(ScenarioRegistryTest, DuplicateAddThrowsButReplaceWorks) {
  ScenarioSpec spec;
  spec.name = "test-duplicate-probe";
  spec.description = "registered by test_scenario_registry";
  spec.build = [](Simulator& sim, const ScenarioConfig& config) {
    return build_testbed(sim, config);
  };
  ScenarioRegistry& reg = ScenarioRegistry::instance();
  if (!reg.contains(spec.name)) reg.add(spec);
  EXPECT_THROW(reg.add(spec), Error);
  spec.description = "replaced";
  reg.add_or_replace(spec);
  EXPECT_EQ(reg.at(spec.name).description, "replaced");
}

TEST(ScenarioRegistryTest, DefaultsAreScenarioSpecific) {
  EXPECT_FALSE(scenario_defaults("paper-fig6").comp_bidirectional);
  EXPECT_TRUE(scenario_defaults("paper-fig6-bidir").comp_bidirectional);
  EXPECT_DOUBLE_EQ(scenario_defaults("server-churn").normal_rate_hz, 1.5);
  EXPECT_DOUBLE_EQ(scenario_defaults("flash-crowd").comp_sg1_phase1_mbps, 0.0);
}

TEST(ScenarioRegistryTest, GridShapeIsParameterized) {
  Simulator sim;
  ScenarioConfig cfg = scenario_defaults("grid-4x16");
  cfg.grid.groups = 2;
  cfg.grid.servers_per_group = 1;
  cfg.grid.clients = 4;
  cfg.grid.spares = 1;
  Testbed tb = build_scenario(sim, "grid-4x16", cfg);
  EXPECT_EQ(tb.app->group_count(), 2u);
  EXPECT_EQ(tb.app->server_count(), 3u);  // 2 active + 1 spare
  EXPECT_EQ(tb.app->client_count(), 4u);
  EXPECT_EQ(tb.groups.size(), 2u);
  EXPECT_EQ(tb.spares.size(), 1u);
  EXPECT_EQ(tb.app->spare_servers().size(), 1u);
}

TEST(ScenarioRegistryTest, FaultDriverChurnsServers) {
  Simulator sim;
  ScenarioConfig cfg = scenario_defaults("server-churn");
  cfg.churn.first_outage = SimTime::seconds(10);
  cfg.churn.period = SimTime::seconds(30);
  cfg.churn.outage = SimTime::seconds(10);
  cfg.churn.outages = 2;
  Testbed tb = build_scenario(sim, "server-churn", cfg);
  ASSERT_TRUE(tb.faults);
  int downs = 0;
  int ups = 0;
  tb.app->on_server_state = [&](ServerIdx, bool active) {
    active ? ++ups : ++downs;
  };
  tb.start();
  // Mid-outage (10..20 s): the victim is down, must NOT look like a
  // recruitable spare, and cannot be activated behind the fault's back.
  sim.run_until(SimTime::seconds(15));
  const ServerIdx victim = tb.sg1_servers[0];
  EXPECT_FALSE(tb.app->server_active(victim));
  EXPECT_TRUE(tb.app->server_failed(victim));
  std::vector<ServerIdx> spares = tb.app->spare_servers();
  EXPECT_EQ(std::count(spares.begin(), spares.end(), victim), 0);
  EXPECT_THROW(tb.app->activate_server(victim), SimError);
  sim.run_until(SimTime::seconds(90));
  EXPECT_EQ(tb.faults->outages_started(), 2u);
  EXPECT_EQ(tb.faults->outages_ended(), 2u);
  EXPECT_EQ(downs, 2);
  EXPECT_EQ(ups, 2);
  EXPECT_EQ(tb.app->active_servers(tb.sg1).size(), 3u);  // all recovered
}

// The acceptance gate: every registered scenario builds, runs 60
// sim-seconds under the full adaptation framework, makes progress, and
// ends with the architectural model matching the runtime exactly.
TEST(ScenarioRegistryTest, AllScenariosRunAdaptedAndStayConsistent) {
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    if (name.rfind("test-", 0) == 0) continue;  // fixtures from other tests
    core::ExperimentOptions options = core::options_for(name);
    options.adaptation = true;
    options.scenario.horizon = SimTime::seconds(60);
    core::ExperimentResult result = core::run_experiment(options);
    EXPECT_GT(result.responses_completed, 0u) << name;
    EXPECT_TRUE(result.consistency_issues.empty())
        << name << ": " << result.consistency_issues.front();
  }
}

}  // namespace
}  // namespace arcadia::sim
