#include <gtest/gtest.h>

#include "model/system.hpp"
#include "model/transaction.hpp"
#include "model/types.hpp"
#include "util/rng.hpp"

namespace arcadia::model {
namespace {

/// The paper's Figure 2 architecture in miniature: one group with a
/// representation of replicas, one client, one connector.
System make_small_system() {
  System sys("GridStorage");
  Component& grp = sys.add_component("ServerGrp1", cs::kServerGroupT);
  grp.set_property(cs::kPropLoad, PropertyValue(0.0));
  grp.set_property(cs::kPropReplication, PropertyValue(2));
  grp.add_port("provide", cs::kProvidePortT);
  System& rep = grp.representation();
  rep.add_component("Server1", cs::kServerT);
  rep.add_component("Server2", cs::kServerT);

  Component& client = sys.add_component("User1", cs::kClientT);
  client.set_property(cs::kPropAvgLatency, PropertyValue(0.1));
  client.set_property(cs::kPropMaxLatency, PropertyValue(2.0));
  client.add_port("request", cs::kRequestPortT);

  Connector& conn = sys.add_connector("Conn_User1", cs::kConnT);
  conn.add_role("clientSide", cs::kClientRoleT)
      .set_property(cs::kPropBandwidth, PropertyValue(1e7));
  conn.add_role("serverSide", cs::kServerRoleT);
  sys.attach({"User1", "request", "Conn_User1", "clientSide"});
  sys.attach({"ServerGrp1", "provide", "Conn_User1", "serverSide"});
  return sys;
}

TEST(ElementTest, PropertyAccessAndDefaults) {
  Component c("x", cs::kClientT);
  EXPECT_FALSE(c.has_property("p"));
  EXPECT_THROW(c.property("p"), ModelError);
  EXPECT_DOUBLE_EQ(c.property_or("p", PropertyValue(7.0)).as_double(), 7.0);
  c.set_property("p", PropertyValue(1.5));
  EXPECT_DOUBLE_EQ(c.property("p").as_double(), 1.5);
  EXPECT_TRUE(c.clear_property("p"));
  EXPECT_FALSE(c.clear_property("p"));
}

TEST(ElementTest, PortsAndRoles) {
  Component c("x", cs::kClientT);
  c.add_port("request", cs::kRequestPortT);
  EXPECT_TRUE(c.has_port("request"));
  EXPECT_THROW(c.add_port("request", cs::kRequestPortT), ModelError);
  EXPECT_EQ(c.ports().size(), 1u);
  c.remove_port("request");
  EXPECT_FALSE(c.has_port("request"));
  EXPECT_THROW(c.remove_port("request"), ModelError);

  Connector k("k", cs::kConnT);
  k.add_role("r", cs::kClientRoleT);
  EXPECT_TRUE(k.has_role("r"));
  EXPECT_THROW(k.add_role("r", cs::kClientRoleT), ModelError);
}

TEST(SystemTest, ConnectedAndAttached) {
  System sys = make_small_system();
  EXPECT_TRUE(sys.connected("User1", "ServerGrp1"));
  EXPECT_TRUE(sys.connected("ServerGrp1", "User1"));
  EXPECT_TRUE(sys.attached("User1", "request", "Conn_User1", "clientSide"));
  EXPECT_FALSE(sys.attached("User1", "request", "Conn_User1", "serverSide"));
}

TEST(SystemTest, NeighborsAndConnectorsOf) {
  System sys = make_small_system();
  auto neighbors = sys.neighbors("User1");
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0]->name(), "ServerGrp1");
  EXPECT_EQ(sys.connectors_of("User1").size(), 1u);
  EXPECT_EQ(sys.components_on("Conn_User1").size(), 2u);
}

TEST(SystemTest, AttachValidatesEndpoints) {
  System sys = make_small_system();
  EXPECT_THROW(sys.attach({"nope", "request", "Conn_User1", "clientSide"}),
               ModelError);
  EXPECT_THROW(sys.attach({"User1", "nope", "Conn_User1", "clientSide"}),
               ModelError);
  EXPECT_THROW(sys.attach({"User1", "request", "nope", "clientSide"}),
               ModelError);
  EXPECT_THROW(sys.attach({"User1", "request", "Conn_User1", "nope"}),
               ModelError);
  // Duplicate attachment rejected.
  EXPECT_THROW(sys.attach({"User1", "request", "Conn_User1", "clientSide"}),
               ModelError);
}

TEST(SystemTest, RemoveComponentDropsItsAttachments) {
  System sys = make_small_system();
  sys.remove_component("User1");
  EXPECT_FALSE(sys.has_component("User1"));
  EXPECT_EQ(sys.attachments_on("Conn_User1").size(), 1u);  // group side stays
}

TEST(SystemTest, StructuralViolationsDetected) {
  System sys = make_small_system();
  EXPECT_TRUE(sys.structural_violations().empty());
  // Sneak in a dangling attachment by removing the port afterwards.
  sys.component("User1").remove_port("request");
  auto violations = sys.structural_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("missing port"), std::string::npos);
}

TEST(SystemTest, CloneIsDeepAndEqualShaped) {
  System sys = make_small_system();
  auto copy = sys.clone();
  // Mutating the copy must not affect the original.
  copy->component("User1").set_property(cs::kPropAvgLatency,
                                        PropertyValue(9.0));
  copy->component("ServerGrp1").representation().remove_component("Server1");
  EXPECT_DOUBLE_EQ(sys.component("User1").property(cs::kPropAvgLatency).as_double(),
                   0.1);
  EXPECT_TRUE(sys.component("ServerGrp1")
                  .representation_const()
                  .has_component("Server1"));
}

TEST(StyleTest, ClientServerStyleChecksCleanSystem) {
  System sys = make_small_system();
  Style style = client_server_style();
  auto problems = style.check_system(sys);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(StyleTest, DetectsMissingRequiredProperty) {
  System sys = make_small_system();
  Style style = client_server_style();
  sys.component("User1").clear_property(cs::kPropMaxLatency);
  auto problems = style.check_system(sys);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("maxLatency"), std::string::npos);
}

TEST(StyleTest, DetectsKindMismatchAndUnknownType) {
  Style style = client_server_style();
  Connector bad("k", cs::kClientT);  // component type on a connector
  EXPECT_FALSE(style.check_element(bad).empty());
  Component unknown("u", "NoSuchT");
  EXPECT_FALSE(style.check_element(unknown).empty());
}

TEST(StyleTest, DetectsPropertyTypeMismatch) {
  Style style = client_server_style();
  Component c("x", cs::kClientT);
  c.set_property(cs::kPropMaxLatency, PropertyValue("two seconds"));
  auto problems = style.check_element(c);
  ASSERT_FALSE(problems.empty());
}

TEST(StyleTest, ApplyDefaultsFillsGaps) {
  Style style = client_server_style();
  Component c("x", cs::kClientT);
  style.apply_defaults(c);
  EXPECT_TRUE(c.has_property(cs::kPropAvgLatency));
  EXPECT_DOUBLE_EQ(c.property(cs::kPropMaxLatency).as_double(), 2.0);
}

TEST(StyleTest, IntAcceptedWhereDoubleDeclared) {
  Style style = client_server_style();
  Component c("x", cs::kClientT);
  c.set_property(cs::kPropMaxLatency, PropertyValue(2));  // int literal
  style.apply_defaults(c);
  EXPECT_TRUE(style.check_element(c).empty());
}

// ---- transactions ----

TEST(TransactionTest, CommitKeepsChanges) {
  System sys = make_small_system();
  Transaction txn(sys);
  txn.add_component({"ServerGrp1"}, "Server3", cs::kServerT);
  txn.set_property({}, ElementKind::Component, "ServerGrp1", "",
                   cs::kPropReplication, PropertyValue(3));
  txn.commit();
  EXPECT_TRUE(sys.component("ServerGrp1")
                  .representation_const()
                  .has_component("Server3"));
  EXPECT_EQ(sys.component("ServerGrp1").property(cs::kPropReplication).as_int(),
            3);
  EXPECT_EQ(txn.records().size(), 2u);
}

TEST(TransactionTest, RollbackRestoresEverything) {
  System sys = make_small_system();
  {
    Transaction txn(sys);
    txn.add_component({"ServerGrp1"}, "Server3", cs::kServerT);
    txn.remove_component({"ServerGrp1"}, "Server1");
    txn.set_property({}, ElementKind::Component, "User1", "",
                     cs::kPropAvgLatency, PropertyValue(5.0));
    txn.detach({"ServerGrp1", "provide", "Conn_User1", "serverSide"});
    txn.rollback();
  }
  const System& rep =
      sys.component("ServerGrp1").representation_const();
  EXPECT_TRUE(rep.has_component("Server1"));
  EXPECT_FALSE(rep.has_component("Server3"));
  EXPECT_DOUBLE_EQ(
      sys.component("User1").property(cs::kPropAvgLatency).as_double(), 0.1);
  EXPECT_TRUE(sys.attached("ServerGrp1", "provide", "Conn_User1", "serverSide"));
}

TEST(TransactionTest, DestructorRollsBackOpenTransaction) {
  System sys = make_small_system();
  {
    Transaction txn(sys);
    txn.add_component("NewComp", cs::kClientT);
  }
  EXPECT_FALSE(sys.has_component("NewComp"));
}

TEST(TransactionTest, UseAfterCommitThrows) {
  System sys = make_small_system();
  Transaction txn(sys);
  txn.commit();
  EXPECT_THROW(txn.add_component("X", cs::kClientT), ModelError);
  EXPECT_THROW(txn.rollback(), ModelError);
}

TEST(TransactionTest, SetPropertyOnRoleAndUndo) {
  System sys = make_small_system();
  {
    Transaction txn(sys);
    txn.set_property({}, ElementKind::Role, "Conn_User1", "clientSide",
                     cs::kPropBandwidth, PropertyValue(5e3));
    EXPECT_DOUBLE_EQ(sys.connector("Conn_User1")
                         .role("clientSide")
                         .property(cs::kPropBandwidth)
                         .as_double(),
                     5e3);
    txn.rollback();
  }
  EXPECT_DOUBLE_EQ(sys.connector("Conn_User1")
                       .role("clientSide")
                       .property(cs::kPropBandwidth)
                       .as_double(),
                   1e7);
}

TEST(TransactionTest, RollbackRemovesNewProperty) {
  System sys = make_small_system();
  {
    Transaction txn(sys);
    txn.set_property({}, ElementKind::Component, "User1", "", "brandNew",
                     PropertyValue(1));
    txn.rollback();
  }
  EXPECT_FALSE(sys.component("User1").has_property("brandNew"));
}

TEST(TransactionTest, InvalidOpLeavesTransactionUsable) {
  System sys = make_small_system();
  Transaction txn(sys);
  EXPECT_THROW(txn.remove_component({}, "ghost"), ModelError);
  // Still open and usable.
  txn.add_component("X", cs::kClientT);
  txn.commit();
  EXPECT_TRUE(sys.has_component("X"));
}

TEST(TransactionTest, RecordsDescribeOps) {
  System sys = make_small_system();
  Transaction txn(sys);
  txn.add_component({"ServerGrp1"}, "Server3", cs::kServerT);
  const OpRecord& rec = txn.records().front();
  EXPECT_EQ(rec.kind, OpKind::AddComponent);
  EXPECT_EQ(rec.scope, std::vector<std::string>{"ServerGrp1"});
  EXPECT_EQ(rec.element, "Server3");
  EXPECT_NE(rec.describe().find("add-component"), std::string::npos);
  txn.rollback();
}

/// Property test: a random interleaving of ops, rolled back, restores the
/// printed form of the system exactly.
class TransactionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TransactionFuzzTest, RandomOpsRollbackToIdentical) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  System sys = make_small_system();
  auto baseline = sys.clone();

  {
    Transaction txn(sys);
    for (int i = 0; i < 30; ++i) {
      switch (rng.uniform_int(6)) {
        case 0:
          try {
            txn.add_component("Dyn" + std::to_string(i), cs::kClientT);
          } catch (const ModelError&) {
          }
          break;
        case 1:
          try {
            txn.add_component({"ServerGrp1"}, "DynS" + std::to_string(i),
                              cs::kServerT);
          } catch (const ModelError&) {
          }
          break;
        case 2:
          txn.set_property({}, ElementKind::Component, "User1", "",
                           cs::kPropAvgLatency,
                           PropertyValue(rng.uniform(0.0, 10.0)));
          break;
        case 3:
          txn.set_property({}, ElementKind::Role, "Conn_User1", "clientSide",
                           cs::kPropBandwidth,
                           PropertyValue(rng.uniform(1e3, 1e7)));
          break;
        case 4:
          try {
            txn.detach({"ServerGrp1", "provide", "Conn_User1", "serverSide"});
          } catch (const ModelError&) {
          }
          break;
        default:
          try {
            txn.attach({"ServerGrp1", "provide", "Conn_User1", "serverSide"});
          } catch (const ModelError&) {
          }
          break;
      }
    }
    txn.rollback();
  }

  // Keep this module-local (no acme dependency): compare shape and the
  // touched properties manually.
  EXPECT_EQ(sys.components().size(), baseline->components().size());
  EXPECT_EQ(sys.attachments().size(), baseline->attachments().size());
  EXPECT_DOUBLE_EQ(
      sys.component("User1").property(cs::kPropAvgLatency).as_double(), 0.1);
  EXPECT_DOUBLE_EQ(sys.connector("Conn_User1")
                       .role("clientSide")
                       .property(cs::kPropBandwidth)
                       .as_double(),
                   1e7);
  EXPECT_EQ(sys.component("ServerGrp1").representation_const().components().size(),
            2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransactionFuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace arcadia::model
