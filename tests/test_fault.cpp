// The deterministic fault plane and the failure-aware adaptation loop on
// top of it: seeded draw streams (same fault seed => bit-identical runs),
// bus-path report faults, gauge-channel disconnects + the liveness
// watchdog, typed operator failures absorbed by retry/backoff, the
// constraint checker's verdict holds on suspect evidence, the fleet
// health state machine, and suite containment of crashing fault cells.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "acme/adl.hpp"
#include "acme/script.hpp"
#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/fleet_manager.hpp"
#include "core/framework_builder.hpp"
#include "core/suite.hpp"
#include "events/bus.hpp"
#include "fault/fault_plane.hpp"
#include "fault/faulty_bus.hpp"
#include "model/types.hpp"
#include "monitor/gauge.hpp"
#include "monitor/gauge_manager.hpp"
#include "monitor/topics.hpp"
#include "repair/constraint.hpp"
#include "repair/engine.hpp"
#include "repair/retry.hpp"
#include "repair/scripts.hpp"
#include "repair/style_ops.hpp"
#include "sim/scenario_registry.hpp"
#include "util/annotations.hpp"

namespace arcadia {
namespace {

namespace topics = monitor::topics;

// ---- retry policy --------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsDeterministicPerSeed) {
  repair::RetryPolicy policy;
  Rng a(1234), b(1234), c(999);
  std::vector<SimTime> seq_a, seq_b, seq_c;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    seq_a.push_back(policy.backoff(attempt, a));
    seq_b.push_back(policy.backoff(attempt, b));
    seq_c.push_back(policy.backoff(attempt, c));
  }
  EXPECT_EQ(seq_a, seq_b);  // same seed, same schedule, bit for bit
  EXPECT_NE(seq_a, seq_c);  // different jitter stream diverges
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBounds) {
  repair::RetryPolicy policy;  // base 2 s, x2, max 60 s, jitter 0.25
  Rng rng(42);
  double nominal = 2.0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double expect_nominal = std::min(nominal, 60.0);
    const double d = policy.backoff(attempt, rng).as_seconds();
    EXPECT_GE(d, expect_nominal * 0.75) << "attempt " << attempt;
    EXPECT_LE(d, expect_nominal * 1.25) << "attempt " << attempt;
    nominal *= 2.0;
  }
}

TEST(RetryPolicyTest, BackoffConsumesExactlyOneDrawPerCall) {
  // Pinned so sweeping one retry knob can never shift another run's jitter
  // sequence: the schedule is a pure function of (policy, seed, attempt#).
  repair::RetryPolicy policy;
  Rng a(7), b(7);
  (void)policy.backoff(1, a);
  (void)b.uniform();  // advance b by the one draw backoff must have used
  EXPECT_EQ(a.next(), b.next());
}

// ---- fault plane ---------------------------------------------------------

fault::FaultProfile lossy_profile(std::uint64_t seed = 0xFA117C0DEULL) {
  fault::FaultProfile p;
  p.enabled = true;
  p.seed = seed;
  p.monitoring.report_loss = 0.2;
  p.monitoring.report_dup = 0.1;
  p.monitoring.report_delay = 0.1;
  p.repair.op_transient = 0.3;
  return p;
}

TEST(FaultPlaneTest, SameSeedSameDrawSequence) {
  sim::Simulator sim;
  fault::FaultPlane a(sim, lossy_profile(1)), b(sim, lossy_profile(1));
  for (int i = 0; i < 200; ++i) {
    const fault::BusFault fa = a.next_report_fault();
    const fault::BusFault fb = b.next_report_fault();
    EXPECT_EQ(fa.action, fb.action);
    EXPECT_EQ(fa.delay, fb.delay);
    EXPECT_EQ(a.next_op_fault(), b.next_op_fault());
  }
  EXPECT_EQ(a.stats().reports_dropped, b.stats().reports_dropped);
  EXPECT_EQ(a.stats().ops_transient, b.stats().ops_transient);
  EXPECT_GT(a.stats().reports_dropped, 0u);  // the rates actually fired
  EXPECT_GT(a.stats().ops_transient, 0u);
}

TEST(FaultPlaneTest, DifferentSeedsDiverge) {
  sim::Simulator sim;
  fault::FaultPlane a(sim, lossy_profile(1)), b(sim, lossy_profile(2));
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.next_report_fault().action != b.next_report_fault().action;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlaneTest, DisabledProfileNeverDraws) {
  sim::Simulator sim;
  fault::FaultPlane plane(sim, fault::FaultProfile{});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(plane.next_report_fault().action, fault::BusFaultAction::Deliver);
    EXPECT_EQ(plane.next_op_fault(), fault::OpFault::None);
    EXPECT_FALSE(plane.channel_down(util::Symbol::intern("g")));
  }
  SimTime at, dur;
  EXPECT_FALSE(plane.draw_tenant_crash(at, dur));
}

TEST(FaultPlaneTest, ForcedChannelWindowExpires) {
  sim::Simulator sim;
  fault::FaultProfile p;
  p.enabled = true;  // no disconnect hazard: only the forced window
  fault::FaultPlane plane(sim, p);
  const util::Symbol g = util::Symbol::intern("gauge:lat:U1");
  plane.force_channel_down(g, SimTime::seconds(30));
  EXPECT_TRUE(plane.channel_down(g));
  sim.schedule_at(SimTime::seconds(31), [&] {
    EXPECT_FALSE(plane.channel_down(g));
  });
  sim.run_until(SimTime::seconds(31));
  EXPECT_EQ(plane.stats().reports_suppressed, 1u);
}

TEST(FaultPlaneTest, PermanentWindowGatesEscalation) {
  sim::Simulator sim;
  fault::FaultProfile p;
  p.enabled = true;
  p.repair.op_permanent = 1.0;  // every draw permanent — inside the window
  p.repair.permanent_from = SimTime::seconds(100);
  p.repair.permanent_until = SimTime::seconds(200);
  fault::FaultPlane plane(sim, p);
  EXPECT_EQ(plane.next_op_fault(), fault::OpFault::None);  // t=0: outside
  sim.schedule_at(SimTime::seconds(150), [&] {
    EXPECT_EQ(plane.next_op_fault(), fault::OpFault::Permanent);
  });
  sim.schedule_at(SimTime::seconds(250), [&] {
    EXPECT_EQ(plane.next_op_fault(), fault::OpFault::None);
  });
  sim.run_until(SimTime::seconds(300));
  EXPECT_EQ(plane.stats().ops_permanent, 1u);
}

// ---- faulty bus ----------------------------------------------------------

events::Notification report_for(const std::string& element, double value) {
  events::Notification n(topics::kGaugeReportSym);
  n.set(topics::kAttrElementSym, events::Value(element))
      .set(topics::kAttrValueSym, events::Value(value));
  return n;
}

TEST(FaultyBusTest, DropsReportsButNeverControlTraffic) {
  sim::Simulator sim;
  events::LocalEventBus inner;
  fault::FaultProfile p;
  p.enabled = true;
  p.monitoring.report_loss = 1.0;  // certain drop
  fault::FaultPlane plane(sim, p);
  fault::FaultyBus bus(sim, inner, plane);

  int reports = 0, lifecycle = 0;
  bus.subscribe(events::Filter().topic(topics::kGaugeReport),
                [&](const events::Notification&) { ++reports; });
  bus.subscribe(events::Filter().topic(topics::kGaugeLifecycle),
                [&](const events::Notification&) { ++lifecycle; });

  bus.publish(report_for("U1", 1.0));
  events::Notification ctl(topics::kGaugeLifecycleSym);
  bus.publish(std::move(ctl));
  EXPECT_EQ(reports, 0);    // eaten by the plane
  EXPECT_EQ(lifecycle, 1);  // control channel is not the lossy substrate
  EXPECT_EQ(plane.stats().reports_dropped, 1u);
}

TEST(FaultyBusTest, DuplicateDeliversTwice) {
  sim::Simulator sim;
  events::LocalEventBus inner;
  fault::FaultProfile p;
  p.enabled = true;
  p.monitoring.report_dup = 1.0;
  fault::FaultPlane plane(sim, p);
  fault::FaultyBus bus(sim, inner, plane);
  int reports = 0;
  bus.subscribe(events::Filter().topic(topics::kGaugeReport),
                [&](const events::Notification&) { ++reports; });
  bus.publish(report_for("U1", 1.0));
  EXPECT_EQ(reports, 2);
  EXPECT_EQ(plane.stats().reports_duplicated, 1u);
}

TEST(FaultyBusTest, DelayDefersDelivery) {
  sim::Simulator sim;
  events::LocalEventBus inner;
  fault::FaultProfile p;
  p.enabled = true;
  p.monitoring.report_delay = 1.0;
  p.monitoring.delay_min = SimTime::seconds(3);
  p.monitoring.delay_max = SimTime::seconds(3);
  fault::FaultPlane plane(sim, p);
  fault::FaultyBus bus(sim, inner, plane);
  int reports = 0;
  bus.subscribe(events::Filter().topic(topics::kGaugeReport),
                [&](const events::Notification&) { ++reports; });
  bus.publish(report_for("U1", 1.0));
  EXPECT_EQ(reports, 0);  // in flight, not lost
  sim.run_until(SimTime::seconds(4));
  EXPECT_EQ(reports, 1);
  EXPECT_EQ(plane.stats().reports_delayed, 1u);
}

// ---- gauge-liveness watchdog ---------------------------------------------

TEST(GaugeWatchdogTest, MarksStaleChannelSuspectThenClears) {
  sim::Simulator sim;
  events::LocalEventBus probe_bus, gauge_bus;
  monitor::GaugeManagerConfig cfg;
  cfg.report_period = SimTime::seconds(5);
  cfg.watchdog_period = SimTime::seconds(5);
  cfg.stale_after = SimTime::seconds(15);
  monitor::GaugeManager mgr(sim, probe_bus, gauge_bus, cfg);

  fault::FaultProfile p;
  p.enabled = true;
  fault::FaultPlane plane(sim, p);
  mgr.set_fault_plane(&plane);

  std::vector<std::string> phases;  // lifecycle tape, in order
  gauge_bus.subscribe(events::Filter().topic(topics::kGaugeLifecycle),
                      [&](const events::Notification& n) {
                        phases.push_back(
                            n.get(topics::kAttrPhaseSym).as_string());
                      });

  const std::string id = mgr.deploy(
      monitor::make_bandwidth_gauge(sim, "U1", "Conn_U1.clientSide",
                                    sim::kNoNode));
  sim.run_until(SimTime::seconds(13));  // past the create cost: live
  events::Notification obs(topics::kProbeBandwidthSym);
  obs.set(topics::kAttrClientSym, events::Value(std::string("U1")))
      .set(topics::kAttrValueSym, events::Value(1e6));
  probe_bus.publish(std::move(obs));

  sim.run_until(SimTime::seconds(20));  // reporting normally
  EXPECT_FALSE(mgr.is_suspect(id));
  EXPECT_GT(mgr.stats().reports, 0u);

  // The channel goes dark for 40 s: reports are suppressed at the source,
  // the silence crosses stale_after, and the watchdog flags the gauge.
  plane.force_channel_down(util::Symbol::intern(id), SimTime::seconds(60));
  sim.run_until(SimTime::seconds(45));
  EXPECT_TRUE(mgr.is_suspect(id));
  EXPECT_EQ(mgr.suspect_count(), 1u);
  EXPECT_EQ(mgr.stats().suspects_marked, 1u);
  EXPECT_GT(mgr.stats().reports_suppressed, 0u);

  // The window expires; the first report that gets through clears it.
  sim.run_until(SimTime::seconds(70));
  EXPECT_FALSE(mgr.is_suspect(id));
  EXPECT_EQ(mgr.stats().suspects_cleared, 1u);
  // created -> suspect -> cleared, in that order on the bus.
  ASSERT_GE(phases.size(), 3u);
  EXPECT_EQ(phases[0], "created");
  EXPECT_EQ(phases[1], "suspect");
  EXPECT_EQ(phases[2], "cleared");
}

// ---- checker verdict holds -----------------------------------------------

TEST(CheckerHoldTest, SuspectElementHoldsVerdictsUntilCleared) {
  model::System sys("S");
  auto& comp = sys.add_component("User1", "ClientT");
  comp.set_property("averageLatency", model::PropertyValue(9.0));
  repair::ConstraintChecker checker(sys);
  checker.add_constraint("lat:User1", "User1", "averageLatency <= 2.0", "");

  ASSERT_EQ(checker.check().size(), 1u);  // trusted evidence: violation

  const util::Symbol u1 = util::Symbol::intern("User1");
  checker.set_element_suspect(u1, true);
  EXPECT_TRUE(checker.element_suspect(u1));
  // Suspect-only evidence: the verdict is held, not asserted — a watchdog
  // flag must never trigger a repair off data nobody trusts.
  EXPECT_TRUE(checker.check().empty());
  EXPECT_GT(checker.check_stats().holds, 0u);

  checker.set_element_suspect(u1, false);
  ASSERT_EQ(checker.check().size(), 1u);  // evidence trusted again
}

// ---- retry through the engine --------------------------------------------

model::System make_grid_system() {
  namespace cs = model::cs;
  model::System sys("GridStorage");
  for (int g = 1; g <= 2; ++g) {
    auto& grp = sys.add_component("ServerGrp" + std::to_string(g),
                                  cs::kServerGroupT);
    grp.set_property("load", model::PropertyValue(0.0));
    grp.set_property("replicationCount", model::PropertyValue(2));
    grp.set_property("utilization", model::PropertyValue(0.5));
    grp.add_port("provide", cs::kProvidePortT);
    grp.representation();
  }
  auto& user = sys.add_component("User1", cs::kClientT);
  user.set_property("averageLatency", model::PropertyValue(0.5));
  user.set_property("maxLatency", model::PropertyValue(2.0));
  user.set_property("boundTo", model::PropertyValue("ServerGrp1"));
  user.add_port("request", cs::kRequestPortT);
  auto& conn = sys.add_connector("Conn_User1", cs::kConnT);
  conn.add_role("clientSide", cs::kClientRoleT)
      .set_property("bandwidth", model::PropertyValue(1e7));
  conn.add_role("serverSide", cs::kServerRoleT);
  sys.attach({"User1", "request", "Conn_User1", "clientSide"});
  sys.attach({"ServerGrp1", "provide", "Conn_User1", "serverSide"});
  return sys;
}

/// One-runtime-step strategy: move the violating client to ServerGrp2.
repair::CxxStrategy one_move_strategy() {
  repair::CxxStrategy s;
  s.name = "fixLatency";
  s.policy = repair::StrategyPolicy::TryAll;
  s.tactics.push_back({"moveOnce", [](repair::TacticContext& ctx) {
                         repair::perform_move(ctx.txn, ctx.system, ctx.element,
                                              "ServerGrp2", ctx.conventions);
                         return true;
                       }});
  return s;
}

/// Throws typed OpErrors for the first `failures` applies, then succeeds.
class FlakyTranslator : public repair::Translator {
 public:
  FlakyTranslator(int failures, repair::OpErrorKind kind)
      : failures_(failures), kind_(kind) {}
  int calls = 0;
  SimTime apply(const std::vector<model::OpRecord>&) override {
    ++calls;
    if (calls <= failures_) {
      throw repair::OpError(kind_, "injected operator failure");
    }
    return SimTime::millis(500);
  }

 private:
  int failures_;
  repair::OpErrorKind kind_;
};

struct RetryRig {
  sim::Simulator sim;
  model::System sys = make_grid_system();
  acme::Script script = acme::parse_script(repair::extended_script());
  FlakyTranslator translator;
  std::unique_ptr<repair::RepairEngine> engine;
  repair::ConstraintChecker checker{sys};

  RetryRig(int failures, repair::OpErrorKind kind,
           repair::RetryPolicy policy = {})
      : translator(failures, kind) {
    repair::RepairEngineConfig cfg;
    cfg.use_script = false;
    cfg.retry = policy;
    engine = std::make_unique<repair::RepairEngine>(
        sim, sys, script, nullptr, &translator, nullptr, cfg);
    engine->add_strategy(one_move_strategy());
    checker.add_constraint("lat:User1", "User1", "averageLatency <= 2.0",
                           "fixLatency");
    sys.component("User1").set_property("averageLatency",
                                        model::PropertyValue(9.0));
  }
};

TEST(EngineRetryTest, TransientFailureRetriesThenCommits) {
  repair::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base = SimTime::seconds(1);
  RetryRig rig(/*failures=*/2, repair::OpErrorKind::Transient, policy);
  ASSERT_TRUE(rig.engine->handle_violations(rig.checker.check()));
  rig.sim.run_until(SimTime::seconds(120));

  ASSERT_EQ(rig.engine->records().size(), 1u);
  const repair::RepairRecord& rec = rig.engine->records()[0];
  EXPECT_TRUE(rec.committed);
  EXPECT_TRUE(rec.finished);
  EXPECT_EQ(rec.ops_retried, 2);
  EXPECT_EQ(rig.translator.calls, 3);  // 2 failures + the success
  EXPECT_EQ(rig.engine->stats().ops_retried, 2u);
  EXPECT_EQ(rig.engine->stats().repairs_retried, 1u);
  EXPECT_EQ(rig.engine->stats().committed, 1u);
  // The retries cost sim time: two backoffs pushed completion past 2 s.
  EXPECT_GT(rec.duration(), SimTime::seconds(2));
}

TEST(EngineRetryTest, PermanentFailureAbortsWithoutRetrying) {
  RetryRig rig(/*failures=*/100, repair::OpErrorKind::Permanent);
  ASSERT_TRUE(rig.engine->handle_violations(rig.checker.check()));
  rig.sim.run_until(SimTime::seconds(120));

  ASSERT_EQ(rig.engine->records().size(), 1u);
  const repair::RepairRecord& rec = rig.engine->records()[0];
  EXPECT_TRUE(rec.aborted);
  EXPECT_FALSE(rec.committed);
  EXPECT_EQ(rec.ops_retried, 0);       // permanent => retrying cannot help
  EXPECT_EQ(rig.translator.calls, 1);  // exactly one attempt
  EXPECT_EQ(rig.engine->stats().repairs_retried, 0u);
  // The model was reverted: User1 is back on ServerGrp1.
  EXPECT_FALSE(rig.engine->busy());
}

TEST(EngineRetryTest, ExhaustedRetriesFallThroughToAbort) {
  repair::RetryPolicy policy;
  policy.max_attempts = 2;  // one initial try + one retry
  policy.backoff_base = SimTime::seconds(1);
  RetryRig rig(/*failures=*/100, repair::OpErrorKind::Transient, policy);
  ASSERT_TRUE(rig.engine->handle_violations(rig.checker.check()));
  rig.sim.run_until(SimTime::seconds(120));

  ASSERT_EQ(rig.engine->records().size(), 1u);
  const repair::RepairRecord& rec = rig.engine->records()[0];
  EXPECT_TRUE(rec.aborted);
  EXPECT_EQ(rec.ops_retried, 1);
  EXPECT_EQ(rig.translator.calls, 2);
  EXPECT_EQ(rig.engine->stats().repairs_retried, 1u);
}

// ---- fleet health state machine ------------------------------------------

events::Notification gauge_report(const std::string& element, double value) {
  events::Notification n(topics::kGaugeReport);
  n.set(topics::kAttrElement, events::Value(element));
  n.set(topics::kAttrProperty, events::Value(std::string("averageLatency")));
  n.set(topics::kAttrValue, events::Value(value));
  return n;
}

struct HealthRig {
  sim::Simulator sim;
  model::System system{"ShardSys"};
  events::LocalEventBus bus;
  acme::Script script = acme::parse_script(repair::extended_script());
  std::unique_ptr<repair::RepairEngine> engine;
  std::unique_ptr<core::ArchitectureManager> manager;

  HealthRig() {
    auto& comp = system.add_component("User1", "ClientT");
    comp.set_property("averageLatency", model::PropertyValue(0.5));
    engine = std::make_unique<repair::RepairEngine>(
        sim, system, script, nullptr, nullptr, nullptr,
        repair::RepairEngineConfig{});
    core::ArchManagerConfig cfg;
    cfg.passive = true;
    manager = std::make_unique<core::ArchitectureManager>(sim, system, bus,
                                                          *engine, cfg);
    manager->checker().add_constraint("lat:User1", "User1",
                                      "averageLatency <= 2.0", "");
  }
};

TEST(FleetHealthTest, SilenceWalksHealthyToQuarantinedAndBack) {
  HealthRig rig;
  core::FleetManagerConfig cfg;
  cfg.coalesce_window = SimTime::zero();
  cfg.first_check = SimTime::seconds(1e6);  // sweeps driven manually
  cfg.degraded_after = SimTime::seconds(10);
  cfg.quarantine_after = SimTime::seconds(30);
  cfg.recovery_observation = SimTime::seconds(10);
  core::FleetManager fleet(rig.sim, cfg);
  fleet.add_shard("t1", *rig.manager, rig.bus);
  fleet.start();

  std::vector<std::string> states;  // lifecycle tape from the shard's bus
  rig.bus.subscribe(events::Filter().topic(topics::kFleetHealth),
                    [&](const events::Notification& n) {
                      states.push_back(
                          n.get(topics::kAttrStateSym).as_string());
                    });

  auto at = [&](double t, std::function<void()> fn) {
    rig.sim.schedule_at(SimTime::seconds(t), std::move(fn));
  };
  // Registration at t=0 counts as liveness; pure silence follows.
  at(15, [&] {
    fleet.run_sweep();
    EXPECT_EQ(fleet.shard_health(0), core::ShardHealth::Degraded);
  });
  at(45, [&] {
    fleet.run_sweep();
    EXPECT_EQ(fleet.shard_health(0), core::ShardHealth::Quarantined);
  });
  // Reports resume at t=50: the shard is observed recovering, and only
  // sustained reporting re-admits it.
  at(50, [&] { rig.bus.publish(gauge_report("User1", 0.7)); });
  at(52, [&] {
    fleet.run_sweep();
    EXPECT_EQ(fleet.shard_health(0), core::ShardHealth::Recovering);
  });
  at(58, [&] { rig.bus.publish(gauge_report("User1", 0.8)); });
  at(63, [&] {
    fleet.run_sweep();
    EXPECT_EQ(fleet.shard_health(0), core::ShardHealth::Healthy);
  });
  rig.sim.run_until(SimTime::seconds(70));

  const core::FleetShardStats& ss = fleet.shard_stats(0);
  EXPECT_EQ(ss.health_degraded, 1u);
  EXPECT_EQ(ss.health_quarantined, 1u);
  EXPECT_EQ(ss.health_recovered, 1u);
  EXPECT_GE(ss.sweeps_quarantined, 1u);  // the t=45 sweep skipped it
  EXPECT_EQ(fleet.stats().shards_quarantined, 1u);
  ASSERT_EQ(states.size(), 4u);  // every transition hit the bus, in order
  EXPECT_EQ(states[0], "degraded");
  EXPECT_EQ(states[1], "quarantined");
  EXPECT_EQ(states[2], "recovering");
  EXPECT_EQ(states[3], "healthy");
}

TEST(FleetHealthTest, RecoveringShardRelapsesOnRenewedSilence) {
  HealthRig rig;
  core::FleetManagerConfig cfg;
  cfg.coalesce_window = SimTime::zero();
  cfg.first_check = SimTime::seconds(1e6);
  cfg.degraded_after = SimTime::seconds(10);
  cfg.quarantine_after = SimTime::seconds(30);
  cfg.recovery_observation = SimTime::seconds(20);
  core::FleetManager fleet(rig.sim, cfg);
  fleet.add_shard("t1", *rig.manager, rig.bus);
  fleet.start();

  auto at = [&](double t, std::function<void()> fn) {
    rig.sim.schedule_at(SimTime::seconds(t), std::move(fn));
  };
  at(15, [&] { fleet.run_sweep(); });  // -> Degraded
  at(16, [&] { rig.bus.publish(gauge_report("User1", 0.7)); });
  at(18, [&] {
    fleet.run_sweep();  // -> Recovering (observation window 20 s)
    EXPECT_EQ(fleet.shard_health(0), core::ShardHealth::Recovering);
  });
  // No further reports: silence crosses degraded_after again mid-watch.
  at(30, [&] {
    fleet.run_sweep();
    EXPECT_EQ(fleet.shard_health(0), core::ShardHealth::Degraded);
  });
  rig.sim.run_until(SimTime::seconds(35));
  EXPECT_EQ(fleet.shard_stats(0).health_degraded, 2u);
  EXPECT_EQ(fleet.shard_stats(0).health_recovered, 0u);
}

TEST(FleetHealthTest, StalledShardSkipsSweepsUntilWindowEnds) {
  HealthRig rig;
  core::FleetManagerConfig cfg;
  cfg.coalesce_window = SimTime::millis(500);
  cfg.first_check = SimTime::seconds(1e6);
  cfg.health_tracking = false;  // isolate the stall seam from the FSM
  core::FleetManager fleet(rig.sim, cfg);
  fleet.add_shard("t1", *rig.manager, rig.bus);
  fleet.start();

  auto at = [&](double t, std::function<void()> fn) {
    rig.sim.schedule_at(SimTime::seconds(t), std::move(fn));
  };
  at(1, [&] { rig.bus.publish(gauge_report("User1", 9.0)); });
  at(2, [&] {
    fleet.stall_shard(0, SimTime::seconds(30));
    fleet.run_sweep();  // stalled: no detection despite the violation
    EXPECT_EQ(fleet.shard_stats(0).violations, 0u);
    EXPECT_EQ(fleet.shard_stats(0).sweeps_stalled, 1u);
  });
  at(40, [&] {
    fleet.run_sweep();  // window over: the backlog drains and detects
    EXPECT_EQ(fleet.shard_stats(0).violations, 1u);
    EXPECT_EQ(fleet.shard_stats(0).sweeps, 1u);
  });
  rig.sim.run_until(SimTime::seconds(45));
  EXPECT_EQ(fleet.shard_stats(0).violations, 1u);
}

// ---- fault-seed replay determinism ---------------------------------------

struct FaultFingerprint {
  std::uint64_t events = 0;
  std::uint64_t responses = 0;
  std::vector<std::tuple<std::string, std::string, double>> repairs;
  std::uint64_t dropped = 0, delayed = 0, duplicated = 0, suppressed = 0;
  std::uint64_t ops_transient = 0, ops_retried = 0;
  std::uint64_t verdict_holds = 0;
  std::size_t consistency_issues = 0;

  bool operator==(const FaultFingerprint&) const = default;
};

FaultFingerprint run_lossy_grid(std::uint64_t fault_seed) {
  core::ExperimentOptions opt = core::options_for("lossy-grid");
  // Compress the stress window into a short horizon so repairs — and with
  // them the repair-seam faults — actually fire inside the test budget.
  opt.scenario.horizon = SimTime::seconds(400);
  opt.scenario.stress_start = SimTime::seconds(120);
  opt.scenario.stress_end = SimTime::seconds(280);
  opt.scenario.fault.seed = fault_seed;
  const core::ExperimentResult r = core::run_experiment(opt);

  FaultFingerprint fp;
  fp.events = r.sim_events;
  fp.responses = r.responses_completed;
  for (const repair::RepairRecord& rec : r.repairs) {
    fp.repairs.emplace_back(rec.strategy, rec.element,
                            rec.started.as_seconds());
  }
  fp.dropped = r.fault_stats.reports_dropped;
  fp.delayed = r.fault_stats.reports_delayed;
  fp.duplicated = r.fault_stats.reports_duplicated;
  fp.suppressed = r.fault_stats.reports_suppressed;
  fp.ops_transient = r.fault_stats.ops_transient;
  fp.ops_retried = r.repair_stats.ops_retried;
  fp.verdict_holds = r.verdict_holds;
  fp.consistency_issues = r.consistency_issues.size();
  return fp;
}

TEST(FaultReplayTest, SameFaultSeedBitIdenticalRun) {
  const FaultFingerprint a = run_lossy_grid(0xFA117C0DEULL);
  const FaultFingerprint b = run_lossy_grid(0xFA117C0DEULL);
  EXPECT_EQ(a, b);
  // The run was genuinely lossy — injection fired at every monitoring knob
  // the profile arms — and the loop still converged: the model and runtime
  // agree at the horizon.
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.delayed, 0u);
  EXPECT_FALSE(a.repairs.empty());  // the stress window forced repairs
  EXPECT_EQ(a.consistency_issues, 0u);
  EXPECT_GT(a.responses, 0u);
}

TEST(FaultReplayTest, DifferentFaultSeedsDivergeWithoutTouchingWorkloadSeed) {
  const FaultFingerprint a = run_lossy_grid(1);
  const FaultFingerprint b = run_lossy_grid(2);
  EXPECT_NE(a, b);  // the fault streams are real inputs to the run
  // Both still converge: robustness is seed-independent.
  EXPECT_EQ(a.consistency_issues, 0u);
  EXPECT_EQ(b.consistency_issues, 0u);
}

// ---- fleet determinism under faults --------------------------------------

struct FleetFaultFingerprint {
  std::uint64_t events = 0;
  std::vector<std::string> models;
  std::vector<std::vector<std::tuple<std::string, std::string, double>>>
      repairs;
  std::uint64_t faults_injected = 0;
  std::uint64_t repairs_total = 0;
  /// Per-tenant FaultPlane::state_digest(): stream positions + draw
  /// counters. Equal digests mean the same draws happened in the same
  /// order — the strongest per-plane determinism witness we have.
  std::vector<std::uint64_t> digests;

  bool operator==(const FleetFaultFingerprint&) const = default;
};

FleetFaultFingerprint run_faulted_fleet(std::size_t sweep_threads,
                                        std::size_t sim_threads = 0) {
  sim::Simulator sim;
  core::FleetOptions opt;
  opt.scenario = "fleet-4x16";
  opt.tenants = 3;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults("fleet-4x16");
  opt.config.grid.groups = 2;
  opt.config.grid.clients = 8;
  opt.config.grid.spares = 1;
  opt.config.quiescent_end = SimTime::seconds(40);
  opt.config.stress_start = SimTime::seconds(80);
  opt.config.stress_end = SimTime::seconds(220);
  opt.config.normal_rate_hz = 2.0;
  opt.config.fleet.phase_shift = SimTime::seconds(30);
  // The fault plane rides into every tenant (decorrelated per-tenant seed);
  // all draws happen on the sim thread, so the sweep width must not matter.
  opt.config.fault.enabled = true;
  opt.config.fault.monitoring.report_loss = 0.10;
  opt.config.fault.monitoring.report_delay = 0.05;
  opt.config.fault.repair.op_transient = 0.10;
  opt.manager.sweep_threads = sweep_threads;
  opt.manager.coalesce_window = SimTime::millis(500);
  opt.sim_threads = sim_threads;  // 0 = legacy shared simulator
  auto fleet = core::FrameworkBuilder::build_fleet(sim, opt);
  fleet->start();
  fleet->run_until(SimTime::seconds(320));

  FleetFaultFingerprint fp;
  fp.events = sim.executed();
  if (fleet->coordinator()) {
    fp.events += fleet->coordinator()->stats().shard_events;
  }
  for (std::size_t t = 0; t < fleet->tenant_count(); ++t) {
    core::FleetTenant& tenant = fleet->tenant(t);
    util::SerialLane in_lane(tenant.lane());  // no-op on the legacy kernel
    std::vector<std::tuple<std::string, std::string, double>> rs;
    for (const repair::RepairRecord& r :
         tenant.framework->engine().records()) {
      rs.emplace_back(r.strategy, r.element, r.started.as_seconds());
    }
    fp.repairs_total += rs.size();
    fp.repairs.push_back(std::move(rs));
    fp.models.push_back(acme::print_system(tenant.framework->system()));
    if (const fault::FaultPlane* plane = tenant.framework->fault_plane()) {
      fp.faults_injected += plane->stats().reports_dropped +
                            plane->stats().reports_delayed +
                            plane->stats().ops_transient;
      fp.digests.push_back(plane->state_digest());
    }
  }
  return fp;
}

TEST(FleetFaultDeterminismTest, IdenticalFaultedRunsForThreadCounts1AndN) {
  const FleetFaultFingerprint one = run_faulted_fleet(1);
  const FleetFaultFingerprint many = run_faulted_fleet(4);
  EXPECT_EQ(one, many);
  // Vacuity guards: faults were really injected and repairs really ran.
  EXPECT_GT(one.faults_injected, 0u);
  EXPECT_GT(one.repairs_total, 0u);
}

TEST(FleetFaultDeterminismTest, FaultDrawsIdenticalAcrossSimThreadCounts) {
  // Sharded kernel: each tenant's fault plane lives on its shard's clock,
  // so every draw is a pure function of the shard's serial event stream —
  // the worker-thread count must not move a single stream position.
  const FleetFaultFingerprint one = run_faulted_fleet(2, /*sim_threads=*/1);
  const FleetFaultFingerprint four = run_faulted_fleet(2, /*sim_threads=*/4);
  EXPECT_EQ(one, four);
  ASSERT_FALSE(one.digests.empty());
  EXPECT_EQ(one.digests, four.digests);
  EXPECT_GT(one.faults_injected, 0u);
  EXPECT_GT(one.repairs_total, 0u);
}

// ---- suite containment ---------------------------------------------------

TEST(SuiteFaultTest, CrashingCaseIsContainedAndItsFaultSeedRecorded) {
  core::ExperimentSuite suite;
  core::ExperimentOptions bad = core::options_for("grid-4x16");
  bad.scenario_name = "no-such-scenario";  // build_scenario throws
  bad.scenario.fault.seed = 0xDEAD;
  suite.add("bad", bad);
  core::ExperimentOptions good = core::options_for("grid-4x16");
  good.scenario.horizon = SimTime::seconds(60);
  suite.add("good", good);

  const std::vector<core::SuiteOutcome> outcomes = suite.run(2);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[0].error.empty());
  EXPECT_EQ(outcomes[0].fault_seed, 0xDEADu);  // replay handle survives
  EXPECT_TRUE(outcomes[1].ok());  // the failure stayed in its cell
  EXPECT_GT(outcomes[1].result.sim_events, 0u);
}

}  // namespace
}  // namespace arcadia
