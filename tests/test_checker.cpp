// Static script/expression checking against the client-server style.
#include <gtest/gtest.h>

#include "acme/checker.hpp"
#include "acme/expr_parser.hpp"
#include "acme/script.hpp"
#include "repair/scripts.hpp"

namespace arcadia::acme {
namespace {

struct CheckerRig {
  model::Style style = model::client_server_style();
  ScriptChecker checker = make_client_server_checker(style);

  std::vector<CheckIssue> check(const std::string& script_source) {
    Script script = parse_script(script_source);
    return checker.check_script(script);
  }
  bool clean(const std::string& script_source) {
    auto issues = check(script_source);
    EXPECT_TRUE(issues.empty()) << (issues.empty() ? ""
                                                   : issues.front().to_string());
    return issues.empty();
  }
  bool flags(const std::string& script_source, const std::string& needle) {
    for (const CheckIssue& issue : check(script_source)) {
      if (issue.message.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

TEST(CheckerTest, ShippedScriptsAreClean) {
  CheckerRig rig;
  EXPECT_TRUE(rig.clean(repair::extended_script()));
  EXPECT_TRUE(rig.clean(figure5_script()));
}

TEST(CheckerTest, MisspelledPropertyFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(g : ServerGroupT) : boolean = { return g.lod > 6; }",
      "no property 'lod'"));
}

TEST(CheckerTest, UnknownOperatorFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(g : ServerGroupT) : boolean = { g.addSrver(); return true; }",
      "unknown style operator 'addSrver'"));
}

TEST(CheckerTest, OperatorTargetTypeChecked) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { c.addServer(); return true; }",
      "applies to ServerGroupT"));
}

TEST(CheckerTest, OperatorArityChecked) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { c.move(); return true; }",
      "takes 1 argument"));
}

TEST(CheckerTest, UnknownFunctionAndArity) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { return findBestGroup(c) != nil; }",
      "unknown function"));
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { return size() > 0; }",
      "takes 1 argument"));
}

TEST(CheckerTest, UnboundNameFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { return mysteryValue > 1; }",
      "unbound name 'mysteryValue'"));
}

TEST(CheckerTest, GlobalsAreBound) {
  CheckerRig rig;
  EXPECT_TRUE(rig.clean(
      "tactic t(g : ServerGroupT) : boolean = { return g.load > "
      "maxServerLoad; }"));
}

TEST(CheckerTest, InvariantHandlerMustExist) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "invariant r : averageLatency <= maxLatency !-> fixEverything(r);",
      "not a strategy"));
}

TEST(CheckerTest, InvariantHandlerArityChecked) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "invariant r : averageLatency <= maxLatency !-> fix(r);\n"
      "strategy fix(a : ClientT, b : ClientT) = { commit repair; }",
      "invariant passes 1"));
}

TEST(CheckerTest, InvariantUnqualifiedNamesTolerated) {
  CheckerRig rig;
  // averageLatency/maxLatency resolve only at instantiation; no issue.
  EXPECT_TRUE(rig.clean(
      "invariant r : averageLatency <= maxLatency !-> fix(r);\n"
      "strategy fix(c : ClientT) = { commit repair; }"));
}

TEST(CheckerTest, CommitOutsideStrategyFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { commit repair; }",
      "only valid inside a strategy"));
}

TEST(CheckerTest, ReturnInsideStrategyFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags("strategy s(c : ClientT) = { return true; }",
                        "'return' inside a strategy"));
}

TEST(CheckerTest, TacticCallArityChecked) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "strategy s(c : ClientT) = { if (t(c, c)) { commit repair; } "
      "else { abort X; } }\n"
      "tactic t(c : ClientT) : boolean = { return true; }",
      "tactic 't' takes 1"));
}

TEST(CheckerTest, UnknownBinderTypeFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = {\n"
      "  let xs : set{GhostT} = select g : GhostT in self.Components | true;\n"
      "  return size(xs) > 0;\n"
      "}",
      "unknown style type 'GhostT'"));
}

TEST(CheckerTest, NonBooleanConditionsFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(g : ServerGroupT) : boolean = { if (g.load) { return true; } "
      "return false; }",
      "not boolean"));
  EXPECT_TRUE(rig.flags(
      "tactic t(g : ServerGroupT) : boolean = { return g.load and true; }",
      "not boolean"));
}

TEST(CheckerTest, ForeachOverNonSetFlagged) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(g : ServerGroupT) : boolean = { foreach x in g.load { "
      "x.addServer(); } return true; }",
      "not a set"));
}

TEST(CheckerTest, ArithmeticTypeErrors) {
  CheckerRig rig;
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { return (c.name - 3) > 0; }",
      "arithmetic on string"));
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = { return !(c.name); }",
      "'!' applied to string"));
}

TEST(CheckerTest, ExpressionEntryPoint) {
  CheckerRig rig;
  auto good = parse_expression("averageLatency <= maxLatency");
  EXPECT_TRUE(rig.checker.check_expression(*good, "ClientT").empty());
  auto bad = parse_expression("averageLatencee <= maxLatency");
  auto issues = rig.checker.check_expression(*bad, "ClientT");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("unbound name"), std::string::npos);
}

TEST(CheckerTest, SetTypePropagationThroughSelect) {
  CheckerRig rig;
  EXPECT_TRUE(rig.clean(
      "tactic t(c : ClientT) : boolean = {\n"
      "  let groups : set{ServerGroupT} =\n"
      "    select g : ServerGroupT in self.Components | connected(g, c);\n"
      "  foreach g in groups { g.addServer(); }\n"
      "  return size(groups) > 0;\n"
      "}"));
  // Without the annotation the select's type still flows through.
  EXPECT_TRUE(rig.flags(
      "tactic t(c : ClientT) : boolean = {\n"
      "  let groups = select g : ServerGroupT in self.Components | true;\n"
      "  foreach g in groups { g.move(c); }\n"
      "  return true;\n"
      "}",
      "applies to ClientT"));
}

}  // namespace
}  // namespace arcadia::acme
