// The staged repair pipeline: AdaptationPlan lifting, optimizer passes,
// overlapped execution, mid-plan failure compensation, and preemption.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "acme/script.hpp"
#include "core/experiment.hpp"
#include "events/bus.hpp"
#include "model/types.hpp"
#include "monitor/gauge.hpp"
#include "monitor/gauge_manager.hpp"
#include "monitor/topics.hpp"
#include "repair/constraint.hpp"
#include "repair/engine.hpp"
#include "repair/plan.hpp"
#include "repair/plan_executor.hpp"
#include "repair/plan_optimizer.hpp"
#include "repair/scripts.hpp"
#include "repair/style_ops.hpp"

namespace arcadia::repair {
namespace {

namespace cs = model::cs;

model::System make_system(int groups = 2) {
  model::System sys("GridStorage");
  for (int g = 1; g <= groups; ++g) {
    auto& grp = sys.add_component("ServerGrp" + std::to_string(g),
                                  cs::kServerGroupT);
    grp.set_property("load", model::PropertyValue(0.0));
    grp.set_property("replicationCount", model::PropertyValue(g == 1 ? 3 : 2));
    grp.set_property("utilization", model::PropertyValue(0.5));
    grp.add_port("provide", cs::kProvidePortT);
    grp.representation();
  }
  for (int c = 1; c <= 2; ++c) {
    auto& client = sys.add_component("User" + std::to_string(c), cs::kClientT);
    client.set_property("averageLatency", model::PropertyValue(0.5));
    client.set_property("maxLatency", model::PropertyValue(2.0));
    client.set_property("boundTo", model::PropertyValue("ServerGrp1"));
    client.add_port("request", cs::kRequestPortT);
    auto& conn =
        sys.add_connector("Conn_User" + std::to_string(c), cs::kConnT);
    conn.add_role("clientSide", cs::kClientRoleT)
        .set_property("bandwidth", model::PropertyValue(1e7));
    conn.add_role("serverSide", cs::kServerRoleT);
    sys.attach({"User" + std::to_string(c), "request",
                "Conn_User" + std::to_string(c), "clientSide"});
    sys.attach({"ServerGrp1", "provide", "Conn_User" + std::to_string(c),
                "serverSide"});
  }
  return sys;
}

// ---- lifting ----

TEST(PlanLiftTest, MoveLiftsToOneStep) {
  model::System sys = make_system();
  model::Transaction txn(sys);
  perform_move(txn, sys, "User1", "ServerGrp2", {});
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  AdaptationPlan plan = build_plan(records, {}, nullptr, nullptr);
  ASSERT_EQ(plan.steps.size(), 1u);
  const PlanStep& step = plan.steps[0];
  EXPECT_EQ(step.kind, PlanStep::Kind::RuntimeOps);
  EXPECT_EQ(step.op_class, PlanStep::OpClass::Move);
  EXPECT_EQ(step.subject, "User1");
  EXPECT_EQ(step.records.size(), 3u);  // detach + attach + boundTo
  EXPECT_TRUE(step.deps.empty());
  EXPECT_EQ(plan.journal.size(), 3u);
}

TEST(PlanLiftTest, IndependentRecruitsRunConcurrently) {
  model::System sys = make_system();
  model::Transaction txn(sys);
  perform_add_server(txn, sys, "ServerGrp1", "SrvA", {});
  perform_add_server(txn, sys, "ServerGrp2", "SrvB", {});
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  AdaptationPlan plan = build_plan(records, {}, nullptr, nullptr);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].op_class, PlanStep::OpClass::Recruit);
  EXPECT_EQ(plan.steps[0].subject, "SrvA");
  // The replicationCount bookkeeping rides with its recruit.
  EXPECT_EQ(plan.steps[0].records.size(), 2u);
  EXPECT_EQ(plan.steps[1].subject, "SrvB");
  EXPECT_TRUE(plan.steps[1].deps.empty());  // disjoint groups: no ordering
}

TEST(PlanLiftTest, SameGroupStepsAreOrdered) {
  model::System sys = make_system();
  model::Transaction txn(sys);
  perform_add_server(txn, sys, "ServerGrp2", "SrvA", {});
  perform_move(txn, sys, "User1", "ServerGrp2", {});  // into the grown group
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  AdaptationPlan plan = build_plan(records, {}, nullptr, nullptr);
  ASSERT_EQ(plan.steps.size(), 2u);
  ASSERT_EQ(plan.steps[1].deps.size(), 1u);
  EXPECT_EQ(plan.steps[1].deps[0], 0u);  // move waits for the recruit
}

class PricingTranslator : public Translator {
 public:
  SimTime apply(const std::vector<model::OpRecord>&) override {
    return SimTime::zero();
  }
  SimTime estimate(const std::vector<model::OpRecord>& records) const override {
    SimTime cost = SimTime::zero();
    for (const model::OpRecord& op : records) {
      if (runtime_effective(op, {})) cost += SimTime::seconds(1);
    }
    return cost;
  }
};

TEST(PlanLiftTest, EstimatesAndCriticalPath) {
  model::System sys = make_system();
  model::Transaction txn(sys);
  perform_add_server(txn, sys, "ServerGrp1", "SrvA", {});
  perform_add_server(txn, sys, "ServerGrp2", "SrvB", {});
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  PricingTranslator pricing;
  AdaptationPlan plan = build_plan(records, {}, &pricing, nullptr);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].estimated_cost, SimTime::seconds(1));
  // Independent steps: serial sums, the critical path does not.
  EXPECT_EQ(plan.estimated_serial_cost(), SimTime::seconds(2));
  EXPECT_EQ(plan.estimated_critical_path(), SimTime::seconds(1));
}

// ---- optimizer ----

TEST(PlanOptimizerTest, MergesRedundantMoves) {
  model::System sys = make_system(/*groups=*/3);
  model::Transaction txn(sys);
  perform_move(txn, sys, "User1", "ServerGrp2", {});
  perform_move(txn, sys, "User1", "ServerGrp3", {});  // supersedes the first
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  AdaptationPlan plan = build_plan(records, {}, nullptr, nullptr);
  ASSERT_EQ(plan.steps.size(), 2u);
  const PlanOptimizerStats stats = optimize_plan(plan);
  EXPECT_EQ(stats.moves_merged, 1u);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].op_class, PlanStep::OpClass::Move);
  // The surviving step is the final binding.
  bool saw_final = false;
  for (const model::OpRecord& op : plan.steps[0].records) {
    if (op.kind == model::OpKind::SetProperty) {
      saw_final = true;
      EXPECT_EQ(op.value.as_string(), "ServerGrp3");
    }
  }
  EXPECT_TRUE(saw_final);
  // The journal keeps everything: compensation must undo both hops.
  EXPECT_EQ(plan.journal.size(), 6u);
}

TEST(PlanOptimizerTest, MergedMoveCompensatesToThePrePlanBinding) {
  // The intermediate hop is never enacted, so the surviving move's inverse
  // must send the runtime straight back to the original group — not to the
  // hop the journal lists as its model-side predecessor.
  model::System sys = make_system(/*groups=*/3);
  model::Transaction txn(sys);
  perform_move(txn, sys, "User1", "ServerGrp2", {});
  perform_move(txn, sys, "User1", "ServerGrp3", {});
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  AdaptationPlan plan = build_plan(records, {}, nullptr, nullptr);
  optimize_plan(plan);
  ASSERT_EQ(plan.steps.size(), 1u);
  const model::OpRecord* bound = nullptr;
  for (const model::OpRecord& op : plan.steps[0].records) {
    if (op.kind == model::OpKind::SetProperty) bound = &op;
  }
  ASSERT_NE(bound, nullptr);
  std::optional<model::OpRecord> inv = bound->inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->value.as_string(), "ServerGrp1");  // not ServerGrp2
}

/// A gauge with a fixed reading, for plan tests that only care about
/// element addressing and lifecycle costs.
class FixedGauge : public monitor::Gauge {
 public:
  FixedGauge(sim::Simulator& sim, const std::string& id,
             const std::string& element)
      : Gauge(sim, monitor::GaugeSpec{util::Symbol::intern(id),
                                      util::Symbol::intern(element),
                                      util::Symbol::intern("averageLatency"),
                                      sim::kNoNode}) {}
  events::Filter probe_filter() const override {
    return events::Filter::topic(monitor::topics::kProbeLatencySym);
  }
  void consume(const events::Notification&) override {}
  std::optional<double> read() override { return 1.0; }
  void reset() override {}
};

struct GaugeRig {
  sim::Simulator sim;
  events::LocalEventBus probe_bus;
  events::LocalEventBus gauge_bus;
  monitor::GaugeManager gauges;

  explicit GaugeRig(monitor::GaugeManagerConfig cfg = {})
      : gauges(sim, probe_bus, gauge_bus, cfg) {}

  void deploy(const std::string& id, const std::string& element) {
    gauges.deploy(std::make_unique<FixedGauge>(sim, id, element));
  }
  void go_live() { sim.run_until(sim.now() + SimTime::seconds(13)); }
};

TEST(PlanOptimizerTest, BatchesGaugeStepsOnTheSameFrontier) {
  model::System sys = make_system();
  GaugeRig rig;
  rig.deploy("lat:User1", "User1");
  rig.deploy("lat:User2", "User2");
  rig.go_live();

  // One runtime step touching both gauge-carrying clients.
  model::Transaction txn(sys);
  txn.set_property({}, model::ElementKind::Component, "User1", "",
                   "averageLatency", model::PropertyValue(1.0));
  txn.set_property({}, model::ElementKind::Component, "User2", "",
                   "averageLatency", model::PropertyValue(1.0));
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  AdaptationPlan plan = build_plan(records, {}, nullptr, &rig.gauges);
  // 1 replay step + 2 per-element gauge steps.
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.gauge_step_count(), 2u);
  const PlanOptimizerStats stats = optimize_plan(plan);
  EXPECT_EQ(stats.gauges_batched, 1u);
  ASSERT_EQ(plan.steps.size(), 2u);
  ASSERT_EQ(plan.steps[1].kind, PlanStep::Kind::GaugeRedeploy);
  EXPECT_EQ(plan.steps[1].elements.size(), 2u);
}

// ---- executor ----

class CountingTranslator : public Translator {
 public:
  SimTime cost = SimTime::seconds(1);
  std::vector<std::vector<model::OpRecord>> applies;
  SimTime apply(const std::vector<model::OpRecord>& records) override {
    applies.push_back(records);
    return cost;
  }
};

TEST(PlanExecutorTest, IndependentStepsOverlap) {
  model::System sys = make_system();
  model::Transaction txn(sys);
  perform_add_server(txn, sys, "ServerGrp1", "SrvA", {});
  perform_add_server(txn, sys, "ServerGrp2", "SrvB", {});
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  sim::Simulator sim;
  CountingTranslator translator;
  AdaptationPlan plan = build_plan(records, {}, &translator, nullptr);
  ASSERT_EQ(plan.steps.size(), 2u);

  PlanExecutor exec(sim, &translator, nullptr);
  bool done = false;
  SimTime done_at;
  PlanExecutor::Callbacks cb;
  cb.on_done = [&] {
    done = true;
    done_at = sim.now();
  };
  exec.run(&plan, std::move(cb));
  sim.run_until(SimTime::seconds(10));
  ASSERT_TRUE(done);
  // Two 1 s steps with no mutual dependency: wall-clock 1 s, not 2 s.
  EXPECT_EQ(done_at, SimTime::seconds(1));
  EXPECT_EQ(translator.applies.size(), 2u);
  EXPECT_EQ(exec.runtime_cost(), SimTime::seconds(2));
}

TEST(PlanExecutorTest, BatchedGaugeRedeployCostsTheSlowestElement) {
  model::System sys = make_system();
  GaugeRig rig;  // cold redeploy: 3 s destroy + 12 s create per gauge
  rig.deploy("lat:User1", "User1");
  rig.deploy("lat:User2", "User2");
  rig.go_live();
  const SimTime t0 = rig.sim.now();

  model::Transaction txn(sys);
  txn.set_property({}, model::ElementKind::Component, "User1", "",
                   "averageLatency", model::PropertyValue(1.0));
  txn.set_property({}, model::ElementKind::Component, "User2", "",
                   "averageLatency", model::PropertyValue(1.0));
  std::vector<model::OpRecord> records = txn.records();
  txn.commit();

  AdaptationPlan plan = build_plan(records, {}, nullptr, &rig.gauges);
  optimize_plan(plan);

  PlanExecutor exec(rig.sim, nullptr, &rig.gauges);
  bool done = false;
  SimTime done_at;
  PlanExecutor::Callbacks cb;
  cb.on_done = [&] {
    done = true;
    done_at = rig.sim.now();
  };
  exec.run(&plan, std::move(cb));
  rig.sim.run_until(rig.sim.now() + SimTime::seconds(120));
  ASSERT_TRUE(done);
  // Two elements, one gauge each: concurrent chains finish together at
  // 15 s — the sequential chain would have taken 30 s.
  EXPECT_EQ((done_at - t0), SimTime::seconds(15));
  EXPECT_EQ(rig.gauges.stats().redeploy_batches, 1u);
}

// ---- the engine pipeline end to end ----

struct EngineRig {
  sim::Simulator sim;
  model::System sys = make_system();
  acme::Script script = acme::parse_script(extended_script());
  CountingTranslator translator;
  std::unique_ptr<RepairEngine> engine;
  ConstraintChecker checker{sys};

  explicit EngineRig(RepairEngineConfig cfg = {},
                     monitor::GaugeManager* gauges = nullptr) {
    cfg.use_script = false;  // native strategies; no runtime queries needed
    engine = std::make_unique<RepairEngine>(sim, sys, script, nullptr,
                                            &translator, gauges, cfg);
    checker.bind_global("maxServerLoad", acme::EvalValue(6.0));
    checker.bind_global("minBandwidth", acme::EvalValue(1e4));
    checker.bind_global("minUtilization", acme::EvalValue(0.2));
    checker.bind_global("minReplicas", acme::EvalValue(2.0));
    checker.instantiate(script);
  }
};

/// A strategy producing two dependent runtime steps: recruit a server into
/// ServerGrp2, then move the violating client onto it.
CxxStrategy two_step_strategy() {
  CxxStrategy s;
  s.name = "fixLatency";  // shadow the registry entry
  s.policy = StrategyPolicy::TryAll;
  s.tactics.push_back({"growAndMove", [](TacticContext& ctx) {
                         perform_add_server(ctx.txn, ctx.system, "ServerGrp2",
                                            "SrvNew", ctx.conventions);
                         perform_move(ctx.txn, ctx.system, ctx.element,
                                      "ServerGrp2", ctx.conventions);
                         return true;
                       }});
  return s;
}

TEST(PlanEngineTest, TranslatorFailureMidPlanCompensates) {
  // The recruit step applies; the dependent move step throws. The engine
  // must compensate the enacted recruit at the runtime layer and revert the
  // whole journal in the model, leaving both convergent at the pre-repair
  // state.
  class FailSecond : public Translator {
   public:
    std::vector<std::vector<model::OpRecord>> applies;
    SimTime apply(const std::vector<model::OpRecord>& records) override {
      if (applies.size() == 1) {
        applies.emplace_back();  // record the attempt
        throw RuntimeOpError("queue vanished");
      }
      applies.push_back(records);
      return SimTime::millis(500);
    }
  };

  sim::Simulator sim;
  model::System sys = make_system();
  acme::Script script = acme::parse_script(extended_script());
  FailSecond translator;
  RepairEngineConfig cfg;
  cfg.use_script = false;
  RepairEngine engine(sim, sys, script, nullptr, &translator, nullptr, cfg);
  engine.add_strategy(two_step_strategy());
  ConstraintChecker checker(sys);
  checker.bind_global("maxServerLoad", acme::EvalValue(6.0));
  checker.bind_global("minBandwidth", acme::EvalValue(1e4));
  checker.bind_global("minUtilization", acme::EvalValue(0.2));
  checker.bind_global("minReplicas", acme::EvalValue(2.0));
  checker.instantiate(script);

  sys.component("User1").set_property("averageLatency",
                                      model::PropertyValue(9.0));
  ASSERT_TRUE(engine.handle_violations(checker.check()));
  // Model mutated at commit: recruit + move are in.
  EXPECT_TRUE(sys.component("ServerGrp2")
                  .representation_const()
                  .has_component("SrvNew"));
  sim.run_until(SimTime::seconds(30));

  ASSERT_EQ(engine.records().size(), 1u);
  const RepairRecord& rec = engine.records()[0];
  EXPECT_TRUE(rec.aborted);
  EXPECT_FALSE(rec.committed);
  EXPECT_TRUE(rec.finished);
  EXPECT_NE(rec.abort_reason.find("RuntimeFailure"), std::string::npos);
  EXPECT_FALSE(engine.busy());
  EXPECT_EQ(engine.stats().committed, 0u);
  EXPECT_TRUE(engine.repair_windows().empty());

  // Model reverted to the pre-repair state...
  EXPECT_FALSE(sys.component("ServerGrp2")
                   .representation_const()
                   .has_component("SrvNew"));
  EXPECT_TRUE(sys.attached("ServerGrp1", "provide", "Conn_User1",
                           "serverSide"));
  EXPECT_EQ(sys.component("User1").property("boundTo").as_string(),
            "ServerGrp1");
  EXPECT_EQ(
      sys.component("ServerGrp2").property("replicationCount").as_int(), 2);
  // ...and the runtime saw the compensating release of the enacted recruit.
  ASSERT_EQ(translator.applies.size(), 3u);  // recruit, failed move, comp
  const std::vector<model::OpRecord>& comp = translator.applies.back();
  bool saw_release = false;
  for (const model::OpRecord& op : comp) {
    if (op.kind == model::OpKind::RemoveComponent && op.element == "SrvNew") {
      saw_release = true;
    }
  }
  EXPECT_TRUE(saw_release);
}

TEST(PlanEngineTest, PlanEventsOnTheBus) {
  events::LocalEventBus bus;
  std::vector<std::string> phases;
  bus.subscribe(events::Filter::topic(monitor::topics::kRepairPlanSym),
                [&](const events::Notification& n) {
                  phases.push_back(
                      n.get_if(monitor::topics::kAttrPhaseSym)->as_string());
                });

  EngineRig rig;
  rig.engine->set_event_bus(&bus);
  rig.sys.component("User1").set_property("averageLatency",
                                          model::PropertyValue(9.0));
  rig.sys.component("ServerGrp1").set_property("load",
                                               model::PropertyValue(9.0));
  ASSERT_TRUE(rig.engine->handle_violations(rig.checker.check()));
  rig.sim.run_until(SimTime::seconds(30));
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0], "plan-started");
  EXPECT_EQ(phases[1], "plan-completed");
}

TEST(PlanEngineTest, StrictlyWorseViolationPreempts) {
  RepairEngineConfig cfg;
  cfg.preemption = true;  // preempt_factor 2.0
  EngineRig rig(cfg);
  rig.engine->add_strategy(two_step_strategy());
  rig.translator.cost = SimTime::seconds(2);

  rig.sys.component("User1").set_property("averageLatency",
                                          model::PropertyValue(5.0));
  ASSERT_TRUE(rig.engine->handle_violations(rig.checker.check()));
  EXPECT_TRUE(rig.engine->busy());

  // Mid-plan (decision charge 0.1 s + first 2 s step in flight) a far worse
  // violation lands on the other client.
  rig.sim.run_until(SimTime::seconds(1));
  rig.sys.component("User2").set_property("averageLatency",
                                          model::PropertyValue(30.0));
  ASSERT_TRUE(rig.engine->handle_violations(rig.checker.check()));

  EXPECT_EQ(rig.engine->stats().plans_preempted, 1u);
  ASSERT_EQ(rig.engine->records().size(), 2u);
  const RepairRecord& first = rig.engine->records()[0];
  EXPECT_TRUE(first.preempted);
  EXPECT_TRUE(first.aborted);
  EXPECT_FALSE(first.committed);
  EXPECT_NE(first.abort_reason.find("PreemptedBy"), std::string::npos);
  EXPECT_EQ(rig.engine->records()[1].element, "User2");
  EXPECT_TRUE(rig.engine->busy());  // the challenger's repair took over

  // The preempted repair's model changes were rolled forward-and-back (the
  // replacement repair immediately re-recruited SrvNew for User2, so the
  // revert is visible on User1's wiring, not the group contents).
  EXPECT_TRUE(rig.sys.attached("ServerGrp1", "provide", "Conn_User1",
                               "serverSide"));
  EXPECT_FALSE(rig.sys.attached("ServerGrp2", "provide", "Conn_User1",
                                "serverSide"));
  EXPECT_EQ(rig.sys.component("User1").property("boundTo").as_string(),
            "ServerGrp1");

  rig.sim.run_until(SimTime::seconds(60));
  EXPECT_FALSE(rig.engine->busy());
  EXPECT_TRUE(rig.engine->records()[1].committed);
  EXPECT_EQ(rig.engine->stats().committed, 1u);
  EXPECT_GE(rig.engine->stats().plan_steps_preempted, 1u);
}

TEST(PlanEngineTest, ComparableViolationDoesNotPreempt) {
  RepairEngineConfig cfg;
  cfg.preemption = true;
  EngineRig rig(cfg);
  rig.engine->add_strategy(two_step_strategy());
  rig.translator.cost = SimTime::seconds(2);

  rig.sys.component("User1").set_property("averageLatency",
                                          model::PropertyValue(5.0));
  ASSERT_TRUE(rig.engine->handle_violations(rig.checker.check()));
  rig.sim.run_until(SimTime::seconds(1));
  // Worse, but not strictly worse (5.0 * factor 2.0 = 10 > 8).
  rig.sys.component("User2").set_property("averageLatency",
                                          model::PropertyValue(8.0));
  EXPECT_FALSE(rig.engine->handle_violations(rig.checker.check()));
  EXPECT_EQ(rig.engine->stats().plans_preempted, 0u);

  // The active repair's own element never preempts itself, however bad the
  // stale reading looks.
  rig.sys.component("User1").set_property("averageLatency",
                                          model::PropertyValue(100.0));
  EXPECT_FALSE(rig.engine->handle_violations(rig.checker.check()));
  EXPECT_EQ(rig.engine->stats().plans_preempted, 0u);
}

TEST(PlanEngineTest, ChurnMidRepairScenarioPreempts) {
  // End to end on the packed-outage scenario: the second fault lands while
  // the first repair's plan is enacting, and with a factor tuned for
  // same-kind latency violations the follow-on violation preempts it. The
  // model/runtime consistency check must come out clean — every preempted
  // plan was fully compensated.
  core::ExperimentOptions opt = core::options_for("churn-mid-repair");
  opt.adaptation = true;
  opt.framework.plan_preemption = true;
  opt.framework.plan_preempt_factor = 1.2;
  core::ExperimentResult r = core::run_experiment(opt);
  EXPECT_GE(r.repair_stats.plans_preempted, 1u);
  EXPECT_GE(r.repair_stats.committed, 1u);
  EXPECT_TRUE(r.consistency_issues.empty());
  bool saw_preempted = false;
  for (const auto& rec : r.repairs) {
    if (rec.preempted) {
      saw_preempted = true;
      EXPECT_TRUE(rec.aborted);
      EXPECT_FALSE(rec.committed);
    }
  }
  EXPECT_TRUE(saw_preempted);
}

}  // namespace
}  // namespace arcadia::repair
