// FrameworkBuilder: the default assembly must be indistinguishable from
// the legacy Framework constructor (the simulation is deterministic, so
// counts and model properties must match exactly), and every part
// substitution must actually take effect.
#include <gtest/gtest.h>

#include "core/framework_builder.hpp"
#include "repair/registry.hpp"
#include "runtime/translator.hpp"
#include "sim/scenario_registry.hpp"

namespace arcadia::core {
namespace {

struct RunOutcome {
  std::uint64_t completed = 0;
  std::size_t gauges = 0;
  std::uint64_t reports_applied = 0;
  std::size_t repairs = 0;
  double user1_latency = 0.0;
};

RunOutcome collect(sim::Simulator& sim, sim::Testbed& tb, Framework& fw) {
  tb.start();
  sim.run_until(SimTime::seconds(240));
  RunOutcome out;
  out.completed = tb.app->total_completed();
  out.gauges = fw.gauges().gauge_count();
  out.reports_applied = fw.manager().stats().reports_applied;
  out.repairs = fw.engine().records().size();
  out.user1_latency =
      fw.system().component("User1").property("averageLatency").as_double();
  return out;
}

TEST(FrameworkBuilderTest, DefaultBuildEqualsLegacyWiring) {
  RunOutcome legacy;
  {
    sim::Simulator sim;
    sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
    Framework fw(sim, tb, FrameworkConfig{});
    fw.start();
    legacy = collect(sim, tb, fw);
  }
  RunOutcome built;
  {
    sim::Simulator sim;
    sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
    auto fw = FrameworkBuilder(sim, tb).build_started();
    built = collect(sim, tb, *fw);
  }
  EXPECT_EQ(built.completed, legacy.completed);
  EXPECT_EQ(built.gauges, legacy.gauges);
  EXPECT_EQ(built.reports_applied, legacy.reports_applied);
  EXPECT_EQ(built.repairs, legacy.repairs);
  EXPECT_DOUBLE_EQ(built.user1_latency, legacy.user1_latency);
  EXPECT_GT(built.completed, 0u);
  EXPECT_GT(built.reports_applied, 0u);
}

TEST(FrameworkBuilderTest, GaugeDeployerSubstitutionTakesEffect) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  auto fw = FrameworkBuilder(sim, tb)
                .with_gauge_deployer([](sim::Simulator& s, sim::Testbed& t,
                                        monitor::GaugeManager& gauges,
                                        const FrameworkConfig& cfg) {
                  // Latency gauges only — no bandwidth/load/utilization.
                  sim::GridApp& app = *t.app;
                  for (sim::ClientIdx c = 0;
                       c < static_cast<sim::ClientIdx>(app.client_count());
                       ++c) {
                    gauges.deploy(monitor::make_latency_gauge(
                        s, app.client_name(c), app.client_node(c),
                        cfg.gauge_window));
                  }
                })
                .build_started();
  EXPECT_EQ(fw->gauges().gauge_count(), 6u);  // default wiring deploys 16
}

TEST(FrameworkBuilderTest, TranslatorSubstitutionTakesEffect) {
  struct CountingTranslator : repair::Translator {
    explicit CountingTranslator(rt::SimEnvironmentManager& env) : inner(env) {}
    SimTime apply(const std::vector<model::OpRecord>& records) override {
      ++calls;
      return inner.apply(records);
    }
    rt::SimTranslator inner;
    int calls = 0;
  };
  CountingTranslator* translator = nullptr;
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  auto fw = FrameworkBuilder(sim, tb)
                .with_translator([&](rt::SimEnvironmentManager& env,
                                     const FrameworkConfig&) {
                  auto t = std::make_unique<CountingTranslator>(env);
                  translator = t.get();
                  return t;
                })
                .build();
  ASSERT_NE(translator, nullptr);
  EXPECT_EQ(&fw->translator(), translator);
}

TEST(FrameworkBuilderTest, ProbeFactorySubstitutionTakesEffect) {
  bool factory_ran = false;
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  auto fw = FrameworkBuilder(sim, tb)
                .with_probe_set([&](sim::Simulator& s, sim::Testbed& t,
                                    remos::RemosService& remos,
                                    events::EventBus& bus,
                                    const FrameworkConfig& cfg) {
                  factory_ran = true;
                  return monitor::make_standard_probes(s, *t.app, remos, bus,
                                                       cfg.probe_period);
                })
                .build();
  EXPECT_FALSE(factory_ran);  // probes are created at start()
  fw->start();
  EXPECT_TRUE(factory_ran);
}

TEST(FrameworkBuilderTest, ScriptAndPolicySelection) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  auto fw = FrameworkBuilder(sim, tb)
                .with_policy("worst-first")
                .with_script(
                    "invariant r : averageLatency <= maxLatency !-> "
                    "fixLatency(r);\n"
                    "strategy fixLatency(c : ClientT) = { abort Nope; }\n")
                .build();
  EXPECT_EQ(fw->config().policy_name, "worst-first");
  EXPECT_EQ(fw->script().strategies.size(), 1u);
}

TEST(FrameworkBuilderTest, UnknownPolicyThrowsAtConfigurationTime) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  FrameworkBuilder builder(sim, tb);
  EXPECT_THROW(builder.with_policy("no-such-policy"), Error);
}

TEST(FrameworkBuilderTest, NativeStrategiesComeFromRegistry) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  auto fw = FrameworkBuilder(sim, tb).with_native_strategies().build();
  EXPECT_FALSE(fw->config().use_script);
  std::vector<std::string> names = fw->engine().strategy_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "fixLatency"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "trimServers"), names.end());
}

}  // namespace
}  // namespace arcadia::core
