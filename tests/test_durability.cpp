// The durability plane's building blocks: the binary codec, journal frame
// round-trips, the torn-write recovery corpus (truncate/corrupt a golden
// journal at every offset class and recover the valid prefix — never
// crash), the model codec + digest + diff, snapshot round-trip/retention,
// journal replay, the plane's gauge coalescing and group commit, RNG state
// checkpointing, the fault plane's disconnect-window close-out (straddling
// windows must not survive finalize), and the suite CSV's failed column.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/suite.hpp"
#include "durability/codec.hpp"
#include "durability/io.hpp"
#include "durability/journal.hpp"
#include "durability/model_codec.hpp"
#include "durability/plane.hpp"
#include "durability/replay.hpp"
#include "durability/snapshot.hpp"
#include "fault/fault_plane.hpp"
#include "model/system.hpp"
#include "model/transaction.hpp"
#include "model/types.hpp"
#include "sim/simulator.hpp"
#include "util/deterministic_rng.hpp"

namespace arcadia::durability {
namespace {

/// A wiped scratch directory under the test's working directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = "test_durability-" + name;
  ensure_dir(dir);
  for (const std::string& file : list_dir(dir)) remove_file(dir + "/" + file);
  return dir;
}

model::System make_system() {
  model::System sys("S");
  model::Component& grp = sys.add_component("Grp", model::cs::kServerGroupT);
  grp.set_property(model::cs::kPropLoad, model::PropertyValue(0.25));
  grp.set_property(model::cs::kPropReplication, model::PropertyValue(2));
  grp.add_port("provide", model::cs::kProvidePortT);
  grp.representation().add_component("Server1", model::cs::kServerT);
  model::Component& user = sys.add_component("User", model::cs::kClientT);
  user.add_port("request", model::cs::kRequestPortT);
  model::Connector& conn = sys.add_connector("Conn", model::cs::kConnT);
  conn.add_role("clientSide", model::cs::kClientRoleT)
      .set_property(model::cs::kPropBandwidth, model::PropertyValue(1e7));
  conn.add_role("serverSide", model::cs::kServerRoleT);
  sys.attach({"User", "request", "Conn", "clientSide"});
  sys.attach({"Grp", "provide", "Conn", "serverSide"});
  return sys;
}

// ---- codec ---------------------------------------------------------------

TEST(CodecTest, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  const char* msg = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);
}

TEST(CodecTest, ScalarAndStringRoundTrip) {
  Encoder enc;
  enc.u8(7);
  enc.u32(0xDEADBEEFu);
  enc.u64(0x0123456789ABCDEFull);
  enc.i64(-42);
  enc.f64(3.25);
  enc.boolean(true);
  enc.str("hello");
  enc.sim_time(SimTime::millis(1500));

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.u8(), 7);
  EXPECT_EQ(dec.u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_DOUBLE_EQ(dec.f64(), 3.25);
  EXPECT_TRUE(dec.boolean());
  EXPECT_EQ(dec.str(), "hello");
  EXPECT_EQ(dec.sim_time(), SimTime::millis(1500));
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, ValueRoundTripAllKinds) {
  const std::vector<events::Value> values = {
      events::Value(true), events::Value(std::int64_t{-9}),
      events::Value(2.5), events::Value(std::string("text")),
      events::Value(util::Symbol::intern("sym"))};
  for (const events::Value& v : values) {
    Encoder enc;
    enc.value(v);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.value(), v);
    EXPECT_TRUE(dec.done());
  }
}

TEST(CodecTest, DecoderUnderrunThrowsNeverReadsPast) {
  Encoder enc;
  enc.u32(12);
  Decoder dec(enc.bytes());
  (void)dec.u32();
  EXPECT_THROW(dec.u64(), DurabilityError);
}

// ---- journal frames ------------------------------------------------------

JournalRecord make_op_batch(std::uint64_t lsn) {
  JournalRecord r;
  r.type = RecordType::OpBatch;
  r.lsn = lsn;
  r.at = SimTime::seconds(12);
  r.shard = 3;
  r.repair_index = 9;
  r.compensation = true;
  model::OpRecord op;
  op.kind = model::OpKind::SetProperty;
  op.scope = {"Grp"};
  op.element = "Server1";
  op.property = "load";
  op.value = model::PropertyValue(0.75);
  op.prev_value = model::PropertyValue(0.5);
  op.had_prev = true;
  r.ops.push_back(op);
  return r;
}

TEST(JournalTest, EveryRecordTypeRoundTrips) {
  std::vector<JournalRecord> golden;
  golden.push_back(make_op_batch(1));

  JournalRecord plan;
  plan.type = RecordType::PlanEvent;
  plan.lsn = 2;
  plan.at = SimTime::seconds(13);
  plan.phase = "repair.completed";
  plan.repair_index = 9;
  plan.plan_steps = 4;
  golden.push_back(plan);

  JournalRecord gauges;
  gauges.type = RecordType::GaugeBatch;
  gauges.lsn = 3;
  gauges.at = SimTime::seconds(14);
  gauges.shard = 1;
  gauges.gauges.push_back(
      {SimTime::seconds(13), "Conn", "clientSide", "bandwidth",
       events::Value(5e6)});
  gauges.gauges.push_back(
      {SimTime::seconds(14), "Grp", "", "load", events::Value(0.9)});
  golden.push_back(gauges);

  JournalRecord rng;
  rng.type = RecordType::RngPositions;
  rng.lsn = 4;
  rng.at = SimTime::seconds(15);
  Rng stream(77);
  (void)stream.uniform();
  rng.rng_streams.push_back(stream.save_state());
  golden.push_back(rng);

  JournalRecord mark;
  mark.type = RecordType::SnapshotMark;
  mark.lsn = 5;
  mark.at = SimTime::seconds(16);
  mark.snapshot_lsn = 4;
  mark.snapshot_file = "snap-0000000000000004.arcs";
  mark.model_digest = 0xFEEDFACEull;
  golden.push_back(mark);

  std::vector<std::uint8_t> bytes = journal_header();
  for (const JournalRecord& r : golden) {
    const std::vector<std::uint8_t> frame = encode_frame(r);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }

  const JournalReadResult result = read_journal_bytes(bytes);
  EXPECT_FALSE(result.torn);
  EXPECT_EQ(result.valid_bytes, bytes.size());
  ASSERT_EQ(result.records.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const JournalRecord& in = golden[i];
    const JournalRecord& out = result.records[i];
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.lsn, in.lsn);
    EXPECT_EQ(out.at, in.at);
    EXPECT_EQ(out.shard, in.shard);
  }
  const JournalRecord& op_out = result.records[0];
  ASSERT_EQ(op_out.ops.size(), 1u);
  EXPECT_EQ(op_out.ops[0].kind, model::OpKind::SetProperty);
  EXPECT_EQ(op_out.ops[0].scope, std::vector<std::string>{"Grp"});
  EXPECT_EQ(op_out.ops[0].value, model::PropertyValue(0.75));
  EXPECT_TRUE(op_out.ops[0].had_prev);
  EXPECT_TRUE(op_out.compensation);
  EXPECT_EQ(result.records[1].phase, "repair.completed");
  ASSERT_EQ(result.records[2].gauges.size(), 2u);
  EXPECT_EQ(result.records[2].gauges[0].sub, "clientSide");
  EXPECT_EQ(result.records[2].gauges[1].value, events::Value(0.9));
  ASSERT_EQ(result.records[3].rng_streams.size(), 1u);
  EXPECT_EQ(result.records[3].rng_streams[0], stream.save_state());
  EXPECT_EQ(result.records[4].snapshot_file, mark.snapshot_file);
}

TEST(JournalTest, BadHeaderThrows) {
  EXPECT_THROW(read_journal_bytes({'A', 'R', 'C', 'X', 1, 0, 0, 0}),
               DurabilityError);
  EXPECT_THROW(read_journal_bytes({'A', 'R'}), DurabilityError);
  // Wrong version is also a hard error — not a torn tail.
  EXPECT_THROW(read_journal_bytes({'A', 'R', 'C', 'J', 9, 0, 0, 0}),
               DurabilityError);
}

// The satellite-3 corpus: a golden journal truncated at every frame
// boundary, truncated mid-frame at every interior byte class, and CRC
// bit-flipped — every case must recover the longest valid prefix with a
// warning, and never throw.
TEST(JournalTest, TornWriteCorpusRecoversValidPrefix) {
  std::vector<std::uint8_t> bytes = journal_header();
  std::vector<std::size_t> boundaries = {bytes.size()};
  for (std::uint64_t lsn = 1; lsn <= 5; ++lsn) {
    const std::vector<std::uint8_t> frame = encode_frame(make_op_batch(lsn));
    bytes.insert(bytes.end(), frame.begin(), frame.end());
    boundaries.push_back(bytes.size());
  }

  // Truncation exactly at a frame boundary: a clean (shorter) journal.
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + boundaries[i]);
    const JournalReadResult r = read_journal_bytes(cut);
    EXPECT_FALSE(r.torn);
    EXPECT_EQ(r.records.size(), i);
    EXPECT_EQ(r.valid_bytes, cut.size());
    if (i > 0) EXPECT_EQ(r.records.back().lsn, i);
  }

  // Truncation at every mid-frame byte: torn, recovered to the last
  // complete frame, warning set.
  for (std::size_t cut_at = boundaries.front() + 1; cut_at < bytes.size();
       ++cut_at) {
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut_at) {
      ++whole;
    }
    if (boundaries[whole] == cut_at) continue;  // boundary: covered above
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + cut_at);
    const JournalReadResult r = read_journal_bytes(cut);
    EXPECT_TRUE(r.torn) << "offset " << cut_at;
    EXPECT_FALSE(r.warning.empty());
    EXPECT_EQ(r.records.size(), whole) << "offset " << cut_at;
    EXPECT_EQ(r.valid_bytes, boundaries[whole]);
  }

  // A flipped bit inside frame 3's CRC: frames 1-2 recovered, the rest is
  // unreachable (recovery cannot vouch for anything past a bad frame).
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[boundaries[2] + 4] ^= 0x01;  // CRC field of frame 3
  const JournalReadResult r = read_journal_bytes(corrupt);
  EXPECT_TRUE(r.torn);
  EXPECT_NE(r.warning.find("CRC"), std::string::npos);
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.valid_bytes, boundaries[2]);

  // A flipped payload bit is equally fatal for that frame.
  corrupt = bytes;
  corrupt[boundaries[2] + 12] ^= 0x80;
  const JournalReadResult p = read_journal_bytes(corrupt);
  EXPECT_TRUE(p.torn);
  EXPECT_EQ(p.records.size(), 2u);
}

// ---- model codec ---------------------------------------------------------

TEST(ModelCodecTest, RoundTripPreservesDigestAndDiffsClean) {
  const model::System sys = make_system();
  const std::vector<std::uint8_t> bytes = encode_system(sys);
  const auto decoded = decode_system(bytes);
  EXPECT_EQ(system_digest(*decoded), system_digest(sys));
  EXPECT_EQ(diff_systems(sys, *decoded), "");
  // Re-encoding the decoded model is byte-stable (canonical order).
  EXPECT_EQ(encode_system(*decoded), bytes);
}

TEST(ModelCodecTest, DiffNamesTheDivergence) {
  const model::System a = make_system();
  model::System b = make_system();
  b.component(util::Symbol::intern("Grp"))
      .set_property(model::cs::kPropLoad, model::PropertyValue(0.99));
  EXPECT_NE(system_digest(a), system_digest(b));
  const std::string diff = diff_systems(a, b);
  EXPECT_NE(diff.find("Grp"), std::string::npos);
}

// ---- snapshots -----------------------------------------------------------

Snapshot make_snapshot(std::uint64_t lsn) {
  const model::System sys = make_system();
  Snapshot snap;
  snap.lsn = lsn;
  snap.at = SimTime::seconds(60);
  ShardSnapshot shard;
  shard.shard = 0;
  shard.name = "solo";
  shard.model = encode_system(sys);
  shard.model_digest = system_digest(sys);
  shard.gauges.push_back({"g-load", true, false, SimTime::seconds(59)});
  shard.health = 1;
  Rng stream(5);
  (void)stream.normal();  // leaves a Box-Muller spare in the state
  shard.rng_streams.push_back(stream.save_state());
  shard.repairs_committed = 2;
  snap.shards.push_back(std::move(shard));
  return snap;
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  const Snapshot snap = make_snapshot(41);
  const Snapshot out = decode_snapshot(encode_snapshot(snap));
  EXPECT_EQ(out.lsn, snap.lsn);
  EXPECT_EQ(out.at, snap.at);
  ASSERT_EQ(out.shards.size(), 1u);
  const ShardSnapshot& shard = out.shards[0];
  EXPECT_EQ(shard.name, "solo");
  EXPECT_EQ(shard.model, snap.shards[0].model);
  EXPECT_EQ(shard.model_digest, snap.shards[0].model_digest);
  ASSERT_EQ(shard.gauges.size(), 1u);
  EXPECT_EQ(shard.gauges[0].id, "g-load");
  EXPECT_TRUE(shard.gauges[0].live);
  EXPECT_EQ(shard.health, 1);
  EXPECT_EQ(shard.rng_streams, snap.shards[0].rng_streams);
  EXPECT_EQ(shard.repairs_committed, 2u);
}

TEST(SnapshotTest, WriteListLoadAndPrune) {
  const std::string dir = scratch_dir("snapshots");
  for (std::uint64_t lsn : {9ull, 120ull, 7ull}) {
    write_snapshot(dir, make_snapshot(lsn));
  }
  // Lexical order is LSN order (zero-padded names).
  const std::vector<std::string> names = list_snapshots(dir);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names.front(), snapshot_file_name(7));
  EXPECT_EQ(names.back(), snapshot_file_name(120));

  const Snapshot loaded = load_snapshot(dir + "/" + names.back());
  EXPECT_EQ(loaded.lsn, 120u);

  prune_snapshots(dir, 2);
  const std::vector<std::string> kept = list_snapshots(dir);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.front(), snapshot_file_name(9));  // oldest dropped
}

// ---- replay --------------------------------------------------------------

TEST(ReplayTest, OpAndGaugeBatchesReconstructTheModel) {
  model::System live = make_system();

  // Drive the live model through a transaction, capturing its op records
  // the same way the repair engine journals a commit.
  model::Transaction txn(live);
  txn.add_component({"Grp"}, "Server2", model::cs::kServerT);
  txn.set_property({}, model::ElementKind::Component, "Grp", "",
                   model::cs::kPropReplication, model::PropertyValue(3));
  txn.commit();
  const std::vector<model::OpRecord> ops = txn.records();

  JournalRecord batch;
  batch.type = RecordType::OpBatch;
  batch.lsn = 1;
  batch.at = SimTime::seconds(10);
  batch.ops = ops;

  JournalRecord gauges;
  gauges.type = RecordType::GaugeBatch;
  gauges.lsn = 2;
  gauges.at = SimTime::seconds(11);
  gauges.gauges.push_back(
      {SimTime::seconds(11), "Grp", "", model::cs::kPropLoad,
       events::Value(0.5)});
  live.component(util::Symbol::intern("Grp"))
      .set_property(model::cs::kPropLoad, model::PropertyValue(0.5));

  model::System replayed = make_system();
  const ReplayStats stats =
      replay_journal(replayed, {batch, gauges}, ReplayOptions{});
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_EQ(stats.ops_applied, ops.size());
  EXPECT_EQ(stats.gauge_writes, 1u);
  EXPECT_EQ(stats.last_lsn, 2u);
  EXPECT_EQ(diff_systems(live, replayed), "");
  EXPECT_EQ(system_digest(live), system_digest(replayed));
}

TEST(ReplayTest, CursorStopsAtLsnAndTime) {
  model::System base = make_system();
  const std::uint64_t untouched = system_digest(base);

  JournalRecord gauges;
  gauges.type = RecordType::GaugeBatch;
  gauges.lsn = 2;
  gauges.at = SimTime::seconds(50);
  gauges.gauges.push_back(
      {SimTime::seconds(50), "Grp", "", model::cs::kPropLoad,
       events::Value(0.8)});

  model::System at_lsn_1 = make_system();
  ReplayOptions to_lsn_1;
  to_lsn_1.to_lsn = 1;
  replay_journal(at_lsn_1, {gauges}, to_lsn_1);
  EXPECT_EQ(system_digest(at_lsn_1), untouched);

  model::System before = make_system();
  ReplayOptions to_t40;
  to_t40.to_time = SimTime::seconds(40);
  replay_journal(before, {gauges}, to_t40);
  EXPECT_EQ(system_digest(before), untouched);
}

TEST(ReplayTest, GaugeDeltaForMissingElementThrows) {
  model::System sys = make_system();
  JournalRecord gauges;
  gauges.type = RecordType::GaugeBatch;
  gauges.lsn = 1;
  gauges.gauges.push_back(
      {SimTime::zero(), "NoSuchElement", "", "load", events::Value(1.0)});
  EXPECT_THROW(replay_journal(sys, {gauges}), DurabilityError);
}

// ---- the plane -----------------------------------------------------------

model::OpRecord set_load_op(double value, double prev) {
  model::OpRecord op;
  op.kind = model::OpKind::SetProperty;
  op.element = "Grp";
  op.property = "load";
  op.value = model::PropertyValue(value);
  op.prev_value = model::PropertyValue(prev);
  op.had_prev = true;
  return op;
}

TEST(PlaneTest, GaugeDeltasCoalescePerKeyWithinABatch) {
  const std::string dir = scratch_dir("coalesce");
  Options opt;
  opt.dir = dir;
  {
    DurabilityPlane plane(opt);
    const util::Symbol grp = util::Symbol::intern("Grp");
    const util::Symbol none;
    const util::Symbol load = util::Symbol::intern("load");
    const util::Symbol repl = util::Symbol::intern("replication");
    plane.on_gauge_applied(0, SimTime::seconds(1), grp, none, load,
                           events::Value(0.1));
    plane.on_gauge_applied(0, SimTime::seconds(2), grp, none, repl,
                           events::Value(2));
    // Repeat writes to the first key: only the newest survives the batch.
    plane.on_gauge_applied(0, SimTime::seconds(3), grp, none, load,
                           events::Value(0.2));
    plane.on_gauge_applied(0, SimTime::seconds(4), grp, none, load,
                           events::Value(0.3));
    plane.flush(SimTime::seconds(5));
    plane.close(SimTime::seconds(5));
  }
  const JournalReadResult r = read_journal(dir + "/" + kJournalFile);
  ASSERT_EQ(r.records.size(), 1u);
  const JournalRecord& batch = r.records[0];
  EXPECT_EQ(batch.type, RecordType::GaugeBatch);
  ASSERT_EQ(batch.gauges.size(), 2u);  // two keys, first-seen order
  EXPECT_EQ(batch.gauges[0].property, "load");
  EXPECT_EQ(batch.gauges[0].value, events::Value(0.3));
  EXPECT_EQ(batch.gauges[0].at, SimTime::seconds(4));
  EXPECT_EQ(batch.gauges[1].property, "replication");
}

TEST(PlaneTest, SyncIntervalDoesNotChangeJournalBytes) {
  // Group commit moves when bytes become durable, never what they are.
  auto run = [](SimTime interval, const std::string& dir) {
    Options opt;
    opt.dir = scratch_dir(dir);
    opt.sync_interval = interval;
    DurabilityPlane plane(opt);
    for (int i = 0; i < 20; ++i) {
      plane.on_ops(0, SimTime::seconds(i), static_cast<std::uint64_t>(i),
                   false, {set_load_op(0.1 * i, 0.1 * (i - 1))});
    }
    plane.close(SimTime::seconds(20));
    return read_file(opt.dir + "/" + kJournalFile);
  };
  const auto every_batch = run(SimTime::zero(), "sync-every");
  const auto grouped = run(SimTime::seconds(30), "sync-grouped");
  EXPECT_EQ(every_batch, grouped);
}

TEST(PlaneTest, AbandonDropsThePendingTail) {
  // abandon() is the crash seam's kill -9: whatever was not yet committed
  // by a group-commit point must not reach the file.
  const std::string dir = scratch_dir("abandon");
  Options opt;
  opt.dir = dir;
  opt.sync_interval = SimTime::seconds(1000);  // only the first batch syncs
  {
    DurabilityPlane plane(opt);
    plane.on_ops(0, SimTime::seconds(1), 0, false, {set_load_op(0.1, 0.0)});
    plane.on_ops(0, SimTime::seconds(2), 1, false, {set_load_op(0.2, 0.1)});
    plane.on_ops(0, SimTime::seconds(3), 2, false, {set_load_op(0.3, 0.2)});
    plane.abandon();
  }
  const JournalReadResult r = read_journal(dir + "/" + kJournalFile);
  EXPECT_FALSE(r.torn);
  ASSERT_EQ(r.records.size(), 1u);  // batches 2-3 died in the pending buffer
  EXPECT_EQ(r.records[0].lsn, 1u);
}

TEST(PlaneTest, CatchupVerifiesAndDivergenceThrows) {
  const std::string dir = scratch_dir("catchup");
  Options opt;
  opt.dir = dir;
  {
    DurabilityPlane plane(opt);
    plane.on_ops(0, SimTime::seconds(1), 0, false, {set_load_op(0.1, 0.0)});
    plane.on_ops(0, SimTime::seconds(2), 1, false, {set_load_op(0.2, 0.1)});
    plane.close(SimTime::seconds(2));
  }
  {
    // A faithful re-execution replays both frames and runs past the
    // reference without complaint.
    DurabilityPlane plane(opt);
    EXPECT_TRUE(plane.in_catchup());
    EXPECT_EQ(plane.reference_last_lsn(), 2u);
    EXPECT_EQ(plane.reference_horizon(), SimTime::seconds(2));
    plane.on_ops(0, SimTime::seconds(1), 0, false, {set_load_op(0.1, 0.0)});
    plane.on_ops(0, SimTime::seconds(2), 1, false, {set_load_op(0.2, 0.1)});
    EXPECT_FALSE(plane.in_catchup());
    plane.on_ops(0, SimTime::seconds(3), 2, false, {set_load_op(0.3, 0.2)});
    plane.close(SimTime::seconds(3));
  }
  {
    // A diverging re-execution (different op value) must throw, not fork
    // history.
    DurabilityPlane plane(opt);
    EXPECT_TRUE(plane.in_catchup());
    EXPECT_THROW(plane.on_ops(0, SimTime::seconds(1), 0, false,
                              {set_load_op(0.9, 0.0)}),
                 RecoveryError);
  }
}

TEST(PlaneTest, TornTailIsTruncatedWithWarningOnReopen) {
  const std::string dir = scratch_dir("torn-reopen");
  Options opt;
  opt.dir = dir;
  {
    DurabilityPlane plane(opt);
    plane.on_ops(0, SimTime::seconds(1), 0, false, {set_load_op(0.1, 0.0)});
    plane.on_ops(0, SimTime::seconds(2), 1, false, {set_load_op(0.2, 0.1)});
    plane.close(SimTime::seconds(2));
  }
  // Tear the file mid-frame, as a crash during a write would.
  std::vector<std::uint8_t> bytes = read_file(dir + "/" + kJournalFile);
  bytes.resize(bytes.size() - 3);
  write_file_atomic(dir + "/" + kJournalFile, bytes);
  {
    DurabilityPlane plane(opt);
    EXPECT_FALSE(plane.reference_warning().empty());
    EXPECT_EQ(plane.reference_last_lsn(), 1u);  // tail truncated to frame 1
    plane.abandon();
  }
}

// ---- RNG checkpointing ---------------------------------------------------

TEST(RngStateTest, SaveRestoreResumesTheExactSequence) {
  Rng a(123);
  (void)a.uniform();
  (void)a.normal();  // park a Box-Muller spare
  const Rng::State mid = a.save_state();
  std::vector<double> tail;
  for (int i = 0; i < 8; ++i) tail.push_back(a.normal());

  Rng b(999);  // different position entirely
  b.restore_state(mid);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b.normal(), tail[i]);
}

// ---- fault plane window close-out (satellite pin) ------------------------

TEST(FaultPlaneWindowTest, ExpiredWindowsDecrementAndFinalizeClosesStragglers) {
  sim::Simulator sim;
  fault::FaultProfile profile;
  profile.enabled = true;
  profile.seed = 42;
  profile.monitoring.channel_disconnect = 1.0;  // every touch opens a window
  profile.monitoring.disconnect_min = SimTime::seconds(5);
  profile.monitoring.disconnect_max = SimTime::seconds(5);
  fault::FaultPlane plane(sim, profile);

  const util::Symbol g1 = util::Symbol::intern("gauge-1");
  const util::Symbol g2 = util::Symbol::intern("gauge-2");
  EXPECT_TRUE(plane.channel_down(g1));
  EXPECT_TRUE(plane.channel_down(g2));
  EXPECT_EQ(plane.stats().channels_disconnected, 2u);

  // Touching a channel after its window lapsed closes it (the gauge drops)
  // before the hazard immediately opens a fresh one.
  sim.run_until(SimTime::seconds(6));
  EXPECT_TRUE(plane.channel_down(g1));
  EXPECT_EQ(plane.stats().channel_disconnects, 3u);  // new window opened
  EXPECT_EQ(plane.stats().channels_disconnected, 2u);

  // finalize closes the never-touched straggler and the fresh window both:
  // end-of-run stats must not report open windows past the horizon.
  plane.finalize(SimTime::seconds(6));
  EXPECT_EQ(plane.stats().channels_disconnected, 0u);
  plane.finalize(SimTime::seconds(6));  // idempotent
  EXPECT_EQ(plane.stats().channels_disconnected, 0u);
  // Counters (not gauges) are untouched by finalize.
  EXPECT_EQ(plane.stats().channel_disconnects, 3u);
}

// ---- suite CSV failed column (satellite pin) -----------------------------

TEST(SuiteCsvTest, FailedCaseKeepsWallClockAndQuotesError) {
  core::SuiteOutcome ok;
  ok.label = "cell-ok";
  ok.scenario = "lossy-grid";
  ok.fault_seed = 7;
  ok.wall_seconds = 1.5;
  ok.sim_seconds = 600.0;

  core::SuiteOutcome failed;
  failed.label = "cell-crash";
  failed.scenario = "lossy-grid";
  failed.fault_seed = 8;
  failed.wall_seconds = 0.25;
  failed.sim_seconds = 0.0;
  failed.error = "plan step exploded, \"twice\"";

  std::ostringstream out;
  core::write_suite_csv(out, {ok, failed});
  const std::string csv = out.str();

  EXPECT_NE(csv.find("failed"), std::string::npos);     // header column
  EXPECT_NE(csv.find("cell-crash"), std::string::npos); // row not dropped
  EXPECT_NE(csv.find("0.25"), std::string::npos);       // wall clock kept
  // The comma-and-quote error text arrives CSV-quoted.
  EXPECT_NE(csv.find("\"plan step exploded, \"\"twice\"\"\""),
            std::string::npos);
}

}  // namespace
}  // namespace arcadia::durability
