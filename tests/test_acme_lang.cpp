// Lexer, Armani expression parser/evaluator, and ADL round-trip tests.
#include <gtest/gtest.h>

#include "acme/adl.hpp"
#include "acme/evaluator.hpp"
#include "acme/expr_parser.hpp"
#include "acme/lexer.hpp"
#include "model/types.hpp"

namespace arcadia::acme {
namespace {

// ---- lexer ----

TEST(LexerTest, TokenizesOperators) {
  auto tokens = tokenize("a <= b != c !-> d(e) | f && g || !h");
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::Identifier, TokenKind::Le,
                       TokenKind::Identifier, TokenKind::Ne,
                       TokenKind::Identifier, TokenKind::BangArrow,
                       TokenKind::Identifier, TokenKind::LParen,
                       TokenKind::Identifier, TokenKind::RParen,
                       TokenKind::Pipe, TokenKind::Identifier,
                       TokenKind::AndAnd, TokenKind::Identifier,
                       TokenKind::OrOr, TokenKind::Not, TokenKind::Identifier,
                       TokenKind::EndOfFile}));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = tokenize("3.5 42 1e3 \"hi\\n\"");
  EXPECT_DOUBLE_EQ(tokens[0].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens[1].number, 42.0);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000.0);
  EXPECT_EQ(tokens[3].text, "hi\n");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = tokenize("a // line comment\n/* block\ncomment */ b");
  EXPECT_EQ(tokens.size(), 3u);  // a, b, EOF
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, ErrorsCarryPositions) {
  try {
    tokenize("ok\n  $");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
  EXPECT_THROW(tokenize("\"unterminated"), ParseError);
  EXPECT_THROW(tokenize("/* unterminated"), ParseError);
}

// ---- expression evaluation over a model ----

struct ExprRig {
  model::System sys{"S"};
  Evaluator evaluator;

  ExprRig() {
    auto& g1 = sys.add_component("G1", model::cs::kServerGroupT);
    g1.set_property("load", model::PropertyValue(8.0));
    g1.add_port("provide", model::cs::kProvidePortT);
    auto& g2 = sys.add_component("G2", model::cs::kServerGroupT);
    g2.set_property("load", model::PropertyValue(2.0));
    g2.add_port("provide", model::cs::kProvidePortT);
    auto& c = sys.add_component("C", model::cs::kClientT);
    c.set_property("averageLatency", model::PropertyValue(3.0));
    c.set_property("maxLatency", model::PropertyValue(2.0));
    c.add_port("request", model::cs::kRequestPortT);
    auto& conn = sys.add_connector("K", model::cs::kConnT);
    conn.add_role("clientSide", model::cs::kClientRoleT)
        .set_property("bandwidth", model::PropertyValue(5e3));
    conn.add_role("serverSide", model::cs::kServerRoleT);
    sys.attach({"C", "request", "K", "clientSide"});
    sys.attach({"G1", "provide", "K", "serverSide"});
  }

  EvalValue eval(const std::string& source) {
    auto expr = parse_expression(source);
    EvalContext ctx(sys);
    return evaluator.evaluate(*expr, ctx);
  }
  bool eval_bool(const std::string& source) { return eval(source).truthy(); }
};

TEST(EvaluatorTest, Arithmetic) {
  ExprRig rig;
  EXPECT_DOUBLE_EQ(rig.eval("1 + 2 * 3").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(rig.eval("(1 + 2) * 3").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(rig.eval("-4 + 10 % 3").as_number(), -3.0);
  EXPECT_DOUBLE_EQ(rig.eval("10 / 4").as_number(), 2.5);
  EXPECT_THROW(rig.eval("1 / 0"), ScriptError);
}

TEST(EvaluatorTest, ComparisonAndLogic) {
  ExprRig rig;
  EXPECT_TRUE(rig.eval_bool("1 < 2 and 2 <= 2"));
  EXPECT_TRUE(rig.eval_bool("1 > 2 or 3 >= 3"));
  EXPECT_TRUE(rig.eval_bool("!(1 == 2)"));
  EXPECT_TRUE(rig.eval_bool("\"abc\" < \"abd\""));
  EXPECT_TRUE(rig.eval_bool("nil == nil"));
  EXPECT_FALSE(rig.eval_bool("1 == nil"));
}

TEST(EvaluatorTest, ShortCircuit) {
  ExprRig rig;
  // The right operand would throw (unbound name) if evaluated.
  EXPECT_FALSE(rig.eval_bool("false and missingName"));
  EXPECT_TRUE(rig.eval_bool("true or missingName"));
  EXPECT_THROW(rig.eval_bool("true and missingName"), ScriptError);
}

TEST(EvaluatorTest, MemberAccessOnModel) {
  ExprRig rig;
  EXPECT_DOUBLE_EQ(rig.eval("size(self.Components)").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(rig.eval("size(self.Connectors)").as_number(), 1.0);
  EXPECT_THROW(rig.eval("self.NoSuchCollection"), ScriptError);
}

TEST(EvaluatorTest, SelectFiltersByTypeAndPredicate) {
  ExprRig rig;
  EXPECT_DOUBLE_EQ(
      rig.eval("size(select g : ServerGroupT in self.Components | true)")
          .as_number(),
      2.0);
  EXPECT_DOUBLE_EQ(
      rig.eval("size(select g : ServerGroupT in self.Components | g.load > 5)")
          .as_number(),
      1.0);
}

TEST(EvaluatorTest, SelectOneReturnsElementOrNil) {
  ExprRig rig;
  EvalValue v = rig.eval(
      "select one g : ServerGroupT in self.Components | g.load > 5");
  ASSERT_TRUE(v.is_element());
  EXPECT_EQ(v.as_element().name(), "G1");
  EXPECT_TRUE(
      rig.eval("select one g : ServerGroupT in self.Components | g.load > 99")
          .is_nil());
}

TEST(EvaluatorTest, ExistsAndForall) {
  ExprRig rig;
  EXPECT_TRUE(rig.eval_bool(
      "exists g : ServerGroupT in self.Components | g.load > 5"));
  EXPECT_FALSE(rig.eval_bool(
      "forall g : ServerGroupT in self.Components | g.load > 5"));
  EXPECT_TRUE(rig.eval_bool(
      "forall g : ServerGroupT in self.Components | g.load > 1"));
  // Vacuous truth over an empty filtered domain.
  EXPECT_TRUE(rig.eval_bool(
      "forall x : NoSuchT in self.Components | false"));
  EXPECT_FALSE(rig.eval_bool(
      "exists x : NoSuchT in self.Components | true"));
}

TEST(EvaluatorTest, ConnectedAndAttachedBuiltins) {
  ExprRig rig;
  EXPECT_TRUE(rig.eval_bool(
      "exists g : ServerGroupT in self.Components | connected(g, "
      "select one c : ClientT in self.Components | true)"));
  EXPECT_FALSE(rig.eval_bool(
      "connected(select one a : ServerGroupT in self.Components | a.name == "
      "\"G2\", select one c : ClientT in self.Components | true)"));
}

TEST(EvaluatorTest, NestedQuantifierOverPorts) {
  ExprRig rig;
  EXPECT_TRUE(rig.eval_bool(
      "exists c : ClientT in self.Components | "
      "exists p : RequestT in c.Ports | true"));
}

TEST(EvaluatorTest, UnqualifiedNamesUseContextElement) {
  ExprRig rig;
  auto expr = parse_expression("averageLatency <= maxLatency");
  EvalContext ctx(rig.sys);
  ctx.set_context_element(
      ElementRef::of_component(rig.sys, rig.sys.component("C")));
  // 3.0 <= 2.0 is false: the paper's latency constraint is violated.
  EXPECT_FALSE(rig.evaluator.evaluate_bool(*expr, ctx));
}

TEST(EvaluatorTest, GlobalsShadowContextProperties) {
  ExprRig rig;
  auto expr = parse_expression("averageLatency <= maxLatency");
  EvalContext ctx(rig.sys);
  ctx.set_context_element(
      ElementRef::of_component(rig.sys, rig.sys.component("C")));
  ctx.bind("maxLatency", EvalValue(10.0));
  EXPECT_TRUE(rig.evaluator.evaluate_bool(*expr, ctx));
}

TEST(EvaluatorTest, MethodCallWithoutHandlerFails) {
  ExprRig rig;
  EXPECT_THROW(
      rig.eval("(select one g : ServerGroupT in self.Components | true)"
               ".addServer()"),
      ScriptError);
}

TEST(EvaluatorTest, StringConcatenation) {
  ExprRig rig;
  EXPECT_EQ(rig.eval("\"a\" + \"b\"").as_string(), "ab");
}

TEST(EvaluatorTest, BuiltinMinMaxAbsContains) {
  ExprRig rig;
  EXPECT_DOUBLE_EQ(rig.eval("min(2, 3)").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(rig.eval("max(2, 3)").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(rig.eval("abs(0 - 4)").as_number(), 4.0);
  EXPECT_TRUE(rig.eval_bool(
      "contains(self.Components, select one c : ClientT in self.Components | "
      "true)"));
}

TEST(ExprParserTest, TrailingInputRejected) {
  EXPECT_THROW(parse_expression("1 + 2 extra"), ParseError);
}

TEST(ExprParserTest, ErrorPositions) {
  try {
    parse_expression("1 +");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
  }
}

// ---- ADL ----

TEST(AdlTest, ParsesGridDescription) {
  auto sys = parse_system(grid_acme_source());
  EXPECT_EQ(sys->name(), "GridStorage");
  EXPECT_TRUE(sys->has_component("ServerGrp1"));
  EXPECT_TRUE(sys->has_component("User3"));
  // Figure 3: three server groups + six users.
  EXPECT_EQ(sys->components().size(), 9u);
  EXPECT_EQ(sys->connectors().size(), 6u);
  EXPECT_EQ(sys->attachments().size(), 12u);
  const model::Component& grp = sys->component("ServerGrp1");
  EXPECT_EQ(grp.property("replicationCount").as_int(), 3);
  EXPECT_TRUE(grp.has_representation());
  EXPECT_TRUE(grp.representation_const().has_component("Server2"));
  EXPECT_DOUBLE_EQ(sys->connector("Conn1")
                       .role("clientSide")
                       .property("bandwidth")
                       .as_double(),
                   1e7);
}

TEST(AdlTest, ParsedSystemSatisfiesStyle) {
  auto sys = parse_system(grid_acme_source());
  model::Style style = model::client_server_style();
  auto problems = style.check_system(*sys);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(AdlTest, RoundTripStable) {
  auto sys = parse_system(grid_acme_source());
  std::string printed = print_system(*sys);
  auto reparsed = parse_system(printed);
  EXPECT_EQ(print_system(*reparsed), printed);
}

TEST(AdlTest, PropertyValueKindsPreserved) {
  auto sys = parse_system(
      "System S = {"
      "  Component C : ClientT = {"
      "    Property b : boolean = true;"
      "    Property i : int = -3;"
      "    Property f : float = 2.5;"
      "    Property s : string = \"hey\";"
      "  };"
      "};");
  const model::Component& c = sys->component("C");
  EXPECT_TRUE(c.property("b").as_bool());
  EXPECT_EQ(c.property("i").as_int(), -3);
  EXPECT_DOUBLE_EQ(c.property("f").as_double(), 2.5);
  EXPECT_EQ(c.property("s").as_string(), "hey");
}

TEST(AdlTest, AttachmentValidationAtParse) {
  EXPECT_THROW(parse_system("System S = { Attachment A.p to K.r; };"),
               ModelError);
}

TEST(AdlTest, MalformedInputPositions) {
  try {
    parse_system("System S = {\n  Component;\n};");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse_system("NotASystem X = {};"), ParseError);
  EXPECT_THROW(parse_system("System S = {} trailing;"), ParseError);
}

}  // namespace
}  // namespace arcadia::acme
