#include <gtest/gtest.h>

#include "util/units.hpp"

namespace arcadia {
namespace {

TEST(SimTimeTest, ConversionRoundTrips) {
  EXPECT_EQ(SimTime::seconds(1.5).as_micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(SimTime::millis(250).as_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(SimTime::minutes(2).as_seconds(), 120.0);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime t = SimTime::seconds(1) + SimTime::millis(500);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 1.5);
  t -= SimTime::millis(500);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 1.0);
  EXPECT_DOUBLE_EQ((t * 3.0).as_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(SimTime::seconds(3) / SimTime::seconds(2), 1.5);
}

TEST(SimTimeTest, InfinityIsSticky) {
  EXPECT_TRUE(SimTime::infinity().is_infinite());
  EXPECT_LT(SimTime::seconds(1e9), SimTime::infinity());
}

TEST(DataSizeTest, UnitsAgree) {
  EXPECT_DOUBLE_EQ(DataSize::kilobytes(20).as_bytes(), 20 * 1024.0);
  EXPECT_DOUBLE_EQ(DataSize::kilobytes(1).as_bits(), 8192.0);
  EXPECT_DOUBLE_EQ(DataSize::megabytes(1).as_kilobytes(), 1024.0);
}

TEST(BandwidthTest, UnitsAgree) {
  EXPECT_DOUBLE_EQ(Bandwidth::mbps(10).as_bps(), 1e7);
  EXPECT_DOUBLE_EQ(Bandwidth::kbps(10).as_bps(), 1e4);
}

TEST(TransferTimeTest, BasicAndZeroRate) {
  SimTime t = transfer_time(DataSize::kilobytes(20), Bandwidth::kbps(10));
  EXPECT_NEAR(t.as_seconds(), 20 * 1024 * 8 / 1e4, 1e-9);
  EXPECT_TRUE(transfer_time(DataSize::bytes(1), Bandwidth::zero()).is_infinite());
}

}  // namespace
}  // namespace arcadia
