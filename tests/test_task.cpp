#include <gtest/gtest.h>

#include "task/task.hpp"
#include "model/types.hpp"

namespace arcadia::task {
namespace {

TEST(ErlangCTest, KnownValues) {
  // Single server: Erlang-C equals rho.
  EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-9);
  // Unstable systems always wait.
  EXPECT_DOUBLE_EQ(erlang_c(2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(erlang_c(0, 0.5), 1.0);
  // More servers -> lower waiting probability.
  EXPECT_GT(erlang_c(2, 1.5), erlang_c(3, 1.5));
  EXPECT_GT(erlang_c(3, 1.5), erlang_c(4, 1.5));
}

TEST(SizingTest, PaperParametersNeedThreeServers) {
  // Section 5: six clients at ~1 req/s each, 2 s latency bound. With the
  // size-dependent service model (~0.4 s per 20 KB response at the design
  // point) and a ~1 s queue-wait budget, the analysis lands on 3 replicas,
  // matching "an initial starting point of 3 replicated servers ... would
  // be sufficient to serve our six clients".
  SizingInput input;
  input.arrival_rate_hz = 6.0;
  input.service_time_s = 0.4;
  input.target_wait_s = 0.5;
  SizingResult r = size_server_group(input);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.servers, 3);  // 2 servers would be unstable (rho = 1.2)
  EXPECT_LT(r.utilization, 1.0);
  EXPECT_LE(r.expected_wait_s, 0.5);
}

TEST(SizingTest, HigherLoadNeedsMoreServers) {
  SizingInput light;
  light.arrival_rate_hz = 6.0;
  light.service_time_s = 0.4;
  light.target_wait_s = 0.5;
  SizingInput heavy = light;
  heavy.arrival_rate_hz = 12.0;  // the stress phase
  auto lr = size_server_group(light);
  auto hr = size_server_group(heavy);
  ASSERT_TRUE(lr.feasible);
  ASSERT_TRUE(hr.feasible);
  EXPECT_GT(hr.servers, lr.servers);
}

TEST(SizingTest, InfeasibleInputs) {
  SizingInput bad;
  bad.arrival_rate_hz = 0.0;
  EXPECT_FALSE(size_server_group(bad).feasible);
  SizingInput impossible;
  impossible.arrival_rate_hz = 1000.0;
  impossible.service_time_s = 1.0;
  impossible.max_servers = 4;
  EXPECT_FALSE(size_server_group(impossible).feasible);
}

TEST(MinBandwidthTest, PaperFloor) {
  // 20 KB responses with most of the 2 s budget for transfer: the paper's
  // 10 Kbps-scale bandwidth floor falls out at a ~16 s transfer budget
  // (their floor guards outright starvation, not the common case).
  Bandwidth bw = min_bandwidth_for(DataSize::kilobytes(20),
                                   SimTime::seconds(16.384));
  EXPECT_NEAR(bw.as_kbps(), 10.0, 0.01);
  EXPECT_TRUE(
      min_bandwidth_for(DataSize::kilobytes(1), SimTime::zero()).as_bps() >
      1e11);
}

TEST(ApplyProfileTest, SetsClientThresholds) {
  model::System sys("s");
  auto& c = sys.add_component("User1", model::cs::kClientT);
  c.set_property("maxLatency", model::PropertyValue(99.0));
  auto& g = sys.add_component("G", model::cs::kServerGroupT);
  (void)g;
  PerformanceProfile profile;
  profile.max_latency = SimTime::seconds(2);
  apply_profile(sys, profile);
  EXPECT_DOUBLE_EQ(c.property("maxLatency").as_double(), 2.0);
  EXPECT_FALSE(sys.component("G").has_property("maxLatency"));
}

}  // namespace
}  // namespace arcadia::task
