// End-to-end integration: the full adaptation loop on shortened scenarios,
// control-vs-repair comparisons, determinism, and the paper's qualitative
// claims.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace arcadia::core {
namespace {

/// Short scenario: trouble starts at 60 s, stress 300-420 s, ends 600 s.
ExperimentOptions short_options() {
  ExperimentOptions opt;
  opt.scenario.horizon = SimTime::seconds(600);
  opt.scenario.quiescent_end = SimTime::seconds(60);
  opt.scenario.stress_start = SimTime::seconds(300);
  opt.scenario.stress_end = SimTime::seconds(420);
  return opt;
}

TEST(IntegrationTest, ControlRunStarvesC3C4) {
  ExperimentOptions opt = short_options();
  opt.adaptation = false;
  ExperimentResult r = run_experiment(opt);
  EXPECT_FALSE(r.adaptive);
  EXPECT_TRUE(r.repairs.empty());
  // User3/User4 (C3/C4) cross the threshold shortly after 60 s and stay up
  // through the bandwidth phase.
  SimTime c3 = r.client_first_crossing(2);
  SimTime c4 = r.client_first_crossing(3);
  EXPECT_LT(c3.as_seconds(), 120.0);
  EXPECT_LT(c4.as_seconds(), 120.0);
  // The unaffected clients stay healthy until the stress phase.
  EXPECT_GT(r.client_first_crossing(0).as_seconds(), 290.0);
  EXPECT_GT(r.client_first_crossing(4).as_seconds(), 290.0);
}

TEST(IntegrationTest, ControlStressOverloadsQueues) {
  ExperimentOptions opt = short_options();
  opt.adaptation = false;
  ExperimentResult r = run_experiment(opt);
  const GroupSeries* sg1 = r.group("ServerGrp1");
  ASSERT_NE(sg1, nullptr);
  // Queue exceeds the overload limit during stress...
  EXPECT_GT(sg1->queue_length.max_over(SimTime::seconds(300),
                                       SimTime::seconds(420)),
            6.0);
  // ...and was healthy before the competition phase.
  EXPECT_LT(sg1->queue_length.max_over(SimTime::zero(), SimTime::seconds(60)),
            6.0);
}

TEST(IntegrationTest, ControlBandwidthCollapses) {
  ExperimentOptions opt = short_options();
  opt.adaptation = false;
  ExperimentResult r = run_experiment(opt);
  const ClientSeries* c3 = r.client("User3");
  ASSERT_NE(c3, nullptr);
  double before = c3->bandwidth_mbps.mean_over(SimTime::seconds(10),
                                               SimTime::seconds(55));
  double during = c3->bandwidth_mbps.min_over(SimTime::seconds(70),
                                              SimTime::seconds(290));
  EXPECT_GT(before, 5.0);
  EXPECT_LT(during, 0.01);  // below the 10 Kbps repair threshold
}

TEST(IntegrationTest, AdaptationRepairsBandwidthPhase) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  ExperimentResult r = run_experiment(opt);
  EXPECT_TRUE(r.adaptive);
  ASSERT_FALSE(r.repairs.empty());
  // A move repair for User3 or User4 happened during the bandwidth phase.
  bool moved = false;
  for (const auto& rec : r.repairs) {
    if (rec.committed && rec.moves > 0 && rec.started < SimTime::seconds(300)) {
      moved = true;
      EXPECT_TRUE(rec.element == "User3" || rec.element == "User4");
    }
  }
  EXPECT_TRUE(moved);
}

TEST(IntegrationTest, AdaptationBeatsControl) {
  ExperimentOptions opt = short_options();
  PairedResults pair = run_control_and_repair(opt);
  double control = pair.control.mean_fraction_above();
  double repaired = pair.repair.mean_fraction_above();
  EXPECT_GT(control, 0.15);
  EXPECT_LT(repaired, control * 0.7);  // clear qualitative win
}

TEST(IntegrationTest, RepairsTakeAboutThirtySeconds) {
  // This pins the PAPER's repair shape, so it runs the legacy strictly
  // sequential replay; the plan pipeline intentionally beats these numbers
  // (see PlanPipelineShortensRepairs below and bench_fig11_repair_latency).
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  opt.framework.plan_pipeline = false;
  ExperimentResult r = run_experiment(opt);
  int counted = 0;
  for (const auto& rec : r.repairs) {
    if (!rec.committed || !rec.finished) continue;
    ++counted;
    EXPECT_GT(rec.duration().as_seconds(), 20.0);
    EXPECT_LT(rec.duration().as_seconds(), 45.0);
    // Gauge communication dominates (Section 5.3).
    EXPECT_GT(rec.gauge_cost.as_seconds(), rec.duration().as_seconds() * 0.6);
  }
  EXPECT_GT(counted, 0);
}

TEST(IntegrationTest, PlanPipelineShortensRepairs) {
  // Same experiment, staged-plan enactment (the default): batched gauge
  // re-deployments overlap across elements, so a committed repair's
  // end-to-end time drops well under the sequential baseline's ~30 s.
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  ExperimentResult r = run_experiment(opt);
  auto mean_repair = [](const ExperimentResult& res) {
    double sum = 0.0;
    int n = 0;
    for (const auto& rec : res.repairs) {
      if (rec.committed && rec.finished) {
        sum += rec.duration().as_seconds();
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  const double plan_mean = mean_repair(r);
  EXPECT_GT(plan_mean, 0.0);

  opt.framework.plan_pipeline = false;
  const double legacy_mean = mean_repair(run_experiment(opt));
  // Move repairs disturb two gauge elements and halve (15 s vs 30 s);
  // single-element repairs keep their per-element command channel, so the
  // mean lands clearly under the baseline without collapsing to half.
  EXPECT_LT(plan_mean, legacy_mean * 0.9);
  EXPECT_TRUE(r.consistency_issues.empty());
}

TEST(IntegrationTest, GaugeCachingShortensRepairs) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  opt.framework.gauge_caching = true;
  ExperimentResult r = run_experiment(opt);
  int counted = 0;
  for (const auto& rec : r.repairs) {
    if (!rec.committed || !rec.finished) continue;
    ++counted;
    EXPECT_LT(rec.duration().as_seconds(), 8.0);
  }
  EXPECT_GT(counted, 0);
}

TEST(IntegrationTest, StressRecruitsSpareServers) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  ExperimentResult r = run_experiment(opt);
  // During the stress phase the framework activates at least one spare.
  bool activated = false;
  for (const auto& ev : r.server_events) {
    if (ev.active && ev.time >= SimTime::seconds(300)) activated = true;
  }
  EXPECT_TRUE(activated);
  EXPECT_GE(r.repair_stats.servers_added, 1u);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  ExperimentResult a = run_experiment(opt);
  ExperimentResult b = run_experiment(opt);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (std::size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].started, b.repairs[i].started);
    EXPECT_EQ(a.repairs[i].strategy, b.repairs[i].strategy);
    EXPECT_EQ(a.repairs[i].committed, b.repairs[i].committed);
  }
}

TEST(IntegrationTest, SeedChangesTrajectoryNotShape) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  ExperimentResult a = run_experiment(opt);
  opt.scenario.seed = 777;
  ExperimentResult b = run_experiment(opt);
  EXPECT_NE(a.requests_issued, b.requests_issued);
  // Shape invariant: both repaired runs keep most clients under the bound.
  EXPECT_LT(a.mean_fraction_above(), 0.35);
  EXPECT_LT(b.mean_fraction_above(), 0.35);
}

TEST(IntegrationTest, NativeStrategiesMatchScriptDecisions) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  ExperimentResult script = run_experiment(opt);
  opt.framework.use_script = false;
  ExperimentResult native = run_experiment(opt);
  ASSERT_FALSE(script.repairs.empty());
  ASSERT_FALSE(native.repairs.empty());
  // Identical workloads and thresholds: the first repair decision agrees.
  EXPECT_EQ(script.repairs[0].element, native.repairs[0].element);
  EXPECT_EQ(script.repairs[0].strategy, native.repairs[0].strategy);
  EXPECT_EQ(script.repairs[0].committed, native.repairs[0].committed);
}

TEST(IntegrationTest, ModelStaysStructurallyValid) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  // Run and then rebuild the framework's final model state indirectly:
  // validity is asserted through the absence of exceptions and through the
  // repair records all being well-formed.
  ExperimentResult r = run_experiment(opt);
  for (const auto& rec : r.repairs) {
    EXPECT_FALSE(rec.constraint_id.empty());
    EXPECT_FALSE(rec.element.empty());
    if (rec.committed && rec.finished) {
      EXPECT_GE(rec.completed, rec.started);
      EXPECT_FALSE(rec.ops.empty());
    }
  }
}

TEST(IntegrationTest, MonitoringQosDoesNotBreakLoop) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  opt.framework.monitoring_qos = true;
  ExperimentResult r = run_experiment(opt);
  EXPECT_FALSE(r.repairs.empty());
  EXPECT_LT(r.mean_fraction_above(), 0.35);
}

TEST(IntegrationTest, WorstFirstPolicyRuns) {
  ExperimentOptions opt = short_options();
  opt.adaptation = true;
  opt.framework.policy = repair::ViolationPolicy::WorstFirst;
  ExperimentResult r = run_experiment(opt);
  EXPECT_FALSE(r.repairs.empty());
  EXPECT_LT(r.mean_fraction_above(), 0.35);
}

}  // namespace
}  // namespace arcadia::core
