// Constraint checker and repair engine, using stub runtime collaborators.
#include <gtest/gtest.h>

#include "acme/script.hpp"
#include "model/types.hpp"
#include "repair/constraint.hpp"
#include "repair/engine.hpp"
#include "repair/scripts.hpp"

namespace arcadia::repair {
namespace {

namespace cs = model::cs;

model::System make_system() {
  model::System sys("GridStorage");
  for (int g = 1; g <= 2; ++g) {
    auto& grp = sys.add_component("ServerGrp" + std::to_string(g),
                                  cs::kServerGroupT);
    grp.set_property("load", model::PropertyValue(0.0));
    grp.set_property("replicationCount", model::PropertyValue(g == 1 ? 3 : 2));
    grp.set_property("utilization", model::PropertyValue(0.5));
    grp.add_port("provide", cs::kProvidePortT);
    grp.representation();
  }
  for (int c = 1; c <= 2; ++c) {
    auto& client =
        sys.add_component("User" + std::to_string(c), cs::kClientT);
    client.set_property("averageLatency", model::PropertyValue(0.5));
    client.set_property("maxLatency", model::PropertyValue(2.0));
    client.add_port("request", cs::kRequestPortT);
    auto& conn =
        sys.add_connector("Conn_User" + std::to_string(c), cs::kConnT);
    conn.add_role("clientSide", cs::kClientRoleT)
        .set_property("bandwidth", model::PropertyValue(1e7));
    conn.add_role("serverSide", cs::kServerRoleT);
    sys.attach({"User" + std::to_string(c), "request",
                "Conn_User" + std::to_string(c), "clientSide"});
    sys.attach({"ServerGrp1", "provide", "Conn_User" + std::to_string(c),
                "serverSide"});
  }
  return sys;
}

void bind_standard_globals(ConstraintChecker& checker) {
  checker.bind_global("maxServerLoad", acme::EvalValue(6.0));
  checker.bind_global("minBandwidth", acme::EvalValue(1e4));
  checker.bind_global("minUtilization", acme::EvalValue(0.2));
  checker.bind_global("minReplicas", acme::EvalValue(2.0));
}

TEST(FreeNamesTest, CollectsUnqualifiedNames) {
  auto expr = acme::parse_expression("averageLatency <= maxLatency");
  auto names = free_names(*expr);
  EXPECT_EQ(names, (std::vector<std::string>{"averageLatency", "maxLatency"}));
}

TEST(FreeNamesTest, BindersAndCalleesExcluded) {
  auto expr = acme::parse_expression(
      "exists g : ServerGroupT in self.Components | g.load > maxServerLoad");
  auto names = free_names(*expr);
  EXPECT_EQ(names, std::vector<std::string>{"maxServerLoad"});
}

TEST(ConstraintCheckerTest, InstantiatesOverMatchingElements) {
  model::System sys = make_system();
  ConstraintChecker checker(sys);
  bind_standard_globals(checker);
  acme::Script script = acme::parse_script(extended_script());
  std::size_t created = checker.instantiate(script);
  // Latency invariant on 2 clients + utilization invariant on 2 groups.
  EXPECT_EQ(created, 4u);
  EXPECT_TRUE(checker.check().empty());
}

TEST(ConstraintCheckerTest, DetectsLatencyViolation) {
  model::System sys = make_system();
  ConstraintChecker checker(sys);
  bind_standard_globals(checker);
  acme::Script script = acme::parse_script(extended_script());
  checker.instantiate(script);
  sys.component("User2").set_property("averageLatency",
                                      model::PropertyValue(7.5));
  auto violations = checker.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].element, "User2");
  EXPECT_DOUBLE_EQ(violations[0].observed, 7.5);
  EXPECT_EQ(violations[0].constraint->handler, "fixLatency");
}

TEST(ConstraintCheckerTest, UtilizationInvariantGuardsMinReplicas) {
  model::System sys = make_system();
  ConstraintChecker checker(sys);
  bind_standard_globals(checker);
  checker.instantiate(acme::parse_script(extended_script()));
  // Idle group at minimum replication: no violation (composite invariant).
  sys.component("ServerGrp2").set_property("utilization",
                                           model::PropertyValue(0.0));
  EXPECT_TRUE(checker.check().empty());
  // Idle group above minimum: violation.
  sys.component("ServerGrp1").set_property("utilization",
                                           model::PropertyValue(0.0));
  auto violations = checker.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].element, "ServerGrp1");
  EXPECT_EQ(violations[0].constraint->handler, "trimServers");
}

TEST(ConstraintCheckerTest, ExplicitConstraintAndSatisfied) {
  model::System sys = make_system();
  ConstraintChecker checker(sys);
  checker.add_constraint("c1", "User1", "averageLatency <= 1.0", "noop");
  EXPECT_TRUE(checker.satisfied("c1"));
  sys.component("User1").set_property("averageLatency",
                                      model::PropertyValue(3.0));
  EXPECT_FALSE(checker.satisfied("c1"));
  EXPECT_THROW(checker.satisfied("ghost"), ModelError);
}

TEST(ConstraintCheckerTest, RemovedElementSkipped) {
  model::System sys = make_system();
  ConstraintChecker checker(sys);
  bind_standard_globals(checker);
  checker.instantiate(acme::parse_script(extended_script()));
  sys.component("User1").set_property("averageLatency",
                                      model::PropertyValue(9.0));
  sys.remove_component("User1");
  EXPECT_TRUE(checker.check().empty());  // no crash, no stale violation
}

// ---- engine with stub collaborators ----

class StubQueries : public RuntimeQueries {
 public:
  std::optional<std::string> good_sgrp;
  std::optional<std::string> spare;
  std::optional<std::string> less_loaded;
  std::optional<std::string> removable;
  SimTime per_query_cost = SimTime::millis(10);

  std::optional<std::string> find_good_sgrp(const std::string&,
                                            Bandwidth) override {
    accumulated_ += per_query_cost;
    return good_sgrp;
  }
  std::optional<std::string> find_spare_server(const std::string&,
                                               Bandwidth) override {
    accumulated_ += per_query_cost;
    return spare;
  }
  std::optional<std::string> find_less_loaded_sgrp(const std::string&,
                                                   const std::string&,
                                                   Bandwidth, double) override {
    accumulated_ += per_query_cost;
    return less_loaded;
  }
  std::optional<std::string> find_removable_server(
      const std::string&) override {
    accumulated_ += per_query_cost;
    return removable;
  }
  SimTime drain_query_cost() override {
    SimTime out = accumulated_;
    accumulated_ = SimTime::zero();
    return out;
  }

 private:
  SimTime accumulated_;
};

class StubTranslator : public Translator {
 public:
  std::vector<model::OpRecord> seen;
  SimTime cost = SimTime::millis(500);
  SimTime apply(const std::vector<model::OpRecord>& records) override {
    for (const auto& r : records) seen.push_back(r);
    return cost;
  }
};

struct EngineRig {
  sim::Simulator sim;
  model::System sys = make_system();
  acme::Script script = acme::parse_script(extended_script());
  StubQueries queries;
  StubTranslator translator;
  std::unique_ptr<RepairEngine> engine;
  ConstraintChecker checker{sys};

  explicit EngineRig(RepairEngineConfig cfg = {}) {
    engine = std::make_unique<RepairEngine>(sim, sys, script, &queries,
                                            &translator, nullptr, cfg);
    bind_standard_globals(checker);
    checker.instantiate(script);
  }

  void violate(const std::string& client, double latency) {
    sys.component(client).set_property("averageLatency",
                                       model::PropertyValue(latency));
  }
  bool check_and_handle() {
    return engine->handle_violations(checker.check());
  }
};

TEST(RepairEngineTest, CommitsBandwidthMoveAndTranslates) {
  EngineRig rig;
  rig.violate("User1", 5.0);
  rig.sys.connector("Conn_User1")
      .role("clientSide")
      .set_property("bandwidth", model::PropertyValue(1e3));
  rig.queries.good_sgrp = "ServerGrp2";
  ASSERT_TRUE(rig.check_and_handle());
  EXPECT_TRUE(rig.engine->busy());
  rig.sim.run_until(SimTime::seconds(10));
  EXPECT_FALSE(rig.engine->busy());
  ASSERT_EQ(rig.engine->records().size(), 1u);
  const RepairRecord& rec = rig.engine->records()[0];
  EXPECT_TRUE(rec.committed);
  EXPECT_TRUE(rec.finished);
  EXPECT_EQ(rec.moves, 1);
  EXPECT_EQ(rec.strategy, "fixLatency");
  // The translator saw the boundTo property op.
  bool saw_bound = false;
  for (const auto& op : rig.translator.seen) {
    if (op.kind == model::OpKind::SetProperty && op.property == "boundTo") {
      saw_bound = true;
      EXPECT_EQ(op.value.as_string(), "ServerGrp2");
    }
  }
  EXPECT_TRUE(saw_bound);
  // Model reflects the move.
  EXPECT_TRUE(rig.sys.attached("ServerGrp2", "provide", "Conn_User1",
                               "serverSide"));
}

TEST(RepairEngineTest, AbortRollsBackAndCoolsDown) {
  EngineRig rig;
  rig.violate("User1", 5.0);  // healthy bandwidth, healthy load -> no tactic
  ASSERT_TRUE(rig.check_and_handle());
  ASSERT_EQ(rig.engine->records().size(), 1u);
  EXPECT_TRUE(rig.engine->records()[0].aborted);
  EXPECT_EQ(rig.engine->records()[0].abort_reason, "NoApplicableTactic");
  EXPECT_FALSE(rig.engine->busy());
  EXPECT_TRUE(rig.engine->constraint_cooling(
      rig.engine->records()[0].constraint_id));
  // Cooldown suppresses immediate retries.
  EXPECT_FALSE(rig.check_and_handle());
  rig.sim.run_until(SimTime::seconds(61));
  EXPECT_TRUE(rig.check_and_handle());
}

TEST(RepairEngineTest, DampingOffRetriesImmediately) {
  RepairEngineConfig cfg;
  cfg.damping = false;
  EngineRig rig(cfg);
  rig.violate("User1", 5.0);
  EXPECT_TRUE(rig.check_and_handle());
  EXPECT_TRUE(rig.check_and_handle());  // no cooldown
  EXPECT_EQ(rig.engine->records().size(), 2u);
}

TEST(RepairEngineTest, ServerLoadRepairAddsSpare) {
  EngineRig rig;
  rig.violate("User1", 5.0);
  rig.sys.component("ServerGrp1").set_property("load",
                                               model::PropertyValue(9.0));
  rig.queries.spare = "Server4";
  ASSERT_TRUE(rig.check_and_handle());
  rig.sim.run_until(SimTime::seconds(10));
  const RepairRecord& rec = rig.engine->records()[0];
  EXPECT_TRUE(rec.committed);
  EXPECT_EQ(rec.servers_added, 1);
  EXPECT_TRUE(rig.sys.component("ServerGrp1")
                  .representation_const()
                  .has_component("Server4"));
  EXPECT_EQ(
      rig.sys.component("ServerGrp1").property("replicationCount").as_int(),
      4);
}

TEST(RepairEngineTest, LoadByMoveWhenNoSpares) {
  EngineRig rig;
  rig.violate("User1", 5.0);
  rig.sys.component("ServerGrp1").set_property("load",
                                               model::PropertyValue(9.0));
  rig.queries.spare = std::nullopt;
  rig.queries.less_loaded = "ServerGrp2";
  ASSERT_TRUE(rig.check_and_handle());
  rig.sim.run_until(SimTime::seconds(10));
  const RepairRecord& rec = rig.engine->records()[0];
  EXPECT_TRUE(rec.committed);
  EXPECT_EQ(rec.moves, 1);
  ASSERT_GE(rec.tactics.size(), 3u);
  EXPECT_EQ(rec.tactics[2].first, "fixLoadByMove");
}

TEST(RepairEngineTest, FirstReportedVsWorstFirst) {
  {
    EngineRig rig;
    rig.violate("User1", 3.0);
    rig.violate("User2", 30.0);
    rig.queries.good_sgrp = "ServerGrp2";
    rig.sys.connector("Conn_User1").role("clientSide").set_property(
        "bandwidth", model::PropertyValue(1e3));
    rig.sys.connector("Conn_User2").role("clientSide").set_property(
        "bandwidth", model::PropertyValue(1e3));
    rig.check_and_handle();
    EXPECT_EQ(rig.engine->records()[0].element, "User1");  // first reported
  }
  {
    RepairEngineConfig cfg;
    cfg.policy = ViolationPolicy::WorstFirst;
    EngineRig rig(cfg);
    rig.violate("User1", 3.0);
    rig.violate("User2", 30.0);
    rig.queries.good_sgrp = "ServerGrp2";
    rig.sys.connector("Conn_User1").role("clientSide").set_property(
        "bandwidth", model::PropertyValue(1e3));
    rig.sys.connector("Conn_User2").role("clientSide").set_property(
        "bandwidth", model::PropertyValue(1e3));
    rig.check_and_handle();
    EXPECT_EQ(rig.engine->records()[0].element, "User2");  // worst latency
  }
}

TEST(RepairEngineTest, BusyEngineDefersNewRepairs) {
  EngineRig rig;
  rig.violate("User1", 5.0);
  rig.violate("User2", 5.0);
  for (const auto& name : {"Conn_User1", "Conn_User2"}) {
    rig.sys.connector(name).role("clientSide").set_property(
        "bandwidth", model::PropertyValue(1e3));
  }
  rig.queries.good_sgrp = "ServerGrp2";
  ASSERT_TRUE(rig.check_and_handle());
  EXPECT_FALSE(rig.check_and_handle());  // busy
  rig.sim.run_until(SimTime::seconds(10));
  EXPECT_TRUE(rig.check_and_handle());  // User2's turn
  rig.sim.run_until(SimTime::seconds(20));
  EXPECT_EQ(rig.engine->stats().committed, 2u);
}

TEST(RepairEngineTest, RepairDurationIncludesCosts) {
  RepairEngineConfig cfg;
  cfg.decision_cost = SimTime::millis(100);
  EngineRig rig(cfg);
  rig.queries.per_query_cost = SimTime::millis(200);
  rig.translator.cost = SimTime::seconds(1);
  rig.violate("User1", 5.0);
  rig.sys.connector("Conn_User1")
      .role("clientSide")
      .set_property("bandwidth", model::PropertyValue(1e3));
  rig.queries.good_sgrp = "ServerGrp2";
  rig.check_and_handle();
  rig.sim.run_until(SimTime::seconds(30));
  const RepairRecord& rec = rig.engine->records()[0];
  // decision 0.1 + query 0.2 + ops 1.0 (no gauges in this rig).
  EXPECT_NEAR(rec.duration().as_seconds(), 1.3, 1e-6);
  EXPECT_EQ(rec.query_cost, SimTime::millis(200));
  EXPECT_EQ(rec.op_cost, SimTime::seconds(1));
}

TEST(RepairEngineTest, SettleTimeSuppressesElement) {
  EngineRig rig;
  rig.violate("User1", 5.0);
  rig.sys.connector("Conn_User1")
      .role("clientSide")
      .set_property("bandwidth", model::PropertyValue(1e3));
  rig.queries.good_sgrp = "ServerGrp2";
  rig.check_and_handle();
  rig.sim.run_until(SimTime::seconds(5));
  EXPECT_TRUE(rig.engine->suppressed("User1"));
  // Still violating (stale gauge), but suppressed.
  EXPECT_FALSE(rig.check_and_handle());
  rig.sim.run_until(SimTime::seconds(40));
  EXPECT_FALSE(rig.engine->suppressed("User1"));
}

TEST(RepairEngineTest, RepairWindowsExposed) {
  EngineRig rig;
  rig.violate("User1", 5.0);
  rig.sys.connector("Conn_User1")
      .role("clientSide")
      .set_property("bandwidth", model::PropertyValue(1e3));
  rig.queries.good_sgrp = "ServerGrp2";
  rig.check_and_handle();
  rig.sim.run_until(SimTime::seconds(10));
  auto windows = rig.engine->repair_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_LT(windows[0].first, windows[0].second);
}

class ThrowingTranslator : public Translator {
 public:
  SimTime apply(const std::vector<model::OpRecord>&) override {
    throw RuntimeOpError("spare server vanished");
  }
};

TEST(RepairEngineTest, RuntimeFailureAbortsAndCoolsDown) {
  sim::Simulator sim;
  model::System sys = make_system();
  acme::Script script = acme::parse_script(extended_script());
  StubQueries queries;
  queries.spare = "Server4";
  ThrowingTranslator translator;
  RepairEngine engine(sim, sys, script, &queries, &translator, nullptr, {});
  ConstraintChecker checker(sys);
  bind_standard_globals(checker);
  checker.instantiate(script);

  sys.component("User1").set_property("averageLatency",
                                      model::PropertyValue(9.0));
  sys.component("ServerGrp1").set_property("load", model::PropertyValue(9.0));
  ASSERT_TRUE(engine.handle_violations(checker.check()));
  sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(engine.records().size(), 1u);
  const RepairRecord& rec = engine.records()[0];
  EXPECT_TRUE(rec.aborted);
  EXPECT_TRUE(rec.finished);
  EXPECT_NE(rec.abort_reason.find("RuntimeFailure"), std::string::npos);
  EXPECT_FALSE(engine.busy());
  EXPECT_TRUE(engine.constraint_cooling(rec.constraint_id));
  EXPECT_EQ(engine.stats().committed, 0u);
}

TEST(RepairEngineTest, NativeStrategiesViaConfig) {
  RepairEngineConfig cfg;
  cfg.use_script = false;
  EngineRig rig(cfg);
  rig.violate("User1", 5.0);
  rig.sys.component("ServerGrp1").set_property("load",
                                               model::PropertyValue(9.0));
  rig.queries.spare = "Server4";
  ASSERT_TRUE(rig.check_and_handle());
  rig.sim.run_until(SimTime::seconds(10));
  EXPECT_TRUE(rig.engine->records()[0].committed);
  EXPECT_EQ(rig.engine->records()[0].servers_added, 1);
}

}  // namespace
}  // namespace arcadia::repair
