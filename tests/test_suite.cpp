// ExperimentSuite: grid expansion produces the right (scenario x variant)
// cases with registry defaults, and the thread-pooled run keeps queue
// order, isolates failures per case, and actually completes experiments.
#include <gtest/gtest.h>

#include "core/suite.hpp"

namespace arcadia::core {
namespace {

TEST(ExperimentSuiteTest, GridExpandsScenarioByVariant) {
  ExperimentSuite suite;
  SuiteVariant control{"control", FrameworkConfig{}, /*adaptation=*/false};
  SuiteVariant adapted{"adapted", FrameworkConfig{}, /*adaptation=*/true};
  suite.add_grid({"paper-fig6", "flash-crowd"}, {control, adapted});

  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite.cases()[0].label, "paper-fig6/control");
  EXPECT_EQ(suite.cases()[1].label, "paper-fig6/adapted");
  EXPECT_EQ(suite.cases()[3].label, "flash-crowd/adapted");
  EXPECT_EQ(suite.cases()[3].options.scenario_name, "flash-crowd");
  EXPECT_FALSE(suite.cases()[0].options.adaptation);
  EXPECT_TRUE(suite.cases()[1].options.adaptation);
  // Scenario defaults came from the registry, not ScenarioConfig{}.
  EXPECT_DOUBLE_EQ(suite.cases()[2].options.scenario.comp_sg1_phase1_mbps,
                   0.0);
}

TEST(ExperimentSuiteTest, GridWithUnknownScenarioThrows) {
  ExperimentSuite suite;
  EXPECT_THROW(suite.add_grid({"no-such-scenario"}, {SuiteVariant{}}), Error);
}

TEST(ExperimentSuiteTest, ParallelRunKeepsOrderAndIsolatesFailures) {
  ExperimentSuite suite;
  ExperimentOptions quick = options_for("paper-fig6");
  quick.scenario.horizon = SimTime::seconds(30);
  suite.add("first", quick);
  ExperimentOptions broken = quick;
  broken.framework.script_source = "this is not a repair script";
  suite.add("broken", broken);
  suite.add("last", quick);

  std::vector<SuiteOutcome> outcomes = suite.run(2);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].label, "first");
  EXPECT_EQ(outcomes[1].label, "broken");
  EXPECT_EQ(outcomes[2].label, "last");
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_GT(outcomes[0].result.responses_completed, 0u);
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_FALSE(outcomes[1].error.empty());
  EXPECT_TRUE(outcomes[2].ok());
  // Determinism across workers: identical options, identical results.
  EXPECT_EQ(outcomes[0].result.responses_completed,
            outcomes[2].result.responses_completed);
}

}  // namespace
}  // namespace arcadia::core
