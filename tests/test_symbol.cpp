// util::Symbol interning, SymbolMap, and the SmallFn small-buffer callable —
// the substrate of the hot-path overhaul.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/small_fn.hpp"
#include "util/symbol.hpp"

namespace arcadia::util {
namespace {

TEST(SymbolTest, InternIsIdempotent) {
  Symbol a = Symbol::intern("averageLatency");
  Symbol b = Symbol::intern("averageLatency");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.str(), "averageLatency");
}

TEST(SymbolTest, DistinctStringsDistinctIds) {
  Symbol a = Symbol::intern("load");
  Symbol b = Symbol::intern("utilization");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(SymbolTest, EmptySymbol) {
  Symbol none;
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(none);
  EXPECT_EQ(none.str(), "");
  EXPECT_EQ(Symbol::intern(""), none);
}

TEST(SymbolTest, OrdersByTextNotId) {
  // Intern in reverse-alphabetical order: ids ascend, text order must win.
  Symbol z = Symbol::intern("zzz_sym_order");
  Symbol a = Symbol::intern("aaa_sym_order");
  EXPECT_LT(a, z);
  EXPECT_GT(z.id(), 0u);
}

TEST(SymbolTest, ConcurrentInternAgrees) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Symbol> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&results, t] {
      for (int i = 0; i < 200; ++i) {
        results[t] = Symbol::intern("concurrent_" + std::to_string(i % 10));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);
}

TEST(SymbolMapTest, InsertFindErase) {
  SymbolMap<int> map;
  EXPECT_TRUE(map.empty());
  map.insert_or_assign(Symbol::intern("x"), 1);
  map.insert_or_assign(Symbol::intern("y"), 2);
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(Symbol::intern("x")), nullptr);
  EXPECT_EQ(*map.find(Symbol::intern("x")), 1);
  EXPECT_EQ(map.find(Symbol::intern("missing")), nullptr);
  map.insert_or_assign(Symbol::intern("x"), 7);
  EXPECT_EQ(*map.find(Symbol::intern("x")), 7);
  EXPECT_TRUE(map.erase(Symbol::intern("x")));
  EXPECT_FALSE(map.erase(Symbol::intern("x")));
  EXPECT_EQ(map.find(Symbol::intern("x")), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(SymbolMapTest, IterationIsNameSorted) {
  // Deterministic iteration in text order is what keeps the model's
  // behaviour identical to the std::map era.
  SymbolMap<int> map;
  map.insert_or_assign(Symbol::intern("gamma"), 3);
  map.insert_or_assign(Symbol::intern("alpha"), 1);
  map.insert_or_assign(Symbol::intern("beta"), 2);
  std::vector<std::string> keys;
  for (const auto& e : map) keys.push_back(e.key.str());
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(SymbolMapTest, SurvivesGrowth) {
  SymbolMap<int> map;
  for (int i = 0; i < 500; ++i) {
    map.insert_or_assign(Symbol::intern("grow_" + std::to_string(i)), i);
  }
  EXPECT_EQ(map.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const int* v = map.find(Symbol::intern("grow_" + std::to_string(i)));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
}

TEST(SymbolMapTest, HoldsMoveOnlyValues) {
  SymbolMap<std::unique_ptr<int>> map;
  map.insert_or_assign(Symbol::intern("p"), std::make_unique<int>(5));
  ASSERT_NE(map.find(Symbol::intern("p")), nullptr);
  EXPECT_EQ(**map.find(Symbol::intern("p")), 5);
}

TEST(SmallFnTest, InvokesInlineCallable) {
  int hits = 0;
  SmallFn<void()> fn = [&hits] { ++hits; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, HeapFallbackForLargeCaptures) {
  struct Big {
    char payload[96] = {};
  } big;
  int hits = 0;
  SmallFn<void()> fn = [big, &hits] {
    (void)big;
    ++hits;
  };
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFnTest, MovePreservesCallableAndReleasesSource) {
  auto counter = std::make_shared<int>(0);
  SmallFn<void()> a = [counter] { ++*counter; };
  SmallFn<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: moved-from check on purpose
  b();
  EXPECT_EQ(*counter, 1);
  // The capture must live in exactly one place.
  b = SmallFn<void()>();
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SmallFnTest, ReturnsValuesAndTakesArguments) {
  SmallFn<int(int, int)> add = [](int x, int y) { return x + y; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(SmallFnTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(7);
  {
    SmallFn<void()> fn = [token] {};
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace arcadia::util
