#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "util/csv.hpp"

namespace arcadia {
namespace {

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(std::string("plain")).field(std::string("with,comma"));
  csv.end_row();
  csv.field(std::string("with\"quote")).field(2.5).field(std::int64_t{7});
  csv.end_row();
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\"\n"
            "\"with\"\"quote\",2.5,7\n");
}

TEST(CsvWriterTest, SeriesAlignment) {
  TimeSeries a("a");
  a.append(SimTime::seconds(1), 1.0);
  a.append(SimTime::seconds(3), 3.0);
  TimeSeries b("b");
  b.append(SimTime::seconds(2), 20.0);
  std::ostringstream out;
  write_series_csv(out, {&a, &b});
  EXPECT_EQ(out.str(),
            "time_s,a,b\n"
            "1,1,0\n"
            "2,1,20\n"
            "3,3,20\n");
}

TEST(ReportTest, SeriesTablePrintsColumns) {
  TimeSeries a("lat:U1");
  for (int i = 0; i <= 10; ++i) {
    a.append(SimTime::seconds(i), static_cast<double>(i));
  }
  std::ostringstream out;
  core::print_series_table(out, {&a}, SimTime::seconds(5));
  std::string s = out.str();
  EXPECT_NE(s.find("time_s"), std::string::npos);
  EXPECT_NE(s.find("lat:U1"), std::string::npos);
}

}  // namespace
}  // namespace arcadia
