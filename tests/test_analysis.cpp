// arcverify's script rules, pinned by a golden-diagnostic corpus: each
// seeded defect class must be caught with the exact rule id and anchor
// (line:col), and the shipped scripts must verify clean — the gate the
// `arcverify_gate` ctest and the static-analysis CI lane rely on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "acme/analysis.hpp"
#include "acme/effects.hpp"
#include "acme/flow.hpp"
#include "acme/script.hpp"
#include "repair/scripts.hpp"

namespace arcadia::acme {
namespace {

using analysis::AnalysisIssue;

std::vector<AnalysisIssue> analyze(const std::string& source) {
  const Script script = parse_script(source);
  return analysis::analyze_script(script, make_client_server_effects());
}

std::string dump(const std::vector<AnalysisIssue>& issues) {
  std::string out;
  for (const AnalysisIssue& i : issues) out += i.to_string() + "\n";
  return out;
}

TEST(AnalysisTest, RuleIdsAreSortedAndComplete) {
  const std::vector<std::string> ids = analysis::rule_ids();
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(ids.front(), "conflicting-strategies");
  EXPECT_EQ(ids.back(), "unknown-operator-effect");
}

// ---- golden corpus: one seeded defect per script -------------------------

// The Figure 5 bug class: the latency invariant's handler runs a tactic
// whose effects (removeServer: replicationCount/load/utilization) do not
// touch the invariant's support property (averageLatency) at all — the
// repair commits and cannot possibly discharge the violation.
TEST(AnalysisTest, GoldenIneffectiveTactic) {
  const std::string source =
      "invariant r : averageLatency <= maxLatency !-> fixLatency(r);\n"   // 1
      "\n"                                                                // 2
      "strategy fixLatency(c : ClientT) = {\n"                            // 3
      "  if (trimInstead(c)) {\n"                                         // 4
      "    commit repair;\n"                                              // 5
      "  } else {\n"                                                      // 6
      "    abort NoTactic;\n"                                             // 7
      "  }\n"                                                             // 8
      "}\n"                                                               // 9
      "\n"                                                                // 10
      "tactic trimInstead(c : ClientT) : boolean = {\n"                   // 11
      "  let g : ServerGroupT =\n"                                        // 12
      "    select one sg : ServerGroupT in self.Components |\n"           // 13
      "      connected(c, sg);\n"                                         // 14
      "  if (g == nil) {\n"                                               // 15
      "    return false;\n"                                               // 16
      "  }\n"                                                             // 17
      "  g.removeServer();\n"                                             // 18
      "  return true;\n"                                                  // 19
      "}\n";                                                              // 20
  const auto issues = analyze(source);
  ASSERT_EQ(issues.size(), 1u) << dump(issues);
  EXPECT_EQ(issues[0].rule, "ineffective-tactic");
  EXPECT_EQ(issues[0].severity, Severity::Error);
  EXPECT_EQ(issues[0].line, 11);
  EXPECT_EQ(issues[0].column, 1);  // anchored at the tactic declaration
  EXPECT_NE(issues[0].message.find("trimInstead"), std::string::npos);
  EXPECT_NE(issues[0].message.find("averageLatency"), std::string::npos);
}

// A later FirstSuccess sibling whose guard implies an earlier sibling's
// guard, where the earlier sibling always succeeds past its guard: the
// later arm is unreachable (subsumed guard -> dead tactic).
TEST(AnalysisTest, GoldenDeadTacticFromSubsumedGuard) {
  const std::string source =
      "invariant g : load <= maxServerLoad !-> fixLoad(g);\n"             // 1
      "\n"                                                                // 2
      "strategy fixLoad(grp : ServerGroupT) = {\n"                        // 3
      "  if (growAlways(grp)) {\n"                                        // 4
      "    commit repair;\n"                                              // 5
      "  } else if (growMore(grp)) {\n"                                   // 6
      "    commit repair;\n"                                              // 7
      "  } else {\n"                                                      // 8
      "    abort NoTactic;\n"                                             // 9
      "  }\n"                                                             // 10
      "}\n"                                                               // 11
      "\n"                                                                // 12
      "tactic growAlways(grp : ServerGroupT) : boolean = {\n"             // 13
      "  if (grp.load <= maxServerLoad) {\n"                              // 14
      "    return false;\n"                                               // 15
      "  }\n"                                                             // 16
      "  grp.addServer();\n"                                              // 17
      "  return true;\n"                                                  // 18
      "}\n"                                                               // 19
      "\n"                                                                // 20
      "tactic growMore(grp : ServerGroupT) : boolean = {\n"               // 21
      "  if (grp.load <= maxServerLoad) {\n"                              // 22
      "    return false;\n"                                               // 23
      "  }\n"                                                             // 24
      "  if (grp.load <= 90) {\n"                                         // 25
      "    return false;\n"                                               // 26
      "  }\n"                                                             // 27
      "  grp.addServer();\n"                                              // 28
      "  return true;\n"                                                  // 29
      "}\n";                                                              // 30
  const auto issues = analyze(source);
  ASSERT_EQ(issues.size(), 1u) << dump(issues);
  EXPECT_EQ(issues[0].rule, "dead-tactic");
  EXPECT_EQ(issues[0].severity, Severity::Error);
  EXPECT_EQ(issues[0].line, 6);  // anchored at the unreachable arm's call
  EXPECT_EQ(issues[0].column, 22);
  EXPECT_NE(issues[0].message.find("growMore"), std::string::npos);
  EXPECT_NE(issues[0].message.find("growAlways"), std::string::npos);
}

// A strategy whose one-armed if can fall through without commit or abort.
TEST(AnalysisTest, GoldenNoVerdictStrategy) {
  const std::string source =
      "invariant g : load <= maxServerLoad !-> fixLoad(g);\n"             // 1
      "\n"                                                                // 2
      "strategy fixLoad(grp : ServerGroupT) = {\n"                        // 3
      "  if (grow(grp)) {\n"                                              // 4
      "    commit repair;\n"                                              // 5
      "  }\n"                                                             // 6
      "}\n"                                                               // 7
      "\n"                                                                // 8
      "tactic grow(grp : ServerGroupT) : boolean = {\n"                   // 9
      "  grp.addServer();\n"                                              // 10
      "  return true;\n"                                                  // 11
      "}\n";                                                              // 12
  const auto issues = analyze(source);
  ASSERT_EQ(issues.size(), 1u) << dump(issues);
  EXPECT_EQ(issues[0].rule, "no-verdict");
  EXPECT_EQ(issues[0].severity, Severity::Error);
  EXPECT_EQ(issues[0].line, 3);
  EXPECT_EQ(issues[0].column, 1);  // anchored at the strategy declaration
}

// Two strategies watching the same property and pushing it in opposite
// directions: grow (addServer: load down) vs shrink (removeServer: load
// up) both triggered by load thresholds.
TEST(AnalysisTest, GoldenConflictingStrategies) {
  const std::string source =
      "invariant a : load <= maxServerLoad !-> growStrategy(a);\n"        // 1
      "invariant b : load >= minUtilization !-> shrinkStrategy(b);\n"     // 2
      "\n"                                                                // 3
      "strategy growStrategy(grp : ServerGroupT) = {\n"                   // 4
      "  if (grow(grp)) { commit repair; } else { abort NoTactic; }\n"    // 5
      "}\n"                                                               // 6
      "\n"                                                                // 7
      "strategy shrinkStrategy(grp : ServerGroupT) = {\n"                 // 8
      "  if (shrink(grp)) { commit repair; } else { abort NoTactic; }\n"  // 9
      "}\n"                                                               // 10
      "\n"                                                                // 11
      "tactic grow(grp : ServerGroupT) : boolean = {\n"                   // 12
      "  grp.addServer();\n"                                              // 13
      "  return true;\n"                                                  // 14
      "}\n"                                                               // 15
      "\n"                                                                // 16
      "tactic shrink(grp : ServerGroupT) : boolean = {\n"                 // 17
      "  grp.removeServer();\n"                                           // 18
      "  return true;\n"                                                  // 19
      "}\n";                                                              // 20
  const auto issues = analyze(source);
  ASSERT_EQ(issues.size(), 1u) << dump(issues);
  EXPECT_EQ(issues[0].rule, "conflicting-strategies");
  EXPECT_EQ(issues[0].severity, Severity::Warning);
  EXPECT_EQ(issues[0].line, 8);  // the second strategy of the pair
  EXPECT_NE(issues[0].message.find("load"), std::string::npos);
}

// An operator call with no entry in the effect table: warn — every other
// rule is blind to its writes.
TEST(AnalysisTest, GoldenUnknownOperatorEffect) {
  const std::string source =
      "tactic frob(grp : ServerGroupT) : boolean = {\n"                   // 1
      "  grp.frobnicate();\n"                                             // 2
      "  return true;\n"                                                  // 3
      "}\n";                                                              // 4
  const auto issues = analyze(source);
  ASSERT_EQ(issues.size(), 1u) << dump(issues);
  EXPECT_EQ(issues[0].rule, "unknown-operator-effect");
  EXPECT_EQ(issues[0].severity, Severity::Warning);
  EXPECT_EQ(issues[0].line, 2);
  EXPECT_NE(issues[0].message.find("frobnicate"), std::string::npos);
}

// ---- golden corpus: deployment rules over plain views --------------------

TEST(AnalysisTest, GoldenUngaugedConstraint) {
  analysis::DeploymentView view;
  view.constraints.push_back(analysis::ConstraintView{
      "inv:r", "Client1", {"averageLatency"}, /*line=*/1, /*column=*/15});
  // The only gauge on Client1 produces a different property; a latency
  // gauge on another element does not count.
  view.gauge_feeds.push_back(analysis::GaugeFeed{"Client1", "bandwidth"});
  view.gauge_feeds.push_back(analysis::GaugeFeed{"Client2", "averageLatency"});
  const auto issues = analysis::verify_deployment(view);
  ASSERT_EQ(issues.size(), 1u) << dump(issues);
  EXPECT_EQ(issues[0].rule, "ungauged-constraint");
  EXPECT_EQ(issues[0].severity, Severity::Error);
  EXPECT_EQ(issues[0].line, 1);
  EXPECT_EQ(issues[0].column, 15);
  EXPECT_NE(issues[0].message.find("inv:r"), std::string::npos);

  // Feeding the read property on the right element silences the rule.
  view.gauge_feeds.push_back(analysis::GaugeFeed{"Client1", "averageLatency"});
  EXPECT_TRUE(analysis::verify_deployment(view).empty());
}

TEST(AnalysisTest, GoldenUncostedOperator) {
  analysis::DeploymentView view;
  view.operators_used.push_back(
      OperatorUse{"addServer", "fixServerLoad", /*line=*/7, /*column=*/9});
  view.operators_used.push_back(
      OperatorUse{"addServer", "growGroup", /*line=*/21, /*column=*/5});
  view.operator_costs_s["move"] = 0.12;  // declared, but not addServer
  const auto issues = analysis::verify_deployment(view);
  ASSERT_EQ(issues.size(), 1u) << dump(issues);  // deduped by operator name
  EXPECT_EQ(issues[0].rule, "uncosted-operator");
  EXPECT_EQ(issues[0].severity, Severity::Error);
  EXPECT_EQ(issues[0].line, 7);  // the first reachable call site
  EXPECT_EQ(issues[0].column, 9);
  EXPECT_NE(issues[0].message.find("addServer"), std::string::npos);

  // A zero/negative declared cost is as bad as a missing one.
  view.operator_costs_s["addServer"] = 0.0;
  EXPECT_EQ(analysis::verify_deployment(view).size(), 1u);
  view.operator_costs_s["addServer"] = 0.24;
  EXPECT_TRUE(analysis::verify_deployment(view).empty());
}

// ---- the shipped scripts must verify clean (satellite pin) ---------------

TEST(AnalysisTest, Figure5ScriptVerifiesClean) {
  const auto issues = analyze(figure5_script());
  EXPECT_TRUE(issues.empty()) << dump(issues);
}

TEST(AnalysisTest, ExtendedScriptVerifiesClean) {
  const auto issues = analyze(repair::extended_script());
  EXPECT_TRUE(issues.empty()) << dump(issues);
}

// ---- effect/flow building blocks -----------------------------------------

TEST(AnalysisTest, EffectInferenceClosesOverTacticCalls) {
  // fixBandwidth's move comes back through the caller's summary too.
  const Script script = parse_script(figure5_script());
  const ScriptEffects effects =
      infer_effects(script, make_client_server_effects());
  const TacticEffects* fx = effects.find("fixServerLoad");
  ASSERT_NE(fx, nullptr);
  EXPECT_TRUE(fx->writes.count("replicationCount"));
  EXPECT_TRUE(fx->adds_element);
  auto inf = fx->influences.find("averageLatency");
  ASSERT_NE(inf, fx->influences.end());
  EXPECT_EQ(inf->second, EffectDirection::Decrease);
}

TEST(AnalysisTest, GuardExtractionNormalizesEarlyOuts) {
  const Script script = parse_script(figure5_script());
  const TacticDecl* shrink = script.find_tactic("shrinkGroup");
  ASSERT_NE(shrink, nullptr);
  const TacticGuard guard = extract_guard(*shrink);
  // Two early-outs -> two negated conjuncts.
  ASSERT_EQ(guard.conjuncts.size(), 2u);
  EXPECT_EQ(guard.conjuncts[0].rel, GuardConjunct::Rel::Lt);
  EXPECT_EQ(guard.conjuncts[0].subject, "group.utilization");
  // Past both early-outs the body is `removeServer(); return true;`.
  EXPECT_TRUE(always_succeeds(*shrink));
}

TEST(AnalysisTest, OpWithinEffectsMatchesJournalShapes) {
  TacticEffects fx;
  fx.writes.insert("replicationCount");
  fx.adds_element = true;

  model::OpRecord set;
  set.kind = model::OpKind::SetProperty;
  set.property = "replicationCount";
  EXPECT_TRUE(analysis::op_within_effects(set, fx));
  set.property = "boundTo";
  EXPECT_FALSE(analysis::op_within_effects(set, fx));

  model::OpRecord add;
  add.kind = model::OpKind::AddComponent;
  EXPECT_TRUE(analysis::op_within_effects(add, fx));
  model::OpRecord detach;
  detach.kind = model::OpKind::Detach;
  EXPECT_FALSE(analysis::op_within_effects(detach, fx));  // no rewires
  fx.rewires = true;
  EXPECT_TRUE(analysis::op_within_effects(detach, fx));
}

}  // namespace
}  // namespace arcadia::acme
