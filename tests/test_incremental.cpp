// Incremental constraint evaluation: the checker must answer from cache
// when nothing an individual constraint could read has changed, re-evaluate
// exactly what a mutation dirtied, and fall back to a full sweep on
// structural edits — all without ever changing check()'s verdicts.
#include <gtest/gtest.h>

#include "acme/adl.hpp"
#include "acme/expr_parser.hpp"
#include "acme/script.hpp"
#include "model/revision.hpp"
#include "model/transaction.hpp"
#include "repair/constraint.hpp"
#include "repair/scripts.hpp"

namespace arcadia::repair {
namespace {

model::System make_system(int clients) {
  model::System sys("IncrementalRig");
  for (int c = 1; c <= clients; ++c) {
    auto& client =
        sys.add_component("User" + std::to_string(c), "ClientT");
    client.set_property("averageLatency", model::PropertyValue(0.5));
    client.set_property("maxLatency", model::PropertyValue(2.0));
  }
  return sys;
}

TEST(ExpressionLocalityTest, ThresholdComparisonsAreLocal) {
  auto expr = acme::parse_expression("averageLatency <= maxLatency");
  EXPECT_TRUE(expression_is_local(*expr));
  auto arith = acme::parse_expression("!(averageLatency * 2.0 > 4.0)");
  EXPECT_TRUE(expression_is_local(*arith));
}

TEST(ExpressionLocalityTest, ModelReachingFormsAreNotLocal) {
  EXPECT_FALSE(expression_is_local(
      *acme::parse_expression("self.name == \"x\"")));
  EXPECT_FALSE(expression_is_local(
      *acme::parse_expression("size(self.Components) > 0")));
  EXPECT_FALSE(expression_is_local(*acme::parse_expression(
      "exists g : ServerGroupT in self.Components | g.load > maxServerLoad")));
}

TEST(IncrementalCheckTest, SecondSweepIsAllCacheHits) {
  model::System sys = make_system(4);
  ConstraintChecker checker(sys);
  for (int c = 1; c <= 4; ++c) {
    checker.add_constraint("lat:User" + std::to_string(c),
                           "User" + std::to_string(c),
                           "averageLatency <= maxLatency", "fix");
  }
  EXPECT_TRUE(checker.check().empty());
  EXPECT_EQ(checker.check_stats().evaluations, 4u);
  EXPECT_TRUE(checker.check().empty());
  EXPECT_EQ(checker.check_stats().evaluations, 4u);  // nothing re-evaluated
  EXPECT_EQ(checker.check_stats().cache_hits, 4u);
}

TEST(IncrementalCheckTest, OnlyDirtyElementReevaluates) {
  model::System sys = make_system(4);
  ConstraintChecker checker(sys);
  for (int c = 1; c <= 4; ++c) {
    checker.add_constraint("lat:User" + std::to_string(c),
                           "User" + std::to_string(c),
                           "averageLatency <= maxLatency", "fix");
  }
  checker.check();
  sys.component("User2").set_property("averageLatency",
                                      model::PropertyValue(9.0));
  auto violations = checker.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].element, "User2");
  EXPECT_DOUBLE_EQ(violations[0].observed, 9.0);
  // 4 initial evaluations + 1 re-evaluation of the dirtied element.
  EXPECT_EQ(checker.check_stats().evaluations, 5u);
  EXPECT_EQ(checker.check_stats().cache_hits, 3u);
}

TEST(IncrementalCheckTest, CachedViolationKeepsReporting) {
  model::System sys = make_system(2);
  ConstraintChecker checker(sys);
  checker.add_constraint("lat:User1", "User1",
                         "averageLatency <= maxLatency", "fix");
  sys.component("User1").set_property("averageLatency",
                                      model::PropertyValue(5.0));
  ASSERT_EQ(checker.check().size(), 1u);
  // No further mutation: the violation must still be reported, from cache.
  auto again = checker.check();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_DOUBLE_EQ(again[0].observed, 5.0);
  EXPECT_GE(checker.check_stats().cache_hits, 1u);
}

TEST(IncrementalCheckTest, StructuralEditForcesFullSweep) {
  model::System sys = make_system(3);
  ConstraintChecker checker(sys);
  for (int c = 1; c <= 3; ++c) {
    checker.add_constraint("lat:User" + std::to_string(c),
                           "User" + std::to_string(c),
                           "averageLatency <= maxLatency", "fix");
  }
  checker.check();
  sys.add_component("Newcomer", "ClientT");
  checker.check();
  EXPECT_EQ(checker.check_stats().full_sweeps, 2u);  // first sweep + this one
  EXPECT_EQ(checker.check_stats().evaluations, 6u);
}

TEST(IncrementalCheckTest, GlobalRebindInvalidatesCache) {
  model::System sys = make_system(1);
  ConstraintChecker checker(sys);
  checker.bind_global("limit", acme::EvalValue(2.0));
  checker.add_constraint("lat:User1", "User1", "averageLatency <= limit",
                         "fix");
  EXPECT_TRUE(checker.check().empty());
  checker.bind_global("limit", acme::EvalValue(0.1));
  auto violations = checker.check();
  ASSERT_EQ(violations.size(), 1u);  // threshold moved under the cached value
}

TEST(IncrementalCheckTest, NonLocalConstraintSeesOtherElements) {
  model::System sys = make_system(2);
  auto& grp = sys.add_component("Grp", "ServerGroupT");
  grp.set_property("load", model::PropertyValue(1.0));
  ConstraintChecker checker(sys);
  checker.bind_global("maxServerLoad", acme::EvalValue(6.0));
  checker.add_constraint(
      "overload", "User1",
      "!(exists g : ServerGroupT in self.Components | g.load > maxServerLoad)",
      "fix");
  EXPECT_TRUE(checker.check().empty());
  // Mutating an element the constraint is NOT attached to must still be
  // seen: the constraint is non-local, so the property clock re-triggers it.
  grp.set_property("load", model::PropertyValue(9.0));
  EXPECT_EQ(checker.check().size(), 1u);
}

TEST(IncrementalCheckTest, RemovedElementStillSkipped) {
  model::System sys = make_system(2);
  ConstraintChecker checker(sys);
  checker.add_constraint("lat:User1", "User1",
                         "averageLatency <= maxLatency", "fix");
  checker.check();
  sys.component("User1").set_property("averageLatency",
                                      model::PropertyValue(9.0));
  sys.remove_component("User1");
  EXPECT_TRUE(checker.check().empty());
}

TEST(RollbackStampTest, PropertyRollbackRestoresStampAndCache) {
  // A rolled-back property-only transaction restores the model exactly, so
  // the element's stamp must be back where it was and the next sweep must
  // answer every local constraint from cache — no full-sweep storm.
  model::System sys = make_system(3);
  ConstraintChecker checker(sys);
  for (int c = 1; c <= 3; ++c) {
    checker.add_constraint("lat:User" + std::to_string(c),
                           "User" + std::to_string(c),
                           "averageLatency <= maxLatency", "fix");
  }
  EXPECT_TRUE(checker.check().empty());
  const std::uint64_t evals = checker.check_stats().evaluations;
  const std::uint64_t stamp = sys.component("User1").property_stamp();
  {
    model::Transaction txn(sys);
    txn.set_property({}, model::ElementKind::Component, "User1", "",
                     "averageLatency", model::PropertyValue(9.0));
    txn.set_property({}, model::ElementKind::Component, "User1", "",
                     "averageLatency", model::PropertyValue(12.0));
    txn.rollback();
  }
  EXPECT_EQ(sys.component("User1").property_stamp(), stamp);
  EXPECT_DOUBLE_EQ(
      sys.component("User1").property("averageLatency").as_double(), 0.5);
  EXPECT_TRUE(checker.check().empty());
  EXPECT_EQ(checker.check_stats().evaluations, evals);  // all cache hits
}

TEST(RollbackStampTest, MidTransactionSweepCannotGoStaleClean) {
  // The dangerous direction: a sweep runs while a transaction is open and
  // memoises a *satisfied* verdict of the in-flight value; the rollback then
  // rewinds the element's stamp below what the memo recorded. The rewound
  // stamp must read as dirty (exact-match comparison), or the violation the
  // rollback restored would be silently swallowed.
  model::System sys = make_system(1);
  sys.component("User1").set_property("averageLatency",
                                      model::PropertyValue(9.0));
  ConstraintChecker checker(sys);
  checker.add_constraint("lat:User1", "User1",
                         "averageLatency <= maxLatency", "fix");
  ASSERT_EQ(checker.check().size(), 1u);  // violating before the txn
  {
    model::Transaction txn(sys);
    txn.set_property({}, model::ElementKind::Component, "User1", "",
                     "averageLatency", model::PropertyValue(0.5));
    EXPECT_TRUE(checker.check().empty());  // mid-txn sweep sees the fix
    txn.rollback();                        // ... which is then discarded
  }
  auto after = checker.check();
  ASSERT_EQ(after.size(), 1u);  // stale-clean would report nothing here
  EXPECT_DOUBLE_EQ(after[0].observed, 9.0);
}

TEST(RollbackStampTest, RollbackAfterStructuralEditRestoresVerdicts) {
  // Structural + property edits rolled back together: the model text is
  // bit-identical to before, the structure clock forces one full sweep (safe
  // fallback, not a storm), and the verdicts reproduce the pre-transaction
  // state.
  model::System sys = make_system(2);
  sys.component("User2").set_property("averageLatency",
                                      model::PropertyValue(9.0));
  ConstraintChecker checker(sys);
  for (int c = 1; c <= 2; ++c) {
    checker.add_constraint("lat:User" + std::to_string(c),
                           "User" + std::to_string(c),
                           "averageLatency <= maxLatency", "fix");
  }
  ASSERT_EQ(checker.check().size(), 1u);
  const std::string before = acme::print_system(sys);
  {
    model::Transaction txn(sys);
    txn.add_component("Extra", "ClientT");
    txn.add_connector("ExtraConn", "LinkT");
    txn.set_property({}, model::ElementKind::Component, "User2", "",
                     "averageLatency", model::PropertyValue(0.1));
    txn.set_property({}, model::ElementKind::Component, "Extra", "",
                     "load", model::PropertyValue(1.0));
    txn.rollback();
  }
  EXPECT_EQ(acme::print_system(sys), before);
  auto after = checker.check();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].element, "User2");
  EXPECT_DOUBLE_EQ(after[0].observed, 9.0);
}

TEST(IncrementalCheckTest, VerdictsMatchAFreshChecker) {
  // The incremental cache must be unobservable: after an arbitrary mutation
  // sequence, a warmed checker and a cold one agree exactly.
  model::System sys = make_system(5);
  ConstraintChecker warm(sys);
  for (int c = 1; c <= 5; ++c) {
    warm.add_constraint("lat:User" + std::to_string(c),
                        "User" + std::to_string(c),
                        "averageLatency <= maxLatency", "fix");
  }
  warm.check();
  sys.component("User3").set_property("averageLatency",
                                      model::PropertyValue(8.0));
  warm.check();
  sys.component("User3").set_property("averageLatency",
                                      model::PropertyValue(0.1));
  sys.component("User5").set_property("maxLatency",
                                      model::PropertyValue(0.01));
  auto warm_result = warm.check();

  ConstraintChecker cold(sys);
  for (int c = 1; c <= 5; ++c) {
    cold.add_constraint("lat:User" + std::to_string(c),
                        "User" + std::to_string(c),
                        "averageLatency <= maxLatency", "fix");
  }
  auto cold_result = cold.check();
  ASSERT_EQ(warm_result.size(), cold_result.size());
  for (std::size_t i = 0; i < warm_result.size(); ++i) {
    EXPECT_EQ(warm_result[i].element, cold_result[i].element);
    EXPECT_DOUBLE_EQ(warm_result[i].observed, cold_result[i].observed);
  }
}

}  // namespace
}  // namespace arcadia::repair
