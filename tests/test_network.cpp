#include <gtest/gtest.h>

#include <numeric>

#include "sim/network.hpp"
#include "util/rng.hpp"

namespace arcadia::sim {
namespace {

/// Dumbbell: a - r1 === r2 - b, c - r1, d - r2. Trunk is the bottleneck.
struct Dumbbell {
  Topology topo;
  NodeId a, b, c, d, r1, r2;
  Dumbbell(Bandwidth access = Bandwidth::mbps(100),
           Bandwidth trunk = Bandwidth::mbps(10)) {
    r1 = topo.add_node("r1", NodeKind::Router);
    r2 = topo.add_node("r2", NodeKind::Router);
    a = topo.add_node("a", NodeKind::Host);
    b = topo.add_node("b", NodeKind::Host);
    c = topo.add_node("c", NodeKind::Host);
    d = topo.add_node("d", NodeKind::Host);
    topo.add_link(a, r1, access);
    topo.add_link(c, r1, access);
    topo.add_link(b, r2, access);
    topo.add_link(d, r2, access);
    topo.add_link(r1, r2, trunk);
    topo.compute_routes();
  }
};

TEST(TopologyTest, FindNode) {
  Dumbbell db;
  EXPECT_EQ(db.topo.find_node("a"), db.a);
  EXPECT_EQ(db.topo.find_node("nope"), kNoNode);
}

TEST(TopologyTest, DuplicateNodeNameThrows) {
  Topology topo;
  topo.add_node("x", NodeKind::Host);
  EXPECT_THROW(topo.add_node("x", NodeKind::Host), SimError);
}

TEST(TopologyTest, SelfLinkThrows) {
  Topology topo;
  NodeId x = topo.add_node("x", NodeKind::Host);
  EXPECT_THROW(topo.add_link(x, x, Bandwidth::mbps(1)), SimError);
}

TEST(TopologyTest, PathCrossesTrunk) {
  Dumbbell db;
  const auto& path = db.topo.path(db.a, db.b);
  EXPECT_EQ(path.size(), 3u);  // a->r1, r1->r2, r2->b
}

TEST(TopologyTest, PathToSelfIsEmpty) {
  Dumbbell db;
  EXPECT_TRUE(db.topo.path(db.a, db.a).empty());
}

TEST(TopologyTest, UnreachableThrows) {
  Topology topo;
  NodeId x = topo.add_node("x", NodeKind::Host);
  NodeId y = topo.add_node("y", NodeKind::Host);
  (void)y;
  topo.compute_routes();
  EXPECT_THROW(topo.path(x, y), SimError);
}

TEST(TopologyTest, MutatingFrozenTopologyThrows) {
  Dumbbell db;
  EXPECT_THROW(db.topo.add_node("z", NodeKind::Host), SimError);
}

TEST(TopologyTest, DirectedChannelsDistinct) {
  Dumbbell db;
  const auto& fwd = db.topo.path(db.a, db.b);
  const auto& rev = db.topo.path(db.b, db.a);
  ASSERT_EQ(fwd.size(), rev.size());
  for (ChannelId c : fwd) {
    for (ChannelId r : rev) EXPECT_NE(c, r);
  }
}

TEST(FlowNetworkTest, SingleTransferTakesNominalTime) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  SimTime done;
  net.start_transfer(db.a, db.b, DataSize::megabytes(1),
                     [&] { done = sim.now(); });
  sim.run_until(SimTime::seconds(100));
  // 1 MB over a 10 Mbps trunk = 8388608 bits / 1e7 bps.
  EXPECT_NEAR(done.as_seconds(), 8.0 * 1024 * 1024 / 1e7, 1e-6);
}

TEST(FlowNetworkTest, TwoFlowsShareBottleneckFairly) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  int completed = 0;
  SimTime last;
  for (int i = 0; i < 2; ++i) {
    net.start_transfer(i ? db.c : db.a, i ? db.d : db.b, DataSize::megabytes(1),
                       [&] {
                         ++completed;
                         last = sim.now();
                       });
  }
  sim.run_until(SimTime::seconds(100));
  EXPECT_EQ(completed, 2);
  // Each flow gets 5 Mbps; both finish together at twice the solo time.
  EXPECT_NEAR(last.as_seconds(), 2 * 8.0 * 1024 * 1024 / 1e7, 1e-6);
}

TEST(FlowNetworkTest, CompletionReschedulesWhenContentionEnds) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  SimTime short_done, long_done;
  net.start_transfer(db.a, db.b, DataSize::megabytes(1),
                     [&] { long_done = sim.now(); });
  net.start_transfer(db.c, db.d, DataSize::bytes(1024 * 1024 / 2),
                     [&] { short_done = sim.now(); });
  sim.run_until(SimTime::seconds(100));
  // Short flow: 0.5 MB at 5 Mbps ~ 0.839 s. Long flow: 0.5 MB at 5 Mbps
  // then remaining 0.5 MB at full 10 Mbps. (Tolerance covers the integer-
  // microsecond clock.)
  EXPECT_NEAR(short_done.as_seconds(), 0.5 * 8 * 1024 * 1024 / 5e6, 1e-5);
  EXPECT_NEAR(long_done.as_seconds(),
              0.5 * 8 * 1024 * 1024 / 5e6 + 0.5 * 8 * 1024 * 1024 / 1e7, 1e-5);
}

TEST(FlowNetworkTest, CancelledTransferNeverCompletes) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  bool fired = false;
  FlowId id = net.start_transfer(db.a, db.b, DataSize::megabytes(1),
                                 [&] { fired = true; });
  sim.schedule_at(SimTime::millis(10), [&] { net.cancel_transfer(id); });
  sim.run_until(SimTime::seconds(100));
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_transfers(), 0u);
}

TEST(FlowNetworkTest, LoopbackDelivers) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  bool fired = false;
  net.start_transfer(db.a, db.a, DataSize::megabytes(100), [&] { fired = true; });
  sim.run_until(SimTime::seconds(1));
  EXPECT_TRUE(fired);
}

TEST(FlowNetworkTest, BackgroundStealsCapacity) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  FlowId bg = net.add_background(db.c, db.d);
  net.set_background_rate(bg, Bandwidth::mbps(9));
  SimTime done;
  net.start_transfer(db.a, db.b, DataSize::megabytes(1),
                     [&] { done = sim.now(); });
  sim.run_until(SimTime::seconds(100));
  // Only 1 Mbps left on the trunk for the transfer.
  EXPECT_NEAR(done.as_seconds(), 8.0 * 1024 * 1024 / 1e6, 1e-5);
}

TEST(FlowNetworkTest, OversubscribedBackgroundClampsToCapacity) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  FlowId bg = net.add_background(db.c, db.d);
  net.set_background_rate(bg, Bandwidth::mbps(50));  // more than the trunk
  SimTime done = SimTime::infinity();
  net.start_transfer(db.a, db.b, DataSize::bytes(1250), [&] { done = sim.now(); });
  sim.run_until(SimTime::seconds(60));
  // The trickle guard (1 bps minimum) keeps the transfer finishing
  // eventually, but certainly not fast.
  EXPECT_GT(done.as_seconds(), 1.0);
}

TEST(FlowNetworkTest, AvailableBandwidthReflectsBackgroundAndFlows) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  EXPECT_NEAR(net.available_bandwidth(db.a, db.b).as_mbps(), 10.0, 1e-9);
  FlowId bg = net.add_background(db.c, db.d);
  net.set_background_rate(bg, Bandwidth::mbps(9.95));
  EXPECT_NEAR(net.available_bandwidth(db.a, db.b).as_kbps(), 50.0, 1e-6);
  // A saturating transfer drives it to the floor.
  net.start_transfer(db.a, db.b, DataSize::megabytes(10), [] {});
  EXPECT_NEAR(net.available_bandwidth(db.a, db.b).as_bps(), 100.0, 1e-9);
}

TEST(FlowNetworkTest, PathUtilization) {
  Simulator sim;
  Dumbbell db;
  FlowNetwork net(sim, db.topo);
  EXPECT_DOUBLE_EQ(net.path_utilization(db.a, db.b), 0.0);
  FlowId bg = net.add_background(db.c, db.d);
  net.set_background_rate(bg, Bandwidth::mbps(5));
  EXPECT_NEAR(net.path_utilization(db.a, db.b), 0.5, 1e-9);
}

// ---- max-min fairness properties on random configurations ----

class MaxMinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinPropertyTest, AllocationIsFeasibleAndNonWasteful) {
  Rng rng(GetParam());
  Simulator sim;
  // Random star-of-routers topology.
  Topology topo;
  const int routers = 3;
  const int hosts = 6;
  std::vector<NodeId> rs, hs;
  for (int i = 0; i < routers; ++i) {
    rs.push_back(topo.add_node("r" + std::to_string(i), NodeKind::Router));
  }
  for (int i = 1; i < routers; ++i) {
    topo.add_link(rs[0], rs[i], Bandwidth::mbps(rng.uniform(2.0, 20.0)));
  }
  for (int i = 0; i < hosts; ++i) {
    hs.push_back(topo.add_node("h" + std::to_string(i), NodeKind::Host));
    topo.add_link(hs[i], rs[static_cast<std::size_t>(rng.uniform_int(routers))],
                  Bandwidth::mbps(rng.uniform(2.0, 20.0)));
  }
  topo.compute_routes();
  FlowNetwork net(sim, topo);

  const int flows = 2 + static_cast<int>(rng.uniform_int(8));
  std::vector<FlowId> ids;
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  for (int i = 0; i < flows; ++i) {
    NodeId src = hs[static_cast<std::size_t>(rng.uniform_int(hosts))];
    NodeId dst = src;
    while (dst == src) {
      dst = hs[static_cast<std::size_t>(rng.uniform_int(hosts))];
    }
    ids.push_back(net.start_transfer(src, dst, DataSize::megabytes(1000), [] {}));
    endpoints.emplace_back(src, dst);
  }

  // Feasibility: per-channel usage within capacity (small tolerance).
  std::vector<double> usage(topo.channel_count(), 0.0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    double rate = net.transfer_rate(ids[i]).as_bps();
    EXPECT_GT(rate, 0.0);
    for (ChannelId c : topo.path(endpoints[i].first, endpoints[i].second)) {
      usage[c] += rate;
    }
  }
  for (ChannelId c = 0; c < static_cast<ChannelId>(topo.channel_count()); ++c) {
    EXPECT_LE(usage[c], topo.channel_capacity(c).as_bps() * (1.0 + 1e-6));
  }

  // Non-wastefulness (max-min property): every flow crosses at least one
  // saturated channel (otherwise its rate could be raised).
  for (std::size_t i = 0; i < ids.size(); ++i) {
    bool bottlenecked = false;
    for (ChannelId c : topo.path(endpoints[i].first, endpoints[i].second)) {
      if (usage[c] >= topo.channel_capacity(c).as_bps() * (1.0 - 1e-6)) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << i << " is not bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, MaxMinPropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace arcadia::sim
