// Bus edge semantics pinned: dropped_no_match accounting, unsubscribe
// during dispatch, re-entrant publish from a handler, wildcard-vs-indexed
// routing equivalence, slot reuse, and the notification's small-buffer
// attribute storage. These are the contracts the topic-indexed routing and
// shared-payload delivery must not bend.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "events/bus.hpp"
#include "util/ring_buffer.hpp"

namespace arcadia::events {
namespace {

TEST(BusAccountingTest, LocalDroppedNoMatchCountsOnlyUnmatched) {
  LocalEventBus bus;
  int hits = 0;
  bus.subscribe(Filter::topic("a"), [&](const Notification&) { ++hits; });
  bus.publish(Notification("a"));  // delivered
  bus.publish(Notification("b"));  // no subscriber at all -> dropped
  // Topic matches but the constraint does not -> still dropped.
  bus.subscribe(Filter::topic("c").where("k", Op::Eq, 1),
                [&](const Notification&) { ++hits; });
  bus.publish(Notification("c").set("k", 2));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(bus.stats().published, 3u);
  EXPECT_EQ(bus.stats().delivered, 1u);
  EXPECT_EQ(bus.stats().dropped_no_match, 2u);
}

TEST(BusAccountingTest, SimDroppedNoMatchCountsOnlyUnmatched) {
  sim::Simulator sim;
  SimEventBus bus(sim, fixed_delay(SimTime::millis(1)));
  int hits = 0;
  bus.subscribe(Filter::topic("a"), [&](const Notification&) { ++hits; });
  bus.publish(Notification("a"));
  bus.publish(Notification("b"));
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(bus.stats().delivered, 1u);
  EXPECT_EQ(bus.stats().dropped_no_match, 1u);
}

TEST(BusDispatchTest, LocalUnsubscribeDuringDispatchIsSnapshotted) {
  LocalEventBus bus;
  // A unsubscribes B mid-dispatch; the snapshot still delivers to B for
  // the in-flight notification, and B is gone for the next one.
  int b_hits = 0;
  SubscriptionId b = 0;
  bus.subscribe(Filter::topic("t"),
                [&](const Notification&) { bus.unsubscribe(b); });
  b = bus.subscribe(Filter::topic("t"),
                    [&](const Notification&) { ++b_hits; });
  bus.publish(Notification("t"));
  EXPECT_EQ(b_hits, 1);
  bus.publish(Notification("t"));
  EXPECT_EQ(b_hits, 1);
}

TEST(BusDispatchTest, LocalHandlerMayUnsubscribeItself) {
  LocalEventBus bus;
  int hits = 0;
  SubscriptionId id = 0;
  id = bus.subscribe(Filter::topic("t"), [&](const Notification&) {
    ++hits;
    bus.unsubscribe(id);
  });
  bus.publish(Notification("t"));
  bus.publish(Notification("t"));
  EXPECT_EQ(hits, 1);
}

TEST(BusDispatchTest, LocalSubscribeDuringDispatchMissesInFlight) {
  LocalEventBus bus;
  int late_hits = 0;
  bus.subscribe(Filter::topic("t"), [&](const Notification&) {
    bus.subscribe(Filter::topic("t"),
                  [&](const Notification&) { ++late_hits; });
  });
  bus.publish(Notification("t"));
  EXPECT_EQ(late_hits, 0);  // added mid-dispatch: not snapshotted
  bus.publish(Notification("t"));
  EXPECT_EQ(late_hits, 1);  // ...but sees the next publish
}

TEST(BusDispatchTest, LocalReentrantPublishFromHandler) {
  LocalEventBus bus;
  std::vector<std::string> order;
  bus.subscribe(Filter::topic("first"), [&](const Notification&) {
    order.push_back("first");
    bus.publish(Notification("second"));
    order.push_back("first-done");
  });
  bus.subscribe(Filter::topic("second"),
                [&](const Notification&) { order.push_back("second"); });
  bus.publish(Notification("first"));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "second");  // synchronous, runs inside the outer dispatch
  EXPECT_EQ(order[2], "first-done");
  EXPECT_EQ(bus.stats().published, 2u);
  EXPECT_EQ(bus.stats().delivered, 2u);
}

TEST(BusDispatchTest, SimHandlerMayUnsubscribeItselfAndRepublish) {
  sim::Simulator sim;
  SimEventBus bus(sim, fixed_delay(SimTime::millis(1)));
  int first = 0, second = 0;
  SubscriptionId id = 0;
  id = bus.subscribe(Filter::topic("ping"), [&](const Notification&) {
    ++first;
    bus.unsubscribe(id);
    bus.publish(Notification("pong"));  // re-entrant publish from a delivery
  });
  bus.subscribe(Filter::topic("pong"),
                [&](const Notification&) { ++second; });
  bus.publish(Notification("ping"));
  bus.publish(Notification("ping"));  // second one finds the sub deleted? No —
  // both publishes match (unsubscribe happens at the first delivery), but
  // the second delivery is dropped by the generation check.
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(bus.in_flight(), 0u);
}

TEST(BusDispatchTest, SimHandlerMaySubscribeDuringItsOwnDelivery) {
  // Regression: a re-entrant subscribe can reallocate the slot table while
  // a delivery handler is executing; the handler's closure must stay alive
  // through its own call (deliveries pin it by refcount).
  sim::Simulator sim;
  SimEventBus bus(sim, fixed_delay(SimTime::millis(1)));
  int grown = 0, late = 0;
  bus.subscribe(Filter::topic("t"), [&](const Notification&) {
    ++grown;
    // Enough re-entrant subscriptions to force slot-vector growth.
    for (int i = 0; i < 64; ++i) {
      bus.subscribe(Filter::topic("later"),
                    [&](const Notification&) { ++late; });
    }
  });
  bus.publish(Notification("t"));
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(grown, 1);
  bus.publish(Notification("later"));
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(late, 64);
}

TEST(BusDispatchTest, WildcardSymbolTopicFilterKeepsPrefixSemantics) {
  // The symbol overload of Filter::topic must classify '*' patterns like
  // the string overload, not treat them as exact topic text.
  Filter f = Filter::topic(util::Symbol::intern("probe.*"));
  EXPECT_TRUE(f.matches(Notification("probe.latency")));
  EXPECT_FALSE(f.matches(Notification("gauge.report")));
  EXPECT_FALSE(f.matches(Notification("probe.*")) &&
               !f.matches(Notification("probe.latency")));
}

TEST(BusDispatchTest, SimSlotReuseDoesNotLeakOldDeliveries) {
  sim::Simulator sim;
  SimEventBus bus(sim, fixed_delay(SimTime::seconds(1)));
  int stale = 0, fresh = 0;
  SubscriptionId old_id =
      bus.subscribe(Filter::topic("t"), [&](const Notification&) { ++stale; });
  bus.publish(Notification("t"));  // in flight for 1 s
  bus.unsubscribe(old_id);
  // New subscription likely reuses the freed slot; the in-flight delivery
  // carries the old generation and must not reach it.
  bus.subscribe(Filter::topic("t"), [&](const Notification&) { ++fresh; });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(stale, 0);
  EXPECT_EQ(fresh, 0);  // subscribed after the publish: not matched either
  bus.publish(Notification("t"));
  sim.run_until(SimTime::seconds(4));
  EXPECT_EQ(fresh, 1);
}

// The routing-equivalence matrix: a wildcard prefix filter, an any filter,
// and exact-topic filters must see exactly the same notifications in the
// same per-subscriber order whether they were routed through the topic
// index or the fallback scan.
template <typename MakeBus, typename Pump>
void RoutingEquivalence(MakeBus&& make_bus, Pump&& pump) {
  auto& bus = make_bus();
  std::vector<std::string> exact_a, exact_b, wild, any, interleaved;
  auto log = [&](std::vector<std::string>& into, const char* tag) {
    return [&into, &interleaved, tag](const Notification& n) {
      into.push_back(n.topic.str());
      interleaved.push_back(std::string(tag) + ":" + n.topic.str());
    };
  };
  bus.subscribe(Filter::topic("probe.a"), log(exact_a, "ea"));
  bus.subscribe(Filter::topic("probe.*"), log(wild, "w"));
  bus.subscribe(Filter::topic("probe.b"), log(exact_b, "eb"));
  bus.subscribe(Filter::any(), log(any, "any"));

  bus.publish(Notification("probe.a"));
  bus.publish(Notification("probe.b"));
  bus.publish(Notification("gauge.x"));
  bus.publish(Notification("probe.a"));
  pump();

  EXPECT_EQ(exact_a, (std::vector<std::string>{"probe.a", "probe.a"}));
  EXPECT_EQ(exact_b, (std::vector<std::string>{"probe.b"}));
  EXPECT_EQ(wild,
            (std::vector<std::string>{"probe.a", "probe.b", "probe.a"}));
  EXPECT_EQ(any, (std::vector<std::string>{"probe.a", "probe.b", "gauge.x",
                                           "probe.a"}));
  // Cross-subscriber order: subscription order per notification, with the
  // indexed (exact) and fallback (wildcard/any) candidates merged — the
  // same interleaving the linear scan produced.
  EXPECT_EQ(interleaved,
            (std::vector<std::string>{
                "ea:probe.a", "w:probe.a", "any:probe.a",    // n1
                "w:probe.b", "eb:probe.b", "any:probe.b",    // n2
                "any:gauge.x",                               // n3
                "ea:probe.a", "w:probe.a", "any:probe.a"})); // n4
}

TEST(BusRoutingTest, WildcardVsIndexedEquivalenceLocal) {
  LocalEventBus bus;
  RoutingEquivalence([&]() -> LocalEventBus& { return bus; }, [] {});
}

TEST(BusRoutingTest, WildcardVsIndexedEquivalenceSim) {
  sim::Simulator sim;
  SimEventBus bus(sim, fixed_delay(SimTime::millis(1)));
  RoutingEquivalence([&]() -> SimEventBus& { return bus; },
                     [&] { sim.run_until(SimTime::seconds(1)); });
}

TEST(BusRoutingTest, UnsubscribeRemovesFromTopicBucket) {
  LocalEventBus bus;
  int a = 0, b = 0;
  SubscriptionId ida =
      bus.subscribe(Filter::topic("t"), [&](const Notification&) { ++a; });
  bus.subscribe(Filter::topic("t"), [&](const Notification&) { ++b; });
  bus.publish(Notification("t"));
  bus.unsubscribe(ida);
  bus.publish(Notification("t"));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(bus.stats().delivered, 3u);
}

TEST(NotificationTest, GetIfReturnsPointerWithoutCopy) {
  Notification n("t");
  n.set("value", 3.5).set("name", util::Symbol::intern("User3"));
  const Value* v = n.get_if("value");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->as_double(), 3.5);
  EXPECT_EQ(v, n.get_if(util::Symbol::intern("value")));  // same storage
  EXPECT_EQ(n.get_if("absent"), nullptr);
  // Symbol-valued attributes still read as strings.
  EXPECT_EQ(n.get("name").as_string(), "User3");
  EXPECT_TRUE(n.get("name").is_string());
}

TEST(NotificationTest, AttributeOverflowBeyondInlineCapacity) {
  Notification n("t");
  const int kCount = 20;  // > AttrList::kInlineCap
  for (int i = 0; i < kCount; ++i) {
    n.set("attr" + std::to_string(i), i);
  }
  EXPECT_EQ(n.attributes.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    const Value* v = n.get_if("attr" + std::to_string(i));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->as_int(), i);
  }
  // Overwrite keeps size and position.
  n.set("attr3", 99);
  EXPECT_EQ(n.attributes.size(), static_cast<std::size_t>(kCount));
  EXPECT_EQ(n.get("attr3").as_int(), 99);
  // Copies preserve the overflowed list.
  Notification copy = n;
  EXPECT_EQ(copy.get("attr19").as_int(), 19);
}

TEST(NotificationTest, FilterMatchesSymbolValuedAttributes) {
  Notification n("probe.latency");
  n.set("client", util::Symbol::intern("User3")).set("value", 1.0);
  // String-built filter vs symbol-valued attribute: equality is textual.
  EXPECT_TRUE(Filter::topic("probe.latency")
                  .where("client", Op::Eq, "User3")
                  .matches(n));
  EXPECT_FALSE(Filter::topic("probe.latency")
                   .where("client", Op::Eq, "User4")
                   .matches(n));
  // Prefix/contains operators read through the symbol too.
  EXPECT_TRUE(Filter::topic("probe.*")
                  .where("client", Op::Prefix, "User")
                  .matches(n));
}

TEST(RingBufferTest, FifoAcrossGrowthAndWrap) {
  util::RingBuffer<int> ring;
  for (int i = 0; i < 5; ++i) ring.push_back(i);
  ring.pop_front();
  ring.pop_front();
  for (int i = 5; i < 40; ++i) ring.push_back(i);  // forces growth mid-wrap
  ASSERT_EQ(ring.size(), 38u);
  EXPECT_EQ(ring.front(), 2);
  EXPECT_EQ(ring.back(), 39);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i) + 2);
  }
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(7);
  EXPECT_EQ(ring.front(), 7);
}

}  // namespace
}  // namespace arcadia::events
