// Edge cases of the script interpreter and evaluator: scoping, shadowing,
// inline comprehensions, abort propagation through nesting, and the
// evaluator's behaviour on degenerate models.
#include <gtest/gtest.h>

#include "acme/interpreter.hpp"
#include "acme/script.hpp"
#include "model/types.hpp"
#include "repair/style_ops.hpp"

namespace arcadia::acme {
namespace {

namespace cs = model::cs;

model::System two_group_system() {
  model::System sys("S");
  for (int i = 1; i <= 2; ++i) {
    auto& g = sys.add_component("G" + std::to_string(i), cs::kServerGroupT);
    g.set_property("load", model::PropertyValue(i * 4.0));  // 4 and 8
    g.set_property("replicationCount", model::PropertyValue(2));
    g.add_port("provide", cs::kProvidePortT);
    g.representation();
  }
  auto& c = sys.add_component("C", cs::kClientT);
  c.set_property("averageLatency", model::PropertyValue(5.0));
  c.set_property("maxLatency", model::PropertyValue(2.0));
  c.add_port("request", cs::kRequestPortT);
  auto& conn = sys.add_connector("K", cs::kConnT);
  conn.add_role("clientSide", cs::kClientRoleT);
  conn.add_role("serverSide", cs::kServerRoleT);
  sys.attach({"C", "request", "K", "clientSide"});
  sys.attach({"G1", "provide", "K", "serverSide"});
  return sys;
}

struct Rig {
  model::System sys = two_group_system();
  Script script;
  std::unique_ptr<Interpreter> interp;

  explicit Rig(const std::string& source) : script(parse_script(source)) {
    interp = std::make_unique<Interpreter>(sys, script);
    repair::register_client_server_ops(*interp, sys, nullptr);
    interp->bind_global("maxServerLoad", EvalValue(6.0));
  }

  StrategyOutcome run(const std::string& strategy) {
    model::Transaction txn(sys);
    EvalValue arg(ElementRef::of_component(sys, sys.component("C")));
    StrategyOutcome out = interp->run_strategy(strategy, {arg}, txn);
    if (txn.is_open()) {
      if (out.committed) {
        txn.commit();
      } else {
        txn.rollback();
      }
    }
    return out;
  }
};

TEST(InterpreterEdgeTest, LetShadowingIsBlockScoped) {
  Rig rig(
      "strategy s(c : ClientT) = {\n"
      "  let x = 1;\n"
      "  if (x == 1) {\n"
      "    let x = 2;\n"
      "    if (x != 2) { abort InnerWrong; }\n"
      "  }\n"
      "  if (x != 1) { abort OuterClobbered; }\n"
      "  commit repair;\n"
      "}");
  StrategyOutcome out = rig.run("s");
  EXPECT_TRUE(out.committed) << out.abort_reason;
}

TEST(InterpreterEdgeTest, ForeachOverInlineSelect) {
  Rig rig(
      "strategy s(c : ClientT) = {\n"
      "  foreach g in select x : ServerGroupT in self.Components | x.load > 6 {\n"
      "    g.addServer();\n"
      "  }\n"
      "  commit repair;\n"
      "}");
  StrategyOutcome out = rig.run("s");
  ASSERT_TRUE(out.committed);
  // Only G2 (load 8) grew.
  EXPECT_EQ(rig.sys.component("G2").property("replicationCount").as_int(), 3);
  EXPECT_EQ(rig.sys.component("G1").property("replicationCount").as_int(), 2);
}

TEST(InterpreterEdgeTest, AbortInsideTacticPropagatesToStrategy) {
  Rig rig(
      "strategy s(c : ClientT) = {\n"
      "  if (t(c)) { commit repair; } else { abort TacticSaidNo; }\n"
      "}\n"
      "tactic t(c : ClientT) : boolean = { abort DeepTrouble; }");
  StrategyOutcome out = rig.run("s");
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.abort_reason, "DeepTrouble");
}

TEST(InterpreterEdgeTest, TacticsSeeEarlierMutationsInSameRepair) {
  // The second tactic reads the replicationCount the first one bumped:
  // reads-after-writes inside one transaction.
  Rig rig(
      "strategy s(c : ClientT) = {\n"
      "  if (grow(c)) {\n"
      "    if (verify(c)) { commit repair; } else { abort NotVisible; }\n"
      "  } else { abort GrowFailed; }\n"
      "}\n"
      "tactic grow(c : ClientT) : boolean = {\n"
      "  let g : ServerGroupT =\n"
      "    select one x : ServerGroupT in self.Components | x.name == \"G1\";\n"
      "  return g.addServer();\n"
      "}\n"
      "tactic verify(c : ClientT) : boolean = {\n"
      "  let g : ServerGroupT =\n"
      "    select one x : ServerGroupT in self.Components | x.name == \"G1\";\n"
      "  return g.replicationCount == 3;\n"
      "}");
  StrategyOutcome out = rig.run("s");
  EXPECT_TRUE(out.committed) << out.abort_reason;
}

TEST(InterpreterEdgeTest, ReturnWithoutCommitAbortsStrategy) {
  Rig rig("strategy s(c : ClientT) = { return true; }");
  StrategyOutcome out = rig.run("s");
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.abort_reason, "ReturnWithoutCommit");
}

TEST(InterpreterEdgeTest, FallingOffStrategyEndAborts) {
  Rig rig("strategy s(c : ClientT) = { let x = 1; }");
  StrategyOutcome out = rig.run("s");
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.abort_reason, "NoCommit");
}

TEST(InterpreterEdgeTest, NestedForeachProducts) {
  // Count pairs (group, group) via nested iteration with a side-effecting
  // operator guard; exercises scope chains three deep.
  Rig rig(
      "strategy s(c : ClientT) = {\n"
      "  foreach a in self.Components {\n"
      "    foreach b in self.Components {\n"
      "      if (a.name == b.name and a.name == \"G1\") {\n"
      "        a.addServer();\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "  commit repair;\n"
      "}");
  StrategyOutcome out = rig.run("s");
  ASSERT_TRUE(out.committed);
  EXPECT_EQ(rig.sys.component("G1").property("replicationCount").as_int(), 3);
}

TEST(InterpreterEdgeTest, StringEscapesAndComparison) {
  Rig rig(
      "strategy s(c : ClientT) = {\n"
      "  if (c.name + \"!\" == \"C!\") { commit repair; } else { abort Nope; }\n"
      "}");
  EXPECT_TRUE(rig.run("s").committed);
}

TEST(InterpreterEdgeTest, EmptyDomainComprehensions) {
  Rig rig(
      "strategy s(c : ClientT) = {\n"
      "  let none : set{ClientT} =\n"
      "    select x : ClientT in self.Components | x.averageLatency > 100;\n"
      "  if (size(none) == 0 and empty(none)) { commit repair; }\n"
      "  else { abort NotEmpty; }\n"
      "}");
  EXPECT_TRUE(rig.run("s").committed);
}

}  // namespace
}  // namespace arcadia::acme
