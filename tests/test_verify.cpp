// Whole-deployment semantic verification (core/verify.hpp): the
// cross-artifact rules over a *started* framework, the scenario-config
// validator, the FrameworkConfig::verify startup hook, and the soundness
// oracle — every op journaled by a committed repair must fall inside the
// statically inferred write set of the tactic that produced it, checked
// over end-to-end paper-fig6 and flash-crowd runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "acme/analysis.hpp"
#include "acme/effects.hpp"
#include "acme/script.hpp"
#include "core/experiment.hpp"
#include "core/framework_builder.hpp"
#include "core/verify.hpp"
#include "repair/scripts.hpp"
#include "sim/scenario_registry.hpp"

namespace arcadia::core {
namespace {

using acme::analysis::AnalysisIssue;

std::string dump(const std::vector<AnalysisIssue>& issues) {
  std::string out;
  for (const AnalysisIssue& i : issues) out += i.to_string() + "\n";
  return out;
}

bool has_rule(const std::vector<AnalysisIssue>& issues,
              const std::string& rule) {
  for (const AnalysisIssue& i : issues) {
    if (i.rule == rule) return true;
  }
  return false;
}

// ---- deployment view + rules over a started framework --------------------

TEST(VerifyTest, PaperFig6DeploymentVerifiesClean) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  FrameworkBuilder builder(sim, tb);
  std::unique_ptr<Framework> fw = builder.build_started();

  const acme::analysis::DeploymentView view = make_deployment_view(*fw);
  EXPECT_FALSE(view.constraints.empty());
  EXPECT_FALSE(view.gauge_feeds.empty());
  EXPECT_FALSE(view.operators_used.empty());
  // Table 1 operators all carry a positive environment cost.
  for (const char* op : {"addServer", "move", "removeServer"}) {
    auto it = view.operator_costs_s.find(op);
    ASSERT_NE(it, view.operator_costs_s.end()) << op;
    EXPECT_GT(it->second, 0.0) << op;
  }

  const auto issues = verify_framework(*fw);
  EXPECT_TRUE(issues.empty()) << dump(issues);
}

TEST(VerifyTest, MissingGaugesSurfaceAsUngaugedConstraints) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  FrameworkBuilder builder(sim, tb);
  // Deploy no gauges at all: every property-reading constraint loses its
  // feed and the cross-artifact rule must say so.
  builder.with_gauge_deployer([](sim::Simulator&, sim::Testbed&,
                                 monitor::GaugeManager&,
                                 const FrameworkConfig&) {});
  std::unique_ptr<Framework> fw = builder.build_started();
  const auto issues = verify_framework(*fw);
  EXPECT_TRUE(has_rule(issues, "ungauged-constraint")) << dump(issues);
}

// ---- the startup hook -----------------------------------------------------

TEST(VerifyTest, VerifyModeErrorFailsStartOnBadDeployment) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  FrameworkBuilder builder(sim, tb);
  builder.with_verification(VerifyMode::Error);
  builder.with_gauge_deployer([](sim::Simulator&, sim::Testbed&,
                                 monitor::GaugeManager&,
                                 const FrameworkConfig&) {});
  std::unique_ptr<Framework> fw = builder.build();
  EXPECT_THROW(fw->start(), Error);
}

TEST(VerifyTest, VerifyModeWarnToleratesBadDeployment) {
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  FrameworkBuilder builder(sim, tb);  // Warn is the default
  builder.with_gauge_deployer([](sim::Simulator&, sim::Testbed&,
                                 monitor::GaugeManager&,
                                 const FrameworkConfig&) {});
  EXPECT_NO_THROW(builder.build_started());
}

// ---- scenario-config validation -------------------------------------------

TEST(VerifyTest, RegisteredScenarioDefaultsAreValid) {
  for (const std::string& name : sim::ScenarioRegistry::instance().names()) {
    const auto issues =
        verify_scenario_config(name, sim::scenario_defaults(name));
    EXPECT_TRUE(issues.empty()) << name << ":\n" << dump(issues);
  }
}

TEST(VerifyTest, UnknownScenarioNameIsFlagged) {
  const auto issues =
      verify_scenario_config("no-such-scenario", sim::ScenarioConfig{});
  EXPECT_TRUE(has_rule(issues, "scenario-config")) << dump(issues);
}

TEST(VerifyTest, MalformedScheduleAndFaultConfigFlagged) {
  sim::ScenarioConfig config;
  config.horizon = SimTime::seconds(600);
  config.quiescent_end = SimTime::seconds(50);
  config.stress_start = SimTime::seconds(100);
  config.stress_end = SimTime::seconds(700);  // dangles past the horizon
  config.fault.enabled = true;
  config.fault.monitoring.report_loss = 1.5;  // not a probability
  config.fault.repair.stall_min = SimTime::seconds(40);
  config.fault.repair.stall_max = SimTime::seconds(20);  // inverted window
  const auto issues = verify_scenario_config("", config);
  EXPECT_EQ(issues.size(), 3u) << dump(issues);
  for (const AnalysisIssue& i : issues) {
    EXPECT_EQ(i.rule, "scenario-config");
    EXPECT_EQ(i.severity, acme::Severity::Error);
  }
}

TEST(VerifyTest, StressPhasePastHorizonSentinelIsValid) {
  // The scenario library neutralizes the Figure 7 stress phase by pushing
  // it past the horizon (seconds(1e9)); that must not be flagged.
  sim::ScenarioConfig config;
  config.stress_start = SimTime::seconds(1e9);
  config.stress_end = SimTime::seconds(1e9);
  EXPECT_TRUE(verify_scenario_config("", config).empty());
}

// ---- soundness oracle ------------------------------------------------------
// Dynamic check of the static effect inference: every OpRecord journaled by
// a committed repair must fall inside the inferred write set of the tactic
// whose span covers it.

void expect_journal_sound(const std::vector<repair::RepairRecord>& repairs,
                          const char* label) {
  const acme::Script script = acme::parse_script(repair::extended_script());
  const acme::ScriptEffects effects =
      acme::infer_effects(script, acme::make_client_server_effects());
  std::size_t committed = 0;
  std::size_t checked_ops = 0;
  for (const repair::RepairRecord& rec : repairs) {
    if (!rec.committed) continue;
    ++committed;
    for (const acme::TacticSpan& span : rec.tactic_spans) {
      const acme::TacticEffects* fx = effects.find(span.name);
      ASSERT_NE(fx, nullptr) << label << ": unknown tactic " << span.name;
      ASSERT_LE(span.ops_begin, span.ops_end) << label;
      ASSERT_LE(span.ops_end, rec.journal.size()) << label;
      for (std::size_t i = span.ops_begin; i < span.ops_end; ++i) {
        EXPECT_TRUE(acme::analysis::op_within_effects(rec.journal[i], *fx))
            << label << ": journaled op #" << i << " on '"
            << rec.journal[i].element << "' escapes the inferred effect of "
            << "tactic '" << span.name << "'";
        ++checked_ops;
      }
    }
  }
  // The oracle must not pass vacuously: repairs fired and produced ops.
  EXPECT_GT(committed, 0u) << label;
  EXPECT_GT(checked_ops, 0u) << label;
}

TEST(VerifyTest, SoundnessOracleHoldsOnPaperFig6Run) {
  ExperimentOptions opt;  // paper-fig6, schedule compressed for test budget
  opt.scenario.horizon = SimTime::seconds(600);
  opt.scenario.quiescent_end = SimTime::seconds(60);
  opt.scenario.stress_start = SimTime::seconds(300);
  opt.scenario.stress_end = SimTime::seconds(420);
  const ExperimentResult r = run_experiment(opt);
  expect_journal_sound(r.repairs, "paper-fig6");
}

TEST(VerifyTest, SoundnessOracleHoldsOnFlashCrowdRun) {
  ExperimentOptions opt = options_for("flash-crowd");
  opt.scenario.horizon = SimTime::seconds(600);  // spike at 300 s + recovery
  const ExperimentResult r = run_experiment(opt);
  expect_journal_sound(r.repairs, "flash-crowd");
}

}  // namespace
}  // namespace arcadia::core
