#include <gtest/gtest.h>

#include "events/bus.hpp"

namespace arcadia::events {
namespace {

TEST(ValueTest, NumericCoercionEquality) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_EQ(Value("x"), Value(std::string("x")));
  EXPECT_NE(Value(true), Value(1));  // bool is not numeric
}

TEST(ValueTest, CompareOrdersNumbersAndStrings) {
  int cmp = 0;
  EXPECT_TRUE(Value::compare(Value(1), Value(2.5), cmp));
  EXPECT_LT(cmp, 0);
  EXPECT_TRUE(Value::compare(Value("b"), Value("a"), cmp));
  EXPECT_GT(cmp, 0);
  EXPECT_FALSE(Value::compare(Value(true), Value("a"), cmp));
}

TEST(ValueTest, AsDoublePromotesInt) {
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);
}

struct FilterCase {
  Op op;
  Value attr;
  Value constraint;
  bool expect;
};

class FilterOpTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FilterOpTest, Matches) {
  const FilterCase& c = GetParam();
  Notification n("t");
  n.set("k", c.attr);
  Filter f = Filter::topic("t").where("k", c.op, c.constraint);
  EXPECT_EQ(f.matches(n), c.expect)
      << to_string(c.op) << " attr=" << c.attr.to_string()
      << " constraint=" << c.constraint.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    OpTable, FilterOpTest,
    ::testing::Values(
        FilterCase{Op::Eq, Value(5), Value(5.0), true},
        FilterCase{Op::Eq, Value(5), Value(6), false},
        FilterCase{Op::Ne, Value("a"), Value("b"), true},
        FilterCase{Op::Ne, Value("a"), Value("a"), false},
        FilterCase{Op::Lt, Value(1.5), Value(2), true},
        FilterCase{Op::Lt, Value(2), Value(2), false},
        FilterCase{Op::Le, Value(2), Value(2), true},
        FilterCase{Op::Gt, Value(3), Value(2), true},
        FilterCase{Op::Ge, Value(2), Value(3), false},
        FilterCase{Op::Exists, Value(0), Value(0), true},
        FilterCase{Op::Prefix, Value("User3"), Value("User"), true},
        FilterCase{Op::Prefix, Value("User3"), Value("Server"), false},
        FilterCase{Op::Suffix, Value("probe.latency"), Value("latency"), true},
        FilterCase{Op::Suffix, Value("probe.latency"), Value("queue"), false},
        FilterCase{Op::Contains, Value("gauge.report"), Value("e.r"), true},
        FilterCase{Op::Contains, Value("gauge.report"), Value("xyz"), false},
        FilterCase{Op::Lt, Value("a"), Value(1), false},  // incomparable
        FilterCase{Op::Prefix, Value(5), Value("5"), false}));

TEST(FilterTest, MissingAttributeNeverMatches) {
  Notification n("t");
  Filter f = Filter::topic("t").where("absent", Op::Exists);
  EXPECT_FALSE(f.matches(n));
}

TEST(FilterTest, TopicExactAndWildcard) {
  Notification n("probe.latency");
  EXPECT_TRUE(Filter::topic("probe.latency").matches(n));
  EXPECT_FALSE(Filter::topic("probe.queue").matches(n));
  EXPECT_TRUE(Filter::topic("probe.*").matches(n));
  EXPECT_FALSE(Filter::topic("gauge.*").matches(n));
  EXPECT_TRUE(Filter::any().matches(n));
}

TEST(FilterTest, ConjunctionOfConstraints) {
  Notification n("t");
  n.set("a", 1).set("b", "x");
  Filter both = Filter::topic("t").where("a", Op::Eq, 1).where("b", Op::Eq, "x");
  EXPECT_TRUE(both.matches(n));
  Filter bad = Filter::topic("t").where("a", Op::Eq, 1).where("b", Op::Eq, "y");
  EXPECT_FALSE(bad.matches(n));
}

TEST(LocalEventBusTest, DeliversToMatchingSubscribers) {
  LocalEventBus bus;
  int a = 0, b = 0;
  bus.subscribe(Filter::topic("x"), [&](const Notification&) { ++a; });
  bus.subscribe(Filter::topic("y"), [&](const Notification&) { ++b; });
  bus.publish(Notification("x"));
  bus.publish(Notification("x"));
  bus.publish(Notification("y"));
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(bus.stats().published, 3u);
  EXPECT_EQ(bus.stats().delivered, 3u);
}

TEST(LocalEventBusTest, UnsubscribeStopsDelivery) {
  LocalEventBus bus;
  int count = 0;
  SubscriptionId id =
      bus.subscribe(Filter::any(), [&](const Notification&) { ++count; });
  bus.publish(Notification("t"));
  bus.unsubscribe(id);
  bus.publish(Notification("t"));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.stats().dropped_no_match, 1u);
}

TEST(LocalEventBusTest, HandlerMayReenterBus) {
  LocalEventBus bus;
  int second = 0;
  bus.subscribe(Filter::topic("first"), [&](const Notification&) {
    bus.publish(Notification("second"));
  });
  bus.subscribe(Filter::topic("second"), [&](const Notification&) { ++second; });
  bus.publish(Notification("first"));
  EXPECT_EQ(second, 1);
}

TEST(SimEventBusTest, DeliveryIsDelayed) {
  sim::Simulator sim;
  SimEventBus bus(sim, fixed_delay(SimTime::millis(100)));
  SimTime delivered;
  bus.subscribe(Filter::any(),
                [&](const Notification&) { delivered = sim.now(); });
  sim.schedule_at(SimTime::seconds(1), [&] { bus.publish(Notification("t")); });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(delivered, SimTime::seconds(1) + SimTime::millis(100));
}

TEST(SimEventBusTest, UnsubscribeDropsInFlight) {
  sim::Simulator sim;
  SimEventBus bus(sim, fixed_delay(SimTime::seconds(1)));
  int count = 0;
  SubscriptionId id =
      bus.subscribe(Filter::any(), [&](const Notification&) { ++count; });
  bus.publish(Notification("t"));
  EXPECT_EQ(bus.in_flight(), 1u);
  sim.schedule_at(SimTime::millis(500), [&] { bus.unsubscribe(id); });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(count, 0);  // the in-flight delivery was dropped
  EXPECT_EQ(bus.in_flight(), 0u);
}

TEST(SimEventBusTest, NetworkDelayModelChargesCongestion) {
  sim::Simulator sim;
  sim::Topology topo;
  auto r = topo.add_node("r", sim::NodeKind::Router);
  auto a = topo.add_node("a", sim::NodeKind::Host);
  auto b = topo.add_node("b", sim::NodeKind::Host);
  auto c = topo.add_node("c", sim::NodeKind::Host);
  topo.add_link(a, r, Bandwidth::mbps(10));
  topo.add_link(b, r, Bandwidth::mbps(10));
  topo.add_link(c, r, Bandwidth::mbps(10));
  topo.compute_routes();
  sim::FlowNetwork net(sim, topo);

  // Saturate a -> b.
  auto bg = net.add_background(a, b);
  net.set_background_rate(bg, Bandwidth::mbps(9.9999));

  DelayModel shared = network_delay(net, SimTime::millis(10), false);
  DelayModel qos = network_delay(net, SimTime::millis(10), true);

  Notification n("gauge.report");
  n.source_node = a;
  n.wire_size = DataSize::bytes(1024);
  SimTime congested = shared(n, b);
  SimTime prioritized = qos(n, b);
  // The reverse direction of the saturated pair is clean (full duplex).
  Notification rev("gauge.report");
  rev.source_node = b;
  rev.wire_size = DataSize::bytes(1024);
  SimTime clean = shared(rev, a);
  (void)c;
  EXPECT_GT(congested.as_seconds(), 1.0);     // crawls through the congestion
  EXPECT_LT(clean.as_seconds(), 0.02);        // other direction unaffected
  EXPECT_EQ(prioritized, SimTime::millis(10));  // QoS bypasses it
}

}  // namespace
}  // namespace arcadia::events
