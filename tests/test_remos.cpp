#include <gtest/gtest.h>

#include "remos/remos.hpp"

namespace arcadia::remos {
namespace {

struct Rig {
  sim::Simulator sim;
  sim::Topology topo;
  std::unique_ptr<sim::FlowNetwork> net;
  sim::NodeId a, b;
  std::unique_ptr<RemosService> remos;

  explicit Rig(RemosConfig cfg = {}) {
    auto r = topo.add_node("r", sim::NodeKind::Router);
    a = topo.add_node("a", sim::NodeKind::Host);
    b = topo.add_node("b", sim::NodeKind::Host);
    topo.add_link(a, r, Bandwidth::mbps(10));
    topo.add_link(b, r, Bandwidth::mbps(10));
    topo.compute_routes();
    net = std::make_unique<sim::FlowNetwork>(sim, topo);
    remos = std::make_unique<RemosService>(sim, *net, cfg);
  }
};

TEST(RemosTest, FirstQueryIsExpensiveThenCheap) {
  Rig rig;
  rig.remos->get_flow(rig.a, rig.b);
  EXPECT_EQ(rig.remos->last_query_cost(), SimTime::seconds(60));
  rig.remos->get_flow(rig.a, rig.b);
  EXPECT_EQ(rig.remos->last_query_cost(), SimTime::millis(10));
  EXPECT_EQ(rig.remos->stats().cold_queries, 1u);
  EXPECT_EQ(rig.remos->stats().cache_hits, 1u);
}

TEST(RemosTest, DirectionsAreSeparatePairs) {
  Rig rig;
  rig.remos->get_flow(rig.a, rig.b);
  rig.remos->get_flow(rig.b, rig.a);
  EXPECT_EQ(rig.remos->stats().cold_queries, 2u);
}

TEST(RemosTest, CachedValueServedWithinTtl) {
  Rig rig;
  Bandwidth before = rig.remos->get_flow(rig.a, rig.b);
  // Saturate the path; within the TTL Remos still reports the cached value.
  auto bg = rig.net->add_background(rig.a, rig.b);
  rig.net->set_background_rate(bg, Bandwidth::mbps(9.9));
  Bandwidth cached = rig.remos->get_flow(rig.a, rig.b);
  EXPECT_DOUBLE_EQ(cached.as_bps(), before.as_bps());
}

TEST(RemosTest, TtlExpiryRefreshes) {
  Rig rig;
  rig.remos->get_flow(rig.a, rig.b);
  auto bg = rig.net->add_background(rig.a, rig.b);
  rig.net->set_background_rate(bg, Bandwidth::mbps(9.0));
  rig.sim.run_until(SimTime::seconds(31));  // beyond the 30 s TTL
  Bandwidth refreshed = rig.remos->get_flow(rig.a, rig.b);
  EXPECT_NEAR(refreshed.as_mbps(), 1.0, 1e-6);
  EXPECT_EQ(rig.remos->stats().refreshes, 1u);
  EXPECT_EQ(rig.remos->last_query_cost(), SimTime::millis(10));
}

TEST(RemosTest, PrequeryWarmsPairs) {
  Rig rig;
  SimTime cost = rig.remos->prequery({{rig.a, rig.b}, {rig.b, rig.a}});
  EXPECT_EQ(cost, SimTime::seconds(60));  // one parallel collection round
  EXPECT_TRUE(rig.remos->is_warm(rig.a, rig.b));
  rig.remos->get_flow(rig.a, rig.b);
  EXPECT_EQ(rig.remos->last_query_cost(), SimTime::millis(10));
  // Re-prequerying warm pairs is free.
  EXPECT_EQ(rig.remos->prequery({{rig.a, rig.b}}), SimTime::zero());
}

// ---- prequery warm/cold accounting, pinned per direction ----
// The intended semantics (Section 5.3's "we pre-queried Remos"): the pairs
// collect in PARALLEL, so the batch is charged first_query_cost ONCE when
// any pair is cold — while the stats count every cold pair individually
// (each is a real collection, they just overlap in time).

TEST(RemosPrequeryAccountingTest, AllColdChargesOnceCountsEach) {
  Rig rig;
  const RemosStats before = rig.remos->stats();
  SimTime cost = rig.remos->prequery({{rig.a, rig.b}, {rig.b, rig.a}});
  EXPECT_EQ(cost, SimTime::seconds(60));  // one parallel collection round
  EXPECT_EQ(rig.remos->stats().cold_queries, before.cold_queries + 2);
  EXPECT_EQ(rig.remos->stats().queries, before.queries + 2);
  EXPECT_EQ(rig.remos->stats().cache_hits, before.cache_hits);
  EXPECT_TRUE(rig.remos->is_warm(rig.a, rig.b));
  EXPECT_TRUE(rig.remos->is_warm(rig.b, rig.a));
}

TEST(RemosPrequeryAccountingTest, AllWarmIsFreeAndUncounted) {
  Rig rig;
  rig.remos->prequery({{rig.a, rig.b}, {rig.b, rig.a}});
  const RemosStats before = rig.remos->stats();
  // Warm pairs are skipped outright: zero cost, no query traffic at all
  // (not even cache hits — prequery never reads values).
  EXPECT_EQ(rig.remos->prequery({{rig.a, rig.b}, {rig.b, rig.a}}),
            SimTime::zero());
  EXPECT_EQ(rig.remos->stats().queries, before.queries);
  EXPECT_EQ(rig.remos->stats().cold_queries, before.cold_queries);
  EXPECT_EQ(rig.remos->stats().cache_hits, before.cache_hits);
}

TEST(RemosPrequeryAccountingTest, MixedBatchChargesOnceCountsColdOnly) {
  Rig rig;
  rig.remos->prequery({{rig.a, rig.b}});  // warm one direction
  const RemosStats before = rig.remos->stats();
  // One warm + one cold: still one parallel collection round, and only the
  // cold pair shows up in the counters.
  SimTime cost = rig.remos->prequery({{rig.a, rig.b}, {rig.b, rig.a}});
  EXPECT_EQ(cost, SimTime::seconds(60));
  EXPECT_EQ(rig.remos->stats().cold_queries, before.cold_queries + 1);
  EXPECT_EQ(rig.remos->stats().queries, before.queries + 1);
  // A duplicated cold pair in one batch collects once, not twice.
  Rig rig2;
  SimTime dup = rig2.remos->prequery(
      {{rig2.a, rig2.b}, {rig2.a, rig2.b}, {rig2.a, rig2.b}});
  EXPECT_EQ(dup, SimTime::seconds(60));
  EXPECT_EQ(rig2.remos->stats().cold_queries, 1u);
}

TEST(RemosTest, ReportsAvailableBandwidth) {
  Rig rig;
  Bandwidth bw = rig.remos->get_flow(rig.a, rig.b);
  EXPECT_NEAR(bw.as_mbps(), 10.0, 1e-9);
}

}  // namespace
}  // namespace arcadia::remos
