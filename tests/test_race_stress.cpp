// Race stress: hammer every shared-state substrate from multiple host
// threads so the TSan lane (ARCADIA_SANITIZE=thread) has real contention to
// chew on. The assertions here are deliberately weak — the point is the
// interleaving, not the arithmetic; TSan (and the thread-safety
// annotations) supply the real oracle. Iteration counts are modest: the
// suite must stay fast under TSan's ~5-15x slowdown on a single core.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "acme/adl.hpp"
#include "acme/script.hpp"
#include "core/fleet.hpp"
#include "events/bus.hpp"
#include "monitor/topics.hpp"
#include "repair/scripts.hpp"
#include "util/log.hpp"
#include "util/symbol.hpp"
#include "util/thread_pool.hpp"

namespace arcadia {
namespace {

// ---- LocalEventBus: publish vs subscribe vs unsubscribe ------------------

TEST(RaceStressTest, BusPublishSubscribeUnsubscribeStorm) {
  events::LocalEventBus bus;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::atomic<std::uint64_t> handled{0};

  // A long-lived subscriber so publishes always have at least one match.
  const events::SubscriptionId anchor = bus.subscribe(
      events::Filter::topic("stress.topic"),
      [&](const events::Notification&) {
        handled.fetch_add(1, std::memory_order_relaxed);
      });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus, &handled, t] {
      for (int i = 0; i < kRounds; ++i) {
        // Churn a short-lived subscription while other threads publish:
        // exercises slot reuse + generation bumps under the bus mutex.
        const events::SubscriptionId id = bus.subscribe(
            events::Filter::topic("stress.topic"),
            [&handled](const events::Notification&) {
              handled.fetch_add(1, std::memory_order_relaxed);
            });
        events::Notification n(util::Symbol::intern("stress.topic"));
        n.set("thread", events::Value(static_cast<std::int64_t>(t)));
        n.set("round", events::Value(static_cast<std::int64_t>(i)));
        bus.publish(std::move(n));
        bus.unsubscribe(id);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  bus.unsubscribe(anchor);

  // Quiescent read: all publishers joined, so the unlocked stats() accessor
  // is safe (this is the documented contract on LocalEventBus::stats).
  const events::BusStats& stats = bus.stats();
  EXPECT_EQ(stats.published, static_cast<std::uint64_t>(kThreads) * kRounds);
  // Every publish saw the anchor; the churn subscriber may or may not catch
  // publishes from other threads depending on interleaving.
  EXPECT_GE(handled.load(), stats.published);
  EXPECT_EQ(stats.delivered, handled.load());
}

// ---- Symbol interning: concurrent intern of overlapping name sets --------

TEST(RaceStressTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 4;
  constexpr int kNames = 64;
  std::vector<std::vector<util::Symbol>> per_thread(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&per_thread, t] {
      per_thread[t].reserve(kNames);
      for (int i = 0; i < kNames; ++i) {
        // Every thread interns the same names in a different order, so the
        // first-wins insertion races constantly.
        const int idx = (i * 7 + t * 13) % kNames;
        per_thread[t].push_back(util::Symbol::intern(
            "race.sym." + std::to_string(idx)));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // All threads must agree: same text -> same id, and the id must resolve
  // back to the text that was interned.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kNames; ++i) {
      const int idx = (i * 7 + t * 13) % kNames;
      const util::Symbol sym = per_thread[t][i];
      EXPECT_EQ(sym.str(), "race.sym." + std::to_string(idx));
      EXPECT_EQ(sym, util::Symbol::intern("race.sym." + std::to_string(idx)));
    }
  }
}

// ---- Logger: log vs set_level vs set_sink --------------------------------

TEST(RaceStressTest, LoggerLevelAndSinkChurn) {
  Logger& log = Logger::instance();
  std::atomic<std::uint64_t> sunk{0};
  log.set_sink([&sunk](LogLevel, const std::string&) {
    sunk.fetch_add(1, std::memory_order_relaxed);
  });
  log.set_level(LogLevel::Info);

  std::atomic<bool> stop{false};
  std::thread flipper([&log, &stop] {
    // set_level is the documented lock-free knob (atomic); set_sink swaps
    // the callable under the logger mutex. Both race the writers below.
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      log.set_level(i % 2 ? LogLevel::Info : LogLevel::Warn);
      std::this_thread::yield();
      ++i;
    }
  });

  constexpr int kThreads = 3;
  constexpr int kLines = 300;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        ARC_WARN << "race stress t" << t << " line " << i;
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true);
  flipper.join();

  // Warn passes both level settings, so every line must have reached a sink.
  EXPECT_EQ(sunk.load(), static_cast<std::uint64_t>(kThreads) * kLines);

  // Restore defaults for the rest of the process.
  log.set_sink(nullptr);
  log.set_level(LogLevel::Warn);
}

// ---- ThreadPool: submit storm from many threads + parallel_for ------------

TEST(RaceStressTest, ThreadPoolSubmitStorm) {
  ThreadPool pool(3);
  constexpr int kProducers = 3;
  constexpr int kTasks = 100;
  std::atomic<std::uint64_t> ran{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasks);
      for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (std::future<void>& f : futures) f.get();
    });
  }
  for (std::thread& th : producers) th.join();
  EXPECT_EQ(ran.load(), static_cast<std::uint64_t>(kProducers) * kTasks);

  // parallel_for on the same (now idle) pool still works after the storm.
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// ---- Fleet: parallel detection sweep vs batched gauge application ---------

events::Notification gauge_report(const std::string& element,
                                  const std::string& property, double value) {
  events::Notification n(monitor::topics::kGaugeReport);
  n.set(monitor::topics::kAttrElement, events::Value(element));
  n.set(monitor::topics::kAttrProperty, events::Value(property));
  n.set(monitor::topics::kAttrValue, events::Value(value));
  return n;
}

/// Minimal shard (mirrors tests/test_fleet.cpp): one-component model, local
/// gauge bus, model-only repair engine, passive architecture manager.
struct ShardRig {
  explicit ShardRig(sim::Simulator& sim, const std::string& component)
      : system("ShardSys") {
    auto& comp = system.add_component(component, "ClientT");
    comp.set_property("averageLatency", model::PropertyValue(0.5));
    static acme::Script script = acme::parse_script(repair::extended_script());
    engine = std::make_unique<repair::RepairEngine>(
        sim, system, script, nullptr, nullptr, nullptr,
        repair::RepairEngineConfig{});
    core::ArchManagerConfig cfg;
    cfg.passive = true;
    manager = std::make_unique<core::ArchitectureManager>(sim, system, bus,
                                                          *engine, cfg);
    manager->checker().add_constraint("lat:" + component, component,
                                      "averageLatency <= 2.0", "");
  }

  model::System system;
  events::LocalEventBus bus;
  std::unique_ptr<repair::RepairEngine> engine;
  std::unique_ptr<core::ArchitectureManager> manager;
};

TEST(RaceStressTest, FleetParallelSweepUnderReportLoad) {
  sim::Simulator sim;
  constexpr int kShards = 6;
  std::vector<std::unique_ptr<ShardRig>> rigs;
  for (int s = 0; s < kShards; ++s) {
    rigs.push_back(
        std::make_unique<ShardRig>(sim, "Client" + std::to_string(s)));
  }

  core::FleetManagerConfig cfg;
  cfg.first_check = SimTime::seconds(1e6);  // sweeps driven manually below
  cfg.coalesce_window = SimTime::millis(500);
  cfg.sweep_threads = 4;  // force the pool even on a 1-core host
  cfg.skip_clean_shards = false;
  core::FleetManager fleet(sim, cfg);
  for (int s = 0; s < kShards; ++s) {
    fleet.add_shard("tenant" + std::to_string(s), *rigs[s]->manager,
                    rigs[s]->bus);
  }
  fleet.start();

  // Alternate breach / recover across all shards, sweeping between waves.
  // Detection runs on pool threads against shard models the sim thread just
  // mutated via flushed batches — exactly the handoff the fleet's
  // "parallel detect, ordered dispatch" contract must keep race-free.
  constexpr int kWaves = 10;
  for (int w = 0; w < kWaves; ++w) {
    const double value = (w % 2 == 0) ? 5.0 : 0.5;  // breach : recover
    for (int s = 0; s < kShards; ++s) {
      rigs[s]->bus.publish(gauge_report("Client" + std::to_string(s),
                                        "averageLatency", value));
    }
    fleet.run_sweep();
  }
  fleet.stop();

  const core::FleetStats& stats = fleet.stats();
  EXPECT_EQ(stats.sweep_rounds, static_cast<std::uint64_t>(kWaves));
  EXPECT_GT(stats.parallel_rounds, 0u);
  std::uint64_t violations = 0;
  for (int s = 0; s < kShards; ++s) {
    const core::FleetShardStats& ss = fleet.shard_stats(s);
    EXPECT_EQ(ss.reports_enqueued, static_cast<std::uint64_t>(kWaves));
    violations += ss.violations;
  }
  // Half the waves breach on every shard.
  EXPECT_GE(violations, static_cast<std::uint64_t>(kShards) * (kWaves / 2));
}

}  // namespace
}  // namespace arcadia
