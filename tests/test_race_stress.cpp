// Race stress: hammer every shared-state substrate from multiple host
// threads so the TSan lane (ARCADIA_SANITIZE=thread) has real contention to
// chew on. The assertions here are deliberately weak — the point is the
// interleaving, not the arithmetic; TSan (and the thread-safety
// annotations) supply the real oracle. Iteration counts are modest: the
// suite must stay fast under TSan's ~5-15x slowdown on a single core.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "acme/adl.hpp"
#include "acme/script.hpp"
#include "core/fleet.hpp"
#include "core/framework_builder.hpp"
#include "events/bus.hpp"
#include "monitor/topics.hpp"
#include "repair/scripts.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/shard_sim.hpp"
#include "util/annotations.hpp"
#include "util/log.hpp"
#include "util/symbol.hpp"
#include "util/thread_pool.hpp"

namespace arcadia {
namespace {

// ---- LocalEventBus: publish vs subscribe vs unsubscribe ------------------

TEST(RaceStressTest, BusPublishSubscribeUnsubscribeStorm) {
  events::LocalEventBus bus;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::atomic<std::uint64_t> handled{0};

  // A long-lived subscriber so publishes always have at least one match.
  const events::SubscriptionId anchor = bus.subscribe(
      events::Filter::topic("stress.topic"),
      [&](const events::Notification&) {
        handled.fetch_add(1, std::memory_order_relaxed);
      });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus, &handled, t] {
      for (int i = 0; i < kRounds; ++i) {
        // Churn a short-lived subscription while other threads publish:
        // exercises slot reuse + generation bumps under the bus mutex.
        const events::SubscriptionId id = bus.subscribe(
            events::Filter::topic("stress.topic"),
            [&handled](const events::Notification&) {
              handled.fetch_add(1, std::memory_order_relaxed);
            });
        events::Notification n(util::Symbol::intern("stress.topic"));
        n.set("thread", events::Value(static_cast<std::int64_t>(t)));
        n.set("round", events::Value(static_cast<std::int64_t>(i)));
        bus.publish(std::move(n));
        bus.unsubscribe(id);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  bus.unsubscribe(anchor);

  // Quiescent read: all publishers joined, so the unlocked stats() accessor
  // is safe (this is the documented contract on LocalEventBus::stats).
  const events::BusStats& stats = bus.stats();
  EXPECT_EQ(stats.published, static_cast<std::uint64_t>(kThreads) * kRounds);
  // Every publish saw the anchor; the churn subscriber may or may not catch
  // publishes from other threads depending on interleaving.
  EXPECT_GE(handled.load(), stats.published);
  EXPECT_EQ(stats.delivered, handled.load());
}

// ---- Symbol interning: concurrent intern of overlapping name sets --------

TEST(RaceStressTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 4;
  constexpr int kNames = 64;
  std::vector<std::vector<util::Symbol>> per_thread(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&per_thread, t] {
      per_thread[t].reserve(kNames);
      for (int i = 0; i < kNames; ++i) {
        // Every thread interns the same names in a different order, so the
        // first-wins insertion races constantly.
        const int idx = (i * 7 + t * 13) % kNames;
        per_thread[t].push_back(util::Symbol::intern(
            "race.sym." + std::to_string(idx)));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // All threads must agree: same text -> same id, and the id must resolve
  // back to the text that was interned.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kNames; ++i) {
      const int idx = (i * 7 + t * 13) % kNames;
      const util::Symbol sym = per_thread[t][i];
      EXPECT_EQ(sym.str(), "race.sym." + std::to_string(idx));
      EXPECT_EQ(sym, util::Symbol::intern("race.sym." + std::to_string(idx)));
    }
  }
}

// ---- Logger: log vs set_level vs set_sink --------------------------------

TEST(RaceStressTest, LoggerLevelAndSinkChurn) {
  Logger& log = Logger::instance();
  std::atomic<std::uint64_t> sunk{0};
  log.set_sink([&sunk](LogLevel, const std::string&) {
    sunk.fetch_add(1, std::memory_order_relaxed);
  });
  log.set_level(LogLevel::Info);

  std::atomic<bool> stop{false};
  std::thread flipper([&log, &stop] {
    // set_level is the documented lock-free knob (atomic); set_sink swaps
    // the callable under the logger mutex. Both race the writers below.
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      log.set_level(i % 2 ? LogLevel::Info : LogLevel::Warn);
      std::this_thread::yield();
      ++i;
    }
  });

  constexpr int kThreads = 3;
  constexpr int kLines = 300;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        ARC_WARN << "race stress t" << t << " line " << i;
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true);
  flipper.join();

  // Warn passes both level settings, so every line must have reached a sink.
  EXPECT_EQ(sunk.load(), static_cast<std::uint64_t>(kThreads) * kLines);

  // Restore defaults for the rest of the process.
  log.set_sink(nullptr);
  log.set_level(LogLevel::Warn);
}

// ---- ThreadPool: submit storm from many threads + parallel_for ------------

TEST(RaceStressTest, ThreadPoolSubmitStorm) {
  ThreadPool pool(3);
  constexpr int kProducers = 3;
  constexpr int kTasks = 100;
  std::atomic<std::uint64_t> ran{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasks);
      for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (std::future<void>& f : futures) f.get();
    });
  }
  for (std::thread& th : producers) th.join();
  EXPECT_EQ(ran.load(), static_cast<std::uint64_t>(kProducers) * kTasks);

  // parallel_for on the same (now idle) pool still works after the storm.
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// ---- Fleet: parallel detection sweep vs batched gauge application ---------

events::Notification gauge_report(const std::string& element,
                                  const std::string& property, double value) {
  events::Notification n(monitor::topics::kGaugeReport);
  n.set(monitor::topics::kAttrElement, events::Value(element));
  n.set(monitor::topics::kAttrProperty, events::Value(property));
  n.set(monitor::topics::kAttrValue, events::Value(value));
  return n;
}

/// Minimal shard (mirrors tests/test_fleet.cpp): one-component model, local
/// gauge bus, model-only repair engine, passive architecture manager.
struct ShardRig {
  explicit ShardRig(sim::Simulator& sim, const std::string& component)
      : system("ShardSys") {
    auto& comp = system.add_component(component, "ClientT");
    comp.set_property("averageLatency", model::PropertyValue(0.5));
    static acme::Script script = acme::parse_script(repair::extended_script());
    engine = std::make_unique<repair::RepairEngine>(
        sim, system, script, nullptr, nullptr, nullptr,
        repair::RepairEngineConfig{});
    core::ArchManagerConfig cfg;
    cfg.passive = true;
    manager = std::make_unique<core::ArchitectureManager>(sim, system, bus,
                                                          *engine, cfg);
    manager->checker().add_constraint("lat:" + component, component,
                                      "averageLatency <= 2.0", "");
  }

  model::System system;
  events::LocalEventBus bus;
  std::unique_ptr<repair::RepairEngine> engine;
  std::unique_ptr<core::ArchitectureManager> manager;
};

TEST(RaceStressTest, FleetParallelSweepUnderReportLoad) {
  sim::Simulator sim;
  constexpr int kShards = 6;
  std::vector<std::unique_ptr<ShardRig>> rigs;
  for (int s = 0; s < kShards; ++s) {
    rigs.push_back(
        std::make_unique<ShardRig>(sim, "Client" + std::to_string(s)));
  }

  core::FleetManagerConfig cfg;
  cfg.first_check = SimTime::seconds(1e6);  // sweeps driven manually below
  cfg.coalesce_window = SimTime::millis(500);
  cfg.sweep_threads = 4;  // force the pool even on a 1-core host
  cfg.skip_clean_shards = false;
  core::FleetManager fleet(sim, cfg);
  for (int s = 0; s < kShards; ++s) {
    fleet.add_shard("tenant" + std::to_string(s), *rigs[s]->manager,
                    rigs[s]->bus);
  }
  fleet.start();

  // Alternate breach / recover across all shards, sweeping between waves.
  // Detection runs on pool threads against shard models the sim thread just
  // mutated via flushed batches — exactly the handoff the fleet's
  // "parallel detect, ordered dispatch" contract must keep race-free.
  constexpr int kWaves = 10;
  for (int w = 0; w < kWaves; ++w) {
    const double value = (w % 2 == 0) ? 5.0 : 0.5;  // breach : recover
    for (int s = 0; s < kShards; ++s) {
      rigs[s]->bus.publish(gauge_report("Client" + std::to_string(s),
                                        "averageLatency", value));
    }
    fleet.run_sweep();
  }
  fleet.stop();

  const core::FleetStats& stats = fleet.stats();
  EXPECT_EQ(stats.sweep_rounds, static_cast<std::uint64_t>(kWaves));
  EXPECT_GT(stats.parallel_rounds, 0u);
  std::uint64_t violations = 0;
  for (int s = 0; s < kShards; ++s) {
    const core::FleetShardStats& ss = fleet.shard_stats(s);
    EXPECT_EQ(ss.reports_enqueued, static_cast<std::uint64_t>(kWaves));
    violations += ss.violations;
  }
  // Half the waves breach on every shard.
  EXPECT_GE(violations, static_cast<std::uint64_t>(kShards) * (kWaves / 2));
}

// ---- sharded simulation kernel: 4 shards x 4 worker threads ---------------

struct ShardStressFingerprint {
  std::vector<std::uint64_t> work;       // per-shard tick counters
  std::vector<std::uint64_t> mail_hits;  // per-shard mail deliveries
  std::vector<std::uint64_t> sweeps;     // control-side sums, per sweep
  std::uint64_t shard_events = 0;
  std::uint64_t mail_delivered = 0;
  std::uint64_t rounds = 0;

  bool operator==(const ShardStressFingerprint&) const = default;
};

/// Synthetic gauge load on the raw coordinator: every shard runs a 1 ms
/// tick chain; every fifth tick posts mail to the next shard in the ring at
/// exactly the lookahead bound (the tightest legal cross-shard delay). A
/// control-side sweep reads all shard counters at barrier epochs — the pool
/// join at each barrier is the happens-before edge that makes that legal.
ShardStressFingerprint run_shard_mail_stress(unsigned threads) {
  constexpr std::uint32_t kSimShards = 4;
  const SimTime lookahead = SimTime::millis(10);
  const SimTime horizon = SimTime::seconds(2);

  sim::Simulator control;
  sim::SimCoordinatorOptions copt;
  copt.threads = threads;
  copt.lookahead = lookahead;
  sim::SimCoordinator coord(control, copt);

  std::vector<std::uint64_t> work(kSimShards, 0);
  std::vector<std::uint64_t> mail_hits(kSimShards, 0);
  std::vector<std::uint64_t> sweeps;
  for (std::uint32_t s = 0; s < kSimShards; ++s) coord.add_shard();

  for (std::uint32_t s = 0; s < kSimShards; ++s) {
    // The tick chain captures itself via a heap-pinned holder so every
    // reschedule reuses one closure, like PeriodicTask does.
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&, s, tick] {
      ++work[s];
      if (work[s] % 5 == 0) {
        const std::uint32_t to = (s + 1) % kSimShards;
        coord.post(s, to, coord.shard(s).sim().now() + lookahead,
                   [&mail_hits, to] { ++mail_hits[to]; });
      }
      if (coord.shard(s).sim().now() + SimTime::millis(1) < horizon) {
        coord.shard(s).sim().schedule_in(SimTime::millis(1),
                                         [tick] { (*tick)(); });
      }
    };
    coord.shard(s).sim().schedule_at(SimTime::millis(1) * (s + 1),
                                     [tick] { (*tick)(); });
  }

  auto sweep = std::make_shared<std::function<void()>>();
  *sweep = [&, sweep] {
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < kSimShards; ++s) sum += work[s];
    sweeps.push_back(sum);
    if (control.now() + SimTime::millis(50) < horizon) {
      control.schedule_in(SimTime::millis(50), [sweep] { (*sweep)(); });
    }
  };
  control.schedule_at(SimTime::millis(50), [sweep] { (*sweep)(); });

  coord.run_until(horizon);

  ShardStressFingerprint fp;
  fp.work = work;
  fp.mail_hits = mail_hits;
  fp.sweeps = sweeps;
  fp.shard_events = coord.stats().shard_events;
  fp.mail_delivered = coord.stats().mail_delivered;
  fp.rounds = coord.stats().rounds;
  return fp;
}

TEST(RaceStressTest, FourShardsFourThreadsWithMailMatchSerialRun) {
  const ShardStressFingerprint serial = run_shard_mail_stress(1);
  const ShardStressFingerprint parallel = run_shard_mail_stress(4);
  EXPECT_EQ(serial, parallel);
  // Vacuity guards: every shard ticked, mail really crossed shards, and the
  // finite lookahead actually chopped the run into many windows.
  for (std::size_t s = 0; s < serial.work.size(); ++s) {
    EXPECT_GT(serial.work[s], 100u) << "shard " << s;
    EXPECT_GT(serial.mail_hits[s], 0u) << "shard " << s;
  }
  EXPECT_GT(serial.mail_delivered, 0u);
  EXPECT_GT(serial.rounds, 10u);
  EXPECT_FALSE(serial.sweeps.empty());
}

TEST(RaceStressTest, ShardedFleetUnderGaugeLoadAndFaults) {
  // The full stack on 4 worker threads: per-tenant gauges, batched fleet
  // sweeps, fault draws, repairs. Runs green under TSan or the windows'
  // thread discipline is broken.
  sim::Simulator sim;
  core::FleetOptions opt;
  opt.scenario = "fleet-4x16";
  opt.tenants = 4;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults("fleet-4x16");
  opt.config.grid.groups = 2;
  opt.config.grid.clients = 8;
  opt.config.grid.spares = 1;
  opt.config.quiescent_end = SimTime::seconds(40);
  opt.config.stress_start = SimTime::seconds(80);
  opt.config.stress_end = SimTime::seconds(220);
  opt.config.normal_rate_hz = 2.0;
  opt.config.fleet.phase_shift = SimTime::seconds(30);
  opt.config.fault.enabled = true;
  opt.config.fault.monitoring.report_loss = 0.10;
  opt.config.fault.repair.op_transient = 0.10;
  opt.manager.sweep_threads = 4;
  opt.manager.coalesce_window = SimTime::millis(500);
  opt.sim_threads = 4;
  auto fleet = core::FrameworkBuilder::build_fleet(sim, opt);
  fleet->start();
  fleet->run_until(SimTime::seconds(320));

  ASSERT_NE(fleet->coordinator(), nullptr);
  const sim::SimCoordinatorStats stats = fleet->coordinator()->stats();
  EXPECT_GT(stats.shard_events, 0u);
  EXPECT_GT(stats.rounds, 0u);
  std::uint64_t repairs = 0;
  for (std::size_t t = 0; t < fleet->tenant_count(); ++t) {
    core::FleetTenant& tenant = fleet->tenant(t);
    util::SerialLane in_lane(tenant.lane());
    repairs += tenant.framework->engine().records().size();
  }
  EXPECT_GT(repairs, 0u);
}

}  // namespace
}  // namespace arcadia
