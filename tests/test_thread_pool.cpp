#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace arcadia {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForJoinsBeforeRethrowing) {
  // Regression: a worker throwing early must not let parallel_for unwind
  // while other workers still reference the caller's callable and captures.
  // `live` goes out of scope right after the EXPECT_THROW; if any worker
  // were still running, the final counter check (and ASan) would catch it.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  {
    std::atomic<bool> live{true};
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t i) {
                            ASSERT_TRUE(live.load());
                            started++;
                            if (i == 0) throw std::runtime_error("early boom");
                            finished++;
                          }),
        std::runtime_error);
    live.store(false);
  }
  // Nothing may run after parallel_for returned: all chunks were joined, so
  // the counters are final and no worker can observe live == false.
  EXPECT_GE(started.load(), 1);
  EXPECT_LE(finished.load(), 63);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestChunkDeterministically) {
  // When several chunks throw, the exception from the lowest-indexed chunk
  // must win, run after run.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    std::string what;
    try {
      pool.parallel_for(16, [](std::size_t i) {
        throw std::runtime_error("chunk@" + std::to_string(i));
      });
      FAIL() << "parallel_for did not throw";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    // Chunk 0 starts at index 0; its first iteration throws immediately.
    EXPECT_EQ(what, "chunk@0");
  }
}

TEST(ThreadPoolTest, ParallelForChunksCoverUnevenRanges) {
  ThreadPool pool(3);
  for (std::size_t n : {1u, 2u, 3u, 4u, 7u, 100u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ManyTasksDrain) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&count] { count++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace arcadia
