#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace arcadia {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksDrain) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&count] { count++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace arcadia
