#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/step_function.hpp"
#include "util/timeseries.hpp"

namespace arcadia {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSetTest, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.25);
  for (int i = 0; i < 100; ++i) e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.initialized());
  e.add(3.0);
  EXPECT_DOUBLE_EQ(e.value(), 3.0);
  e.add(4.0);
  EXPECT_NEAR(e.value(), 0.1 * 4.0 + 0.9 * 3.0, 1e-12);
}

// ---- StepFunction ----

TEST(StepFunctionTest, InitialValueBeforeFirstStep) {
  StepFunction f(1.5);
  f.step(SimTime::seconds(10), 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(SimTime::zero()), 1.5);
  EXPECT_DOUBLE_EQ(f.value_at(SimTime::seconds(9.999)), 1.5);
  EXPECT_DOUBLE_EQ(f.value_at(SimTime::seconds(10)), 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(SimTime::seconds(100)), 3.0);
}

TEST(StepFunctionTest, OutOfOrderInsertionSorts) {
  StepFunction f(0.0);
  f.step(SimTime::seconds(20), 2.0);
  f.step(SimTime::seconds(10), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(SimTime::seconds(15)), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(SimTime::seconds(25)), 2.0);
}

TEST(StepFunctionTest, ReplaceAtSameInstant) {
  StepFunction f(0.0);
  f.step(SimTime::seconds(5), 1.0);
  f.step(SimTime::seconds(5), 9.0);
  EXPECT_DOUBLE_EQ(f.value_at(SimTime::seconds(5)), 9.0);
  EXPECT_EQ(f.steps().size(), 1u);
}

TEST(StepFunctionTest, NextChangeAfter) {
  StepFunction f(0.0);
  f.step(SimTime::seconds(10), 1.0);
  f.step(SimTime::seconds(20), 2.0);
  EXPECT_EQ(f.next_change_after(SimTime::zero()), SimTime::seconds(10));
  EXPECT_EQ(f.next_change_after(SimTime::seconds(10)), SimTime::seconds(20));
  EXPECT_TRUE(f.next_change_after(SimTime::seconds(20)).is_infinite());
}

TEST(StepFunctionTest, IntegralAcrossSteps) {
  // Figure 7-style schedule: 0 until 120, 9.95 until 600, 5 until 1200.
  StepFunction f(0.0);
  f.step(SimTime::seconds(120), 9.95);
  f.step(SimTime::seconds(600), 5.0);
  double integral = f.integrate(SimTime::zero(), SimTime::seconds(1200));
  EXPECT_NEAR(integral, 9.95 * 480 + 5.0 * 600, 1e-6);
}

TEST(StepFunctionTest, IntegralEmptyRange) {
  StepFunction f(2.0);
  EXPECT_DOUBLE_EQ(f.integrate(SimTime::seconds(5), SimTime::seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(f.integrate(SimTime::seconds(9), SimTime::seconds(5)), 0.0);
}

// ---- TimeSeries ----

TEST(TimeSeriesTest, AppendMonotonicEnforced) {
  TimeSeries ts("x");
  ts.append(SimTime::seconds(1), 1.0);
  ts.append(SimTime::seconds(1), 2.0);  // equal time allowed
  EXPECT_THROW(ts.append(SimTime::zero(), 0.0), Error);
}

TEST(TimeSeriesTest, EmptySeriesHasNoEndpointTimes) {
  // Regression: these used to return SimTime::zero() when empty, which made
  // "no data yet" indistinguishable from a genuine t=0 sample.
  TimeSeries ts("x");
  EXPECT_FALSE(ts.first_time().has_value());
  EXPECT_FALSE(ts.last_time().has_value());
  ts.append(SimTime::zero(), 7.0);  // a real t=0 sample is distinguishable
  ASSERT_TRUE(ts.first_time().has_value());
  EXPECT_EQ(*ts.first_time(), SimTime::zero());
  ts.append(SimTime::seconds(3), 8.0);
  EXPECT_EQ(*ts.first_time(), SimTime::zero());
  EXPECT_EQ(*ts.last_time(), SimTime::seconds(3));
}

TEST(TimeSeriesTest, ValueAtSampleAndHold) {
  TimeSeries ts("x");
  ts.append(SimTime::seconds(10), 1.0);
  ts.append(SimTime::seconds(20), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(5), -1.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(10)), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(15)), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(25)), 2.0);
}

TEST(TimeSeriesTest, FractionAboveThreshold) {
  TimeSeries ts("x");
  ts.append(SimTime::zero(), 1.0);
  ts.append(SimTime::seconds(50), 3.0);  // above from 50..100
  double frac = ts.fraction_above(2.0, SimTime::zero(), SimTime::seconds(100));
  EXPECT_NEAR(frac, 0.5, 1e-9);
}

TEST(TimeSeriesTest, FirstCrossing) {
  TimeSeries ts("x");
  ts.append(SimTime::seconds(1), 0.5);
  ts.append(SimTime::seconds(2), 2.5);
  EXPECT_EQ(ts.first_crossing(2.0), SimTime::seconds(2));
  EXPECT_TRUE(ts.first_crossing(10.0).is_infinite());
}

TEST(TimeSeriesTest, ResampleMeansBuckets) {
  TimeSeries ts("x");
  for (int i = 0; i < 10; ++i) {
    ts.append(SimTime::seconds(i), static_cast<double>(i));
  }
  TimeSeries rs = ts.resample(SimTime::seconds(5));
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_DOUBLE_EQ(rs.points()[0].second, 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(rs.points()[1].second, 7.0);  // mean of 5..9
}

TEST(TimeSeriesTest, WindowedMeanMatchesBruteForce) {
  Rng rng(3);
  TimeSeries ts("x");
  SimTime t = SimTime::zero();
  for (int i = 0; i < 200; ++i) {
    t += SimTime::seconds(rng.uniform(0.1, 2.0));
    ts.append(t, rng.uniform(0.0, 10.0));
  }
  const SimTime window = SimTime::seconds(30);
  const SimTime step = SimTime::seconds(5);
  TimeSeries wm = ts.windowed_mean(window, step, SimTime::zero(), t);
  for (const auto& [wt, wv] : wm.points()) {
    double sum = 0.0;
    int n = 0;
    for (const auto& [pt, pv] : ts.points()) {
      if (pt > wt - window && pt <= wt) {
        sum += pv;
        ++n;
      }
    }
    if (n > 0) {
      EXPECT_NEAR(wv, sum / n, 1e-9) << "at t=" << wt.as_seconds();
    }
  }
}

TEST(TimeSeriesTest, MeanMaxMinOverRange) {
  TimeSeries ts("x");
  ts.append(SimTime::seconds(1), 1.0);
  ts.append(SimTime::seconds(2), 5.0);
  ts.append(SimTime::seconds(3), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(SimTime::seconds(1), SimTime::seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ts.max_over(SimTime::seconds(1), SimTime::seconds(3)), 5.0);
  EXPECT_DOUBLE_EQ(ts.min_over(SimTime::seconds(2), SimTime::seconds(3)), 3.0);
}

// ---- RNG ----

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntUnbiasedBounds) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) EXPECT_GT(c, 700);  // crude uniformity check
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, LognormalTargetsMean) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_with_mean(20.0, 0.5);
  EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng parent(5);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace arcadia
