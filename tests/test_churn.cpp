// Long-horizon churn: the adaptation loop must stay stable and consistent
// under schedules the calibration was never tuned for — randomized
// competition steps and repeated stress pulses over a 3x-longer run.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace arcadia {
namespace {

class ChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnTest, AdaptationLoopSurvivesRandomizedSchedules) {
  Rng rng(GetParam());
  core::ExperimentOptions opt;
  opt.adaptation = true;
  opt.scenario.seed = GetParam();
  opt.scenario.horizon = SimTime::seconds(3600);
  // Random phase boundaries and competition intensities.
  double q = rng.uniform(60.0, 180.0);
  double s0 = rng.uniform(400.0, 900.0);
  double s1 = s0 + rng.uniform(200.0, 900.0);
  opt.scenario.quiescent_end = SimTime::seconds(q);
  opt.scenario.stress_start = SimTime::seconds(s0);
  opt.scenario.stress_end = SimTime::seconds(s1);
  opt.scenario.stress_rate_hz = rng.uniform(1.5, 2.8);
  opt.scenario.comp_sg1_phase1_mbps = rng.uniform(9.0, 9.999);
  opt.scenario.comp_sg1_stress_mbps = rng.uniform(2.0, 9.0);
  opt.scenario.comp_sg2_phase1_mbps = rng.uniform(0.5, 5.0);

  core::ExperimentResult r = core::run_experiment(opt);

  // The loop ran and did not wedge: requests kept flowing to the end.
  EXPECT_GT(r.responses_completed, 0u);
  for (const auto& c : r.clients) {
    ASSERT_TRUE(c.raw_latency.last_time().has_value());
    EXPECT_GT(*c.raw_latency.last_time(), SimTime::seconds(3500));
  }
  // Repairs are bounded (no runaway repair storm): the engine serializes
  // ~30 s repairs, so an hour admits at most ~120; damping keeps it far
  // lower.
  EXPECT_LT(r.repairs.size(), 100u);
  // Every record is terminal or still in flight at the horizon.
  int in_flight = 0;
  for (const auto& rec : r.repairs) {
    if (!rec.finished) {
      EXPECT_TRUE(rec.committed);
      ++in_flight;
    }
  }
  EXPECT_LE(in_flight, 1);
  // Model/runtime correspondence unless a repair is still mid-flight.
  if (in_flight == 0) {
    EXPECT_TRUE(r.consistency_issues.empty())
        << r.consistency_issues.front();
  }
  // The recruited-server population stays within the physical pool.
  int active_spares = 0;
  for (const auto& ev : r.server_events) {
    active_spares += ev.active ? 1 : -1;
    EXPECT_GE(active_spares, 0);
    EXPECT_LE(active_spares, 2);  // only S4 and S7 exist
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ChurnTest,
                         ::testing::Values(3, 17, 29, 71));

TEST(FlowChurnTest, RandomArrivalsAndCancellationsKeepAllocatorSane) {
  Rng rng(12345);
  sim::Simulator sim;
  sim::Topology topo;
  auto r1 = topo.add_node("r1", sim::NodeKind::Router);
  auto r2 = topo.add_node("r2", sim::NodeKind::Router);
  auto r3 = topo.add_node("r3", sim::NodeKind::Router);
  topo.add_link(r1, r2, Bandwidth::mbps(10));
  topo.add_link(r2, r3, Bandwidth::mbps(5));
  std::vector<sim::NodeId> hosts;
  for (int i = 0; i < 6; ++i) {
    hosts.push_back(topo.add_node("h" + std::to_string(i), sim::NodeKind::Host));
    topo.add_link(hosts.back(), i < 2 ? r1 : (i < 4 ? r2 : r3),
                  Bandwidth::mbps(20));
  }
  topo.compute_routes();
  sim::FlowNetwork net(sim, topo);

  std::uint64_t completed = 0;
  std::vector<sim::FlowId> live;
  // 400 random arrivals; a third get cancelled shortly after starting.
  for (int i = 0; i < 400; ++i) {
    SimTime at = SimTime::seconds(rng.uniform(0.0, 120.0));
    sim.schedule_at(at, [&, i] {
      auto src = hosts[static_cast<std::size_t>(rng.uniform_int(6))];
      auto dst = src;
      while (dst == src) {
        dst = hosts[static_cast<std::size_t>(rng.uniform_int(6))];
      }
      sim::FlowId id = net.start_transfer(
          src, dst, DataSize::kilobytes(rng.uniform(10.0, 2000.0)),
          [&completed] { ++completed; });
      if (i % 3 == 0) {
        sim.schedule_in(SimTime::millis(rng.uniform(1.0, 500.0)),
                        [&net, id] { net.cancel_transfer(id); });
      }
    });
  }
  sim.run_until(SimTime::minutes(60));
  // Everything either completed or was cancelled; nothing is stuck.
  EXPECT_EQ(net.active_transfers(), 0u);
  EXPECT_GT(completed, 200u);
  EXPECT_LT(completed, 400u);
  EXPECT_EQ(net.stats().transfers_started, 400u);
}

TEST(FlowChurnTest, BackgroundRateChurnNeverBreaksAvailability) {
  Rng rng(777);
  sim::Simulator sim;
  sim::Topology topo;
  auto r1 = topo.add_node("r1", sim::NodeKind::Router);
  auto a = topo.add_node("a", sim::NodeKind::Host);
  auto b = topo.add_node("b", sim::NodeKind::Host);
  topo.add_link(a, r1, Bandwidth::mbps(10));
  topo.add_link(b, r1, Bandwidth::mbps(10));
  topo.compute_routes();
  sim::FlowNetwork net(sim, topo);
  auto bg = net.add_background(a, b);
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(SimTime::seconds(i * 0.5), [&net, bg, &rng] {
      net.set_background_rate(bg, Bandwidth::mbps(rng.uniform(0.0, 15.0)));
    });
    // Availability is always within [floor, capacity].
    sim.schedule_at(SimTime::seconds(i * 0.5 + 0.25), [&net, a, b] {
      double avail = net.available_bandwidth(a, b).as_bps();
      EXPECT_GE(avail, 100.0);
      EXPECT_LE(avail, 1e7 + 1.0);
    });
  }
  sim.run_until(SimTime::seconds(120));
}

}  // namespace
}  // namespace arcadia
