// Probe deployment against the simulated runtime: latency (with the stall
// detector), queue-length, utilization, bandwidth, and the AIDE-style
// method-call counter.
#include <gtest/gtest.h>

#include "events/bus.hpp"
#include "monitor/probes.hpp"
#include "monitor/topics.hpp"
#include "remos/remos.hpp"
#include "sim/scenario.hpp"

namespace arcadia::monitor {
namespace {

struct ProbeRig {
  sim::Simulator sim;
  sim::ScenarioConfig cfg;
  sim::Testbed tb;
  remos::RemosService remos;
  events::LocalEventBus bus;
  std::vector<events::Notification> seen;

  ProbeRig() : tb(sim::build_testbed(sim, cfg)), remos(sim, *tb.net) {
    bus.subscribe(events::Filter::any(),
                  [this](const events::Notification& n) { seen.push_back(n); });
  }

  std::size_t count(const char* topic) const {
    std::size_t n = 0;
    for (const auto& notif : seen) {
      if (notif.topic == topic) ++n;
    }
    return n;
  }
};

TEST(ProbesTest, LatencyProbePublishesCompletions) {
  ProbeRig rig;
  LatencyProbe probe(rig.sim, *rig.tb.app, rig.bus);
  probe.start();
  rig.tb.app->issue_request(rig.tb.clients[0], DataSize::bytes(512),
                            DataSize::kilobytes(10));
  rig.sim.run_until(SimTime::seconds(10));
  ASSERT_GE(rig.count(topics::kProbeLatency), 1u);
  const auto& n = rig.seen.front();
  EXPECT_EQ(n.get(topics::kAttrClient).as_string(), "User1");
  EXPECT_GT(n.get(topics::kAttrValue).as_double(), 0.0);
  EXPECT_EQ(n.source_node, rig.tb.app->client_node(rig.tb.clients[0]));
}

TEST(ProbesTest, LatencyProbeStallDetectorFiresWhenStarved) {
  ProbeRig rig;
  // No active servers: the request can never be answered.
  for (sim::ServerIdx s = 0;
       s < static_cast<sim::ServerIdx>(rig.tb.app->server_count()); ++s) {
    rig.tb.app->deactivate_server(s);
  }
  LatencyProbe probe(rig.sim, *rig.tb.app, rig.bus, SimTime::seconds(5),
                     SimTime::seconds(10));
  probe.start();
  rig.tb.app->issue_request(rig.tb.clients[0], DataSize::bytes(512),
                            DataSize::kilobytes(10));
  rig.sim.run_until(SimTime::seconds(31));
  // Stall observations at 15, 20, 25, 30 s (ages >= 10 s).
  std::size_t stalls = rig.count(topics::kProbeLatency);
  EXPECT_GE(stalls, 3u);
  // Ages grow monotonically.
  double last = 0.0;
  for (const auto& n : rig.seen) {
    double v = n.get(topics::kAttrValue).as_double();
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_GE(last, 25.0);
}

TEST(ProbesTest, StoppedProbePublishesNothing) {
  ProbeRig rig;
  LatencyProbe probe(rig.sim, *rig.tb.app, rig.bus);
  probe.start();
  probe.stop();
  rig.tb.app->issue_request(rig.tb.clients[0], DataSize::bytes(512),
                            DataSize::kilobytes(10));
  rig.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(rig.count(topics::kProbeLatency), 0u);
}

TEST(ProbesTest, QueueLengthProbeSamplesAllGroups) {
  ProbeRig rig;
  QueueLengthProbe probe(rig.sim, *rig.tb.app, rig.bus, SimTime::seconds(1));
  probe.start();
  rig.sim.run_until(SimTime::seconds(3));
  // 3 samples x 2 groups.
  EXPECT_EQ(rig.count(topics::kProbeQueue), 6u);
  EXPECT_TRUE(rig.seen.front().has(topics::kAttrGroup));
}

TEST(ProbesTest, UtilizationProbeReflectsBusyServers) {
  ProbeRig rig;
  UtilizationProbe probe(rig.sim, *rig.tb.app, rig.bus, SimTime::seconds(1));
  probe.start();
  // Keep SG1 busy with a long service.
  rig.tb.app->issue_request(rig.tb.clients[0], DataSize::bytes(512),
                            DataSize::kilobytes(100));
  rig.sim.run_until(SimTime::seconds(2));
  bool nonzero = false;
  for (const auto& n : rig.seen) {
    if (n.topic == std::string(topics::kProbeUtilization) &&
        n.get(topics::kAttrGroup).as_string() == "ServerGrp1" &&
        n.get(topics::kAttrValue).as_double() > 0.0) {
      nonzero = true;
    }
  }
  EXPECT_TRUE(nonzero);
}

TEST(ProbesTest, BandwidthProbeQueriesRemosPerClient) {
  ProbeRig rig;
  BandwidthProbe probe(rig.sim, *rig.tb.app, rig.remos, rig.bus,
                       SimTime::seconds(2));
  probe.start();
  rig.sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(rig.count(topics::kProbeBandwidth), 6u);  // one per client
  for (const auto& n : rig.seen) {
    EXPECT_GT(n.get(topics::kAttrValue).as_double(), 1e6);  // quiet network
  }
  EXPECT_GT(rig.remos.stats().queries, 0u);
}

TEST(ProbesTest, MethodCallProbeCountsEnqueueRate) {
  ProbeRig rig;
  MethodCallProbe probe(rig.sim, *rig.tb.app, rig.bus, SimTime::seconds(5));
  probe.start();
  for (int i = 0; i < 10; ++i) {
    rig.tb.app->issue_request(rig.tb.clients[0], DataSize::bytes(512),
                              DataSize::kilobytes(5));
  }
  rig.sim.run_until(SimTime::seconds(5));
  double rate = -1.0;
  for (const auto& n : rig.seen) {
    if (n.topic == std::string(topics::kProbeMethodCall) &&
        n.get(topics::kAttrGroup).as_string() == "ServerGrp1") {
      rate = n.get(topics::kAttrValue).as_double();
    }
  }
  EXPECT_NEAR(rate, 2.0, 0.01);  // 10 calls over a 5 s period
}

TEST(ProbesTest, StandardSetCoversFourKinds) {
  ProbeRig rig;
  ProbeSet set = make_standard_probes(rig.sim, *rig.tb.app, rig.remos, rig.bus,
                                      SimTime::seconds(1));
  EXPECT_EQ(set.probes.size(), 4u);
  set.start_all();
  rig.sim.run_until(SimTime::seconds(3));
  EXPECT_GT(rig.count(topics::kProbeQueue), 0u);
  EXPECT_GT(rig.count(topics::kProbeUtilization), 0u);
  EXPECT_GT(rig.count(topics::kProbeBandwidth), 0u);
  set.stop_all();
  std::size_t before = rig.seen.size();
  rig.sim.run_until(SimTime::seconds(6));
  EXPECT_EQ(rig.seen.size(), before);
}

}  // namespace
}  // namespace arcadia::monitor
