// arclint self-test: deliberately seeded violations of every rule must be
// caught, exemptions must work, and mentions in comments/strings must not
// fire. This pins the linter's behaviour so the `arclint_tree` ctest gate
// (and the static-analysis CI lane) stays trustworthy.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using arclint::Finding;
using arclint::lint_source;

std::vector<std::string> rules_hit(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> hit = rules_hit(findings);
  return std::find(hit.begin(), hit.end(), rule) != hit.end();
}

TEST(ArclintTest, ListsAllEightRules) {
  EXPECT_EQ(arclint::rule_ids().size(), 8u);
  EXPECT_TRUE(std::find(arclint::rule_ids().begin(), arclint::rule_ids().end(),
                        "entropy") != arclint::rule_ids().end());
  EXPECT_TRUE(std::find(arclint::rule_ids().begin(), arclint::rule_ids().end(),
                        "tools-parity") != arclint::rule_ids().end());
  EXPECT_TRUE(std::find(arclint::rule_ids().begin(), arclint::rule_ids().end(),
                        "durability-io") != arclint::rule_ids().end());
  EXPECT_TRUE(std::find(arclint::rule_ids().begin(), arclint::rule_ids().end(),
                        "shard-isolation") != arclint::rule_ids().end());
}

// ---- unordered-container -------------------------------------------------

TEST(ArclintTest, CatchesUnorderedMapInSrc) {
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;\n";
  const auto findings = lint_source("src/sim/foo.hpp", src);
  ASSERT_EQ(findings.size(), 2u);  // include + declaration
  EXPECT_EQ(findings[0].rule, "unordered-container");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(ArclintTest, CatchesUnorderedSetEverywhereUnderSrc) {
  const std::string src = "std::unordered_set<int> seen;\n";
  EXPECT_TRUE(has_rule(lint_source("src/util/x.hpp", src),
                       "unordered-container"));
  EXPECT_TRUE(has_rule(lint_source("src/model/x.cpp", src),
                       "unordered-container"));
  // Outside src/ the rule does not apply (tools, tests, benches).
  EXPECT_TRUE(lint_source("tools/arclint/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("tests/test_x.cpp", src).empty());
}

TEST(ArclintTest, UnorderedMentionInCommentOrStringIsFine) {
  const std::string src =
      "// replaced a std::unordered_map with util::SymbolMap\n"
      "const char* kDoc = \"std::unordered_set iteration is hash-ordered\";\n";
  EXPECT_TRUE(lint_source("src/sim/foo.hpp", src).empty());
}

// ---- wall-clock ----------------------------------------------------------

TEST(ArclintTest, CatchesWallClockInSimAndRepairOnly) {
  const std::string src =
      "auto t0 = std::chrono::steady_clock::now();\n"
      "auto t1 = std::chrono::system_clock::now();\n";
  const auto findings = lint_source("src/sim/workload.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "wall-clock");
  EXPECT_TRUE(has_rule(lint_source("src/repair/strategy.cpp", src),
                       "wall-clock"));
  // core/ may measure host wall-clock (stats like sweep_wall_s do).
  EXPECT_TRUE(lint_source("src/core/fleet_manager.cpp", src).empty());
}

TEST(ArclintTest, WallClockWordBoundariesHold) {
  // `operand(`, `rand_like_name`, SimTime identifiers: no false positives
  // for either the wall-clock or the entropy rule.
  const std::string src =
      "int operand(int x);\n"
      "double rand_like_name = 0;\n"
      "SimTime time = sim.now();\n";
  EXPECT_TRUE(lint_source("src/sim/foo.cpp", src).empty());
}

// ---- entropy -------------------------------------------------------------

TEST(ArclintTest, CatchesAmbientRandomnessTreeWideUnderSrc) {
  const std::string src =
      "#include <random>\n"
      "std::mt19937 gen(42);\n"
      "int r = rand();\n"
      "std::random_device rd;\n";
  // Unlike wall-clock, entropy applies everywhere under src/ — a stray
  // generator in core/ or monitor/ breaks fault-seed replay just as badly.
  const auto findings = lint_source("src/core/fleet_manager.cpp", src);
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "entropy");
  EXPECT_TRUE(has_rule(lint_source("src/sim/workload.cpp", src), "entropy"));
  EXPECT_TRUE(has_rule(lint_source("src/monitor/gauge.cpp", src), "entropy"));
}

TEST(ArclintTest, DeterministicRngHeaderIsTheAllowedHome) {
  const std::string src =
      "std::uint64_t rand();  // not really, but exercise the words\n"
      "int seed_from(std::random_device& rd);\n";
  // The one allow-listed randomness source; everything else draws through
  // arcadia::Rng forks.
  EXPECT_TRUE(lint_source("src/util/deterministic_rng.hpp", src).empty());
  EXPECT_TRUE(has_rule(lint_source("src/util/rng.hpp", src), "entropy"));
}

TEST(ArclintTest, EntropyRuleStopsAtSrcBoundary) {
  const std::string src = "std::mt19937 gen;\n";
  EXPECT_TRUE(lint_source("tests/test_x.cpp", src).empty());
  EXPECT_TRUE(lint_source("tools/arclint/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/bench_x.cpp", src).empty());
}

// ---- raw-mutex -----------------------------------------------------------

TEST(ArclintTest, CatchesRawMutexOutsideAnnotations) {
  const std::string src =
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "std::lock_guard<std::mutex> lock(mu);\n"
      "std::condition_variable cv;\n";
  const auto findings = lint_source("src/events/bus.hpp", src);
  ASSERT_GE(findings.size(), 4u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "raw-mutex");
  // The wrapper layer itself is the one allowed home.
  EXPECT_TRUE(lint_source("src/util/annotations.hpp", src).empty());
}

TEST(ArclintTest, AnnotatedWrappersAreFine) {
  const std::string src =
      "util::Mutex mutex_;\n"
      "util::MutexLock lock(mutex_);\n"
      "util::CondVar cv_;\n"
      "// talk about std::mutex in prose all you like\n";
  EXPECT_TRUE(lint_source("src/events/bus.cpp", src).empty());
}

// ---- hotpath-std-function ------------------------------------------------

TEST(ArclintTest, CatchesStdFunctionOnlyInMarkedFiles) {
  const std::string marked =
      "// arclint: hotpath\n"
      "std::function<void()> cb;\n";
  const std::string unmarked = "std::function<void()> cb;\n";
  const auto findings = lint_source("src/events/notification.hpp", marked);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hotpath-std-function");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_TRUE(lint_source("src/events/notification.hpp", unmarked).empty());
}

TEST(ArclintTest, BadFunctionCallIsNotStdFunction) {
  const std::string src =
      "// arclint: hotpath\n"
      "throw std::bad_function_call();\n";
  EXPECT_TRUE(lint_source("src/util/small_fn.hpp", src).empty());
}

// ---- exemptions ----------------------------------------------------------

TEST(ArclintTest, LineExemptionSilencesOnlyThatLine) {
  const std::string src =
      "std::unordered_map<int, int> a;  // arclint: allow(unordered-container): lookup-only, never iterated\n"
      "std::unordered_map<int, int> b;\n";
  const auto findings = lint_source("src/sim/foo.hpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(ArclintTest, FileExemptionSilencesTheRuleFileWide) {
  const std::string src =
      "// arclint: allow-file(wall-clock): this file timestamps host-side "
      "diagnostics only\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "std::unordered_map<int, int> still_caught;\n";
  const auto findings = lint_source("src/sim/foo.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-container");
}

TEST(ArclintTest, ExemptionForOneRuleDoesNotSilenceAnother) {
  const std::string src =
      "std::mutex mu;  // arclint: allow(wall-clock): wrong rule named\n";
  EXPECT_TRUE(has_rule(lint_source("src/sim/foo.cpp", src), "raw-mutex"));
}

// ---- durability-io -------------------------------------------------------

TEST(ArclintTest, CatchesDirectFileIoUnderSrc) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/report.cpp", "#include <fstream>\n"),
      "durability-io"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/report.cpp", "std::ofstream out(path);\n"),
      "durability-io"));
  EXPECT_TRUE(has_rule(
      lint_source("src/monitor/gauge.cpp", "FILE* f = fopen(p, \"r\");\n"),
      "durability-io"));
}

TEST(ArclintTest, DurabilityIoSeamAndNonSrcAreExempt) {
  const std::string src = "#include <fstream>\nstd::ifstream in(path);\n";
  // The one seam that owns descriptors is allowed — both header and impl.
  EXPECT_TRUE(lint_source("src/durability/io.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/durability/io.hpp", src).empty());
  // Tools, tests, benches, examples write their own outputs freely.
  EXPECT_TRUE(lint_source("tools/arcviz/main.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/bench_durability.cpp", src).empty());
  // Other durability files still go through the seam.
  EXPECT_TRUE(has_rule(lint_source("src/durability/journal.cpp", src),
                       "durability-io"));
  // <cstdio> alone is stderr logging, not file I/O; only opening a FILE*
  // (fopen/freopen) trips the rule.
  EXPECT_TRUE(lint_source("src/util/log.cpp",
                          "#include <cstdio>\nstd::fprintf(stderr, \"x\");\n")
                  .empty());
}

// ---- shard-isolation -----------------------------------------------------

TEST(ArclintTest, ShardMarkedFileMayNotTouchControlPlane) {
  const std::string src =
      "// arclint: shard\n"
      "#include \"core/fleet_manager.hpp\"\n"
      "void f(arcadia::core::FleetManager& m);\n";
  const auto findings = lint_source("src/sim/shard_thing.hpp", src);
  ASSERT_EQ(findings.size(), 2u);  // quoted include + identifier
  EXPECT_EQ(findings[0].rule, "shard-isolation");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(ArclintTest, ShardRuleCatchesBusAndPlaneTokens) {
  const std::string marked = "// arclint: shard\n";
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp", marked + "arcadia::events::EventBus* b;\n"),
      "shard-isolation"));
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp",
                  marked + "durability::DurabilityPlane* p;\n"),
      "shard-isolation"));
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp",
                  marked + "#include \"events/bus.hpp\"\n"),
      "shard-isolation"));
  // Longer identifiers containing the token as a substring are not hits.
  EXPECT_TRUE(lint_source("src/sim/x.cpp",
                          marked + "events::LocalEventBus bus;\n")
                  .empty());
}

TEST(ArclintTest, ShardRuleNeedsBothTheMarkerAndSimPath) {
  const std::string offending = "core::FleetManager* mgr;\n";
  // Unmarked sim file: the rule does not apply.
  EXPECT_TRUE(lint_source("src/sim/plain.cpp", offending).empty());
  // Marked file outside src/sim/ (e.g. core itself): not a shard file.
  EXPECT_TRUE(lint_source("src/core/fleet.cpp",
                          "// arclint: shard\n" + offending)
                  .empty());
  // Comment mentions in a marked sim file are stripped before matching.
  EXPECT_TRUE(lint_source("src/sim/doc.hpp",
                          "// arclint: shard\n// not FleetManager's job\n")
                  .empty());
}

TEST(ArclintTest, ShardRuleHonorsAllowDirectives) {
  const std::string src =
      "// arclint: shard\n"
      "core::FleetManager* m;  // arclint: allow(shard-isolation): seam\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src).empty());
}

// ---- tools-parity --------------------------------------------------------

TEST(ArclintTest, ToolsParityPassesWhenToolIsWiredEverywhere) {
  const std::string cmake =
      "add_test(NAME arclint_tree COMMAND arclint ${CMAKE_CURRENT_SOURCE_DIR})\n"
      "add_test(NAME arcverify_gate COMMAND arcverify)\n";
  const std::string ci =
      "      - name: Run arclint over the tree\n"
      "        run: ./build/tools/arclint/arclint .\n"
      "      - name: Run arcverify\n"
      "        run: ./build/tools/arcverify/arcverify\n";
  EXPECT_TRUE(
      arclint::check_tools_parity({"arclint", "arcverify"}, cmake, ci).empty());
}

TEST(ArclintTest, ToolsParityFlagsMissingCtestRegistration) {
  const std::string cmake = "add_executable(newtool main.cpp)\n";
  const std::string ci = "        run: ./build/tools/newtool/newtool .\n";
  const auto findings = arclint::check_tools_parity({"newtool"}, cmake, ci);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "tools-parity");
  EXPECT_EQ(findings[0].path, "CMakeLists.txt");
}

TEST(ArclintTest, ToolsParityFlagsMissingCiStep) {
  const std::string cmake = "add_test(NAME newtool_gate COMMAND newtool)\n";
  const std::string ci = "jobs:\n  build-and-test:\n";
  const auto findings = arclint::check_tools_parity({"newtool"}, cmake, ci);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "tools-parity");
  EXPECT_EQ(findings[0].path, ".github/workflows/ci.yml");
}

TEST(ArclintTest, ToolsParityMatchesWholeWordsOnly) {
  // "arc" is a prefix of both tool names; a prefix mention is not wiring.
  const std::string cmake = "add_test(NAME gate COMMAND arclinter)\n";
  const std::string ci = "        run: ./build/arclinter .\n";
  const auto findings = arclint::check_tools_parity({"arclint"}, cmake, ci);
  EXPECT_EQ(findings.size(), 2u);
}

// ---- stripping machinery -------------------------------------------------

TEST(ArclintTest, StripPreservesLineNumbers) {
  const std::string src =
      "int a; /* multi\nline\ncomment */ int b;\n"
      "const char* s = \"text\\\"quoted\";\n";
  const std::string stripped = arclint::strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("comment"), std::string::npos);
  EXPECT_EQ(stripped.find("text"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(ArclintTest, StripHandlesRawStrings) {
  const std::string src =
      "const char* adl = R\"adl(std::mutex inside raw string)adl\"; int x;\n";
  const std::string stripped = arclint::strip_comments_and_strings(src);
  EXPECT_EQ(stripped.find("mutex"), std::string::npos);
  EXPECT_NE(stripped.find("int x;"), std::string::npos);
  EXPECT_TRUE(lint_source("src/acme/adl.cpp", src).empty());
}

}  // namespace
