#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace arcadia::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::seconds(10));
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime::seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(5), [] {});
  sim.run_until(SimTime::seconds(10));
  EXPECT_THROW(sim.schedule_at(SimTime::seconds(5), [] {}), SimError);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  h.cancel();
  sim.run_until(SimTime::seconds(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  sim.run_until(SimTime::seconds(2));
  EXPECT_TRUE(fired);
  h.cancel();  // must not crash
}

TEST(EventHandleTest, ValidWhilePendingInvalidAfterCancel) {
  Simulator sim;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [] {});
  EXPECT_TRUE(h.valid());
  h.cancel();
  EXPECT_FALSE(h.valid());
  EXPECT_TRUE(sim.empty());
}

TEST(EventHandleTest, InvalidAfterFire) {
  Simulator sim;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [] {});
  sim.run_until(SimTime::seconds(2));
  EXPECT_FALSE(h.valid());
}

TEST(EventHandleTest, DoubleCancelIsNoop) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  h.cancel();
  h.cancel();  // second cancel must not disturb the pool
  EXPECT_FALSE(h.valid());
  sim.run_until(SimTime::seconds(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(EventHandleTest, CancelAfterFireDoesNotKillSlotReuse) {
  Simulator sim;
  bool first = false;
  bool second = false;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [&] { first = true; });
  sim.run_until(SimTime::seconds(2));
  EXPECT_TRUE(first);
  // The next event reuses the recycled slot; the stale handle must not be
  // able to cancel it.
  EventHandle h2 = sim.schedule_at(SimTime::seconds(3), [&] { second = true; });
  h.cancel();
  EXPECT_TRUE(h2.valid());
  sim.run_until(SimTime::seconds(4));
  EXPECT_TRUE(second);
}

TEST(EventHandleTest, DefaultHandleIsInvalidAndCancelSafe) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // must not crash
}

TEST(SimulatorTest, CancelledTombstoneDoesNotBreachHorizon) {
  // A cancelled event before the horizon must not let run_until execute a
  // live event scheduled after it.
  Simulator sim;
  bool late_fired = false;
  EventHandle early = sim.schedule_at(SimTime::seconds(5), [] {});
  sim.schedule_at(SimTime::seconds(20), [&] { late_fired = true; });
  early.cancel();
  sim.run_until(SimTime::seconds(10));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.now(), SimTime::seconds(10));
  sim.run_until(SimTime::seconds(30));
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, NextEventTimeSkipsCancelledTombstones) {
  Simulator sim;
  EventHandle early = sim.schedule_at(SimTime::seconds(1), [] {});
  sim.schedule_at(SimTime::seconds(4), [] {});
  early.cancel();
  EXPECT_EQ(sim.next_event_time(), SimTime::seconds(4));
}

TEST(EventHandleTest, OutlivingTheSimulatorIsSafe) {
  EventHandle h;
  {
    Simulator sim;
    h = sim.schedule_at(SimTime::seconds(1), [] {});
    EXPECT_TRUE(h.valid());
  }
  EXPECT_FALSE(h.valid());
  h.cancel();  // must be a no-op, not a use-after-free
}

TEST(SimulatorTest, PendingCountsLiveEventsOnly) {
  Simulator sim;
  EventHandle a = sim.schedule_at(SimTime::seconds(1), [] {});
  sim.schedule_at(SimTime::seconds(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  a.cancel();
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(5), [&] { ++fired; });
  sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(3));
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_in(SimTime::seconds(1), chain);
  };
  sim.schedule_in(SimTime::seconds(1), chain);
  sim.run_until(SimTime::seconds(100));
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.executed(), 10u);
}

TEST(SimulatorTest, StepExecutesSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(1));
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, NextEventTime) {
  Simulator sim;
  EXPECT_TRUE(sim.next_event_time().is_infinite());
  sim.schedule_at(SimTime::seconds(4), [] {});
  EXPECT_EQ(sim.next_event_time(), SimTime::seconds(4));
}

// ---- bounded stepping (the shard-coordinator contract) -------------------

TEST(SimulatorTest, PeekNextTimeMirrorsNextEventTime) {
  Simulator sim;
  EXPECT_TRUE(sim.peek_next_time().is_infinite());
  EventHandle h = sim.schedule_at(SimTime::seconds(2), [] {});
  sim.schedule_at(SimTime::seconds(5), [] {});
  EXPECT_EQ(sim.peek_next_time(), SimTime::seconds(2));
  h.cancel();
  EXPECT_EQ(sim.peek_next_time(), SimTime::seconds(5));  // skips tombstones
}

TEST(SimulatorTest, RunUntilWithEmptyQueueStillAdvancesTheClock) {
  // The coordinator clamps idle shards to every window bound; an empty
  // queue must still move the clock so the next window starts aligned.
  Simulator sim;
  EXPECT_EQ(sim.run_until(SimTime::seconds(7)), 0u);
  EXPECT_EQ(sim.now(), SimTime::seconds(7));
  EXPECT_TRUE(sim.peek_next_time().is_infinite());
}

TEST(SimulatorTest, CancellationDuringBoundedWindowIsHonored) {
  // An event cancelling a later event inside the same bounded window: the
  // tombstone must not fire and must not count toward the window's total.
  Simulator sim;
  bool victim_fired = false;
  EventHandle victim =
      sim.schedule_at(SimTime::seconds(2), [&] { victim_fired = true; });
  sim.schedule_at(SimTime::seconds(1), [&] { victim.cancel(); });
  EXPECT_EQ(sim.run_until(SimTime::seconds(3)), 1u);
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.now(), SimTime::seconds(3));
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, BoundedWindowsPreserveFifoTieBreak) {
  // Chopping a run into windows (as the shard coordinator does) must not
  // perturb the (time, seq) order — including for events landing exactly
  // on a window bound, which run inside that window (run_until is
  // inclusive).
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(SimTime::seconds(2), [&order, i] { order.push_back(i); });
  }
  sim.schedule_at(SimTime::seconds(1), [&order] { order.push_back(-1); });
  EXPECT_EQ(sim.run_until(SimTime::seconds(2)), 5u);
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(SimulatorTest, ReservePreallocatesPoolAndQueue) {
  Simulator sim;
  sim.reserve(64);
  EXPECT_GE(sim.slot_capacity(), 64u);
  EXPECT_GE(sim.queue_capacity(), 64u);
  // Steady-state churn within the reservation never grows either arena.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 32; ++i) {
      sim.schedule_in(SimTime::millis(1 + i), [] {});
    }
    sim.run_until(sim.now() + SimTime::seconds(1));
  }
  EXPECT_EQ(sim.pool_growths(), 0u);
  EXPECT_EQ(sim.queue_growths(), 0u);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::seconds(1), SimTime::seconds(2), [&] {
    ++count;
    return true;
  });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 5);  // t = 1, 3, 5, 7, 9
}

TEST(PeriodicTaskTest, StopsWhenCallbackReturnsFalse) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::seconds(1), SimTime::seconds(1), [&] {
    ++count;
    return count < 3;
  });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTaskTest, CancelStops) {
  Simulator sim;
  int count = 0;
  auto task = std::make_unique<PeriodicTask>(
      sim, SimTime::seconds(1), SimTime::seconds(1), [&] {
        ++count;
        return true;
      });
  sim.schedule_at(SimTime::seconds(3.5), [&] { task->cancel(); });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, SimTime::seconds(1), SimTime::seconds(1), [&] {
      ++count;
      return true;
    });
  }
  sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace arcadia::sim
