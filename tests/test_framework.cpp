// Framework wiring: gauge reports update the model, the architecture
// manager triggers repairs, the Remos pre-query behaviour, and the gauge
// deployment inventory.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "monitor/topics.hpp"

namespace arcadia::core {
namespace {

struct FrameworkRig {
  sim::Simulator sim;
  sim::ScenarioConfig scenario;
  sim::Testbed tb;
  FrameworkConfig cfg;
  std::unique_ptr<Framework> fw;

  FrameworkRig() : tb(sim::build_testbed(sim, scenario)) {
    fw = std::make_unique<Framework>(sim, tb, cfg);
  }
};

TEST(FrameworkTest, DeploysExpectedGauges) {
  FrameworkRig rig;
  rig.fw->start();
  // 6 latency + 6 bandwidth + 2 load + 2 utilization.
  EXPECT_EQ(rig.fw->gauges().gauge_count(), 16u);
  rig.sim.run_until(SimTime::seconds(20));
  EXPECT_TRUE(rig.fw->gauges().is_live("latency:User1"));
  EXPECT_TRUE(rig.fw->gauges().is_live("load:ServerGrp1"));
  EXPECT_TRUE(rig.fw->gauges().is_live("bandwidth:User3"));
}

TEST(FrameworkTest, PrequeryWarmsRemos) {
  FrameworkRig rig;
  rig.fw->start();
  EXPECT_GT(rig.fw->remos().stats().cold_queries, 0u);
  sim::GridApp& app = *rig.tb.app;
  EXPECT_TRUE(rig.fw->remos().is_warm(app.group_node(rig.tb.sg1),
                                      app.client_node(rig.tb.clients[0])));
}

TEST(FrameworkTest, StartTwiceThrows) {
  FrameworkRig rig;
  rig.fw->start();
  EXPECT_THROW(rig.fw->start(), Error);
}

TEST(FrameworkTest, ConstraintsInstantiated) {
  FrameworkRig rig;
  // 6 latency constraints + 2 utilization constraints.
  EXPECT_EQ(rig.fw->manager().checker().constraints().size(), 8u);
}

TEST(FrameworkTest, GaugeReportsUpdateModelProperties) {
  FrameworkRig rig;
  rig.fw->start();
  rig.tb.start();
  rig.sim.run_until(SimTime::seconds(60));
  // After a minute of quiescent traffic, latency gauges have reported and
  // the model's averageLatency reflects sub-second latencies.
  const model::Component& user1 = rig.fw->system().component("User1");
  double lat = user1.property("averageLatency").as_double();
  EXPECT_GT(lat, 0.0);
  EXPECT_LT(lat, 2.0);
  // Role bandwidth reflects the quiet network.
  double bw = rig.fw->system()
                  .connector("Conn_User1")
                  .role("clientSide")
                  .property("bandwidth")
                  .as_double();
  EXPECT_GT(bw, 1e6);
  EXPECT_GT(rig.fw->manager().stats().reports_applied, 0u);
}

TEST(FrameworkTest, ManagerAppliesDottedElementReports) {
  FrameworkRig rig;
  events::Notification n(monitor::topics::kGaugeReport);
  n.set(monitor::topics::kAttrElement, "Conn_User2.clientSide")
      .set(monitor::topics::kAttrProperty, "bandwidth")
      .set(monitor::topics::kAttrValue, 1234.0);
  EXPECT_TRUE(rig.fw->manager().apply_gauge_report(n));
  EXPECT_DOUBLE_EQ(rig.fw->system()
                       .connector("Conn_User2")
                       .role("clientSide")
                       .property("bandwidth")
                       .as_double(),
                   1234.0);
}

TEST(FrameworkTest, ManagerIgnoresUnknownElements) {
  FrameworkRig rig;
  events::Notification n(monitor::topics::kGaugeReport);
  n.set(monitor::topics::kAttrElement, "Ghost")
      .set(monitor::topics::kAttrProperty, "x")
      .set(monitor::topics::kAttrValue, 1.0);
  EXPECT_FALSE(rig.fw->manager().apply_gauge_report(n));
  events::Notification partial(monitor::topics::kGaugeReport);
  partial.set(monitor::topics::kAttrElement, "User1");
  EXPECT_FALSE(rig.fw->manager().apply_gauge_report(partial));
}

TEST(FrameworkTest, ManagerRejectsMalformedElementAddresses) {
  // A dangling dot must not degrade to a component write: "User1." used to
  // be rejected on the connector path and has to stay rejected.
  FrameworkRig rig;
  for (const char* addr : {"User1.", ".clientSide", "."}) {
    events::Notification n(monitor::topics::kGaugeReport);
    n.set(monitor::topics::kAttrElement, addr)
        .set(monitor::topics::kAttrProperty, "load")
        .set(monitor::topics::kAttrValue, 9.0);
    EXPECT_FALSE(rig.fw->manager().apply_gauge_report(n)) << addr;
  }
  EXPECT_FALSE(rig.fw->system().component("User1").has_property("load"));
}

TEST(FrameworkTest, CustomScriptSourceUsed) {
  sim::Simulator sim;
  sim::ScenarioConfig scenario;
  sim::Testbed tb = sim::build_testbed(sim, scenario);
  FrameworkConfig cfg;
  cfg.script_source =
      "invariant r : averageLatency <= maxLatency !-> fixLatency(r);\n"
      "strategy fixLatency(c : ClientT) = { abort AlwaysGiveUp; }\n";
  Framework fw(sim, tb, cfg);
  EXPECT_EQ(fw.script().strategies.size(), 1u);
  EXPECT_EQ(fw.manager().checker().constraints().size(), 6u);
}

}  // namespace
}  // namespace arcadia::core
