#include <gtest/gtest.h>

#include "events/bus.hpp"
#include "monitor/gauge.hpp"
#include "monitor/gauge_manager.hpp"
#include "monitor/probes.hpp"
#include "monitor/topics.hpp"

namespace arcadia::monitor {
namespace {

using events::Filter;
using events::LocalEventBus;
using events::Notification;

Notification latency_obs(const std::string& client, double value) {
  Notification n(topics::kProbeLatency);
  n.set(topics::kAttrClient, client).set(topics::kAttrValue, value);
  return n;
}

TEST(SlidingWindowGaugeTest, MeansSamplesInWindow) {
  sim::Simulator sim;
  auto gauge = make_latency_gauge(sim, "User3", sim::kNoNode,
                                  SimTime::seconds(30));
  EXPECT_FALSE(gauge->read().has_value());
  gauge->consume(latency_obs("User3", 1.0));
  gauge->consume(latency_obs("User3", 3.0));
  ASSERT_TRUE(gauge->read().has_value());
  EXPECT_DOUBLE_EQ(*gauge->read(), 2.0);
}

TEST(SlidingWindowGaugeTest, EvictsOldSamples) {
  sim::Simulator sim;
  auto gauge = make_latency_gauge(sim, "U", sim::kNoNode, SimTime::seconds(30));
  gauge->consume(latency_obs("U", 100.0));
  sim.schedule_at(SimTime::seconds(40), [&] {
    gauge->consume(latency_obs("U", 2.0));
  });
  sim.run_until(SimTime::seconds(40));
  ASSERT_TRUE(gauge->read().has_value());
  EXPECT_DOUBLE_EQ(*gauge->read(), 2.0);  // 100.0 fell out of the window
}

TEST(SlidingWindowGaugeTest, HoldsLastValueThenGoesStale) {
  sim::Simulator sim;
  auto gauge = make_latency_gauge(sim, "U", sim::kNoNode, SimTime::seconds(10));
  gauge->consume(latency_obs("U", 5.0));
  // Within 2x window: holds.
  sim.run_until(SimTime::seconds(15));
  ASSERT_TRUE(gauge->read().has_value());
  EXPECT_DOUBLE_EQ(*gauge->read(), 5.0);
  // Beyond max staleness: empty.
  sim.run_until(SimTime::seconds(31));
  EXPECT_FALSE(gauge->read().has_value());
}

TEST(SlidingWindowGaugeTest, FilterRejectsOtherClients) {
  sim::Simulator sim;
  auto gauge = make_latency_gauge(sim, "User3", sim::kNoNode,
                                  SimTime::seconds(30));
  EXPECT_TRUE(gauge->probe_filter().matches(latency_obs("User3", 1.0)));
  EXPECT_FALSE(gauge->probe_filter().matches(latency_obs("User4", 1.0)));
}

TEST(EwmaGaugeTest, Smooths) {
  sim::Simulator sim;
  auto gauge = make_utilization_gauge(sim, "G", sim::kNoNode, 0.5);
  Notification n(topics::kProbeUtilization);
  n.set(topics::kAttrGroup, "G").set(topics::kAttrValue, 1.0);
  gauge->consume(n);
  n.set(topics::kAttrValue, 0.0);
  gauge->consume(n);
  ASSERT_TRUE(gauge->read().has_value());
  EXPECT_DOUBLE_EQ(*gauge->read(), 0.5);
}

TEST(LatestValueGaugeTest, ReportsLatest) {
  sim::Simulator sim;
  auto gauge = make_bandwidth_gauge(sim, "U", "Conn_U.clientSide", sim::kNoNode);
  Notification n(topics::kProbeBandwidth);
  n.set(topics::kAttrClient, "U").set(topics::kAttrValue, 1e6);
  gauge->consume(n);
  n.set(topics::kAttrValue, 5e3);
  gauge->consume(n);
  ASSERT_TRUE(gauge->read().has_value());
  EXPECT_DOUBLE_EQ(*gauge->read(), 5e3);
  EXPECT_EQ(gauge->spec().element, "Conn_U.clientSide");
  EXPECT_EQ(gauge->spec().property, "bandwidth");
}

// ---- GaugeManager ----

struct ManagerRig {
  sim::Simulator sim;
  LocalEventBus probe_bus;
  LocalEventBus gauge_bus;
  GaugeManagerConfig cfg;
  std::unique_ptr<GaugeManager> mgr;

  explicit ManagerRig(bool caching = false) {
    cfg.report_period = SimTime::seconds(5);
    cfg.create_cost = SimTime::seconds(12);
    cfg.destroy_cost = SimTime::seconds(3);
    cfg.relocate_cost = SimTime::seconds(1.5);
    cfg.caching = caching;
    mgr = std::make_unique<GaugeManager>(sim, probe_bus, gauge_bus, cfg);
  }
};

TEST(GaugeManagerTest, DeployTakesCreateCost) {
  ManagerRig rig;
  bool live = false;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)),
                  [&] { live = true; });
  rig.sim.run_until(SimTime::seconds(11));
  EXPECT_FALSE(live);
  EXPECT_FALSE(rig.mgr->is_live("latency:U"));
  rig.sim.run_until(SimTime::seconds(12));
  EXPECT_TRUE(live);
  EXPECT_TRUE(rig.mgr->is_live("latency:U"));
}

TEST(GaugeManagerTest, LiveGaugeConsumesAndReports) {
  ManagerRig rig;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)));
  std::vector<double> reported;
  rig.gauge_bus.subscribe(
      Filter::topic(topics::kGaugeReport),
      [&](const Notification& n) {
        reported.push_back(n.get(topics::kAttrValue).as_double());
      });
  rig.sim.schedule_at(SimTime::seconds(13), [&] {
    rig.probe_bus.publish(latency_obs("U", 4.0));
  });
  rig.sim.run_until(SimTime::seconds(30));
  ASSERT_FALSE(reported.empty());
  EXPECT_DOUBLE_EQ(reported.front(), 4.0);
}

TEST(GaugeManagerTest, DuplicateDeployThrows) {
  ManagerRig rig;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)));
  EXPECT_THROW(rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                                  SimTime::seconds(30))),
               Error);
}

TEST(GaugeManagerTest, DestroyRemovesAndCharges) {
  ManagerRig rig;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)));
  rig.sim.run_until(SimTime::seconds(15));
  SimTime done;
  rig.mgr->destroy("latency:U", [&] { done = rig.sim.now(); });
  rig.sim.run_until(SimTime::seconds(30));
  EXPECT_EQ(done, SimTime::seconds(15) + rig.cfg.destroy_cost);
  EXPECT_EQ(rig.mgr->gauge_count(), 0u);
  EXPECT_THROW(rig.mgr->destroy("latency:U"), Error);
}

TEST(GaugeManagerTest, RedeployColdCostIsDestroyPlusCreatePerGauge) {
  ManagerRig rig;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)));
  rig.mgr->deploy(make_load_gauge(rig.sim, "U", sim::kNoNode,
                                  SimTime::seconds(30)));
  rig.sim.run_until(SimTime::seconds(20));
  SimTime start = rig.sim.now();
  SimTime done;
  rig.mgr->redeploy_element("U", [&] { done = rig.sim.now(); });
  rig.sim.run_until(SimTime::seconds(120));
  // Two gauges, sequential destroy+create: 2 * (3 + 12) = 30 s — the
  // paper's ~30 s repair time.
  EXPECT_EQ(done - start, SimTime::seconds(30));
  EXPECT_EQ(rig.mgr->redeploy_cost("U"), SimTime::seconds(30));
}

TEST(GaugeManagerTest, RedeployCachedIsFast) {
  ManagerRig rig(/*caching=*/true);
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)));
  rig.mgr->deploy(make_load_gauge(rig.sim, "U", sim::kNoNode,
                                  SimTime::seconds(30)));
  rig.sim.run_until(SimTime::seconds(20));
  SimTime start = rig.sim.now();
  SimTime done;
  rig.mgr->redeploy_element("U", [&] { done = rig.sim.now(); });
  rig.sim.run_until(SimTime::seconds(120));
  EXPECT_EQ(done - start, SimTime::seconds(3));  // 2 * 1.5 s relocations
  EXPECT_EQ(rig.mgr->stats().relocated, 2u);
}

TEST(GaugeManagerTest, ColdRedeployResetsGaugeState) {
  ManagerRig rig;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(3000)));
  rig.sim.run_until(SimTime::seconds(13));
  rig.probe_bus.publish(latency_obs("U", 99.0));
  std::vector<double> reported;
  rig.gauge_bus.subscribe(Filter::topic(topics::kGaugeReport),
                          [&](const Notification& n) {
                            reported.push_back(
                                n.get(topics::kAttrValue).as_double());
                          });
  rig.sim.schedule_at(SimTime::seconds(20),
                      [&] { rig.mgr->redeploy_element("U"); });
  // After the redeploy completes, feed a fresh observation.
  rig.sim.schedule_at(SimTime::seconds(40), [&] {
    rig.probe_bus.publish(latency_obs("U", 1.0));
  });
  rig.sim.run_until(SimTime::seconds(60));
  ASSERT_FALSE(reported.empty());
  // The stale 99.0 must not survive the cold redeploy.
  EXPECT_DOUBLE_EQ(reported.back(), 1.0);
}

TEST(GaugeManagerTest, OfflineGaugeDoesNotReport) {
  ManagerRig rig;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)));
  rig.sim.run_until(SimTime::seconds(13));
  rig.probe_bus.publish(latency_obs("U", 1.0));
  std::uint64_t before = 0;
  rig.sim.schedule_at(SimTime::seconds(20), [&] {
    rig.mgr->redeploy_element("U");
    before = rig.mgr->stats().reports;
  });
  // During the 15 s redeploy no reports may appear.
  rig.sim.run_until(SimTime::seconds(34));
  EXPECT_EQ(rig.mgr->stats().reports, before);
}

TEST(GaugeManagerTest, ElementsEnumeration) {
  ManagerRig rig;
  rig.mgr->deploy(make_latency_gauge(rig.sim, "U", sim::kNoNode,
                                     SimTime::seconds(30)));
  rig.mgr->deploy(make_load_gauge(rig.sim, "G", sim::kNoNode,
                                  SimTime::seconds(30)));
  auto elements = rig.mgr->all_elements();
  EXPECT_EQ(elements.size(), 2u);
  EXPECT_EQ(rig.mgr->gauges_for("U").size(), 1u);
  EXPECT_TRUE(rig.mgr->gauges_for("missing").empty());
}

TEST(GaugeManagerTest, RedeployUnknownElementCompletesImmediately) {
  ManagerRig rig;
  bool done = false;
  rig.mgr->redeploy_element("ghost", [&] { done = true; });
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace arcadia::monitor
