// Fleet mode: sharded architecture managers, batched gauge application, and
// the parallel constraint sweep. The load-bearing property is the
// determinism contract — parallel detection, ordered dispatch — proven here
// by running the same fleet with 1 and N sweep threads and demanding
// bit-identical repair sequences.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "acme/adl.hpp"
#include "acme/script.hpp"
#include "core/fleet.hpp"
#include "core/framework_builder.hpp"
#include "events/bus.hpp"
#include "monitor/topics.hpp"
#include "repair/scripts.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/shard_sim.hpp"
#include "util/annotations.hpp"

namespace arcadia {
namespace {

events::Notification gauge_report(const std::string& element,
                                  const std::string& property, double value) {
  events::Notification n(monitor::topics::kGaugeReport);
  n.set(monitor::topics::kAttrElement, events::Value(element));
  n.set(monitor::topics::kAttrProperty, events::Value(property));
  n.set(monitor::topics::kAttrValue, events::Value(value));
  return n;
}

/// A minimal shard: one-component model, local gauge bus, model-only
/// repair engine, passive architecture manager.
struct ShardRig {
  explicit ShardRig(sim::Simulator& sim, const std::string& component)
      : system("ShardSys") {
    auto& comp = system.add_component(component, "ClientT");
    comp.set_property("averageLatency", model::PropertyValue(0.5));
    static acme::Script script = acme::parse_script(repair::extended_script());
    engine = std::make_unique<repair::RepairEngine>(
        sim, system, script, nullptr, nullptr, nullptr,
        repair::RepairEngineConfig{});
    core::ArchManagerConfig cfg;
    cfg.passive = true;
    manager = std::make_unique<core::ArchitectureManager>(sim, system, bus,
                                                          *engine, cfg);
    manager->checker().add_constraint("lat:" + component, component,
                                      "averageLatency <= 2.0", "");
  }

  model::System system;
  events::LocalEventBus bus;
  std::unique_ptr<repair::RepairEngine> engine;
  std::unique_ptr<core::ArchitectureManager> manager;
};

TEST(FleetManagerTest, CoalescesReportsWithinWindow) {
  sim::Simulator sim;
  // Shards before the manager: the FleetManager unsubscribes from the
  // shard buses on destruction, so they must outlive it.
  ShardRig rig(sim, "User1");
  core::FleetManagerConfig cfg;
  cfg.coalesce_window = SimTime::millis(500);
  cfg.first_check = SimTime::seconds(1e6);  // sweeps driven manually
  core::FleetManager fleet(sim, cfg);
  fleet.add_shard("t1", *rig.manager, rig.bus);
  fleet.start();

  rig.bus.publish(gauge_report("User1", "averageLatency", 5.0));
  rig.bus.publish(gauge_report("User1", "averageLatency", 6.0));
  rig.bus.publish(gauge_report("User1", "averageLatency", 7.0));
  // Still coalescing: the model must not have been touched yet.
  EXPECT_DOUBLE_EQ(
      rig.system.component("User1").property("averageLatency").as_double(),
      0.5);

  sim.run_until(SimTime::seconds(1));  // the window timer fires
  EXPECT_DOUBLE_EQ(
      rig.system.component("User1").property("averageLatency").as_double(),
      7.0);  // newest value won
  const core::FleetShardStats& stats = fleet.shard_stats(0);
  EXPECT_EQ(stats.reports_enqueued, 3u);
  EXPECT_EQ(stats.reports_coalesced, 2u);
  EXPECT_EQ(stats.reports_applied, 1u);  // one model write for the burst
  EXPECT_EQ(stats.batches, 1u);
}

TEST(FleetManagerTest, ZeroWindowAppliesOnDelivery) {
  sim::Simulator sim;
  ShardRig rig(sim, "User1");
  core::FleetManagerConfig cfg;
  cfg.coalesce_window = SimTime::zero();
  cfg.first_check = SimTime::seconds(1e6);
  core::FleetManager fleet(sim, cfg);
  fleet.add_shard("t1", *rig.manager, rig.bus);
  fleet.start();

  rig.bus.publish(gauge_report("User1", "averageLatency", 3.5));
  EXPECT_DOUBLE_EQ(
      rig.system.component("User1").property("averageLatency").as_double(),
      3.5);
  EXPECT_EQ(fleet.shard_stats(0).batches, 0u);
  EXPECT_EQ(fleet.shard_stats(0).reports_applied, 1u);
}

TEST(FleetManagerTest, DeadBandKeepsQuietShardsClean) {
  // A gauge re-publishing a steady value must not dirty the shard: the
  // model cannot have moved, so the sweep is skippable. This is what lets
  // idle tenants in a duty-cycled fleet drop out of the sweep entirely.
  sim::Simulator sim;
  ShardRig rig(sim, "User1");
  core::FleetManagerConfig cfg;
  cfg.coalesce_window = SimTime::millis(100);
  cfg.first_check = SimTime::seconds(1e6);
  cfg.sweep_threads = 1;
  core::FleetManager fleet(sim, cfg);
  fleet.add_shard("t1", *rig.manager, rig.bus);
  fleet.start();

  rig.bus.publish(gauge_report("User1", "averageLatency", 1.25));
  fleet.run_sweep();  // applies 1.25 (a real change), sweeps
  EXPECT_EQ(fleet.shard_stats(0).reports_applied, 1u);
  EXPECT_EQ(fleet.shard_stats(0).sweeps, 1u);

  // The same value again — and once more with sub-noise-floor jitter.
  rig.bus.publish(gauge_report("User1", "averageLatency", 1.25));
  rig.bus.publish(gauge_report("User1", "averageLatency", 1.25 + 1e-9));
  fleet.run_sweep();
  EXPECT_EQ(fleet.shard_stats(0).reports_unchanged, 1u);  // after coalescing
  EXPECT_EQ(fleet.shard_stats(0).reports_applied, 1u);
  EXPECT_EQ(fleet.shard_stats(0).sweeps, 1u);  // skipped: provably clean
  EXPECT_EQ(fleet.shard_stats(0).sweeps_skipped, 1u);

  // A genuine change wakes the shard back up.
  rig.bus.publish(gauge_report("User1", "averageLatency", 3.0));
  fleet.run_sweep();
  EXPECT_EQ(fleet.shard_stats(0).sweeps, 2u);
  EXPECT_DOUBLE_EQ(
      rig.system.component("User1").property("averageLatency").as_double(),
      3.0);
}

TEST(FleetManagerTest, SkipsCleanShardsAndKeepsCachedVerdicts) {
  sim::Simulator sim;
  ShardRig hot(sim, "User1");
  ShardRig cold(sim, "User2");
  core::FleetManagerConfig cfg;
  cfg.coalesce_window = SimTime::millis(100);
  cfg.first_check = SimTime::seconds(1e6);
  cfg.sweep_threads = 1;
  core::FleetManager fleet(sim, cfg);
  fleet.add_shard("hot", *hot.manager, hot.bus);
  fleet.add_shard("cold", *cold.manager, cold.bus);
  fleet.start();

  // Shard "hot" goes into violation; "cold" stays quiet.
  hot.bus.publish(gauge_report("User1", "averageLatency", 9.0));
  fleet.run_sweep();  // flushes the pending batch first
  EXPECT_EQ(fleet.shard_stats(0).sweeps, 1u);
  EXPECT_EQ(fleet.shard_stats(1).sweeps, 1u);  // first sweep covers everyone
  EXPECT_EQ(fleet.shard_stats(0).violations, 1u);
  EXPECT_EQ(fleet.shard_stats(1).violations, 0u);

  // Nothing changed: both shards are clean and must be skipped — but the
  // hot shard's standing violation keeps being reported from cache, exactly
  // as the incremental checker would have reported it.
  fleet.run_sweep();
  EXPECT_EQ(fleet.shard_stats(0).sweeps, 1u);
  EXPECT_EQ(fleet.shard_stats(0).sweeps_skipped, 1u);
  EXPECT_EQ(fleet.shard_stats(1).sweeps_skipped, 1u);
  EXPECT_EQ(fleet.shard_stats(0).violations, 2u);

  // A report to the cold shard re-sweeps it — and only it.
  cold.bus.publish(gauge_report("User2", "averageLatency", 0.7));
  sim.run_until(sim.now() + SimTime::seconds(1));  // flush timer
  fleet.run_sweep();
  EXPECT_EQ(fleet.shard_stats(1).sweeps, 2u);
  EXPECT_EQ(fleet.shard_stats(0).sweeps, 1u);
  EXPECT_EQ(fleet.shard_stats(0).sweeps_skipped, 2u);
  EXPECT_EQ(fleet.stats().sweep_rounds, 3u);
}

// ---- full-stack determinism ----

struct FleetFingerprint {
  std::uint64_t events = 0;
  std::vector<std::vector<std::tuple<std::string, std::string, std::string,
                                     double>>>
      repairs;  // per tenant: (constraint, element, strategy, started_s)
  std::vector<std::string> models;
  std::uint64_t reports_applied = 0;
  std::uint64_t repairs_total = 0;
};

FleetFingerprint run_fleet(std::size_t sweep_threads, SimTime coalesce,
                           std::size_t sim_threads = 0) {
  sim::Simulator sim;
  core::FleetOptions opt;
  opt.scenario = "fleet-4x16";
  opt.tenants = 3;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults("fleet-4x16");
  // Small tenants keep the test fast; the bench runs the full-size clones.
  opt.config.grid.groups = 2;
  opt.config.grid.clients = 8;
  opt.config.grid.spares = 1;
  // Compress the Figure 7 schedule so the stress phases (and the repairs
  // they force) land inside a short horizon; keep the per-tenant stagger.
  opt.config.quiescent_end = SimTime::seconds(40);
  opt.config.stress_start = SimTime::seconds(80);
  opt.config.stress_end = SimTime::seconds(220);
  opt.config.normal_rate_hz = 2.0;
  opt.config.fleet.phase_shift = SimTime::seconds(30);
  opt.manager.sweep_threads = sweep_threads;
  opt.manager.coalesce_window = coalesce;
  opt.sim_threads = sim_threads;  // 0 = legacy shared simulator
  auto fleet = core::FrameworkBuilder::build_fleet(sim, opt);
  fleet->start();
  fleet->run_until(SimTime::seconds(320));

  FleetFingerprint fp;
  fp.events = sim.executed();
  if (fleet->coordinator()) {
    fp.events += fleet->coordinator()->stats().shard_events;
  }
  for (std::size_t t = 0; t < fleet->tenant_count(); ++t) {
    core::FleetTenant& tenant = fleet->tenant(t);
    // Fingerprinting reads shard state; enter the tenant's lane (a no-op
    // under the legacy kernel, where lane() is 0).
    util::SerialLane in_lane(tenant.lane());
    std::vector<std::tuple<std::string, std::string, std::string, double>> rs;
    for (const repair::RepairRecord& r : tenant.framework->engine().records()) {
      rs.emplace_back(r.constraint_id, r.element, r.strategy,
                      r.started.as_seconds());
    }
    fp.repairs_total += rs.size();
    fp.repairs.push_back(std::move(rs));
    fp.models.push_back(acme::print_system(tenant.framework->system()));
    fp.reports_applied +=
        fleet->manager()->shard_stats(t).reports_applied;
    // Fleet mode really is fleet mode: the per-tenant manager never
    // subscribed, every report went through the batched sink.
    EXPECT_EQ(tenant.framework->manager().stats().reports_applied, 0u);
  }
  return fp;
}

TEST(FleetDeterminismTest, IdenticalRepairSequencesForThreadCounts1AndN) {
  FleetFingerprint one = run_fleet(1, SimTime::millis(500));
  FleetFingerprint many = run_fleet(4, SimTime::millis(500));
  EXPECT_EQ(one.events, many.events);
  ASSERT_EQ(one.repairs.size(), many.repairs.size());
  for (std::size_t t = 0; t < one.repairs.size(); ++t) {
    EXPECT_EQ(one.repairs[t], many.repairs[t]) << "tenant " << t;
    EXPECT_EQ(one.models[t], many.models[t]) << "tenant " << t;
  }
  // The run must have exercised the machinery, or the equality is vacuous.
  EXPECT_GT(one.repairs_total, 0u);
  EXPECT_GT(one.reports_applied, 0u);
}

TEST(FleetDeterminismTest, ShardedKernelBitIdenticalFor1AndNSimThreads) {
  // The sharded-kernel oracle: per-tenant sub-simulators advanced in
  // conservative time windows must replay bit-identically whether the
  // windows execute on one worker thread or four. The baseline is
  // sharded-with-1-thread, not the legacy kernel — legacy interleaves all
  // tenants on one global event sequence, which is a different (equally
  // deterministic) schedule.
  FleetFingerprint one = run_fleet(2, SimTime::millis(500), 1);
  FleetFingerprint four = run_fleet(2, SimTime::millis(500), 4);
  EXPECT_EQ(one.events, four.events);
  ASSERT_EQ(one.repairs.size(), four.repairs.size());
  for (std::size_t t = 0; t < one.repairs.size(); ++t) {
    EXPECT_EQ(one.repairs[t], four.repairs[t]) << "tenant " << t;
    EXPECT_EQ(one.models[t], four.models[t]) << "tenant " << t;
  }
  // Vacuity guards: the sharded run really adapted.
  EXPECT_GT(one.repairs_total, 0u);
  EXPECT_GT(one.reports_applied, 0u);
}

TEST(FleetDeterminismTest, BatchingDoesNotChangeRepairDecisions) {
  // Pending batches are flushed before every sweep, so the model state the
  // checker reads at each sweep instant — and therefore every repair — is
  // identical whether reports coalesced or applied on delivery.
  FleetFingerprint batched = run_fleet(2, SimTime::millis(500));
  FleetFingerprint unbatched = run_fleet(2, SimTime::zero());
  ASSERT_EQ(batched.repairs.size(), unbatched.repairs.size());
  for (std::size_t t = 0; t < batched.repairs.size(); ++t) {
    EXPECT_EQ(batched.repairs[t], unbatched.repairs[t]) << "tenant " << t;
    EXPECT_EQ(batched.models[t], unbatched.models[t]) << "tenant " << t;
  }
  EXPECT_GT(batched.repairs_total, 0u);
}

}  // namespace
}  // namespace arcadia
