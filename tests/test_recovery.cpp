// Crash recovery end to end: the manifest codec, restore_run's refusal
// modes, the recovery property over three stressed profiles (a run killed
// at seeded sim-times — including between a snapshot's tmp write and its
// rename — restores, re-converges, and ends bit-identical to an uncrashed
// run), and the fleet's sweep-thread independence (the shared journal's
// bytes must not depend on detect-phase parallelism).
//
// These are simulation-heavy tests (each recovery segment re-executes from
// t = 0); horizons are compressed the same way examples/fault_smoke.cpp
// compresses them so the stress windows still force repairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/framework_builder.hpp"
#include "core/recovery.hpp"
#include "durability/io.hpp"
#include "durability/journal.hpp"
#include "fault/crash_plan.hpp"
#include "sim/scenario_registry.hpp"

namespace arcadia::core {
namespace {

std::string scratch_dir(const std::string& name) {
  const std::string dir = "test_recovery-" + name;
  durability::ensure_dir(dir);
  for (const std::string& file : durability::list_dir(dir)) {
    durability::remove_file(dir + "/" + file);
  }
  return dir;
}

/// A profile's calibrated options with the CI-budget horizon compression,
/// as one RecoveryOptions (no crash plan — callers add one).
RecoveryOptions compressed_options(const std::string& profile,
                                   const std::string& dir) {
  ExperimentOptions base = options_for(profile);
  if (profile == "churn-mid-repair") {
    // Pull the churn outages forward so both land inside a 500 s run.
    base.scenario.horizon = SimTime::seconds(500);
    base.scenario.churn.first_outage = SimTime::seconds(100);
    base.framework.plan_preemption = true;  // the profile's intended pairing
  } else {
    // lossy-grid / grid-4x16: the fault_smoke compression.
    base.scenario.horizon = SimTime::seconds(500);
    base.scenario.stress_start = SimTime::seconds(150);
    base.scenario.stress_end = SimTime::seconds(330);
  }
  RecoveryOptions opts;
  opts.dir = dir;
  opts.scenario = profile;
  opts.config = base.scenario;
  opts.framework = base.framework;
  opts.framework.durability.snapshot_period = SimTime::seconds(90);
  return opts;
}

// ---- manifest ------------------------------------------------------------

TEST(ManifestTest, RoundTripsScenarioFrameworkAndDurabilityKnobs) {
  const std::string dir = scratch_dir("manifest");
  Manifest in;
  in.scenario = "lossy-grid";
  in.config = sim::scenario_defaults("lossy-grid");
  in.config.horizon = SimTime::seconds(456);
  in.config.fault.monitoring.report_loss = 0.07;
  in.framework.check_period = SimTime::millis(750);
  in.framework.plan_preemption = true;
  in.framework.durability.dir = "elsewhere";  // rebound on restore
  in.framework.durability.snapshot_period = SimTime::seconds(77);
  in.framework.durability.retention = 9;
  in.framework.durability.sync_interval = SimTime::seconds(11);
  write_manifest(dir, in);

  const Manifest out = read_manifest(dir);
  EXPECT_EQ(out.scenario, "lossy-grid");
  EXPECT_EQ(out.config.horizon, SimTime::seconds(456));
  EXPECT_DOUBLE_EQ(out.config.fault.monitoring.report_loss, 0.07);
  EXPECT_EQ(out.framework.check_period, SimTime::millis(750));
  EXPECT_TRUE(out.framework.plan_preemption);
  EXPECT_EQ(out.framework.durability.snapshot_period, SimTime::seconds(77));
  EXPECT_EQ(out.framework.durability.retention, 9u);
  EXPECT_EQ(out.framework.durability.sync_interval, SimTime::seconds(11));
}

TEST(ManifestTest, MissingAndCorruptManifestsRefuseLoudly) {
  const std::string dir = scratch_dir("no-manifest");
  EXPECT_THROW(read_manifest(dir), durability::DurabilityError);
  EXPECT_THROW(restore_run(dir), durability::DurabilityError);

  Manifest m;
  m.scenario = "lossy-grid";
  m.config = sim::scenario_defaults("lossy-grid");
  write_manifest(dir, m);
  std::vector<std::uint8_t> bytes =
      durability::read_file(dir + "/" + kManifestFile);
  bytes[bytes.size() / 2] ^= 0xFF;  // CRC catches a flipped config byte
  durability::write_file_atomic(dir + "/" + kManifestFile, bytes);
  EXPECT_THROW(read_manifest(dir), durability::DurabilityError);
}

// ---- the recovery property ----------------------------------------------

/// Clean run and crashed run of the same profile must be indistinguishable
/// at the horizon: same model digest, same repair count, byte-identical
/// journal. Crash points are seeded per profile; every second one fires in
/// the snapshot rename gap.
void expect_recovery_invariant(const std::string& profile,
                               std::uint64_t crash_seed) {
  const RecoveryResult clean = run_with_recovery(
      compressed_options(profile, scratch_dir(profile + "-clean")));
  ASSERT_GT(clean.repairs_committed, 0u)
      << profile << ": baseline forced no repairs — the profile is idle";

  RecoveryOptions crash_opts =
      compressed_options(profile, scratch_dir(profile + "-crash"));
  crash_opts.crashes = fault::CrashPlan::seeded(
      crash_seed, 3, SimTime::seconds(100),
      crash_opts.config.horizon - SimTime::seconds(60),
      /*mid_snapshot_every=*/2);
  const RecoveryResult crashed = run_with_recovery(crash_opts);

  EXPECT_GT(crashed.crashes_survived, 0) << profile;
  EXPECT_EQ(crashed.segments, crashed.crashes_survived + 1) << profile;
  EXPECT_EQ(crashed.model_digest, clean.model_digest) << profile;
  EXPECT_EQ(crashed.repairs_committed, clean.repairs_committed) << profile;
  EXPECT_EQ(crashed.final_lsn, clean.final_lsn) << profile;

  const auto clean_journal = durability::read_file(
      "test_recovery-" + profile + "-clean/" + durability::kJournalFile);
  const auto crashed_journal = durability::read_file(
      "test_recovery-" + profile + "-crash/" + durability::kJournalFile);
  EXPECT_EQ(clean_journal, crashed_journal)
      << profile << ": restored run's journal is not bit-identical";
}

TEST(RecoveryPropertyTest, GridSurvivesSeededCrashes) {
  expect_recovery_invariant("grid-4x16", 0xA11CE);
}

TEST(RecoveryPropertyTest, LossyGridSurvivesSeededCrashes) {
  expect_recovery_invariant("lossy-grid", 0xB0B);
}

TEST(RecoveryPropertyTest, ChurnMidRepairSurvivesSeededCrashes) {
  expect_recovery_invariant("churn-mid-repair", 0xCA11);
}

TEST(RecoveryTest, RestoreRunReexecutesToReferenceAndContinues) {
  const std::string dir = scratch_dir("restore-run");
  const RecoveryOptions opts = compressed_options("grid-4x16", dir);
  Manifest manifest;
  manifest.scenario = opts.scenario;
  manifest.config = opts.config;
  manifest.framework = opts.framework;
  manifest.framework.durability.dir = dir;
  write_manifest(dir, manifest);

  // First build: run into the repair window, then die without flushing —
  // the un-synced pending tail is lost, exactly like a kill -9.
  {
    auto first = restore_run(dir);
    EXPECT_FALSE(first->recovered);
    EXPECT_EQ(first->reference_lsn, 0u);
    first->sim.run_until(SimTime::seconds(250));
    first->framework->durability_plane()->abandon();
  }

  // Restore by hand and drive the clock: catchup must byte-verify without
  // a divergence throw and leave the run live past the reference.
  auto run = restore_run(dir);
  EXPECT_TRUE(run->recovered);
  EXPECT_GT(run->reference_lsn, 0u);
  EXPECT_LE(run->reference_horizon, SimTime::seconds(250));
  run->run_to_reference();
  EXPECT_EQ(run->sim.now(), run->reference_horizon);
  run->sim.run_until(SimTime::seconds(300));  // continues past the reference
}

// ---- fleet: sweep-thread independence ------------------------------------

std::vector<std::uint8_t> run_durable_fleet(int sweep_threads,
                                            std::size_t sim_threads,
                                            const std::string& dir) {
  sim::Simulator sim;
  FleetOptions opt;
  opt.scenario = "fleet-4x16";
  opt.tenants = 4;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults("fleet-4x16");
  opt.config.quiescent_end = SimTime::seconds(40);
  opt.config.normal_rate_hz = 2.5;
  opt.config.fleet.phase_shift = SimTime::seconds(30);
  opt.config.fleet.active_duration = SimTime::seconds(40);
  opt.framework.monitoring_qos = true;
  opt.framework.gauge_costs.report_period = SimTime::millis(250);
  opt.framework.check_period = SimTime::seconds(1);
  opt.manager.coalesce_window = SimTime::seconds(1);
  opt.manager.sweep_threads = sweep_threads;
  opt.coordinated = true;
  opt.sim_threads = sim_threads;  // 0 = legacy shared simulator
  opt.durability.dir = scratch_dir(dir);
  auto fleet = FrameworkBuilder::build_fleet(sim, opt);
  fleet->start();
  fleet->run_until(SimTime::seconds(180));
  fleet.reset();  // closes the shared plane cleanly
  return durability::read_file(opt.durability.dir + "/" +
                               durability::kJournalFile);
}

TEST(FleetDurabilityTest, JournalBytesIdenticalAcrossSweepThreads) {
  const auto serial = run_durable_fleet(1, 0, "fleet-t1");
  const auto parallel = run_durable_fleet(4, 0, "fleet-t4");
  ASSERT_GT(serial.size(), durability::kJournalHeaderSize);
  EXPECT_EQ(serial, parallel)
      << "shared journal bytes depend on sweep-thread count — the ordered-"
         "dispatch contract is broken";
}

TEST(FleetDurabilityTest, JournalBytesIdenticalAcrossSimThreads) {
  // Sharded kernel: workers journal into per-shard staging sinks, drained
  // at window barriers in (time, shard, emission) order. The bytes that
  // reach the shared plane must be independent of how many workers ran the
  // windows — this is the durability half of the determinism contract.
  const auto one = run_durable_fleet(2, 1, "fleet-s1");
  const auto four = run_durable_fleet(2, 4, "fleet-s4");
  ASSERT_GT(one.size(), durability::kJournalHeaderSize);
  EXPECT_EQ(one, four)
      << "shared journal bytes depend on simulation-thread count — the "
         "staged-drain merge order is broken";
}

}  // namespace
}  // namespace arcadia::core
