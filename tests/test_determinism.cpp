// Determinism regression: two runs of the grid-4x16 scenario with identical
// seeds must execute the identical number of events and end in the identical
// final model state. This guards the simulator's slot-pool rewrite (FIFO
// tie-break, cancellation tombstones) and the symbol-keyed model containers
// (name-sorted iteration) against any ordering drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "acme/adl.hpp"
#include "core/framework.hpp"
#include "sim/scenario_registry.hpp"

namespace arcadia {
namespace {

struct Fingerprint {
  std::uint64_t events_executed = 0;
  std::uint64_t requests_issued = 0;
  std::uint64_t responses_completed = 0;
  std::size_t repairs = 0;
  std::string final_model;
};

Fingerprint run_grid(std::uint64_t seed) {
  sim::Simulator sim;
  sim::ScenarioConfig config = sim::scenario_defaults("grid-4x16");
  config.seed = seed;
  config.horizon = SimTime::seconds(400);
  sim::Testbed testbed = sim::build_scenario(sim, "grid-4x16", config);

  core::FrameworkConfig fc;
  core::Framework framework(sim, testbed, fc);
  framework.start();
  testbed.start();
  sim.run_until(config.horizon);

  Fingerprint fp;
  fp.events_executed = sim.executed();
  fp.requests_issued = testbed.app->total_issued();
  fp.responses_completed = testbed.app->total_completed();
  fp.repairs = framework.engine().records().size();
  fp.final_model = acme::print_system(framework.system());
  return fp;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  Fingerprint a = run_grid(42);
  Fingerprint b = run_grid(42);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.responses_completed, b.responses_completed);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.final_model, b.final_model);
  // The run did real work (guards against a silently dead scenario).
  EXPECT_GT(a.events_executed, 1000u);
  EXPECT_GT(a.responses_completed, 0u);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Fingerprint a = run_grid(42);
  Fingerprint b = run_grid(43);
  // Seeds drive arrivals and service times; some observable must differ.
  EXPECT_TRUE(a.events_executed != b.events_executed ||
              a.responses_completed != b.responses_completed ||
              a.final_model != b.final_model);
}

}  // namespace
}  // namespace arcadia
