#include <gtest/gtest.h>

#include "sim/app.hpp"
#include "sim/scenario.hpp"
#include "sim/workload.hpp"

namespace arcadia::sim {
namespace {

/// Minimal two-group rig: client on h_c, queue on h_q, servers on h_s1/h_s2,
/// all through one router with ample bandwidth.
struct Rig {
  Simulator sim;
  Topology topo;
  std::unique_ptr<FlowNetwork> net;
  std::unique_ptr<GridApp> app;
  NodeId h_c, h_q, h_s1, h_s2;
  ClientIdx client;
  GroupIdx g1, g2;
  ServerIdx s1, s2, spare;

  explicit Rig(AppConfig cfg = {}) {
    NodeId r = topo.add_node("r", NodeKind::Router);
    h_c = topo.add_node("h_c", NodeKind::Host);
    h_q = topo.add_node("h_q", NodeKind::Host);
    h_s1 = topo.add_node("h_s1", NodeKind::Host);
    h_s2 = topo.add_node("h_s2", NodeKind::Host);
    for (NodeId h : {h_c, h_q, h_s1, h_s2}) {
      topo.add_link(h, r, Bandwidth::mbps(100));
    }
    topo.compute_routes();
    net = std::make_unique<FlowNetwork>(sim, topo);
    cfg.service_sigma = 0.0;  // deterministic service for exact assertions
    app = std::make_unique<GridApp>(sim, *net, cfg);
    app->set_queue_node(h_q);
    g1 = app->add_group("G1");
    g2 = app->add_group("G2");
    s1 = app->add_server("S1", h_s1, g1, true);
    s2 = app->add_server("S2", h_s2, g2, true);
    spare = app->add_server("SP", h_s2, kNoGroup, false);
    client = app->add_client("C", h_c);
    app->assign_client(client, g1);
  }

  void issue(double resp_kb = 10.0) {
    app->issue_request(client, DataSize::bytes(512),
                       DataSize::kilobytes(resp_kb));
  }
};

TEST(GridAppTest, RequestLifecycleCompletes) {
  Rig rig;
  std::vector<Request> done;
  rig.app->on_response = [&](const Request& r) { done.push_back(r); };
  rig.issue();
  rig.sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(done.size(), 1u);
  const Request& r = done[0];
  EXPECT_EQ(r.client, rig.client);
  EXPECT_EQ(r.served_by, rig.s1);
  EXPECT_EQ(r.served_by_group, rig.g1);
  EXPECT_GT(r.latency().as_seconds(), 0.0);
  EXPECT_LT(r.latency().as_seconds(), 2.0);
  EXPECT_LE(r.created, r.enqueued);
  EXPECT_LE(r.enqueued, r.dequeued);
  EXPECT_LE(r.dequeued, r.service_done);
  EXPECT_LE(r.service_done, r.completed);
}

TEST(GridAppTest, FifoOrderWithinGroup) {
  Rig rig;
  std::vector<std::uint64_t> completion_order;
  rig.app->on_response = [&](const Request& r) {
    completion_order.push_back(r.id);
  };
  // Spaced issues give a deterministic arrival order at the queue machine.
  for (int i = 0; i < 5; ++i) {
    rig.sim.schedule_at(SimTime::millis(10 * i), [&rig] { rig.issue(); });
  }
  rig.sim.run_until(SimTime::seconds(60));
  ASSERT_EQ(completion_order.size(), 5u);
  // One server, equal sizes: strict FIFO.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(completion_order[i], i);
}

TEST(GridAppTest, MoveClientRoutesFutureRequests) {
  Rig rig;
  std::vector<GroupIdx> served_by;
  rig.app->on_response = [&](const Request& r) {
    served_by.push_back(r.served_by_group);
  };
  rig.issue();
  rig.sim.run_until(SimTime::seconds(5));
  rig.app->move_client(rig.client, rig.g2);
  rig.issue();
  rig.sim.run_until(SimTime::seconds(10));
  ASSERT_EQ(served_by.size(), 2u);
  EXPECT_EQ(served_by[0], rig.g1);
  EXPECT_EQ(served_by[1], rig.g2);
}

TEST(GridAppTest, QueueGrowsWithoutActiveServers) {
  Rig rig;
  rig.app->deactivate_server(rig.s1);
  rig.sim.run_until(SimTime::seconds(1));
  for (int i = 0; i < 4; ++i) rig.issue();
  rig.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(rig.app->queue_length(rig.g1), 4u);
  // Activation drains it.
  rig.app->activate_server(rig.s1);
  rig.sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(rig.app->queue_length(rig.g1), 0u);
  EXPECT_EQ(rig.app->total_completed(), 4u);
}

TEST(GridAppTest, DeactivateFinishesCurrentRequest) {
  Rig rig;
  int completed = 0;
  rig.app->on_response = [&](const Request&) { ++completed; };
  rig.issue();
  rig.sim.run_until(SimTime::millis(100));  // request in service
  EXPECT_TRUE(rig.app->server_busy(rig.s1));
  rig.app->deactivate_server(rig.s1);
  rig.issue();  // queued but never served
  rig.sim.run_until(SimTime::seconds(30));
  EXPECT_EQ(completed, 1);
  EXPECT_FALSE(rig.app->server_active(rig.s1));
  EXPECT_EQ(rig.app->queue_length(rig.g1), 1u);
}

TEST(GridAppTest, SpareConnectsAndActivates) {
  Rig rig;
  EXPECT_EQ(rig.app->spare_servers(), (std::vector<ServerIdx>{rig.spare}));
  EXPECT_THROW(rig.app->activate_server(rig.spare), SimError);  // no queue yet
  rig.app->connect_server(rig.spare, rig.g1);
  rig.app->activate_server(rig.spare);
  EXPECT_TRUE(rig.app->server_active(rig.spare));
  EXPECT_EQ(rig.app->server_group(rig.spare), rig.g1);
  EXPECT_EQ(rig.app->active_servers(rig.g1).size(), 2u);
  EXPECT_TRUE(rig.app->spare_servers().empty());
}

TEST(GridAppTest, ConnectServerMovesBetweenGroups) {
  Rig rig;
  rig.app->connect_server(rig.s2, rig.g1);
  EXPECT_EQ(rig.app->active_servers(rig.g1).size(), 2u);
  EXPECT_TRUE(rig.app->active_servers(rig.g2).empty());
}

TEST(GridAppTest, ServerStateHookFires) {
  Rig rig;
  std::vector<std::pair<ServerIdx, bool>> events;
  rig.app->on_server_state = [&](ServerIdx s, bool a) {
    events.emplace_back(s, a);
  };
  rig.app->deactivate_server(rig.s1);
  rig.app->connect_server(rig.spare, rig.g1);
  rig.app->activate_server(rig.spare);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<ServerIdx, bool>{rig.s1, false}));
  EXPECT_EQ(events[1], (std::pair<ServerIdx, bool>{rig.spare, true}));
}

TEST(GridAppTest, UtilizationTracksBusyServers) {
  Rig rig;
  EXPECT_DOUBLE_EQ(rig.app->group_utilization(rig.g1), 0.0);
  rig.issue();
  rig.sim.run_until(SimTime::millis(100));
  EXPECT_DOUBLE_EQ(rig.app->group_utilization(rig.g1), 1.0);
  rig.sim.run_until(SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(rig.app->group_utilization(rig.g1), 0.0);
}

TEST(GridAppTest, ServiceTimeScalesWithResponseSize) {
  Rig rig;
  std::vector<double> service_s;
  rig.app->on_response = [&](const Request& r) {
    service_s.push_back((r.service_done - r.dequeued).as_seconds());
  };
  rig.issue(10.0);
  rig.sim.run_until(SimTime::seconds(10));
  rig.issue(20.0);
  rig.sim.run_until(SimTime::seconds(20));
  ASSERT_EQ(service_s.size(), 2u);
  // base 50 ms + 20 ms/KB (deterministic in this rig).
  EXPECT_NEAR(service_s[0], 0.05 + 0.02 * 10, 1e-6);
  EXPECT_NEAR(service_s[1], 0.05 + 0.02 * 20, 1e-6);
}

TEST(GridAppTest, LookupsByName) {
  Rig rig;
  EXPECT_EQ(rig.app->find_client("C"), rig.client);
  EXPECT_EQ(rig.app->find_server("SP"), rig.spare);
  EXPECT_EQ(rig.app->find_group("G2"), rig.g2);
  EXPECT_EQ(rig.app->find_client("nope"), -1);
  EXPECT_EQ(rig.app->find_group("nope"), kNoGroup);
}

TEST(GridAppTest, ClientsAssigned) {
  Rig rig;
  EXPECT_EQ(rig.app->clients_assigned(rig.g1).size(), 1u);
  EXPECT_TRUE(rig.app->clients_assigned(rig.g2).empty());
}

TEST(GridAppTest, PendingResponsesCountsConnBacklog) {
  // Throttle the response path so responses pile up on the connection.
  Rig rig;
  FlowId bg = rig.net->add_background(rig.h_s1, rig.h_c);
  rig.net->set_background_rate(bg, Bandwidth::mbps(99.999));
  for (int i = 0; i < 3; ++i) rig.issue(100.0);
  rig.sim.run_until(SimTime::seconds(20));
  EXPECT_GE(rig.app->pending_responses(rig.client), 2u);
}

// ---- workload driver ----

TEST(WorkloadDriverTest, GeneratesRequestsAtConfiguredRate) {
  Rig rig;
  WorkloadDriver driver(rig.sim, *rig.app, /*seed=*/99);
  ClientWorkload w;
  w.client = rig.client;
  w.rate_hz = StepFunction(10.0);
  w.response_mean_bytes = StepFunction(10 * 1024.0);
  w.response_sigma = StepFunction(0.0);
  driver.add(std::move(w));
  driver.start();
  rig.sim.run_until(SimTime::seconds(100));
  // ~1000 expected; Poisson 3-sigma is about +/-95.
  EXPECT_GT(driver.requests_issued(), 850u);
  EXPECT_LT(driver.requests_issued(), 1150u);
}

TEST(WorkloadDriverTest, RateStepChangesArrivals) {
  Rig rig;
  WorkloadDriver driver(rig.sim, *rig.app, 7);
  ClientWorkload w;
  w.client = rig.client;
  StepFunction rate(0.0);  // silent, then bursts
  rate.step(SimTime::seconds(50), 20.0);
  w.rate_hz = rate;
  driver.add(std::move(w));
  driver.start();
  rig.sim.run_until(SimTime::seconds(49));
  EXPECT_EQ(driver.requests_issued(), 0u);
  rig.sim.run_until(SimTime::seconds(100));
  EXPECT_GT(driver.requests_issued(), 700u);
}

TEST(WorkloadDriverTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Rig rig;
    WorkloadDriver driver(rig.sim, *rig.app, seed);
    ClientWorkload w;
    w.client = rig.client;
    w.rate_hz = StepFunction(5.0);
    driver.add(std::move(w));
    driver.start();
    rig.sim.run_until(SimTime::seconds(50));
    return std::make_pair(driver.requests_issued(),
                          rig.app->total_completed());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42).first, run(43).first);
}

TEST(CompetitionDriverTest, AppliesScheduledRates) {
  Rig rig;
  FlowId bg = rig.net->add_background(rig.h_s1, rig.h_c);
  CompetitionDriver driver(rig.sim, *rig.net);
  StepFunction rate(0.0);
  rate.step(SimTime::seconds(10), 5e6);
  rate.step(SimTime::seconds(20), 1e6);
  driver.add(CompetitionSchedule{bg, rate});
  driver.start();
  rig.sim.run_until(SimTime::seconds(5));
  EXPECT_DOUBLE_EQ(rig.net->background_rate(bg).as_bps(), 0.0);
  rig.sim.run_until(SimTime::seconds(15));
  EXPECT_DOUBLE_EQ(rig.net->background_rate(bg).as_bps(), 5e6);
  rig.sim.run_until(SimTime::seconds(25));
  EXPECT_DOUBLE_EQ(rig.net->background_rate(bg).as_bps(), 1e6);
}

// ---- the Figure 6 testbed builder ----

TEST(ScenarioTest, TestbedShapeMatchesFigure6) {
  Simulator sim;
  ScenarioConfig cfg;
  Testbed tb = build_testbed(sim, cfg);
  EXPECT_EQ(tb.clients.size(), 6u);
  EXPECT_EQ(tb.app->group_count(), 2u);
  EXPECT_EQ(tb.sg1_servers.size(), 3u);  // the paper's initial sizing
  EXPECT_EQ(tb.sg2_servers.size(), 2u);
  EXPECT_EQ(tb.app->spare_servers().size(), 2u);  // S4 and S7
  for (ClientIdx c : tb.clients) {
    EXPECT_EQ(tb.app->client_group(c), tb.sg1);  // all start on SG1
  }
  EXPECT_NE(tb.manager_node, kNoNode);
}

TEST(ScenarioTest, CompetitionThrottlesOnlyC34Paths) {
  Simulator sim;
  ScenarioConfig cfg;
  Testbed tb = build_testbed(sim, cfg);
  tb.start();
  sim.run_until(SimTime::seconds(130));  // competition active since 120 s
  GridApp& app = *tb.app;
  NodeId sg1 = app.group_node(tb.sg1);
  // C3 (index 2) starved; C1 (index 0) unaffected.
  Bandwidth c3 = tb.net->available_bandwidth(sg1, app.client_node(tb.clients[2]));
  Bandwidth c1 = tb.net->available_bandwidth(sg1, app.client_node(tb.clients[0]));
  EXPECT_LT(c3.as_kbps(), 10.0 + 41.0);  // near the repair threshold
  EXPECT_GT(c1.as_mbps(), 5.0);
}

TEST(ScenarioTest, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.horizon = SimTime::seconds(200);
    Testbed tb = build_testbed(sim, cfg);
    tb.start();
    sim.run_until(cfg.horizon);
    return std::make_pair(tb.app->total_issued(), sim.executed());
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace arcadia::sim
