// Repair-script parsing and interpretation: Figure 5 fidelity, commit/abort
// semantics, operator dispatch through transactions, and equivalence of the
// interpreted strategies with the native C++ ones.
#include <gtest/gtest.h>

#include "acme/interpreter.hpp"
#include "acme/script.hpp"
#include "model/types.hpp"
#include "repair/scripts.hpp"
#include "repair/strategy.hpp"
#include "repair/style_ops.hpp"

namespace arcadia::acme {
namespace {

namespace cs = model::cs;

TEST(ScriptParserTest, ParsesFigure5Verbatim) {
  Script script = parse_script(figure5_script());
  ASSERT_EQ(script.invariants.size(), 2u);
  EXPECT_EQ(script.invariants[0].name, "r");
  EXPECT_EQ(script.invariants[0].handler, "fixLatency");
  EXPECT_EQ(script.invariants[0].args, std::vector<std::string>{"r"});
  ASSERT_NE(script.find_strategy("fixLatency"), nullptr);
  ASSERT_NE(script.find_tactic("fixServerLoad"), nullptr);
  ASSERT_NE(script.find_tactic("fixBandwidth"), nullptr);
  EXPECT_EQ(script.find_tactic("fixServerLoad")->return_type, "boolean");
  EXPECT_EQ(script.find_tactic("fixBandwidth")->params.size(), 2u);
}

TEST(ScriptParserTest, ParsesExtendedScript) {
  Script script = parse_script(repair::extended_script());
  EXPECT_NE(script.find_strategy("fixLatency"), nullptr);
  EXPECT_NE(script.find_strategy("trimServers"), nullptr);
  EXPECT_NE(script.find_tactic("fixLoadByMove"), nullptr);
  EXPECT_EQ(script.invariants.size(), 2u);
}

TEST(ScriptParserTest, SyntaxErrorsPositioned) {
  EXPECT_THROW(parse_script("strategy s() = { commit; }"), ParseError);
  EXPECT_THROW(parse_script("tactic t() = { let = 3; }"), ParseError);
  EXPECT_THROW(parse_script("unexpected"), ParseError);
  EXPECT_THROW(parse_script("invariant x > 1"), ParseError);  // missing ';'
}

TEST(ScriptParserTest, ElseIfChains) {
  Script script = parse_script(
      "strategy s(x : ClientT) = {"
      "  if (true) { commit repair; }"
      "  else if (false) { abort A; }"
      "  else { abort B; }"
      "}");
  ASSERT_EQ(script.strategies.size(), 1u);
}

// ---- interpretation against the paper's model ----

struct ScriptRig {
  model::System sys{"GridStorage"};
  Script script;
  std::unique_ptr<Interpreter> interp;

  explicit ScriptRig(const char* source = repair::extended_script())
      : script(parse_script(source)) {
    auto& g1 = sys.add_component("ServerGrp1", cs::kServerGroupT);
    g1.set_property("load", model::PropertyValue(9.0));  // overloaded
    g1.set_property("replicationCount", model::PropertyValue(3));
    g1.set_property("utilization", model::PropertyValue(0.9));
    g1.add_port("provide", cs::kProvidePortT);
    g1.representation().add_component("Server1", cs::kServerT);

    auto& g2 = sys.add_component("ServerGrp2", cs::kServerGroupT);
    g2.set_property("load", model::PropertyValue(1.0));
    g2.set_property("replicationCount", model::PropertyValue(2));
    g2.set_property("utilization", model::PropertyValue(0.4));
    g2.add_port("provide", cs::kProvidePortT);

    auto& c = sys.add_component("User3", cs::kClientT);
    c.set_property("averageLatency", model::PropertyValue(5.0));
    c.set_property("maxLatency", model::PropertyValue(2.0));
    c.add_port("request", cs::kRequestPortT);

    auto& conn = sys.add_connector("Conn_User3", cs::kConnT);
    conn.add_role("clientSide", cs::kClientRoleT)
        .set_property("bandwidth", model::PropertyValue(5e3));  // starved
    conn.add_role("serverSide", cs::kServerRoleT);
    sys.attach({"User3", "request", "Conn_User3", "clientSide"});
    sys.attach({"ServerGrp1", "provide", "Conn_User3", "serverSide"});

    interp = std::make_unique<Interpreter>(sys, script);
    repair::register_client_server_ops(*interp, sys, /*queries=*/nullptr);
    interp->bind_global("maxServerLoad", EvalValue(6.0));
    interp->bind_global("minBandwidth", EvalValue(1e4));
    interp->bind_global("minUtilization", EvalValue(0.2));
    interp->bind_global("minReplicas", EvalValue(2.0));
  }

  EvalValue client_ref() {
    return EvalValue(ElementRef::of_component(sys, sys.component("User3")));
  }
  EvalValue group_ref(const std::string& g) {
    return EvalValue(ElementRef::of_component(sys, sys.component(g)));
  }
};

TEST(InterpreterTest, FixServerLoadGrowsOverloadedGroup) {
  ScriptRig rig;
  model::Transaction txn(rig.sys);
  StrategyOutcome out =
      rig.interp->run_strategy("fixLatency", {rig.client_ref()}, txn);
  EXPECT_TRUE(out.committed);
  ASSERT_FALSE(out.tactics_run.empty());
  EXPECT_EQ(out.tactics_run[0].first, "fixServerLoad");
  EXPECT_TRUE(out.tactics_run[0].second);
  txn.commit();
  // A server was added to the overloaded group and the count bumped.
  const model::Component& g1 = rig.sys.component("ServerGrp1");
  EXPECT_EQ(g1.property("replicationCount").as_int(), 4);
  EXPECT_EQ(g1.representation_const().components().size(), 2u);
}

TEST(InterpreterTest, FixBandwidthMovesWhenLoadFine) {
  ScriptRig rig;
  // No overload: the bandwidth tactic applies instead.
  rig.sys.component("ServerGrp1")
      .set_property("load", model::PropertyValue(1.0));
  model::Transaction txn(rig.sys);
  StrategyOutcome out =
      rig.interp->run_strategy("fixLatency", {rig.client_ref()}, txn);
  EXPECT_TRUE(out.committed);
  txn.commit();
  // Client now attached to ServerGrp2.
  EXPECT_TRUE(rig.sys.attached("ServerGrp2", "provide", "Conn_User3",
                               "serverSide"));
  EXPECT_FALSE(rig.sys.attached("ServerGrp1", "provide", "Conn_User3",
                                "serverSide"));
  EXPECT_EQ(rig.sys.component("User3").property("boundTo").as_string(),
            "ServerGrp2");
}

TEST(InterpreterTest, NoTacticApplicableAborts) {
  ScriptRig rig;
  rig.sys.component("ServerGrp1").set_property("load",
                                               model::PropertyValue(1.0));
  rig.sys.connector("Conn_User3")
      .role("clientSide")
      .set_property("bandwidth", model::PropertyValue(1e7));  // healthy
  model::Transaction txn(rig.sys);
  StrategyOutcome out =
      rig.interp->run_strategy("fixLatency", {rig.client_ref()}, txn);
  EXPECT_FALSE(out.committed);
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.abort_reason, "NoApplicableTactic");
  EXPECT_EQ(txn.op_count(), 0u);
}

TEST(InterpreterTest, AbortLeavesModelUntouchedAfterRollback) {
  // Figure 5 strict version: fixBandwidth aborts NoServerGroupFound when
  // no better group exists. Remove ServerGrp2 so the lookup fails.
  ScriptRig rig(figure5_script());
  rig.sys.component("ServerGrp1").set_property("load",
                                               model::PropertyValue(1.0));
  rig.sys.remove_component("ServerGrp2");
  model::Transaction txn(rig.sys);
  StrategyOutcome out =
      rig.interp->run_strategy("fixLatency", {rig.client_ref()}, txn);
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.abort_reason, "NoServerGroupFound");
  txn.rollback();
  EXPECT_TRUE(rig.sys.attached("ServerGrp1", "provide", "Conn_User3",
                               "serverSide"));
}

TEST(InterpreterTest, Figure5CommitsViaServerLoad) {
  ScriptRig rig(figure5_script());
  model::Transaction txn(rig.sys);
  StrategyOutcome out =
      rig.interp->run_strategy("fixLatency", {rig.client_ref()}, txn);
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.tactics_run.front().first, "fixServerLoad");
}

TEST(InterpreterTest, TrimServersRemovesDynamicReplica) {
  ScriptRig rig;
  // Mark the group underutilized with a removable dynamic server.
  auto& g1 = rig.sys.component("ServerGrp1");
  g1.set_property("utilization", model::PropertyValue(0.05));
  g1.set_property("replicationCount", model::PropertyValue(3));
  auto& dyn = g1.representation().add_component("ServerX", cs::kServerT);
  dyn.set_property("dynamic", model::PropertyValue(true));
  model::Transaction txn(rig.sys);
  StrategyOutcome out =
      rig.interp->run_strategy("trimServers", {rig.group_ref("ServerGrp1")}, txn);
  EXPECT_TRUE(out.committed);
  txn.commit();
  EXPECT_FALSE(g1.representation_const().has_component("ServerX"));
  EXPECT_EQ(g1.property("replicationCount").as_int(), 2);
}

TEST(InterpreterTest, TrimRespectsMinReplicas) {
  ScriptRig rig;
  auto& g2 = rig.sys.component("ServerGrp2");
  g2.set_property("utilization", model::PropertyValue(0.0));
  // replicationCount already 2 == minReplicas.
  model::Transaction txn(rig.sys);
  StrategyOutcome out =
      rig.interp->run_strategy("trimServers", {rig.group_ref("ServerGrp2")}, txn);
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.abort_reason, "NothingToTrim");
}

TEST(InterpreterTest, UnknownStrategyThrows) {
  ScriptRig rig;
  model::Transaction txn(rig.sys);
  EXPECT_THROW(rig.interp->run_strategy("nope", {}, txn), ScriptError);
}

TEST(InterpreterTest, ArgumentArityChecked) {
  ScriptRig rig;
  model::Transaction txn(rig.sys);
  EXPECT_THROW(rig.interp->run_strategy("fixLatency", {}, txn), ScriptError);
}

TEST(InterpreterTest, RunTacticDirectly) {
  ScriptRig rig;
  model::Transaction txn(rig.sys);
  EXPECT_TRUE(rig.interp->run_tactic("fixServerLoad", {rig.client_ref()}, txn));
  txn.rollback();
  model::Transaction txn2(rig.sys);
  rig.sys.component("ServerGrp1").set_property("load",
                                               model::PropertyValue(0.0));
  EXPECT_FALSE(rig.interp->run_tactic("fixServerLoad", {rig.client_ref()}, txn2));
}

TEST(InterpreterTest, OperatorOutsideTransactionRejected) {
  ScriptRig rig;
  auto expr = parse_expression(
      "(select one g : ServerGroupT in self.Components | true).addServer()");
  EXPECT_THROW(rig.interp->eval(*expr), ScriptError);
}

// ---- native/script equivalence ----

struct EquivCase {
  double load;
  double bandwidth;
  const char* expected_tactic;  // nullptr = abort
};

class EquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EquivalenceTest, ScriptAndNativeAgree) {
  const EquivCase& p = GetParam();

  // Script path.
  ScriptRig script_rig;
  script_rig.sys.component("ServerGrp1")
      .set_property("load", model::PropertyValue(p.load));
  script_rig.sys.connector("Conn_User3")
      .role("clientSide")
      .set_property("bandwidth", model::PropertyValue(p.bandwidth));
  model::Transaction stxn(script_rig.sys);
  StrategyOutcome script_out =
      script_rig.interp->run_strategy("fixLatency", {script_rig.client_ref()},
                                      stxn);
  if (stxn.is_open()) stxn.rollback();

  // Native path on an identically prepared model.
  ScriptRig native_rig;
  native_rig.sys.component("ServerGrp1")
      .set_property("load", model::PropertyValue(p.load));
  native_rig.sys.connector("Conn_User3")
      .role("clientSide")
      .set_property("bandwidth", model::PropertyValue(p.bandwidth));
  model::Transaction ntxn(native_rig.sys);
  repair::TacticContext ctx{native_rig.sys, ntxn,    nullptr, {}, 6.0,
                            Bandwidth::bps(1e4),     0.2,     2,  2.0,
                            "User3"};
  StrategyOutcome native_out = repair::make_fix_latency_strategy().run(ctx);
  if (ntxn.is_open()) ntxn.rollback();

  EXPECT_EQ(script_out.committed, native_out.committed);
  if (p.expected_tactic) {
    ASSERT_TRUE(script_out.committed);
    // The deciding tactic is the last one that ran and succeeded.
    EXPECT_EQ(script_out.tactics_run.back().first, p.expected_tactic);
    EXPECT_EQ(native_out.tactics_run.back().first, p.expected_tactic);
  } else {
    EXPECT_TRUE(script_out.aborted);
    EXPECT_TRUE(native_out.aborted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decisions, EquivalenceTest,
    ::testing::Values(
        // Overloaded group -> grow it (server-load repair prioritized).
        EquivCase{9.0, 5e3, "fixServerLoad"},
        EquivCase{9.0, 1e7, "fixServerLoad"},
        // Healthy load, starved bandwidth -> move.
        EquivCase{1.0, 5e3, "fixBandwidth"},
        // Healthy everything -> no repair.
        EquivCase{1.0, 1e7, nullptr}));

}  // namespace
}  // namespace arcadia::acme
