// Environment manager (Table 1), runtime queries, translator, and the
// model builder against the real testbed.
#include <gtest/gtest.h>

#include "model/types.hpp"
#include "runtime/environment.hpp"
#include "runtime/model_builder.hpp"
#include "runtime/queries.hpp"
#include "runtime/translator.hpp"

namespace arcadia::rt {
namespace {

struct Rig {
  sim::Simulator sim;
  sim::ScenarioConfig cfg;
  sim::Testbed tb;
  std::unique_ptr<remos::RemosService> remos;
  std::unique_ptr<SimEnvironmentManager> env;
  std::unique_ptr<SimRuntimeQueries> queries;
  std::unique_ptr<SimTranslator> translator;

  Rig() : tb(sim::build_testbed(sim, cfg)) {
    remos = std::make_unique<remos::RemosService>(sim, *tb.net);
    env = std::make_unique<SimEnvironmentManager>(*tb.app, *tb.topo, *remos);
    queries = std::make_unique<SimRuntimeQueries>(*tb.app, *env, *remos);
    translator = std::make_unique<SimTranslator>(*env);
  }
};

TEST(EnvironmentTest, Table1OperatorsWork) {
  Rig rig;
  sim::GridApp& app = *rig.tb.app;

  // createReqQueue adds a new (empty) group.
  EXPECT_EQ(rig.env->createReqQueue("ServerGrp3"), "ServerGrp3");
  EXPECT_NE(app.find_group("ServerGrp3"), sim::kNoGroup);
  EXPECT_THROW(rig.env->createReqQueue("ServerGrp3"), RuntimeOpError);

  // moveClient retargets future requests.
  rig.env->moveClient("User1", "ServerGrp2");
  EXPECT_EQ(app.client_group(app.find_client("User1")),
            app.find_group("ServerGrp2"));
  EXPECT_THROW(rig.env->moveClient("ghost", "ServerGrp2"), RuntimeOpError);
  EXPECT_THROW(rig.env->moveClient("User1", "ghost"), RuntimeOpError);

  // connect + activate a spare.
  rig.env->connectServer("Server4", "ServerGrp1");
  rig.env->activateServer("Server4");
  EXPECT_TRUE(app.server_active(app.find_server("Server4")));
  EXPECT_GT(rig.env->last_op_cost(), SimTime::zero());

  rig.env->deactivateServer("Server4");
  EXPECT_FALSE(app.server_active(app.find_server("Server4")));
  EXPECT_EQ(rig.env->stats().activations, 1u);
  EXPECT_EQ(rig.env->stats().deactivations, 1u);
}

TEST(EnvironmentTest, FindServerChecksBandwidth) {
  Rig rig;
  auto found = rig.env->findServer("User1", Bandwidth::kbps(10));
  ASSERT_TRUE(found.has_value());
  // Spares are Server4 and Server7; both reachable, best one returned.
  EXPECT_TRUE(*found == "Server4" || *found == "Server7");
  // An absurd threshold finds nothing.
  EXPECT_FALSE(rig.env->findServer("User1", Bandwidth::mbps(1000)).has_value());
}

TEST(EnvironmentTest, RemosGetFlowResolvesMachineNames) {
  Rig rig;
  Bandwidth bw = rig.env->remos_get_flow("m_s1", "m_c3");
  EXPECT_GT(bw.as_mbps(), 5.0);  // quiescent network
  EXPECT_THROW(rig.env->remos_get_flow("nope", "m_c3"), RuntimeOpError);
}

TEST(QueriesTest, FindGoodSgrpPrefersBestBandwidth) {
  Rig rig;
  // C3 starts on SG1; saturate SG1->C3 so SG2 wins.
  rig.tb.net->set_background_rate(rig.tb.comp_sg1,
                                  Bandwidth::mbps(9.99));
  auto found = rig.queries->find_good_sgrp("User3", Bandwidth::kbps(10));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, "ServerGrp2");
  EXPECT_GT(rig.queries->drain_query_cost(), SimTime::zero());
}

TEST(QueriesTest, FindGoodSgrpRespectsThreshold) {
  Rig rig;
  // Both paths saturated: nothing qualifies.
  rig.tb.net->set_background_rate(rig.tb.comp_sg1, Bandwidth::mbps(9.999));
  rig.tb.net->set_background_rate(rig.tb.comp_sg2, Bandwidth::mbps(9.999));
  EXPECT_FALSE(
      rig.queries->find_good_sgrp("User3", Bandwidth::kbps(10)).has_value());
}

TEST(QueriesTest, FindLessLoadedRequiresImprovement) {
  Rig rig;
  sim::GridApp& app = *rig.tb.app;
  // Stuff SG1's queue without any servers pulling.
  for (sim::ServerIdx s : app.active_servers(rig.tb.sg1)) {
    app.deactivate_server(s);
  }
  for (int i = 0; i < 8; ++i) {
    app.issue_request(rig.tb.clients[0], DataSize::bytes(512),
                      DataSize::kilobytes(10));
  }
  rig.sim.run_until(SimTime::seconds(2));
  ASSERT_GT(app.queue_length(rig.tb.sg1), 6u);
  auto found = rig.queries->find_less_loaded_sgrp(
      "User1", "ServerGrp1", Bandwidth::kbps(10), 2.0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, "ServerGrp2");
  // With an unmeetable improvement requirement, nothing qualifies.
  EXPECT_FALSE(rig.queries
                   ->find_less_loaded_sgrp("User1", "ServerGrp1",
                                           Bandwidth::kbps(10), 100.0)
                   .has_value());
}

TEST(QueriesTest, RemovableTracksRecruited) {
  Rig rig;
  EXPECT_FALSE(rig.queries->find_removable_server("ServerGrp1").has_value());
  rig.env->connectServer("Server4", "ServerGrp1");
  rig.env->activateServer("Server4");
  rig.env->note_recruited("Server4");
  auto found = rig.queries->find_removable_server("ServerGrp1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, "Server4");
  rig.env->note_released("Server4");
  EXPECT_FALSE(rig.queries->find_removable_server("ServerGrp1").has_value());
}

TEST(TranslatorTest, AddComponentRecruitsServer) {
  Rig rig;
  std::vector<model::OpRecord> records;
  model::OpRecord add;
  add.kind = model::OpKind::AddComponent;
  add.scope = {"ServerGrp1"};
  add.element = "Server4";
  records.push_back(add);
  SimTime cost = rig.translator->apply(records);
  EXPECT_GT(cost, SimTime::zero());
  sim::GridApp& app = *rig.tb.app;
  sim::ServerIdx s4 = app.find_server("Server4");
  EXPECT_TRUE(app.server_active(s4));
  EXPECT_EQ(app.server_group(s4), app.find_group("ServerGrp1"));
  EXPECT_EQ(rig.env->recruited_servers(), std::vector<std::string>{"Server4"});
}

TEST(TranslatorTest, BoundToMovesClient) {
  Rig rig;
  model::OpRecord set;
  set.kind = model::OpKind::SetProperty;
  set.element = "User3";
  set.property = "boundTo";
  set.value = model::PropertyValue("ServerGrp2");
  rig.translator->apply({set});
  sim::GridApp& app = *rig.tb.app;
  EXPECT_EQ(app.client_group(app.find_client("User3")),
            app.find_group("ServerGrp2"));
}

TEST(TranslatorTest, AttachDetachAndOtherPropsIgnored) {
  Rig rig;
  model::OpRecord attach;
  attach.kind = model::OpKind::Attach;
  attach.attachment = {"ServerGrp2", "provide", "Conn_User3", "serverSide"};
  model::OpRecord prop;
  prop.kind = model::OpKind::SetProperty;
  prop.element = "ServerGrp1";
  prop.property = "replicationCount";
  prop.value = model::PropertyValue(4);
  SimTime cost = rig.translator->apply({attach, prop});
  EXPECT_EQ(cost, SimTime::zero());
  EXPECT_EQ(rig.translator->stats().ignored, 2u);
}

TEST(TranslatorTest, RemoveComponentDeactivates) {
  Rig rig;
  rig.env->connectServer("Server4", "ServerGrp1");
  rig.env->activateServer("Server4");
  rig.env->note_recruited("Server4");
  model::OpRecord rm;
  rm.kind = model::OpKind::RemoveComponent;
  rm.scope = {"ServerGrp1"};
  rm.element = "Server4";
  rig.translator->apply({rm});
  sim::GridApp& app = *rig.tb.app;
  EXPECT_FALSE(app.server_active(app.find_server("Server4")));
  EXPECT_TRUE(rig.env->recruited_servers().empty());
}

// ---- model builder ----

TEST(ModelBuilderTest, MirrorsTestbed) {
  Rig rig;
  ModelBuildOptions opts;
  auto sys = build_grid_model(rig.tb, opts);
  EXPECT_EQ(sys->components().size(), 8u);  // 2 groups + 6 clients
  EXPECT_EQ(sys->connectors().size(), 6u);
  EXPECT_EQ(sys->attachments().size(), 12u);
  const model::Component& sg1 = sys->component("ServerGrp1");
  EXPECT_EQ(sg1.property("replicationCount").as_int(), 3);
  EXPECT_EQ(sg1.representation_const().components().size(), 3u);
  // Spares are not part of the architecture.
  EXPECT_FALSE(sg1.representation_const().has_component("Server4"));
  // Every client is attached to SG1 initially.
  for (int c = 1; c <= 6; ++c) {
    EXPECT_TRUE(sys->connected("User" + std::to_string(c), "ServerGrp1"));
  }
}

TEST(ModelBuilderTest, SatisfiesStyleAndStructure) {
  Rig rig;
  ModelBuildOptions opts;
  auto sys = build_grid_model(rig.tb, opts);
  model::Style style = model::client_server_style();
  auto problems = style.check_system(*sys);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(ModelBuilderTest, ProfileAppliedToClients) {
  Rig rig;
  ModelBuildOptions opts;
  opts.max_latency = SimTime::seconds(3);
  auto sys = build_grid_model(rig.tb, opts);
  EXPECT_DOUBLE_EQ(
      sys->component("User1").property("maxLatency").as_double(), 3.0);
}

}  // namespace
}  // namespace arcadia::rt
