// Section 5.3: "The same network is being used to monitor the system as to
// run it. This means that when the available bandwidth is low,
// communication over our monitoring system is correspondingly slow ...
// One way to address this is to use network Quality of Service (QoS)
// techniques to prioritize monitoring traffic."
//
// Uses the bidirectional-competition scenario variant (cross traffic loads
// the return path too, as on the testbed), then measures (a) per-report
// delivery delay from a congested machine to the repair-infrastructure
// machine, shared vs QoS, and (b) the end-to-end detection lag from
// competition onset to the first committed repair.
#include <iomanip>
#include <iostream>

#include "core/experiment.hpp"
#include "events/bus.hpp"
#include "sim/scenario_registry.hpp"

namespace {

using namespace arcadia;

/// The bidirectional-competition scenario from the registry.
constexpr const char* kScenario = "paper-fig6-bidir";

sim::ScenarioConfig lag_scenario() {
  sim::ScenarioConfig cfg = sim::scenario_defaults(kScenario);
  // Heavier competition so the monitoring direction is genuinely starved
  // (the paper's cross traffic saturated shared links in both directions).
  cfg.comp_sg1_phase1_mbps = 9.9999;
  return cfg;
}

/// Delivery delay of a 512-byte gauge report across the congested
/// direction, sampled mid bandwidth phase.
void delivery_delay_probe() {
  sim::Simulator sim;
  sim::ScenarioConfig cfg = lag_scenario();
  sim::Testbed tb = sim::build_scenario(sim, kScenario, cfg);
  tb.start();
  sim.run_until(SimTime::seconds(200));

  sim::NodeId c3 = tb.app->client_node(tb.clients[2]);
  sim::NodeId c1 = tb.app->client_node(tb.clients[0]);
  sim::NodeId mgr = tb.manager_node;

  events::Notification report("gauge.report");
  report.wire_size = DataSize::bytes(512);

  auto shared = events::network_delay(*tb.net, SimTime::millis(50), false);
  auto qos = events::network_delay(*tb.net, SimTime::millis(50), true);

  std::cout << std::left << std::setw(44) << "report path" << std::setw(16)
            << "shared (s)" << "QoS (s)\n";
  struct Case {
    const char* name;
    sim::NodeId src;
  } cases[] = {
      {"C3 machine -> manager (congested trunk)", c3},
      {"C1 machine -> manager (clean path)", c1},
  };
  for (const Case& c : cases) {
    report.source_node = c.src;
    std::cout << std::left << std::setw(44) << c.name << std::setw(16)
              << shared(report, mgr).as_seconds()
              << qos(report, mgr).as_seconds() << "\n";
  }
}

/// End-to-end: time from competition onset to the first committed repair.
double detection_lag(bool qos) {
  core::ExperimentOptions opt = core::options_for(kScenario);
  opt.adaptation = true;
  opt.scenario = lag_scenario();
  opt.scenario.horizon = SimTime::seconds(600);
  opt.framework.monitoring_qos = qos;
  core::ExperimentResult r = core::run_experiment(opt);
  for (const auto& rec : r.repairs) {
    if (rec.committed) {
      return (rec.started - opt.scenario.quiescent_end).as_seconds();
    }
  }
  return -1.0;
}

}  // namespace

int main() {
  std::cout << "=== Section 5.3: monitoring over the shared network ===\n\n";
  delivery_delay_probe();
  std::cout << "\nend-to-end detection lag (competition onset -> first "
               "committed repair):\n";
  double shared_lag = detection_lag(false);
  double qos_lag = detection_lag(true);
  std::cout << "  shared monitoring traffic:  " << shared_lag << " s\n";
  std::cout << "  QoS-prioritized monitoring: " << qos_lag << " s\n";
  std::cout << "\npaper: low available bandwidth delays the monitoring "
               "system itself,\nproducing a lag between a bandwidth change "
               "and its repair; QoS for\nmonitoring traffic is the proposed "
               "mitigation.\n";
  return 0;
}
