// Hot-path microbenchmarks with a recorded perf trajectory.
//
// Measures the three paths the hot-path overhaul rewrote, each against an
// in-bench re-implementation of the design it replaced, so every future run
// re-verifies the speedups instead of trusting a stale number:
//
//   model_lookup           string-keyed std::map (the old Element/System
//                          containers) vs the interned-Symbol model, via
//                          both the string-overload and pre-interned paths
//   event_schedule_cancel  the old shared_ptr<bool> + std::function event
//                          queue vs the slot+generation pool
//   constraint_sweep       full re-evaluation every tick vs incremental
//                          dirty-tracked checking
//
// Emits BENCH_hotpath.json (cwd, or argv[1]) for CI artifact upload.
// Run Release: the numbers are meaningless under -O0.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "model/system.hpp"
#include "repair/constraint.hpp"
#include "sim/simulator.hpp"
#include "util/symbol.hpp"

#include "bench_output.hpp"

namespace {

using namespace arcadia;
using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point begin, Clock::time_point end,
                 std::uint64_t ops) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count();
  return static_cast<double>(ns) / static_cast<double>(ops ? ops : 1);
}

/// Defeats dead-code elimination without a fence per iteration.
volatile double g_sink = 0.0;

// ---------------------------------------------------------------------------
// 1. Model property lookup
// ---------------------------------------------------------------------------

struct ModelLookupResult {
  double baseline_ns = 0.0;       ///< std::map<std::string, ...> (old design)
  double string_path_ns = 0.0;    ///< new model, string overloads (interns)
  double symbol_path_ns = 0.0;    ///< new model, pre-interned symbols
};

ModelLookupResult bench_model_lookup() {
  constexpr int kComponents = 64;
  constexpr int kProps = 6;
  constexpr std::uint64_t kIters = 400'000;

  // The old design: both maps string-keyed and red-black.
  std::map<std::string, std::map<std::string, double>> baseline;
  model::System sys("bench");
  std::vector<std::string> comp_names;
  std::vector<std::string> prop_names;
  for (int p = 0; p < kProps; ++p) {
    prop_names.push_back("property" + std::to_string(p));
  }
  for (int c = 0; c < kComponents; ++c) {
    const std::string name = "Component" + std::to_string(c);
    comp_names.push_back(name);
    auto& comp = sys.add_component(name, "ClientT");
    for (int p = 0; p < kProps; ++p) {
      baseline[name][prop_names[p]] = 1.0 + p;
      comp.set_property(prop_names[p], model::PropertyValue(1.0 + p));
    }
  }
  std::vector<util::Symbol> comp_syms;
  std::vector<util::Symbol> prop_syms;
  for (const auto& n : comp_names) comp_syms.push_back(util::Symbol::intern(n));
  for (const auto& n : prop_names) prop_syms.push_back(util::Symbol::intern(n));

  ModelLookupResult out;
  double acc = 0.0;

  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    const auto& props = baseline.find(comp_names[i % kComponents])->second;
    acc += props.find(prop_names[i % kProps])->second;
  }
  out.baseline_ns = ns_per_op(t0, Clock::now(), kIters);
  g_sink = acc;

  acc = 0.0;
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    acc += sys.component(comp_names[i % kComponents])
               .property(prop_names[i % kProps])
               .as_double();
  }
  out.string_path_ns = ns_per_op(t0, Clock::now(), kIters);
  g_sink = acc;

  acc = 0.0;
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    acc += sys.component(comp_syms[i % kComponents])
               .property(prop_syms[i % kProps])
               .as_double();
  }
  out.symbol_path_ns = ns_per_op(t0, Clock::now(), kIters);
  g_sink = acc;
  return out;
}

// ---------------------------------------------------------------------------
// 2. Event schedule / cancel / drain
// ---------------------------------------------------------------------------

/// The pre-overhaul queue, verbatim in miniature: one heap-allocated
/// std::function and one shared_ptr<bool> control block per event.
class LegacyQueue {
 public:
  struct Handle {
    std::weak_ptr<bool> state;
    void cancel() {
      if (auto s = state.lock()) *s = true;
    }
  };

  Handle schedule(double at, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    Handle h{cancelled};
    queue_.push(Entry{at, seq_++, std::move(fn), std::move(cancelled)});
    return h;
  }

  std::uint64_t drain() {
    std::uint64_t ran = 0;
    while (!queue_.empty()) {
      Entry e = queue_.top();
      queue_.pop();
      if (*e.cancelled) continue;
      e.fn();
      ++ran;
    }
    return ran;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::uint64_t seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

struct EventBenchResult {
  double baseline_ns = 0.0;  ///< per scheduled event, legacy queue
  double current_ns = 0.0;   ///< per scheduled event, slot pool
};

EventBenchResult bench_events() {
  constexpr int kRounds = 200;
  constexpr int kEvents = 2'000;  // per round; a third get cancelled
  EventBenchResult out;

  // Capture shape representative of the codebase: two pointers + a time.
  std::uint64_t counter = 0;
  double when = 0.0;

  auto t0 = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    LegacyQueue q;
    std::vector<LegacyQueue::Handle> handles;
    handles.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      handles.push_back(q.schedule(
          static_cast<double>(i % 97), [&counter, &when, i] {
            ++counter;
            when += i;
          }));
    }
    for (int i = 0; i < kEvents; i += 3) handles[i].cancel();
    q.drain();
  }
  out.baseline_ns = ns_per_op(t0, Clock::now(),
                              std::uint64_t(kRounds) * kEvents);

  t0 = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      handles.push_back(sim.schedule_at(
          SimTime::seconds(static_cast<double>(i % 97)),
          [&counter, &when, i] {
            ++counter;
            when += i;
          }));
    }
    for (int i = 0; i < kEvents; i += 3) handles[i].cancel();
    sim.run_until(SimTime::seconds(100));
  }
  out.current_ns = ns_per_op(t0, Clock::now(),
                             std::uint64_t(kRounds) * kEvents);
  g_sink = static_cast<double>(counter) + when;
  return out;
}

// ---------------------------------------------------------------------------
// 3. Constraint sweep
// ---------------------------------------------------------------------------

struct SweepBenchResult {
  double full_ns = 0.0;         ///< per sweep, every constraint re-evaluated
  double incremental_ns = 0.0;  ///< per sweep, dirty-tracked
  std::uint64_t constraints = 0;
};

SweepBenchResult bench_constraint_sweep() {
  constexpr int kClients = 64;
  constexpr int kSweeps = 2'000;

  model::System sys("sweep");
  for (int c = 0; c < kClients; ++c) {
    auto& client = sys.add_component("User" + std::to_string(c), "ClientT");
    client.set_property("averageLatency", model::PropertyValue(0.5));
    client.set_property("maxLatency", model::PropertyValue(2.0));
  }
  repair::ConstraintChecker checker(sys);
  for (int c = 0; c < kClients; ++c) {
    checker.add_constraint("lat:User" + std::to_string(c),
                           "User" + std::to_string(c),
                           "averageLatency <= maxLatency", "fix");
  }
  std::vector<model::Component*> clients = sys.components();
  const util::Symbol lat = util::Symbol::intern("averageLatency");

  SweepBenchResult out;
  out.constraints = kClients;
  std::size_t violations = 0;

  // Gauge-report-like steady state: one element's property refreshed
  // between sweeps. Rebinding a global each sweep defeats the cache, which
  // is exactly the pre-overhaul behaviour (evaluate everything every tick).
  auto t0 = Clock::now();
  for (int s = 0; s < kSweeps; ++s) {
    clients[s % kClients]->set_property(lat, model::PropertyValue(0.5));
    checker.bind_global("force_full", acme::EvalValue(0.0));
    violations += checker.check().size();
  }
  out.full_ns = ns_per_op(t0, Clock::now(), kSweeps);

  t0 = Clock::now();
  for (int s = 0; s < kSweeps; ++s) {
    clients[s % kClients]->set_property(lat, model::PropertyValue(0.5));
    violations += checker.check().size();
  }
  out.incremental_ns = ns_per_op(t0, Clock::now(), kSweeps);
  g_sink = static_cast<double>(violations);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = arcadia::bench::output_path(argc, argv, "BENCH_hotpath.json");

  std::cout << "bench_hotpath: model lookup...\n";
  const ModelLookupResult lookup = bench_model_lookup();
  std::cout << "bench_hotpath: event schedule/cancel...\n";
  const EventBenchResult events = bench_events();
  std::cout << "bench_hotpath: constraint sweep...\n";
  const SweepBenchResult sweep = bench_constraint_sweep();

  const double lookup_speedup_symbol = lookup.baseline_ns / lookup.symbol_path_ns;
  const double lookup_speedup_string = lookup.baseline_ns / lookup.string_path_ns;
  const double event_speedup = events.baseline_ns / events.current_ns;
  const double sweep_speedup = sweep.full_ns / sweep.incremental_ns;

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"model_lookup\": {\n"
       << "    \"baseline_string_map_ns_per_lookup\": " << lookup.baseline_ns
       << ",\n"
       << "    \"string_overload_ns_per_lookup\": " << lookup.string_path_ns
       << ",\n"
       << "    \"symbol_ns_per_lookup\": " << lookup.symbol_path_ns << ",\n"
       << "    \"speedup_string_overload\": " << lookup_speedup_string << ",\n"
       << "    \"speedup_symbol\": " << lookup_speedup_symbol << "\n"
       << "  },\n"
       << "  \"event_schedule_cancel\": {\n"
       << "    \"baseline_ns_per_event\": " << events.baseline_ns << ",\n"
       << "    \"current_ns_per_event\": " << events.current_ns << ",\n"
       << "    \"speedup\": " << event_speedup << "\n"
       << "  },\n"
       << "  \"constraint_sweep\": {\n"
       << "    \"constraints\": " << sweep.constraints << ",\n"
       << "    \"full_sweep_ns\": " << sweep.full_ns << ",\n"
       << "    \"incremental_sweep_ns\": " << sweep.incremental_ns << ",\n"
       << "    \"speedup\": " << sweep_speedup << "\n"
       << "  }\n"
       << "}\n";
  json.close();

  std::cout << "\nmodel lookup:      " << lookup.baseline_ns
            << " ns (string std::map) -> " << lookup.symbol_path_ns
            << " ns (symbol), " << lookup_speedup_symbol << "x\n"
            << "                   string-overload path: "
            << lookup.string_path_ns << " ns, " << lookup_speedup_string
            << "x\n"
            << "event sched/cancel:" << events.baseline_ns
            << " ns (shared_ptr+std::function) -> " << events.current_ns
            << " ns (slot pool), " << event_speedup << "x\n"
            << "constraint sweep:  " << sweep.full_ns << " ns (full) -> "
            << sweep.incremental_ns << " ns (incremental), " << sweep_speedup
            << "x  [" << sweep.constraints << " constraints]\n"
            << "\nwrote " << out_path << "\n";

  // The acceptance gate: >= 2x on model lookup and event schedule/cancel.
  const bool pass = lookup_speedup_symbol >= 2.0 && event_speedup >= 2.0;
  if (!pass) {
    std::cout << "WARNING: speedup below the 2x acceptance threshold\n";
  }
  return pass ? 0 : 1;
}
