// Publish→filter→deliver→consume microbenchmarks for the monitoring bus
// path, with a recorded perf trajectory and a heap-allocation audit.
//
// Measures the overhauled pipeline against an in-bench re-implementation of
// the design it replaced (string topics, std::map attributes, O(subscribers)
// filter scan, per-publish snapshot vector, per-delivery notification copy),
// so every future run re-verifies the speedup instead of trusting a stale
// number:
//
//   local_publish   LocalEventBus publish+dispatch vs the legacy scan bus,
//                   on a fleet-shaped subscription table (4 probe topics x
//                   16 per-client subscriptions each)
//   sim_pipeline    SimEventBus delayed delivery (shared pooled payload,
//                   inline event captures) vs legacy per-delivery
//                   std::function copies through the same simulator
//   allocations     steady-state probe-path publishes counted against a
//                   global operator-new hook; the current path must be
//                   exactly zero per publish on both buses — and a
//                   reserved sim::Simulator (Simulator::reserve, sized the
//                   way scenario builds size it from ScenarioConfig) must
//                   schedule/run events with zero allocations and zero
//                   pool/queue growths at steady state
//
// Emits BENCH_buspath.json (cwd, or argv[1]) for CI artifact upload.
// Run Release: the numbers are meaningless under -O0.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "events/bus.hpp"
#include "monitor/topics.hpp"
#include "sim/simulator.hpp"
#include "util/symbol.hpp"

#include "bench_output.hpp"

// ---------------------------------------------------------------------------
// Counting allocation hook: every operator new in the binary bumps the
// counter. Good enough to prove "zero allocations per publish" — if the
// steady-state loop does not move the counter, nothing in it touched the
// heap.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs our malloc-backed operator new with the replaced operator
// delete just fine at runtime; the diagnostic only sees the free() call.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace arcadia;
using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point begin, Clock::time_point end,
                 std::uint64_t ops) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count();
  return static_cast<double>(ns) / static_cast<double>(ops ? ops : 1);
}

volatile double g_sink = 0.0;

// ---------------------------------------------------------------------------
// The legacy bus, verbatim in miniature: heap-keyed notification, linear
// subscriber scan, snapshot vector per publish.
// ---------------------------------------------------------------------------

struct LegacyNotification {
  std::string topic;
  std::map<std::string, events::Value> attributes;
};

struct LegacyFilter {
  std::string topic;  // exact, or prefix ending in '*', or "" = any
  std::vector<std::pair<std::string, events::Value>> eq_constraints;

  bool matches(const LegacyNotification& n) const {
    if (!topic.empty()) {
      if (topic.back() == '*') {
        const std::string prefix = topic.substr(0, topic.size() - 1);
        if (n.topic.compare(0, prefix.size(), prefix) != 0) return false;
      } else if (n.topic != topic) {
        return false;
      }
    }
    for (const auto& [name, want] : eq_constraints) {
      auto it = n.attributes.find(name);
      if (it == n.attributes.end() || !(it->second == want)) return false;
    }
    return true;
  }
};

using LegacyHandler = std::function<void(const LegacyNotification&)>;

class LegacyLocalBus {
 public:
  void subscribe(LegacyFilter filter, LegacyHandler handler) {
    subs_.push_back(Sub{std::move(filter),
                        std::make_shared<LegacyHandler>(std::move(handler))});
  }
  void publish(const LegacyNotification& n) {
    std::vector<std::shared_ptr<LegacyHandler>> targets;
    for (const Sub& s : subs_) {
      if (s.filter.matches(n)) targets.push_back(s.handler);
    }
    for (const auto& h : targets) (*h)(n);
  }

 private:
  struct Sub {
    LegacyFilter filter;
    std::shared_ptr<LegacyHandler> handler;
  };
  std::vector<Sub> subs_;
};

/// The legacy delayed bus: every matched delivery schedules a std::function
/// owning its own full copy of the notification.
class LegacySimBus {
 public:
  explicit LegacySimBus(sim::Simulator& sim) : sim_(sim) {}
  void subscribe(LegacyFilter filter, LegacyHandler handler) {
    subs_.push_back(Sub{std::move(filter),
                        std::make_shared<LegacyHandler>(std::move(handler)),
                        std::make_shared<bool>(true)});
  }
  void publish(const LegacyNotification& n, SimTime delay) {
    for (const Sub& s : subs_) {
      if (!s.filter.matches(n)) continue;
      // std::function-sized capture with an owned copy: one heap block for
      // the callable, one per attribute node, one per string.
      std::function<void()> deliver = [copy = n, handler = s.handler,
                                       alive = s.alive] {
        if (*alive) (*handler)(copy);
      };
      sim_.schedule_in(delay, std::move(deliver));
    }
  }

 private:
  struct Sub {
    LegacyFilter filter;
    std::shared_ptr<LegacyHandler> handler;
    std::shared_ptr<bool> alive;
  };
  sim::Simulator& sim_;
  std::vector<Sub> subs_;
};

// ---------------------------------------------------------------------------
// Fleet-shaped workload: 4 probe topics, 16 per-client subscriptions each
// (one gauge per client/group, Eq-constrained), probe notifications
// carrying (name, value) pairs that match exactly one gauge.
// ---------------------------------------------------------------------------

constexpr int kNames = 16;
const char* kTopics[4] = {"probe.latency", "probe.queue", "probe.bandwidth",
                          "probe.utilization"};

std::vector<std::string> make_names() {
  std::vector<std::string> names;
  for (int i = 0; i < kNames; ++i) names.push_back("User" + std::to_string(i));
  return names;
}

struct LocalPublishResult {
  double legacy_ns = 0.0;
  double current_ns = 0.0;
  std::uint64_t deliveries = 0;
};

LocalPublishResult bench_local_publish() {
  constexpr std::uint64_t kPublishes = 200'000;
  const std::vector<std::string> names = make_names();
  LocalPublishResult out;

  std::uint64_t legacy_hits = 0;
  LegacyLocalBus legacy;
  for (const char* topic : kTopics) {
    for (const std::string& name : names) {
      LegacyFilter f;
      f.topic = topic;
      f.eq_constraints.push_back({"client", events::Value(name)});
      legacy.subscribe(std::move(f), [&legacy_hits](const LegacyNotification& n) {
        legacy_hits += n.attributes.count("value");
      });
    }
  }
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kPublishes; ++i) {
    LegacyNotification n;
    n.topic = kTopics[i % 4];
    n.attributes["client"] = events::Value(names[i % kNames]);
    n.attributes["value"] = events::Value(static_cast<double>(i));
    legacy.publish(n);
  }
  out.legacy_ns = ns_per_op(t0, Clock::now(), kPublishes);

  std::uint64_t current_hits = 0;
  events::LocalEventBus bus;
  std::vector<util::Symbol> topic_syms;
  std::vector<util::Symbol> name_syms;
  for (const char* topic : kTopics) {
    topic_syms.push_back(util::Symbol::intern(topic));
  }
  for (const std::string& name : names) {
    name_syms.push_back(util::Symbol::intern(name));
  }
  const util::Symbol client_sym = util::Symbol::intern("client");
  const util::Symbol value_sym = util::Symbol::intern("value");
  for (util::Symbol topic : topic_syms) {
    for (util::Symbol name : name_syms) {
      bus.subscribe(events::Filter::topic(topic).where(
                        client_sym, events::Op::Eq, events::Value(name)),
                    [&current_hits, value_sym](const events::Notification& n) {
                      current_hits += n.get_if(value_sym) != nullptr;
                    });
    }
  }
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kPublishes; ++i) {
    events::Notification n(topic_syms[i % 4]);
    n.set(client_sym, name_syms[i % kNames])
        .set(value_sym, static_cast<double>(i));
    bus.publish(std::move(n));
  }
  out.current_ns = ns_per_op(t0, Clock::now(), kPublishes);

  if (legacy_hits != current_hits || legacy_hits != kPublishes) {
    std::cerr << "local_publish: routing mismatch (legacy " << legacy_hits
              << ", current " << current_hits << ")\n";
    std::exit(2);
  }
  out.deliveries = current_hits;
  g_sink = static_cast<double>(legacy_hits + current_hits);
  return out;
}

struct SimPipelineResult {
  double legacy_ns = 0.0;   ///< per delivery
  double current_ns = 0.0;  ///< per delivery
  int fanout = 0;
};

SimPipelineResult bench_sim_pipeline() {
  constexpr int kRounds = 200;
  constexpr int kPerRound = 500;
  constexpr int kFanout = 8;  // subscribers matched per publish
  SimPipelineResult out;
  out.fanout = kFanout;
  const SimTime delay = SimTime::millis(10);

  std::uint64_t legacy_hits = 0;
  auto t0 = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    sim::Simulator sim;
    LegacySimBus bus(sim);
    for (int s = 0; s < kFanout; ++s) {
      LegacyFilter f;
      f.topic = "gauge.report";
      bus.subscribe(std::move(f), [&legacy_hits](const LegacyNotification& n) {
        legacy_hits += n.attributes.count("value");
      });
    }
    for (int i = 0; i < kPerRound; ++i) {
      LegacyNotification n;
      n.topic = "gauge.report";
      n.attributes["element"] = events::Value(std::string("User3"));
      n.attributes["property"] = events::Value(std::string("averageLatency"));
      n.attributes["value"] = events::Value(static_cast<double>(i));
      bus.publish(n, delay);
    }
    sim.run_until(SimTime::seconds(10));
  }
  out.legacy_ns = ns_per_op(t0, Clock::now(),
                            std::uint64_t(kRounds) * kPerRound * kFanout);

  const util::Symbol element_sym = monitor::topics::kAttrElementSym;
  const util::Symbol property_sym = monitor::topics::kAttrPropertySym;
  const util::Symbol value_sym = monitor::topics::kAttrValueSym;
  const util::Symbol user_sym = util::Symbol::intern("User3");
  const util::Symbol latency_sym = util::Symbol::intern("averageLatency");
  std::uint64_t current_hits = 0;
  t0 = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    sim::Simulator sim;
    events::SimEventBus bus(sim, events::fixed_delay(delay));
    for (int s = 0; s < kFanout; ++s) {
      bus.subscribe(events::Filter::topic(monitor::topics::kGaugeReportSym),
                    [&current_hits, value_sym](const events::Notification& n) {
                      current_hits += n.get_if(value_sym) != nullptr;
                    });
    }
    for (int i = 0; i < kPerRound; ++i) {
      events::Notification n(monitor::topics::kGaugeReportSym);
      n.set(element_sym, user_sym)
          .set(property_sym, latency_sym)
          .set(value_sym, static_cast<double>(i));
      bus.publish(std::move(n));
    }
    sim.run_until(SimTime::seconds(10));
  }
  out.current_ns = ns_per_op(t0, Clock::now(),
                             std::uint64_t(kRounds) * kPerRound * kFanout);

  if (legacy_hits != current_hits) {
    std::cerr << "sim_pipeline: delivery mismatch (legacy " << legacy_hits
              << ", current " << current_hits << ")\n";
    std::exit(2);
  }
  g_sink = static_cast<double>(current_hits);
  return out;
}

struct AllocResult {
  double local_per_publish = 0.0;
  double sim_per_publish = 0.0;
  double legacy_local_per_publish = 0.0;
  double simulator_per_event = 0.0;
  std::uint64_t simulator_growths = 0;  ///< pool + queue growths, must be 0
};

AllocResult bench_allocations() {
  constexpr std::uint64_t kWarmup = 2'000;
  constexpr std::uint64_t kMeasured = 50'000;
  AllocResult out;
  const std::vector<std::string> names = make_names();
  const util::Symbol client_sym = util::Symbol::intern("client");
  const util::Symbol value_sym = util::Symbol::intern("value");
  const util::Symbol topic_sym = monitor::topics::kProbeLatencySym;
  const util::Symbol user_sym = util::Symbol::intern("User3");

  {  // current LocalEventBus, steady-state probe path
    events::LocalEventBus bus;
    double consumed = 0.0;
    bus.subscribe(events::Filter::topic(topic_sym).where(
                      client_sym, events::Op::Eq, events::Value(user_sym)),
                  [&consumed, value_sym](const events::Notification& n) {
                    consumed += n.get_if(value_sym)->as_double();
                  });
    auto publish_one = [&](std::uint64_t i) {
      events::Notification n(topic_sym);
      n.set(client_sym, user_sym).set(value_sym, static_cast<double>(i));
      bus.publish(std::move(n));
    };
    for (std::uint64_t i = 0; i < kWarmup; ++i) publish_one(i);
    const std::uint64_t before = g_alloc_count.load();
    for (std::uint64_t i = 0; i < kMeasured; ++i) publish_one(i);
    out.local_per_publish =
        static_cast<double>(g_alloc_count.load() - before) / kMeasured;
    g_sink = consumed;
  }

  {  // current SimEventBus, steady-state probe path (batches drained)
    sim::Simulator sim;
    events::SimEventBus bus(sim, events::fixed_delay(SimTime::millis(5)));
    double consumed = 0.0;
    bus.subscribe(events::Filter::topic(topic_sym),
                  [&consumed, value_sym](const events::Notification& n) {
                    consumed += n.get_if(value_sym)->as_double();
                  });
    auto round = [&](std::uint64_t base) {
      for (std::uint64_t i = 0; i < 100; ++i) {
        events::Notification n(topic_sym);
        n.set(client_sym, user_sym)
            .set(value_sym, static_cast<double>(base + i));
        bus.publish(std::move(n));
      }
      sim.run_until(sim.now() + SimTime::seconds(1));
    };
    for (std::uint64_t r = 0; r < kWarmup / 100; ++r) round(r);
    const std::uint64_t before = g_alloc_count.load();
    for (std::uint64_t r = 0; r < kMeasured / 100; ++r) round(r);
    out.sim_per_publish = static_cast<double>(g_alloc_count.load() - before) /
                          kMeasured;
    g_sink = consumed;
  }

  {  // legacy local bus, same workload, for contrast
    LegacyLocalBus bus;
    LegacyFilter f;
    f.topic = "probe.latency";
    f.eq_constraints.push_back({"client", events::Value(std::string("User3"))});
    double consumed = 0.0;
    bus.subscribe(std::move(f), [&consumed](const LegacyNotification& n) {
      consumed += n.attributes.find("value")->second.as_double();
    });
    auto publish_one = [&](std::uint64_t i) {
      LegacyNotification n;
      n.topic = "probe.latency";
      n.attributes["client"] = events::Value(std::string("User3"));
      n.attributes["value"] = events::Value(static_cast<double>(i));
      bus.publish(n);
    };
    for (std::uint64_t i = 0; i < kWarmup; ++i) publish_one(i);
    const std::uint64_t before = g_alloc_count.load();
    for (std::uint64_t i = 0; i < kMeasured; ++i) publish_one(i);
    out.legacy_local_per_publish =
        static_cast<double>(g_alloc_count.load() - before) / kMeasured;
    g_sink = consumed;
  }

  {  // reserved simulator: steady-state schedule/run churn
    // Simulator::reserve pre-sizes the slot pool and the event heap the
    // same way scenario builds do (sim::estimate_event_reserve); once the
    // pool is warm, the schedule -> fire -> recycle cycle must never touch
    // the heap or grow either arena.
    sim::Simulator sim;
    sim.reserve(256);
    std::uint64_t fired = 0;
    auto round = [&sim, &fired] {
      for (int i = 0; i < 128; ++i) {
        sim.schedule_in(SimTime::millis(1 + (i % 7)), [&fired] { ++fired; });
      }
      sim.run_until(sim.now() + SimTime::seconds(1));
    };
    for (std::uint64_t r = 0; r < kWarmup / 128; ++r) round();
    const std::uint64_t before = g_alloc_count.load();
    const std::uint64_t fired_before = fired;
    for (std::uint64_t r = 0; r < kMeasured / 128; ++r) round();
    out.simulator_per_event =
        static_cast<double>(g_alloc_count.load() - before) /
        static_cast<double>(fired - fired_before);
    out.simulator_growths = sim.pool_growths() + sim.queue_growths();
    g_sink = static_cast<double>(fired);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = arcadia::bench::output_path(argc, argv, "BENCH_buspath.json");

  std::cout << "bench_buspath: local publish/dispatch...\n";
  const LocalPublishResult local = bench_local_publish();
  std::cout << "bench_buspath: sim delayed pipeline...\n";
  const SimPipelineResult pipeline = bench_sim_pipeline();
  std::cout << "bench_buspath: allocation audit...\n";
  const AllocResult allocs = bench_allocations();

  const double local_speedup = local.legacy_ns / local.current_ns;
  const double sim_speedup = pipeline.legacy_ns / pipeline.current_ns;

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"local_publish\": {\n"
       << "    \"subscribers\": " << (kNames * 4) << ",\n"
       << "    \"legacy_scan_ns_per_publish\": " << local.legacy_ns << ",\n"
       << "    \"indexed_ns_per_publish\": " << local.current_ns << ",\n"
       << "    \"speedup\": " << local_speedup << "\n"
       << "  },\n"
       << "  \"sim_pipeline\": {\n"
       << "    \"fanout\": " << pipeline.fanout << ",\n"
       << "    \"legacy_copy_ns_per_delivery\": " << pipeline.legacy_ns
       << ",\n"
       << "    \"shared_payload_ns_per_delivery\": " << pipeline.current_ns
       << ",\n"
       << "    \"speedup\": " << sim_speedup << "\n"
       << "  },\n"
       << "  \"allocations_per_publish\": {\n"
       << "    \"local_steady_state\": " << allocs.local_per_publish << ",\n"
       << "    \"sim_steady_state\": " << allocs.sim_per_publish << ",\n"
       << "    \"legacy_local_steady_state\": "
       << allocs.legacy_local_per_publish << "\n"
       << "  },\n"
       << "  \"reserved_simulator\": {\n"
       << "    \"allocs_per_event\": " << allocs.simulator_per_event << ",\n"
       << "    \"arena_growths\": " << allocs.simulator_growths << "\n"
       << "  }\n"
       << "}\n";
  json.close();

  std::cout << "\nlocal publish:  " << local.legacy_ns
            << " ns (legacy scan) -> " << local.current_ns
            << " ns (indexed), " << local_speedup << "x  ["
            << (kNames * 4) << " subscribers]\n"
            << "sim pipeline:   " << pipeline.legacy_ns
            << " ns/delivery (copy) -> " << pipeline.current_ns
            << " ns/delivery (shared payload), " << sim_speedup << "x  [fanout "
            << pipeline.fanout << "]\n"
            << "allocs/publish: local " << allocs.local_per_publish << ", sim "
            << allocs.sim_per_publish << " (legacy "
            << allocs.legacy_local_per_publish << ")\n"
            << "reserved sim:   " << allocs.simulator_per_event
            << " allocs/event, " << allocs.simulator_growths
            << " arena growths\n"
            << "\nwrote " << out_path << "\n";

  // Acceptance gate: >= 2x on both paths, zero steady-state allocations —
  // including the reserved simulator's event churn (pool and heap pre-sized
  // by Simulator::reserve, never grown).
  const bool pass = local_speedup >= 2.0 && sim_speedup >= 2.0 &&
                    allocs.local_per_publish == 0.0 &&
                    allocs.sim_per_publish == 0.0 &&
                    allocs.simulator_per_event == 0.0 &&
                    allocs.simulator_growths == 0;
  if (!pass) {
    std::cout << "WARNING: below the acceptance floor (2x + zero allocs)\n";
  }
  return pass ? 0 : 1;
}
