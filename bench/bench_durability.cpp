// Durability overhead: the fleet-4x16 coordinated sweep with and without
// the shared journal plane. The durable cell pays for op-batch fsyncs,
// batched gauge deltas, and periodic snapshots; the claim (DESIGN.md §8)
// is that batching + dead-band folding keep the steady-state overhead
// under 5% of wall clock. Each rep starts from a wiped directory so the
// catchup-verification path (a recovery cost, not a steady-state one)
// never runs.
//
// Emits BENCH_durability.json (next to the binary, or argv[1]). Exit 1
// when the overhead at the largest tenant count exceeds the 5% budget
// (run Release on a quiet machine before trusting a failure).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/framework_builder.hpp"
#include "durability/io.hpp"
#include "durability/plane.hpp"
#include "sim/scenario_registry.hpp"

#include "bench_output.hpp"

namespace {

using namespace arcadia;
using Clock = std::chrono::steady_clock;

// Long enough that the plane's absolute wall (tens of ms) dwarfs scheduler
// noise on the in-run ratio; short enough for the CI bench lane.
constexpr double kHorizonS = 720.0;
// Plain/durable reps are interleaved and the minimum of each is compared:
// the absolute overhead is a few dozen milliseconds, so a load spike
// during one contiguous block would otherwise swamp the measurement.
constexpr int kReps = 5;

struct RunResult {
  double wall_s = 0.0;
  /// Wall-clock measured inside the durability plane's entry points
  /// (encode + buffer + write + fdatasync + snapshot I/O) during this run.
  double plane_wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t repairs = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_records = 0;
};

core::FleetOptions make_options(int tenants, const std::string& durable_dir) {
  core::FleetOptions opt;
  opt.scenario = "fleet-4x16";
  opt.tenants = tenants;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults("fleet-4x16");
  // The bench_fleet_scaling duty-cycle shape: staggered active windows,
  // hot enough that active tenants overload their groups and repair.
  opt.config.quiescent_end = SimTime::seconds(40);
  opt.config.normal_rate_hz = 2.5;
  opt.config.fleet.phase_shift = SimTime::seconds(30);
  opt.config.fleet.active_duration = SimTime::seconds(40);
  opt.framework.monitoring_qos = true;
  opt.framework.gauge_costs.report_period = SimTime::millis(250);
  opt.framework.check_period = SimTime::seconds(1);
  opt.manager.coalesce_window = SimTime::seconds(1);
  opt.manager.sweep_threads = 0;  // hardware concurrency
  opt.coordinated = true;
  opt.durability.dir = durable_dir;  // "" = plane disabled
  return opt;
}

RunResult run_once(int tenants, const std::string& durable_dir) {
  if (!durable_dir.empty()) {
    durability::ensure_dir(durable_dir);
    for (const std::string& name : durability::list_dir(durable_dir)) {
      durability::remove_file(durable_dir + "/" + name);
    }
  }
  sim::Simulator sim;
  auto fleet = core::FrameworkBuilder::build_fleet(
      sim, make_options(tenants, durable_dir));
  fleet->start();
  const auto t0 = Clock::now();
  sim.run_until(SimTime::seconds(kHorizonS));
  const auto t1 = Clock::now();

  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = sim.executed();
  for (std::size_t t = 0; t < fleet->tenant_count(); ++t) {
    r.repairs += fleet->tenant(t).framework->engine().records().size();
  }
  if (durability::DurabilityPlane* plane = fleet->durability_plane()) {
    r.plane_wall_s = plane->wall_s();
    r.journal_bytes = plane->journal_bytes();
    r.journal_records = plane->records_written();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      arcadia::bench::output_path(argc, argv, "BENCH_durability.json");
  const std::vector<int> tenant_counts = {4, 8};
  const std::string durable_dir = "bench-durability.durable";

  struct Row {
    int tenants;
    RunResult plain;
    RunResult durable;
    /// The gated metric: wall-clock measured INSIDE the plane over the
    /// durable run's total wall, minimized over reps. An in-run ratio is
    /// immune to the machine-load drift that makes back-to-back A/B wall
    /// comparisons swing ±20% at these sub-second run lengths; the A/B
    /// delta is still reported as context.
    double overhead = 0.0;
  };
  std::vector<Row> rows;
  for (int tenants : tenant_counts) {
    std::cout << "bench_durability: " << tenants << " tenants, " << kReps
              << " interleaved reps...\n";
    Row row{tenants, {}, {}, 0.0};
    for (int rep = 0; rep < kReps; ++rep) {
      RunResult plain = run_once(tenants, "");
      RunResult durable = run_once(tenants, durable_dir);
      const double ratio = durable.plane_wall_s / durable.wall_s;
      if (rep == 0 || plain.wall_s < row.plain.wall_s) row.plain = plain;
      if (rep == 0 || durable.wall_s < row.durable.wall_s) row.durable = durable;
      if (rep == 0 || ratio < row.overhead) row.overhead = ratio;
    }
    rows.push_back(row);
  }

  std::ofstream json(out_path);
  json << "{\n  \"horizon_sim_s\": " << kHorizonS << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double overhead = row.overhead;
    const double ab_overhead =
        (row.durable.wall_s - row.plain.wall_s) / row.plain.wall_s;
    json << "    {\n"
         << "      \"tenants\": " << row.tenants << ",\n"
         << "      \"plain_wall_s_per_sim_s\": " << row.plain.wall_s / kHorizonS
         << ",\n"
         << "      \"durable_wall_s_per_sim_s\": "
         << row.durable.wall_s / kHorizonS << ",\n"
         << "      \"journal_overhead_pct\": " << overhead * 100.0 << ",\n"
         << "      \"plane_wall_s\": " << row.durable.plane_wall_s << ",\n"
         << "      \"ab_overhead_pct\": " << ab_overhead * 100.0 << ",\n"
         << "      \"journal_bytes\": " << row.durable.journal_bytes << ",\n"
         << "      \"journal_records\": " << row.durable.journal_records
         << ",\n"
         << "      \"plain_events\": " << row.plain.events << ",\n"
         << "      \"durable_events\": " << row.durable.events << ",\n"
         << "      \"plain_repairs\": " << row.plain.repairs << ",\n"
         << "      \"durable_repairs\": " << row.durable.repairs << "\n"
         << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  bool pass = true;
  for (const Row& row : rows) {
    const double overhead = row.overhead;
    std::cout << row.tenants << " tenants: plain " << row.plain.wall_s
              << " s, durable " << row.durable.wall_s << " s, plane "
              << row.durable.plane_wall_s << " s inside (" << overhead * 100.0
              << "% measured overhead, " << row.durable.journal_bytes
              << " journal bytes, " << row.durable.journal_records
              << " records)\n";
    if (row.durable.repairs != row.plain.repairs) {
      std::cout << "WARNING: durable run changed repair count ("
                << row.durable.repairs << " vs " << row.plain.repairs
                << ") — journaling must be observation-only\n";
      pass = false;
    }
    if (row.tenants == tenant_counts.back() && overhead > 0.05) {
      std::cout << "WARNING: journal overhead " << overhead * 100.0
                << "% exceeds the 5% steady-state budget at "
                << row.tenants << " tenants\n";
      pass = false;
    }
  }
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
