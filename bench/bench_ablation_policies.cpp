// Repair-policy ablations (Sections 5.3 and 7):
//   * violation choice: first-reported (the paper's experiment) vs
//     worst-client-first (its proposed smarter scheme);
//   * damping on/off: the paper observed oscillation (clients moving back
//     and forth) and noted that repairs take time to show effect — the
//     settle/cooldown machinery is the fix;
//   * strategy authoring: interpreted Figure 5 script vs native C++;
//   * Figure 5 strict script vs the extended script with the load-shedding
//     move tactic.
//
// All configurations fan out across an ExperimentSuite (one simulator per
// run, every core busy) and print in queue order.
#include <iomanip>
#include <iostream>
#include <map>

#include "acme/script.hpp"
#include "core/suite.hpp"
#include "paper_experiment.hpp"

namespace {

using namespace arcadia;

struct Row {
  std::string name;
  double frac_above = 0.0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t moves = 0;
  std::uint64_t added = 0;
  int oscillations = 0;  ///< client move-backs (A->B then back to A)
};

Row summarize(const core::SuiteOutcome& outcome) {
  const core::ExperimentResult& r = outcome.result;
  Row row;
  row.name = outcome.label;
  row.frac_above = r.mean_fraction_above();
  row.committed = r.repair_stats.committed;
  row.aborted = r.repair_stats.aborted;
  row.moves = r.repair_stats.moves;
  row.added = r.repair_stats.servers_added;
  // Count oscillations: a client moved to a group it had left before.
  std::map<std::string, std::vector<std::string>> history;
  for (const auto& rec : r.repairs) {
    if (!rec.committed || rec.moves == 0) continue;
    for (const auto& op : rec.ops) {
      auto pos = op.find("boundTo = ");
      if (pos == std::string::npos) continue;
      std::string group = op.substr(pos + 10);
      auto& h = history[rec.element];
      for (const auto& prev : h) {
        if (prev == group) {
          ++row.oscillations;
          break;
        }
      }
      h.push_back(group);
    }
  }
  return row;
}

void print(const Row& row) {
  std::cout << std::left << std::setw(30) << row.name << std::setw(11)
            << row.frac_above << std::setw(11) << row.committed
            << std::setw(10) << row.aborted << std::setw(8) << row.moves
            << std::setw(9) << row.added << row.oscillations << "\n";
}

core::ExperimentOptions tweaked(
    const std::function<void(core::ExperimentOptions&)>& tweak) {
  core::ExperimentOptions opt = core::options_for(bench::kPaperScenario);
  opt.adaptation = true;
  tweak(opt);
  return opt;
}

}  // namespace

int main() {
  std::cout << "=== Repair policy ablations (1800 s paper scenario) ===\n\n";

  core::ExperimentSuite suite;
  suite.add("first-reported (paper)",
            tweaked([](core::ExperimentOptions&) {}));
  suite.add("worst-client-first", tweaked([](core::ExperimentOptions& o) {
              o.framework.policy_name = "worst-first";
            }));
  suite.add("damping off", tweaked([](core::ExperimentOptions& o) {
              o.framework.damping = false;
            }));
  suite.add("native C++ strategies", tweaked([](core::ExperimentOptions& o) {
              o.framework.use_script = false;
            }));
  suite.add("figure-5 strict script", tweaked([](core::ExperimentOptions& o) {
              o.framework.script_source = acme::figure5_script();
            }));
  suite.add("no adaptation thresholds x2",
            tweaked([](core::ExperimentOptions& o) {
              // Looser profile: is the 2 s bound load-bearing?
              o.framework.profile.max_latency = SimTime::seconds(4);
              o.scenario.thresholds.max_latency = SimTime::seconds(4);
            }));
  // Heavier stress leaves both groups marginal even after the spares are
  // recruited — the regime where the paper observed clients "moving back
  // and forth between server groups".
  auto heavy = [](core::ExperimentOptions& o) {
    o.scenario.stress_rate_hz = 2.6;
  };
  suite.add("heavy stress, damped", tweaked(heavy));
  suite.add("heavy stress, damping off",
            tweaked([&](core::ExperimentOptions& o) {
              heavy(o);
              o.framework.damping = false;
            }));

  std::vector<core::SuiteOutcome> outcomes = suite.run();

  std::cout << std::left << std::setw(30) << "configuration" << std::setw(11)
            << "frac>2s" << std::setw(11) << "committed" << std::setw(10)
            << "aborted" << std::setw(8) << "moves" << std::setw(9)
            << "+servers" << "move-backs\n";
  for (const core::SuiteOutcome& outcome : outcomes) {
    if (!outcome.ok()) {
      std::cout << outcome.label << ": FAILED: " << outcome.error << "\n";
      continue;
    }
    print(summarize(outcome));
  }

  std::cout << "\nnotes: the figure-5 strict script lacks the load-shedding "
               "move, so once both\nspares are active further load "
               "violations abort (the paper instead observed\nmoves and "
               "oscillation); damping off reproduces repeated repairs on "
               "stale gauge\nreadings.\n";
  return 0;
}
