// Figure 13: server load under repair. Paper shape: "the only time that
// the server load rises above the constrained value is when we stress the
// servers" — and during the stress the framework recruits the two spare
// servers (paper: at ~700 s and ~800 s) and then falls back to moving
// clients.
#include <iostream>

#include "paper_experiment.hpp"

int main() {
  using namespace arcadia;
  core::ExperimentResult r = bench::run_paper_experiment(/*adaptation=*/true);
  bench::print_header("Figure 13", "server load under repair (queue length)", r);
  core::print_load_figure(std::cout, r, SimTime::seconds(60));
  bench::print_repair_marks(r);

  std::cout << "\n# shape checks vs the paper\n";
  double outside = 0.0;
  double inside = 0.0;
  for (const auto& g : r.groups) {
    outside = std::max(outside,
                       std::max(g.queue_length.max_over(SimTime::zero(),
                                                        SimTime::seconds(595)),
                                g.queue_length.max_over(SimTime::seconds(1300),
                                                        r.horizon)));
    inside = std::max(inside, g.queue_length.max_over(SimTime::seconds(600),
                                                      SimTime::seconds(1300)));
  }
  std::cout << "max queue outside the stress window: " << outside
            << " (paper: stays under the limit of 6)\n";
  std::cout << "max queue during stress: " << inside
            << " (paper: exceeds the limit only here)\n";
  std::cout << "server activations:\n";
  for (const auto& ev : r.server_events) {
    std::cout << "  " << ev.time.as_seconds() << " s: " << ev.server << " "
              << (ev.active ? "activated" : "deactivated")
              << (ev.active ? "  (paper: spares at ~700 s and ~800 s)" : "")
              << "\n";
  }
  std::cout << "servers added: " << r.repair_stats.servers_added
            << ", clients moved: " << r.repair_stats.moves
            << ", servers released after recovery: "
            << r.repair_stats.servers_removed << "\n";
  return 0;
}
