// Section 5.3 repair-time analysis: "The time that it takes to effect a
// repair averages 30 seconds. Most of this time is spent in communicating
// to create and delete gauges. Improving this time by caching gauges or
// relocating them ... should see our repair speed improve dramatically."
//
// Three configurations:
//   baseline        destroy+create gauges, Remos pre-queried (as the paper ran)
//   gauge caching   relocate cached gauges (the paper's proposed fix)
//   no prequery     cold Remos on the first repair (the pitfall the paper
//                   worked around by pre-querying)
#include <iomanip>
#include <iostream>

#include "core/experiment.hpp"
#include "paper_experiment.hpp"
#include "util/stats.hpp"

namespace {

using namespace arcadia;

struct Row {
  std::string name;
  double mean_s = 0.0;
  double max_s = 0.0;
  double gauge_share = 0.0;
  double query_share = 0.0;
  std::size_t repairs = 0;
  double fraction_above = 0.0;
};

Row measure(const std::string& name, bool caching, bool prequery) {
  core::ExperimentOptions opt = core::options_for(bench::kPaperScenario);
  opt.adaptation = true;
  opt.framework.gauge_caching = caching;
  opt.framework.remos_prequery = prequery;
  core::ExperimentResult r = core::run_experiment(opt);
  Row row;
  row.name = name;
  SampleSet durations;
  double gauge = 0.0;
  double query = 0.0;
  double total = 0.0;
  for (const auto& rec : r.repairs) {
    if (!rec.committed || !rec.finished) continue;
    durations.add(rec.duration().as_seconds());
    gauge += rec.gauge_cost.as_seconds();
    query += rec.query_cost.as_seconds();
    total += rec.duration().as_seconds();
  }
  row.repairs = durations.count();
  row.mean_s = durations.mean();
  row.max_s = durations.max();
  row.gauge_share = total > 0 ? gauge / total : 0.0;
  row.query_share = total > 0 ? query / total : 0.0;
  row.fraction_above = r.mean_fraction_above();
  return row;
}

}  // namespace

int main() {
  std::cout << "=== Section 5.3: repair time breakdown and ablations ===\n\n";
  std::cout << std::left << std::setw(26) << "configuration" << std::setw(10)
            << "repairs" << std::setw(12) << "mean (s)" << std::setw(11)
            << "max (s)" << std::setw(14) << "gauge share" << std::setw(14)
            << "query share" << "frac >2s\n";
  for (const Row& row :
       {measure("baseline (paper)", false, true),
        measure("gauge caching", true, true),
        measure("no remos prequery", false, false)}) {
    std::cout << std::left << std::setw(26) << row.name << std::setw(10)
              << row.repairs << std::setw(12) << row.mean_s << std::setw(11)
              << row.max_s << std::setw(14) << row.gauge_share << std::setw(14)
              << row.query_share << row.fraction_above << "\n";
  }
  std::cout << "\npaper: repairs average ~30 s, dominated by gauge "
               "create/delete; caching should\nimprove repair speed "
               "\"dramatically\"; the first Remos query takes minutes "
               "unless\npre-queried.\n";
  return 0;
}
