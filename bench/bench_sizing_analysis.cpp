// Section 5's design-time analysis: "Given these inputs, we calculated
// that an initial starting point of 3 replicated servers in one server
// group would be sufficient to serve our six clients, and that the
// bandwidth between the clients and servers should not be less than
// 10Kbps." Reproduces the queuing analysis and validates it against the
// simulator (runs the validation sweep in parallel).
#include <iomanip>
#include <iostream>
#include <mutex>

#include "sim/scenario_registry.hpp"
#include "task/task.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arcadia;

/// Simulated mean queue wait for `servers` servers at the paper's normal
/// load (six clients at 1 req/s, 10 KB mean responses).
double simulated_wait(int servers, std::uint64_t seed) {
  sim::Simulator sim;
  sim::ScenarioConfig cfg = sim::scenario_defaults("paper-fig6");
  cfg.seed = seed;
  cfg.horizon = SimTime::seconds(600);
  // Flat workload: no competition, no stress.
  cfg.quiescent_end = SimTime::seconds(1);
  cfg.stress_start = cfg.horizon;
  cfg.stress_end = cfg.horizon;
  cfg.comp_sg1_phase1_mbps = 0.0;
  cfg.comp_sg2_phase1_mbps = 0.0;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6", cfg);
  // Trim or grow SG1 to the requested replica count.
  auto active = tb.app->active_servers(tb.sg1);
  for (std::size_t i = static_cast<std::size_t>(servers); i < active.size();
       ++i) {
    tb.app->deactivate_server(active[i]);
  }
  if (servers == 4) {
    tb.app->connect_server(tb.spare_s4, tb.sg1);
    tb.app->activate_server(tb.spare_s4);
  }
  double wait_sum = 0.0;
  std::uint64_t count = 0;
  tb.app->on_response = [&](const sim::Request& r) {
    wait_sum += r.queue_wait().as_seconds();
    ++count;
  };
  tb.start();
  sim.run_until(cfg.horizon);
  return count ? wait_sum / static_cast<double>(count) : -1.0;
}

}  // namespace

int main() {
  std::cout << "=== Section 5: design-time sizing analysis (M/M/c) ===\n\n";

  // The design point: 6 req/s aggregate, ~0.25 s service at the normal
  // 10 KB response (0.05 s base + 0.02 s/KB).
  const double service_s = 0.05 + 0.02 * 10;
  std::cout << "inputs: 6 clients x 1 req/s, mean service " << service_s
            << " s, response 10 KB (design point 20 KB => " << 0.05 + 0.02 * 20
            << " s)\n\n";

  std::cout << std::left << std::setw(9) << "servers" << std::setw(10)
            << "rho" << std::setw(12) << "ErlangC" << std::setw(16)
            << "Wq predicted" << "Wq simulated\n";

  // Parallel validation sweep: one simulator per (servers, seed) pair.
  ThreadPool pool;
  std::mutex mu;
  std::map<int, double> simulated;
  std::vector<int> server_counts{3, 4};
  pool.parallel_for(server_counts.size() * 3, [&](std::size_t i) {
    int servers = server_counts[i / 3];
    double w = simulated_wait(servers, 100 + i % 3);
    std::lock_guard lock(mu);
    auto [it, inserted] = simulated.try_emplace(servers, 0.0);
    it->second += w / 3.0;
  });

  const double lambda = 6.0;
  const double mu_rate = 1.0 / service_s;
  for (int c = 1; c <= 5; ++c) {
    const double a = lambda / mu_rate;
    const double rho = a / c;
    const double pc = task::erlang_c(c, a);
    const double wq = rho < 1.0 ? pc / (c * mu_rate - lambda) : -1.0;
    std::cout << std::left << std::setw(9) << c << std::setw(10) << rho
              << std::setw(12) << pc << std::setw(16) << wq;
    if (simulated.count(c)) {
      std::cout << simulated[c];
    } else {
      std::cout << (rho >= 1.0 ? "unstable" : "-");
    }
    std::cout << "\n";
  }

  task::SizingInput input;
  input.arrival_rate_hz = 6.0;
  input.service_time_s = 0.4;  // the 20 KB design point
  input.target_wait_s = 0.5;
  task::SizingResult r = task::size_server_group(input);
  std::cout << "\nsizing at the 20 KB design point (0.4 s service): "
            << r.servers << " servers (paper: 3)\n";

  Bandwidth floor = task::min_bandwidth_for(DataSize::kilobytes(20),
                                            SimTime::seconds(16.384));
  std::cout << "bandwidth floor for 20 KB responses: " << floor.as_kbps()
            << " Kbps (paper threshold: 10 Kbps)\n";
  return 0;
}
