// Table 1: the environment manager's operators and queries. Exercises each
// operator against the simulated runtime and reports its modeled cost (the
// RMI round trip / Remos collection delay the paper's implementation paid)
// together with its observed effect.
#include <iomanip>
#include <iostream>

#include "remos/remos.hpp"
#include "runtime/environment.hpp"
#include "sim/scenario_registry.hpp"

int main() {
  using namespace arcadia;
  sim::Simulator sim;
  sim::Testbed tb = sim::build_scenario(sim, "paper-fig6");
  remos::RemosService remos(sim, *tb.net);
  rt::SimEnvironmentManager env(*tb.app, *tb.topo, remos);

  std::cout << "=== Table 1: environment manager operators and queries ===\n\n";
  std::cout << std::left << std::setw(44) << "operator" << std::setw(14)
            << "cost (s)" << "effect\n";

  auto row = [&](const std::string& name, SimTime cost,
                 const std::string& effect) {
    std::cout << std::left << std::setw(44) << name << std::setw(14)
              << cost.as_seconds() << effect << "\n";
  };

  env.createReqQueue("ServerGrp3");
  row("createReqQueue()", env.last_op_cost(),
      "added logical request queue ServerGrp3");

  auto spare = env.findServer("User1", Bandwidth::kbps(10));
  row("findServer(cli_ip, bw_thresh)", env.last_op_cost(),
      "found spare " + (spare ? *spare : std::string("<none>")) +
          " (cold Remos per spare)");

  auto spare2 = env.findServer("User1", Bandwidth::kbps(10));
  row("findServer(cli_ip, bw_thresh) [warm]", env.last_op_cost(),
      "found spare " + (spare2 ? *spare2 : std::string("<none>")) +
          " (cached Remos)");

  env.moveClient("User3", "ServerGrp2");
  row("moveClient(ReqQ newQ)", env.last_op_cost(),
      "User3 now pulls from ServerGrp2's queue");

  env.connectServer("Server4", "ServerGrp1");
  row("connectServer(Server srv, ReqQ to)", env.last_op_cost(),
      "Server4 configured to pull from ServerGrp1");

  env.activateServer("Server4");
  row("activateServer()", env.last_op_cost(),
      "Server4 pulling requests (RMI + process start)");

  env.deactivateServer("Server4");
  row("deactivateServer()", env.last_op_cost(),
      "Server4 stopped pulling requests");

  Bandwidth cold = env.remos_get_flow("m_s6", "m_c56");
  row("remos_get_flow(clIP, svIP) [first]", env.last_op_cost(),
      "predicted " + std::to_string(cold.as_mbps()) +
          " Mbps (collection takes minutes — Section 5.3)");

  Bandwidth warm = env.remos_get_flow("m_s6", "m_c56");
  row("remos_get_flow(clIP, svIP) [cached]", env.last_op_cost(),
      "predicted " + std::to_string(warm.as_mbps()) +
          " Mbps (pre-querying avoids the first-call cost)");

  std::cout << "\nops=" << env.stats().ops << " queries=" << env.stats().queries
            << " moves=" << env.stats().moves
            << " activations=" << env.stats().activations << "\n";
  return 0;
}
