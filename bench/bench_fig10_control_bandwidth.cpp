// Figure 10: available bandwidth in the control run. Paper shape: the
// C3/C4 paths collapse by orders of magnitude (bottoming out around
// 0.0001 Mbps on the log axis) and never recover; the dashed line at
// 10 Kbps (0.01 Mbps) is the bandwidth-repair threshold.
#include <iostream>

#include "paper_experiment.hpp"

int main() {
  using namespace arcadia;
  core::ExperimentResult r = bench::run_paper_experiment(/*adaptation=*/false);
  bench::print_header("Figure 10", "available bandwidth in control (Mbps)", r);
  core::print_bandwidth_figure(std::cout, r, SimTime::seconds(60));

  std::cout << "\n# shape checks vs the paper\n";
  const core::ClientSeries* c3 = r.client("User3");
  const core::ClientSeries* c1 = r.client("User1");
  double c3_before = c3->bandwidth_mbps.mean_over(SimTime::seconds(10),
                                                  SimTime::seconds(115));
  double c3_during = c3->bandwidth_mbps.min_over(SimTime::seconds(130),
                                                 SimTime::seconds(590));
  std::cout << "C3 available bandwidth: quiescent " << c3_before
            << " Mbps -> competition floor " << c3_during
            << " Mbps (drop of "
            << (c3_during > 0 ? c3_before / c3_during : 0) << "x)\n";
  std::cout << "C1 (unthrottled path) stays at "
            << c1->bandwidth_mbps.mean_over(SimTime::seconds(130),
                                            SimTime::seconds(590))
            << " Mbps\n";
  std::cout << "threshold line: 0.01 Mbps (10 Kbps)\n";
  return 0;
}
