// Default output location for bench JSON artifacts: next to the bench
// executable (the build directory), never the source tree — a bench run
// from the repo root must not litter it with BENCH_*.json files. An
// explicit argv[1] always wins.
#pragma once

#include <string>

namespace arcadia::bench {

inline std::string default_output_path(const char* argv0,
                                       const char* filename) {
  const std::string self = argv0 ? argv0 : "";
  const auto slash = self.find_last_of('/');
  if (slash == std::string::npos) return filename;  // PATH lookup: use cwd
  return self.substr(0, slash + 1) + filename;
}

inline std::string output_path(int argc, char** argv, const char* filename) {
  return argc > 1 ? argv[1] : default_output_path(argv[0], filename);
}

}  // namespace arcadia::bench
