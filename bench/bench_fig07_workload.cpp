// Figure 7: the stepping functions used for generating bandwidth
// competition and server load. Prints the schedules as the paper draws
// them and validates their integrals (total offered work).
#include <iostream>

#include "sim/scenario_registry.hpp"
#include "util/step_function.hpp"

int main() {
  using namespace arcadia;
  sim::ScenarioConfig cfg = sim::scenario_defaults("paper-fig6");

  std::cout << "=== Figure 7: bandwidth and server load generation ===\n\n";

  StepFunction comp_sg1(0.0);
  comp_sg1.step(cfg.quiescent_end, cfg.comp_sg1_phase1_mbps);
  comp_sg1.step(cfg.stress_start, cfg.comp_sg1_stress_mbps);
  comp_sg1.step(cfg.stress_end, cfg.comp_sg1_final_mbps);

  StepFunction comp_sg2(0.0);
  comp_sg2.step(cfg.quiescent_end, cfg.comp_sg2_phase1_mbps);
  comp_sg2.step(cfg.stress_start, cfg.comp_sg2_stress_mbps);
  comp_sg2.step(cfg.stress_end, cfg.comp_sg2_final_mbps);

  StepFunction rate(cfg.normal_rate_hz);
  rate.step(cfg.stress_start, cfg.stress_rate_hz);
  rate.step(cfg.stress_end, cfg.normal_rate_hz);

  StepFunction size_kb(cfg.normal_response_mean.as_kilobytes());
  size_kb.step(cfg.stress_start, cfg.stress_response_size.as_kilobytes());
  size_kb.step(cfg.stress_end, cfg.normal_response_mean.as_kilobytes());

  std::cout << "time_s  comp_C34_SG1_Mbps  comp_C34_SG2_Mbps  "
               "req_rate_per_client_hz  resp_size_KB\n";
  for (double t = 0; t <= cfg.horizon.as_seconds(); t += 60) {
    SimTime st = SimTime::seconds(t);
    std::cout << t << "  " << comp_sg1.value_at(st) << "  "
              << comp_sg2.value_at(st) << "  " << rate.value_at(st) << "  "
              << size_kb.value_at(st) << "\n";
  }

  std::cout << "\n# phase summary (paper: 2 min quiescent; 8 min bandwidth "
               "competition\n# against C3&4<->SG1; 10 min 20KB@2/s stress; "
               "10 min recovery with\n# better bandwidth to SG2)\n";
  std::cout << "quiescent until " << cfg.quiescent_end.as_seconds()
            << " s; stress " << cfg.stress_start.as_seconds() << ".."
            << cfg.stress_end.as_seconds() << " s\n";

  const double offered_requests =
      rate.integrate(SimTime::zero(), cfg.horizon) * 6.0;  // six clients
  std::cout << "total offered requests (expected): " << offered_requests
            << "\n";
  const double comp_volume_gbit =
      comp_sg1.integrate(SimTime::zero(), cfg.horizon) / 1e3;
  std::cout << "competition volume on the SG1 trunk: " << comp_volume_gbit
            << " Gbit\n";
  return 0;
}
