// Figure 9: server load (queue length) for the control run. Paper shape:
// the queue grows into the hundreds/thousands during the stress phase and
// has barely begun draining by 1800 s. The dashed line at 6 requests is
// the overload threshold used by the server repair tactic.
#include <iostream>

#include "paper_experiment.hpp"

int main() {
  using namespace arcadia;
  core::ExperimentResult r = bench::run_paper_experiment(/*adaptation=*/false);
  bench::print_header("Figure 9", "server load for control (queue length)", r);
  core::print_load_figure(std::cout, r, SimTime::seconds(60));

  std::cout << "\n# shape checks vs the paper\n";
  const core::GroupSeries* sg1 = r.group("ServerGrp1");
  std::cout << "max queue length: " << r.max_queue_length()
            << " (paper: grows to ~10^3)\n";
  std::cout << "SG1 queue at 1200 s: "
            << sg1->queue_length.value_at(SimTime::seconds(1200))
            << ", at 1800 s: "
            << sg1->queue_length.value_at(SimTime::seconds(1798))
            << " (draining only at the very end)\n";
  std::cout << "first time above the limit of 6: "
            << sg1->queue_length.first_crossing(6.0).as_seconds() << " s\n";
  return 0;
}
