// Fault convergence: the failure-aware adaptation loop under a sweep of
// monitoring/repair fault intensities on the lossy-grid scenario. Two
// claims are measured per intensity:
//
//   1. Convergence — despite dropped/delayed/duplicated reports, gauge
//      channel disconnects, and transiently failing runtime operators, the
//      loop ends the run with the model and runtime in lockstep (zero
//      consistency issues) and repairs still committing.
//   2. Replayability — the same (workload seed, fault seed) pair produces
//      a bit-identical run: identical event counts, identical injection
//      counters, identical repair sequence. Fault grids are debuggable
//      only if a crashing cell can be replayed exactly.
//
// Emits BENCH_fault.json (cwd, or argv[1]). Exit 1 when any intensity
// breaks convergence or replay (run Release before trusting a failure).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/scenario_registry.hpp"

#include "bench_output.hpp"

namespace {

using namespace arcadia;
using Clock = std::chrono::steady_clock;

// Covers the grid scenario's stress window (600-900 s): repairs must fire
// for the repair-seam faults to have anything to bite.
constexpr double kHorizonS = 900.0;

struct CellResult {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t responses = 0;
  // Injected.
  std::uint64_t reports_dropped = 0;
  std::uint64_t reports_delayed = 0;
  std::uint64_t reports_duplicated = 0;
  std::uint64_t reports_suppressed = 0;
  std::uint64_t channel_disconnects = 0;
  std::uint64_t ops_transient = 0;
  // Absorbed.
  std::uint64_t repairs_committed = 0;
  std::uint64_t repairs_aborted = 0;
  std::uint64_t repairs_retried = 0;
  std::uint64_t ops_retried = 0;
  std::uint64_t ops_timed_out = 0;
  std::uint64_t suspects_marked = 0;
  std::uint64_t verdict_holds = 0;
  // Outcome quality.
  double mean_fraction_above = 0.0;
  std::size_t consistency_issues = 0;
  // Replay fingerprint: everything above except wall_s, plus the repair
  // sequence, folded into one comparable string.
  std::string fingerprint;
};

CellResult run_cell(double intensity, std::uint64_t fault_seed) {
  core::ExperimentOptions opt = core::options_for("lossy-grid");
  opt.scenario.horizon = SimTime::seconds(kHorizonS);
  opt.scenario.fault.seed = fault_seed;
  // Scale every monitoring/repair knob with the intensity; intensity 0.10
  // reproduces the registered lossy-grid profile.
  opt.scenario.fault.enabled = true;
  opt.scenario.fault.monitoring.report_loss = intensity;
  opt.scenario.fault.monitoring.report_dup = intensity / 5.0;
  opt.scenario.fault.monitoring.report_delay = intensity / 2.0;
  opt.scenario.fault.monitoring.channel_disconnect = intensity / 50.0;
  opt.scenario.fault.repair.op_transient = intensity;

  const auto t0 = Clock::now();
  const core::ExperimentResult r = core::run_experiment(opt);
  const auto t1 = Clock::now();

  CellResult c;
  c.wall_s = std::chrono::duration<double>(t1 - t0).count();
  c.events = r.sim_events;
  c.responses = r.responses_completed;
  c.reports_dropped = r.fault_stats.reports_dropped;
  c.reports_delayed = r.fault_stats.reports_delayed;
  c.reports_duplicated = r.fault_stats.reports_duplicated;
  c.reports_suppressed = r.fault_stats.reports_suppressed;
  c.channel_disconnects = r.fault_stats.channel_disconnects;
  c.ops_transient = r.fault_stats.ops_transient;
  c.repairs_committed = r.repair_stats.committed;
  c.repairs_aborted = r.repair_stats.aborted;
  c.repairs_retried = r.repair_stats.repairs_retried;
  c.ops_retried = r.repair_stats.ops_retried;
  c.ops_timed_out = r.repair_stats.ops_timed_out;
  c.suspects_marked = r.gauge_stats.suspects_marked;
  c.verdict_holds = r.verdict_holds;
  c.mean_fraction_above = r.mean_fraction_above();
  c.consistency_issues = r.consistency_issues.size();

  std::string fp = std::to_string(c.events) + "|" +
                   std::to_string(c.responses) + "|" +
                   std::to_string(c.reports_dropped) + "|" +
                   std::to_string(c.ops_transient) + "|" +
                   std::to_string(c.ops_retried);
  for (const repair::RepairRecord& rec : r.repairs) {
    fp += "|" + rec.strategy + ":" + rec.element + "@" +
          std::to_string(rec.started.as_seconds());
  }
  c.fingerprint = fp;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      arcadia::bench::output_path(argc, argv, "BENCH_fault.json");
  const std::vector<double> intensities = {0.0, 0.05, 0.10, 0.20};

  struct Row {
    double intensity;
    CellResult cell;
    bool replay_identical;
  };
  std::vector<Row> rows;
  for (double intensity : intensities) {
    std::cout << "bench_fault_convergence: intensity " << intensity << "...\n";
    CellResult a = run_cell(intensity, 0xFA117C0DEULL);
    CellResult b = run_cell(intensity, 0xFA117C0DEULL);
    rows.push_back({intensity, a, a.fingerprint == b.fingerprint});
  }

  std::ofstream json(out_path);
  json << "{\n  \"horizon_sim_s\": " << kHorizonS << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const CellResult& c = row.cell;
    json << "    {\n"
         << "      \"intensity\": " << row.intensity << ",\n"
         << "      \"wall_s\": " << c.wall_s << ",\n"
         << "      \"events\": " << c.events << ",\n"
         << "      \"responses\": " << c.responses << ",\n"
         << "      \"reports_dropped\": " << c.reports_dropped << ",\n"
         << "      \"reports_delayed\": " << c.reports_delayed << ",\n"
         << "      \"reports_duplicated\": " << c.reports_duplicated << ",\n"
         << "      \"reports_suppressed\": " << c.reports_suppressed << ",\n"
         << "      \"channel_disconnects\": " << c.channel_disconnects << ",\n"
         << "      \"ops_transient\": " << c.ops_transient << ",\n"
         << "      \"repairs_committed\": " << c.repairs_committed << ",\n"
         << "      \"repairs_aborted\": " << c.repairs_aborted << ",\n"
         << "      \"repairs_retried\": " << c.repairs_retried << ",\n"
         << "      \"ops_retried\": " << c.ops_retried << ",\n"
         << "      \"ops_timed_out\": " << c.ops_timed_out << ",\n"
         << "      \"suspects_marked\": " << c.suspects_marked << ",\n"
         << "      \"verdict_holds\": " << c.verdict_holds << ",\n"
         << "      \"mean_fraction_above\": " << c.mean_fraction_above << ",\n"
         << "      \"consistency_issues\": " << c.consistency_issues << ",\n"
         << "      \"replay_identical\": "
         << (row.replay_identical ? "true" : "false") << "\n"
         << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  bool pass = true;
  for (const Row& row : rows) {
    const CellResult& c = row.cell;
    std::cout << "intensity " << row.intensity << ": dropped "
              << c.reports_dropped << ", op faults " << c.ops_transient
              << " -> retries " << c.ops_retried << ", repairs "
              << c.repairs_committed << " committed / " << c.repairs_aborted
              << " aborted, holds " << c.verdict_holds
              << ", latency-above " << c.mean_fraction_above
              << (row.replay_identical ? "" : "  REPLAY MISMATCH")
              << (c.consistency_issues ? "  DIVERGED" : "") << "\n";
    if (!row.replay_identical || c.consistency_issues != 0) pass = false;
  }
  // The baseline cell proves the harness: zero intensity injects nothing.
  if (!rows.empty() && rows.front().cell.reports_dropped != 0) pass = false;
  std::cout << "wrote " << out_path << "\n";
  if (!pass) {
    std::cout << "WARNING: convergence or replay broke under faults\n";
  }
  return pass ? 0 : 1;
}
