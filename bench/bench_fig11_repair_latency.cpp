// Figure 11: average latency under repair. Paper shape: "a dramatic
// improvement in the average latencies experienced by the clients" — once
// a violation is detected a repair (move a client or add a server) brings
// latency back under 2 s; the bars at the top mark repair windows.
#include <iostream>

#include "paper_experiment.hpp"

int main() {
  using namespace arcadia;
  core::ExperimentResult r = bench::run_paper_experiment(/*adaptation=*/true);
  bench::print_header("Figure 11", "average latency under repair (s)", r);
  core::print_latency_figure(std::cout, r, SimTime::seconds(60));
  bench::print_repair_marks(r);
  std::cout << "\n";
  core::print_repairs(std::cout, r);

  std::cout << "\n# shape checks vs the paper\n";
  std::cout << "mean fraction of time above 2 s: " << r.mean_fraction_above()
            << " (paper: \"latency experienced by clients was less than two "
               "seconds for most of the time\")\n";
  double mean_repair_s = 0.0;
  int finished = 0;
  for (const auto& rec : r.repairs) {
    if (rec.committed && rec.finished) {
      mean_repair_s += rec.duration().as_seconds();
      ++finished;
    }
  }
  if (finished > 0) {
    std::cout << "mean repair time: " << mean_repair_s / finished
              << " s (paper: ~30 s, dominated by gauge create/delete)\n";
  }
  return 0;
}
