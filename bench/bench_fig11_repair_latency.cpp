// Figure 11: average latency under repair. Paper shape: "a dramatic
// improvement in the average latencies experienced by the clients" — once
// a violation is detected a repair (move a client or add a server) brings
// latency back under 2 s; the bars at the top mark repair windows.
//
// On top of the figure reproduction, this bench is the acceptance gate for
// the staged repair pipeline: the same experiment runs twice, once with
// the legacy strictly-sequential record replay (the paper's behavior, kept
// as the in-bench baseline) and once with the AdaptationPlan pipeline
// (batched gauge re-deployments, overlapped execution). It emits
// BENCH_fig11.json and exits non-zero when the plan pipeline fails to
// lower the mean end-to-end repair latency.
//
// Membership caveat: a runtime-failed repair stays `committed` on the
// legacy path (paper behavior — the model keeps the drift) but flips to
// aborted on the plan path (it was compensated away). The paper
// experiment has no runtime failures, so both means here average the same
// repair population; scenarios that do fail ops are not comparable 1:1.
#include <fstream>
#include <iostream>
#include <string>

#include "bench_output.hpp"
#include "paper_experiment.hpp"

namespace {

struct RepairSummary {
  int committed = 0;
  double mean_repair_s = 0.0;
  double total_repair_s = 0.0;
  double mean_gauge_s = 0.0;
  double fraction_above = 0.0;
  std::uint64_t plan_steps_executed = 0;
  std::uint64_t plan_steps_merged = 0;
};

RepairSummary summarize(const arcadia::core::ExperimentResult& r) {
  RepairSummary s;
  double gauge_s = 0.0;
  for (const auto& rec : r.repairs) {
    if (!rec.committed || !rec.finished) continue;
    ++s.committed;
    s.total_repair_s += rec.duration().as_seconds();
    gauge_s += rec.gauge_cost.as_seconds();
  }
  if (s.committed > 0) {
    s.mean_repair_s = s.total_repair_s / s.committed;
    s.mean_gauge_s = gauge_s / s.committed;
  }
  s.fraction_above = r.mean_fraction_above();
  s.plan_steps_executed = r.repair_stats.plan_steps_executed;
  s.plan_steps_merged = r.repair_stats.plan_steps_merged;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace arcadia;
  const std::string out_path =
      bench::output_path(argc, argv, "BENCH_fig11.json");

  core::ExperimentResult r = bench::run_paper_experiment(/*adaptation=*/true);
  bench::print_header("Figure 11", "average latency under repair (s)", r);
  core::print_latency_figure(std::cout, r, SimTime::seconds(60));
  bench::print_repair_marks(r);
  std::cout << "\n";
  core::print_repairs(std::cout, r);

  const RepairSummary plan = summarize(r);
  std::cout << "\n# shape checks vs the paper\n";
  std::cout << "mean fraction of time above 2 s: " << r.mean_fraction_above()
            << " (paper: \"latency experienced by clients was less than two "
               "seconds for most of the time\")\n";

  // The in-bench baseline: identical experiment, legacy record replay.
  core::ExperimentOptions legacy_opt = bench::paper_options();
  legacy_opt.adaptation = true;
  legacy_opt.framework.plan_pipeline = false;
  const RepairSummary legacy = summarize(core::run_experiment(legacy_opt));

  const double speedup = plan.mean_repair_s > 0.0
                             ? legacy.mean_repair_s / plan.mean_repair_s
                             : 0.0;
  std::cout << "\n# staged-plan pipeline vs sequential replay\n"
            << "legacy mean repair: " << legacy.mean_repair_s
            << " s (paper: ~30 s, dominated by gauge create/delete)\n"
            << "plan   mean repair: " << plan.mean_repair_s << " s ("
            << plan.committed << " repairs, " << plan.plan_steps_executed
            << " steps executed, " << plan.plan_steps_merged
            << " merged by the optimizer)\n"
            << "end-to-end repair speedup: " << speedup << "x\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"legacy_mean_repair_s\": " << legacy.mean_repair_s << ",\n"
       << "  \"legacy_mean_gauge_s\": " << legacy.mean_gauge_s << ",\n"
       << "  \"legacy_committed\": " << legacy.committed << ",\n"
       << "  \"legacy_fraction_above_2s\": " << legacy.fraction_above << ",\n"
       << "  \"plan_mean_repair_s\": " << plan.mean_repair_s << ",\n"
       << "  \"plan_mean_gauge_s\": " << plan.mean_gauge_s << ",\n"
       << "  \"plan_committed\": " << plan.committed << ",\n"
       << "  \"plan_fraction_above_2s\": " << plan.fraction_above << ",\n"
       << "  \"plan_steps_executed\": " << plan.plan_steps_executed << ",\n"
       << "  \"plan_steps_merged\": " << plan.plan_steps_merged << ",\n"
       << "  \"repair_speedup\": " << speedup << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";

  if (plan.committed == 0 || !(plan.mean_repair_s < legacy.mean_repair_s)) {
    std::cerr << "FAIL: plan pipeline did not lower mean repair latency ("
              << plan.mean_repair_s << " s vs " << legacy.mean_repair_s
              << " s)\n";
    return 1;
  }
  return 0;
}
