// Fleet scaling for the sharded simulation kernel: the same coordinated
// fleet run serial (sim_threads = 0, the legacy single event loop hosting
// every tenant) and sharded (per-tenant sub-simulators advanced in
// conservative time windows) at 1 / 2 / 4 / 8 worker threads.
//
// Two scenario sizes: fleet-4x16 with 8 tenants (the CI gate size) and
// fleet-64x256 (the scale target: 64 tenants x 256 clients, DESIGN.md §9)
// on a compressed horizon. For every scenario the bench also fingerprints
// each sharded run — repairs, models, event counts — and fails if any
// thread count perturbs a single bit (the determinism contract).
//
// Emits BENCH_fleet.json (next to the binary, or argv[1]). Speedup gates
// are hardware-aware: wall-clock targets are only enforced when the host
// actually has the cores (hw_concurrency >= 4); a 1-core container still
// runs everything and enforces determinism, but records gates_enforced =
// false instead of failing on physics. On CI's 4-vCPU Release runners the
// gates are real: fleet-4x16 must reach 2x at 4 threads and fleet-64x256
// must reach 3x at 4+ threads, both vs the serial kernel.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "acme/adl.hpp"
#include "core/fleet.hpp"
#include "core/framework_builder.hpp"
#include "repair/engine.hpp"
#include "repair/scripts.hpp"
#include "sim/scenario_registry.hpp"
#include "util/annotations.hpp"

#include "bench_output.hpp"

namespace {

using namespace arcadia;
using Clock = std::chrono::steady_clock;

struct ScenarioSpec {
  std::string name;
  int tenants;
  double horizon_s;
  int reps;
};

struct Cell {
  std::size_t sim_threads = 0;  // 0 = legacy serial kernel
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t repairs = 0;
  std::uint64_t fingerprint = 0;
};

core::FleetOptions make_options(const ScenarioSpec& spec,
                                std::size_t sim_threads) {
  core::FleetOptions opt;
  opt.scenario = spec.name;
  opt.tenants = spec.tenants;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults(spec.name);
  // Always-on Figure 7 schedule, compressed so the stress phases (and the
  // repairs they force) land inside the bench horizon. Every shard carries
  // load the whole run — the regime the parallel kernel exists for.
  opt.config.quiescent_end = SimTime::seconds(10);
  opt.config.stress_start = SimTime::seconds(spec.horizon_s * 0.3);
  opt.config.stress_end = SimTime::seconds(spec.horizon_s * 0.8);
  opt.config.fleet.phase_shift = SimTime::seconds(2);
  opt.config.fleet.active_duration = SimTime::zero();  // always on
  // Monitoring-heavy control plane: chatty gauges and a 1 s sweep, same as
  // the historical control-plane bench, so the two bench generations stay
  // comparable.
  opt.framework.monitoring_qos = true;
  opt.framework.gauge_costs.report_period = SimTime::millis(250);
  opt.framework.check_period = SimTime::seconds(1);
  opt.manager.coalesce_window = SimTime::seconds(1);
  opt.manager.sweep_threads = 1;  // isolate the KERNEL's scaling
  opt.coordinated = true;
  opt.sim_threads = sim_threads;
  return opt;
}

/// FNV-1a over every tenant's repair sequence and printed model: two runs
/// fingerprint equal iff they made the same repairs at the same sim-times
/// and left the same architecture behind.
std::uint64_t fingerprint_fleet(core::Fleet& fleet) {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix_bytes = [&h](const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (std::size_t t = 0; t < fleet.tenant_count(); ++t) {
    core::FleetTenant& tenant = fleet.tenant(t);
    util::SerialLane in_lane(tenant.lane());
    for (const repair::RepairRecord& r : tenant.framework->engine().records()) {
      mix_bytes(r.strategy.data(), r.strategy.size());
      mix_bytes(r.element.data(), r.element.size());
      const double started = r.started.as_seconds();
      mix_bytes(&started, sizeof(started));
    }
    const std::string model = acme::print_system(tenant.framework->system());
    mix_bytes(model.data(), model.size());
  }
  return h;
}

Cell run_once(const ScenarioSpec& spec, std::size_t sim_threads) {
  sim::Simulator sim;
  auto fleet = core::FrameworkBuilder::build_fleet(
      sim, make_options(spec, sim_threads));
  fleet->start();
  const auto t0 = Clock::now();
  fleet->run_until(SimTime::seconds(spec.horizon_s));
  const auto t1 = Clock::now();

  Cell c;
  c.sim_threads = sim_threads;
  c.wall_s = std::chrono::duration<double>(t1 - t0).count();
  c.events = sim.executed();
  if (fleet->coordinator()) {
    c.events += fleet->coordinator()->stats().shard_events;
  }
  for (std::size_t t = 0; t < fleet->tenant_count(); ++t) {
    core::FleetTenant& tenant = fleet->tenant(t);
    util::SerialLane in_lane(tenant.lane());
    c.repairs += tenant.framework->engine().records().size();
  }
  c.fingerprint = fingerprint_fleet(*fleet);
  return c;
}

Cell run_best(const ScenarioSpec& spec, std::size_t sim_threads) {
  // The simulation is deterministic — every rep produces identical events,
  // repairs, and fingerprints — so only the wall clock varies; report the
  // minimum.
  Cell best;
  for (int rep = 0; rep < spec.reps; ++rep) {
    Cell c = run_once(spec, sim_threads);
    if (rep == 0 || c.wall_s < best.wall_s) best = c;
  }
  return best;
}

struct ScenarioResult {
  ScenarioSpec spec;
  Cell serial;              // sim_threads = 0, legacy kernel
  std::vector<Cell> cells;  // sharded, 1 / 2 / 4 / 8 threads
  bool deterministic = true;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      arcadia::bench::output_path(argc, argv, "BENCH_fleet.json");
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<ScenarioSpec> specs = {
      {"fleet-4x16", 8, 120.0, 3},
      {"fleet-64x256", 64, 45.0, 2},
  };

  std::vector<ScenarioResult> results;
  for (const ScenarioSpec& spec : specs) {
    ScenarioResult res;
    res.spec = spec;
    std::cout << "bench_fleet_scaling: " << spec.name << " x" << spec.tenants
              << " tenants, serial kernel...\n";
    res.serial = run_best(spec, 0);
    for (std::size_t threads : thread_counts) {
      std::cout << "bench_fleet_scaling: " << spec.name << " x"
                << spec.tenants << " tenants, sharded " << threads
                << " thread" << (threads == 1 ? "" : "s") << "...\n";
      res.cells.push_back(run_best(spec, threads));
    }
    for (const Cell& c : res.cells) {
      if (c.fingerprint != res.cells.front().fingerprint ||
          c.events != res.cells.front().events) {
        res.deterministic = false;
      }
    }
    results.push_back(std::move(res));
  }

  // Wall-clock gates only bind where the host has the cores to honor them;
  // determinism binds everywhere.
  const bool gates_enforced = hw >= 4;

  std::ofstream json(out_path);
  json << "{\n  \"hw_concurrency\": " << hw << ",\n"
       << "  \"gates_enforced\": " << (gates_enforced ? "true" : "false")
       << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& res = results[i];
    json << "    {\n"
         << "      \"name\": \"" << res.spec.name << "\",\n"
         << "      \"tenants\": " << res.spec.tenants << ",\n"
         << "      \"horizon_sim_s\": " << res.spec.horizon_s << ",\n"
         << "      \"serial_wall_s\": " << res.serial.wall_s << ",\n"
         << "      \"serial_events\": " << res.serial.events << ",\n"
         << "      \"serial_repairs\": " << res.serial.repairs << ",\n"
         << "      \"deterministic\": "
         << (res.deterministic ? "true" : "false") << ",\n"
         << "      \"cells\": [\n";
    for (std::size_t k = 0; k < res.cells.size(); ++k) {
      const Cell& c = res.cells[k];
      json << "        {\"sim_threads\": " << c.sim_threads
           << ", \"wall_s\": " << c.wall_s
           << ", \"speedup_vs_serial\": " << res.serial.wall_s / c.wall_s
           << ", \"events\": " << c.events << ", \"repairs\": " << c.repairs
           << "}" << (k + 1 < res.cells.size() ? "," : "") << "\n";
    }
    json << "      ]\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  bool pass = true;
  for (const ScenarioResult& res : results) {
    std::cout << res.spec.name << ": serial " << res.serial.wall_s
              << " s (" << res.serial.events << " events, "
              << res.serial.repairs << " repairs)\n";
    for (const Cell& c : res.cells) {
      std::cout << "  " << c.sim_threads << " thread"
                << (c.sim_threads == 1 ? " " : "s") << ": " << c.wall_s
                << " s  (" << res.serial.wall_s / c.wall_s
                << "x vs serial)\n";
    }
    if (!res.deterministic) {
      std::cout << "FAIL: " << res.spec.name
                << " fingerprints differ across sim-thread counts — the "
                   "sharded kernel's determinism contract is broken\n";
      pass = false;
    }
    if (gates_enforced) {
      double at4 = 0.0, best_4plus = 0.0;
      for (const Cell& c : res.cells) {
        const double speedup = res.serial.wall_s / c.wall_s;
        if (c.sim_threads == 4) at4 = speedup;
        if (c.sim_threads >= 4 && c.sim_threads <= hw) {
          best_4plus = std::max(best_4plus, speedup);
        }
      }
      if (res.spec.name == "fleet-4x16" && at4 < 2.0) {
        std::cout << "FAIL: fleet-4x16 4-thread speedup " << at4
                  << "x < 2.0x\n";
        pass = false;
      }
      if (res.spec.name == "fleet-64x256" && best_4plus < 3.0) {
        std::cout << "FAIL: fleet-64x256 best 4+-thread speedup "
                  << best_4plus << "x < 3.0x\n";
        pass = false;
      }
    }
  }
  if (!gates_enforced) {
    std::cout << "NOTE: hw_concurrency = " << hw
              << " < 4 — wall-clock speedup gates skipped (determinism "
                 "still enforced); run on a 4+-core host for the real "
                 "gates\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
