// Fleet scaling: N tenants on one simulator, the batched + parallel fleet
// control loop (core::FleetManager) against the naive per-tenant loop (every
// tenant running its own ArchitectureManager with immediate report
// application and a sequential check task).
//
// The workload is monitoring-heavy on purpose — chatty gauges (4 reports/s
// per gauge) and a 1 s constraint sweep — because that is the regime fleet
// mode exists for: at 8+ tenants the gauge-report storm and the sweep are
// the control plane's cost, and coalescing (one model write per element per
// window) plus the parallel sweep are what keep it off the critical path.
//
// Emits BENCH_fleet.json (cwd, or argv[1]). Exit 1 when the batched +
// parallel fleet fails to beat the naive loop at the largest tenant count
// (run Release on a quiet machine before trusting a failure).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/framework_builder.hpp"
#include "repair/scripts.hpp"
#include "sim/scenario_registry.hpp"

#include "bench_output.hpp"

namespace {

using namespace arcadia;
using Clock = std::chrono::steady_clock;

constexpr double kHorizonS = 360.0;
constexpr int kReps = 3;  // per cell; the minimum is reported

struct FleetCounters {
  std::uint64_t reports_enqueued = 0;
  std::uint64_t reports_coalesced = 0;
  std::uint64_t reports_applied = 0;
  std::uint64_t shard_sweeps = 0;
  std::uint64_t shard_skips = 0;
  std::uint64_t parallel_rounds = 0;
  std::uint64_t repairs = 0;
};

struct RunResult {
  double wall_s = 0.0;
  /// Naive: wall-clock inside the managers' periodic checks (report
  /// application happens per delivery and is not separable). Fleet:
  /// wall-clock inside run_sweep — batched application + parallel detect +
  /// ordered dispatch. Not directly comparable; the total is the verdict.
  double control_wall_s = 0.0;
  std::uint64_t events = 0;
  FleetCounters counters;
};

core::FleetOptions make_options(int tenants, bool coordinated) {
  core::FleetOptions opt;
  opt.scenario = "fleet-4x16";
  opt.tenants = tenants;
  opt.use_scenario_defaults = false;
  opt.config = sim::scenario_defaults("fleet-4x16");
  // Duty-cycled tenants: each is active for 40 s inside its staggered
  // window and quiet otherwise — at any instant only a couple of tenants
  // carry traffic, the production-fleet shape. Quiet tenants' gauges keep
  // re-publishing steady values; the dead-band keeps those from dirtying
  // their shards, so the fleet sweep skips them while the naive loop
  // re-checks every tenant every period.
  opt.config.quiescent_end = SimTime::seconds(40);
  // Hot enough that an active tenant overloads its groups and repairs fire.
  opt.config.normal_rate_hz = 2.5;
  opt.config.fleet.phase_shift = SimTime::seconds(30);
  opt.config.fleet.active_duration = SimTime::seconds(40);
  // Monitoring-heavy control plane: chatty gauges, tight sweep, and a
  // fleet-health invariant quantified over every component — the non-local
  // form whose evaluation each sweep is what the parallel sweep spreads
  // across cores. Monitoring QoS (the paper's Section 5.3 mitigation, same
  // for both modes) keeps per-delivery congestion math from drowning out
  // the control-plane difference under measurement.
  opt.framework.monitoring_qos = true;
  opt.framework.gauge_costs.report_period = SimTime::millis(250);
  opt.framework.check_period = SimTime::seconds(1);  // fleet sweep inherits
  opt.framework.script_source =
      std::string(repair::extended_script()) +
      "\ninvariant fleetWatch : !(exists c : ClientT in self.Components | "
      "c.averageLatency > maxLatency * 4.0);\n";
  // Sweep-aligned window: batches apply exactly when the sweep reads them.
  opt.manager.coalesce_window = SimTime::seconds(1);
  opt.manager.sweep_threads = 0;  // hardware concurrency
  opt.coordinated = coordinated;
  return opt;
}

RunResult run_once(int tenants, bool coordinated) {
  sim::Simulator sim;
  auto fleet =
      core::FrameworkBuilder::build_fleet(sim, make_options(tenants, coordinated));
  fleet->start();
  const auto t0 = Clock::now();
  sim.run_until(SimTime::seconds(kHorizonS));
  const auto t1 = Clock::now();

  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = sim.executed();
  for (std::size_t t = 0; t < fleet->tenant_count(); ++t) {
    r.counters.repairs +=
        fleet->tenant(t).framework->engine().records().size();
    r.control_wall_s +=
        fleet->tenant(t).framework->manager().stats().check_wall_s;
  }
  if (core::FleetManager* mgr = fleet->manager()) {
    r.control_wall_s += mgr->stats().sweep_wall_s;
    for (std::size_t s = 0; s < mgr->shard_count(); ++s) {
      const core::FleetShardStats& st = mgr->shard_stats(s);
      r.counters.reports_enqueued += st.reports_enqueued;
      r.counters.reports_coalesced += st.reports_coalesced;
      r.counters.reports_applied += st.reports_applied;
    }
    r.counters.shard_sweeps = mgr->stats().shard_sweeps;
    r.counters.shard_skips = mgr->stats().shard_skips;
    r.counters.parallel_rounds = mgr->stats().parallel_rounds;
  }
  return r;
}

RunResult run_best(int tenants, bool coordinated) {
  // The simulation is deterministic — every rep produces identical events
  // and counters — so only the wall clock varies; report the minimum.
  RunResult best;
  for (int rep = 0; rep < kReps; ++rep) {
    RunResult r = run_once(tenants, coordinated);
    if (rep == 0 || r.wall_s < best.wall_s) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = arcadia::bench::output_path(argc, argv, "BENCH_fleet.json");
  const std::vector<int> tenant_counts = {2, 4, 8, 16};

  struct Row {
    int tenants;
    RunResult naive;
    RunResult fleet;
  };
  std::vector<Row> rows;
  for (int tenants : tenant_counts) {
    std::cout << "bench_fleet_scaling: " << tenants << " tenants, naive...\n";
    RunResult naive = run_best(tenants, /*coordinated=*/false);
    std::cout << "bench_fleet_scaling: " << tenants << " tenants, fleet...\n";
    RunResult fleet = run_best(tenants, /*coordinated=*/true);
    rows.push_back({tenants, naive, fleet});
  }

  std::ofstream json(out_path);
  json << "{\n  \"horizon_sim_s\": " << kHorizonS << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double naive_per_sim = row.naive.wall_s / kHorizonS;
    const double fleet_per_sim = row.fleet.wall_s / kHorizonS;
    json << "    {\n"
         << "      \"tenants\": " << row.tenants << ",\n"
         << "      \"naive_wall_s_per_sim_s\": " << naive_per_sim << ",\n"
         << "      \"fleet_wall_s_per_sim_s\": " << fleet_per_sim << ",\n"
         << "      \"speedup\": " << naive_per_sim / fleet_per_sim << ",\n"
         << "      \"naive_check_wall_s\": " << row.naive.control_wall_s
         << ",\n"
         << "      \"fleet_sweep_wall_s\": " << row.fleet.control_wall_s
         << ",\n"
         << "      \"naive_events\": " << row.naive.events << ",\n"
         << "      \"fleet_events\": " << row.fleet.events << ",\n"
         << "      \"naive_repairs\": " << row.naive.counters.repairs << ",\n"
         << "      \"fleet_repairs\": " << row.fleet.counters.repairs << ",\n"
         << "      \"reports_enqueued\": "
         << row.fleet.counters.reports_enqueued << ",\n"
         << "      \"reports_coalesced\": "
         << row.fleet.counters.reports_coalesced << ",\n"
         << "      \"reports_applied\": "
         << row.fleet.counters.reports_applied << ",\n"
         << "      \"shard_sweeps\": " << row.fleet.counters.shard_sweeps
         << ",\n"
         << "      \"shard_skips\": " << row.fleet.counters.shard_skips << ",\n"
         << "      \"parallel_rounds\": "
         << row.fleet.counters.parallel_rounds << "\n"
         << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  bool pass = true;
  for (const Row& row : rows) {
    const double speedup = row.naive.wall_s / row.fleet.wall_s;
    std::cout << row.tenants << " tenants: naive "
              << row.naive.wall_s / kHorizonS << " wall-s/sim-s, fleet "
              << row.fleet.wall_s / kHorizonS << " wall-s/sim-s  ("
              << speedup << "x; "
              << row.fleet.counters.reports_coalesced << "/"
              << row.fleet.counters.reports_enqueued
              << " reports coalesced, " << row.fleet.counters.shard_skips
              << " shard sweeps skipped)\n";
    if (row.tenants == tenant_counts.back() &&
        row.fleet.wall_s >= row.naive.wall_s) {
      pass = false;
    }
  }
  std::cout << "wrote " << out_path << "\n";
  if (!pass) {
    std::cout << "WARNING: batched+parallel fleet did not beat the naive "
                 "per-tenant loop at "
              << tenant_counts.back() << " tenants\n";
  }
  return pass ? 0 : 1;
}
