// Micro benchmarks for the substrates: DES kernel scheduling, max-min
// reallocation, content-based bus matching, model operations, and Armani
// expression evaluation.
#include <benchmark/benchmark.h>

#include "acme/expr_parser.hpp"
#include "acme/evaluator.hpp"
#include "events/bus.hpp"
#include "model/transaction.hpp"
#include "model/types.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace arcadia;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(SimTime::micros(i), [&fired] { ++fired; });
    }
    sim.run_until(SimTime::seconds(10));
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

void BM_MaxMinReallocate(benchmark::State& state) {
  sim::Simulator sim;
  sim::Topology topo;
  auto r1 = topo.add_node("r1", sim::NodeKind::Router);
  auto r2 = topo.add_node("r2", sim::NodeKind::Router);
  std::vector<sim::NodeId> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.push_back(topo.add_node("h" + std::to_string(i), sim::NodeKind::Host));
    topo.add_link(hosts.back(), i % 2 ? r1 : r2, Bandwidth::mbps(10));
  }
  topo.add_link(r1, r2, Bandwidth::mbps(10));
  topo.compute_routes();
  sim::FlowNetwork net(sim, topo);
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<sim::FlowId> ids;
    for (int i = 0; i < flows; ++i) {
      ids.push_back(net.start_transfer(hosts[i % 8], hosts[(i + 1) % 8],
                                       DataSize::megabytes(100), [] {}));
    }
    for (sim::FlowId id : ids) net.cancel_transfer(id);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMinReallocate)->Arg(4)->Arg(16)->Arg(64);

void BM_BusPublishMatch(benchmark::State& state) {
  events::LocalEventBus bus;
  const int subs = static_cast<int>(state.range(0));
  int hits = 0;
  for (int i = 0; i < subs; ++i) {
    bus.subscribe(events::Filter::topic("probe.latency")
                      .where("client", events::Op::Eq,
                             "User" + std::to_string(i % 6 + 1)),
                  [&hits](const events::Notification&) { ++hits; });
  }
  events::Notification n("probe.latency");
  n.set("client", "User3").set("value", 1.25);
  for (auto _ : state) {
    bus.publish(n);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * subs);
}
BENCHMARK(BM_BusPublishMatch)->Arg(12)->Arg(120);

void BM_ModelTransactionCycle(benchmark::State& state) {
  model::System system("bench");
  model::Component& grp = system.add_component("G", model::cs::kServerGroupT);
  grp.set_property(model::cs::kPropReplication, model::PropertyValue(0));
  grp.representation();
  for (auto _ : state) {
    model::Transaction txn(system);
    txn.add_component({"G"}, "S", model::cs::kServerT);
    txn.set_property({}, model::ElementKind::Component, "G", "",
                     model::cs::kPropReplication, model::PropertyValue(1));
    txn.rollback();
  }
}
BENCHMARK(BM_ModelTransactionCycle);

void BM_ExprEvaluate(benchmark::State& state) {
  model::System system("bench");
  for (int i = 0; i < 12; ++i) {
    auto& c = system.add_component("C" + std::to_string(i),
                                   i % 2 ? model::cs::kClientT
                                         : model::cs::kServerGroupT);
    c.set_property("load", model::PropertyValue(static_cast<double>(i)));
  }
  auto expr = acme::parse_expression(
      "size(select g : ServerGroupT in self.Components | g.load > 4.0) > 0");
  acme::Evaluator evaluator;
  acme::EvalContext ctx(system);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_bool(*expr, ctx));
  }
}
BENCHMARK(BM_ExprEvaluate);

}  // namespace

BENCHMARK_MAIN();
