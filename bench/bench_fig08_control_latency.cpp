// Figure 8: average latency for the control run (no adaptation).
// Paper shape: C3/C4 cross the 2 s threshold once the bandwidth
// competition starts (~140 s) and never recover; every client explodes
// during the 600-1200 s stress; recovery only begins near the end.
#include <iostream>

#include "paper_experiment.hpp"

int main() {
  using namespace arcadia;
  core::ExperimentResult r = bench::run_paper_experiment(/*adaptation=*/false);
  bench::print_header("Figure 8", "average latency for control (s)", r);
  core::print_latency_figure(std::cout, r, SimTime::seconds(60));

  std::cout << "\n# shape checks vs the paper\n";
  for (std::size_t i = 0; i < r.clients.size(); ++i) {
    SimTime cross = r.client_first_crossing(i);
    std::cout << r.clients[i].name << ": first >2 s at "
              << (cross.is_infinite() ? -1.0 : cross.as_seconds())
              << " s, fraction above " << r.client_fraction_above(i) << "\n";
  }
  std::cout << "paper: \"once the latency rises to above two seconds ... it "
               "never falls below this required threshold\"\n";
  // The run never recovers: latency in the final 10 minutes is still over
  // the bound for every client.
  bool recovered = false;
  for (const auto& c : r.clients) {
    if (c.window_latency.mean_over(SimTime::seconds(1500),
                                   SimTime::seconds(1750)) < 2.0) {
      recovered = true;
    }
  }
  std::cout << "recovered before the end? " << (recovered ? "yes" : "no")
            << " (paper: no; servers only begin to recover at the very end)\n";
  return 0;
}
