// Figure 12: available bandwidth under repair. Paper shape: "our framework
// has a positive effect on the available bandwidth because we are taking
// better advantage of different network links in our system after a
// repair" — once C3/C4 are moved to SG2 their measured path is the healthy
// one.
#include <iostream>

#include "paper_experiment.hpp"

int main() {
  using namespace arcadia;
  core::ExperimentResult r = bench::run_paper_experiment(/*adaptation=*/true);
  bench::print_header("Figure 12", "available bandwidth under repair (Mbps)", r);
  core::print_bandwidth_figure(std::cout, r, SimTime::seconds(60));
  bench::print_repair_marks(r);

  std::cout << "\n# shape checks vs the paper\n";
  const core::ClientSeries* c3 = r.client("User3");
  double during_competition = c3->bandwidth_mbps.mean_over(
      SimTime::seconds(300), SimTime::seconds(590));
  std::cout << "C3 available bandwidth after its move (during the same "
               "competition window the control collapsed in): "
            << during_competition << " Mbps\n";
  double floor_min = c3->bandwidth_mbps.min_over(SimTime::seconds(300),
                                                 SimTime::seconds(590));
  std::cout << "minimum over that window: " << floor_min
            << " Mbps (control bottoms out at ~0.0001)\n";
  return 0;
}
