// Shared setup for the figure-reproduction benches: the paper's full
// 1800 s experiment (Figure 7 schedule on the Figure 6 testbed) with the
// default calibration, plus small printing helpers.
#pragma once

#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace arcadia::bench {

/// The registry scenario every figure-reproduction bench runs.
inline constexpr const char* kPaperScenario = "paper-fig6";

inline core::ExperimentOptions paper_options() {
  // The scenario's registered defaults are the paper's parameters.
  return core::options_for(kPaperScenario);
}

inline core::ExperimentResult run_paper_experiment(bool adaptation) {
  core::ExperimentOptions opt = paper_options();
  opt.adaptation = adaptation;
  return core::run_experiment(opt);
}

inline void print_header(const char* figure, const char* what,
                         const core::ExperimentResult& result) {
  std::cout << "=== " << figure << ": " << what << " ===\n"
            << "run: " << (result.adaptive ? "with repair" : "control")
            << ", horizon " << result.horizon.as_seconds() << " s, "
            << result.responses_completed << " responses, "
            << result.sim_events << " simulator events\n\n";
}

inline void print_repair_marks(const core::ExperimentResult& result) {
  if (result.repair_windows.empty()) return;
  std::cout << "\n# repair windows (the bars atop Figures 11-13)\n";
  for (const auto& [start, end] : result.repair_windows) {
    std::cout << "  repair " << start.as_seconds() << " .. "
              << end.as_seconds() << " s\n";
  }
}

}  // namespace arcadia::bench
