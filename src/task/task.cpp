#include "task/task.hpp"

#include <cmath>

#include "model/types.hpp"

namespace arcadia::task {

void apply_profile(model::System& system, const PerformanceProfile& profile) {
  for (model::Component* c : system.components()) {
    if (c->type_name() == model::cs::kClientT) {
      c->set_property(model::cs::kPropMaxLatency,
                      model::PropertyValue(profile.max_latency.as_seconds()));
    }
  }
}

double erlang_c(std::int64_t servers, double offered_load) {
  if (servers <= 0) return 1.0;
  const double a = offered_load;
  const double c = static_cast<double>(servers);
  if (a >= c) return 1.0;  // unstable: every arrival waits
  // Iteratively compute B (Erlang-B), then convert to C: numerically
  // stable for large a and c.
  double b = 1.0;
  for (std::int64_t k = 1; k <= servers; ++k) {
    b = (a * b) / (static_cast<double>(k) + a * b);
  }
  const double rho = a / c;
  return b / (1.0 - rho + rho * b);
}

SizingResult size_server_group(const SizingInput& input) {
  SizingResult result;
  if (input.service_time_s <= 0.0 || input.arrival_rate_hz <= 0.0) {
    result.feasible = false;
    return result;
  }
  const double mu = 1.0 / input.service_time_s;
  const double a = input.arrival_rate_hz / mu;  // offered erlangs
  for (std::int64_t c = 1; c <= input.max_servers; ++c) {
    if (a >= static_cast<double>(c)) continue;  // unstable
    const double pw = erlang_c(c, a);
    const double wq =
        pw / (static_cast<double>(c) * mu - input.arrival_rate_hz);
    if (wq <= input.target_wait_s) {
      result.servers = c;
      result.utilization = a / static_cast<double>(c);
      result.erlang_c = pw;
      result.expected_wait_s = wq;
      result.expected_queue = wq * input.arrival_rate_hz;
      result.feasible = true;
      return result;
    }
  }
  result.feasible = false;
  return result;
}

Bandwidth min_bandwidth_for(DataSize response_size, SimTime budget) {
  if (budget <= SimTime::zero()) return Bandwidth::infinity();
  return Bandwidth::bps(response_size.as_bits() / budget.as_seconds());
}

}  // namespace arcadia::task
