// The task layer (Figure 1, item 6): sets the performance objectives and
// resource constraints that parameterize the model layer. The paper's
// experiment profile: max average latency 2 s, server overloaded above 6
// queued requests, starved below 10 Kbps — plus the queuing analysis that
// sized the initial deployment ("we calculated that an initial starting
// point of 3 replicated servers in one server group would be sufficient to
// serve our six clients", Section 5).
#pragma once

#include <cstdint>

#include "model/system.hpp"
#include "util/units.hpp"

namespace arcadia::task {

struct PerformanceProfile {
  SimTime max_latency = SimTime::seconds(2);
  double max_server_load = 6.0;
  Bandwidth min_bandwidth = Bandwidth::kbps(10);
  double min_utilization = 0.2;
  std::int64_t min_replicas = 2;
};

/// Writes the profile's per-element thresholds into the model (maxLatency
/// on every ClientT component).
void apply_profile(model::System& system, const PerformanceProfile& profile);

// ---- design-time performance analysis (M/M/c) ----

struct SizingInput {
  double arrival_rate_hz = 6.0;     ///< aggregate request rate
  double service_time_s = 0.25;     ///< mean per-request service time
  double target_wait_s = 1.0;       ///< acceptable mean queue wait
  std::int64_t max_servers = 64;    ///< search bound
};

struct SizingResult {
  std::int64_t servers = 0;       ///< smallest c meeting the target
  double utilization = 0.0;       ///< rho = lambda / (c * mu)
  double erlang_c = 0.0;          ///< probability of waiting
  double expected_wait_s = 0.0;   ///< mean wait in queue (Wq)
  double expected_queue = 0.0;    ///< mean queue length (Lq)
  bool feasible = false;
};

/// Erlang-C probability that an arrival waits, for c servers at offered
/// load a = lambda/mu erlangs. Returns 1.0 when the system is unstable.
double erlang_c(std::int64_t servers, double offered_load);

/// Smallest replicated-server count whose mean queue wait meets the
/// target; the paper's "3 servers for six clients" calculation.
SizingResult size_server_group(const SizingInput& input);

/// Minimum bandwidth so a response of `size` transfers within `budget` —
/// the paper's 10 Kbps floor derivation.
Bandwidth min_bandwidth_for(DataSize response_size, SimTime budget);

}  // namespace arcadia::task
