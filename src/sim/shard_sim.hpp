// Parallel discrete-event simulation: conservative time windows over
// per-shard sub-simulators (DESIGN.md §9).
//
// Each ShardSimulator owns a private event queue and clock for one fleet
// shard (tenant). The SimCoordinator advances all shards concurrently in
// rounds: every round it computes a safe bound — the earliest time at which
// a cross-shard effect can occur, i.e. min(next control event, window-start
// + lookahead, horizon) — lets every shard run privately up to that bound,
// then executes the barrier (cross-shard mail delivery, staged-journal
// drain, and the control simulator's own events, which is where fleet
// sweeps and snapshots couple the shards).
//
// Determinism contract: a run's event order is a pure function of the shard
// partition and the schedule — never of the worker-thread count. Shards are
// serial inside a window (one worker at a time, enforced by SerialLane +
// SerialDomain), barrier work walks shards in fixed index order, and mail
// merges by (time, source shard, per-source sequence). 1 thread and N
// threads therefore produce bit-identical repairs, journal bytes, and fault
// draws — the tests' correctness oracle.
//
// arclint: shard — this kernel may not reach into FleetManager / the global
// buses / the durability plane directly; cross-shard effects route through
// the coordinator seam (rule `shard-isolation`).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "util/annotations.hpp"
#include "util/small_fn.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace arcadia::sim {

/// One shard's private simulator plus its lane identity. Heap-pinned by the
/// coordinator (unique_ptr) so lane() — derived from `this` — is stable.
class ShardSimulator {
 public:
  explicit ShardSimulator(std::uint32_t id) : id_(id) {}
  ShardSimulator(const ShardSimulator&) = delete;
  ShardSimulator& operator=(const ShardSimulator&) = delete;

  std::uint32_t id() const { return id_; }
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  /// Logical-lane token for SerialLane/SerialDomain: odd (low bit set) so it
  /// can never collide with the even per-thread keys SerialDomain derives
  /// when no lane is active. Code touching this shard's tenant state from
  /// any thread must hold `util::SerialLane lane(shard.lane())`.
  std::uintptr_t lane() const {
    return reinterpret_cast<std::uintptr_t>(this) | 1;
  }

  /// Run this shard's events up to and including `bound` (clock ends at
  /// `bound` exactly, like Simulator::run_until). Enters the shard's lane
  /// for the duration; called by exactly one worker per round.
  std::uint64_t advance_to(SimTime bound) {
    util::SerialLane in_lane(lane());
    const std::uint64_t ran = sim_.run_until(bound);
    events_ += ran;
    ++windows_;
    return ran;
  }

  std::uint64_t events() const { return events_; }
  std::uint64_t windows() const { return windows_; }

 private:
  std::uint32_t id_;
  Simulator sim_;
  std::uint64_t events_ = 0;
  std::uint64_t windows_ = 0;
};

struct SimCoordinatorOptions {
  /// Worker threads advancing shards each round, coordinator included.
  /// 0 = hardware concurrency; 1 = fully serial (no pool, no threads).
  unsigned threads = 0;
  /// Minimum delay of any cross-shard effect posted *between* barriers
  /// (classic conservative-PDES lookahead). Arcadia's fleet shards couple
  /// only at control-simulator events (sweeps at network-rate-change
  /// epochs), which the bound already accounts for exactly — so the fleet
  /// runs with infinite lookahead and windows stretch barrier to barrier.
  /// Finite lookahead is for rigs that post() mid-window: the minimum
  /// cross-shard delivery delay through the shared FlowNetwork, e.g.
  /// FlowNetwork::loopback_delay() when shards mail local peers.
  SimTime lookahead = SimTime::infinity();
};

struct SimCoordinatorStats {
  std::uint64_t rounds = 0;          ///< windows executed
  std::uint64_t control_events = 0;  ///< events run on the control simulator
  std::uint64_t shard_events = 0;    ///< sum of per-shard events
  std::uint64_t mail_delivered = 0;  ///< cross-shard messages delivered
};

/// Advances a set of ShardSimulators in conservative time windows against a
/// shared control simulator (the fleet clock: sweeps, snapshots, horizon).
class SimCoordinator {
 public:
  SimCoordinator(Simulator& control, SimCoordinatorOptions options);
  ~SimCoordinator();
  SimCoordinator(const SimCoordinator&) = delete;
  SimCoordinator& operator=(const SimCoordinator&) = delete;

  /// Create the next shard (id = current shard_count()). All shards must be
  /// added before the first run_until call.
  ShardSimulator& add_shard();
  std::size_t shard_count() const { return shards_.size(); }
  ShardSimulator& shard(std::size_t i) { return *shards_.at(i); }
  const ShardSimulator& shard(std::size_t i) const { return *shards_.at(i); }

  /// Runs at every barrier, after shards reached `bound` and mail was
  /// delivered, before control events run. The fleet drains staged journal
  /// records here so durability bytes stay on the ordered-dispatch path.
  void set_barrier_hook(std::function<void(SimTime)> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Cross-shard mail: run `fn` on shard `to`'s clock at absolute time
  /// `at`. Must be called from shard `from`'s lane (i.e. from inside its
  /// window); delivery happens at the next barrier. `at` must respect the
  /// configured lookahead — delivery before the current window's bound
  /// throws SimError at the barrier (causality violation).
  void post(std::uint32_t from, std::uint32_t to, SimTime at,
            util::SmallFn<void()> fn);

  /// Window loop: advance shards and control interleaved until the control
  /// clock reaches `horizon`. Every shard clock also ends at `horizon`.
  /// Returns total events executed (control + shards).
  std::uint64_t run_until(SimTime horizon);

  Simulator& control() { return control_; }
  unsigned effective_threads() const;
  SimCoordinatorStats stats() const;

 private:
  struct Mail {
    SimTime at;
    std::uint32_t from;
    std::uint32_t to;
    std::uint64_t seq;  // per-source, so merge order is thread-independent
    util::SmallFn<void()> fn;
  };

  void advance_all(SimTime bound);
  void deliver_mail(SimTime bound);

  Simulator& control_;
  SimCoordinatorOptions options_;
  std::vector<std::unique_ptr<ShardSimulator>> shards_;
  /// Outboxes indexed by source shard: only shard `from`'s lane appends to
  /// outbox_[from] (inside its window), only the coordinator drains them
  /// (at the barrier) — no locking, and the pool's queue/join edges give
  /// the happens-before either way.
  std::vector<std::vector<Mail>> outbox_;
  std::vector<std::uint64_t> mail_seq_;
  std::function<void(SimTime)> barrier_hook_;
  std::unique_ptr<ThreadPool> pool_;  // only when effective_threads() > 1
  SimCoordinatorStats stats_;
};

}  // namespace arcadia::sim
