// Workload and competition drivers for Figure 7's stepping functions.
// Clients issue open-loop Poisson requests whose rate and response-size
// distribution step over time; competition flows step their rates at the
// same breakpoints. Both are fully seeded so control and repair runs see
// identical workloads.
#pragma once

#include <memory>
#include <vector>

#include "sim/app.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/step_function.hpp"

namespace arcadia::sim {

/// Per-client request-generation schedule.
struct ClientWorkload {
  ClientIdx client = -1;
  /// Requests per second over time (0 pauses the client).
  StepFunction rate_hz{0.0};
  /// Mean response size (bytes) over time.
  StepFunction response_mean_bytes{20 * 1024.0};
  /// Lognormal sigma for response-size jitter over time (0 = fixed size;
  /// the stress phase uses fixed 20 KB).
  StepFunction response_sigma{0.5};
  DataSize request_size = DataSize::bytes(512);
};

/// Drives GridApp::issue_request for a set of clients.
class WorkloadDriver {
 public:
  WorkloadDriver(Simulator& sim, GridApp& app, std::uint64_t seed);

  void add(ClientWorkload workload);
  /// Arm the first arrivals; call once before Simulator::run_until.
  void start();

  std::uint64_t requests_issued() const { return issued_; }

 private:
  struct Stream {
    ClientWorkload spec;
    Rng rng;
  };
  void arm_next(std::size_t i);
  void fire(std::size_t i);

  Simulator& sim_;
  GridApp& app_;
  Rng master_;
  std::vector<Stream> streams_;
  std::uint64_t issued_ = 0;
  bool started_ = false;
};

/// A background competition flow whose rate follows a step function.
struct CompetitionSchedule {
  FlowId flow = kNoFlow;
  StepFunction rate_bps{0.0};
};

/// One scheduled server outage: the server stops pulling at `down_at` and
/// resumes at `up_at` (server-churn scenarios; the model layer is *not*
/// told — detecting the effect is the monitoring stack's job).
struct FaultSchedule {
  ServerIdx server = -1;
  SimTime down_at;
  SimTime up_at;
};

/// Deactivates/reactivates servers per a fault schedule. An outage only
/// applies to a server that is up when it fires (a machine that is already
/// off cannot fail) — `outages_started` counts the outages that actually
/// took a server down.
class FaultDriver {
 public:
  FaultDriver(Simulator& sim, GridApp& app);
  void add(FaultSchedule fault);
  /// Arm the outages; call once before Simulator::run_until.
  void start();

  std::uint64_t outages_started() const { return started_count_; }
  std::uint64_t outages_ended() const { return ended_count_; }

 private:
  Simulator& sim_;
  GridApp& app_;
  std::vector<FaultSchedule> faults_;
  std::uint64_t started_count_ = 0;
  std::uint64_t ended_count_ = 0;
  bool started_ = false;
};

/// Applies competition-rate steps at their breakpoints.
class CompetitionDriver {
 public:
  CompetitionDriver(Simulator& sim, FlowNetwork& net);
  void add(CompetitionSchedule schedule);
  void start();

 private:
  void apply(std::size_t i);
  Simulator& sim_;
  FlowNetwork& net_;
  std::vector<CompetitionSchedule> schedules_;
};

}  // namespace arcadia::sim
