#include "sim/app.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace arcadia::sim {

GridApp::GridApp(Simulator& sim, FlowNetwork& net, AppConfig config)
    : sim_(sim), net_(net), config_(config), master_rng_(config.seed) {}

ClientIdx GridApp::add_client(const std::string& name, NodeId node) {
  Client c;
  c.name = name;
  c.node = node;
  clients_.push_back(std::move(c));
  return static_cast<ClientIdx>(clients_.size() - 1);
}

GroupIdx GridApp::add_group(const std::string& name) {
  Group g;
  g.name = name;
  groups_.push_back(std::move(g));
  return static_cast<GroupIdx>(groups_.size() - 1);
}

ServerIdx GridApp::add_server(const std::string& name, NodeId node,
                              GroupIdx group, bool active) {
  Server s;
  s.name = name;
  s.node = node;
  s.group = group;
  s.active = active && group != kNoGroup;
  s.rng = master_rng_.fork(servers_.size() + 1000);
  servers_.push_back(std::move(s));
  ServerIdx idx = static_cast<ServerIdx>(servers_.size() - 1);
  if (group != kNoGroup) groups_.at(group).members.push_back(idx);
  return idx;
}

void GridApp::set_queue_node(NodeId node) { queue_node_ = node; }

void GridApp::assign_client(ClientIdx c, GroupIdx g) {
  clients_.at(c).group = g;
  (void)groups_.at(g);
}

void GridApp::issue_request(ClientIdx c, DataSize request_size,
                            DataSize response_size) {
  if (queue_node_ == kNoNode) throw SimError("GridApp: queue node not set");
  Client& client = clients_.at(c);
  if (client.group == kNoGroup) {
    throw SimError("client " + client.name + " has no server group");
  }
  Request req;
  req.id = next_request_id_++;
  req.client = c;
  req.request_size = request_size;
  req.response_size = response_size;
  req.created = sim_.now();
  ++client.stats.issued;
  client.outstanding.emplace(req.id, req.created);
  // Ship the request body to the queue machine; group routing happens on
  // arrival, so a move_client issued while the request is in flight applies.
  net_.start_transfer(client.node, queue_node_, request_size,
                      [this, req]() mutable { arrival_at_queue(req); });
}

void GridApp::arrival_at_queue(Request req) {
  req.enqueued = sim_.now();
  GroupIdx g = clients_.at(req.client).group;
  Group& group = groups_.at(g);
  group.queue.push_back(req);
  if (on_enqueue) on_enqueue(group.queue.back(), g);
  wake_group(g);
}

void GridApp::wake_group(GroupIdx g) {
  for (ServerIdx s : groups_.at(g).members) {
    if (groups_.at(g).queue.empty()) break;
    try_pull(s);
  }
}

void GridApp::try_pull(ServerIdx s) {
  Server& server = servers_.at(s);
  if (!server.active || server.busy || server.group == kNoGroup) return;
  Group& group = groups_.at(server.group);
  if (group.queue.empty()) return;
  Request req = group.queue.front();
  group.queue.pop_front();
  server.busy = true;
  // Pulling the request descriptor from the queue machine costs a small
  // control-plane round trip.
  sim_.schedule_in(config_.pull_delay,
                   [this, s, req]() mutable { begin_service(s, req); });
}

void GridApp::begin_service(ServerIdx s, Request req) {
  Server& server = servers_.at(s);
  req.dequeued = sim_.now();
  req.served_by = s;
  req.served_by_group = server.group;
  SimTime service = draw_service_time(server, req.response_size);
  sim_.schedule_in(service,
                   [this, s, req]() mutable { finish_service(s, req); });
}

void GridApp::finish_service(ServerIdx s, Request req) {
  Server& server = servers_.at(s);
  req.service_done = sim_.now();
  ++server.served;
  if (req.served_by_group != kNoGroup) ++groups_.at(req.served_by_group).served;
  // Hand the response to this server's connection to the client; the
  // server is then free to pull the next request (asynchronous send,
  // in-order delivery per server<->client connection).
  push_response(req.client, s, PendingResponse{req, server.node});
  server.busy = false;
  if (server.deactivate_requested) {
    server.deactivate_requested = false;
    server.active = false;
    if (on_server_state) on_server_state(s, false);
    return;
  }
  try_pull(s);
}

void GridApp::push_response(ClientIdx c, ServerIdx s, PendingResponse pr) {
  Conn& conn = clients_.at(c).conns[s];
  conn.queue.push_back(std::move(pr));
  if (!conn.busy) start_next_response(c, s);
}

void GridApp::start_next_response(ClientIdx c, ServerIdx s) {
  Client& client = clients_.at(c);
  Conn& conn = client.conns[s];
  if (conn.queue.empty()) {
    conn.busy = false;
    return;
  }
  conn.busy = true;
  PendingResponse pr = std::move(conn.queue.front());
  conn.queue.pop_front();
  const DataSize size = pr.req.response_size;
  const NodeId from = pr.from_node;
  net_.start_transfer(from, client.node, size,
                      [this, c, s, req = pr.req]() mutable {
    req.completed = sim_.now();
    Client& cl = clients_.at(c);
    ++cl.stats.completed;
    cl.stats.latency_sum_s += req.latency().as_seconds();
    cl.outstanding.erase(req.id);
    ++total_completed_;
    if (on_response) on_response(req);
    start_next_response(c, s);
  });
}

SimTime GridApp::draw_service_time(Server& s, DataSize response_size) {
  const double nominal_s = config_.service_base.as_seconds() +
                           config_.service_per_kb.as_seconds() *
                               response_size.as_kilobytes();
  const double jitter =
      config_.service_sigma > 0.0
          ? s.rng.lognormal_with_mean(1.0, config_.service_sigma)
          : 1.0;
  return SimTime::seconds(nominal_s * jitter);
}

void GridApp::move_client(ClientIdx c, GroupIdx g) {
  Client& client = clients_.at(c);
  (void)groups_.at(g);
  ARC_DEBUG << "app: move " << client.name << " -> " << groups_[g].name;
  client.group = g;
}

void GridApp::connect_server(ServerIdx s, GroupIdx g) {
  Server& server = servers_.at(s);
  (void)groups_.at(g);
  if (server.group == g) return;
  if (server.group != kNoGroup) {
    auto& members = groups_.at(server.group).members;
    members.erase(std::remove(members.begin(), members.end(), s),
                  members.end());
  }
  server.group = g;
  groups_.at(g).members.push_back(s);
  if (server.active && !server.busy) try_pull(s);
}

void GridApp::activate_server(ServerIdx s) {
  Server& server = servers_.at(s);
  if (server.failed) {
    throw SimError("activate_server(" + server.name + "): machine is down");
  }
  if (server.group == kNoGroup) {
    throw SimError("activate_server(" + server.name + "): not connected to a queue");
  }
  server.deactivate_requested = false;
  if (server.active) return;
  server.active = true;
  if (on_server_state) on_server_state(s, true);
  try_pull(s);
}

void GridApp::deactivate_server(ServerIdx s) {
  Server& server = servers_.at(s);
  if (!server.active) return;
  if (server.busy) {
    server.deactivate_requested = true;
  } else {
    server.active = false;
    if (on_server_state) on_server_state(s, false);
  }
}

void GridApp::set_server_failed(ServerIdx s, bool failed) {
  servers_.at(s).failed = failed;
}

GroupIdx GridApp::create_group(const std::string& name) {
  return add_group(name);
}

const std::string& GridApp::client_name(ClientIdx c) const {
  return clients_.at(c).name;
}
const std::string& GridApp::server_name(ServerIdx s) const {
  return servers_.at(s).name;
}
const std::string& GridApp::group_name(GroupIdx g) const {
  return groups_.at(g).name;
}

ClientIdx GridApp::find_client(const std::string& name) const {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].name == name) return static_cast<ClientIdx>(i);
  }
  return -1;
}
ServerIdx GridApp::find_server(const std::string& name) const {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i].name == name) return static_cast<ServerIdx>(i);
  }
  return -1;
}
GroupIdx GridApp::find_group(const std::string& name) const {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].name == name) return static_cast<GroupIdx>(i);
  }
  return kNoGroup;
}

NodeId GridApp::client_node(ClientIdx c) const { return clients_.at(c).node; }
NodeId GridApp::server_node(ServerIdx s) const { return servers_.at(s).node; }

NodeId GridApp::group_node(GroupIdx g) const {
  for (ServerIdx s : groups_.at(g).members) {
    if (servers_[s].active) return servers_[s].node;
  }
  return queue_node_;
}

GroupIdx GridApp::client_group(ClientIdx c) const { return clients_.at(c).group; }
GroupIdx GridApp::server_group(ServerIdx s) const { return servers_.at(s).group; }
bool GridApp::server_active(ServerIdx s) const { return servers_.at(s).active; }
bool GridApp::server_failed(ServerIdx s) const { return servers_.at(s).failed; }
bool GridApp::server_busy(ServerIdx s) const { return servers_.at(s).busy; }

std::size_t GridApp::queue_length(GroupIdx g) const {
  return groups_.at(g).queue.size();
}

std::vector<ServerIdx> GridApp::active_servers(GroupIdx g) const {
  std::vector<ServerIdx> out;
  for (ServerIdx s : groups_.at(g).members) {
    if (servers_[s].active) out.push_back(s);
  }
  return out;
}

std::vector<ClientIdx> GridApp::clients_assigned(GroupIdx g) const {
  std::vector<ClientIdx> out;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].group == g) out.push_back(static_cast<ClientIdx>(i));
  }
  return out;
}

std::vector<ServerIdx> GridApp::spare_servers() const {
  std::vector<ServerIdx> out;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!servers_[i].active && !servers_[i].busy && !servers_[i].failed) {
      out.push_back(static_cast<ServerIdx>(i));
    }
  }
  return out;
}

double GridApp::group_utilization(GroupIdx g) const {
  std::size_t active = 0;
  std::size_t busy = 0;
  for (ServerIdx s : groups_.at(g).members) {
    if (!servers_[s].active) continue;
    ++active;
    if (servers_[s].busy) ++busy;
  }
  if (active == 0) return 0.0;
  return static_cast<double>(busy) / static_cast<double>(active);
}

const ClientStats& GridApp::client_stats(ClientIdx c) const {
  return clients_.at(c).stats;
}

std::size_t GridApp::outstanding_requests(ClientIdx c) const {
  return clients_.at(c).outstanding.size();
}

SimTime GridApp::oldest_outstanding_age(ClientIdx c) const {
  const Client& client = clients_.at(c);
  if (client.outstanding.empty()) return SimTime::zero();
  // Ids are issued in time order, so the first entry is the oldest.
  return sim_.now() - client.outstanding.begin()->second;
}

std::size_t GridApp::pending_responses(ClientIdx c) const {
  const Client& client = clients_.at(c);
  std::size_t total = 0;
  for (const auto& [s, conn] : client.conns) {
    total += conn.queue.size() + (conn.busy ? 1 : 0);
  }
  return total;
}

}  // namespace arcadia::sim
