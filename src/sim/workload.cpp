#include "sim/workload.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace arcadia::sim {

WorkloadDriver::WorkloadDriver(Simulator& sim, GridApp& app, std::uint64_t seed)
    : sim_(sim), app_(app), master_(seed) {}

void WorkloadDriver::add(ClientWorkload workload) {
  Stream s;
  s.spec = std::move(workload);
  s.rng = master_.fork(streams_.size() + 1);
  streams_.push_back(std::move(s));
}

void WorkloadDriver::start() {
  if (started_) throw SimError("WorkloadDriver::start called twice");
  started_ = true;
  for (std::size_t i = 0; i < streams_.size(); ++i) arm_next(i);
}

void WorkloadDriver::arm_next(std::size_t i) {
  Stream& s = streams_[i];
  const SimTime now = sim_.now();
  const double rate = s.spec.rate_hz.value_at(now);
  if (rate <= 0.0) {
    // Paused: wake up when the rate next changes.
    SimTime wake = s.spec.rate_hz.next_change_after(now);
    if (wake.is_infinite()) return;  // silent for the rest of the run
    sim_.schedule_at(wake, [this, i] { arm_next(i); });
    return;
  }
  const SimTime gap = SimTime::seconds(s.rng.exponential(1.0 / rate));
  sim_.schedule_in(gap, [this, i] { fire(i); });
}

void WorkloadDriver::fire(std::size_t i) {
  Stream& s = streams_[i];
  const SimTime now = sim_.now();
  const double mean = s.spec.response_mean_bytes.value_at(now);
  const double sigma = s.spec.response_sigma.value_at(now);
  double size = mean;
  if (sigma > 0.0) {
    size = s.rng.lognormal_with_mean(mean, sigma);
    // Keep sizes physical: at least 1 KB, at most 8x the mean.
    size = std::clamp(size, 1024.0, mean * 8.0);
  }
  app_.issue_request(s.spec.client, s.spec.request_size, DataSize::bytes(size));
  ++issued_;
  arm_next(i);
}

FaultDriver::FaultDriver(Simulator& sim, GridApp& app)
    : sim_(sim), app_(app) {}

void FaultDriver::add(FaultSchedule fault) {
  if (fault.server < 0 ||
      fault.server >= static_cast<ServerIdx>(app_.server_count())) {
    throw SimError("FaultDriver::add: no such server index " +
                   std::to_string(fault.server));
  }
  if (fault.up_at <= fault.down_at) {
    throw SimError("FaultDriver::add: outage must end after it starts");
  }
  faults_.push_back(fault);
}

void FaultDriver::start() {
  if (started_) throw SimError("FaultDriver::start called twice");
  started_ = true;
  for (const FaultSchedule& f : faults_) {
    sim_.schedule_at(f.down_at, [this, f] {
      // A server that is already down (e.g. released by a trim repair)
      // cannot fail: the outage is skipped entirely, counters untouched,
      // and the reactivation is never scheduled — otherwise the driver
      // would silently undo a repair's deactivation.
      if (app_.server_active(f.server)) {
        // Failed first: a down machine must not look like a recruitable
        // spare, or a repair would cancel the outage by recruiting it.
        app_.set_server_failed(f.server, true);
        app_.deactivate_server(f.server);
        ++started_count_;
        sim_.schedule_at(f.up_at, [this, f] {
          app_.set_server_failed(f.server, false);
          if (app_.server_group(f.server) != kNoGroup) {
            // Reactivates a fully-down victim — and, when the outage ends
            // while the victim is still draining its in-flight request,
            // cancels the pending deferred deactivation so the server is
            // not stranded down after the outage officially ended.
            app_.activate_server(f.server);
          }
          ++ended_count_;
        });
      }
    });
  }
}

CompetitionDriver::CompetitionDriver(Simulator& sim, FlowNetwork& net)
    : sim_(sim), net_(net) {}

void CompetitionDriver::add(CompetitionSchedule schedule) {
  schedules_.push_back(std::move(schedule));
}

void CompetitionDriver::start() {
  for (std::size_t i = 0; i < schedules_.size(); ++i) apply(i);
}

void CompetitionDriver::apply(std::size_t i) {
  CompetitionSchedule& s = schedules_[i];
  const SimTime now = sim_.now();
  net_.set_background_rate(s.flow, Bandwidth::bps(s.rate_bps.value_at(now)));
  SimTime next = s.rate_bps.next_change_after(now);
  if (!next.is_infinite()) {
    sim_.schedule_at(next, [this, i] { apply(i); });
  }
}

}  // namespace arcadia::sim
