#include "sim/workload.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace arcadia::sim {

WorkloadDriver::WorkloadDriver(Simulator& sim, GridApp& app, std::uint64_t seed)
    : sim_(sim), app_(app), master_(seed) {}

void WorkloadDriver::add(ClientWorkload workload) {
  Stream s;
  s.spec = std::move(workload);
  s.rng = master_.fork(streams_.size() + 1);
  streams_.push_back(std::move(s));
}

void WorkloadDriver::start() {
  if (started_) throw SimError("WorkloadDriver::start called twice");
  started_ = true;
  for (std::size_t i = 0; i < streams_.size(); ++i) arm_next(i);
}

void WorkloadDriver::arm_next(std::size_t i) {
  Stream& s = streams_[i];
  const SimTime now = sim_.now();
  const double rate = s.spec.rate_hz.value_at(now);
  if (rate <= 0.0) {
    // Paused: wake up when the rate next changes.
    SimTime wake = s.spec.rate_hz.next_change_after(now);
    if (wake.is_infinite()) return;  // silent for the rest of the run
    sim_.schedule_at(wake, [this, i] { arm_next(i); });
    return;
  }
  const SimTime gap = SimTime::seconds(s.rng.exponential(1.0 / rate));
  sim_.schedule_in(gap, [this, i] { fire(i); });
}

void WorkloadDriver::fire(std::size_t i) {
  Stream& s = streams_[i];
  const SimTime now = sim_.now();
  const double mean = s.spec.response_mean_bytes.value_at(now);
  const double sigma = s.spec.response_sigma.value_at(now);
  double size = mean;
  if (sigma > 0.0) {
    size = s.rng.lognormal_with_mean(mean, sigma);
    // Keep sizes physical: at least 1 KB, at most 8x the mean.
    size = std::clamp(size, 1024.0, mean * 8.0);
  }
  app_.issue_request(s.spec.client, s.spec.request_size, DataSize::bytes(size));
  ++issued_;
  arm_next(i);
}

CompetitionDriver::CompetitionDriver(Simulator& sim, FlowNetwork& net)
    : sim_(sim), net_(net) {}

void CompetitionDriver::add(CompetitionSchedule schedule) {
  schedules_.push_back(std::move(schedule));
}

void CompetitionDriver::start() {
  for (std::size_t i = 0; i < schedules_.size(); ++i) apply(i);
}

void CompetitionDriver::apply(std::size_t i) {
  CompetitionSchedule& s = schedules_[i];
  const SimTime now = sim_.now();
  net_.set_background_rate(s.flow, Bandwidth::bps(s.rate_bps.value_at(now)));
  SimTime next = s.rate_bps.next_change_after(now);
  if (!next.is_infinite()) {
    sim_.schedule_at(next, [this, i] { apply(i); });
  }
}

}  // namespace arcadia::sim
