// Discrete-event simulation kernel. Deterministic: events at equal times run
// in scheduling order (FIFO tie-break by sequence number), so a run is a pure
// function of the initial schedule and the RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace arcadia::sim {

/// Cancellation token for a scheduled event. Copyable; cheap. Cancelling an
/// already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (auto s = state_.lock()) *s = true;
  }
  bool valid() const { return !state_.expired(); }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> state) : state_(std::move(state)) {}
  std::weak_ptr<bool> state_;
};

/// The event queue and clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns a handle usable
  /// to cancel the event before it fires.
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` after a delay from now.
  EventHandle schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue is empty or the next event is after
  /// `horizon`; the clock ends at min(horizon, last event time). Returns the
  /// number of events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

  /// Time of the next pending event, or SimTime::infinity().
  SimTime next_event_time() const;

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

/// Repeats a callback at a fixed period starting at `start`, until cancelled
/// or the callback returns false. Used for probe sampling and gauge reports.
class PeriodicTask {
 public:
  /// `fn` returns true to keep going.
  PeriodicTask(Simulator& sim, SimTime start, SimTime period,
               std::function<bool()> fn);
  ~PeriodicTask() { cancel(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel();
  bool active() const { return *alive_; }

 private:
  void arm(SimTime at);
  Simulator& sim_;
  SimTime period_;
  std::function<bool()> fn_;
  std::shared_ptr<bool> alive_;
  EventHandle next_;
};

}  // namespace arcadia::sim
