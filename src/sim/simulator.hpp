// Discrete-event simulation kernel. Deterministic: events at equal times run
// in scheduling order (FIFO tie-break by sequence number), so a run is a pure
// function of the initial schedule and the RNG seeds.
//
// The queue is allocation-free on the steady state: callbacks live in a
// pooled slot array inside small-buffer storage (util::SmallFn, >= 48 bytes
// inline), and cancellation is a slot + generation check instead of the
// shared_ptr<bool> token per event this design replaced. Heap traffic only
// happens when the pool or queue grows, or a capture exceeds the inline
// buffer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/error.hpp"
#include "util/small_fn.hpp"
#include "util/units.hpp"

namespace arcadia::sim {

class Simulator;

/// Cancellation token for a scheduled event. Copyable; cheap. Cancelling an
/// already-fired or already-cancelled event is a no-op, and a handle that
/// outlives its Simulator degrades to a safe no-op (the weak liveness token
/// expires with the simulator). valid() is true only while the event is
/// still pending: a cancelled or fired event's handle reports invalid.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  bool valid() const;

 private:
  friend class Simulator;
  EventHandle(std::weak_ptr<Simulator*> sim, std::uint32_t slot,
              std::uint32_t gen)
      : sim_(std::move(sim)), slot_(slot), gen_(gen) {}
  std::weak_ptr<Simulator*> sim_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event queue and clock.
class Simulator {
 public:
  Simulator() = default;
  // Pinned identity: self_ captures `this` for handle liveness checks, so
  // the simulator can neither be copied nor moved.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  Simulator(Simulator&&) = delete;
  Simulator& operator=(Simulator&&) = delete;

  SimTime now() const { return now_; }

  /// Set the clock origin of a PRISTINE simulator (nothing executed,
  /// nothing pending); throws SimError otherwise. Restore tooling uses it
  /// to rebuild ad-hoc rigs whose history starts mid-run; the framework's
  /// own recovery path never needs it — recovery re-executes from t = 0
  /// (see DESIGN.md §8), so its clocks always start at zero.
  void seed_clock(SimTime origin) {
    if (executed_ != 0 || live_ != 0) {
      throw SimError("seed_clock on a non-pristine simulator (" +
                     std::to_string(executed_) + " executed, " +
                     std::to_string(live_) + " pending)");
    }
    now_ = origin;
  }

  /// Schedule `fn` at absolute time `at` (>= now). Returns a handle usable
  /// to cancel the event before it fires.
  EventHandle schedule_at(SimTime at, util::SmallFn<void()> fn);

  /// Schedule `fn` after a delay from now.
  EventHandle schedule_in(SimTime delay, util::SmallFn<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue is empty or the next event is after
  /// `horizon`; the clock ends at min(horizon, last event time). Returns the
  /// number of events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  bool empty() const { return live_ == 0; }
  /// Number of pending (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return live_; }
  std::uint64_t executed() const { return executed_; }

  /// Time of the next pending event, or SimTime::infinity().
  SimTime next_event_time() const;

  /// Coordinator-facing name for next_event_time(): the time this simulator
  /// would advance to on the next step(), or infinity when idle. Purges
  /// cancelled tombstones, so the answer is exact — SimCoordinator derives
  /// the conservative window bound from it.
  SimTime peek_next_time() const { return next_event_time(); }

  /// Pre-size the slot pool and event heap for ~`events` concurrently
  /// pending events. Scenario builders call this from the ScenarioConfig
  /// estimate so big fleets (fleet-64x256) never pay reallocation storms
  /// mid-run; pool_growths()/queue_growths() stay 0 afterwards on the
  /// steady state (pinned by bench_buspath's counting-new hook).
  void reserve(std::size_t events);

  std::size_t slot_capacity() const { return slots_.capacity(); }
  std::size_t queue_capacity() const { return queue_.capacity(); }
  /// Number of times the slot pool grew past its reserved capacity.
  std::uint64_t pool_growths() const { return pool_growths_; }
  /// Number of times the event heap grew past its reserved capacity.
  std::uint64_t queue_growths() const { return queue_growths_; }

 private:
  friend class EventHandle;

  /// Pooled callback storage. A slot is re-armed under a new generation
  /// every time it is reused, so stale queue entries and stale handles are
  /// recognised by a generation mismatch.
  struct Slot {
    util::SmallFn<void()> fn;
    std::uint32_t gen = 1;
    bool armed = false;
  };
  /// Queue entries are 24-byte PODs; the heap never touches the callable
  /// itself.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  bool slot_pending(std::uint32_t idx, std::uint32_t gen) const {
    return idx < slots_.size() && slots_[idx].gen == gen && slots_[idx].armed;
  }
  // Explicit binary heap over queue_ (was std::priority_queue, which hides
  // its container and therefore cannot be reserve()d). Front is the minimum
  // (time, seq) — identical ordering to the old Later-comparator queue.
  void heap_push(const Entry& e) {
    if (queue_.size() == queue_.capacity()) ++queue_growths_;
    queue_.push_back(e);
    std::push_heap(queue_.begin(), queue_.end(), Later{});
  }
  void heap_pop() const {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    queue_.pop_back();
  }
  /// Pop cancelled tombstones off the queue head so the top entry, if any,
  /// is a live event.
  void drop_stale_top() const;

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::uint64_t pool_growths_ = 0;
  std::uint64_t queue_growths_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Min-heap (via Later + std::push_heap/pop_heap). mutable: lazy tombstone
  /// purging from const observers.
  mutable std::vector<Entry> queue_;
  /// Liveness token handed (weakly) to every EventHandle; dies with the
  /// simulator, so stale handles expire instead of dangling.
  std::shared_ptr<Simulator*> self_ = std::make_shared<Simulator*>(this);
};

/// Repeats a callback at a fixed period starting at `start`, until cancelled
/// or the callback returns false. Used for probe sampling and gauge reports.
class PeriodicTask {
 public:
  /// `fn` returns true to keep going.
  PeriodicTask(Simulator& sim, SimTime start, SimTime period,
               std::function<bool()> fn);
  ~PeriodicTask() { cancel(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel();
  bool active() const { return *alive_; }

 private:
  void arm(SimTime at);
  Simulator& sim_;
  SimTime period_;
  std::function<bool()> fn_;
  std::shared_ptr<bool> alive_;
  EventHandle next_;
};

}  // namespace arcadia::sim
