#include "sim/scenario_library.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario_registry.hpp"
#include "util/error.hpp"

namespace arcadia::sim {

Testbed build_grid_testbed(Simulator& sim, const ScenarioConfig& config) {
  const GridScaleConfig& grid = config.grid;
  if (grid.groups < 1 || grid.servers_per_group < 1 || grid.clients < 1 ||
      grid.clients_per_pod < 1 || grid.spares < 0) {
    throw Error("build_grid_testbed: invalid grid shape");
  }

  Testbed tb;
  tb.sim = &sim;
  tb.topo = std::make_unique<Topology>();
  Topology& topo = *tb.topo;
  const Bandwidth cap = config.link_capacity;

  // --- topology: a ring of routers — one per server group, one per client
  // pod, one for the queue/manager machines — with groups and pods
  // interleaved so group<->pod paths spread over the ring.
  const int pods =
      (grid.clients + grid.clients_per_pod - 1) / grid.clients_per_pod;
  std::vector<NodeId> group_routers(grid.groups);
  std::vector<NodeId> pod_routers(pods);
  NodeId manager_router = topo.add_node("R_mgr", NodeKind::Router);
  for (int g = 0; g < grid.groups; ++g) {
    group_routers[g] = topo.add_node("R_grp" + std::to_string(g + 1),
                                     NodeKind::Router);
  }
  for (int p = 0; p < pods; ++p) {
    pod_routers[p] =
        topo.add_node("R_pod" + std::to_string(p + 1), NodeKind::Router);
  }
  std::vector<NodeId> ring;
  ring.push_back(manager_router);
  for (int i = 0; i < std::max(grid.groups, pods); ++i) {
    if (i < grid.groups) ring.push_back(group_routers[i]);
    if (i < pods) ring.push_back(pod_routers[i]);
  }
  for (std::size_t i = 0; i < ring.size(); ++i) {
    topo.add_link(ring[i], ring[(i + 1) % ring.size()], cap);
  }

  NodeId m_queue = topo.add_node("m_queue", NodeKind::Host);
  NodeId m_mgr = topo.add_node("m_mgr", NodeKind::Host);
  topo.add_link(m_queue, manager_router, cap);
  topo.add_link(m_mgr, manager_router, cap);

  std::vector<std::vector<NodeId>> server_hosts(grid.groups);
  for (int g = 0; g < grid.groups; ++g) {
    for (int s = 0; s < grid.servers_per_group; ++s) {
      NodeId host = topo.add_node("m_srv" + std::to_string(g + 1) + "_" +
                                      std::to_string(s + 1),
                                  NodeKind::Host);
      topo.add_link(host, group_routers[g], cap);
      server_hosts[g].push_back(host);
    }
  }
  std::vector<NodeId> spare_hosts(grid.spares);
  for (int k = 0; k < grid.spares; ++k) {
    spare_hosts[k] =
        topo.add_node("m_spare" + std::to_string(k + 1), NodeKind::Host);
    topo.add_link(spare_hosts[k], group_routers[k % grid.groups], cap);
  }
  std::vector<NodeId> client_hosts(grid.clients);
  for (int c = 0; c < grid.clients; ++c) {
    client_hosts[c] =
        topo.add_node("m_user" + std::to_string(c + 1), NodeKind::Host);
    topo.add_link(client_hosts[c], pod_routers[c / grid.clients_per_pod], cap);
  }
  topo.compute_routes();

  tb.net = std::make_unique<FlowNetwork>(sim, topo);

  AppConfig app_cfg;
  app_cfg.service_base = config.service_base;
  app_cfg.service_per_kb = config.service_per_kb;
  app_cfg.service_sigma = config.service_sigma;
  app_cfg.seed = config.seed ^ 0xA5A5A5A5ULL;
  tb.app = std::make_unique<GridApp>(sim, *tb.net, app_cfg);
  GridApp& app = *tb.app;

  app.set_queue_node(m_queue);
  tb.manager_node = m_mgr;

  for (int g = 0; g < grid.groups; ++g) {
    GroupIdx group = app.add_group("Grp" + std::to_string(g + 1));
    tb.groups.push_back(group);
    for (int s = 0; s < grid.servers_per_group; ++s) {
      app.add_server("Srv" + std::to_string(g + 1) + "_" + std::to_string(s + 1),
                     server_hosts[g][s], group, true);
    }
  }
  // Keep the Figure 6 aliases meaningful where they can be.
  tb.sg1 = tb.groups.front();
  tb.sg2 = tb.groups.size() > 1 ? tb.groups[1] : kNoGroup;
  for (int k = 0; k < grid.spares; ++k) {
    tb.spares.push_back(app.add_server("Spare" + std::to_string(k + 1),
                                       spare_hosts[k], kNoGroup, false));
  }
  if (!tb.spares.empty()) tb.spare_s4 = tb.spares.front();
  if (tb.spares.size() > 1) tb.spare_s7 = tb.spares[1];

  for (int c = 0; c < grid.clients; ++c) {
    ClientIdx client =
        app.add_client("User" + std::to_string(c + 1), client_hosts[c]);
    app.assign_client(client, tb.groups[c % grid.groups]);
    tb.clients.push_back(client);
  }

  install_paper_workload(sim, tb, config);
  return tb;
}

Testbed build_flash_crowd_testbed(Simulator& sim, const ScenarioConfig& config) {
  Testbed tb = build_testbed_without_workload(sim, config);

  // Instead of the Figure 7 workload: steady normal traffic with a sudden
  // rate spike over [flash.start, flash.end).
  StepFunction rate(config.normal_rate_hz);
  rate.step(config.flash.start,
            config.normal_rate_hz * config.flash.rate_multiplier);
  rate.step(config.flash.end, config.normal_rate_hz);

  install_uniform_workload(
      sim, tb, config, rate,
      StepFunction(config.normal_response_mean.as_bytes()),
      StepFunction(config.normal_response_sigma));
  return tb;
}

Testbed build_server_churn_testbed(Simulator& sim,
                                   const ScenarioConfig& config) {
  Testbed tb = build_testbed(sim, config);

  // Rotating outages over Server Group 1's replicas; the monitoring stack
  // sees only their effects (load/utilization), exactly like a real
  // environment-induced change.
  tb.faults = std::make_unique<FaultDriver>(sim, *tb.app);
  const std::vector<ServerIdx>& victims = tb.sg1_servers;
  for (int k = 0; k < config.churn.outages; ++k) {
    FaultSchedule f;
    f.server = victims[static_cast<std::size_t>(k) % victims.size()];
    f.down_at = config.churn.first_outage + config.churn.period * k;
    f.up_at = f.down_at + config.churn.outage;
    tb.faults->add(f);
  }
  return tb;
}

Testbed build_fleet_tenant_testbed(Simulator& sim,
                                   const ScenarioConfig& config) {
  const FleetConfig& fleet = config.fleet;
  if (fleet.tenants < 1 || fleet.tenant_index < 0 ||
      fleet.tenant_index >= fleet.tenants) {
    throw Error("build_fleet_tenant_testbed: invalid tenant index");
  }
  ScenarioConfig tenant = config;
  // Decorrelate the arrival/service processes across tenants; the golden-
  // ratio multiplier spreads consecutive indices over the seed space.
  tenant.seed = config.seed + 0x9E3779B97F4A7C15ULL *
                                  static_cast<std::uint64_t>(fleet.tenant_index);
  // Fault draws decorrelate the same way: tenant k's fault plane must not
  // mirror tenant 0's, or every tenant would crash/lose reports in lockstep.
  tenant.fault.seed =
      config.fault.seed +
      0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(fleet.tenant_index);
  // Phase-shift the Figure 7 schedule so tenants stress at staggered times
  // (the fleet's aggregate load stays bounded, like real multi-tenant grids).
  const SimTime shift = fleet.phase_shift * fleet.tenant_index;
  tenant.quiescent_end += shift;
  tenant.stress_start += shift;
  tenant.stress_end += shift;
  Testbed tb = build_grid_testbed(sim, tenant);
  if (fleet.active_duration > SimTime::zero()) {
    // Duty-cycled tenant: traffic only inside the staggered active window.
    const SimTime start = config.quiescent_end + shift;
    StepFunction rate(0.0);
    rate.step(start, tenant.normal_rate_hz);
    rate.step(start + fleet.active_duration, 0.0);
    install_uniform_workload(
        sim, tb, tenant, rate,
        StepFunction(tenant.normal_response_mean.as_bytes()),
        StepFunction(tenant.normal_response_sigma));
  }
  return tb;
}

void register_builtin_scenarios(ScenarioRegistry& registry) {
  {
    ScenarioSpec spec;
    spec.name = "paper-fig6";
    spec.description =
        "The paper's Figure 6 testbed under the Figure 7 schedule "
        "(bandwidth competition, then a 20 KB @ 2/s stress phase)";
    spec.build = [](Simulator& sim, const ScenarioConfig& config) {
      return build_testbed(sim, config);
    };
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "paper-fig6-bidir";
    spec.description =
        "Figure 6/7 with bidirectional competition: monitoring traffic "
        "shares the congestion (the Section 5.3 monitoring-lag variant)";
    spec.defaults.comp_bidirectional = true;
    spec.build = [](Simulator& sim, const ScenarioConfig& config) {
      return build_testbed(sim, config);
    };
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "grid-4x16";
    spec.description =
        "Scaled grid: 4 server groups x 16 clients over an interleaved "
        "router ring; load-driven adaptation, no competition traffic";
    spec.build = build_grid_testbed;  // shape from ScenarioConfig::grid
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fleet-4x16";
    spec.description =
        "One tenant shard of a 4-tenant fleet: a grid-4x16 clone whose "
        "workload is phase-shifted per fleet.tenant_index; assemble the "
        "whole fleet with core::Fleet / FrameworkBuilder::build_fleet";
    spec.defaults.fleet.tenants = 4;
    spec.defaults.fleet.phase_shift = SimTime::seconds(60);
    // grid shape: the GridScaleConfig defaults ARE grid-4x16.
    spec.defaults.horizon = SimTime::seconds(600);
    spec.build = build_fleet_tenant_testbed;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fleet-64x256";
    spec.description =
        "One tenant shard of a 64-tenant fleet, 256 clients each (the "
        "sharded-kernel scale target, DESIGN.md §9): 8 server groups x 3 "
        "replicas + 4 spares per tenant, stress phases staggered by 4 s; "
        "drive with core::Fleet{sim_threads > 0} and Fleet::run_until";
    spec.defaults.fleet.tenants = 64;
    spec.defaults.fleet.phase_shift = SimTime::seconds(4);
    spec.defaults.grid.groups = 8;
    spec.defaults.grid.servers_per_group = 3;
    spec.defaults.grid.clients = 256;
    spec.defaults.grid.clients_per_pod = 16;
    spec.defaults.grid.spares = 4;
    spec.defaults.horizon = SimTime::seconds(300);
    spec.build = build_fleet_tenant_testbed;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "flash-crowd";
    spec.description =
        "Figure 6 testbed under a sudden 6x request-rate spike at 300 s "
        "instead of competition traffic";
    spec.defaults.horizon = SimTime::seconds(900);
    spec.defaults.comp_sg1_phase1_mbps = 0.0;
    spec.defaults.comp_sg1_stress_mbps = 0.0;
    spec.defaults.comp_sg1_final_mbps = 0.0;
    spec.defaults.comp_sg2_phase1_mbps = 0.0;
    spec.defaults.comp_sg2_stress_mbps = 0.0;
    spec.defaults.comp_sg2_final_mbps = 0.0;
    // Neutralize the Figure 7 stress phase; the flash window is the event.
    spec.defaults.stress_start = SimTime::seconds(1e9);
    spec.defaults.stress_end = SimTime::seconds(1e9);
    spec.build = build_flash_crowd_testbed;
    registry.add(std::move(spec));
  }
  {
    // Same builder as server-churn, with the outages packed tightly enough
    // that the next fault lands while the previous repair's plan is still
    // enacting (repairs take ~30 s with cold gauges). Run it with
    // FrameworkConfig::plan_preemption to let the strictly worse follow-on
    // violation abort the in-flight plan.
    ScenarioSpec spec;
    spec.name = "churn-mid-repair";
    spec.description =
        "server-churn with outages packed so each new fault lands while "
        "the previous repair's plan is still enacting; pair with "
        "FrameworkConfig::plan_preemption (factor ~1.2 for same-kind "
        "latency violations)";
    spec.defaults.horizon = SimTime::seconds(900);
    spec.defaults.normal_rate_hz = 1.5;
    spec.defaults.stress_start = SimTime::seconds(1e9);
    spec.defaults.stress_end = SimTime::seconds(1e9);
    spec.defaults.comp_sg1_phase1_mbps = 0.0;
    spec.defaults.comp_sg1_stress_mbps = 0.0;
    spec.defaults.comp_sg1_final_mbps = 0.0;
    spec.defaults.comp_sg2_phase1_mbps = 0.0;
    spec.defaults.comp_sg2_stress_mbps = 0.0;
    spec.defaults.comp_sg2_final_mbps = 0.0;
    spec.defaults.churn.first_outage = SimTime::seconds(240);
    spec.defaults.churn.period = SimTime::seconds(45);
    spec.defaults.churn.outage = SimTime::seconds(120);
    spec.defaults.churn.outages = 2;
    spec.build = build_server_churn_testbed;
    registry.add(std::move(spec));
  }
  {
    // The fault-plane reference scenario: the scaled grid under a lossy
    // monitoring substrate. One in ten reports vanishes on the bus, a few
    // are duplicated or delayed, channels drop out for tens of seconds at
    // a time, and one in ten runtime ops fails transiently. The adaptation
    // loop must still converge to zero violations at quiescence — retries
    // absorb the op faults, the watchdog holds verdicts over dark
    // channels, and duplicate/late reports coalesce away.
    ScenarioSpec spec;
    spec.name = "lossy-grid";
    spec.description =
        "grid-4x16 over a lossy monitoring substrate: 10% report loss, "
        "2% duplication, 5% delayed 1-5 s, channel disconnect windows, "
        "and 10% transient runtime-op failures (retried with backoff)";
    spec.defaults.horizon = SimTime::seconds(900);
    // Stress runs from the struct default (600 s) to the shortened
    // horizon; without this the inherited stress_end (1200 s) dangles
    // past the run (arcverify: scenario-config).
    spec.defaults.stress_end = SimTime::seconds(900);
    spec.defaults.fault.enabled = true;
    spec.defaults.fault.monitoring.report_loss = 0.10;
    spec.defaults.fault.monitoring.report_dup = 0.02;
    spec.defaults.fault.monitoring.report_delay = 0.05;
    spec.defaults.fault.monitoring.channel_disconnect = 0.002;
    spec.defaults.fault.repair.op_transient = 0.10;
    spec.build = build_grid_testbed;
    registry.add(std::move(spec));
  }
  {
    // The repair-seam stress scenario: server-churn's guaranteed repair
    // traffic, but every runtime step rolls against transient failures,
    // stalls (absorbed by per-op timeouts), and a mid-run permanent-fault
    // window during which repairs abort cleanly through compensation.
    ScenarioSpec spec;
    spec.name = "flaky-ops";
    spec.description =
        "server-churn with a flaky runtime: 20% transient op failures, "
        "10% op stalls (20-40 s, caught by op timeouts), and a permanent-"
        "failure window at 400-500 s exercising the abort path";
    spec.defaults.horizon = SimTime::seconds(1200);
    spec.defaults.normal_rate_hz = 1.5;
    spec.defaults.stress_start = SimTime::seconds(1e9);
    spec.defaults.stress_end = SimTime::seconds(1e9);
    spec.defaults.comp_sg1_phase1_mbps = 0.0;
    spec.defaults.comp_sg1_stress_mbps = 0.0;
    spec.defaults.comp_sg1_final_mbps = 0.0;
    spec.defaults.comp_sg2_phase1_mbps = 0.0;
    spec.defaults.comp_sg2_stress_mbps = 0.0;
    spec.defaults.comp_sg2_final_mbps = 0.0;
    spec.defaults.fault.enabled = true;
    spec.defaults.fault.repair.op_transient = 0.20;
    spec.defaults.fault.repair.op_stall = 0.10;
    spec.defaults.fault.repair.op_permanent = 0.5;
    spec.defaults.fault.repair.permanent_from = SimTime::seconds(400);
    spec.defaults.fault.repair.permanent_until = SimTime::seconds(500);
    spec.build = build_server_churn_testbed;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "server-churn";
    spec.description =
        "Figure 6 testbed with rotating 120 s outages over SG1's servers; "
        "the load they shed must be absorbed by repairs";
    spec.defaults.horizon = SimTime::seconds(1200);
    // Enough steady load that losing one of three replicas overloads the
    // remaining two (1.5 Hz x 6 clients vs ~4 req/s per server).
    spec.defaults.normal_rate_hz = 1.5;
    spec.defaults.stress_start = SimTime::seconds(1e9);
    spec.defaults.stress_end = SimTime::seconds(1e9);
    spec.defaults.comp_sg1_phase1_mbps = 0.0;
    spec.defaults.comp_sg1_stress_mbps = 0.0;
    spec.defaults.comp_sg1_final_mbps = 0.0;
    spec.defaults.comp_sg2_phase1_mbps = 0.0;
    spec.defaults.comp_sg2_stress_mbps = 0.0;
    spec.defaults.comp_sg2_final_mbps = 0.0;
    spec.build = build_server_churn_testbed;
    registry.add(std::move(spec));
  }
}

}  // namespace arcadia::sim
