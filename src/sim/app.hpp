// The grid storage application of Section 1: users (clients) send small
// requests to a request-queue machine, which splits them into per-server-
// group FIFO queues; replicated servers pull requests, process them, and
// stream the (much larger) result directly back to the requesting user.
//
// This is the *runtime layer*: it knows nothing about architectural models
// or repairs. Reconfiguration entry points (move_client, activate_server,
// ...) correspond one-to-one to the change operations the paper's Java
// implementation exposed via RMI (Table 1); the EnvironmentManager in
// src/runtime wraps them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace arcadia::sim {

using ClientIdx = std::int32_t;
using ServerIdx = std::int32_t;
using GroupIdx = std::int32_t;
inline constexpr GroupIdx kNoGroup = -1;

/// One client request through its whole life cycle.
struct Request {
  std::uint64_t id = 0;
  ClientIdx client = -1;
  DataSize request_size;
  DataSize response_size;
  SimTime created;            ///< client issued the request
  SimTime enqueued;           ///< arrived at the request-queue machine
  SimTime dequeued;           ///< a server pulled it
  SimTime service_done;       ///< server finished computing
  SimTime completed;          ///< response fully delivered to the client
  GroupIdx served_by_group = kNoGroup;
  ServerIdx served_by = -1;

  SimTime latency() const { return completed - created; }
  SimTime queue_wait() const { return dequeued - enqueued; }
};

/// Tunables for the application; scenario.cpp fills these from the paper's
/// parameters.
struct AppConfig {
  /// Service time = service_base + response_size * service_per_kb, then
  /// multiplied by lognormal(1, sigma) jitter. Size-dependent service is
  /// what couples the paper's "increase the file request size" stress to
  /// server load.
  SimTime service_base = SimTime::millis(50);
  SimTime service_per_kb = SimTime::millis(20);
  double service_sigma = 0.2;
  /// Control-plane latency for a server to pull a request from the queue
  /// machine (small; the request has already been shipped to the queue).
  SimTime pull_delay = SimTime::millis(5);
  std::uint64_t seed = 1;
};

/// Aggregate counters per client, exposed for tests and reports.
struct ClientStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  double latency_sum_s = 0.0;
};

class GridApp {
 public:
  GridApp(Simulator& sim, FlowNetwork& net, AppConfig config);

  // ---- construction (before the run) ----
  ClientIdx add_client(const std::string& name, NodeId node);
  GroupIdx add_group(const std::string& name);
  /// Add a server machine. `group` may be kNoGroup for a spare; spares
  /// start inactive regardless of `active`.
  ServerIdx add_server(const std::string& name, NodeId node, GroupIdx group,
                       bool active);
  void set_queue_node(NodeId node);
  /// Initial client -> group assignment.
  void assign_client(ClientIdx c, GroupIdx g);

  // ---- workload entry point ----
  /// Issue one request now; the request body travels to the queue machine
  /// over the network, is enqueued, served FIFO, and answered directly.
  void issue_request(ClientIdx c, DataSize request_size, DataSize response_size);

  // ---- reconfiguration operations (the runtime halves of Table 1) ----
  /// Future requests from c are routed to group g's queue. Requests already
  /// queued, in service, or in flight are unaffected (as on the testbed).
  void move_client(ClientIdx c, GroupIdx g);
  /// Re-home a server onto group g's queue. Takes effect after any request
  /// currently in service.
  void connect_server(ServerIdx s, GroupIdx g);
  /// Server begins pulling requests from its connected queue.
  void activate_server(ServerIdx s);
  /// Server stops pulling after finishing its current request.
  void deactivate_server(ServerIdx s);
  /// Mark a server failed (FaultDriver outages): it leaves the recruitable
  /// spare pool and activate_server throws until the fault clears.
  /// Clearing does not reactivate — that is the fault driver's decision.
  void set_server_failed(ServerIdx s, bool failed);
  /// Add a new (empty) request queue == a new server group.
  GroupIdx create_group(const std::string& name);

  // ---- queries ----
  std::size_t client_count() const { return clients_.size(); }
  std::size_t server_count() const { return servers_.size(); }
  std::size_t group_count() const { return groups_.size(); }
  const std::string& client_name(ClientIdx c) const;
  const std::string& server_name(ServerIdx s) const;
  const std::string& group_name(GroupIdx g) const;
  /// Reverse lookups; return -1 / kNoGroup when absent.
  ClientIdx find_client(const std::string& name) const;
  ServerIdx find_server(const std::string& name) const;
  GroupIdx find_group(const std::string& name) const;
  NodeId client_node(ClientIdx c) const;
  NodeId server_node(ServerIdx s) const;
  NodeId queue_node() const { return queue_node_; }
  /// A group's "location" for bandwidth purposes: the node of its first
  /// active server (falls back to the queue machine when empty).
  NodeId group_node(GroupIdx g) const;

  GroupIdx client_group(ClientIdx c) const;
  GroupIdx server_group(ServerIdx s) const;
  bool server_active(ServerIdx s) const;
  bool server_failed(ServerIdx s) const;
  bool server_busy(ServerIdx s) const;
  std::size_t queue_length(GroupIdx g) const;
  std::vector<ServerIdx> active_servers(GroupIdx g) const;
  std::vector<ClientIdx> clients_assigned(GroupIdx g) const;
  /// Inactive, non-failed servers not currently assigned work — the
  /// recruitable pool.
  std::vector<ServerIdx> spare_servers() const;
  /// Fraction of active servers currently busy, in [0,1]; 0 for no actives.
  double group_utilization(GroupIdx g) const;
  const ClientStats& client_stats(ClientIdx c) const;
  std::uint64_t total_completed() const { return total_completed_; }
  std::uint64_t total_issued() const { return next_request_id_; }
  /// Responses finished computing but still queued on one of the client's
  /// server connections (per-connection in-order delivery).
  std::size_t pending_responses(ClientIdx c) const;
  /// Requests issued but not yet answered.
  std::size_t outstanding_requests(ClientIdx c) const;
  /// Age of the client's oldest unanswered request (zero when none). This
  /// is what a latency probe can observe even when responses have stopped
  /// arriving entirely — a starved client must still be detectable.
  SimTime oldest_outstanding_age(ClientIdx c) const;

  // ---- instrumentation hooks (the probe attachment points) ----
  /// Fired when a response is fully delivered.
  std::function<void(const Request&)> on_response;
  /// Fired when a request is enqueued (after the queue machine receives it).
  std::function<void(const Request&, GroupIdx)> on_enqueue;
  /// Fired when a server starts/stops being active.
  std::function<void(ServerIdx, bool active)> on_server_state;

 private:
  struct PendingResponse {
    Request req;
    NodeId from_node;
  };
  /// One server<->client connection: responses from a given server to a
  /// given client deliver in order, but different servers' connections
  /// transfer in parallel (each server held its own socket on the
  /// testbed). This bounds concurrent flows without cross-group
  /// head-of-line blocking after a move.
  struct Conn {
    bool busy = false;
    std::deque<PendingResponse> queue;
  };
  struct Client {
    std::string name;
    NodeId node;
    GroupIdx group = kNoGroup;
    std::map<ServerIdx, Conn> conns;
    /// Unanswered requests: id -> creation time (insertion-ordered ids).
    std::map<std::uint64_t, SimTime> outstanding;
    ClientStats stats;
  };
  struct Group {
    std::string name;
    std::deque<Request> queue;
    std::vector<ServerIdx> members;
    std::uint64_t served = 0;
  };
  struct Server {
    std::string name;
    NodeId node;
    GroupIdx group = kNoGroup;
    bool active = false;
    bool busy = false;
    bool failed = false;
    bool deactivate_requested = false;
    Rng rng;
    std::uint64_t served = 0;
  };

  void arrival_at_queue(Request req);
  void wake_group(GroupIdx g);
  void try_pull(ServerIdx s);
  void begin_service(ServerIdx s, Request req);
  void finish_service(ServerIdx s, Request req);
  void push_response(ClientIdx c, ServerIdx s, PendingResponse pr);
  void start_next_response(ClientIdx c, ServerIdx s);
  SimTime draw_service_time(Server& s, DataSize response_size);

  Simulator& sim_;
  FlowNetwork& net_;
  AppConfig config_;
  Rng master_rng_;
  std::vector<Client> clients_;
  std::vector<Group> groups_;
  std::vector<Server> servers_;
  NodeId queue_node_ = kNoNode;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t total_completed_ = 0;
};

}  // namespace arcadia::sim
