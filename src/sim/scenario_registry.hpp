// String-keyed scenario registry: the open entry point to the scenario
// library. A scenario is a named (defaults, testbed factory) pair; benches,
// examples, and the experiment runner select scenarios by name instead of
// hard-wiring build_testbed. User code may register its own scenarios at
// start-up — the registry is how new workloads plug in without touching
// the core.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/scenario.hpp"
#include "util/annotations.hpp"

namespace arcadia::sim {

/// Builds a testbed for `config` over `sim`. Factories read the sub-config
/// fields they care about and ignore the rest.
using TestbedFactory =
    std::function<Testbed(Simulator& sim, const ScenarioConfig& config)>;

struct ScenarioSpec {
  std::string name;
  std::string description;
  /// The config the scenario is calibrated for; callers typically start
  /// from this and override individual knobs.
  ScenarioConfig defaults;
  TestbedFactory build;
};

/// Process-wide scenario catalog. Thread-safe; the built-in library
/// (paper-fig6, grid-NxM, flash-crowd, server-churn, ...) registers on
/// first access, so link order cannot drop it.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// Register a scenario; throws Error when the name is taken.
  void add(ScenarioSpec spec);
  /// Register or overwrite (for examples that tweak a stock scenario).
  void add_or_replace(ScenarioSpec spec);

  bool contains(const std::string& name) const;
  /// Look up a scenario; throws Error listing the catalog when unknown.
  ScenarioSpec at(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  ScenarioRegistry();

  mutable util::Mutex mutex_;
  std::map<std::string, ScenarioSpec> specs_ ARC_GUARDED_BY(mutex_);
};

/// Build a registered scenario with its calibrated defaults.
Testbed build_scenario(Simulator& sim, const std::string& name);
/// Build a registered scenario with an explicit config (start from
/// scenario_defaults(name) and override knobs).
Testbed build_scenario(Simulator& sim, const std::string& name,
                       const ScenarioConfig& config);
/// The calibrated defaults of a registered scenario.
ScenarioConfig scenario_defaults(const std::string& name);

}  // namespace arcadia::sim
