#include "sim/simulator.hpp"

namespace arcadia::sim {

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    throw SimError("schedule_at(" + std::to_string(at.as_seconds()) +
                   "s) is in the past (now=" + std::to_string(now_.as_seconds()) +
                   "s)");
  }
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(cancelled)};
  queue_.push(Entry{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= horizon) {
    if (step()) ++ran;
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (*entry.cancelled) continue;
    now_ = entry.time;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

SimTime Simulator::next_event_time() const {
  // The top may be a cancelled tombstone; that only makes this an upper
  // bound in rare cases, which run_until tolerates.
  return queue_.empty() ? SimTime::infinity() : queue_.top().time;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime start, SimTime period,
                           std::function<bool()> fn)
    : sim_(sim),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)) {
  arm(start);
}

void PeriodicTask::arm(SimTime at) {
  std::shared_ptr<bool> alive = alive_;
  next_ = sim_.schedule_at(at, [this, alive] {
    if (!*alive) return;
    if (fn_()) {
      arm(sim_.now() + period_);
    } else {
      *alive = false;
    }
  });
}

void PeriodicTask::cancel() {
  *alive_ = false;
  next_.cancel();
}

}  // namespace arcadia::sim
