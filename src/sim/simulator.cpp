#include "sim/simulator.hpp"

namespace arcadia::sim {

void EventHandle::cancel() {
  auto alive = sim_.lock();
  if (!alive) return;
  Simulator* sim = *alive;
  if (!sim->slot_pending(slot_, gen_)) return;
  sim->release_slot(slot_);
  --sim->live_;
}

bool EventHandle::valid() const {
  auto alive = sim_.lock();
  return alive && (*alive)->slot_pending(slot_, gen_);
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  if (slots_.size() == slots_.capacity()) ++pool_growths_;
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::reserve(std::size_t events) {
  slots_.reserve(events);
  free_slots_.reserve(events);
  queue_.reserve(events);
}

void Simulator::release_slot(std::uint32_t idx) {
  Slot& slot = slots_[idx];
  slot.fn = {};
  slot.armed = false;
  ++slot.gen;  // invalidates outstanding handles and queue tombstones
  free_slots_.push_back(idx);
}

EventHandle Simulator::schedule_at(SimTime at, util::SmallFn<void()> fn) {
  if (at < now_) {
    throw SimError("schedule_at(" + std::to_string(at.as_seconds()) +
                   "s) is in the past (now=" + std::to_string(now_.as_seconds()) +
                   "s)");
  }
  const std::uint32_t idx = acquire_slot();
  Slot& slot = slots_[idx];
  slot.fn = std::move(fn);
  slot.armed = true;
  heap_push(Entry{at, next_seq_++, idx, slot.gen});
  ++live_;
  return EventHandle{std::weak_ptr<Simulator*>(self_), idx, slot.gen};
}

void Simulator::drop_stale_top() const {
  while (!queue_.empty() &&
         !slot_pending(queue_.front().slot, queue_.front().gen)) {
    heap_pop();
  }
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t ran = 0;
  for (;;) {
    // Purge cancelled tombstones first: the horizon gate must see the next
    // LIVE event's time, or a stale entry before the horizon would let
    // step() execute a live event beyond it.
    drop_stale_top();
    if (queue_.empty() || queue_.front().time > horizon) break;
    if (step()) ++ran;
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.front();
    heap_pop();
    if (!slot_pending(entry.slot, entry.gen)) continue;  // cancelled tombstone
    // Take the callback and recycle the slot before running: the callback
    // may schedule new events (reusing this slot under a new generation),
    // and its own handle must already read as fired.
    util::SmallFn<void()> fn = std::move(slots_[entry.slot].fn);
    release_slot(entry.slot);
    --live_;
    now_ = entry.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

SimTime Simulator::next_event_time() const {
  drop_stale_top();
  return queue_.empty() ? SimTime::infinity() : queue_.front().time;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime start, SimTime period,
                           std::function<bool()> fn)
    : sim_(sim),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)) {
  arm(start);
}

void PeriodicTask::arm(SimTime at) {
  std::shared_ptr<bool> alive = alive_;
  next_ = sim_.schedule_at(at, [this, alive] {
    if (!*alive) return;
    if (fn_()) {
      arm(sim_.now() + period_);
    } else {
      *alive = false;
    }
  });
}

void PeriodicTask::cancel() {
  *alive_ = false;
  next_.cancel();
}

}  // namespace arcadia::sim
