#include "sim/scenario.hpp"

#include <algorithm>

namespace arcadia::sim {

namespace {

/// The Figure 7 request-rate steps, shared by all clients.
StepFunction rate_schedule(const ScenarioConfig& c) {
  StepFunction f(c.normal_rate_hz);
  f.step(c.stress_start, c.stress_rate_hz);
  f.step(c.stress_end, c.normal_rate_hz);
  return f;
}

StepFunction response_mean_schedule(const ScenarioConfig& c) {
  StepFunction f(c.normal_response_mean.as_bytes());
  f.step(c.stress_start, c.stress_response_size.as_bytes());
  f.step(c.stress_end, c.normal_response_mean.as_bytes());
  return f;
}

StepFunction response_sigma_schedule(const ScenarioConfig& c) {
  StepFunction f(c.normal_response_sigma);
  f.step(c.stress_start, 0.0);  // stress responses are fixed 20 KB
  f.step(c.stress_end, c.normal_response_sigma);
  return f;
}

}  // namespace

std::size_t estimate_event_reserve(const ScenarioConfig& config) {
  // Concurrently-pending events, not total events: each client keeps a
  // handful in flight (arrival timer, request/response transfer
  // completions, service completion, latency probe), each monitored
  // element a few periodic timers (probe sample, gauge report, watchdog),
  // plus drivers and control-loop slack. Generous constants — the cost of
  // over-reserving is a few hundred KB per simulator; the cost of growing
  // mid-run is a reallocation storm at fleet scale.
  const std::size_t clients =
      static_cast<std::size_t>(std::max(config.grid.clients, 16));
  const std::size_t servers = static_cast<std::size_t>(
      std::max(1, config.grid.groups) *
          (std::max(1, config.grid.servers_per_group)) +
      std::max(0, config.grid.spares));
  return clients * 8 + servers * 8 + 256;
}

Testbed build_testbed(Simulator& sim, const ScenarioConfig& config) {
  Testbed tb = build_testbed_without_workload(sim, config);
  install_paper_workload(sim, tb, config);
  return tb;
}

void install_paper_workload(Simulator& sim, Testbed& tb,
                            const ScenarioConfig& config) {
  install_uniform_workload(sim, tb, config, rate_schedule(config),
                           response_mean_schedule(config),
                           response_sigma_schedule(config));
}

void install_uniform_workload(Simulator& sim, Testbed& tb,
                              const ScenarioConfig& config,
                              const StepFunction& rate_hz,
                              const StepFunction& response_mean_bytes,
                              const StepFunction& response_sigma) {
  tb.workload =
      std::make_unique<WorkloadDriver>(sim, *tb.app, config.seed ^ 0x5EED5EEDULL);
  for (ClientIdx c : tb.clients) {
    ClientWorkload w;
    w.client = c;
    w.rate_hz = rate_hz;
    w.response_mean_bytes = response_mean_bytes;
    w.response_sigma = response_sigma;
    w.request_size = config.request_size;
    tb.workload->add(std::move(w));
  }
}

Testbed build_testbed_without_workload(Simulator& sim,
                                       const ScenarioConfig& config) {
  Testbed tb;
  tb.sim = &sim;
  tb.topo = std::make_unique<Topology>();
  Topology& topo = *tb.topo;

  // --- Figure 6: five routers in a ring, eleven application machines.
  // Machine placement (per the figure): {C1,C2 | S4}, {S1,S2,S3},
  // {C3, C4}, {S5+RQ | S6}, {C5,C6 | S7}.
  NodeId r1 = topo.add_node("R1", NodeKind::Router);
  NodeId r2 = topo.add_node("R2", NodeKind::Router);
  NodeId r3 = topo.add_node("R3", NodeKind::Router);
  NodeId r4 = topo.add_node("R4", NodeKind::Router);
  NodeId r5 = topo.add_node("R5", NodeKind::Router);

  NodeId m_c12 = topo.add_node("m_c12", NodeKind::Host);    // C1, C2
  NodeId m_s4 = topo.add_node("m_s4", NodeKind::Host);      // spare S4 + repair infra
  NodeId m_s1 = topo.add_node("m_s1", NodeKind::Host);      // SG1
  NodeId m_s2 = topo.add_node("m_s2", NodeKind::Host);
  NodeId m_s3 = topo.add_node("m_s3", NodeKind::Host);
  NodeId m_c3 = topo.add_node("m_c3", NodeKind::Host);
  NodeId m_c4 = topo.add_node("m_c4", NodeKind::Host);
  NodeId m_s5rq = topo.add_node("m_s5rq", NodeKind::Host);  // S5 + request queue
  NodeId m_s6 = topo.add_node("m_s6", NodeKind::Host);
  NodeId m_c56 = topo.add_node("m_c56", NodeKind::Host);    // C5, C6
  NodeId m_s7 = topo.add_node("m_s7", NodeKind::Host);      // spare S7
  // Endpoints for the bandwidth-competition generator (Section 5.1's
  // competing-traffic program).
  NodeId x_sg1 = topo.add_node("x_sg1", NodeKind::Host);
  NodeId x_c34a = topo.add_node("x_c34a", NodeKind::Host);
  NodeId x_sg2 = topo.add_node("x_sg2", NodeKind::Host);
  NodeId x_c34b = topo.add_node("x_c34b", NodeKind::Host);

  const Bandwidth cap = config.link_capacity;
  // Access links.
  topo.add_link(m_c12, r1, cap);
  topo.add_link(m_s4, r1, cap);
  topo.add_link(m_s1, r2, cap);
  topo.add_link(m_s2, r2, cap);
  topo.add_link(m_s3, r2, cap);
  topo.add_link(m_c3, r3, cap);
  topo.add_link(m_c4, r3, cap);
  topo.add_link(m_s5rq, r4, cap);
  topo.add_link(m_s6, r4, cap);
  topo.add_link(m_c56, r5, cap);
  topo.add_link(m_s7, r5, cap);
  topo.add_link(x_sg1, r2, cap);
  topo.add_link(x_c34a, r3, cap);
  topo.add_link(x_sg2, r4, cap);
  topo.add_link(x_c34b, r3, cap);
  // Router ring (order matters: it fixes BFS tie-breaks so that C1/C2 and
  // C5/C6 reach SG1 without crossing the R2<->R3 trunk the competition
  // saturates — mirroring the testbed's routing).
  topo.add_link(r1, r2, cap);
  topo.add_link(r2, r3, cap);
  topo.add_link(r3, r4, cap);
  topo.add_link(r4, r5, cap);
  topo.add_link(r5, r1, cap);
  topo.compute_routes();

  tb.net = std::make_unique<FlowNetwork>(sim, topo);

  AppConfig app_cfg;
  app_cfg.service_base = config.service_base;
  app_cfg.service_per_kb = config.service_per_kb;
  app_cfg.service_sigma = config.service_sigma;
  app_cfg.seed = config.seed ^ 0xA5A5A5A5ULL;
  tb.app = std::make_unique<GridApp>(sim, *tb.net, app_cfg);
  GridApp& app = *tb.app;

  app.set_queue_node(m_s5rq);
  tb.manager_node = m_s4;

  tb.sg1 = app.add_group("ServerGrp1");
  tb.sg2 = app.add_group("ServerGrp2");
  tb.groups = {tb.sg1, tb.sg2};
  tb.sg1_servers.push_back(app.add_server("Server1", m_s1, tb.sg1, true));
  tb.sg1_servers.push_back(app.add_server("Server2", m_s2, tb.sg1, true));
  tb.sg1_servers.push_back(app.add_server("Server3", m_s3, tb.sg1, true));
  tb.sg2_servers.push_back(app.add_server("Server5", m_s5rq, tb.sg2, true));
  tb.sg2_servers.push_back(app.add_server("Server6", m_s6, tb.sg2, true));
  // Spares: powered off, not connected to any queue.
  tb.spare_s4 = app.add_server("Server4", m_s4, kNoGroup, false);
  tb.spare_s7 = app.add_server("Server7", m_s7, kNoGroup, false);
  tb.spares = {tb.spare_s4, tb.spare_s7};

  const NodeId client_nodes[6] = {m_c12, m_c12, m_c3, m_c4, m_c56, m_c56};
  for (int i = 0; i < 6; ++i) {
    ClientIdx c =
        app.add_client("User" + std::to_string(i + 1), client_nodes[i]);
    app.assign_client(c, tb.sg1);  // all six start on Server Group 1
    tb.clients.push_back(c);
  }

  // --- Figure 7 competition. comp_sg1 saturates the R2->R3 trunk (the
  // direction SG1's responses to C3/C4 travel); comp_sg2 loads R4->R3.
  tb.competition = std::make_unique<CompetitionDriver>(sim, *tb.net);
  tb.comp_sg1 = tb.net->add_background(x_sg1, x_c34a);
  tb.comp_sg2 = tb.net->add_background(x_sg2, x_c34b);

  StepFunction sg1_rate(0.0);
  sg1_rate.step(config.quiescent_end, config.comp_sg1_phase1_mbps * 1e6);
  sg1_rate.step(config.stress_start, config.comp_sg1_stress_mbps * 1e6);
  sg1_rate.step(config.stress_end, config.comp_sg1_final_mbps * 1e6);
  tb.competition->add(CompetitionSchedule{tb.comp_sg1, sg1_rate});

  StepFunction sg2_rate(0.0);
  sg2_rate.step(config.quiescent_end, config.comp_sg2_phase1_mbps * 1e6);
  sg2_rate.step(config.stress_start, config.comp_sg2_stress_mbps * 1e6);
  sg2_rate.step(config.stress_end, config.comp_sg2_final_mbps * 1e6);
  tb.competition->add(CompetitionSchedule{tb.comp_sg2, sg2_rate});

  if (config.comp_bidirectional) {
    tb.comp_sg1_rev = tb.net->add_background(x_c34a, x_sg1);
    tb.comp_sg2_rev = tb.net->add_background(x_c34b, x_sg2);
    tb.competition->add(CompetitionSchedule{tb.comp_sg1_rev, sg1_rate});
    tb.competition->add(CompetitionSchedule{tb.comp_sg2_rev, sg2_rate});
  }

  return tb;
}

}  // namespace arcadia::sim
