// Flow-level network model. Links are full-duplex (a capacity per
// direction); application transfers share each directed channel max-min
// fairly, while background "competition" traffic is non-responsive: it takes
// its configured rate off the top, exactly like the constant-rate competition
// generator the paper ran on its testbed (Section 5.1). Available bandwidth
// — what Remos predicts — is the residual capacity a new flow would see.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace arcadia::sim {

using NodeId = std::int32_t;
using LinkId = std::int32_t;
/// A directed half of a link: link*2 (a->b) or link*2+1 (b->a).
using ChannelId = std::int32_t;
using FlowId = std::int64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr FlowId kNoFlow = -1;

enum class NodeKind { Host, Router };

/// Static topology plus shortest-path routing. Routes are computed once
/// (hop-count BFS, deterministic tie-break by node id) and are stable for
/// the lifetime of the topology — the testbed's static routing.
class Topology {
 public:
  NodeId add_node(const std::string& name, NodeKind kind);
  LinkId add_link(NodeId a, NodeId b, Bandwidth capacity_per_direction);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t channel_count() const { return links_.size() * 2; }

  const std::string& node_name(NodeId n) const { return nodes_.at(n).name; }
  NodeKind node_kind(NodeId n) const { return nodes_.at(n).kind; }
  /// Lookup by name; returns kNoNode if absent.
  NodeId find_node(const std::string& name) const;

  Bandwidth channel_capacity(ChannelId c) const {
    return links_.at(c / 2).capacity;
  }
  std::pair<NodeId, NodeId> channel_endpoints(ChannelId c) const;

  /// Finalize routing: run the all-pairs BFS and keep only the parent
  /// matrices (predecessor node + link per source). Must be called after
  /// the last add_*; path() throws before this. Channel sequences are
  /// materialized lazily per (src, dst) pair on first use — a fleet of 64
  /// tenant topologies only ever asks for the pairs its workload actually
  /// exercises, so the O(n^2) eager path table this replaces (hundreds of
  /// MB at fleet-64x256 scale) never gets built.
  void compute_routes();
  bool routes_ready() const { return routes_ready_; }

  /// Directed channel sequence from src to dst (empty when src == dst).
  /// Throws SimError if unreachable. The returned reference is stable for
  /// the lifetime of the topology (FlowNetwork caches the pointer). Not
  /// thread-safe: confine each topology to its owning shard's lane.
  const std::vector<ChannelId>& path(NodeId src, NodeId dst) const;

  /// Number of (src, dst) channel sequences materialized so far.
  std::size_t materialized_paths() const { return path_cache_.size(); }

 private:
  struct Node {
    std::string name;
    NodeKind kind;
    std::vector<std::pair<NodeId, LinkId>> adj;  // neighbor, link
  };
  struct Link {
    NodeId a;
    NodeId b;
    Bandwidth capacity;
  };

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  // Ordered map: only build-time lookups, and keeping it ordered means no
  // hash-ordered container sits on the simulation path at all (arclint
  // rule `unordered-container` holds tree-wide).
  std::map<std::string, NodeId> by_name_;
  bool routes_ready_ = false;
  // BFS predecessor matrices, indexed [src * N + v]: the node before `v`
  // on the shortest path from `src`, and the link taken into `v`.
  std::vector<NodeId> parent_node_;
  std::vector<LinkId> parent_link_;
  std::vector<bool> reachable_;
  // Lazily materialized channel sequences, keyed src * N + dst. std::map
  // node stability is what makes path()'s returned reference stable.
  mutable std::map<std::uint64_t, std::vector<ChannelId>> path_cache_;
  const std::vector<ChannelId> empty_path_{};
};

/// Statistics the benches report about the allocator.
struct FlowNetworkStats {
  std::uint64_t reallocations = 0;
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t waterfill_rounds = 0;
};

/// Dynamic flow state over a Topology, integrated with the Simulator: every
/// transfer completion is an event; every flow arrival/departure/rate change
/// triggers a max-min reallocation and completion rescheduling.
class FlowNetwork {
 public:
  FlowNetwork(Simulator& sim, const Topology& topo);

  /// Start a finite transfer; `on_complete` fires (once) at delivery time.
  /// Same-node transfers complete after a configurable loopback delay.
  FlowId start_transfer(NodeId src, NodeId dst, DataSize size,
                        std::function<void()> on_complete);

  /// Abort a transfer; its completion callback never fires.
  void cancel_transfer(FlowId id);

  /// Register a persistent non-responsive background flow (rate 0 until
  /// set_background_rate is called).
  FlowId add_background(NodeId src, NodeId dst);
  void set_background_rate(FlowId id, Bandwidth rate);
  Bandwidth background_rate(FlowId id) const;

  /// Current allocated rate of an active transfer (0 if finished/unknown).
  Bandwidth transfer_rate(FlowId id) const;
  /// Bytes not yet delivered (as of now).
  DataSize transfer_remaining(FlowId id) const;
  std::size_t active_transfers() const { return transfers_.size(); }

  /// Residual bandwidth a new flow from src to dst would observe: the
  /// minimum over path channels of (capacity - background - transfer usage),
  /// floored at `floor` so log-scale plots behave (the paper's Figure 10
  /// bottoms out around 100 bps). This is the Remos estimate.
  Bandwidth available_bandwidth(NodeId src, NodeId dst) const;

  /// Utilization in [0,1] of the most loaded channel along src->dst.
  double path_utilization(NodeId src, NodeId dst) const;

  const Topology& topology() const { return topo_; }
  const FlowNetworkStats& stats() const { return stats_; }

  /// Floor for available_bandwidth reporting (default 100 bps).
  void set_available_floor(Bandwidth floor) { floor_ = floor; }
  /// Delay for src==dst transfers (default 1 ms). The getter doubles as the
  /// minimum delivery delay through this network — no transfer completes in
  /// less — which is what SimCoordinator's lookahead derivation consumes.
  void set_loopback_delay(SimTime d) { loopback_delay_ = d; }
  SimTime loopback_delay() const { return loopback_delay_; }

 private:
  struct Transfer {
    NodeId src;
    NodeId dst;
    double remaining_bits;
    double rate_bps = 0.0;
    SimTime last_update;
    std::function<void()> on_complete;
    EventHandle completion;
    const std::vector<ChannelId>* path;
  };
  struct Background {
    NodeId src;
    NodeId dst;
    double rate_bps = 0.0;
    const std::vector<ChannelId>* path;
  };

  void reallocate();
  void advance_progress();
  void schedule_completion(FlowId id, Transfer& t);
  void complete_transfer(FlowId id);
  /// Effective per-channel capacity after subtracting background traffic.
  std::vector<double> effective_capacity() const;

  Simulator& sim_;
  const Topology& topo_;
  // Ordered by FlowId (ids are monotonic, so this is arrival order). The
  // allocator *iterates* these maps and the iteration order feeds both
  // floating-point accumulation (per-channel demand sums) and completion
  // scheduling — with a hash-ordered container the event sequence would
  // depend on the standard library's bucket layout. std::map makes every
  // walk deterministic by construction; flow counts are small (tens), so
  // the tree walk is not a hot-path concern.
  std::map<FlowId, Transfer> transfers_;
  std::map<FlowId, Background> backgrounds_;
  FlowId next_id_ = 1;
  Bandwidth floor_ = Bandwidth::bps(100.0);
  SimTime loopback_delay_ = SimTime::millis(1.0);
  FlowNetworkStats stats_;
};

}  // namespace arcadia::sim
