// arclint: shard — see shard_sim.hpp; cross-shard effects route through the
// coordinator seam only.
#include "sim/shard_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <future>
#include <string>

namespace arcadia::sim {

SimCoordinator::SimCoordinator(Simulator& control,
                               SimCoordinatorOptions options)
    : control_(control), options_(options) {}

SimCoordinator::~SimCoordinator() = default;

ShardSimulator& SimCoordinator::add_shard() {
  const auto id = static_cast<std::uint32_t>(shards_.size());
  shards_.push_back(std::make_unique<ShardSimulator>(id));
  outbox_.emplace_back();
  mail_seq_.push_back(0);
  return *shards_.back();
}

unsigned SimCoordinator::effective_threads() const {
  unsigned t = options_.threads;
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  // More workers than shards never helps: a shard is serial in a window.
  return static_cast<unsigned>(
      std::min<std::size_t>(t, std::max<std::size_t>(1, shards_.size())));
}

void SimCoordinator::post(std::uint32_t from, std::uint32_t to, SimTime at,
                          util::SmallFn<void()> fn) {
  if (from >= shards_.size() || to >= shards_.size()) {
    throw SimError("SimCoordinator::post: bad shard id " +
                   std::to_string(from) + " -> " + std::to_string(to));
  }
  assert(util::SerialLane::current() == shards_[from]->lane() &&
         "post() must be called from the source shard's lane");
  outbox_[from].push_back(Mail{at, from, to, mail_seq_[from]++, std::move(fn)});
}

void SimCoordinator::advance_all(SimTime bound) {
  const std::size_t n = shards_.size();
  const unsigned workers = effective_threads();
  if (workers <= 1 || n <= 1) {
    for (auto& s : shards_) s->advance_to(bound);
    return;
  }
  if (!pool_) pool_ = std::make_unique<ThreadPool>(workers - 1);
  // Dynamic work scheduling: shards grab the next index as they finish.
  // Duty-cycled fleets are imbalanced (a few busy tenants, many idle), so
  // contiguous chunking would serialize the busy ones onto one worker.
  // Which worker runs which shard varies run to run — and does not matter:
  // each shard's window is serial and the merge points are ordered.
  std::atomic<std::size_t> next{0};
  auto drain = [&next, bound, this, n] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      shards_[i]->advance_to(bound);
    }
  };
  std::vector<std::future<void>> joined;
  joined.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) joined.push_back(pool_->submit(drain));
  std::exception_ptr err;
  try {
    drain();  // the coordinator thread participates
  } catch (...) {
    err = std::current_exception();
  }
  // Join every worker before any rethrow: `drain` captures locals by
  // reference, so nothing may still be running when this frame unwinds.
  for (auto& f : joined) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

void SimCoordinator::deliver_mail(SimTime bound) {
  std::size_t total = 0;
  for (const auto& box : outbox_) total += box.size();
  if (total == 0) return;
  std::vector<Mail> merged;
  merged.reserve(total);
  for (auto& box : outbox_) {
    for (auto& m : box) merged.push_back(std::move(m));
    box.clear();
  }
  // (at, from, seq) is a total order independent of which worker ran which
  // shard; scheduling in this order fixes the target-side FIFO tie-break.
  std::sort(merged.begin(), merged.end(), [](const Mail& a, const Mail& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.from != b.from) return a.from < b.from;
    return a.seq < b.seq;
  });
  for (auto& m : merged) {
    if (m.at < bound) {
      throw SimError("cross-shard mail at t=" +
                     std::to_string(m.at.as_seconds()) +
                     "s violates lookahead (barrier bound t=" +
                     std::to_string(bound.as_seconds()) + "s)");
    }
    shards_[m.to]->sim().schedule_at(m.at, std::move(m.fn));
  }
  stats_.mail_delivered += total;
}

std::uint64_t SimCoordinator::run_until(SimTime horizon) {
  std::uint64_t ran = 0;
  while (control_.now() < horizon) {
    // Conservative bound: nothing can affect another shard strictly before
    // it. Control events (sweeps, snapshots) are the only coupling in the
    // fleet; post() mail additionally respects the configured lookahead.
    SimTime bound = horizon;
    const SimTime ctl = control_.peek_next_time();
    if (ctl < bound) bound = ctl;
    if (!options_.lookahead.is_infinite()) {
      const SimTime reach = control_.now() + options_.lookahead;
      if (reach < bound) bound = reach;
    }
    const std::uint64_t before = stats_.shard_events;
    advance_all(bound);
    std::uint64_t after = 0;
    for (const auto& s : shards_) after += s->events();
    stats_.shard_events = after;
    ran += after - before;
    deliver_mail(bound);
    if (barrier_hook_) barrier_hook_(bound);
    const std::uint64_t ctl_ran = control_.run_until(bound);
    stats_.control_events += ctl_ran;
    ran += ctl_ran;
    ++stats_.rounds;
  }
  // Leave every clock at the horizon (control_.run_until already clamped).
  for (auto& s : shards_) s->advance_to(horizon);
  return ran;
}

SimCoordinatorStats SimCoordinator::stats() const {
  SimCoordinatorStats out = stats_;
  std::uint64_t shard_events = 0;
  for (const auto& s : shards_) shard_events += s->events();
  out.shard_events = shard_events;
  return out;
}

}  // namespace arcadia::sim
