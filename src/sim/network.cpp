#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace arcadia::sim {

NodeId Topology::add_node(const std::string& name, NodeKind kind) {
  if (routes_ready_) throw SimError("Topology frozen: routes already computed");
  if (by_name_.count(name)) throw SimError("duplicate node name: " + name);
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{name, kind, {}});
  by_name_[name] = id;
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, Bandwidth capacity) {
  if (routes_ready_) throw SimError("Topology frozen: routes already computed");
  if (a == b) throw SimError("self-link at node " + node_name(a));
  if (a < 0 || b < 0 || a >= static_cast<NodeId>(nodes_.size()) ||
      b >= static_cast<NodeId>(nodes_.size())) {
    throw SimError("add_link: bad node id");
  }
  LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, capacity});
  nodes_[a].adj.emplace_back(b, id);
  nodes_[b].adj.emplace_back(a, id);
  return id;
}

NodeId Topology::find_node(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

std::pair<NodeId, NodeId> Topology::channel_endpoints(ChannelId c) const {
  const Link& l = links_.at(c / 2);
  if (c % 2 == 0) return {l.a, l.b};
  return {l.b, l.a};
}

void Topology::compute_routes() {
  const std::size_t n = nodes_.size();
  parent_node_.assign(n * n, kNoNode);
  parent_link_.assign(n * n, -1);
  reachable_.assign(n * n, false);
  path_cache_.clear();
  // BFS from every source; deterministic neighbor order = insertion order.
  // Only the predecessor matrices are kept; channel sequences materialize
  // on demand in path().
  for (NodeId src = 0; src < static_cast<NodeId>(n); ++src) {
    NodeId* prev_node = parent_node_.data() + static_cast<std::size_t>(src) * n;
    LinkId* prev_link = parent_link_.data() + static_cast<std::size_t>(src) * n;
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier{src};
    seen[src] = true;
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, link] : nodes_[u].adj) {
        if (seen[v]) continue;
        seen[v] = true;
        prev_node[v] = u;
        prev_link[v] = link;
        frontier.push_back(v);
      }
    }
    for (NodeId dst = 0; dst < static_cast<NodeId>(n); ++dst) {
      if (seen[dst]) reachable_[src * n + dst] = true;
    }
  }
  routes_ready_ = true;
}

const std::vector<ChannelId>& Topology::path(NodeId src, NodeId dst) const {
  if (!routes_ready_) throw SimError("Topology::path before compute_routes");
  const std::size_t n = nodes_.size();
  if (src < 0 || dst < 0 || src >= static_cast<NodeId>(n) ||
      dst >= static_cast<NodeId>(n)) {
    throw SimError("path: bad node id");
  }
  if (!reachable_[src * n + dst]) {
    throw SimError("no route " + node_name(src) + " -> " + node_name(dst));
  }
  if (src == dst) return empty_path_;
  const std::uint64_t key = static_cast<std::uint64_t>(src) * n + dst;
  auto it = path_cache_.find(key);
  if (it != path_cache_.end()) return it->second;
  // Materialize by backtracking the predecessor chain dst -> src; identical
  // construction (and therefore identical channel sequence) to the eager
  // all-pairs table this replaced.
  const NodeId* prev_node =
      parent_node_.data() + static_cast<std::size_t>(src) * n;
  const LinkId* prev_link =
      parent_link_.data() + static_cast<std::size_t>(src) * n;
  std::vector<ChannelId> rev;
  for (NodeId cur = dst; cur != src; cur = prev_node[cur]) {
    LinkId link = prev_link[cur];
    NodeId from = prev_node[cur];
    // channel direction: even = a->b, odd = b->a
    ChannelId chan = (links_[link].a == from) ? link * 2 : link * 2 + 1;
    rev.push_back(chan);
  }
  std::reverse(rev.begin(), rev.end());
  return path_cache_.emplace(key, std::move(rev)).first->second;
}

FlowNetwork::FlowNetwork(Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo) {
  if (!topo_.routes_ready()) {
    throw SimError("FlowNetwork requires Topology::compute_routes()");
  }
}

FlowId FlowNetwork::start_transfer(NodeId src, NodeId dst, DataSize size,
                                   std::function<void()> on_complete) {
  FlowId id = next_id_++;
  ++stats_.transfers_started;
  if (src == dst) {
    // Local delivery: no network resources consumed.
    sim_.schedule_in(loopback_delay_, [cb = std::move(on_complete), this] {
      ++stats_.transfers_completed;
      cb();
    });
    return id;
  }
  Transfer t;
  t.src = src;
  t.dst = dst;
  t.remaining_bits = size.as_bits();
  t.last_update = sim_.now();
  t.on_complete = std::move(on_complete);
  t.path = &topo_.path(src, dst);
  transfers_.emplace(id, std::move(t));
  reallocate();
  return id;
}

void FlowNetwork::cancel_transfer(FlowId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  it->second.completion.cancel();
  transfers_.erase(it);
  reallocate();
}

FlowId FlowNetwork::add_background(NodeId src, NodeId dst) {
  if (src == dst) throw SimError("background flow with src == dst");
  FlowId id = next_id_++;
  Background b;
  b.src = src;
  b.dst = dst;
  b.path = &topo_.path(src, dst);
  backgrounds_.emplace(id, std::move(b));
  return id;
}

void FlowNetwork::set_background_rate(FlowId id, Bandwidth rate) {
  auto it = backgrounds_.find(id);
  if (it == backgrounds_.end()) throw SimError("unknown background flow");
  if (it->second.rate_bps == rate.as_bps()) return;
  it->second.rate_bps = rate.as_bps();
  reallocate();
}

Bandwidth FlowNetwork::background_rate(FlowId id) const {
  auto it = backgrounds_.find(id);
  return it == backgrounds_.end() ? Bandwidth::zero()
                                  : Bandwidth::bps(it->second.rate_bps);
}

Bandwidth FlowNetwork::transfer_rate(FlowId id) const {
  auto it = transfers_.find(id);
  return it == transfers_.end() ? Bandwidth::zero()
                                : Bandwidth::bps(it->second.rate_bps);
}

DataSize FlowNetwork::transfer_remaining(FlowId id) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return DataSize::zero();
  const Transfer& t = it->second;
  double elapsed = (sim_.now() - t.last_update).as_seconds();
  double remaining = std::max(0.0, t.remaining_bits - t.rate_bps * elapsed);
  return DataSize::bytes(remaining / 8.0);
}

std::vector<double> FlowNetwork::effective_capacity() const {
  std::vector<double> eff(topo_.channel_count());
  for (ChannelId c = 0; c < static_cast<ChannelId>(eff.size()); ++c) {
    eff[c] = topo_.channel_capacity(c).as_bps();
  }
  // Background demand per channel; if oversubscribed, scale pro-rata (a
  // non-responsive blast cannot push more than the wire carries).
  std::vector<double> bg(eff.size(), 0.0);
  for (const auto& [id, b] : backgrounds_) {
    for (ChannelId c : *b.path) bg[c] += b.rate_bps;
  }
  for (std::size_t c = 0; c < eff.size(); ++c) {
    eff[c] = std::max(0.0, eff[c] - std::min(bg[c], eff[c]));
  }
  return eff;
}

void FlowNetwork::advance_progress() {
  const SimTime now = sim_.now();
  for (auto& [id, t] : transfers_) {
    double elapsed = (now - t.last_update).as_seconds();
    if (elapsed > 0.0) {
      t.remaining_bits = std::max(0.0, t.remaining_bits - t.rate_bps * elapsed);
    }
    t.last_update = now;
  }
}

void FlowNetwork::reallocate() {
  ++stats_.reallocations;
  advance_progress();

  std::vector<double> residual = effective_capacity();
  // Guard: a channel fully consumed by background still trickles, otherwise
  // transfers on it would never complete and the event queue would stall.
  const double kTrickleBps = 1.0;

  // Progressive filling (water-filling) max-min fairness. All application
  // transfers are greedy (infinite demand), so each round saturates at least
  // one channel and freezes the flows crossing it.
  std::vector<FlowId> unfrozen;
  unfrozen.reserve(transfers_.size());
  // transfers_ is ordered by FlowId, so this is already the deterministic
  // (arrival-order) sequence — no compensating sort needed.
  for (auto& [id, t] : transfers_) {
    t.rate_bps = 0.0;
    unfrozen.push_back(id);
  }

  std::vector<int> load(residual.size(), 0);
  while (!unfrozen.empty()) {
    ++stats_.waterfill_rounds;
    std::fill(load.begin(), load.end(), 0);
    for (FlowId id : unfrozen) {
      for (ChannelId c : *transfers_.at(id).path) ++load[c];
    }
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < residual.size(); ++c) {
      if (load[c] == 0) continue;
      share = std::min(share, std::max(residual[c], 0.0) / load[c]);
    }
    if (!std::isfinite(share)) break;  // no unfrozen flow crosses any channel
    share = std::max(share, kTrickleBps);
    // Identify the bottleneck channels of this round against the pristine
    // residuals, then freeze the flows crossing them. (Deciding and
    // subtracting must be separate passes: subtracting while scanning
    // would make later flows see already-reduced residuals and freeze on
    // channels that are not actually saturated.)
    std::vector<char> bottleneck(residual.size(), 0);
    for (std::size_t c = 0; c < residual.size(); ++c) {
      if (load[c] == 0) continue;
      if (std::max(residual[c], 0.0) / load[c] <= share * (1.0 + 1e-12) + 1e-9) {
        bottleneck[c] = 1;
      }
    }
    std::vector<FlowId> still;
    std::vector<FlowId> frozen_now;
    still.reserve(unfrozen.size());
    for (FlowId id : unfrozen) {
      Transfer& t = transfers_.at(id);
      bool crosses = false;
      for (ChannelId c : *t.path) {
        if (bottleneck[c]) {
          crosses = true;
          break;
        }
      }
      if (crosses) {
        frozen_now.push_back(id);
      } else {
        still.push_back(id);
      }
    }
    if (frozen_now.empty()) {
      // Numerical safety net (should not happen): freeze everything.
      frozen_now = std::move(still);
      still.clear();
    }
    for (FlowId id : frozen_now) {
      Transfer& t = transfers_.at(id);
      t.rate_bps = share;
      for (ChannelId c : *t.path) residual[c] -= share;
    }
    unfrozen = std::move(still);
  }

  for (auto& [id, t] : transfers_) schedule_completion(id, t);
}

void FlowNetwork::schedule_completion(FlowId id, Transfer& t) {
  t.completion.cancel();
  SimTime eta = transfer_time(DataSize::bytes(t.remaining_bits / 8.0),
                              Bandwidth::bps(t.rate_bps));
  if (eta.is_infinite()) return;  // will be rescheduled on the next reallocate
  t.completion = sim_.schedule_in(eta, [this, id] { complete_transfer(id); });
}

void FlowNetwork::complete_transfer(FlowId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  std::function<void()> cb = std::move(it->second.on_complete);
  transfers_.erase(it);
  ++stats_.transfers_completed;
  reallocate();
  if (cb) cb();
}

Bandwidth FlowNetwork::available_bandwidth(NodeId src, NodeId dst) const {
  if (src == dst) return Bandwidth::infinity();
  std::vector<double> residual = effective_capacity();
  for (const auto& [id, t] : transfers_) {
    for (ChannelId c : *t.path) residual[c] -= t.rate_bps;
  }
  double avail = std::numeric_limits<double>::infinity();
  for (ChannelId c : topo_.path(src, dst)) {
    avail = std::min(avail, residual[c]);
  }
  return Bandwidth::bps(std::max(avail, floor_.as_bps()));
}

double FlowNetwork::path_utilization(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  std::vector<double> used(topo_.channel_count(), 0.0);
  for (const auto& [id, b] : backgrounds_) {
    for (ChannelId c : *b.path) used[c] += b.rate_bps;
  }
  for (const auto& [id, t] : transfers_) {
    for (ChannelId c : *t.path) used[c] += t.rate_bps;
  }
  double worst = 0.0;
  for (ChannelId c : topo_.path(src, dst)) {
    double cap = topo_.channel_capacity(c).as_bps();
    if (cap > 0.0) worst = std::max(worst, std::min(used[c] / cap, 1.0));
  }
  return worst;
}

}  // namespace arcadia::sim
