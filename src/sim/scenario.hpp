// The paper's experimental set-up: the Figure 6 testbed (five routers,
// eleven application machines, 10 Mbps links) and the Figure 7 schedule
// (quiescent warm-up, bandwidth competition against C3/C4 <-> SG1, a
// stress phase with 20 KB requests twice a second from every client, and a
// recovery phase with better bandwidth to SG2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/profile.hpp"
#include "sim/app.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace arcadia::sim {

/// Architectural thresholds from the paper's task-layer profile.
struct Thresholds {
  SimTime max_latency = SimTime::seconds(2.0);  ///< 2 s latency bound
  double max_server_load = 6.0;                 ///< > 6 queued => overloaded
  Bandwidth min_bandwidth = Bandwidth::kbps(10.0);  ///< < 10 Kbps => starved
  /// Utilization below which a dynamically-recruited server may be released
  /// (the paper's third, unshown repair).
  double min_utilization = 0.2;
};

/// Scaled grid-NxM topology knobs (used by the "grid-NxM" scenarios).
struct GridScaleConfig {
  int groups = 4;             ///< server groups, one router + queue share each
  int servers_per_group = 2;  ///< initially active replicas per group
  int clients = 16;           ///< clients, spread over client-pod routers
  int clients_per_pod = 4;    ///< clients sharing one access router
  int spares = 2;             ///< powered-off recruitable servers
};

/// Flash-crowd schedule knobs (used by the "flash-crowd" scenario): a
/// sudden request-rate spike on top of the normal workload.
struct FlashCrowdConfig {
  SimTime start = SimTime::seconds(300);
  SimTime end = SimTime::seconds(600);
  double rate_multiplier = 6.0;  ///< normal_rate_hz * this during the crowd
};

/// Fleet-mode knobs (used by the "fleet-NxM" scenarios): one simulator
/// hosting `tenants` independent copies of a tenant testbed, each with its
/// own seed and a workload schedule phase-shifted by `tenant_index *
/// phase_shift` so tenants do not hit their stress windows in lockstep.
/// The scenario factory builds ONE tenant (the `tenant_index`-th);
/// core::Fleet loops the index to assemble the whole fleet.
struct FleetConfig {
  int tenants = 4;
  int tenant_index = 0;
  SimTime phase_shift = SimTime::seconds(60);
  /// Duty-cycled tenants: each tenant sends traffic only during
  /// [quiescent_end + tenant_index * phase_shift, + active_duration) and is
  /// quiet otherwise — the production-fleet regime where most tenants are
  /// idle at any instant. Zero keeps the always-on Figure 7 schedule.
  SimTime active_duration = SimTime::zero();
};

/// Server-churn schedule knobs (used by the "server-churn" scenario):
/// periodic outages rotating over a group's servers.
struct ChurnConfig {
  SimTime first_outage = SimTime::seconds(240);
  SimTime period = SimTime::seconds(300);  ///< between outage starts
  SimTime outage = SimTime::seconds(120);  ///< down-time per outage
  int outages = 3;                         ///< total outages scheduled
};

/// All knobs for one experiment run. Defaults reproduce the paper's set-up;
/// see DESIGN.md ("Calibration") for the rationale. Scenario factories in
/// the ScenarioRegistry interpret the sub-configs they care about (`grid`,
/// `flash`, `churn`) and ignore the rest.
struct ScenarioConfig {
  std::uint64_t seed = 42;
  SimTime horizon = SimTime::seconds(1800);

  // -- schedule breakpoints (Figure 7)
  SimTime quiescent_end = SimTime::seconds(120);
  SimTime stress_start = SimTime::seconds(600);
  SimTime stress_end = SimTime::seconds(1200);

  // -- workload
  double normal_rate_hz = 1.0;  ///< per client; 6 clients ~ 6 req/s total
  double stress_rate_hz = 2.0;  ///< "twice every second"
  DataSize request_size = DataSize::bytes(512);  ///< "0.5K on average"
  DataSize normal_response_mean = DataSize::kilobytes(10);
  DataSize stress_response_size = DataSize::kilobytes(20);  ///< fixed 20 KB
  double normal_response_sigma = 0.5;

  // -- service model (size-dependent; see DESIGN.md)
  SimTime service_base = SimTime::millis(50);
  SimTime service_per_kb = SimTime::millis(20);
  double service_sigma = 0.2;

  // -- network
  Bandwidth link_capacity = Bandwidth::mbps(10.0);

  // -- competition rates (Mbps) per phase, applied to the trunk the
  //    responses traverse. `phase1` = 120..600 s, `stress` = 600..1200 s,
  //    `final` = 1200..1800 s.
  double comp_sg1_phase1_mbps = 9.95;
  double comp_sg1_stress_mbps = 5.0;
  double comp_sg1_final_mbps = 3.0;
  double comp_sg2_phase1_mbps = 3.0;
  double comp_sg2_stress_mbps = 2.0;
  double comp_sg2_final_mbps = 0.5;

  /// Run the competition generators in both link directions (the testbed's
  /// cross traffic loaded the return path too). With this on, monitoring
  /// messages from the starved clients share the congestion — the
  /// Section 5.3 "monitoring lag" effect.
  bool comp_bidirectional = false;

  Thresholds thresholds;

  /// Fault injection (fault/profile.hpp): disabled by default, so every
  /// pre-existing scenario is bit-identical to pre-fault builds. The
  /// "lossy-grid" / "flaky-ops" scenarios ship calibrated profiles; the
  /// experiment runner hands an enabled profile to the framework, which
  /// constructs the FaultPlane and wraps the monitoring buses and the
  /// translator.
  fault::FaultProfile fault;

  // -- scenario-specific sub-configs (see the ScenarioRegistry catalog)
  GridScaleConfig grid;
  FlashCrowdConfig flash;
  ChurnConfig churn;
  FleetConfig fleet;
};

/// The built testbed: topology, network, application, drivers, and the
/// well-known element indices the rest of the framework wires against.
struct Testbed {
  Simulator* sim = nullptr;
  /// Registry name of the scenario that built this testbed ("" for ad-hoc
  /// construction).
  std::string scenario;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<FlowNetwork> net;
  std::unique_ptr<GridApp> app;
  std::unique_ptr<WorkloadDriver> workload;
  std::unique_ptr<CompetitionDriver> competition;
  /// Scheduled server outages (null unless the scenario churns servers).
  std::unique_ptr<FaultDriver> faults;

  std::vector<ClientIdx> clients;
  /// Every server group, in creation order; `spares` are the powered-off
  /// recruitable servers. Scenario-agnostic consumers iterate these.
  std::vector<GroupIdx> groups;
  std::vector<ServerIdx> spares;

  // -- Figure 6 well-known indices (kNoGroup/-1 outside the paper testbed)
  GroupIdx sg1 = kNoGroup;
  GroupIdx sg2 = kNoGroup;
  std::vector<ServerIdx> sg1_servers;  // S1,S2,S3
  std::vector<ServerIdx> sg2_servers;  // S5,S6
  ServerIdx spare_s4 = -1;
  ServerIdx spare_s7 = -1;

  /// The machine hosting the repair infrastructure (paper: the machine
  /// running Server 4); monitoring messages travel to it.
  NodeId manager_node = kNoNode;

  FlowId comp_sg1 = kNoFlow;
  FlowId comp_sg2 = kNoFlow;
  /// Reverse-direction competition (kNoFlow unless comp_bidirectional).
  FlowId comp_sg1_rev = kNoFlow;
  FlowId comp_sg2_rev = kNoFlow;

  /// Arm whatever drivers the scenario installed; call before
  /// Simulator::run_until.
  void start() {
    if (competition) competition->start();
    if (workload) workload->start();
    if (faults) faults->start();
  }
};

/// Upper estimate of the events concurrently pending in a simulator running
/// one testbed built from `config`: per-client request machinery (arrival
/// timer, transfer completions, service completion), per-element monitoring
/// timers (probes, gauge reports, watchdog), competition/fault drivers, and
/// control-loop slack. Scenario assembly passes it to Simulator::reserve()
/// so big fleets (fleet-64x256) never pay slot-pool or heap reallocation
/// storms mid-run — the steady state stays zero-alloc (bench_buspath pins
/// this with its counting operator-new hook).
std::size_t estimate_event_reserve(const ScenarioConfig& config);

/// Build the Figure 6 testbed and Figure 7 drivers over `sim` (the
/// "paper-fig6" scenario; kept as a plain function for ad-hoc rigs).
Testbed build_testbed(Simulator& sim, const ScenarioConfig& config);

/// The Figure 6 testbed with competition but no workload driver installed —
/// for scenarios that substitute their own request schedule.
Testbed build_testbed_without_workload(Simulator& sim,
                                       const ScenarioConfig& config);

/// Install the Figure 7 per-client workload (normal -> stress -> normal
/// stepping rates and response sizes) on a built testbed's clients.
void install_paper_workload(Simulator& sim, Testbed& testbed,
                            const ScenarioConfig& config);

/// Install the same schedules on every client of a built testbed (the
/// seeding matches install_paper_workload, so scenarios sharing a config
/// see identical arrival processes where their schedules agree).
void install_uniform_workload(Simulator& sim, Testbed& testbed,
                              const ScenarioConfig& config,
                              const StepFunction& rate_hz,
                              const StepFunction& response_mean_bytes,
                              const StepFunction& response_sigma);

}  // namespace arcadia::sim
