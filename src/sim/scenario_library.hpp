// The built-in scenario library behind the ScenarioRegistry:
//
//   paper-fig6        the paper's Figure 6 testbed + Figure 7 schedule
//   paper-fig6-bidir  same, with bidirectional competition (the Section 5.3
//                     "monitoring lag" variant)
//   grid-4x16         scaled grid: 4 server groups x 16 clients over a pod
//                     ring (parameterized via ScenarioConfig::grid)
//   flash-crowd       Figure 6 testbed under a sudden request-rate spike
//                     (ScenarioConfig::flash) instead of competition
//   server-churn      Figure 6 testbed with rotating server outages
//                     (ScenarioConfig::churn) the monitoring stack must
//                     detect and repair around
//   churn-mid-repair  server-churn with outages packed so each new fault
//                     lands while the previous repair's plan is still
//                     enacting (exercises plan preemption)
//   fleet-4x16        one tenant shard of a fleet: a grid-4x16 clone whose
//                     workload schedule is phase-shifted and re-seeded by
//                     ScenarioConfig::fleet::tenant_index; core::Fleet
//                     builds one per tenant over a shared simulator
#pragma once

#include "sim/scenario.hpp"

namespace arcadia::sim {

class ScenarioRegistry;

/// The parameterized grid-NxM factory (grid shape from `config.grid`);
/// exposed so user code can register other sizes under their own names.
Testbed build_grid_testbed(Simulator& sim, const ScenarioConfig& config);

/// Figure 6 testbed + flash-crowd workload (no competition traffic).
Testbed build_flash_crowd_testbed(Simulator& sim, const ScenarioConfig& config);

/// Figure 6 testbed + rotating SG1 outages on top of the normal workload.
Testbed build_server_churn_testbed(Simulator& sim, const ScenarioConfig& config);

/// One fleet tenant: the grid testbed of `config.grid`, with the Figure 7
/// schedule shifted by `config.fleet.tenant_index * config.fleet.phase_shift`
/// and the RNG seed decorrelated per tenant.
Testbed build_fleet_tenant_testbed(Simulator& sim, const ScenarioConfig& config);

/// Called once by ScenarioRegistry on first access.
void register_builtin_scenarios(ScenarioRegistry& registry);

}  // namespace arcadia::sim
