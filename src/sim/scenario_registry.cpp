#include "sim/scenario_registry.hpp"

#include "sim/scenario_library.hpp"
#include "util/catalog.hpp"
#include "util/error.hpp"

namespace arcadia::sim {

ScenarioRegistry::ScenarioRegistry() { register_builtin_scenarios(*this); }

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (spec.name.empty()) throw Error("ScenarioRegistry: empty scenario name");
  if (!spec.build) {
    throw Error("ScenarioRegistry: scenario '" + spec.name + "' has no factory");
  }
  util::MutexLock lock(mutex_);
  if (specs_.count(spec.name)) {
    throw Error("ScenarioRegistry: scenario '" + spec.name +
                "' already registered");
  }
  specs_.emplace(spec.name, std::move(spec));
}

void ScenarioRegistry::add_or_replace(ScenarioSpec spec) {
  if (spec.name.empty()) throw Error("ScenarioRegistry: empty scenario name");
  if (!spec.build) {
    throw Error("ScenarioRegistry: scenario '" + spec.name + "' has no factory");
  }
  util::MutexLock lock(mutex_);
  specs_[spec.name] = std::move(spec);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  util::MutexLock lock(mutex_);
  return specs_.count(name) > 0;
}

ScenarioSpec ScenarioRegistry::at(const std::string& name) const {
  util::MutexLock lock(mutex_);
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw Error("ScenarioRegistry: unknown scenario '" + name +
                "' (catalog:" + catalog_of(specs_) + ")");
  }
  return it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [key, spec] : specs_) out.push_back(key);
  return out;  // std::map keeps them sorted
}

std::size_t ScenarioRegistry::size() const {
  util::MutexLock lock(mutex_);
  return specs_.size();
}

Testbed build_scenario(Simulator& sim, const std::string& name) {
  const ScenarioSpec spec = ScenarioRegistry::instance().at(name);
  // Pre-size the event pool from the config before any event is scheduled:
  // steady-state runs then never grow the slot pool or the heap.
  sim.reserve(estimate_event_reserve(spec.defaults));
  Testbed tb = spec.build(sim, spec.defaults);
  tb.scenario = name;
  return tb;
}

Testbed build_scenario(Simulator& sim, const std::string& name,
                       const ScenarioConfig& config) {
  const ScenarioSpec spec = ScenarioRegistry::instance().at(name);
  sim.reserve(estimate_event_reserve(config));
  Testbed tb = spec.build(sim, config);
  tb.scenario = name;
  return tb;
}

ScenarioConfig scenario_defaults(const std::string& name) {
  return ScenarioRegistry::instance().at(name).defaults;
}

}  // namespace arcadia::sim
