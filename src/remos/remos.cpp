#include "remos/remos.hpp"

namespace arcadia::remos {

RemosService::RemosService(sim::Simulator& sim, const sim::FlowNetwork& net,
                           RemosConfig config)
    : sim_(sim), net_(net), config_(config) {}

Bandwidth RemosService::get_flow(sim::NodeId src, sim::NodeId dst) {
  ++stats_.queries;
  const auto key = std::make_pair(src, dst);
  const SimTime now = sim_.now();
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    // Cold: Remos must collect and analyze data for this pair.
    ++stats_.cold_queries;
    last_cost_ = config_.first_query_cost;
    Bandwidth value = net_.available_bandwidth(src, dst);
    cache_[key] = Entry{value, now};
    return value;
  }
  if (now - it->second.measured_at > config_.cache_ttl) {
    ++stats_.refreshes;
    last_cost_ = config_.cached_query_cost;
    it->second.value = net_.available_bandwidth(src, dst);
    it->second.measured_at = now;
    return it->second.value;
  }
  ++stats_.cache_hits;
  last_cost_ = config_.cached_query_cost;
  return it->second.value;
}

bool RemosService::is_warm(sim::NodeId src, sim::NodeId dst) const {
  return cache_.count(std::make_pair(src, dst)) > 0;
}

SimTime RemosService::prequery(
    const std::vector<std::pair<sim::NodeId, sim::NodeId>>& pairs) {
  bool any_cold = false;
  for (const auto& [src, dst] : pairs) {
    const auto key = std::make_pair(src, dst);
    if (cache_.count(key)) continue;
    any_cold = true;
    ++stats_.queries;
    ++stats_.cold_queries;
    cache_[key] = Entry{net_.available_bandwidth(src, dst), sim_.now()};
  }
  return any_cold ? config_.first_query_cost : SimTime::zero();
}

}  // namespace arcadia::remos
