// Simulated Remos (Lowekamp et al., Cluster Computing 1999): the resource
// query interface the paper uses as its network probe. remos_get_flow
// returns the predicted available bandwidth between two hosts.
//
// The paper's Section 5.3 calls out a behaviour this model reproduces: "The
// first Remos query for information about bandwidth between two nodes on
// the network takes several minutes because Remos needs to collect and
// analyze data. After this initial delay, the query is quite fast." and the
// mitigation: "we pre-queried Remos so that subsequent queries were much
// faster."
//
// Queries are synchronous against simulator state; each reports its
// modeled *cost* (collection delay) through last_query_cost() so callers —
// the repair engine in particular — can charge the delay to the operation
// that incurred it.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace arcadia::remos {

struct RemosConfig {
  /// Collection cost of the first query for a (src, dst) pair.
  SimTime first_query_cost = SimTime::seconds(60);
  /// Cost of queries against an already-collected pair.
  SimTime cached_query_cost = SimTime::millis(10);
  /// How long a measurement stays fresh; a stale entry is re-measured at
  /// cached cost (Remos keeps collecting in the background once started).
  SimTime cache_ttl = SimTime::seconds(30);
};

struct RemosStats {
  std::uint64_t queries = 0;
  std::uint64_t cold_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t refreshes = 0;
};

class RemosService {
 public:
  RemosService(sim::Simulator& sim, const sim::FlowNetwork& net,
               RemosConfig config = {});

  /// Predicted available bandwidth from src to dst (Table 1's
  /// remos_get_flow). Reads current simulator state; sets last_query_cost().
  Bandwidth get_flow(sim::NodeId src, sim::NodeId dst);

  /// The modeled latency of the most recent get_flow call.
  SimTime last_query_cost() const { return last_cost_; }

  /// Whether a pair has been collected (a query against it is fast).
  bool is_warm(sim::NodeId src, sim::NodeId dst) const;

  /// Warm a set of pairs up-front, as the paper's experiment did. Returns
  /// the modeled wall-clock cost of the warm-up (pairs collect in
  /// parallel: the cost of one cold query).
  SimTime prequery(const std::vector<std::pair<sim::NodeId, sim::NodeId>>& pairs);

  const RemosStats& stats() const { return stats_; }

 private:
  struct Entry {
    Bandwidth value;
    SimTime measured_at;
  };
  sim::Simulator& sim_;
  const sim::FlowNetwork& net_;
  RemosConfig config_;
  std::map<std::pair<sim::NodeId, sim::NodeId>, Entry> cache_;
  SimTime last_cost_;
  RemosStats stats_;
};

}  // namespace arcadia::remos
