// Whole-deployment semantic verification (arcverify's core-layer half).
//
// acme/analysis.hpp defines the rules over plain data; this module
// assembles that data from a live assembly: the installed constraints of
// a started Framework, the gauge mappings its GaugeManager deployed, the
// operator costs its environment declares, and the operator call sites
// reachable from its script's invariant handlers. It also validates
// scenario configurations against the registry and their own invariants
// (probabilities in range, ordered schedule breakpoints, positive
// topology counts).
//
// Used three ways: the FrameworkConfig::verify startup hook (warn or
// fail-fast on a misconfigured deployment), the tools/arcverify CLI (the
// ctest/CI gate over shipped scripts and every registered scenario), and
// tests.
#pragma once

#include <string>
#include <vector>

#include "acme/analysis.hpp"
#include "sim/scenario.hpp"

namespace arcadia::core {

class Framework;

/// Assemble the cross-artifact view of a *started* framework (gauges must
/// be deployed; Framework::start does that synchronously before its
/// verification hook runs).
acme::analysis::DeploymentView make_deployment_view(Framework& fw);

/// Script rules + deployment rules over one started framework.
std::vector<acme::analysis::AnalysisIssue> verify_framework(Framework& fw);

/// Validate a scenario configuration: `name` must be registered (empty
/// skips the registry check), probabilities must be probabilities, fault
/// windows and schedule breakpoints must be ordered, topology counts
/// positive. Rule id: "scenario-config".
std::vector<acme::analysis::AnalysisIssue> verify_scenario_config(
    const std::string& name, const sim::ScenarioConfig& config);

}  // namespace arcadia::core
