#include "core/framework_builder.hpp"

#include "repair/registry.hpp"

namespace arcadia::core {

FrameworkBuilder::FrameworkBuilder(sim::Simulator& sim, sim::Testbed& testbed)
    : sim_(sim), testbed_(testbed) {}

FrameworkBuilder& FrameworkBuilder::with_config(FrameworkConfig config) {
  config_ = std::move(config);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_profile(
    task::PerformanceProfile profile) {
  config_.profile = profile;
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_script(std::string source) {
  config_.use_script = true;
  config_.script_source = std::move(source);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_native_strategies() {
  config_.use_script = false;
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_policy(std::string policy_name) {
  // Fail at configuration time, not mid-run.
  repair::PolicyRegistry::instance().at(policy_name);
  config_.policy_name = std::move(policy_name);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_verification(VerifyMode mode) {
  config_.verify = mode;
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_durability(
    durability::Options options) {
  config_.durability = std::move(options);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_remos(
    FrameworkParts::RemosFactory factory) {
  parts_.remos = std::move(factory);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_probe_bus(
    FrameworkParts::BusFactory factory) {
  parts_.probe_bus = std::move(factory);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_gauge_bus(
    FrameworkParts::BusFactory factory) {
  parts_.gauge_bus = std::move(factory);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_model(
    FrameworkParts::ModelFactory factory) {
  parts_.model = std::move(factory);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_translator(
    FrameworkParts::TranslatorFactory factory) {
  parts_.translator = std::move(factory);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_probe_set(
    FrameworkParts::ProbeFactory factory) {
  parts_.probes = std::move(factory);
  return *this;
}

FrameworkBuilder& FrameworkBuilder::with_gauge_deployer(
    FrameworkParts::GaugeDeployer deployer) {
  parts_.gauges = std::move(deployer);
  return *this;
}

std::unique_ptr<Framework> FrameworkBuilder::build() {
  return std::make_unique<Framework>(sim_, testbed_, config_, parts_);
}

std::unique_ptr<Framework> FrameworkBuilder::build_started() {
  std::unique_ptr<Framework> fw = build();
  fw->start();
  return fw;
}

std::unique_ptr<Fleet> FrameworkBuilder::build_fleet(sim::Simulator& sim,
                                                     FleetOptions options) {
  return std::make_unique<Fleet>(sim, std::move(options));
}

}  // namespace arcadia::core
