#include "core/framework.hpp"

#include "acme/checker.hpp"
#include "core/verify.hpp"
#include "durability/model_codec.hpp"
#include "fault/fault_plane.hpp"
#include "fault/faulty_bus.hpp"
#include "fault/faulty_translator.hpp"
#include "model/types.hpp"
#include "monitor/gauge.hpp"
#include "util/log.hpp"

namespace arcadia::core {

Framework::Framework(sim::Simulator& sim, sim::Testbed& testbed,
                     FrameworkConfig config)
    : Framework(sim, testbed, std::move(config), FrameworkParts{}) {}

Framework::Framework(sim::Simulator& sim, sim::Testbed& testbed,
                     FrameworkConfig config, FrameworkParts parts)
    : sim_(sim),
      testbed_(testbed),
      config_(std::move(config)),
      parts_(std::move(parts)),
      script_(acme::parse_script(config_.script_source.empty()
                                     ? repair::extended_script()
                                     : config_.script_source)) {
  // Static-check the repair script against the style before trusting it
  // with the live model (misspelled properties, bad arities, ...).
  {
    static const model::Style style = model::client_server_style();
    acme::ScriptChecker checker = acme::make_client_server_checker(style);
    for (const acme::CheckIssue& problem : checker.check_script(script_)) {
      ARC_WARN << "repair script: " << problem.to_string();
    }
  }

  sim::GridApp& app = *testbed_.app;

  remos_ = parts_.remos
               ? parts_.remos(sim_, testbed_, config_)
               : std::make_unique<remos::RemosService>(sim_, *testbed_.net,
                                                       config_.remos_config);

  // Probe bus: probes and gauges are effectively colocated per machine, so
  // delivery is a small fixed cost. Gauge bus: reports cross the shared
  // network to the manager machine, so congestion delays them — unless the
  // QoS option prioritizes monitoring traffic (Section 5.3).
  probe_bus_ = parts_.probe_bus
                   ? parts_.probe_bus(sim_, testbed_, config_)
                   : std::make_unique<events::SimEventBus>(
                         sim_, events::fixed_delay(SimTime::millis(5)));
  gauge_bus_ = parts_.gauge_bus
                   ? parts_.gauge_bus(sim_, testbed_, config_)
                   : std::make_unique<events::SimEventBus>(
                         sim_, events::network_delay(*testbed_.net,
                                                     config_.bus_base_delay,
                                                     config_.monitoring_qos));

  // Fault plane first, so the decorators below can reference it. Disabled
  // profiles construct nothing — the wiring is bit-identical to pre-fault
  // builds.
  if (config_.fault.enabled) {
    fault_plane_ = std::make_unique<fault::FaultPlane>(sim_, config_.fault);
    lossy_probe_bus_ =
        std::make_unique<fault::FaultyBus>(sim_, *probe_bus_, *fault_plane_);
    lossy_gauge_bus_ =
        std::make_unique<fault::FaultyBus>(sim_, *gauge_bus_, *fault_plane_);
  }

  if (parts_.model) {
    system_ = parts_.model(testbed_, config_);
  } else {
    rt::ModelBuildOptions model_opts;
    model_opts.conventions = config_.conventions;
    model_opts.max_latency = config_.profile.max_latency;
    system_ = rt::build_grid_model(testbed_, model_opts);
  }
  // Task-layer objectives are applied on top of whatever the factory
  // built, so a substituted model cannot silently run un-profiled.
  task::apply_profile(*system_, config_.profile);

  env_ = std::make_unique<rt::SimEnvironmentManager>(app, *testbed_.topo,
                                                     *remos_, config_.env_costs);
  queries_ = std::make_unique<rt::SimRuntimeQueries>(app, *env_, *remos_);
  translator_ = parts_.translator
                    ? parts_.translator(*env_, config_)
                    : std::make_unique<rt::SimTranslator>(*env_,
                                                          config_.conventions);

  monitor::GaugeManagerConfig gauge_cfg = config_.gauge_costs;
  gauge_cfg.caching = config_.gauge_caching;
  if (fault_plane_ && gauge_cfg.watchdog_period <= SimTime::zero()) {
    // Faults are on but nobody armed the watchdog: channel disconnects
    // would silently starve the model. Default to one report period.
    gauge_cfg.watchdog_period = SimTime::seconds(5);
  }
  // Gauges publish reports into the lossy bus (when faults are on); their
  // probe subscriptions and lifecycle events are control-path and go
  // through either way.
  gauge_manager_ = std::make_unique<monitor::GaugeManager>(
      sim_, *probe_bus_,
      lossy_gauge_bus_ ? static_cast<events::EventBus&>(*lossy_gauge_bus_)
                       : *gauge_bus_,
      gauge_cfg);
  if (fault_plane_) gauge_manager_->set_fault_plane(fault_plane_.get());

  repair::RepairEngineConfig engine_cfg;
  engine_cfg.policy = config_.policy;
  engine_cfg.policy_name = config_.policy_name;
  engine_cfg.damping = config_.damping;
  engine_cfg.settle_time = config_.settle_time;
  engine_cfg.abort_cooldown = config_.abort_cooldown;
  engine_cfg.use_script = config_.use_script;
  engine_cfg.use_plan = config_.plan_pipeline;
  engine_cfg.preemption = config_.plan_preemption;
  engine_cfg.preempt_factor = config_.plan_preempt_factor;
  engine_cfg.max_server_load = config_.profile.max_server_load;
  engine_cfg.min_bandwidth = config_.profile.min_bandwidth;
  engine_cfg.min_utilization = config_.profile.min_utilization;
  engine_cfg.min_replicas = config_.profile.min_replicas;
  engine_cfg.load_improvement = config_.load_improvement;
  engine_cfg.conventions = config_.conventions;
  engine_cfg.retry = config_.retry;
  repair::Translator* engine_translator = translator_.get();
  if (fault_plane_) {
    flaky_translator_ = std::make_unique<fault::FaultyTranslator>(
        *translator_, *fault_plane_);
    engine_translator = flaky_translator_.get();
  }
  engine_ = std::make_unique<repair::RepairEngine>(
      sim_, *system_, script_, queries_.get(), engine_translator,
      gauge_manager_.get(), engine_cfg);
  // Plan lifecycle notifications share the gauge bus: fleet managers and
  // tools observe repairs in flight without new wiring.
  engine_->set_event_bus(gauge_bus_.get());

  ArchManagerConfig mgr_cfg;
  mgr_cfg.check_period = config_.check_period;
  mgr_cfg.first_check = config_.first_check;
  mgr_cfg.manager_node = testbed_.manager_node;
  mgr_cfg.passive = config_.fleet_managed;
  manager_ = std::make_unique<ArchitectureManager>(sim_, *system_, *gauge_bus_,
                                                   *engine_, mgr_cfg);

  // Task-layer thresholds visible in constraint expressions.
  repair::ConstraintChecker& checker = manager_->checker();
  checker.bind_global("maxServerLoad",
                      acme::EvalValue(config_.profile.max_server_load));
  checker.bind_global(
      "minBandwidth",
      acme::EvalValue(config_.profile.min_bandwidth.as_bps()));
  checker.bind_global("minUtilization",
                      acme::EvalValue(config_.profile.min_utilization));
  checker.bind_global(
      "minReplicas",
      acme::EvalValue(static_cast<double>(config_.profile.min_replicas)));
  checker.instantiate(script_);

  // Durability plane last: every collaborator it journals for exists now.
  // A fleet attaches its shared plane instead (attach_durability overrides
  // this solo wiring before start()).
  if (config_.durability.enabled()) {
    durability_plane_ =
        std::make_unique<durability::DurabilityPlane>(config_.durability);
    attach_durability(durability_plane_.get(), /*shard=*/0);
  }
}

Framework::~Framework() = default;

void Framework::attach_durability(durability::DurabilityPlane* plane,
                                  std::uint32_t shard) {
  durability_sink_ = plane;
  durability_shard_ = shard;
  engine_->set_journal_sink(plane, shard);
  manager_->set_journal_sink(plane, shard);
}

void Framework::attach_journal_sink(durability::JournalSink* sink,
                                    std::uint32_t shard) {
  durability_sink_ = nullptr;  // snapshots belong to whoever owns the plane
  durability_shard_ = shard;
  engine_->set_journal_sink(sink, shard);
  manager_->set_journal_sink(sink, shard);
}

durability::ShardSnapshot Framework::capture_shard_snapshot() const {
  durability::ShardSnapshot shard;
  shard.shard = durability_shard_;
  shard.name = testbed_.scenario.empty() ? std::string("solo")
                                         : testbed_.scenario;
  shard.model = durability::encode_system(*system_);
  shard.model_digest = durability::fnv1a(shard.model.data(),
                                         shard.model.size());
  for (const monitor::GaugeManager::ChannelState& ch :
       gauge_manager_->snapshot_state()) {
    durability::GaugeState g;
    g.id = ch.id;
    g.live = ch.live;
    g.suspect = ch.suspect;
    g.last_report = ch.last_report;
    shard.gauges.push_back(std::move(g));
  }
  if (fault_plane_) shard.rng_streams = fault_plane_->rng_states();
  shard.repairs_committed = engine_->stats().committed;
  return shard;
}

void Framework::warm_remos() {
  if (!config_.remos_prequery) return;
  sim::GridApp& app = *testbed_.app;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> pairs;
  for (sim::ClientIdx c = 0; c < static_cast<sim::ClientIdx>(app.client_count());
       ++c) {
    for (sim::GroupIdx g = 0;
         g < static_cast<sim::GroupIdx>(app.group_count()); ++g) {
      pairs.emplace_back(app.group_node(g), app.client_node(c));
    }
    for (sim::ServerIdx s = 0;
         s < static_cast<sim::ServerIdx>(app.server_count()); ++s) {
      pairs.emplace_back(app.server_node(s), app.client_node(c));
    }
  }
  remos_->prequery(pairs);
  ARC_INFO << "remos: pre-queried " << pairs.size() << " pairs";
}

void Framework::deploy_gauges() {
  if (parts_.gauges) {
    parts_.gauges(sim_, testbed_, *gauge_manager_, config_);
    return;
  }
  sim::GridApp& app = *testbed_.app;
  const sim::Topology& topo = *testbed_.topo;
  (void)topo;
  for (sim::ClientIdx c = 0; c < static_cast<sim::ClientIdx>(app.client_count());
       ++c) {
    const std::string client = app.client_name(c);
    gauge_manager_->deploy(monitor::make_latency_gauge(
        sim_, client, app.client_node(c), config_.gauge_window));
    const std::string role_element =
        "Conn_" + client + "." + config_.conventions.client_role;
    gauge_manager_->deploy(monitor::make_bandwidth_gauge(
        sim_, client, role_element, app.client_node(c)));
  }
  for (sim::GroupIdx g = 0; g < static_cast<sim::GroupIdx>(app.group_count());
       ++g) {
    const std::string group = app.group_name(g);
    gauge_manager_->deploy(monitor::make_load_gauge(
        sim_, group, app.queue_node(), config_.gauge_window));
    gauge_manager_->deploy(monitor::make_utilization_gauge(
        sim_, group, app.queue_node(), /*alpha=*/0.1));
  }
}

void Framework::start() {
  if (started_) throw Error("Framework::start called twice");
  started_ = true;
  warm_remos();
  // Probes publish into the lossy bus when faults are on — probe-report
  // loss/delay/duplication is the first monitoring seam.
  events::EventBus& probe_pub = lossy_probe_bus_
                                    ? static_cast<events::EventBus&>(
                                          *lossy_probe_bus_)
                                    : *probe_bus_;
  probes_ = parts_.probes
                ? parts_.probes(sim_, testbed_, *remos_, probe_pub, config_)
                : monitor::make_standard_probes(sim_, *testbed_.app, *remos_,
                                                probe_pub,
                                                config_.probe_period);
  probes_.start_all();
  deploy_gauges();
  manager_->start();
  // Fleet seam: one crash draw per tenant. The crash takes every gauge
  // channel dark for its duration; the watchdog and (in fleet mode) the
  // health state machine do the rest.
  if (fault_plane_) {
    SimTime crash_at, crash_duration;
    if (fault_plane_->draw_tenant_crash(crash_at, crash_duration)) {
      sim_.schedule_in(crash_at, [this, crash_duration] {
        gauge_manager_->crash(crash_duration);
      });
    }
  }
  // Solo durability: snapshot-0 anchors replay (arcreplay rebuilds any LSN
  // from it + the journal), then periodic captures bound recovery work. A
  // fleet arms one task covering all shards instead (core/fleet.cpp).
  if (durability_plane_) {
    durability_plane_->take_snapshot(sim_.now(), {capture_shard_snapshot()});
    const SimTime period = config_.durability.snapshot_period;
    if (period > SimTime::zero()) {
      snapshot_task_ = std::make_unique<sim::PeriodicTask>(
          sim_, sim_.now() + period, period, [this] {
            durability_plane_->take_snapshot(sim_.now(),
                                             {capture_shard_snapshot()});
            return true;
          });
    }
  }

  ARC_INFO << "framework: started (" << gauge_manager_->gauge_count()
           << " gauges deploying, script="
           << (config_.use_script ? "interpreted" : "native") << ")";

  // Semantic verification over the assembled deployment: script effect/flow
  // rules plus the cross-artifact checks (constraints vs gauge feeds,
  // operator costs). Gauges are registered synchronously by deploy_gauges(),
  // so the view is complete even though their creation cost is still
  // in flight.
  if (config_.verify != VerifyMode::Off) {
    std::size_t errors = 0;
    for (const acme::analysis::AnalysisIssue& issue : verify_framework(*this)) {
      if (issue.severity == acme::Severity::Error) ++errors;
      ARC_WARN << "arcverify: " << issue.to_string();
    }
    if (config_.verify == VerifyMode::Error && errors > 0) {
      throw Error("arcverify: deployment failed verification (" +
                  std::to_string(errors) + " error(s); see log)");
    }
  }
}

}  // namespace arcadia::core
