// Fleet-scale adaptation (the ROADMAP's many-tenant north star): one
// simulator hosts N independent tenant applications, each with its own
// architectural model *shard* (an ArchitectureManager in passive mode), and
// a single FleetManager coordinates the control loop across all of them:
//
//   * batched gauge application — reports landing on a shard's gauge bus
//     within a coalescing window are applied in one model pass; reports for
//     the same (element, property) are superseded in place, so a burst of
//     samples costs one property write instead of one per report;
//   * parallel constraint sweep — the periodic check runs each shard's
//     incremental detection concurrently on a util::ThreadPool. Detection is
//     read-only per shard (disjoint models), so threads never contend on
//     model state;
//   * clean-shard skipping — a shard that received no reports, ran no
//     repair, and saw no structural edit since its last sweep is not swept
//     at all; its cached verdicts (what the incremental checker would have
//     returned verbatim) are re-dispatched instead.
//
// Determinism contract: parallel evaluation only *detects* violations.
// Violation dispatch — and therefore every repair, every model mutation,
// every scheduled simulator event — happens afterwards on the simulation
// thread in fixed shard order. A fleet run is bit-for-bit identical for any
// sweep_threads value — and, under the sharded kernel (core::Fleet with
// sim_threads > 0, DESIGN.md §9), for any simulation-thread count: shard
// windows are serial per shard and the sweep runs at barriers where every
// clock agrees.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/arch_manager.hpp"
#include "events/bus.hpp"
#include "repair/constraint.hpp"
#include "sim/simulator.hpp"
#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

namespace arcadia::core {

struct FleetManagerConfig {
  /// Constraint-sweep period across the whole fleet.
  SimTime check_period = SimTime::seconds(5);
  SimTime first_check = SimTime::seconds(15);
  /// Gauge reports arriving within this window are applied per-shard in one
  /// pass, newest value per (element, property) winning. Zero applies every
  /// report on delivery (unbatched). A window >= check_period is
  /// sweep-aligned: no per-shard flush timers at all — batches are applied
  /// exactly when the sweep needs them.
  SimTime coalesce_window = SimTime::millis(500);
  /// Worker threads for the parallel sweep; <= 1 sweeps on the simulation
  /// thread (still batched, still skipping clean shards).
  std::size_t sweep_threads = 0;  ///< 0 = hardware concurrency
  /// Skip shards whose model provably did not change since their last
  /// sweep. Disable to force every shard through detection every period.
  bool skip_clean_shards = true;
  /// Per-tenant health state machine (healthy -> degraded -> quarantined ->
  /// recovering). Driven by report silence: gauges report every few
  /// seconds, so a shard that has been silent past degraded_after has lost
  /// its monitoring substrate, and past quarantine_after it is quarantined
  /// — not swept, not dispatched — until reports resume and hold for
  /// recovery_observation. Healthy fleets never trip these (the thresholds
  /// are several report periods), so tracking is on by default.
  bool health_tracking = true;
  SimTime degraded_after = SimTime::seconds(20);
  SimTime quarantine_after = SimTime::seconds(60);
  SimTime recovery_observation = SimTime::seconds(20);
};

/// Per-tenant health (the fleet seam of the failure model).
enum class ShardHealth : std::uint8_t {
  Healthy,
  Degraded,     ///< report silence past degraded_after
  Quarantined,  ///< silence past quarantine_after; sweep + dispatch skipped
  Recovering,   ///< reports resumed; observing before returning to Healthy
};

struct FleetShardStats {
  std::uint64_t reports_enqueued = 0;   ///< gauge reports received
  std::uint64_t reports_coalesced = 0;  ///< superseded inside a batch
  std::uint64_t reports_applied = 0;    ///< property writes that reached the model
  std::uint64_t reports_unchanged = 0;  ///< dead-band: repeated steady values
  std::uint64_t reports_ignored = 0;    ///< malformed / unknown element
  std::uint64_t batches = 0;            ///< batch flushes
  std::uint64_t sweeps = 0;             ///< detections actually run
  std::uint64_t sweeps_skipped = 0;     ///< clean-shard skips
  std::uint64_t violations = 0;         ///< violations dispatched (incl. cached)
  std::uint64_t repairs_triggered = 0;
  // Repair-plan lifecycle observed on the shard's bus (topics::kRepairPlan;
  // the engine publishes when the framework wires its event bus).
  std::uint64_t plans_started = 0;
  std::uint64_t plans_completed = 0;
  std::uint64_t plans_preempted = 0;
  std::uint64_t plans_failed = 0;  ///< runtime failure mid-plan
  // Health state machine transitions.
  std::uint64_t health_degraded = 0;     ///< entries into Degraded
  std::uint64_t health_quarantined = 0;  ///< entries into Quarantined
  std::uint64_t health_recovered = 0;    ///< returns to Healthy
  std::uint64_t sweeps_quarantined = 0;  ///< sweeps skipped while quarantined
  std::uint64_t sweeps_stalled = 0;      ///< sweeps skipped while stalled
};

struct FleetStats {
  std::uint64_t sweep_rounds = 0;     ///< periodic sweeps of the whole fleet
  std::uint64_t parallel_rounds = 0;  ///< rounds that used the thread pool
  std::uint64_t shard_sweeps = 0;     ///< sum of per-shard detections
  std::uint64_t shard_skips = 0;      ///< sum of per-shard skips
  std::uint64_t shards_quarantined = 0;  ///< quarantine entries, fleet-wide
  /// Real (host) wall-clock spent inside run_sweep — flush + parallel
  /// detect + ordered dispatch. The apples-to-apples counterpart of
  /// ArchManagerStats::check_wall_s summed over naive per-tenant loops.
  double sweep_wall_s = 0.0;
};

/// Coordinates the adaptation control loop over N model shards. Shards are
/// registered once at assembly (see core::Fleet), then start() subscribes
/// the batched report sinks and arms the periodic sweep.
///
/// Lifetime: every registered manager and gauge bus must outlive this
/// object (or its stop()) — the destructor unsubscribes from the buses.
/// core::Fleet destroys the FleetManager before the tenants for exactly
/// this reason; hand-rolled rigs must declare shards first.
class FleetManager {
 public:
  using ShardId = std::size_t;

  FleetManager(sim::Simulator& sim, FleetManagerConfig config);
  ~FleetManager();

  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  /// Register a shard: its (passive) architecture manager and the gauge bus
  /// its tenant's monitoring reports on. `manager_node` is where the
  /// tenant's control loop runs — reports cross the simulated network to
  /// it, exactly as they would to a non-fleet ArchitectureManager. Shard
  /// ids are dense, in registration order — which is also the
  /// deterministic dispatch order.
  ShardId add_shard(std::string name, ArchitectureManager& manager,
                    events::EventBus& gauge_bus,
                    sim::NodeId manager_node = sim::kNoNode);

  /// Subscribe the report sinks and arm the periodic sweep.
  void start();
  void stop();

  std::size_t shard_count() const { return shards_.size(); }
  const std::string& shard_name(ShardId id) const { return shards_[id].name; }
  const FleetShardStats& shard_stats(ShardId id) const {
    return shards_[id].stats;
  }
  ShardHealth shard_health(ShardId id) const { return shards_[id].health; }

  /// Sharded-kernel binding (core::Fleet with sim_threads > 0): shard `id`'s
  /// tenant events run on `clock` (its ShardSimulator) inside logical lane
  /// `lane`. Report enqueueing, coalescing timers, and liveness stamps then
  /// use the shard clock — which leads the control clock mid-window — and
  /// the per-shard SerialDomain keys on the lane, so windows may migrate
  /// between pool workers. Unbound shards (legacy single-simulator fleets)
  /// keep clock = the control simulator and lane = 0 (thread-keyed). Call
  /// after add_shard, before start().
  void bind_shard_executor(ShardId id, sim::Simulator* clock,
                           std::uintptr_t lane);

  /// Fault seam: stall a shard's control loop — its sweeps and dispatches
  /// are skipped until `duration` elapses (reports keep coalescing; the
  /// backlog applies at the first sweep after the stall lifts).
  void stall_shard(ShardId id, SimTime duration);
  const FleetStats& stats() const { return stats_; }
  std::size_t sweep_threads() const { return pool_ ? pool_->size() : 1; }

  /// Apply a shard's pending coalesced reports immediately (also happens
  /// automatically before every sweep and when the window timer fires).
  void flush(ShardId id);

  /// One fleet sweep: flush pending batches, detect (parallel) on every
  /// non-clean shard, dispatch in shard order. Runs from the periodic task;
  /// public so tests and benches can drive sweeps explicitly.
  void run_sweep();

 private:
  struct Shard {
    std::string name;
    util::Symbol name_sym;
    ArchitectureManager* manager = nullptr;
    events::EventBus* bus = nullptr;
    sim::NodeId manager_node = sim::kNoNode;
    events::SubscriptionId sub = 0;
    events::SubscriptionId plan_sub = 0;
    events::SubscriptionId lifecycle_sub = 0;

    /// Executor binding (bind_shard_executor): the clock tenant events run
    /// on — the control simulator for legacy fleets, the shard's private
    /// ShardSimulator under the sharded kernel — and the SerialLane token
    /// of that shard (0 = none). All per-shard mutation goes through
    /// `serial`, keyed on the lane, instead of the fleet-wide serial_.
    sim::Simulator* clock = nullptr;
    std::uintptr_t lane = 0;
    util::SerialDomain serial;

    /// One coalescing slot per distinct (element, role, property) gauge key
    /// this shard has ever reported. The key set is the gauge deployment —
    /// stable across windows — so slots and their index persist: after the
    /// first window, enqueue is an integer-keyed lookup plus a value store,
    /// with no parsing state, no notification copies, and (for numeric
    /// values) no allocation.
    struct PendingSlot {
      util::Symbol element;  ///< component, or connector when role set
      util::Symbol role;
      util::Symbol property;
      events::Value value;
      bool armed = false;  ///< holds a value for the current window
    };
    std::vector<PendingSlot> slots;
    /// (element, role, property) symbol ids -> slot. Persistent; ~one entry
    /// per gauge, so the tree stays tiny.
    std::map<std::array<std::uint32_t, 3>, std::uint32_t> slot_index;
    /// Armed slots in first-touch order — the deterministic apply order.
    std::vector<std::uint32_t> touched;
    sim::EventHandle flush_timer;

    /// Reports were applied since the last sweep.
    bool dirty = false;
    bool swept_once = false;
    /// The violations of this shard's last detection; re-dispatched verbatim
    /// when the shard is skipped as clean (matching what the incremental
    /// checker's cache would have produced).
    std::vector<repair::Violation> last_violations;

    // Health state machine (evaluated on the sim thread each sweep).
    ShardHealth health = ShardHealth::Healthy;
    SimTime last_report_at;    ///< any gauge report counts as liveness
    SimTime recovering_since;  ///< entry time of the Recovering state
    SimTime stalled_until;     ///< stall_shard fault window

    FleetShardStats stats;
  };

  void enqueue(ShardId id, const events::Notification& n);
  void apply(Shard& shard, const Shard::PendingSlot& slot);
  void note_plan_event(ShardId id, const events::Notification& n);
  void note_lifecycle(ShardId id, const events::Notification& n);
  void update_health(ShardId id);
  void publish_health(Shard& shard);

  sim::Simulator& sim_;
  FleetManagerConfig config_;
  /// Concurrency capability: each shard's state is owned by its serial
  /// execution context — the simulation thread for legacy fleets, the
  /// shard's lane under the sharded kernel (windows migrate between pool
  /// workers but are serial per shard, and barrier-time work re-enters the
  /// lane). run_sweep farms the *detection* phase to the pool, but those
  /// tasks only call const ArchitectureManager::detect() on disjoint
  /// models — every write to a Shard (enqueue, flush, dispatch, stats)
  /// happens inside its lane, which debug builds assert via Shard::serial;
  /// fleet-wide control state stays behind serial_.
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<sim::PeriodicTask> sweep_task_;
  /// Structure clock at the end of the previous sweep round: any structural
  /// edit anywhere (repairs are the only in-run source) re-sweeps every
  /// shard — spurious work for the untouched ones, never a stale verdict.
  std::uint64_t structure_seen_ = 0;
  bool started_ = false;
  FleetStats stats_;
  util::SerialDomain serial_;
};

}  // namespace arcadia::core
