#include "core/fleet.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace arcadia::core {

Fleet::Fleet(sim::Simulator& sim, FleetOptions options)
    : sim_(sim), options_(std::move(options)) {
  sim::ScenarioConfig base = options_.use_scenario_defaults
                                 ? sim::scenario_defaults(options_.scenario)
                                 : options_.config;
  const int tenants =
      options_.tenants > 0 ? options_.tenants : base.fleet.tenants;
  if (tenants < 1) throw Error("Fleet: tenant count must be >= 1");
  base.fleet.tenants = tenants;

  FrameworkConfig fw = options_.framework;
  fw.fleet_managed = options_.coordinated;
  // The fleet's journal is shared; tenants must not each own a plane.
  fw.durability = durability::Options{};

  if (options_.durability.enabled()) {
    plane_ = std::make_unique<durability::DurabilityPlane>(options_.durability);
  }

  if (options_.coordinated) {
    // One source of truth for the check cadence: the framework-level knobs
    // drive the fleet sweep, so a naive/coordinated A-B flip keeps the same
    // schedule without having to set the cadence twice.
    FleetManagerConfig mgr = options_.manager;
    mgr.check_period = fw.check_period;
    mgr.first_check = fw.first_check;
    manager_ = std::make_unique<FleetManager>(sim_, mgr);
  }

  tenants_.reserve(static_cast<std::size_t>(tenants));
  for (int k = 0; k < tenants; ++k) {
    sim::ScenarioConfig cfg = base;
    cfg.fleet.tenant_index = k;
    auto tenant = std::make_unique<FleetTenant>();
    tenant->name = "tenant" + std::to_string(k + 1);
    tenant->testbed = sim::build_scenario(sim_, options_.scenario, cfg);
    // Each tenant gets its own fault plane, seed-decorrelated exactly like
    // the testbed builder decorrelates workload seeds — tenants must not
    // crash or lose reports in lockstep.
    FrameworkConfig tenant_fw = fw;
    if (!tenant_fw.fault.enabled && cfg.fault.enabled) {
      tenant_fw.fault = cfg.fault;
    }
    if (tenant_fw.fault.enabled) {
      tenant_fw.fault.seed +=
          0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(k);
    }
    tenant->framework =
        std::make_unique<Framework>(sim_, tenant->testbed, tenant_fw);
    if (plane_) {
      tenant->framework->attach_durability(plane_.get(),
                                           static_cast<std::uint32_t>(k));
    }
    if (manager_) {
      manager_->add_shard(tenant->name, tenant->framework->manager(),
                          tenant->framework->gauge_bus(),
                          tenant->testbed.manager_node);
    }
    tenants_.push_back(std::move(tenant));
  }
}

Fleet::~Fleet() {
  // The fleet manager holds subscriptions into tenant gauge buses; drop it
  // before the tenants it points into. The shared durability plane outlives
  // the tenants (declaration order) so their teardown can still journal.
  snapshot_task_.reset();
  manager_.reset();
  tenants_.clear();
}

std::vector<durability::ShardSnapshot> Fleet::capture_snapshot() const {
  std::vector<durability::ShardSnapshot> shards;
  shards.reserve(tenants_.size());
  for (std::size_t k = 0; k < tenants_.size(); ++k) {
    durability::ShardSnapshot shard =
        tenants_[k]->framework->capture_shard_snapshot();
    shard.name = tenants_[k]->name;
    if (manager_) {
      shard.health = static_cast<std::uint8_t>(manager_->shard_health(k));
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

void Fleet::start() {
  if (started_) throw Error("Fleet::start called twice");
  started_ = true;
  for (auto& tenant : tenants_) {
    tenant->framework->start();
    tenant->testbed.start();
  }
  if (manager_) manager_->start();
  // One snapshot stream for the whole fleet: snapshot-0 anchors replay,
  // then periodic captures of every shard together (a torn multi-shard
  // snapshot is impossible — the capture is a single atomic file).
  if (plane_) {
    plane_->take_snapshot(sim_.now(), capture_snapshot());
    const SimTime period = options_.durability.snapshot_period;
    if (period > SimTime::zero()) {
      snapshot_task_ = std::make_unique<sim::PeriodicTask>(
          sim_, sim_.now() + period, period, [this] {
            plane_->take_snapshot(sim_.now(), capture_snapshot());
            return true;
          });
    }
  }
  ARC_INFO << "fleet: " << tenants_.size() << " tenants started ("
           << (manager_ ? "coordinated" : "per-tenant loops") << ")";
}

}  // namespace arcadia::core
