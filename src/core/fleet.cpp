#include "core/fleet.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace arcadia::core {

Fleet::Fleet(sim::Simulator& sim, FleetOptions options)
    : sim_(sim), options_(std::move(options)) {
  sim::ScenarioConfig base = options_.use_scenario_defaults
                                 ? sim::scenario_defaults(options_.scenario)
                                 : options_.config;
  const int tenants =
      options_.tenants > 0 ? options_.tenants : base.fleet.tenants;
  if (tenants < 1) throw Error("Fleet: tenant count must be >= 1");
  base.fleet.tenants = tenants;

  FrameworkConfig fw = options_.framework;
  fw.fleet_managed = options_.coordinated;
  // The fleet's journal is shared; tenants must not each own a plane.
  fw.durability = durability::Options{};

  if (options_.durability.enabled()) {
    plane_ = std::make_unique<durability::DurabilityPlane>(options_.durability);
  }

  if (options_.sim_threads > 0) {
    // Sharded kernel: per-tenant sub-simulators in conservative windows.
    // Tenants couple only at control-simulator events (sweeps, snapshots),
    // which the window bound tracks exactly — infinite lookahead.
    sim::SimCoordinatorOptions copt;
    copt.threads = static_cast<unsigned>(options_.sim_threads);
    coordinator_ = std::make_unique<sim::SimCoordinator>(sim_, copt);
    coordinator_->set_barrier_hook([this](SimTime) { drain_staging(); });
  }

  if (options_.coordinated) {
    // One source of truth for the check cadence: the framework-level knobs
    // drive the fleet sweep, so a naive/coordinated A-B flip keeps the same
    // schedule without having to set the cadence twice.
    FleetManagerConfig mgr = options_.manager;
    mgr.check_period = fw.check_period;
    mgr.first_check = fw.first_check;
    manager_ = std::make_unique<FleetManager>(sim_, mgr);
  }

  const std::size_t reserve_hint = sim::estimate_event_reserve(base);
  if (!coordinator_) {
    // Legacy shared simulator hosts every tenant's events at once.
    sim_.reserve(reserve_hint * static_cast<std::size_t>(tenants) + 256);
  }

  tenants_.reserve(static_cast<std::size_t>(tenants));
  for (int k = 0; k < tenants; ++k) {
    sim::ScenarioConfig cfg = base;
    cfg.fleet.tenant_index = k;
    auto tenant = std::make_unique<FleetTenant>();
    tenant->name = "tenant" + std::to_string(k + 1);
    sim::Simulator* tenant_sim = &sim_;
    if (coordinator_) {
      tenant->shard = &coordinator_->add_shard();
      tenant_sim = &tenant->shard->sim();
      tenant_sim->reserve(reserve_hint);
    }
    // Each tenant gets its own fault plane, seed-decorrelated exactly like
    // the testbed builder decorrelates workload seeds — tenants must not
    // crash or lose reports in lockstep. Under the sharded kernel the
    // plane lives on the shard's clock, so its draw sequences are a pure
    // function of the shard's (serial) event stream — independent of the
    // worker-thread count by construction.
    FrameworkConfig tenant_fw = fw;
    if (!tenant_fw.fault.enabled && cfg.fault.enabled) {
      tenant_fw.fault = cfg.fault;
    }
    if (tenant_fw.fault.enabled) {
      tenant_fw.fault.seed +=
          0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(k);
    }
    {
      // Build inside the tenant's lane: the framework's serial domains
      // (buses, gauge manager, plan executor) bind to their first caller,
      // and that must be the lane that will run the tenant's windows.
      util::SerialLane in_lane(tenant->lane());
      tenant->testbed = sim::build_scenario(*tenant_sim, options_.scenario,
                                            cfg);
      tenant->framework = std::make_unique<Framework>(
          *tenant_sim, tenant->testbed, tenant_fw);
    }
    if (plane_) {
      if (coordinator_) {
        // Workers may not write the single-writer plane: stage per shard,
        // drain in (time, shard, seq) order at barriers (drain_staging).
        staging_.push_back(std::make_unique<durability::StagingSink>());
        tenant->framework->attach_journal_sink(
            staging_.back().get(), static_cast<std::uint32_t>(k));
      } else {
        tenant->framework->attach_durability(plane_.get(),
                                             static_cast<std::uint32_t>(k));
      }
    }
    if (manager_) {
      const FleetManager::ShardId id = manager_->add_shard(
          tenant->name, tenant->framework->manager(),
          tenant->framework->gauge_bus(), tenant->testbed.manager_node);
      if (coordinator_) {
        manager_->bind_shard_executor(id, tenant_sim, tenant->lane());
      }
    }
    tenants_.push_back(std::move(tenant));
  }
}

Fleet::~Fleet() {
  // The fleet manager holds subscriptions into tenant gauge buses; drop it
  // before the tenants it points into. Each tenant is destroyed inside its
  // own lane (teardown touches the same serial domains the windows did and
  // may journal). The shared durability plane and the staging sinks outlive
  // the tenants (declaration order), so teardown journaling lands — and the
  // final drain below flushes it to the plane.
  snapshot_task_.reset();
  manager_.reset();
  for (auto& tenant : tenants_) {
    util::SerialLane in_lane(tenant->lane());
    tenant.reset();
  }
  tenants_.clear();
  drain_staging();
}

std::vector<durability::ShardSnapshot> Fleet::capture_snapshot() const {
  std::vector<durability::ShardSnapshot> shards;
  shards.reserve(tenants_.size());
  for (std::size_t k = 0; k < tenants_.size(); ++k) {
    durability::ShardSnapshot shard;
    {
      // Captures read gauge-channel state and fault RNG positions — shard
      // state, so enter the lane (snapshots run at barriers: clocks agree).
      util::SerialLane in_lane(tenants_[k]->lane());
      shard = tenants_[k]->framework->capture_shard_snapshot();
    }
    shard.name = tenants_[k]->name;
    if (manager_) {
      shard.health = static_cast<std::uint8_t>(manager_->shard_health(k));
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

void Fleet::start() {
  if (started_) throw Error("Fleet::start called twice");
  started_ = true;
  for (auto& tenant : tenants_) {
    util::SerialLane in_lane(tenant->lane());
    tenant->framework->start();
    tenant->testbed.start();
  }
  if (manager_) manager_->start();
  // One snapshot stream for the whole fleet: snapshot-0 anchors replay,
  // then periodic captures of every shard together (a torn multi-shard
  // snapshot is impossible — the capture is a single atomic file). Under
  // the sharded kernel the staged journal must be drained first so the
  // mark lands after every record it supersedes.
  if (plane_) {
    drain_staging();
    plane_->take_snapshot(sim_.now(), capture_snapshot());
    const SimTime period = options_.durability.snapshot_period;
    if (period > SimTime::zero()) {
      snapshot_task_ = std::make_unique<sim::PeriodicTask>(
          sim_, sim_.now() + period, period, [this] {
            plane_->take_snapshot(sim_.now(), capture_snapshot());
            return true;
          });
    }
  }
  ARC_INFO << "fleet: " << tenants_.size() << " tenants started ("
           << (manager_ ? "coordinated" : "per-tenant loops") << ", "
           << (coordinator_
                   ? std::to_string(coordinator_->effective_threads()) +
                         " sim threads"
                   : std::string("single simulator"))
           << ")";
}

std::uint64_t Fleet::run_until(SimTime horizon) {
  if (!coordinator_) return sim_.run_until(horizon);
  const std::uint64_t ran = coordinator_->run_until(horizon);
  drain_staging();
  return ran;
}

void Fleet::drain_staging() {
  if (!plane_ || staging_.empty()) return;
  struct Ref {
    SimTime at;
    std::uint32_t shard;
    std::size_t index;
  };
  std::vector<Ref> refs;
  std::size_t total = 0;
  for (const auto& sink : staging_) total += sink->size();
  if (total == 0) return;
  refs.reserve(total);
  for (std::uint32_t k = 0; k < staging_.size(); ++k) {
    for (std::size_t i = 0; i < staging_[k]->size(); ++i) {
      refs.push_back(Ref{staging_[k]->at(i).at, k, i});
    }
  }
  // (time, shard, emission order): a total order over all staged records
  // that no worker interleaving can perturb. Within one sink timestamps are
  // already non-decreasing (simulation time is monotonic per shard), so
  // this is a k-way merge expressed as one sort.
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.index < b.index;
  });
  for (const Ref& r : refs) staging_[r.shard]->replay(r.index, *plane_);
  for (auto& sink : staging_) sink->clear();
}

}  // namespace arcadia::core
