// The experiment runner: builds the Figure 6 testbed, optionally attaches
// the adaptation framework, runs the Figure 7 schedule, and records every
// series the paper's evaluation plots — per-client latency (Figures 8/11),
// per-group queue length a.k.a. server load (Figures 9/13), and available
// bandwidth (Figures 10/12) — plus repair windows and server activations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "fault/fault_plane.hpp"
#include "repair/engine.hpp"
#include "sim/scenario.hpp"
#include "util/timeseries.hpp"

namespace arcadia::core {

struct ExperimentOptions {
  /// Which registered scenario to run (sim::ScenarioRegistry name). Use
  /// options_for() to start from a scenario's calibrated defaults.
  std::string scenario_name = "paper-fig6";
  sim::ScenarioConfig scenario;
  FrameworkConfig framework;
  /// Part substitutions applied when the framework is assembled (see
  /// FrameworkBuilder; default-constructed = the paper's wiring).
  FrameworkParts parts;
  /// false = the paper's control run (no adaptation infrastructure at all).
  bool adaptation = true;
  /// Sampling period for queue-length / bandwidth / utilization series.
  SimTime record_period = SimTime::seconds(2);
  /// Post-hoc windowed-latency parameters (matches the latency gauge).
  SimTime latency_window = SimTime::seconds(30);
  SimTime latency_sample = SimTime::seconds(5);
};

struct ClientSeries {
  std::string name;
  TimeSeries raw_latency;     ///< one point per completed response
  TimeSeries window_latency;  ///< 30 s windowed mean (what the figures show)
  TimeSeries bandwidth_mbps;  ///< available bandwidth group->client
};

struct GroupSeries {
  std::string name;
  TimeSeries queue_length;  ///< the paper's "server load"
  TimeSeries utilization;
};

struct ServerEvent {
  SimTime time;
  std::string server;
  bool active;
};

struct ExperimentResult {
  bool adaptive = false;
  SimTime horizon;
  double threshold_s = 2.0;

  std::vector<ClientSeries> clients;
  std::vector<GroupSeries> groups;
  std::vector<ServerEvent> server_events;
  std::vector<std::pair<SimTime, SimTime>> repair_windows;
  std::vector<repair::RepairRecord> repairs;
  repair::RepairStats repair_stats;
  // Robustness counters (adaptive runs only): the failure model's
  // observable footprint — what was injected, what the loop absorbed.
  ArchManagerStats manager_stats;
  monitor::GaugeManagerStats gauge_stats;
  fault::FaultPlaneStats fault_stats;  ///< zero unless faults were enabled
  std::uint64_t verdict_holds = 0;     ///< checker holds on suspect evidence

  std::uint64_t requests_issued = 0;
  std::uint64_t responses_completed = 0;
  std::uint64_t sim_events = 0;

  /// Model<->runtime correspondence at the end of an adaptive run: every
  /// client's architectural attachment must match its runtime queue, and
  /// every group's replicationCount its active server count. Empty = good.
  std::vector<std::string> consistency_issues;

  // ---- summary metrics used by benches, tests and EXPERIMENTS.md ----
  /// Time-fraction the client's windowed latency exceeds the threshold.
  double client_fraction_above(std::size_t i) const;
  /// Mean over clients of client_fraction_above.
  double mean_fraction_above() const;
  /// First time a client's windowed latency crosses the threshold.
  SimTime client_first_crossing(std::size_t i) const;
  double max_queue_length() const;
  const ClientSeries* client(const std::string& name) const;
  const GroupSeries* group(const std::string& name) const;
};

/// Options seeded with a registered scenario's calibrated defaults.
ExperimentOptions options_for(const std::string& scenario_name);

ExperimentResult run_experiment(const ExperimentOptions& options);

/// The paper's paired runs: identical scenario and seed, control first,
/// then with the adaptation framework.
struct PairedResults {
  ExperimentResult control;
  ExperimentResult repair;
};
PairedResults run_control_and_repair(ExperimentOptions options);

}  // namespace arcadia::core
