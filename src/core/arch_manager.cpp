#include "core/arch_manager.hpp"

#include "monitor/topics.hpp"
#include "util/log.hpp"

namespace arcadia::core {

ArchitectureManager::ArchitectureManager(sim::Simulator& sim,
                                         model::System& system,
                                         events::EventBus& gauge_bus,
                                         repair::RepairEngine& engine,
                                         ArchManagerConfig config)
    : sim_(sim),
      system_(system),
      gauge_bus_(gauge_bus),
      engine_(engine),
      config_(config),
      checker_(system) {}

ArchitectureManager::~ArchitectureManager() { stop(); }

void ArchitectureManager::start() {
  sub_ = gauge_bus_.subscribe(
      events::Filter::topic(monitor::topics::kGaugeReport),
      [this](const events::Notification& n) {
        if (apply_gauge_report(n)) {
          ++stats_.reports_applied;
        } else {
          ++stats_.reports_ignored;
        }
      },
      config_.manager_node);
  check_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.first_check, config_.check_period, [this] {
        run_check();
        return true;
      });
}

void ArchitectureManager::stop() {
  if (sub_ != 0) {
    gauge_bus_.unsubscribe(sub_);
    sub_ = 0;
  }
  check_task_.reset();
}

bool ArchitectureManager::apply_gauge_report(const events::Notification& n) {
  if (!n.has(monitor::topics::kAttrElement) ||
      !n.has(monitor::topics::kAttrProperty) ||
      !n.has(monitor::topics::kAttrValue)) {
    return false;
  }
  const std::string& element = n.get(monitor::topics::kAttrElement).as_string();
  // Intern once per report; the model lookups and the property write below
  // are integer-keyed from here on.
  const util::Symbol property =
      util::Symbol::intern(n.get(monitor::topics::kAttrProperty).as_string());
  const events::Value& value = n.get(monitor::topics::kAttrValue);

  const auto dot = element.find('.');
  if (dot == std::string::npos) {
    const util::Symbol key = util::Symbol::intern(element);
    if (!system_.has_component(key)) return false;
    system_.component(key).set_property(property, value);
    return true;
  }
  const util::Symbol connector =
      util::Symbol::intern(std::string_view(element).substr(0, dot));
  const util::Symbol role =
      util::Symbol::intern(std::string_view(element).substr(dot + 1));
  if (!system_.has_connector(connector)) return false;
  model::Connector& conn = system_.connector(connector);
  if (!conn.has_role(role)) return false;
  conn.role(role).set_property(property, value);
  return true;
}

void ArchitectureManager::run_check() {
  ++stats_.checks;
  std::vector<repair::Violation> violations = checker_.check();
  stats_.violations_seen += violations.size();
  if (violations.empty()) return;
  if (engine_.handle_violations(violations)) {
    ++stats_.repairs_triggered;
  }
}

}  // namespace arcadia::core
