#include "core/arch_manager.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "monitor/topics.hpp"
#include "util/log.hpp"

namespace arcadia::core {

ArchitectureManager::ArchitectureManager(sim::Simulator& sim,
                                         model::System& system,
                                         events::EventBus& gauge_bus,
                                         repair::RepairEngine& engine,
                                         ArchManagerConfig config)
    : sim_(sim),
      system_(system),
      gauge_bus_(gauge_bus),
      engine_(engine),
      config_(config),
      checker_(system) {}

ArchitectureManager::~ArchitectureManager() { stop(); }

void ArchitectureManager::start() {
  if (config_.passive) return;  // fleet mode: the FleetManager drives us
  sub_ = gauge_bus_.subscribe(
      events::Filter::topic(monitor::topics::kGaugeReportSym),
      [this](const events::Notification& n) {
        util::Symbol element, role, property;
        if (!parse_gauge_report(n, element, role, property)) {
          ++stats_.reports_ignored;
          return;
        }
        switch (apply_gauge_value(element, role, property,
                                  *n.get_if(monitor::topics::kAttrValueSym))) {
          case GaugeApply::Applied:
            ++stats_.reports_applied;
            break;
          case GaugeApply::Unchanged:
            ++stats_.reports_unchanged;
            break;
          case GaugeApply::NoTarget:
            ++stats_.reports_ignored;
            break;
        }
      },
      config_.manager_node);
  lifecycle_sub_ = gauge_bus_.subscribe(
      events::Filter::topic(monitor::topics::kGaugeLifecycleSym),
      [this](const events::Notification& n) {
        util::Symbol element, phase;
        if (!parse_gauge_lifecycle(n, element, phase)) return;
        if (phase == monitor::topics::kPhaseSuspect) {
          note_gauge_liveness(element, true);
        } else if (phase == monitor::topics::kPhaseCleared) {
          note_gauge_liveness(element, false);
        }
      },
      config_.manager_node);
  check_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.first_check, config_.check_period, [this] {
        run_check();
        return true;
      });
}

void ArchitectureManager::stop() {
  if (sub_ != 0) {
    gauge_bus_.unsubscribe(sub_);
    sub_ = 0;
  }
  if (lifecycle_sub_ != 0) {
    gauge_bus_.unsubscribe(lifecycle_sub_);
    lifecycle_sub_ = 0;
  }
  check_task_.reset();
}

bool ArchitectureManager::parse_gauge_lifecycle(const events::Notification& n,
                                                util::Symbol& element,
                                                util::Symbol& phase) {
  const events::Value* el_v = n.get_if(monitor::topics::kAttrElementSym);
  const events::Value* phase_v = n.get_if(monitor::topics::kAttrPhaseSym);
  if (!el_v || !phase_v || !el_v->is_string() || !phase_v->is_string()) {
    return false;
  }
  element = el_v->to_symbol();
  phase = phase_v->to_symbol();
  return true;
}

void ArchitectureManager::note_gauge_liveness(util::Symbol element,
                                              bool suspect) {
  int& refs = suspect_refs_[element];
  if (suspect) {
    if (++refs == 1) {
      ++stats_.elements_suspected;
      checker_.set_element_suspect(element, true);
    }
    return;
  }
  if (refs > 0 && --refs == 0) {
    ++stats_.elements_cleared;
    checker_.set_element_suspect(element, false);
  }
}

bool ArchitectureManager::parse_gauge_report(const events::Notification& n,
                                             util::Symbol& element,
                                             util::Symbol& role,
                                             util::Symbol& property) {
  const events::Value* addr_v = n.get_if(monitor::topics::kAttrElementSym);
  const events::Value* prop_v = n.get_if(monitor::topics::kAttrPropertySym);
  if (!addr_v || !prop_v || !n.has(monitor::topics::kAttrValueSym) ||
      !addr_v->is_string() || !prop_v->is_string()) {
    return false;
  }
  // Gauge managers publish interned addresses; the component case (no dot)
  // passes the symbol straight through — no hashing at all. Connector-role
  // addresses and raw string reports intern once per report here; model
  // lookups and the property write are integer-keyed from there on.
  const std::string& addr = addr_v->as_string();
  if (addr.empty()) return false;
  const auto dot = addr.find('.');
  if (dot == std::string::npos) {
    element = addr_v->to_symbol();
    role = util::Symbol();
  } else {
    // "Connector.role" needs both halves; "X." must not degrade to a
    // component write against X.
    if (dot == 0 || dot + 1 == addr.size()) return false;
    element = util::Symbol::intern(std::string_view(addr).substr(0, dot));
    role = util::Symbol::intern(std::string_view(addr).substr(dot + 1));
  }
  property = prop_v->to_symbol();
  return true;
}

bool ArchitectureManager::apply_gauge_report(const events::Notification& n) {
  util::Symbol element, role, property;
  if (!parse_gauge_report(n, element, role, property)) return false;
  return apply_gauge_value(element, role, property,
                           *n.get_if(monitor::topics::kAttrValueSym)) !=
         GaugeApply::NoTarget;
}

namespace {

/// The monitoring noise floor: a repeated reading within this band carries
/// no information the constraint layer could act on. Thresholds in the task
/// layer are O(0.1)+ (utilization 0.2, latency 2 s, load 6), so 1e-5
/// absolute cannot mask a crossing; the relative term covers large
/// magnitudes (bandwidths in bps).
bool within_noise_floor(const model::Element& el, util::Symbol property,
                        const events::Value& value) {
  if (!el.has_property(property)) return false;
  const events::Value& current = el.property(property);
  if (current == value) return true;
  if (current.is_numeric() && value.is_numeric()) {
    const double a = current.as_double();
    const double b = value.as_double();
    return std::abs(a - b) <=
           std::max(1e-5, 1e-9 * std::max(std::abs(a), std::abs(b)));
  }
  return false;
}

}  // namespace

ArchitectureManager::GaugeApply ArchitectureManager::apply_gauge_value(
    util::Symbol element, util::Symbol role, util::Symbol property,
    const events::Value& value) {
  model::Element* target = nullptr;
  if (role.empty()) {
    if (!system_.has_component(element)) return GaugeApply::NoTarget;
    target = &system_.component(element);
  } else {
    if (!system_.has_connector(element)) return GaugeApply::NoTarget;
    model::Connector& conn = system_.connector(element);
    if (!conn.has_role(role)) return GaugeApply::NoTarget;
    target = &conn.role(role);
  }
  if (within_noise_floor(*target, property, value)) {
    return GaugeApply::Unchanged;
  }
  target->set_property(property, value);
  if (journal_sink_ != nullptr) {
    // Only Applied folds reach the journal: dead-banded repeats change
    // nothing, so replay reconstructs the model exactly from this stream.
    journal_sink_->on_gauge_applied(journal_shard_, sim_.now(), element, role,
                                    property, value);
  }
  return GaugeApply::Applied;
}

std::vector<repair::Violation> ArchitectureManager::detect() {
  ++stats_.checks;
  std::vector<repair::Violation> violations = checker_.check();
  stats_.violations_seen += violations.size();
  return violations;
}

bool ArchitectureManager::dispatch(
    const std::vector<repair::Violation>& violations) {
  if (violations.empty()) return false;
  const std::uint64_t preempted_before = engine_.stats().plans_preempted;
  if (!engine_.handle_violations(violations)) return false;
  ++stats_.repairs_triggered;
  stats_.repairs_preempted +=
      engine_.stats().plans_preempted - preempted_before;
  return true;
}

void ArchitectureManager::run_check() {
  const auto t0 = std::chrono::steady_clock::now();
  dispatch(detect());
  stats_.check_wall_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

}  // namespace arcadia::core
