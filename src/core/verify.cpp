#include "core/verify.hpp"

#include <set>

#include "acme/effects.hpp"
#include "acme/flow.hpp"
#include "core/framework.hpp"
#include "sim/scenario_registry.hpp"

namespace arcadia::core {

namespace {

using acme::analysis::AnalysisIssue;

/// Cost of one style operator under the translator's Table-1 mapping
/// (runtime/translator.cpp): addServer -> connect + activate, move ->
/// moveClient, removeServer -> deactivate.
double operator_cost_s(const std::string& op,
                       const rt::EnvironmentCosts& costs) {
  const double rmi = costs.rmi_call.as_seconds();
  if (op == "addServer") {
    return rmi + (rmi + costs.activate_extra.as_seconds());
  }
  if (op == "move" || op == "removeServer") return rmi;
  return 0.0;
}

void config_issue(std::vector<AnalysisIssue>& out, std::string message) {
  out.push_back(AnalysisIssue{"scenario-config", acme::Severity::Error, 0, 0,
                              std::move(message)});
}

void check_probability(std::vector<AnalysisIssue>& out, double p,
                       const std::string& what) {
  if (p < 0.0 || p > 1.0) {
    config_issue(out, what + " = " + std::to_string(p) +
                          " is not a probability (want [0, 1])");
  }
}

void check_window(std::vector<AnalysisIssue>& out, SimTime lo, SimTime hi,
                  const std::string& what) {
  if (hi < lo) {
    config_issue(out, what + " window is inverted (" +
                          std::to_string(lo.as_seconds()) + "s .. " +
                          std::to_string(hi.as_seconds()) + "s)");
  }
}

}  // namespace

acme::analysis::DeploymentView make_deployment_view(Framework& fw) {
  acme::analysis::DeploymentView view;
  const acme::EffectTable table = acme::make_client_server_effects();

  for (const repair::Constraint& c : fw.manager().checker().constraints()) {
    acme::analysis::ConstraintView cv;
    cv.id = c.id;
    cv.element = c.element;
    cv.reads = acme::free_properties(*c.condition, table);
    cv.line = c.condition->line;
    cv.column = c.condition->column;
    view.constraints.push_back(std::move(cv));
  }

  for (const monitor::GaugeSpec& spec : fw.gauges().specs()) {
    view.gauge_feeds.push_back(acme::analysis::GaugeFeed{
        spec.element.str(), spec.property.str()});
  }

  const rt::EnvironmentCosts& costs = fw.environment().costs();
  for (const char* op : {"addServer", "move", "removeServer"}) {
    view.operator_costs_s[op] = operator_cost_s(op, costs);
  }

  // Operator call sites reachable from an installed invariant's handler
  // chain (tactic summaries are transitively closed, so arm tactics carry
  // their callees' sites too).
  const acme::Script& script = fw.script();
  const acme::ScriptEffects effects = acme::infer_effects(script, table);
  std::set<std::string> seen;  // "op@line:col" dedup across invariants
  for (const acme::InvariantDecl& inv : script.invariants) {
    const acme::StrategyDecl* strategy = script.find_strategy(inv.handler);
    if (!strategy) continue;
    for (const acme::FirstSuccessArm& arm :
         acme::first_success_arms(*strategy)) {
      const acme::TacticEffects* fx = effects.find(arm.tactic);
      if (!fx) continue;
      for (const acme::OperatorUse& use : fx->operators) {
        const std::string key = use.op + "@" + std::to_string(use.line) +
                                ":" + std::to_string(use.column);
        if (seen.insert(key).second) view.operators_used.push_back(use);
      }
    }
  }

  return view;
}

std::vector<AnalysisIssue> verify_framework(Framework& fw) {
  const acme::EffectTable table = acme::make_client_server_effects();
  std::vector<AnalysisIssue> issues =
      acme::analysis::analyze_script(fw.script(), table);
  std::vector<AnalysisIssue> deployment =
      acme::analysis::verify_deployment(make_deployment_view(fw));
  issues.insert(issues.end(), deployment.begin(), deployment.end());
  return issues;
}

std::vector<AnalysisIssue> verify_scenario_config(
    const std::string& name, const sim::ScenarioConfig& config) {
  std::vector<AnalysisIssue> out;

  if (!name.empty() && !sim::ScenarioRegistry::instance().contains(name)) {
    config_issue(out, "scenario '" + name + "' is not registered");
  }

  // -- schedule breakpoints (Figure 7 shape: quiescent -> stress -> final)
  if (config.horizon <= SimTime::zero()) {
    config_issue(out, "horizon must be positive");
  }
  if (config.stress_start < config.quiescent_end) {
    config_issue(out, "stress_start precedes quiescent_end");
  }
  if (config.stress_end < config.stress_start) {
    config_issue(out, "stress_end precedes stress_start");
  }
  // A stress phase pushed entirely past the horizon is the library's
  // "no Figure-7 stress phase" sentinel (seconds(1e9)) and is valid; one
  // that starts inside the run must also end inside it.
  if (config.stress_start < config.horizon &&
      config.horizon < config.stress_end) {
    config_issue(out, "stress_end exceeds the horizon");
  }

  // -- topology counts
  if (config.grid.groups <= 0 || config.grid.servers_per_group <= 0 ||
      config.grid.clients <= 0 || config.grid.clients_per_pod <= 0 ||
      config.grid.spares < 0) {
    config_issue(out, "grid counts must be positive (spares >= 0)");
  }
  if (config.fleet.tenants <= 0) {
    config_issue(out, "fleet.tenants must be positive");
  } else if (config.fleet.tenant_index < 0 ||
             config.fleet.tenant_index >= config.fleet.tenants) {
    config_issue(out, "fleet.tenant_index " +
                          std::to_string(config.fleet.tenant_index) +
                          " out of range for " +
                          std::to_string(config.fleet.tenants) + " tenant(s)");
  }

  // -- flash-crowd window
  check_window(out, config.flash.start, config.flash.end, "flash-crowd");
  if (config.flash.rate_multiplier <= 0.0) {
    config_issue(out, "flash.rate_multiplier must be positive");
  }

  // -- fault profile
  const fault::FaultProfile& fault = config.fault;
  if (fault.enabled) {
    check_probability(out, fault.monitoring.report_loss,
                      "monitoring.report_loss");
    check_probability(out, fault.monitoring.report_dup,
                      "monitoring.report_dup");
    check_probability(out, fault.monitoring.report_delay,
                      "monitoring.report_delay");
    check_probability(out, fault.monitoring.channel_disconnect,
                      "monitoring.channel_disconnect");
    check_probability(out, fault.repair.op_transient, "repair.op_transient");
    check_probability(out, fault.repair.op_permanent, "repair.op_permanent");
    check_probability(out, fault.repair.op_stall, "repair.op_stall");
    check_probability(out, fault.fleet.tenant_crash, "fleet.tenant_crash");
    check_window(out, fault.monitoring.delay_min, fault.monitoring.delay_max,
                 "monitoring.delay");
    check_window(out, fault.monitoring.disconnect_min,
                 fault.monitoring.disconnect_max, "monitoring.disconnect");
    check_window(out, fault.repair.permanent_from, fault.repair.permanent_until,
                 "repair.permanent");
    check_window(out, fault.repair.stall_min, fault.repair.stall_max,
                 "repair.stall");
    check_window(out, fault.fleet.crash_min, fault.fleet.crash_max,
                 "fleet.crash");
  }

  return out;
}

}  // namespace arcadia::core
