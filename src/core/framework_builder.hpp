// Fluent assembly of the adaptation framework from pluggable parts. The
// default build() reproduces exactly the wiring the paper's experiment ran
// (Framework's legacy constructor); each with_* call swaps one part or
// config knob:
//
//   auto fw = core::FrameworkBuilder(sim, testbed)
//                 .with_policy("worst-first")
//                 .with_script(my_script_source)
//                 .build();
//   fw->start();
//
// Part factories run lazily inside Framework's constructor/start. The
// builder is bound to one (simulator, testbed) pair; repeated build()
// calls assemble further frameworks over that same testbed.
#pragma once

#include <memory>
#include <string>

#include "core/fleet.hpp"
#include "core/framework.hpp"

namespace arcadia::core {

class FrameworkBuilder {
 public:
  FrameworkBuilder(sim::Simulator& sim, sim::Testbed& testbed);

  /// Replace the whole config (otherwise defaults, adjusted by the
  /// finer-grained setters below).
  FrameworkBuilder& with_config(FrameworkConfig config);
  /// Task-layer objectives (latency bound, load/bandwidth thresholds).
  FrameworkBuilder& with_profile(task::PerformanceProfile profile);
  /// Interpreted repair-script source (selects the script path).
  FrameworkBuilder& with_script(std::string source);
  /// Run native C++ strategies from repair::StrategyRegistry instead of
  /// the interpreted script.
  FrameworkBuilder& with_native_strategies();
  /// Violation policy by registry name ("first-reported", "worst-first",
  /// or a user-registered one).
  FrameworkBuilder& with_policy(std::string policy_name);
  /// Startup semantic verification behavior (arcverify's in-process hook):
  /// Off, Warn (default — log issues), or Error (fail start() on any
  /// error-severity issue).
  FrameworkBuilder& with_verification(VerifyMode mode);
  /// Durability plane: journal + snapshots under options.dir (see
  /// durability/plane.hpp and core/recovery.hpp). An empty dir disables it.
  FrameworkBuilder& with_durability(durability::Options options);

  // -- part substitution (null restores the default wiring) --
  FrameworkBuilder& with_remos(FrameworkParts::RemosFactory factory);
  FrameworkBuilder& with_probe_bus(FrameworkParts::BusFactory factory);
  FrameworkBuilder& with_gauge_bus(FrameworkParts::BusFactory factory);
  FrameworkBuilder& with_model(FrameworkParts::ModelFactory factory);
  FrameworkBuilder& with_translator(FrameworkParts::TranslatorFactory factory);
  FrameworkBuilder& with_probe_set(FrameworkParts::ProbeFactory factory);
  FrameworkBuilder& with_gauge_deployer(FrameworkParts::GaugeDeployer deployer);

  const FrameworkConfig& config() const { return config_; }

  /// Assemble the framework (does not start it).
  std::unique_ptr<Framework> build();
  /// Assemble and start: probes deployed, Remos warmed, checking armed.
  std::unique_ptr<Framework> build_started();

  /// Fleet-mode entry point: N tenant frameworks over one simulator,
  /// coordinated by a FleetManager (batched gauge application + parallel
  /// constraint sweep). Static because a fleet spans many testbeds where
  /// the builder instance is bound to one. See core/fleet.hpp.
  static std::unique_ptr<Fleet> build_fleet(sim::Simulator& sim,
                                            FleetOptions options);

 private:
  sim::Simulator& sim_;
  sim::Testbed& testbed_;
  FrameworkConfig config_;
  FrameworkParts parts_;
};

}  // namespace arcadia::core
