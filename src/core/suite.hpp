// Batched experiment runner: fans a list of labeled runs — typically a
// (scenario x framework-config) grid — across a thread pool. Each run owns
// its whole simulator, so parallelism at experiment granularity is safe by
// construction; registries are read-only at run time and thread-safe.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"

namespace arcadia::core {

struct SuiteCase {
  std::string label;
  ExperimentOptions options;
};

struct SuiteOutcome {
  std::string label;
  std::string scenario;
  ExperimentResult result;
  /// Non-empty when the run threw; `result` is then default-constructed.
  /// The failure is contained to this case — the rest of the suite runs.
  std::string error;
  /// The case's fault seed (ScenarioConfig::fault.seed), recorded even on
  /// failure so a crashing fault grid cell can be replayed exactly.
  std::uint64_t fault_seed = 0;
  /// Host wall-clock spent on this case, measured around the run whether it
  /// returned or threw — a failed cell's cost must not vanish from the CSV.
  double wall_seconds = 0.0;
  /// Simulated seconds covered: the horizon on success, 0 on failure (the
  /// run died somewhere short of it; the `failed` CSV column marks which).
  double sim_seconds = 0.0;

  bool ok() const { return error.empty(); }
};

/// One named framework variant for grid expansion.
struct SuiteVariant {
  std::string label;
  FrameworkConfig framework;
  bool adaptation = true;
};

class ExperimentSuite {
 public:
  /// Queue one labeled run.
  ExperimentSuite& add(std::string label, ExperimentOptions options);
  /// Queue scenario x variant runs: every registered scenario name in
  /// `scenarios` under every framework variant, labeled
  /// "<scenario>/<variant>". Scenario defaults come from the registry.
  ExperimentSuite& add_grid(const std::vector<std::string>& scenarios,
                            const std::vector<SuiteVariant>& variants);

  std::size_t size() const { return cases_.size(); }
  const std::vector<SuiteCase>& cases() const { return cases_; }

  /// Run every queued case across `threads` workers (0 = hardware
  /// concurrency). Outcomes keep queue order; failures are captured per
  /// case, not thrown.
  std::vector<SuiteOutcome> run(std::size_t threads = 0) const;

 private:
  std::vector<SuiteCase> cases_;
};

}  // namespace arcadia::core
