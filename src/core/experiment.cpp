#include "core/experiment.hpp"

#include <memory>

#include "model/types.hpp"
#include "repair/style_ops.hpp"
#include "sim/scenario_registry.hpp"

namespace arcadia::core {

namespace {

/// Cross-check the architectural model against the runtime after a run —
/// the translator is supposed to have kept them in lockstep.
std::vector<std::string> check_consistency(const Framework& framework,
                                           const sim::GridApp& app) {
  std::vector<std::string> issues;
  const model::System& system =
      const_cast<Framework&>(framework).system();
  const repair::StyleConventions conv = framework.config().conventions;

  for (sim::ClientIdx c = 0;
       c < static_cast<sim::ClientIdx>(app.client_count()); ++c) {
    const std::string client = app.client_name(c);
    const std::string model_group =
        repair::group_of_client(system, client, conv);
    const sim::GroupIdx g = app.client_group(c);
    const std::string runtime_group =
        g == sim::kNoGroup ? "" : app.group_name(g);
    if (model_group != runtime_group) {
      issues.push_back("client " + client + ": model says '" + model_group +
                       "', runtime says '" + runtime_group + "'");
    }
  }
  for (sim::GroupIdx g = 0; g < static_cast<sim::GroupIdx>(app.group_count());
       ++g) {
    const std::string group = app.group_name(g);
    if (!system.has_component(group)) {
      issues.push_back("group " + group + " missing from the model");
      continue;
    }
    const model::Component& comp = system.component(group);
    const std::int64_t model_replicas =
        comp.property_or(model::cs::kPropReplication, model::PropertyValue(0))
            .as_int();
    const std::int64_t runtime_replicas =
        static_cast<std::int64_t>(app.active_servers(g).size());
    if (model_replicas != runtime_replicas) {
      issues.push_back("group " + group + ": model replicationCount " +
                       std::to_string(model_replicas) + ", runtime actives " +
                       std::to_string(runtime_replicas));
    }
  }
  return issues;
}

}  // namespace

double ExperimentResult::client_fraction_above(std::size_t i) const {
  const ClientSeries& c = clients.at(i);
  return c.window_latency.fraction_above(threshold_s, SimTime::zero(), horizon);
}

double ExperimentResult::mean_fraction_above() const {
  if (clients.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    sum += client_fraction_above(i);
  }
  return sum / static_cast<double>(clients.size());
}

SimTime ExperimentResult::client_first_crossing(std::size_t i) const {
  return clients.at(i).window_latency.first_crossing(threshold_s);
}

double ExperimentResult::max_queue_length() const {
  double best = 0.0;
  for (const GroupSeries& g : groups) {
    best = std::max(best, g.queue_length.max_over(SimTime::zero(), horizon));
  }
  return best;
}

const ClientSeries* ExperimentResult::client(const std::string& name) const {
  for (const ClientSeries& c : clients) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GroupSeries* ExperimentResult::group(const std::string& name) const {
  for (const GroupSeries& g : groups) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

ExperimentOptions options_for(const std::string& scenario_name) {
  ExperimentOptions options;
  options.scenario_name = scenario_name;
  options.scenario = sim::scenario_defaults(scenario_name);
  return options;
}

ExperimentResult run_experiment(const ExperimentOptions& options) {
  sim::Simulator sim;
  sim::Testbed tb =
      sim::build_scenario(sim, options.scenario_name, options.scenario);
  sim::GridApp& app = *tb.app;

  ExperimentResult result;
  result.adaptive = options.adaptation;
  result.horizon = options.scenario.horizon;
  result.threshold_s = options.scenario.thresholds.max_latency.as_seconds();

  // ---- recorders (installed before the framework so its probes chain) ----
  result.clients.resize(app.client_count());
  for (std::size_t i = 0; i < app.client_count(); ++i) {
    result.clients[i].name = app.client_name(static_cast<sim::ClientIdx>(i));
    result.clients[i].raw_latency.set_name("latency:" + result.clients[i].name);
    result.clients[i].bandwidth_mbps.set_name("bw:" + result.clients[i].name);
  }
  result.groups.resize(app.group_count());
  for (std::size_t i = 0; i < app.group_count(); ++i) {
    result.groups[i].name = app.group_name(static_cast<sim::GroupIdx>(i));
    result.groups[i].queue_length.set_name("queue:" + result.groups[i].name);
    result.groups[i].utilization.set_name("util:" + result.groups[i].name);
  }

  app.on_response = [&result, &sim](const sim::Request& req) {
    result.clients[req.client].raw_latency.append(sim.now(),
                                                  req.latency().as_seconds());
  };
  app.on_server_state = [&result, &sim, &app](sim::ServerIdx s, bool active) {
    result.server_events.push_back(
        ServerEvent{sim.now(), app.server_name(s), active});
  };

  sim::PeriodicTask recorder(
      sim, options.record_period, options.record_period, [&] {
        for (sim::GroupIdx g = 0;
             g < static_cast<sim::GroupIdx>(app.group_count()); ++g) {
          result.groups[g].queue_length.append(
              sim.now(), static_cast<double>(app.queue_length(g)));
          result.groups[g].utilization.append(sim.now(),
                                              app.group_utilization(g));
        }
        for (sim::ClientIdx c = 0;
             c < static_cast<sim::ClientIdx>(app.client_count()); ++c) {
          sim::GroupIdx g = app.client_group(c);
          if (g == sim::kNoGroup) continue;
          // Direct network measurement (works in the control run too,
          // where no Remos service exists).
          Bandwidth bw = tb.net->available_bandwidth(app.group_node(g),
                                                     app.client_node(c));
          result.clients[c].bandwidth_mbps.append(sim.now(), bw.as_mbps());
        }
        return true;
      });

  // ---- optional adaptation framework ----
  std::unique_ptr<Framework> framework;
  if (options.adaptation) {
    FrameworkConfig fw_cfg = options.framework;
    // The scenario's fault profile rides into the framework unless the
    // caller enabled one explicitly (an explicit profile wins).
    if (options.scenario.fault.enabled && !fw_cfg.fault.enabled) {
      fw_cfg.fault = options.scenario.fault;
    }
    framework =
        std::make_unique<Framework>(sim, tb, fw_cfg, options.parts);
    framework->start();
  }

  tb.start();
  sim.run_until(options.scenario.horizon);
  recorder.cancel();

  // ---- post-processing ----
  for (ClientSeries& c : result.clients) {
    c.window_latency = c.raw_latency.windowed_mean(
        options.latency_window, options.latency_sample, SimTime::zero(),
        options.scenario.horizon);
    c.window_latency.set_name("wlatency:" + c.name);
  }
  result.requests_issued = app.total_issued();
  result.responses_completed = app.total_completed();
  result.sim_events = sim.executed();
  if (framework) {
    result.repair_windows = framework->engine().repair_windows();
    result.repairs = framework->engine().records();
    result.repair_stats = framework->engine().stats();
    result.manager_stats = framework->manager().stats();
    result.gauge_stats = framework->gauges().stats();
    result.verdict_holds =
        framework->manager().checker().check_stats().holds;
    if (framework->fault_plane()) {
      // Close disconnect windows still open at the horizon first, or the
      // channels_disconnected gauge would report them as stuck-down forever
      // (the teardown leak this finalize exists to stop).
      framework->fault_plane()->finalize(sim.now());
      result.fault_stats = framework->fault_plane()->stats();
    }
    // Lockstep is only assessable at plan boundaries: while a plan is in
    // flight at the horizon, the committed model legitimately leads the
    // runtime (the executor hasn't finished enacting it).
    if (!framework->engine().busy()) {
      result.consistency_issues = check_consistency(*framework, app);
    }
  }
  return result;
}

PairedResults run_control_and_repair(ExperimentOptions options) {
  PairedResults out;
  options.adaptation = false;
  out.control = run_experiment(options);
  options.adaptation = true;
  out.repair = run_experiment(options);
  return out;
}

}  // namespace arcadia::core
