// The adaptation framework facade: wires the three layers of Figure 1 over
// a built testbed — monitoring (probes -> gauges -> architecture manager),
// the architectural model with its constraints, the repair engine, and the
// translator back down to the environment manager.
#pragma once

#include <memory>

#include "acme/script.hpp"
#include "core/arch_manager.hpp"
#include "durability/plane.hpp"
#include "events/bus.hpp"
#include "fault/profile.hpp"
#include "monitor/gauge_manager.hpp"
#include "monitor/probes.hpp"
#include "remos/remos.hpp"
#include "repair/engine.hpp"
#include "repair/scripts.hpp"
#include "runtime/environment.hpp"
#include "runtime/model_builder.hpp"
#include "runtime/queries.hpp"
#include "runtime/translator.hpp"
#include "sim/scenario.hpp"
#include "task/task.hpp"

namespace arcadia::fault {
class FaultPlane;
class FaultyBus;
class FaultyTranslator;
}  // namespace arcadia::fault

namespace arcadia::core {

struct RestoredRun;  // core/recovery.hpp

/// Startup semantic verification (core/verify.hpp) behavior.
enum class VerifyMode {
  Off,   ///< skip verification entirely
  Warn,  ///< log every issue, never fail (the default)
  Error, ///< log every issue; throw if any has error severity
};

struct FrameworkConfig {
  task::PerformanceProfile profile;

  /// Interpreted script strategies (default) vs native C++ strategies
  /// (resolved through repair::StrategyRegistry).
  bool use_script = true;
  /// Repair-script source; empty selects repair::extended_script().
  std::string script_source;

  repair::ViolationPolicy policy = repair::ViolationPolicy::FirstReported;
  /// Registry name of the violation policy (repair::PolicyRegistry);
  /// overrides the `policy` enum when non-empty.
  std::string policy_name;
  bool damping = true;
  SimTime settle_time = SimTime::seconds(30);
  SimTime abort_cooldown = SimTime::seconds(60);
  double load_improvement = 2.0;

  /// Enact repairs through the staged AdaptationPlan pipeline (lifted op
  /// records, cost-aware optimization, overlapped execution). Off = the
  /// paper's strictly sequential record replay, kept as the measured
  /// baseline of bench_fig11_repair_latency.
  bool plan_pipeline = true;
  /// Let a strictly worse violation abort a plan in flight (compensating
  /// enacted steps) and start its own repair — pair with the
  /// churn-mid-repair scenario.
  bool plan_preemption = false;
  double plan_preempt_factor = 2.0;

  /// Gauge caching/relocation (Section 5.3's proposed speed-up) vs
  /// destroy-and-create.
  bool gauge_caching = false;
  monitor::GaugeManagerConfig gauge_costs;

  /// Pre-query Remos at start-up, as the paper's experiment did.
  bool remos_prequery = true;
  remos::RemosConfig remos_config;

  /// Prioritize monitoring traffic (QoS) instead of sharing the
  /// application's network.
  bool monitoring_qos = false;
  SimTime bus_base_delay = SimTime::millis(50);

  SimTime probe_period = SimTime::seconds(1);
  SimTime gauge_window = SimTime::seconds(30);
  SimTime check_period = SimTime::seconds(5);
  SimTime first_check = SimTime::seconds(15);

  /// Fleet mode: the ArchitectureManager is assembled passive — no gauge
  /// subscription, no periodic check — and a core::FleetManager batches the
  /// reports and drives the sweep across all tenants (see core/fleet.hpp).
  bool fleet_managed = false;

  /// Fault injection (usually copied from ScenarioConfig::fault by the
  /// experiment runner). When enabled, the framework constructs a
  /// FaultPlane, wraps the probe/gauge buses and the translator in their
  /// faulty decorators, arms the gauge-liveness watchdog, and schedules
  /// the tenant-crash draw at start().
  fault::FaultProfile fault;
  /// Retry/backoff + per-op timeouts for runtime steps (repair/retry.hpp);
  /// forwarded to the repair engine's plan executor.
  repair::RetryPolicy retry;

  rt::EnvironmentCosts env_costs;
  repair::StyleConventions conventions;

  /// Run arcverify's semantic checks (script effect/flow analysis +
  /// cross-artifact deployment verification) at the end of start().
  VerifyMode verify = VerifyMode::Warn;

  /// Durability plane (durability/plane.hpp): an empty dir (the default)
  /// disables journaling/snapshots entirely — bit-identical behavior and
  /// zero overhead. With a dir set, the framework owns a DurabilityPlane,
  /// journals every repair commit / plan event / applied gauge delta, and
  /// snapshots periodically; see core/recovery.hpp for crash restore.
  durability::Options durability;
};

/// The framework's pluggable assembly points. A null member selects the
/// default wiring (what the paper's experiment ran); FrameworkBuilder is
/// the ergonomic way to fill these in.
struct FrameworkParts {
  using RemosFactory = std::function<std::unique_ptr<remos::RemosService>(
      sim::Simulator&, sim::Testbed&, const FrameworkConfig&)>;
  using BusFactory = std::function<std::unique_ptr<events::SimEventBus>(
      sim::Simulator&, sim::Testbed&, const FrameworkConfig&)>;
  using ModelFactory = std::function<std::unique_ptr<model::System>(
      const sim::Testbed&, const FrameworkConfig&)>;
  using TranslatorFactory = std::function<std::unique_ptr<repair::Translator>(
      rt::SimEnvironmentManager&, const FrameworkConfig&)>;
  using ProbeFactory = std::function<monitor::ProbeSet(
      sim::Simulator&, sim::Testbed&, remos::RemosService&, events::EventBus&,
      const FrameworkConfig&)>;
  using GaugeDeployer =
      std::function<void(sim::Simulator&, sim::Testbed&, monitor::GaugeManager&,
                         const FrameworkConfig&)>;

  RemosFactory remos;            ///< default: RemosService over testbed.net
  BusFactory probe_bus;          ///< default: fixed 5 ms colocated delivery
  BusFactory gauge_bus;          ///< default: shared-network delay (+QoS knob)
  ModelFactory model;            ///< default: rt::build_grid_model (the task
                                 ///  profile is applied on top either way)
  TranslatorFactory translator;  ///< default: rt::SimTranslator
  ProbeFactory probes;           ///< default: monitor::make_standard_probes
  GaugeDeployer gauges;          ///< default: latency/bw per client, load/util
                                 ///  per group
};

class Framework {
 public:
  Framework(sim::Simulator& sim, sim::Testbed& testbed, FrameworkConfig config);
  /// Assemble with substituted parts (see FrameworkBuilder).
  Framework(sim::Simulator& sim, sim::Testbed& testbed, FrameworkConfig config,
            FrameworkParts parts);
  ~Framework();

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  /// Deploy probes and gauges, warm Remos, arm constraint checking.
  void start();

  model::System& system() { return *system_; }
  const acme::Script& script() const { return script_; }
  repair::RepairEngine& engine() { return *engine_; }
  ArchitectureManager& manager() { return *manager_; }
  monitor::GaugeManager& gauges() { return *gauge_manager_; }
  remos::RemosService& remos() { return *remos_; }
  rt::SimEnvironmentManager& environment() { return *env_; }
  repair::Translator& translator() { return *translator_; }
  events::SimEventBus& probe_bus() { return *probe_bus_; }
  events::SimEventBus& gauge_bus() { return *gauge_bus_; }
  const FrameworkConfig& config() const { return config_; }
  /// Null unless config().fault.enabled.
  fault::FaultPlane* fault_plane() { return fault_plane_.get(); }

  /// The journal/snapshot plane this framework reports into, or null when
  /// durability is off. Solo frameworks own theirs (config().durability);
  /// fleet tenants share the Fleet's plane via attach_durability().
  durability::DurabilityPlane* durability_plane() { return durability_sink_; }

  /// Wire an externally-owned durability plane (the fleet's shared journal).
  /// Every repair commit, plan event, and applied gauge fold on this
  /// framework is journaled under `shard`. Call before start().
  void attach_durability(durability::DurabilityPlane* plane,
                         std::uint32_t shard);

  /// Wire a bare JournalSink instead of a plane: the sharded fleet kernel
  /// gives every tenant a per-shard durability::StagingSink (drained into
  /// the shared plane at window barriers), so tenants never touch the
  /// single-writer plane from pool workers. Unlike attach_durability this
  /// leaves durability_plane() null — snapshot capture stays with the
  /// Fleet, which owns the real plane. Call before start().
  void attach_journal_sink(durability::JournalSink* sink, std::uint32_t shard);

  /// Capture this framework's durable state for a snapshot: the full model
  /// encoding + digest, every gauge channel's liveness state, and the fault
  /// plane's RNG stream positions. Health is Healthy here; the fleet's
  /// snapshot task overwrites it from FleetManager::shard_health().
  durability::ShardSnapshot capture_shard_snapshot() const;

  /// Rebuild a started run from a durable directory (manifest + snapshots +
  /// journal): re-executes the deterministic run from t=0, byte-verifying
  /// every re-journaled frame against the crashed journal's valid prefix.
  /// Defined in core/recovery.cpp (see DESIGN.md §8).
  static std::unique_ptr<RestoredRun> restore(const std::string& dir);

 private:
  void deploy_gauges();
  void warm_remos();

  sim::Simulator& sim_;
  sim::Testbed& testbed_;
  FrameworkConfig config_;
  FrameworkParts parts_;

  std::unique_ptr<remos::RemosService> remos_;
  std::unique_ptr<events::SimEventBus> probe_bus_;
  std::unique_ptr<events::SimEventBus> gauge_bus_;
  // Fault plane + decorators (null unless config_.fault.enabled). The
  // wrapped buses carry only *publishes*; subscriptions stay on the inner
  // buses, so accessors above keep returning the real SimEventBus.
  std::unique_ptr<fault::FaultPlane> fault_plane_;
  std::unique_ptr<fault::FaultyBus> lossy_probe_bus_;
  std::unique_ptr<fault::FaultyBus> lossy_gauge_bus_;
  std::unique_ptr<fault::FaultyTranslator> flaky_translator_;
  std::unique_ptr<model::System> system_;
  acme::Script script_;
  std::unique_ptr<rt::SimEnvironmentManager> env_;
  std::unique_ptr<rt::SimRuntimeQueries> queries_;
  std::unique_ptr<repair::Translator> translator_;
  std::unique_ptr<monitor::GaugeManager> gauge_manager_;
  std::unique_ptr<repair::RepairEngine> engine_;
  std::unique_ptr<ArchitectureManager> manager_;
  monitor::ProbeSet probes_;
  // Durability: the owned plane (solo mode, null when config_.durability is
  // empty or a fleet plane was attached) and the active sink (own or shared).
  std::unique_ptr<durability::DurabilityPlane> durability_plane_;
  durability::DurabilityPlane* durability_sink_ = nullptr;
  std::uint32_t durability_shard_ = 0;
  std::unique_ptr<sim::PeriodicTask> snapshot_task_;
  bool started_ = false;
};

}  // namespace arcadia::core
