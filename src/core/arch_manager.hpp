// The architecture manager (Figure 1, item 4): consumes gauge reports,
// folds them into the architectural model's properties, periodically
// verifies the model's constraints, and hands violations to the repair
// engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "durability/sink.hpp"
#include "events/bus.hpp"
#include "model/system.hpp"
#include "repair/constraint.hpp"
#include "repair/engine.hpp"
#include "sim/simulator.hpp"

namespace arcadia::core {

struct ArchManagerConfig {
  /// Constraint-evaluation period. (Offset slightly from gauge reports so
  /// checks see fresh values.)
  SimTime check_period = SimTime::seconds(5);
  SimTime first_check = SimTime::seconds(15);
  /// The machine the manager runs on (gauge reports are delivered here —
  /// in the paper's testbed, the machine running Server 4).
  sim::NodeId manager_node = sim::kNoNode;
  /// Fleet mode: start() arms nothing — a core::FleetManager owns the gauge
  /// subscription (batched) and drives detect()/dispatch() on its own
  /// schedule. The manager keeps owning the checker, model, and engine.
  bool passive = false;
};

struct ArchManagerStats {
  std::uint64_t reports_applied = 0;
  std::uint64_t reports_unchanged = 0;  ///< dead-band: repeated steady values
  std::uint64_t reports_ignored = 0;
  std::uint64_t checks = 0;
  std::uint64_t violations_seen = 0;
  /// Gauge-liveness bookkeeping: elements entering / leaving the suspect
  /// state (watchdog "suspect"/"cleared" lifecycle events, refcounted per
  /// element across its gauges).
  std::uint64_t elements_suspected = 0;
  std::uint64_t elements_cleared = 0;
  std::uint64_t repairs_triggered = 0;
  /// Repairs that started by preempting a plan in flight (dispatch keeps
  /// running while the engine enacts, so a strictly worse violation can
  /// displace the active repair — see RepairEngineConfig::preemption).
  std::uint64_t repairs_preempted = 0;
  /// Real (host) wall-clock spent in periodic checks — the control-plane
  /// cost benches compare against fleet mode. Not simulated time.
  double check_wall_s = 0.0;
};

class ArchitectureManager {
 public:
  /// The checker is owned by the manager; the engine is shared with the
  /// framework. `gauge_bus` supplies property updates.
  ArchitectureManager(sim::Simulator& sim, model::System& system,
                      events::EventBus& gauge_bus, repair::RepairEngine& engine,
                      ArchManagerConfig config);
  ~ArchitectureManager();

  ArchitectureManager(const ArchitectureManager&) = delete;
  ArchitectureManager& operator=(const ArchitectureManager&) = delete;

  repair::ConstraintChecker& checker() { return checker_; }
  const ArchManagerStats& stats() const { return stats_; }

  /// Optional write-ahead journal sink: every Applied gauge fold is
  /// reported (batched by the durability plane). Null = durability off.
  void set_journal_sink(durability::JournalSink* sink, std::uint32_t shard) {
    journal_sink_ = sink;
    journal_shard_ = shard;
  }

  /// Subscribe to the gauge bus and arm periodic constraint checking.
  void start();
  void stop();

  /// Apply one gauge report to the model (public for tests). Element may
  /// be a component name or "Connector.role". True unless the report was
  /// malformed or named a missing element (an Unchanged dead-band hit still
  /// counts as accepted).
  bool apply_gauge_report(const events::Notification& n);

  /// Parse a gauge report's address into interned symbols — the single
  /// source of truth for the "Component" / "Connector.role" convention,
  /// shared with the fleet's batched sink. False when attributes are
  /// missing.
  static bool parse_gauge_report(const events::Notification& n,
                                 util::Symbol& element, util::Symbol& role,
                                 util::Symbol& property);

  /// Parse a gauge lifecycle notification's element + phase attributes
  /// (shared with the fleet's per-shard liveness sink). False when absent.
  static bool parse_gauge_lifecycle(const events::Notification& n,
                                    util::Symbol& element,
                                    util::Symbol& phase);

  /// Fold one gauge-liveness transition into the checker's verdict holds.
  /// Refcounted per element: an element with several gauges stays suspect
  /// until every stale gauge has cleared. Public so a FleetManager can
  /// drive it for passive shards.
  void note_gauge_liveness(util::Symbol element, bool suspect);

  /// Outcome of folding one gauge value into the model.
  enum class GaugeApply {
    Applied,    ///< the property was written (value changed)
    Unchanged,  ///< dead-band: the report repeats the current value, so the
                ///  model — and every constraint verdict — is untouched; no
                ///  stamp bump, no re-evaluation, no shard dirtying
    NoTarget,   ///< the element does not exist in this model
  };

  /// Pre-parsed fast path (also the fleet's batched sink): `element` is a
  /// component, or a connector when `role` is non-empty. Reports whose
  /// value matches the current property within the monitoring noise floor
  /// (1e-5 absolute / 1e-9 relative) are Unchanged — gauges re-publish
  /// steady values forever, and re-stamping the element for them would
  /// force constraint re-evaluation that provably cannot change a verdict.
  GaugeApply apply_gauge_value(util::Symbol element, util::Symbol role,
                               util::Symbol property,
                               const events::Value& value);

  // ---- the two halves of a check, split so a FleetManager can run
  //      detection for many shards in parallel and dispatch afterwards in
  //      deterministic shard order ----

  /// Evaluate the constraints (incremental) and return current violations.
  /// Read-only on the model; safe to run concurrently with other shards'
  /// detect() — never with anything that mutates this shard.
  std::vector<repair::Violation> detect();
  /// Hand violations to the repair engine; true when a repair started.
  /// Mutates the model (must run on the simulation thread, in shard order).
  /// Detection and dispatch keep running while a plan enacts — the engine
  /// declines while busy unless a strictly worse violation preempts it.
  bool dispatch(const std::vector<repair::Violation>& violations);

  /// A repair is in flight on this shard's engine.
  bool repair_active() const { return engine_.busy(); }

 private:
  void run_check();

  sim::Simulator& sim_;
  model::System& system_;
  events::EventBus& gauge_bus_;
  repair::RepairEngine& engine_;
  ArchManagerConfig config_;
  repair::ConstraintChecker checker_;
  durability::JournalSink* journal_sink_ = nullptr;
  std::uint32_t journal_shard_ = 0;
  events::SubscriptionId sub_ = 0;
  events::SubscriptionId lifecycle_sub_ = 0;
  std::unique_ptr<sim::PeriodicTask> check_task_;
  ArchManagerStats stats_;
  /// Per-element count of currently-suspect gauges.
  util::SymbolMap<int> suspect_refs_;
};

}  // namespace arcadia::core
