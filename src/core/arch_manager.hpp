// The architecture manager (Figure 1, item 4): consumes gauge reports,
// folds them into the architectural model's properties, periodically
// verifies the model's constraints, and hands violations to the repair
// engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "events/bus.hpp"
#include "model/system.hpp"
#include "repair/constraint.hpp"
#include "repair/engine.hpp"
#include "sim/simulator.hpp"

namespace arcadia::core {

struct ArchManagerConfig {
  /// Constraint-evaluation period. (Offset slightly from gauge reports so
  /// checks see fresh values.)
  SimTime check_period = SimTime::seconds(5);
  SimTime first_check = SimTime::seconds(15);
  /// The machine the manager runs on (gauge reports are delivered here —
  /// in the paper's testbed, the machine running Server 4).
  sim::NodeId manager_node = sim::kNoNode;
};

struct ArchManagerStats {
  std::uint64_t reports_applied = 0;
  std::uint64_t reports_ignored = 0;
  std::uint64_t checks = 0;
  std::uint64_t violations_seen = 0;
  std::uint64_t repairs_triggered = 0;
};

class ArchitectureManager {
 public:
  /// The checker is owned by the manager; the engine is shared with the
  /// framework. `gauge_bus` supplies property updates.
  ArchitectureManager(sim::Simulator& sim, model::System& system,
                      events::EventBus& gauge_bus, repair::RepairEngine& engine,
                      ArchManagerConfig config);
  ~ArchitectureManager();

  ArchitectureManager(const ArchitectureManager&) = delete;
  ArchitectureManager& operator=(const ArchitectureManager&) = delete;

  repair::ConstraintChecker& checker() { return checker_; }
  const ArchManagerStats& stats() const { return stats_; }

  /// Subscribe to the gauge bus and arm periodic constraint checking.
  void start();
  void stop();

  /// Apply one gauge report to the model (public for tests). Element may
  /// be a component name or "Connector.role".
  bool apply_gauge_report(const events::Notification& n);

 private:
  void run_check();

  sim::Simulator& sim_;
  model::System& system_;
  events::EventBus& gauge_bus_;
  repair::RepairEngine& engine_;
  ArchManagerConfig config_;
  repair::ConstraintChecker checker_;
  events::SubscriptionId sub_ = 0;
  std::unique_ptr<sim::PeriodicTask> check_task_;
  ArchManagerStats stats_;
};

}  // namespace arcadia::core
