// Fleet assembly: N tenant stacks — testbed, monitoring, model shard,
// repair engine — over ONE simulator, coordinated by a FleetManager.
//
//   sim::Simulator sim;
//   core::FleetOptions opt;
//   opt.tenants = 8;                       // 0 = scenario default
//   opt.sim_threads = 4;                   // 0 = legacy shared simulator
//   auto fleet = core::FrameworkBuilder::build_fleet(sim, opt);
//   fleet->start();
//   fleet->run_until(SimTime::seconds(600));
//
// With sim_threads > 0 each tenant runs on a private ShardSimulator and a
// SimCoordinator advances them concurrently in conservative time windows
// (DESIGN.md §9); `sim` becomes the control clock (sweeps, snapshots).
// Event order is bit-identical for any sim_threads >= 1.
//
// Every tenant is a full Framework (its own probes, gauges, buses, model,
// constraint checker, and repair engine) built from a registered scenario;
// the scenario's `fleet.tenant_index` is looped to clone phase-shifted
// tenants. With `coordinated` (the default), the per-tenant architecture
// managers are passive and the FleetManager batches reports and sweeps in
// parallel; with it off, every tenant runs the classic per-tenant loop —
// the baseline bench_fleet_scaling measures against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fleet_manager.hpp"
#include "core/framework.hpp"
#include "durability/staging.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/shard_sim.hpp"

namespace arcadia::core {

struct FleetOptions {
  /// Registered scenario cloned per tenant (its factory must honour
  /// ScenarioConfig::fleet::tenant_index, as "fleet-4x16" does).
  std::string scenario = "fleet-4x16";
  /// Tenant count; 0 uses the scenario default (config.fleet.tenants).
  int tenants = 0;
  /// Base scenario config; tenant index is overwritten per tenant. Unset
  /// (nullopt-like empty flag below) uses the scenario's defaults.
  sim::ScenarioConfig config;
  bool use_scenario_defaults = true;

  FrameworkConfig framework;
  /// Fleet coordination knobs. check_period/first_check are taken from
  /// `framework` (single source of truth for the check cadence); the
  /// values here apply only to a standalone FleetManager.
  FleetManagerConfig manager;
  /// true: passive tenant managers + FleetManager (batched, parallel).
  /// false: classic per-tenant control loops, no FleetManager — the naive
  /// baseline for A/B runs.
  bool coordinated = true;

  /// Shared durability plane: ONE journal/snapshot stream for the whole
  /// fleet, each tenant tagged with its shard index. Appends happen on the
  /// simulation thread in shard order ("parallel detect, ordered dispatch"),
  /// so the journal bytes are identical for any sweep_threads setting. An
  /// empty dir disables it. (FrameworkConfig::durability is ignored per
  /// tenant here — a fleet must not scatter N private journals.)
  durability::Options durability;

  /// Sharded simulation kernel (DESIGN.md §9). 0 = legacy: every tenant's
  /// events run on the one shared simulator. >= 1 = each tenant gets a
  /// private ShardSimulator advanced in conservative time windows by a
  /// SimCoordinator with this many worker threads; drive the run with
  /// Fleet::run_until instead of Simulator::run_until. The event order —
  /// and therefore every repair, journal byte, and fault draw — is
  /// bit-identical for sim_threads = 1 and sim_threads = N (windows are
  /// serial per shard; all coupling happens at barriers in shard order).
  std::size_t sim_threads = 0;
};

/// One tenant's stack. Heap-allocated and pinned: the framework holds
/// references into the testbed, so neither may relocate. Declaration order
/// matters too — the framework must be destroyed first.
struct FleetTenant {
  std::string name;
  sim::Testbed testbed;
  std::unique_ptr<Framework> framework;
  /// The tenant's sub-simulator under the sharded kernel (owned by the
  /// coordinator; null in legacy mode). testbed and framework run on its
  /// clock, inside its lane.
  sim::ShardSimulator* shard = nullptr;

  /// SerialLane token for this tenant (0 in legacy mode: thread-keyed).
  std::uintptr_t lane() const { return shard ? shard->lane() : 0; }
};

class Fleet {
 public:
  /// Build all tenants (does not start anything).
  Fleet(sim::Simulator& sim, FleetOptions options);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Start every tenant's framework and drivers, then the fleet manager.
  void start();

  /// Advance the fleet to `horizon`. Legacy mode runs the shared simulator
  /// directly; sharded mode runs the coordinator's window loop and drains
  /// staged journal records at every barrier (and once more at the end).
  /// Returns total events executed.
  std::uint64_t run_until(SimTime horizon);

  std::size_t tenant_count() const { return tenants_.size(); }
  FleetTenant& tenant(std::size_t i) { return *tenants_[i]; }
  const FleetTenant& tenant(std::size_t i) const { return *tenants_[i]; }
  /// Null when options.coordinated was false.
  FleetManager* manager() { return manager_.get(); }
  /// Null unless options.durability was set.
  durability::DurabilityPlane* durability_plane() { return plane_.get(); }
  /// Null unless options.sim_threads > 0.
  sim::SimCoordinator* coordinator() { return coordinator_.get(); }
  const FleetOptions& options() const { return options_; }

  /// One ShardSnapshot per tenant (shard = tenant index), health stamped
  /// from the FleetManager's state machine. What the periodic snapshot task
  /// writes; public so crash tests can force a capture.
  std::vector<durability::ShardSnapshot> capture_snapshot() const;

 private:
  /// Replay every staged journal record into the shared plane, k-way merged
  /// by (time, shard, emission seq) — a total order independent of which
  /// worker ran which shard. Runs at every window barrier and at teardown.
  void drain_staging();

  sim::Simulator& sim_;
  FleetOptions options_;
  /// Declared before the tenants (and the staging sinks): they journal into
  /// it through raw sink pointers, so it must be destroyed after every
  /// framework and after the final drain.
  std::unique_ptr<durability::DurabilityPlane> plane_;
  /// Per-tenant journal staging under the sharded kernel (parallel windows
  /// may not write the single-writer plane); indexed by shard. Declared
  /// before the tenants so teardown-time journaling still has a sink.
  std::vector<std::unique_ptr<durability::StagingSink>> staging_;
  /// Owns the ShardSimulators the tenant testbeds run on — destroyed after
  /// the tenants that reference them.
  std::unique_ptr<sim::SimCoordinator> coordinator_;
  std::vector<std::unique_ptr<FleetTenant>> tenants_;
  std::unique_ptr<FleetManager> manager_;
  std::unique_ptr<sim::PeriodicTask> snapshot_task_;
  bool started_ = false;
};

}  // namespace arcadia::core
