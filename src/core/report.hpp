// Paper-style reporting: prints the series behind each figure (log-scale
// friendly), the repair windows, and the summary comparisons the
// evaluation section states in prose. Used by the bench harness and the
// examples.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/suite.hpp"

namespace arcadia::core {

/// Print one series as "t value" rows, bucketed for readability.
void print_series(std::ostream& out, const TimeSeries& series, SimTime bucket,
                  const std::string& unit);

/// Print several aligned series as columns.
void print_series_table(std::ostream& out,
                        const std::vector<const TimeSeries*>& series,
                        SimTime bucket);

/// Figure 8/11 content: per-client windowed average latency.
void print_latency_figure(std::ostream& out, const ExperimentResult& result,
                          SimTime bucket);

/// Figure 9/13 content: per-group queue length.
void print_load_figure(std::ostream& out, const ExperimentResult& result,
                       SimTime bucket);

/// Figure 10/12 content: per-client available bandwidth.
void print_bandwidth_figure(std::ostream& out, const ExperimentResult& result,
                            SimTime bucket);

/// Repair windows + per-repair breakdown (strategy, tactics, costs).
void print_repairs(std::ostream& out, const ExperimentResult& result);

/// Robustness counters as metric,value CSV rows: injected faults (drops,
/// duplicates, delays, disconnects, op failures, crashes) and the loop's
/// absorption of them (retries, timeouts, suspects, verdict holds). Extra
/// fleet-level rows (shards_quarantined, ...) ride in via `extra`.
void write_fault_stats_csv(
    std::ostream& out, const ExperimentResult& result,
    const std::vector<std::pair<std::string, std::uint64_t>>& extra = {});

/// The control-vs-repair headline comparison (who wins, by how much).
void print_comparison(std::ostream& out, const ExperimentResult& control,
                      const ExperimentResult& repair);

/// Suite grid results, one row per case — including failed cases, which
/// keep their wall-clock column and set `failed`/`error` instead of being
/// silently dropped. Commas/quotes in error text are CSV-quoted.
void write_suite_csv(std::ostream& out,
                     const std::vector<SuiteOutcome>& outcomes);

}  // namespace arcadia::core
