#include "core/fleet_manager.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "model/revision.hpp"
#include "monitor/topics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/symbol.hpp"

namespace arcadia::core {

FleetManager::FleetManager(sim::Simulator& sim, FleetManagerConfig config)
    : sim_(sim), config_(config) {}

FleetManager::~FleetManager() { stop(); }

FleetManager::ShardId FleetManager::add_shard(std::string name,
                                              ArchitectureManager& manager,
                                              events::EventBus& gauge_bus,
                                              sim::NodeId manager_node) {
  serial_.check();
  if (started_) throw Error("FleetManager: add_shard after start");
  Shard shard;
  shard.name = std::move(name);
  shard.name_sym = util::Symbol::intern(shard.name);
  shard.manager = &manager;
  shard.bus = &gauge_bus;
  shard.manager_node = manager_node;
  shard.clock = &sim_;  // legacy default; bind_shard_executor overrides
  shards_.push_back(std::move(shard));
  return shards_.size() - 1;
}

void FleetManager::bind_shard_executor(ShardId id, sim::Simulator* clock,
                                       std::uintptr_t lane) {
  serial_.check();
  if (started_) throw Error("FleetManager: bind_shard_executor after start");
  shards_[id].clock = clock;
  shards_[id].lane = lane;
}

void FleetManager::start() {
  serial_.check();
  if (started_) throw Error("FleetManager::start called twice");
  started_ = true;
  // The pool is sized only now, when the shard count is known: more workers
  // than shards could never receive a chunk, and a small fleet should not
  // carry a hardware_concurrency-sized pool of idle threads.
  std::size_t threads = config_.sweep_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, shards_.size());
  if (threads > 1 && !pool_) pool_ = std::make_unique<ThreadPool>(threads);
  for (ShardId id = 0; id < shards_.size(); ++id) {
    Shard& shard = shards_[id];
    // The bus belongs to the shard's serial context: subscribe from inside
    // its lane so the bus's own SerialDomain keys on the lane, not on
    // whichever thread assembles the fleet.
    util::SerialLane in_lane(shard.lane);
    shard.sub = shard.bus->subscribe(
        events::Filter::topic(monitor::topics::kGaugeReportSym),
        [this, id](const events::Notification& n) { enqueue(id, n); },
        shard.manager_node);
    // Observe the tenant's repair plans in flight (overlapped lifecycle:
    // detection keeps sweeping while these enact).
    shard.plan_sub = shard.bus->subscribe(
        events::Filter::topic(monitor::topics::kRepairPlanSym),
        [this, id](const events::Notification& n) { note_plan_event(id, n); },
        shard.manager_node);
    // Route the watchdog's suspect/cleared marks into the (passive) shard
    // manager's verdict holds — in fleet mode nobody else is listening.
    shard.lifecycle_sub = shard.bus->subscribe(
        events::Filter::topic(monitor::topics::kGaugeLifecycleSym),
        [this, id](const events::Notification& n) { note_lifecycle(id, n); },
        shard.manager_node);
    // Registration counts as liveness: a shard is not silent until it has
    // had degraded_after of quiet from the moment the fleet starts.
    shard.last_report_at = shard.clock->now();
  }
  sweep_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.first_check, config_.check_period, [this] {
        run_sweep();
        return true;
      });
  ARC_INFO << "fleet: started (" << shards_.size() << " shards, "
           << sweep_threads() << " sweep threads, coalesce "
           << config_.coalesce_window.as_seconds() << " s)";
}

void FleetManager::stop() {
  serial_.check();
  sweep_task_.reset();
  for (Shard& shard : shards_) {
    util::SerialLane in_lane(shard.lane);  // bus + timer live in the lane
    if (shard.sub != 0) {
      shard.bus->unsubscribe(shard.sub);
      shard.sub = 0;
    }
    if (shard.plan_sub != 0) {
      shard.bus->unsubscribe(shard.plan_sub);
      shard.plan_sub = 0;
    }
    if (shard.lifecycle_sub != 0) {
      shard.bus->unsubscribe(shard.lifecycle_sub);
      shard.lifecycle_sub = 0;
    }
    shard.flush_timer.cancel();
    for (std::uint32_t idx : shard.touched) shard.slots[idx].armed = false;
    shard.touched.clear();
  }
  started_ = false;
}

void FleetManager::apply(Shard& shard, const Shard::PendingSlot& slot) {
  switch (shard.manager->apply_gauge_value(slot.element, slot.role,
                                           slot.property, slot.value)) {
    case ArchitectureManager::GaugeApply::Applied:
      ++shard.stats.reports_applied;
      shard.dirty = true;
      break;
    case ArchitectureManager::GaugeApply::Unchanged:
      // The model did not move, so neither could any verdict: the shard
      // stays clean and a quiet tenant's sweep is skipped outright.
      ++shard.stats.reports_unchanged;
      break;
    case ArchitectureManager::GaugeApply::NoTarget:
      ++shard.stats.reports_ignored;
      break;
  }
}

void FleetManager::note_plan_event(ShardId id, const events::Notification& n) {
  const events::Value* phase = n.get_if(monitor::topics::kAttrPhaseSym);
  if (!phase || !phase->is_string()) return;
  shards_[id].serial.check();
  FleetShardStats& stats = shards_[id].stats;
  const util::Symbol sym = phase->to_symbol();
  if (sym == monitor::topics::kPhasePlanStarted) {
    ++stats.plans_started;
  } else if (sym == monitor::topics::kPhasePlanCompleted) {
    ++stats.plans_completed;
  } else if (sym == monitor::topics::kPhasePlanPreempted) {
    ++stats.plans_preempted;
  } else if (sym == monitor::topics::kPhasePlanFailed) {
    ++stats.plans_failed;
  }
}

void FleetManager::note_lifecycle(ShardId id, const events::Notification& n) {
  util::Symbol element, phase;
  if (!ArchitectureManager::parse_gauge_lifecycle(n, element, phase)) return;
  shards_[id].serial.check();
  if (phase == monitor::topics::kPhaseSuspect) {
    shards_[id].manager->note_gauge_liveness(element, true);
  } else if (phase == monitor::topics::kPhaseCleared) {
    shards_[id].manager->note_gauge_liveness(element, false);
  }
}

void FleetManager::enqueue(ShardId id, const events::Notification& n) {
  Shard& shard = shards_[id];
  // Delivered on the shard's clock, inside its lane (a pool worker under
  // the sharded kernel). Everything touched below is this shard's state.
  shard.serial.check();
  ++shard.stats.reports_enqueued;
  // Any report — even one the parse below rejects — proves the tenant's
  // monitoring path is alive.
  shard.last_report_at = shard.clock->now();
  // Parse and intern once, at delivery (shared address convention); from
  // here the report is three symbol ids and a value.
  util::Symbol element_sym, role_sym, property;
  if (!ArchitectureManager::parse_gauge_report(n, element_sym, role_sym,
                                               property)) {
    ++shard.stats.reports_ignored;  // malformed, same verdict as unbatched
    return;
  }
  const events::Value& value = *n.get_if(monitor::topics::kAttrValueSym);

  if (config_.coalesce_window <= SimTime::zero()) {
    Shard::PendingSlot direct;
    direct.element = element_sym;
    direct.role = role_sym;
    direct.property = property;
    direct.value = value;
    apply(shard, direct);
    return;
  }

  // Coalesce into the key's persistent slot: a newer report supersedes the
  // armed value in place — one model write per key per window.
  const std::array<std::uint32_t, 3> key = {element_sym.id(), role_sym.id(),
                                            property.id()};
  auto [it, inserted] =
      shard.slot_index.emplace(key, static_cast<std::uint32_t>(shard.slots.size()));
  if (inserted) {
    Shard::PendingSlot slot;
    slot.element = element_sym;
    slot.role = role_sym;
    slot.property = property;
    shard.slots.push_back(std::move(slot));
  }
  Shard::PendingSlot& slot = shard.slots[it->second];
  slot.value = value;
  if (slot.armed) {
    ++shard.stats.reports_coalesced;
    return;
  }
  slot.armed = true;
  shard.touched.push_back(it->second);
  // Sweep-aligned batching: when the window spans a whole sweep period the
  // periodic sweep's own flush is always soon enough — no timer needed.
  if (config_.coalesce_window >= config_.check_period) return;
  if (!shard.flush_timer.valid()) {
    // On the shard's own clock: under the sharded kernel the timer must
    // fire inside a window (in the shard's lane), not on the control loop.
    shard.flush_timer = shard.clock->schedule_in(config_.coalesce_window,
                                                 [this, id] { flush(id); });
  }
}

void FleetManager::stall_shard(ShardId id, SimTime duration) {
  Shard& shard = shards_[id];
  util::SerialLane in_lane(shard.lane);
  shard.serial.check();
  shard.stalled_until =
      std::max(shard.stalled_until, shard.clock->now() + duration);
  ARC_WARN << "fleet: shard '" << shard.name << "' stalled for "
           << duration.as_seconds() << " s";
}

void FleetManager::update_health(ShardId id) {
  Shard& shard = shards_[id];
  const SimTime silence = sim_.now() - shard.last_report_at;
  const ShardHealth prev = shard.health;
  switch (shard.health) {
    case ShardHealth::Healthy:
      if (silence > config_.quarantine_after) {
        shard.health = ShardHealth::Quarantined;
      } else if (silence > config_.degraded_after) {
        shard.health = ShardHealth::Degraded;
      }
      break;
    case ShardHealth::Degraded:
      if (silence > config_.quarantine_after) {
        shard.health = ShardHealth::Quarantined;
      } else if (silence <= config_.degraded_after) {
        shard.health = ShardHealth::Recovering;
        shard.recovering_since = sim_.now();
      }
      break;
    case ShardHealth::Quarantined:
      if (silence <= config_.degraded_after) {
        shard.health = ShardHealth::Recovering;
        shard.recovering_since = sim_.now();
      }
      break;
    case ShardHealth::Recovering:
      if (silence > config_.degraded_after) {
        shard.health = ShardHealth::Degraded;  // relapsed while observing
      } else if (sim_.now() - shard.recovering_since >=
                 config_.recovery_observation) {
        shard.health = ShardHealth::Healthy;
      }
      break;
  }
  if (shard.health == prev) return;
  switch (shard.health) {
    case ShardHealth::Healthy:
      ++shard.stats.health_recovered;
      break;
    case ShardHealth::Degraded:
      ++shard.stats.health_degraded;
      break;
    case ShardHealth::Quarantined:
      ++shard.stats.health_quarantined;
      ++stats_.shards_quarantined;
      ARC_WARN << "fleet: shard '" << shard.name << "' quarantined after "
               << silence.as_seconds() << " s of report silence";
      break;
    case ShardHealth::Recovering:
      break;
  }
  publish_health(shard);
}

void FleetManager::publish_health(Shard& shard) {
  util::Symbol state;
  switch (shard.health) {
    case ShardHealth::Healthy:
      state = monitor::topics::kStateHealthy;
      break;
    case ShardHealth::Degraded:
      state = monitor::topics::kStateDegraded;
      break;
    case ShardHealth::Quarantined:
      state = monitor::topics::kStateQuarantined;
      break;
    case ShardHealth::Recovering:
      state = monitor::topics::kStateRecovering;
      break;
  }
  events::Notification n(monitor::topics::kFleetHealthSym);
  n.set(monitor::topics::kAttrShardSym, shard.name_sym)
      .set(monitor::topics::kAttrStateSym, state);
  n.wire_size = DataSize::bytes(128);
  shard.bus->publish(std::move(n));
}

void FleetManager::flush(ShardId id) {
  Shard& shard = shards_[id];
  util::SerialLane in_lane(shard.lane);
  shard.serial.check();
  shard.flush_timer.cancel();
  // A stalled control loop applies nothing; the backlog stays armed in its
  // slots and lands at the first flush after the stall lifts.
  if (shard.stalled_until > shard.clock->now()) return;
  if (shard.touched.empty()) return;
  ++shard.stats.batches;
  // One model pass, in first-touch order of each key. Keys are distinct
  // (element, role, property) triples, so relative order cannot change the
  // resulting model state.
  for (std::uint32_t idx : shard.touched) {
    Shard::PendingSlot& slot = shard.slots[idx];
    apply(shard, slot);
    slot.armed = false;
  }
  shard.touched.clear();  // capacity retained: steady state allocates nothing
}

void FleetManager::run_sweep() {
  serial_.check();
  const auto wall0 = std::chrono::steady_clock::now();
  ++stats_.sweep_rounds;
  // Apply everything still coalescing so this sweep sees values at least as
  // fresh as an unbatched manager would at the same instant. Sweeps run at
  // barriers: every shard clock equals the control clock here, and flush
  // re-enters each shard's lane itself.
  for (ShardId id = 0; id < shards_.size(); ++id) flush(id);

  // Any structural edit since the last round (repairs are the only in-run
  // source) re-sweeps every shard: the clock is process-global, so we
  // cannot attribute it to one shard — spurious detection for the
  // untouched ones, never a stale verdict.
  const std::uint64_t structure_now = model::structure_clock();
  const bool structure_moved = structure_now != structure_seen_;

  std::vector<ShardId> sweep;
  sweep.reserve(shards_.size());
  std::vector<char> selected(shards_.size(), 0);
  for (ShardId id = 0; id < shards_.size(); ++id) {
    Shard& shard = shards_[id];
    // Health publishes on the shard's bus; selection reads shard state.
    util::SerialLane in_lane(shard.lane);
    if (config_.health_tracking) update_health(id);
    // Degraded-mode fleet: a stalled or quarantined shard is neither swept
    // nor dispatched this round — its cached verdicts are held, not acted
    // on, until the control loop (or the monitoring substrate) returns.
    if (shard.stalled_until > sim_.now()) {
      ++shard.stats.sweeps_stalled;
      continue;
    }
    if (config_.health_tracking &&
        shard.health == ShardHealth::Quarantined) {
      ++shard.stats.sweeps_quarantined;
      continue;
    }
    const bool clean = config_.skip_clean_shards && shard.swept_once &&
                       !shard.dirty && !structure_moved &&
                       !shard.manager->repair_active();
    if (clean) {
      ++shard.stats.sweeps_skipped;
      ++stats_.shard_skips;
    } else {
      selected[id] = 1;
      sweep.push_back(id);
    }
  }

  // Parallel detection: read-only per shard, disjoint models, results into
  // disjoint slots. Dispatch below stays strictly on this thread.
  std::vector<std::vector<repair::Violation>> found(shards_.size());
  auto detect_one = [&](std::size_t k) {
    const ShardId id = sweep[k];
    found[id] = shards_[id].manager->detect();
  };
  if (pool_ && sweep.size() > 1) {
    ++stats_.parallel_rounds;
    pool_->parallel_for(sweep.size(), detect_one);
  } else {
    for (std::size_t k = 0; k < sweep.size(); ++k) detect_one(k);
  }

  // Deterministic dispatch, shard order. A skipped shard re-dispatches its
  // cached verdicts — exactly what its incremental checker would have
  // returned verbatim had we swept it.
  for (ShardId id = 0; id < shards_.size(); ++id) {
    Shard& shard = shards_[id];
    // Dispatch mutates the shard's model and schedules tenant events.
    util::SerialLane in_lane(shard.lane);
    if (shard.stalled_until > sim_.now()) continue;
    if (config_.health_tracking &&
        shard.health == ShardHealth::Quarantined) {
      continue;
    }
    if (selected[id]) {
      shard.last_violations = std::move(found[id]);
      shard.swept_once = true;
      shard.dirty = false;
      ++shard.stats.sweeps;
      ++stats_.shard_sweeps;
    }
    if (shard.last_violations.empty()) continue;
    shard.stats.violations += shard.last_violations.size();
    if (shard.manager->dispatch(shard.last_violations)) {
      ++shard.stats.repairs_triggered;
      // The repair just mutated this shard's model; whatever it changed must
      // be re-examined next round even if no report arrives meanwhile.
      shard.dirty = true;
    }
  }
  structure_seen_ = structure_now;
  stats_.sweep_wall_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
}

}  // namespace arcadia::core
