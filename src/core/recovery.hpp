// Crash recovery over the durability plane (DESIGN.md §8).
//
// Arcadia's runs are pure functions of (scenario config, framework config,
// seeds): the simulator, workload, fault plane, and repair engine draw all
// randomness from seeded streams. Recovery exploits that instead of trying
// to serialize live state (pending events, closures, in-flight plans — none
// of which can be written to disk faithfully): a restore re-executes the
// run from t=0 and *byte-verifies* every frame it re-journals against the
// crashed journal's valid prefix (catchup verification). Any divergence —
// a changed binary, a different config, nondeterminism — throws
// RecoveryError at the exact LSN instead of silently forking history. Once
// the reference is exhausted the run simply continues live past the crash
// point, writing fresh journal. Snapshots are what arcreplay and the
// divergence diagnostics anchor to; the re-execution itself only needs the
// manifest.
//
//   core::RecoveryOptions opts;
//   opts.dir = "run.durable";
//   opts.scenario = "lossy-grid";
//   opts.crashes = fault::CrashPlan::seeded(7, 3, t0, t1);
//   core::RecoveryResult r = core::run_with_recovery(opts);
//   // r.crashes_survived == 3, model digest == uncrashed run's digest
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "fault/crash_plan.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace arcadia::core {

/// What a durable run was built from — enough to re-execute it from t=0.
/// Written once when the run is first created; read by Framework::restore.
/// Sub-configs with no codec (env_costs, conventions, remos_config, the
/// pluggable FrameworkParts) stay at their defaults: a restore of a run
/// that customized them diverges in catchup verification (a loud
/// RecoveryError), never silently.
struct Manifest {
  std::string scenario;  ///< ScenarioRegistry name
  sim::ScenarioConfig config;
  FrameworkConfig framework;
};

inline constexpr const char* kManifestFile = "manifest.arcm";

/// Atomic write of dir/manifest.arcm ("ARCM" magic, versioned, CRC-tailed).
void write_manifest(const std::string& dir, const Manifest& manifest);
Manifest read_manifest(const std::string& dir);

/// A rebuilt run: the whole stack, self-owned, already start()ed. The
/// simulator sits at t=0 with catchup verification armed; run the clock
/// (run_to_reference() or sim.run_until) to re-reach the crash point.
struct RestoredRun {
  sim::Simulator sim;
  Manifest manifest;
  sim::Testbed testbed;
  std::unique_ptr<Framework> framework;

  /// Newest LSN / sim-time the crashed journal vouches for. Zero/zero on a
  /// fresh directory (nothing journaled yet).
  std::uint64_t reference_lsn = 0;
  SimTime reference_horizon;
  /// True when a prior journal existed (this is a recovery, not a first
  /// build); `warning` carries the torn-tail note when its end was ragged.
  bool recovered = false;
  std::string warning;

  /// Re-execute up to the journaled horizon. On return the run has
  /// byte-reproduced every reference frame and is live again.
  void run_to_reference() { sim.run_until(reference_horizon); }
};

/// Build (first call) or rebuild (after a crash) the run described by
/// dir/manifest.arcm. Equivalent to Framework::restore(dir).
std::unique_ptr<RestoredRun> restore_run(const std::string& dir);

/// Segmented crash-restart driver: run the manifested scenario to its
/// horizon while killing the process-equivalent (the whole stack is
/// destroyed without flushing) at every CrashPlan point and restoring from
/// the durable directory. The loop a crash-matrix cell executes.
struct RecoveryOptions {
  std::string dir;
  std::string scenario = "lossy-grid";
  sim::ScenarioConfig config;
  FrameworkConfig framework;
  fault::CrashPlan crashes;
  /// Run end; zero uses config.horizon.
  SimTime horizon;
};

struct RecoveryResult {
  int crashes_survived = 0;
  int segments = 0;  ///< total builds/restores, including the first
  std::uint64_t final_lsn = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t repairs_committed = 0;
  /// Digest of the final model encoding — compare against an uncrashed
  /// run's digest for the recovery oracle.
  std::uint64_t model_digest = 0;
  std::vector<std::string> warnings;  ///< torn-tail notes per restart
};

RecoveryResult run_with_recovery(const RecoveryOptions& options);

}  // namespace arcadia::core
