#include "core/suite.hpp"

#include <chrono>

#include "util/thread_pool.hpp"

namespace arcadia::core {

ExperimentSuite& ExperimentSuite::add(std::string label,
                                      ExperimentOptions options) {
  cases_.push_back(SuiteCase{std::move(label), std::move(options)});
  return *this;
}

ExperimentSuite& ExperimentSuite::add_grid(
    const std::vector<std::string>& scenarios,
    const std::vector<SuiteVariant>& variants) {
  for (const std::string& scenario : scenarios) {
    for (const SuiteVariant& variant : variants) {
      ExperimentOptions options = options_for(scenario);
      options.framework = variant.framework;
      options.adaptation = variant.adaptation;
      add(scenario + "/" + variant.label, std::move(options));
    }
  }
  return *this;
}

std::vector<SuiteOutcome> ExperimentSuite::run(std::size_t threads) const {
  std::vector<SuiteOutcome> outcomes(cases_.size());
  if (cases_.empty()) return outcomes;
  ThreadPool pool(threads);
  pool.parallel_for(cases_.size(), [&](std::size_t i) {
    const SuiteCase& c = cases_[i];
    outcomes[i].label = c.label;
    outcomes[i].scenario = c.options.scenario_name;
    outcomes[i].fault_seed = c.options.scenario.fault.seed;
    // Any escape — including non-std exceptions — fails this experiment,
    // never the suite: the other grid cells still run and report. The wall
    // clock is stopped on both paths so failed cells keep their duration.
    const auto t0 = std::chrono::steady_clock::now();
    try {
      outcomes[i].result = run_experiment(c.options);
      outcomes[i].sim_seconds = c.options.scenario.horizon.as_seconds();
    } catch (const std::exception& e) {
      outcomes[i].error = e.what();
    } catch (...) {
      outcomes[i].error = "non-standard exception (fault seed " +
                          std::to_string(outcomes[i].fault_seed) + ")";
    }
    outcomes[i].wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  });
  return outcomes;
}

}  // namespace arcadia::core
