#include "core/recovery.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "durability/codec.hpp"
#include "durability/io.hpp"
#include "durability/model_codec.hpp"
#include "sim/scenario_registry.hpp"
#include "util/log.hpp"

namespace arcadia::core {

namespace {

constexpr char kManifestMagic[4] = {'A', 'R', 'C', 'M'};
constexpr std::uint32_t kManifestVersion = 1;

using durability::Decoder;
using durability::DurabilityError;
using durability::Encoder;

void encode_fault(Encoder& enc, const fault::FaultProfile& f) {
  enc.boolean(f.enabled);
  enc.u64(f.seed);
  enc.f64(f.monitoring.report_loss);
  enc.f64(f.monitoring.report_dup);
  enc.f64(f.monitoring.report_delay);
  enc.sim_time(f.monitoring.delay_min);
  enc.sim_time(f.monitoring.delay_max);
  enc.f64(f.monitoring.channel_disconnect);
  enc.sim_time(f.monitoring.disconnect_min);
  enc.sim_time(f.monitoring.disconnect_max);
  enc.f64(f.repair.op_transient);
  enc.f64(f.repair.op_permanent);
  enc.sim_time(f.repair.permanent_from);
  enc.sim_time(f.repair.permanent_until);
  enc.f64(f.repair.op_stall);
  enc.sim_time(f.repair.stall_min);
  enc.sim_time(f.repair.stall_max);
  enc.f64(f.fleet.tenant_crash);
  enc.sim_time(f.fleet.crash_min);
  enc.sim_time(f.fleet.crash_max);
  enc.sim_time(f.fleet.crash_duration);
}

fault::FaultProfile decode_fault(Decoder& dec) {
  fault::FaultProfile f;
  f.enabled = dec.boolean();
  f.seed = dec.u64();
  f.monitoring.report_loss = dec.f64();
  f.monitoring.report_dup = dec.f64();
  f.monitoring.report_delay = dec.f64();
  f.monitoring.delay_min = dec.sim_time();
  f.monitoring.delay_max = dec.sim_time();
  f.monitoring.channel_disconnect = dec.f64();
  f.monitoring.disconnect_min = dec.sim_time();
  f.monitoring.disconnect_max = dec.sim_time();
  f.repair.op_transient = dec.f64();
  f.repair.op_permanent = dec.f64();
  f.repair.permanent_from = dec.sim_time();
  f.repair.permanent_until = dec.sim_time();
  f.repair.op_stall = dec.f64();
  f.repair.stall_min = dec.sim_time();
  f.repair.stall_max = dec.sim_time();
  f.fleet.tenant_crash = dec.f64();
  f.fleet.crash_min = dec.sim_time();
  f.fleet.crash_max = dec.sim_time();
  f.fleet.crash_duration = dec.sim_time();
  return f;
}

void encode_scenario(Encoder& enc, const sim::ScenarioConfig& c) {
  enc.u64(c.seed);
  enc.sim_time(c.horizon);
  enc.sim_time(c.quiescent_end);
  enc.sim_time(c.stress_start);
  enc.sim_time(c.stress_end);
  enc.f64(c.normal_rate_hz);
  enc.f64(c.stress_rate_hz);
  enc.f64(c.request_size.as_bytes());
  enc.f64(c.normal_response_mean.as_bytes());
  enc.f64(c.stress_response_size.as_bytes());
  enc.f64(c.normal_response_sigma);
  enc.sim_time(c.service_base);
  enc.sim_time(c.service_per_kb);
  enc.f64(c.service_sigma);
  enc.f64(c.link_capacity.as_bps());
  enc.f64(c.comp_sg1_phase1_mbps);
  enc.f64(c.comp_sg1_stress_mbps);
  enc.f64(c.comp_sg1_final_mbps);
  enc.f64(c.comp_sg2_phase1_mbps);
  enc.f64(c.comp_sg2_stress_mbps);
  enc.f64(c.comp_sg2_final_mbps);
  enc.boolean(c.comp_bidirectional);
  enc.sim_time(c.thresholds.max_latency);
  enc.f64(c.thresholds.max_server_load);
  enc.f64(c.thresholds.min_bandwidth.as_bps());
  enc.f64(c.thresholds.min_utilization);
  encode_fault(enc, c.fault);
  enc.i64(c.grid.groups);
  enc.i64(c.grid.servers_per_group);
  enc.i64(c.grid.clients);
  enc.i64(c.grid.clients_per_pod);
  enc.i64(c.grid.spares);
  enc.sim_time(c.flash.start);
  enc.sim_time(c.flash.end);
  enc.f64(c.flash.rate_multiplier);
  enc.sim_time(c.churn.first_outage);
  enc.sim_time(c.churn.period);
  enc.sim_time(c.churn.outage);
  enc.i64(c.churn.outages);
  enc.i64(c.fleet.tenants);
  enc.i64(c.fleet.tenant_index);
  enc.sim_time(c.fleet.phase_shift);
  enc.sim_time(c.fleet.active_duration);
}

sim::ScenarioConfig decode_scenario(Decoder& dec) {
  sim::ScenarioConfig c;
  c.seed = dec.u64();
  c.horizon = dec.sim_time();
  c.quiescent_end = dec.sim_time();
  c.stress_start = dec.sim_time();
  c.stress_end = dec.sim_time();
  c.normal_rate_hz = dec.f64();
  c.stress_rate_hz = dec.f64();
  c.request_size = DataSize::bytes(dec.f64());
  c.normal_response_mean = DataSize::bytes(dec.f64());
  c.stress_response_size = DataSize::bytes(dec.f64());
  c.normal_response_sigma = dec.f64();
  c.service_base = dec.sim_time();
  c.service_per_kb = dec.sim_time();
  c.service_sigma = dec.f64();
  c.link_capacity = Bandwidth::bps(dec.f64());
  c.comp_sg1_phase1_mbps = dec.f64();
  c.comp_sg1_stress_mbps = dec.f64();
  c.comp_sg1_final_mbps = dec.f64();
  c.comp_sg2_phase1_mbps = dec.f64();
  c.comp_sg2_stress_mbps = dec.f64();
  c.comp_sg2_final_mbps = dec.f64();
  c.comp_bidirectional = dec.boolean();
  c.thresholds.max_latency = dec.sim_time();
  c.thresholds.max_server_load = dec.f64();
  c.thresholds.min_bandwidth = Bandwidth::bps(dec.f64());
  c.thresholds.min_utilization = dec.f64();
  c.fault = decode_fault(dec);
  c.grid.groups = static_cast<int>(dec.i64());
  c.grid.servers_per_group = static_cast<int>(dec.i64());
  c.grid.clients = static_cast<int>(dec.i64());
  c.grid.clients_per_pod = static_cast<int>(dec.i64());
  c.grid.spares = static_cast<int>(dec.i64());
  c.flash.start = dec.sim_time();
  c.flash.end = dec.sim_time();
  c.flash.rate_multiplier = dec.f64();
  c.churn.first_outage = dec.sim_time();
  c.churn.period = dec.sim_time();
  c.churn.outage = dec.sim_time();
  c.churn.outages = static_cast<int>(dec.i64());
  c.fleet.tenants = static_cast<int>(dec.i64());
  c.fleet.tenant_index = static_cast<int>(dec.i64());
  c.fleet.phase_shift = dec.sim_time();
  c.fleet.active_duration = dec.sim_time();
  return c;
}

void encode_framework(Encoder& enc, const FrameworkConfig& f) {
  enc.sim_time(f.profile.max_latency);
  enc.f64(f.profile.max_server_load);
  enc.f64(f.profile.min_bandwidth.as_bps());
  enc.f64(f.profile.min_utilization);
  enc.i64(f.profile.min_replicas);
  enc.boolean(f.use_script);
  enc.str(f.script_source);
  enc.u8(static_cast<std::uint8_t>(f.policy));
  enc.str(f.policy_name);
  enc.boolean(f.damping);
  enc.sim_time(f.settle_time);
  enc.sim_time(f.abort_cooldown);
  enc.f64(f.load_improvement);
  enc.boolean(f.plan_pipeline);
  enc.boolean(f.plan_preemption);
  enc.f64(f.plan_preempt_factor);
  enc.boolean(f.gauge_caching);
  enc.sim_time(f.gauge_costs.report_period);
  enc.sim_time(f.gauge_costs.create_cost);
  enc.sim_time(f.gauge_costs.destroy_cost);
  enc.sim_time(f.gauge_costs.relocate_cost);
  enc.sim_time(f.gauge_costs.watchdog_period);
  enc.sim_time(f.gauge_costs.stale_after);
  enc.boolean(f.remos_prequery);
  enc.boolean(f.monitoring_qos);
  enc.sim_time(f.bus_base_delay);
  enc.sim_time(f.probe_period);
  enc.sim_time(f.gauge_window);
  enc.sim_time(f.check_period);
  enc.sim_time(f.first_check);
  enc.boolean(f.fleet_managed);
  encode_fault(enc, f.fault);
  enc.i64(f.retry.max_attempts);
  enc.sim_time(f.retry.backoff_base);
  enc.f64(f.retry.backoff_multiplier);
  enc.sim_time(f.retry.backoff_max);
  enc.f64(f.retry.jitter);
  enc.u64(f.retry.jitter_seed);
  enc.sim_time(f.retry.op_timeout);
  enc.u8(static_cast<std::uint8_t>(f.verify));
  enc.str(f.durability.dir);
  enc.sim_time(f.durability.snapshot_period);
  enc.u32(static_cast<std::uint32_t>(f.durability.retention));
  enc.u32(static_cast<std::uint32_t>(f.durability.gauge_batch_cap));
  enc.sim_time(f.durability.sync_interval);
}

FrameworkConfig decode_framework(Decoder& dec) {
  FrameworkConfig f;
  f.profile.max_latency = dec.sim_time();
  f.profile.max_server_load = dec.f64();
  f.profile.min_bandwidth = Bandwidth::bps(dec.f64());
  f.profile.min_utilization = dec.f64();
  f.profile.min_replicas = dec.i64();
  f.use_script = dec.boolean();
  f.script_source = dec.str();
  f.policy = static_cast<repair::ViolationPolicy>(dec.u8());
  f.policy_name = dec.str();
  f.damping = dec.boolean();
  f.settle_time = dec.sim_time();
  f.abort_cooldown = dec.sim_time();
  f.load_improvement = dec.f64();
  f.plan_pipeline = dec.boolean();
  f.plan_preemption = dec.boolean();
  f.plan_preempt_factor = dec.f64();
  f.gauge_caching = dec.boolean();
  f.gauge_costs.report_period = dec.sim_time();
  f.gauge_costs.create_cost = dec.sim_time();
  f.gauge_costs.destroy_cost = dec.sim_time();
  f.gauge_costs.relocate_cost = dec.sim_time();
  f.gauge_costs.watchdog_period = dec.sim_time();
  f.gauge_costs.stale_after = dec.sim_time();
  f.remos_prequery = dec.boolean();
  f.monitoring_qos = dec.boolean();
  f.bus_base_delay = dec.sim_time();
  f.probe_period = dec.sim_time();
  f.gauge_window = dec.sim_time();
  f.check_period = dec.sim_time();
  f.first_check = dec.sim_time();
  f.fleet_managed = dec.boolean();
  f.fault = decode_fault(dec);
  f.retry.max_attempts = static_cast<int>(dec.i64());
  f.retry.backoff_base = dec.sim_time();
  f.retry.backoff_multiplier = dec.f64();
  f.retry.backoff_max = dec.sim_time();
  f.retry.jitter = dec.f64();
  f.retry.jitter_seed = dec.u64();
  f.retry.op_timeout = dec.sim_time();
  f.verify = static_cast<VerifyMode>(dec.u8());
  f.durability.dir = dec.str();
  f.durability.snapshot_period = dec.sim_time();
  f.durability.retention = dec.u32();
  f.durability.gauge_batch_cap = dec.u32();
  f.durability.sync_interval = dec.sim_time();
  return f;
}

}  // namespace

void write_manifest(const std::string& dir, const Manifest& manifest) {
  Encoder enc;
  for (char ch : kManifestMagic) enc.u8(static_cast<std::uint8_t>(ch));
  enc.u32(kManifestVersion);
  enc.str(manifest.scenario);
  encode_scenario(enc, manifest.config);
  encode_framework(enc, manifest.framework);
  std::vector<std::uint8_t> bytes = enc.take();
  const std::uint32_t crc = durability::crc32(bytes.data(), bytes.size());
  Encoder tail;
  tail.u32(crc);
  const std::vector<std::uint8_t>& tail_bytes = tail.bytes();
  bytes.insert(bytes.end(), tail_bytes.begin(), tail_bytes.end());
  durability::write_file_atomic(dir + "/" + kManifestFile, bytes);
}

Manifest read_manifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFile;
  if (!durability::file_exists(path)) {
    throw DurabilityError("no manifest at " + path +
                          " — not a durable run directory");
  }
  const std::vector<std::uint8_t> bytes = durability::read_file(path);
  if (bytes.size() < sizeof(kManifestMagic) + 8) {
    throw DurabilityError("manifest too short: " + path);
  }
  Decoder crc_dec(bytes.data() + bytes.size() - 4, 4);
  const std::uint32_t want = crc_dec.u32();
  const std::uint32_t got = durability::crc32(bytes.data(), bytes.size() - 4);
  if (want != got) {
    throw DurabilityError("manifest CRC mismatch: " + path);
  }
  Decoder dec(bytes.data(), bytes.size() - 4);
  char magic[4];
  for (char& ch : magic) ch = static_cast<char>(dec.u8());
  if (std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
    throw DurabilityError("bad manifest magic: " + path);
  }
  const std::uint32_t version = dec.u32();
  if (version != kManifestVersion) {
    throw DurabilityError("unsupported manifest version " +
                          std::to_string(version) + ": " + path);
  }
  Manifest manifest;
  manifest.scenario = dec.str();
  manifest.config = decode_scenario(dec);
  manifest.framework = decode_framework(dec);
  if (!dec.done()) {
    throw DurabilityError("trailing bytes after manifest: " + path);
  }
  return manifest;
}

std::unique_ptr<RestoredRun> restore_run(const std::string& dir) {
  auto run = std::make_unique<RestoredRun>();
  run->manifest = read_manifest(dir);
  run->manifest.framework.durability.dir = dir;  // the manifest moved with it
  run->testbed =
      sim::build_scenario(run->sim, run->manifest.scenario,
                          run->manifest.config);
  run->framework = std::make_unique<Framework>(run->sim, run->testbed,
                                               run->manifest.framework);
  durability::DurabilityPlane* plane = run->framework->durability_plane();
  if (plane == nullptr) {
    throw DurabilityError(
        "restore: manifest has durability disabled — nothing to recover");
  }
  run->reference_lsn = plane->reference_last_lsn();
  run->reference_horizon = plane->reference_horizon();
  run->recovered = run->reference_lsn > 0;
  run->warning = plane->reference_warning();
  if (run->recovered) {
    ARC_INFO << "recovery: re-executing " << run->manifest.scenario
             << " to LSN " << run->reference_lsn << " (t="
             << run->reference_horizon.as_seconds()
             << "s) with catchup verification";
  }
  // start() journals snapshot-0 — already under catchup verification, so a
  // config/code change that altered even the initial model fails loudly
  // here, not minutes into the replay.
  run->framework->start();
  run->testbed.start();
  return run;
}

std::unique_ptr<RestoredRun> Framework::restore(const std::string& dir) {
  return restore_run(dir);
}

RecoveryResult run_with_recovery(const RecoveryOptions& options) {
  if (options.dir.empty()) {
    throw DurabilityError("run_with_recovery: durable dir required");
  }
  durability::ensure_dir(options.dir);

  Manifest manifest;
  manifest.scenario = options.scenario;
  manifest.config = options.config;
  manifest.framework = options.framework;
  // Mirror the experiment runner: the scenario's fault profile rides into
  // the framework unless the caller set one explicitly.
  if (!manifest.framework.fault.enabled && manifest.config.fault.enabled) {
    manifest.framework.fault = manifest.config.fault;
  }
  manifest.framework.durability.dir = options.dir;
  write_manifest(options.dir, manifest);

  const SimTime horizon = options.horizon > SimTime::zero()
                              ? options.horizon
                              : manifest.config.horizon;

  std::vector<fault::CrashPoint> points = options.crashes.points;
  std::sort(points.begin(), points.end(),
            [](const fault::CrashPoint& a, const fault::CrashPoint& b) {
              return a.at < b.at;
            });

  RecoveryResult result;
  std::size_t next = 0;
  for (;;) {
    std::unique_ptr<RestoredRun> run = restore_run(options.dir);
    ++result.segments;
    if (run->recovered && !run->warning.empty()) {
      result.warnings.push_back(run->warning);
    }
    durability::DurabilityPlane* plane = run->framework->durability_plane();

    bool crashed = false;
    if (next < points.size() && points[next].at < horizon) {
      const fault::CrashPoint point = points[next];
      ++next;
      if (point.mid_snapshot) {
        // Arm at the crash time; the *next* periodic snapshot dies between
        // its tmp-file write and the rename — the torn-snapshot seam.
        RestoredRun* raw = run.get();
        plane->set_snapshot_crash_hook([raw] {
          throw fault::CrashSignal{raw->sim.now(), "mid-snapshot crash"};
        });
        run->sim.schedule_in(point.at, [plane] {
          plane->crash_next_snapshot();
        });
        try {
          run->sim.run_until(horizon);
        } catch (const fault::CrashSignal& signal) {
          ARC_WARN << "crash injected mid-snapshot at t="
                   << signal.at.as_seconds() << "s";
          crashed = true;
        }
      } else {
        run->sim.run_until(point.at);
        ARC_WARN << "crash injected at t=" << point.at.as_seconds() << "s";
        crashed = true;
      }
    } else {
      run->sim.run_until(horizon);
    }

    if (crashed) {
      ++result.crashes_survived;
      // kill -9 semantics: no gauge flush, no final sync, no close — the
      // journal ends wherever the last synced frame left it.
      plane->abandon();
      continue;  // run destroyed; next iteration restores from disk
    }

    result.final_lsn = plane->last_lsn();
    result.journal_bytes = plane->journal_bytes();
    result.repairs_committed = run->framework->engine().stats().committed;
    const std::vector<std::uint8_t> model =
        durability::encode_system(run->framework->system());
    result.model_digest = durability::fnv1a(model.data(), model.size());
    return result;  // clean destruction closes the journal
  }
}

}  // namespace arcadia::core
