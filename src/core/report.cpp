#include "core/report.hpp"

#include <iomanip>

namespace arcadia::core {

void print_series(std::ostream& out, const TimeSeries& series, SimTime bucket,
                  const std::string& unit) {
  TimeSeries rs = series.resample(bucket);
  out << "# " << series.name() << " (" << unit << ")\n";
  for (const auto& [t, v] : rs.points()) {
    out << std::setw(7) << t.as_seconds() << "  " << v << "\n";
  }
}

void print_series_table(std::ostream& out,
                        const std::vector<const TimeSeries*>& series,
                        SimTime bucket) {
  std::vector<TimeSeries> resampled;
  resampled.reserve(series.size());
  for (const TimeSeries* s : series) resampled.push_back(s->resample(bucket));

  out << std::setw(8) << "time_s";
  for (const TimeSeries& s : resampled) out << std::setw(18) << s.name();
  out << "\n";
  for (SimTime t = SimTime::zero();; t += bucket) {
    bool any = false;
    for (const TimeSeries& s : resampled) {
      if (!s.empty() && t <= *s.last_time()) {
        any = true;
        break;
      }
    }
    if (!any) break;
    out << std::setw(8) << t.as_seconds();
    for (const TimeSeries& s : resampled) {
      out << std::setw(18) << std::setprecision(5) << s.value_at(t, 0.0);
    }
    out << "\n";
  }
}

void print_latency_figure(std::ostream& out, const ExperimentResult& result,
                          SimTime bucket) {
  std::vector<const TimeSeries*> series;
  for (const ClientSeries& c : result.clients) series.push_back(&c.window_latency);
  out << "# windowed average latency per client (s); threshold "
      << result.threshold_s << " s\n";
  print_series_table(out, series, bucket);
}

void print_load_figure(std::ostream& out, const ExperimentResult& result,
                       SimTime bucket) {
  std::vector<const TimeSeries*> series;
  for (const GroupSeries& g : result.groups) series.push_back(&g.queue_length);
  out << "# queue length per server group (requests); overload limit 6\n";
  print_series_table(out, series, bucket);
}

void print_bandwidth_figure(std::ostream& out, const ExperimentResult& result,
                            SimTime bucket) {
  std::vector<const TimeSeries*> series;
  for (const ClientSeries& c : result.clients) series.push_back(&c.bandwidth_mbps);
  out << "# available bandwidth group->client (Mbps); floor 0.0001, limit "
         "0.01 (10 Kbps)\n";
  print_series_table(out, series, bucket);
}

void print_repairs(std::ostream& out, const ExperimentResult& result) {
  out << "# repairs: " << result.repairs.size() << " triggered, "
      << result.repair_stats.committed << " committed, "
      << result.repair_stats.aborted << " aborted; moves="
      << result.repair_stats.moves
      << " +servers=" << result.repair_stats.servers_added
      << " -servers=" << result.repair_stats.servers_removed << "\n";
  for (const repair::RepairRecord& r : result.repairs) {
    out << "  [" << std::setw(7) << r.started.as_seconds() << "s] "
        << r.strategy << "(" << r.element << ") ";
    if (r.committed && !r.finished) {
      out << "committed, still completing at horizon";
    } else if (r.committed) {
      out << "committed, " << r.duration().as_seconds() << "s"
          << " (decision " << r.decision_cost.as_seconds() << "s, queries "
          << r.query_cost.as_seconds() << "s, ops " << r.op_cost.as_seconds()
          << "s, gauges " << r.gauge_cost.as_seconds() << "s)";
    } else {
      out << "aborted: " << r.abort_reason;
    }
    out << "; tactics:";
    for (const auto& [name, ok] : r.tactics) {
      out << " " << name << (ok ? "+" : "-");
    }
    out << "\n";
  }
  for (const ServerEvent& e : result.server_events) {
    out << "  [" << std::setw(7) << e.time.as_seconds() << "s] server "
        << e.server << (e.active ? " activated" : " deactivated") << "\n";
  }
}

void print_comparison(std::ostream& out, const ExperimentResult& control,
                      const ExperimentResult& repair) {
  out << "\n# control vs repair (fraction of time above " << control.threshold_s
      << " s)\n";
  out << std::setw(10) << "client" << std::setw(12) << "control"
      << std::setw(12) << "repair" << std::setw(16) << "first>2s ctl"
      << std::setw(16) << "first>2s rep\n";
  for (std::size_t i = 0; i < control.clients.size(); ++i) {
    auto fmt_cross = [](SimTime t) {
      return t.is_infinite() ? std::string("never")
                             : std::to_string(t.as_seconds());
    };
    out << std::setw(10) << control.clients[i].name << std::setw(12)
        << control.client_fraction_above(i) << std::setw(12)
        << repair.client_fraction_above(i) << std::setw(16)
        << fmt_cross(control.client_first_crossing(i)) << std::setw(16)
        << fmt_cross(repair.client_first_crossing(i)) << "\n";
  }
  out << "mean fraction above threshold: control="
      << control.mean_fraction_above()
      << " repair=" << repair.mean_fraction_above() << "\n";
  out << "max queue length: control=" << control.max_queue_length()
      << " repair=" << repair.max_queue_length() << "\n";
}

}  // namespace arcadia::core
