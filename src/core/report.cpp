#include "core/report.hpp"

#include <iomanip>
#include <optional>

namespace arcadia::core {

void print_series(std::ostream& out, const TimeSeries& series, SimTime bucket,
                  const std::string& unit) {
  TimeSeries rs = series.resample(bucket);
  out << "# " << series.name() << " (" << unit << ")\n";
  for (const auto& [t, v] : rs.points()) {
    out << std::setw(7) << t.as_seconds() << "  " << v << "\n";
  }
}

void print_series_table(std::ostream& out,
                        const std::vector<const TimeSeries*>& series,
                        SimTime bucket) {
  std::vector<TimeSeries> resampled;
  resampled.reserve(series.size());
  for (const TimeSeries* s : series) resampled.push_back(s->resample(bucket));

  out << std::setw(8) << "time_s";
  for (const TimeSeries& s : resampled) out << std::setw(18) << s.name();
  out << "\n";
  for (SimTime t = SimTime::zero();; t += bucket) {
    bool any = false;
    for (const TimeSeries& s : resampled) {
      const std::optional<SimTime> last = s.last_time();
      if (last && t <= *last) {
        any = true;
        break;
      }
    }
    if (!any) break;
    out << std::setw(8) << t.as_seconds();
    for (const TimeSeries& s : resampled) {
      out << std::setw(18) << std::setprecision(5) << s.value_at(t, 0.0);
    }
    out << "\n";
  }
}

void print_latency_figure(std::ostream& out, const ExperimentResult& result,
                          SimTime bucket) {
  std::vector<const TimeSeries*> series;
  for (const ClientSeries& c : result.clients) series.push_back(&c.window_latency);
  out << "# windowed average latency per client (s); threshold "
      << result.threshold_s << " s\n";
  print_series_table(out, series, bucket);
}

void print_load_figure(std::ostream& out, const ExperimentResult& result,
                       SimTime bucket) {
  std::vector<const TimeSeries*> series;
  for (const GroupSeries& g : result.groups) series.push_back(&g.queue_length);
  out << "# queue length per server group (requests); overload limit 6\n";
  print_series_table(out, series, bucket);
}

void print_bandwidth_figure(std::ostream& out, const ExperimentResult& result,
                            SimTime bucket) {
  std::vector<const TimeSeries*> series;
  for (const ClientSeries& c : result.clients) series.push_back(&c.bandwidth_mbps);
  out << "# available bandwidth group->client (Mbps); floor 0.0001, limit "
         "0.01 (10 Kbps)\n";
  print_series_table(out, series, bucket);
}

void print_repairs(std::ostream& out, const ExperimentResult& result) {
  out << "# repairs: " << result.repairs.size() << " triggered, "
      << result.repair_stats.committed << " committed, "
      << result.repair_stats.aborted << " aborted; moves="
      << result.repair_stats.moves
      << " +servers=" << result.repair_stats.servers_added
      << " -servers=" << result.repair_stats.servers_removed << "\n";
  if (result.repair_stats.ops_retried > 0 ||
      result.repair_stats.ops_timed_out > 0) {
    out << "# fault absorption: " << result.repair_stats.repairs_retried
        << " repairs retried (" << result.repair_stats.ops_retried
        << " op retries, " << result.repair_stats.ops_timed_out
        << " op timeouts)\n";
  }
  for (const repair::RepairRecord& r : result.repairs) {
    out << "  [" << std::setw(7) << r.started.as_seconds() << "s] "
        << r.strategy << "(" << r.element << ") ";
    if (r.committed && !r.finished) {
      out << "committed, still completing at horizon";
    } else if (r.committed) {
      out << "committed, " << r.duration().as_seconds() << "s"
          << " (decision " << r.decision_cost.as_seconds() << "s, queries "
          << r.query_cost.as_seconds() << "s, ops " << r.op_cost.as_seconds()
          << "s, gauges " << r.gauge_cost.as_seconds() << "s)";
    } else {
      out << "aborted: " << r.abort_reason;
    }
    out << "; tactics:";
    for (const auto& [name, ok] : r.tactics) {
      out << " " << name << (ok ? "+" : "-");
    }
    out << "\n";
  }
  for (const ServerEvent& e : result.server_events) {
    out << "  [" << std::setw(7) << e.time.as_seconds() << "s] server "
        << e.server << (e.active ? " activated" : " deactivated") << "\n";
  }
}

void write_fault_stats_csv(
    std::ostream& out, const ExperimentResult& result,
    const std::vector<std::pair<std::string, std::uint64_t>>& extra) {
  out << "metric,value\n";
  auto row = [&out](const char* metric, std::uint64_t value) {
    out << metric << "," << value << "\n";
  };
  // Injected.
  row("reports_dropped", result.fault_stats.reports_dropped);
  row("reports_duplicated", result.fault_stats.reports_duplicated);
  row("reports_delayed", result.fault_stats.reports_delayed);
  row("reports_suppressed", result.fault_stats.reports_suppressed);
  row("channel_disconnects", result.fault_stats.channel_disconnects);
  row("ops_transient", result.fault_stats.ops_transient);
  row("ops_permanent", result.fault_stats.ops_permanent);
  row("ops_stalled", result.fault_stats.ops_stalled);
  row("tenant_crashes", result.fault_stats.tenant_crashes);
  // Absorbed.
  row("repairs_committed", result.repair_stats.committed);
  row("repairs_aborted", result.repair_stats.aborted);
  row("repairs_retried", result.repair_stats.repairs_retried);
  row("ops_retried", result.repair_stats.ops_retried);
  row("ops_timed_out", result.repair_stats.ops_timed_out);
  row("suspects_marked", result.gauge_stats.suspects_marked);
  row("suspects_cleared", result.gauge_stats.suspects_cleared);
  row("elements_suspected", result.manager_stats.elements_suspected);
  row("elements_cleared", result.manager_stats.elements_cleared);
  row("verdict_holds", result.verdict_holds);
  for (const auto& [metric, value] : extra) row(metric.c_str(), value);
}

void print_comparison(std::ostream& out, const ExperimentResult& control,
                      const ExperimentResult& repair) {
  out << "\n# control vs repair (fraction of time above " << control.threshold_s
      << " s)\n";
  out << std::setw(10) << "client" << std::setw(12) << "control"
      << std::setw(12) << "repair" << std::setw(16) << "first>2s ctl"
      << std::setw(16) << "first>2s rep\n";
  for (std::size_t i = 0; i < control.clients.size(); ++i) {
    auto fmt_cross = [](SimTime t) {
      return t.is_infinite() ? std::string("never")
                             : std::to_string(t.as_seconds());
    };
    out << std::setw(10) << control.clients[i].name << std::setw(12)
        << control.client_fraction_above(i) << std::setw(12)
        << repair.client_fraction_above(i) << std::setw(16)
        << fmt_cross(control.client_first_crossing(i)) << std::setw(16)
        << fmt_cross(repair.client_first_crossing(i)) << "\n";
  }
  out << "mean fraction above threshold: control="
      << control.mean_fraction_above()
      << " repair=" << repair.mean_fraction_above() << "\n";
  out << "max queue length: control=" << control.max_queue_length()
      << " repair=" << repair.max_queue_length() << "\n";
}

namespace {

/// RFC-4180 quoting for free-text fields (error messages carry commas).
std::string csv_quote(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (char ch : text) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void write_suite_csv(std::ostream& out,
                     const std::vector<SuiteOutcome>& outcomes) {
  out << "label,scenario,fault_seed,failed,wall_s,sim_s,requests,responses,"
         "repairs_committed,error\n";
  for (const SuiteOutcome& outcome : outcomes) {
    out << csv_quote(outcome.label) << "," << csv_quote(outcome.scenario)
        << "," << outcome.fault_seed << "," << (outcome.ok() ? 0 : 1) << ","
        << outcome.wall_seconds << "," << outcome.sim_seconds << ","
        << outcome.result.requests_issued << ","
        << outcome.result.responses_completed << ","
        << outcome.result.repair_stats.committed << ","
        << csv_quote(outcome.error) << "\n";
  }
}

}  // namespace arcadia::core
