#include "model/element.hpp"

#include "model/system.hpp"

namespace arcadia::model {

const char* to_string(ElementKind kind) {
  switch (kind) {
    case ElementKind::Component: return "component";
    case ElementKind::Connector: return "connector";
    case ElementKind::Port: return "port";
    case ElementKind::Role: return "role";
    case ElementKind::System: return "system";
  }
  return "?";
}

const PropertyValue& Element::property(util::Symbol prop) const {
  const PropertyValue* found = properties_.find(prop);
  if (!found) {
    throw ModelError("element '" + name_ + "' has no property '" + prop.str() +
                     "'");
  }
  return *found;
}

PropertyValue Element::property_or(util::Symbol prop,
                                   PropertyValue fallback) const {
  const PropertyValue* found = properties_.find(prop);
  return found ? *found : fallback;
}

std::unique_ptr<Port> Port::clone() const {
  auto copy = std::make_unique<Port>(name(), type_name());
  copy->copy_properties_from(*this);
  return copy;
}

std::unique_ptr<Role> Role::clone() const {
  auto copy = std::make_unique<Role>(name(), type_name());
  copy->copy_properties_from(*this);
  return copy;
}

Port& Component::add_port(const std::string& name,
                          const std::string& type_name) {
  const util::Symbol key = util::Symbol::intern(name);
  if (ports_.contains(key)) {
    throw ModelError("component '" + this->name() + "' already has port '" +
                     name + "'");
  }
  auto& stored =
      ports_.insert_or_assign(key, std::make_unique<Port>(name, type_name));
  bump_structure_clock();
  return *stored;
}

void Component::remove_port(const std::string& name) {
  if (!ports_.erase(util::Symbol::intern(name))) {
    throw ModelError("component '" + this->name() + "' has no port '" + name +
                     "'");
  }
  bump_structure_clock();
}

Port& Component::port(util::Symbol name) {
  std::unique_ptr<Port>* found = ports_.find(name);
  if (!found) {
    throw ModelError("component '" + this->name() + "' has no port '" +
                     name.str() + "'");
  }
  return **found;
}

const Port& Component::port(util::Symbol name) const {
  return const_cast<Component*>(this)->port(name);
}

std::vector<const Port*> Component::ports() const {
  std::vector<const Port*> out;
  out.reserve(ports_.size());
  for (const auto& e : ports_) out.push_back(e.value.get());
  return out;
}

std::vector<Port*> Component::ports() {
  std::vector<Port*> out;
  out.reserve(ports_.size());
  for (auto& e : ports_) out.push_back(e.value.get());
  return out;
}

System& Component::representation() {
  if (!representation_) {
    representation_ = std::make_unique<System>(name() + "_rep");
  }
  return *representation_;
}

const System& Component::representation_const() const {
  if (!representation_) {
    throw ModelError("component '" + name() + "' has no representation");
  }
  return *representation_;
}

std::unique_ptr<Component> Component::clone() const {
  auto copy = std::make_unique<Component>(name(), type_name());
  copy->copy_properties_from(*this);
  for (const auto& e : ports_) {
    copy->ports_.insert_or_assign(e.key, e.value->clone());
  }
  if (representation_) copy->representation_ = representation_->clone();
  return copy;
}

Role& Connector::add_role(const std::string& name,
                          const std::string& type_name) {
  const util::Symbol key = util::Symbol::intern(name);
  if (roles_.contains(key)) {
    throw ModelError("connector '" + this->name() + "' already has role '" +
                     name + "'");
  }
  auto& stored =
      roles_.insert_or_assign(key, std::make_unique<Role>(name, type_name));
  bump_structure_clock();
  return *stored;
}

void Connector::remove_role(const std::string& name) {
  if (!roles_.erase(util::Symbol::intern(name))) {
    throw ModelError("connector '" + this->name() + "' has no role '" + name +
                     "'");
  }
  bump_structure_clock();
}

Role& Connector::role(util::Symbol name) {
  std::unique_ptr<Role>* found = roles_.find(name);
  if (!found) {
    throw ModelError("connector '" + this->name() + "' has no role '" +
                     name.str() + "'");
  }
  return **found;
}

const Role& Connector::role(util::Symbol name) const {
  return const_cast<Connector*>(this)->role(name);
}

std::vector<const Role*> Connector::roles() const {
  std::vector<const Role*> out;
  out.reserve(roles_.size());
  for (const auto& e : roles_) out.push_back(e.value.get());
  return out;
}

std::vector<Role*> Connector::roles() {
  std::vector<Role*> out;
  out.reserve(roles_.size());
  for (auto& e : roles_) out.push_back(e.value.get());
  return out;
}

std::unique_ptr<Connector> Connector::clone() const {
  auto copy = std::make_unique<Connector>(name(), type_name());
  copy->copy_properties_from(*this);
  for (const auto& e : roles_) {
    copy->roles_.insert_or_assign(e.key, e.value->clone());
  }
  return copy;
}

}  // namespace arcadia::model
