#include "model/element.hpp"

#include "model/system.hpp"

namespace arcadia::model {

const char* to_string(ElementKind kind) {
  switch (kind) {
    case ElementKind::Component: return "component";
    case ElementKind::Connector: return "connector";
    case ElementKind::Port: return "port";
    case ElementKind::Role: return "role";
    case ElementKind::System: return "system";
  }
  return "?";
}

const PropertyValue& Element::property(const std::string& prop) const {
  auto it = properties_.find(prop);
  if (it == properties_.end()) {
    throw ModelError("element '" + name_ + "' has no property '" + prop + "'");
  }
  return it->second;
}

PropertyValue Element::property_or(const std::string& prop,
                                   PropertyValue fallback) const {
  auto it = properties_.find(prop);
  return it == properties_.end() ? fallback : it->second;
}

std::unique_ptr<Port> Port::clone() const {
  auto copy = std::make_unique<Port>(name(), type_name());
  copy->copy_properties_from(*this);
  return copy;
}

std::unique_ptr<Role> Role::clone() const {
  auto copy = std::make_unique<Role>(name(), type_name());
  copy->copy_properties_from(*this);
  return copy;
}

Port& Component::add_port(const std::string& name,
                          const std::string& type_name) {
  if (ports_.count(name)) {
    throw ModelError("component '" + this->name() + "' already has port '" +
                     name + "'");
  }
  auto [it, _] = ports_.emplace(name, std::make_unique<Port>(name, type_name));
  return *it->second;
}

void Component::remove_port(const std::string& name) {
  if (ports_.erase(name) == 0) {
    throw ModelError("component '" + this->name() + "' has no port '" + name +
                     "'");
  }
}

Port& Component::port(const std::string& name) {
  auto it = ports_.find(name);
  if (it == ports_.end()) {
    throw ModelError("component '" + this->name() + "' has no port '" + name +
                     "'");
  }
  return *it->second;
}

const Port& Component::port(const std::string& name) const {
  return const_cast<Component*>(this)->port(name);
}

std::vector<const Port*> Component::ports() const {
  std::vector<const Port*> out;
  out.reserve(ports_.size());
  for (const auto& [n, p] : ports_) out.push_back(p.get());
  return out;
}

std::vector<Port*> Component::ports() {
  std::vector<Port*> out;
  out.reserve(ports_.size());
  for (auto& [n, p] : ports_) out.push_back(p.get());
  return out;
}

System& Component::representation() {
  if (!representation_) {
    representation_ = std::make_unique<System>(name() + "_rep");
  }
  return *representation_;
}

const System& Component::representation_const() const {
  if (!representation_) {
    throw ModelError("component '" + name() + "' has no representation");
  }
  return *representation_;
}

std::unique_ptr<Component> Component::clone() const {
  auto copy = std::make_unique<Component>(name(), type_name());
  copy->copy_properties_from(*this);
  for (const auto& [n, p] : ports_) copy->ports_[n] = p->clone();
  if (representation_) copy->representation_ = representation_->clone();
  return copy;
}

Role& Connector::add_role(const std::string& name,
                          const std::string& type_name) {
  if (roles_.count(name)) {
    throw ModelError("connector '" + this->name() + "' already has role '" +
                     name + "'");
  }
  auto [it, _] = roles_.emplace(name, std::make_unique<Role>(name, type_name));
  return *it->second;
}

void Connector::remove_role(const std::string& name) {
  if (roles_.erase(name) == 0) {
    throw ModelError("connector '" + this->name() + "' has no role '" + name +
                     "'");
  }
}

Role& Connector::role(const std::string& name) {
  auto it = roles_.find(name);
  if (it == roles_.end()) {
    throw ModelError("connector '" + this->name() + "' has no role '" + name +
                     "'");
  }
  return *it->second;
}

const Role& Connector::role(const std::string& name) const {
  return const_cast<Connector*>(this)->role(name);
}

std::vector<const Role*> Connector::roles() const {
  std::vector<const Role*> out;
  out.reserve(roles_.size());
  for (const auto& [n, r] : roles_) out.push_back(r.get());
  return out;
}

std::vector<Role*> Connector::roles() {
  std::vector<Role*> out;
  out.reserve(roles_.size());
  for (auto& [n, r] : roles_) out.push_back(r.get());
  return out;
}

std::unique_ptr<Connector> Connector::clone() const {
  auto copy = std::make_unique<Connector>(name(), type_name());
  copy->copy_properties_from(*this);
  for (const auto& [n, r] : roles_) copy->roles_[n] = r->clone();
  return copy;
}

}  // namespace arcadia::model
