#include "model/transaction.hpp"

#include <memory>

namespace arcadia::model {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::AddComponent: return "add-component";
    case OpKind::RemoveComponent: return "remove-component";
    case OpKind::AddConnector: return "add-connector";
    case OpKind::RemoveConnector: return "remove-connector";
    case OpKind::AddPort: return "add-port";
    case OpKind::RemovePort: return "remove-port";
    case OpKind::AddRole: return "add-role";
    case OpKind::RemoveRole: return "remove-role";
    case OpKind::Attach: return "attach";
    case OpKind::Detach: return "detach";
    case OpKind::SetProperty: return "set-property";
  }
  return "?";
}

std::string OpRecord::describe() const {
  std::string s = to_string(kind);
  for (const auto& part : scope) s += " " + part + "/";
  switch (kind) {
    case OpKind::Attach:
    case OpKind::Detach:
      s += " " + attachment.component + "." + attachment.port + " <-> " +
           attachment.connector + "." + attachment.role;
      break;
    case OpKind::SetProperty:
      s += " " + element + (sub.empty() ? "" : "." + sub) + "." + property +
           " = " + value.to_string();
      break;
    default:
      s += " " + element + (sub.empty() ? "" : "." + sub);
      if (!type_name.empty()) s += " : " + type_name;
  }
  return s;
}

std::optional<OpRecord> OpRecord::inverse() const {
  OpRecord inv = *this;
  inv.prev_value = PropertyValue();
  inv.had_prev = false;
  switch (kind) {
    case OpKind::AddComponent:
      inv.kind = OpKind::RemoveComponent;
      return inv;
    case OpKind::RemoveComponent:
      inv.kind = OpKind::AddComponent;
      return inv;
    case OpKind::AddConnector:
      inv.kind = OpKind::RemoveConnector;
      return inv;
    case OpKind::RemoveConnector:
      inv.kind = OpKind::AddConnector;
      return inv;
    case OpKind::Attach:
      inv.kind = OpKind::Detach;
      return inv;
    case OpKind::Detach:
      inv.kind = OpKind::Attach;
      return inv;
    case OpKind::SetProperty:
      inv.value = had_prev ? prev_value : PropertyValue();
      inv.prev_value = value;
      inv.had_prev = true;
      return inv;
    default:
      return std::nullopt;  // port/role ops: not invertible from the record
  }
}

void apply_op(Transaction& txn, const OpRecord& op) {
  switch (op.kind) {
    case OpKind::AddComponent:
      txn.add_component(op.scope, op.element, op.type_name);
      return;
    case OpKind::RemoveComponent:
      txn.remove_component(op.scope, op.element);
      return;
    case OpKind::AddConnector:
      txn.add_connector(op.scope, op.element, op.type_name);
      return;
    case OpKind::RemoveConnector:
      txn.remove_connector(op.scope, op.element);
      return;
    case OpKind::AddPort:
      txn.add_port(op.scope, op.element, op.sub, op.type_name);
      return;
    case OpKind::AddRole:
      txn.add_role(op.scope, op.element, op.sub, op.type_name);
      return;
    case OpKind::Attach:
      txn.attach(op.scope, op.attachment);
      return;
    case OpKind::Detach:
      txn.detach(op.scope, op.attachment);
      return;
    case OpKind::SetProperty:
      txn.set_property(op.scope, op.element_kind, op.element, op.sub,
                       op.property, op.value);
      return;
    default:
      throw ModelError(std::string("apply_op: unsupported kind ") +
                       to_string(op.kind));
  }
}

Transaction::~Transaction() {
  if (state_ == State::Open) rollback();
}

void Transaction::require_open() const {
  if (state_ != State::Open) {
    throw ModelError("transaction is no longer open");
  }
}

System& Transaction::resolve_scope(const std::vector<std::string>& scope) {
  System* sys = &root_;
  for (const std::string& comp : scope) {
    sys = &sys->component(comp).representation();
  }
  return *sys;
}

Component& Transaction::add_component(const std::vector<std::string>& scope,
                                      const std::string& name,
                                      const std::string& type_name) {
  require_open();
  System& sys = resolve_scope(scope);
  Component& c = sys.add_component(name, type_name);
  records_.push_back({OpKind::AddComponent, scope, name, "", type_name, "",
                      PropertyValue(), {}, ElementKind::Component, PropertyValue(), false});
  undo_.push_back([&sys, name] { sys.remove_component(name); });
  return c;
}

void Transaction::remove_component(const std::vector<std::string>& scope,
                                   const std::string& name) {
  require_open();
  System& sys = resolve_scope(scope);
  // Snapshot for undo: the component subtree and its attachments.
  auto snapshot = std::make_shared<std::unique_ptr<Component>>(
      sys.component(name).clone());
  auto atts = std::make_shared<std::vector<Attachment>>(sys.attachments_of(name));
  const std::string type_name = sys.component(name).type_name();
  sys.remove_component(name);
  records_.push_back({OpKind::RemoveComponent, scope, name, "", type_name, "",
                      PropertyValue(), {}, ElementKind::Component, PropertyValue(), false});
  undo_.push_back([&sys, snapshot, atts] {
    sys.adopt_component(std::move(*snapshot));
    for (const Attachment& a : *atts) sys.attach(a);
  });
}

Connector& Transaction::add_connector(const std::vector<std::string>& scope,
                                      const std::string& name,
                                      const std::string& type_name) {
  require_open();
  System& sys = resolve_scope(scope);
  Connector& c = sys.add_connector(name, type_name);
  records_.push_back({OpKind::AddConnector, scope, name, "", type_name, "",
                      PropertyValue(), {}, ElementKind::Connector, PropertyValue(), false});
  undo_.push_back([&sys, name] { sys.remove_connector(name); });
  return c;
}

void Transaction::remove_connector(const std::vector<std::string>& scope,
                                   const std::string& name) {
  require_open();
  System& sys = resolve_scope(scope);
  auto snapshot = std::make_shared<std::unique_ptr<Connector>>(
      sys.connector(name).clone());
  auto atts = std::make_shared<std::vector<Attachment>>(sys.attachments_on(name));
  const std::string type_name = sys.connector(name).type_name();
  sys.remove_connector(name);
  records_.push_back({OpKind::RemoveConnector, scope, name, "", type_name, "",
                      PropertyValue(), {}, ElementKind::Connector, PropertyValue(), false});
  undo_.push_back([&sys, snapshot, atts] {
    sys.adopt_connector(std::move(*snapshot));
    for (const Attachment& a : *atts) sys.attach(a);
  });
}

Port& Transaction::add_port(const std::vector<std::string>& scope,
                            const std::string& component,
                            const std::string& port,
                            const std::string& type_name) {
  require_open();
  System& sys = resolve_scope(scope);
  Port& p = sys.component(component).add_port(port, type_name);
  records_.push_back({OpKind::AddPort, scope, component, port, type_name, "",
                      PropertyValue(), {}, ElementKind::Port, PropertyValue(), false});
  undo_.push_back(
      [&sys, component, port] { sys.component(component).remove_port(port); });
  return p;
}

Role& Transaction::add_role(const std::vector<std::string>& scope,
                            const std::string& connector,
                            const std::string& role,
                            const std::string& type_name) {
  require_open();
  System& sys = resolve_scope(scope);
  Role& r = sys.connector(connector).add_role(role, type_name);
  records_.push_back({OpKind::AddRole, scope, connector, role, type_name, "",
                      PropertyValue(), {}, ElementKind::Role, PropertyValue(), false});
  undo_.push_back(
      [&sys, connector, role] { sys.connector(connector).remove_role(role); });
  return r;
}

void Transaction::attach(const std::vector<std::string>& scope, Attachment a) {
  require_open();
  System& sys = resolve_scope(scope);
  sys.attach(a);
  records_.push_back({OpKind::Attach, scope, "", "", "", "", PropertyValue(),
                      a, ElementKind::System, PropertyValue(), false});
  undo_.push_back([&sys, a] { sys.detach(a); });
}

void Transaction::detach(const std::vector<std::string>& scope, Attachment a) {
  require_open();
  System& sys = resolve_scope(scope);
  sys.detach(a);
  records_.push_back({OpKind::Detach, scope, "", "", "", "", PropertyValue(),
                      a, ElementKind::System, PropertyValue(), false});
  undo_.push_back([&sys, a] { sys.attach(a); });
}

Element& Transaction::resolve_element(System& sys, ElementKind kind,
                                      const std::string& element,
                                      const std::string& sub) {
  switch (kind) {
    case ElementKind::Component:
      return sys.component(element);
    case ElementKind::Connector:
      return sys.connector(element);
    case ElementKind::Port:
      return sys.component(element).port(sub);
    case ElementKind::Role:
      return sys.connector(element).role(sub);
    case ElementKind::System:
      break;
  }
  throw ModelError("set_property: unsupported element kind");
}

void Transaction::set_property(const std::vector<std::string>& scope,
                               ElementKind kind, const std::string& element,
                               const std::string& sub,
                               const std::string& property,
                               PropertyValue value) {
  require_open();
  System& sys = resolve_scope(scope);
  Element& el = resolve_element(sys, kind, element, sub);
  const bool had = el.has_property(property);
  const PropertyValue old = had ? el.property(property) : PropertyValue();
  const std::uint64_t stamp = el.property_stamp();
  el.set_property(property, value);
  records_.push_back({OpKind::SetProperty, scope, element, sub, "", property,
                      std::move(value), {}, kind, old, had});
  undo_.push_back([this, scope, kind, element, sub, property, had, old,
                   stamp] {
    System& s = resolve_scope(scope);
    Element& e = resolve_element(s, kind, element, sub);
    if (had) {
      e.set_property(property, old);
    } else {
      e.clear_property(property);
    }
    // The value is back to its pre-write state; so is the stamp. Undoing
    // newest-first means the oldest op's restore runs last, leaving the
    // element exactly at its pre-transaction stamp.
    e.restore_property_stamp(stamp);
  });
}

void Transaction::commit() {
  require_open();
  state_ = State::Committed;
  undo_.clear();
}

void Transaction::rollback() {
  require_open();
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) (*it)();
  undo_.clear();
  records_.clear();
  state_ = State::RolledBack;
}

}  // namespace arcadia::model
