#include "model/types.hpp"

namespace arcadia::model {

const char* to_string(PropertyType type) {
  switch (type) {
    case PropertyType::Bool: return "bool";
    case PropertyType::Int: return "int";
    case PropertyType::Double: return "double";
    case PropertyType::String: return "string";
    case PropertyType::Any: return "any";
  }
  return "?";
}

bool value_matches(PropertyType type, const PropertyValue& value) {
  switch (type) {
    case PropertyType::Bool: return value.is_bool();
    case PropertyType::Int: return value.is_int();
    // Numeric promotion: an int is acceptable where a double is declared.
    case PropertyType::Double: return value.is_numeric();
    case PropertyType::String: return value.is_string();
    case PropertyType::Any: return true;
  }
  return false;
}

const PropertySpec* ElementTypeDef::find_prop(const std::string& pname) const {
  for (const auto& p : properties) {
    if (p.name == pname) return &p;
  }
  return nullptr;
}

ElementTypeDef& Style::define(const std::string& type_name, ElementKind kind) {
  auto [it, inserted] = types_.try_emplace(type_name);
  it->second.name = type_name;
  it->second.kind = kind;
  return it->second;
}

const ElementTypeDef* Style::find(const std::string& type_name) const {
  auto it = types_.find(type_name);
  return it == types_.end() ? nullptr : &it->second;
}

std::vector<const ElementTypeDef*> Style::types() const {
  std::vector<const ElementTypeDef*> out;
  for (const auto& [n, t] : types_) out.push_back(&t);
  return out;
}

void Style::apply_defaults(Element& element) const {
  const ElementTypeDef* def = find(element.type_name());
  if (!def) return;
  for (const auto& spec : def->properties) {
    if (spec.default_value && !element.has_property(spec.name)) {
      element.set_property(spec.name, *spec.default_value);
    }
  }
}

std::vector<std::string> Style::check_element(const Element& element) const {
  std::vector<std::string> out;
  const ElementTypeDef* def = find(element.type_name());
  if (!def) {
    out.push_back("element '" + element.name() + "' has unknown type '" +
                  element.type_name() + "'");
    return out;
  }
  if (def->kind != element.kind()) {
    out.push_back("element '" + element.name() + "': type '" + def->name +
                  "' is a " + std::string(to_string(def->kind)) + " type, not a " +
                  to_string(element.kind()));
  }
  for (const auto& spec : def->properties) {
    if (!element.has_property(spec.name)) {
      if (spec.required) {
        out.push_back("element '" + element.name() +
                      "' missing required property '" + spec.name + "'");
      }
      continue;
    }
    if (!value_matches(spec.type, element.property(spec.name))) {
      out.push_back("element '" + element.name() + "' property '" + spec.name +
                    "' is not a " + to_string(spec.type));
    }
  }
  return out;
}

std::vector<std::string> Style::check_system(const System& system) const {
  std::vector<std::string> out = system.structural_violations();
  auto absorb = [&out](std::vector<std::string> v) {
    for (auto& s : v) out.push_back(std::move(s));
  };
  for (const Component* c : system.components()) {
    absorb(check_element(*c));
    for (const Port* p : c->ports()) absorb(check_element(*p));
    if (c->has_representation()) absorb(check_system(c->representation_const()));
  }
  for (const Connector* k : system.connectors()) {
    absorb(check_element(*k));
    for (const Role* r : k->roles()) absorb(check_element(*r));
  }
  return out;
}

Style client_server_style() {
  Style style("ClientServerStyle");
  using PT = PropertyType;

  style.define(cs::kClientT, ElementKind::Component)
      .prop(cs::kPropAvgLatency, PT::Double, false, PropertyValue(0.0))
      .prop(cs::kPropMaxLatency, PT::Double, true, PropertyValue(2.0))
      .prop(cs::kPropLocation, PT::String, false);

  style.define(cs::kServerT, ElementKind::Component)
      .prop(cs::kPropIsActive, PT::Bool, false, PropertyValue(true))
      .prop(cs::kPropLocation, PT::String, false);

  style.define(cs::kServerGroupT, ElementKind::Component)
      .prop(cs::kPropLoad, PT::Double, false, PropertyValue(0.0))
      .prop(cs::kPropReplication, PT::Int, true, PropertyValue(0))
      .prop(cs::kPropUtilization, PT::Double, false, PropertyValue(0.0))
      .prop(cs::kPropLocation, PT::String, false);

  style.define(cs::kConnT, ElementKind::Connector);

  style.define(cs::kClientRoleT, ElementKind::Role)
      .prop(cs::kPropBandwidth, PT::Double, false, PropertyValue(1.0e7));
  style.define(cs::kServerRoleT, ElementKind::Role);

  style.define(cs::kRequestPortT, ElementKind::Port);
  style.define(cs::kProvidePortT, ElementKind::Port);

  // Figure 5, line 1 — the latency invariant each client must satisfy.
  style.add_invariant("averageLatency <= maxLatency");
  return style;
}

}  // namespace arcadia::model
