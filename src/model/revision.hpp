// Global revision clocks backing the incremental constraint checker.
//
// Every property write stamps its element from the property clock; every
// structural edit (add/remove component/connector/port/role, attach/detach,
// adopt/release) bumps the structure clock. The ConstraintChecker compares
// the clocks against what it saw on its previous sweep:
//   - structure clock moved  -> full re-evaluation sweep (elements may have
//     appeared, vanished, or been rewired; no per-constraint reasoning is
//     safe);
//   - property clock moved   -> re-evaluate "non-local" constraints (those
//     whose conditions can read arbitrary elements through calls, member
//     chains, or quantifiers);
//   - per-element stamp moved-> re-evaluate the "local" constraints attached
//     to that element (conditions built only from the element's own
//     properties, globals, and literals — the common threshold form).
//
// The clocks are process-global atomics rather than per-System state because
// repairs mutate nested representation systems (the paper's ServerGrpRep)
// through their own System objects; a per-root counter would miss those.
// Cross-system false sharing only costs a spurious re-evaluation, never a
// stale verdict.
// arclint: hotpath — steady-state code: no std::function (heap-owning
// type erasure); util::SmallFn, templates, or plain data only.
#pragma once

#include <cstdint>

namespace arcadia::model {

/// Current property-write clock (monotonic, starts > 0).
std::uint64_t property_clock();
/// Advance and return the property-write clock.
std::uint64_t bump_property_clock();

/// Current structural-edit clock.
std::uint64_t structure_clock();
/// Advance and return the structural-edit clock.
std::uint64_t bump_structure_clock();

}  // namespace arcadia::model
