// The architectural model: a graph of components and connectors joined by
// attachments (port <-> role). Systems nest: a component's representation
// is itself a System.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/element.hpp"

namespace arcadia::model {

/// A port<->role binding: component `component`'s port `port` is attached
/// to connector `connector`'s role `role`.
struct Attachment {
  std::string component;
  std::string port;
  std::string connector;
  std::string role;

  friend bool operator==(const Attachment&, const Attachment&) = default;
};

class System {
 public:
  explicit System(std::string name = "system") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- structure mutation (raw; prefer Transaction for repairs) ----
  Component& add_component(const std::string& name,
                           const std::string& type_name);
  /// Removes the component and every attachment referencing it.
  void remove_component(const std::string& name);
  Connector& add_connector(const std::string& name,
                           const std::string& type_name);
  void remove_connector(const std::string& name);
  /// Validates that all four endpoints exist; throws ModelError otherwise.
  void attach(const Attachment& a);
  /// Removes an attachment; throws ModelError when absent.
  void detach(const Attachment& a);

  /// Move a fully-built component in (used by transaction rollback).
  Component& adopt_component(std::unique_ptr<Component> component);
  Connector& adopt_connector(std::unique_ptr<Connector> connector);
  std::unique_ptr<Component> release_component(const std::string& name);
  std::unique_ptr<Connector> release_connector(const std::string& name);

  // ---- lookup ----
  bool has_component(const std::string& name) const {
    return components_.count(name) > 0;
  }
  bool has_connector(const std::string& name) const {
    return connectors_.count(name) > 0;
  }
  Component& component(const std::string& name);
  const Component& component(const std::string& name) const;
  Connector& connector(const std::string& name);
  const Connector& connector(const std::string& name) const;
  std::vector<Component*> components();
  std::vector<const Component*> components() const;
  std::vector<Connector*> connectors();
  std::vector<const Connector*> connectors() const;
  const std::vector<Attachment>& attachments() const { return attachments_; }

  // ---- graph queries (the predicates Armani expressions use) ----
  /// True when some connector has one role attached to a port of `a` and
  /// another attached to a port of `b`.
  bool connected(const std::string& a, const std::string& b) const;
  /// True when the named port/role pair is attached.
  bool attached(const std::string& component, const std::string& port,
                const std::string& connector, const std::string& role) const;
  /// Connectors with at least one role attached to `component`.
  std::vector<const Connector*> connectors_of(const std::string& component) const;
  /// Components attached (via any connector role) to `connector`.
  std::vector<const Component*> components_on(const std::string& connector) const;
  /// Components connected to `component` through any connector.
  std::vector<const Component*> neighbors(const std::string& component) const;
  /// The attachments involving a component (optionally a specific port).
  std::vector<Attachment> attachments_of(const std::string& component) const;
  /// The attachments involving a connector.
  std::vector<Attachment> attachments_on(const std::string& connector) const;

  /// Structural well-formedness: every attachment references an existing
  /// component port and connector role, and no role is attached twice.
  /// Returns human-readable violations (empty = valid).
  std::vector<std::string> structural_violations() const;

  std::unique_ptr<System> clone() const;

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Component>> components_;
  std::map<std::string, std::unique_ptr<Connector>> connectors_;
  std::vector<Attachment> attachments_;
};

}  // namespace arcadia::model
