// The architectural model: a graph of components and connectors joined by
// attachments (port <-> role). Systems nest: a component's representation
// is itself a System.
//
// Components and connectors are keyed by interned util::Symbols (see
// util/symbol.hpp); lookups on the adaptation loop's hot paths are integer
// hashes. Iteration order is name-sorted, matching the std::map the
// containers replaced, so every run stays deterministic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/element.hpp"
#include "model/revision.hpp"
#include "util/symbol.hpp"

namespace arcadia::model {

/// A port<->role binding: component `component`'s port `port` is attached
/// to connector `connector`'s role `role`.
struct Attachment {
  std::string component;
  std::string port;
  std::string connector;
  std::string role;

  friend bool operator==(const Attachment&, const Attachment&) = default;
};

class System {
 public:
  explicit System(std::string name = "system") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- structure mutation (raw; prefer Transaction for repairs) ----
  Component& add_component(const std::string& name,
                           const std::string& type_name);
  /// Removes the component and every attachment referencing it.
  void remove_component(const std::string& name);
  Connector& add_connector(const std::string& name,
                           const std::string& type_name);
  void remove_connector(const std::string& name);
  /// Validates that all four endpoints exist; throws ModelError otherwise.
  void attach(const Attachment& a);
  /// Removes an attachment; throws ModelError when absent.
  void detach(const Attachment& a);

  /// Move a fully-built component in (used by transaction rollback).
  Component& adopt_component(std::unique_ptr<Component> component);
  Connector& adopt_connector(std::unique_ptr<Connector> connector);
  std::unique_ptr<Component> release_component(const std::string& name);
  std::unique_ptr<Connector> release_connector(const std::string& name);

  // ---- lookup ----
  bool has_component(util::Symbol name) const {
    return components_.contains(name);
  }
  bool has_component(std::string_view name) const {
    return has_component(util::Symbol::intern(name));
  }
  bool has_connector(util::Symbol name) const {
    return connectors_.contains(name);
  }
  bool has_connector(std::string_view name) const {
    return has_connector(util::Symbol::intern(name));
  }
  Component& component(util::Symbol name);
  const Component& component(util::Symbol name) const;
  Component& component(std::string_view name) {
    return component(util::Symbol::intern(name));
  }
  const Component& component(std::string_view name) const {
    return component(util::Symbol::intern(name));
  }
  Connector& connector(util::Symbol name);
  const Connector& connector(util::Symbol name) const;
  Connector& connector(std::string_view name) {
    return connector(util::Symbol::intern(name));
  }
  const Connector& connector(std::string_view name) const {
    return connector(util::Symbol::intern(name));
  }
  std::vector<Component*> components();
  std::vector<const Component*> components() const;
  std::vector<Connector*> connectors();
  std::vector<const Connector*> connectors() const;
  const std::vector<Attachment>& attachments() const { return attachments_; }

  // ---- graph queries (the predicates Armani expressions use) ----
  /// True when some connector has one role attached to a port of `a` and
  /// another attached to a port of `b`.
  bool connected(const std::string& a, const std::string& b) const;
  /// True when the named port/role pair is attached.
  bool attached(const std::string& component, const std::string& port,
                const std::string& connector, const std::string& role) const;
  /// Connectors with at least one role attached to `component`.
  std::vector<const Connector*> connectors_of(const std::string& component) const;
  /// Components attached (via any connector role) to `connector`.
  std::vector<const Component*> components_on(const std::string& connector) const;
  /// Components connected to `component` through any connector.
  std::vector<const Component*> neighbors(const std::string& component) const;
  /// The attachments involving a component (optionally a specific port).
  std::vector<Attachment> attachments_of(const std::string& component) const;
  /// The attachments involving a connector.
  std::vector<Attachment> attachments_on(const std::string& connector) const;

  /// Structural well-formedness: every attachment references an existing
  /// component port and connector role, and no role is attached twice.
  /// Returns human-readable violations (empty = valid).
  std::vector<std::string> structural_violations() const;

  std::unique_ptr<System> clone() const;

 private:
  std::string name_;
  util::SymbolMap<std::unique_ptr<Component>> components_;
  util::SymbolMap<std::unique_ptr<Connector>> connectors_;
  std::vector<Attachment> attachments_;
};

}  // namespace arcadia::model
