// Architectural elements: components, connectors, ports, roles. This is the
// core graph vocabulary of Acme-like ADLs (Section 2): components are the
// computational nodes, connectors the interaction pathways, ports the
// component interfaces, roles the connector endpoints.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/property.hpp"
#include "util/error.hpp"

namespace arcadia::model {

class System;

enum class ElementKind { Component, Connector, Port, Role, System };

const char* to_string(ElementKind kind);

/// Common state: a name, a declared type (from a style), and a property
/// list.
class Element {
 public:
  Element(std::string name, std::string type_name)
      : name_(std::move(name)), type_name_(std::move(type_name)) {}
  virtual ~Element() = default;

  virtual ElementKind kind() const = 0;
  const std::string& name() const { return name_; }
  const std::string& type_name() const { return type_name_; }

  bool has_property(const std::string& prop) const {
    return properties_.count(prop) > 0;
  }
  /// Throws ModelError when absent.
  const PropertyValue& property(const std::string& prop) const;
  PropertyValue property_or(const std::string& prop,
                            PropertyValue fallback) const;
  void set_property(const std::string& prop, PropertyValue value) {
    properties_[prop] = std::move(value);
  }
  /// Removes a property; returns whether it existed.
  bool clear_property(const std::string& prop) {
    return properties_.erase(prop) > 0;
  }
  const std::map<std::string, PropertyValue>& properties() const {
    return properties_;
  }

 protected:
  void copy_properties_from(const Element& other) {
    properties_ = other.properties_;
  }

 private:
  std::string name_;
  std::string type_name_;
  std::map<std::string, PropertyValue> properties_;
};

/// A component interface point.
class Port : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Port; }
  std::unique_ptr<Port> clone() const;
};

/// A connector endpoint.
class Role : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Role; }
  std::unique_ptr<Role> clone() const;
};

/// A computational element or data store. May carry a representation: a
/// nested System refining the component (the paper's ServerGrpRep holding
/// the replicated servers).
class Component : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Component; }

  Port& add_port(const std::string& name, const std::string& type_name);
  void remove_port(const std::string& name);
  bool has_port(const std::string& name) const { return ports_.count(name) > 0; }
  Port& port(const std::string& name);
  const Port& port(const std::string& name) const;
  std::vector<const Port*> ports() const;
  std::vector<Port*> ports();

  bool has_representation() const { return representation_ != nullptr; }
  /// Creates the representation on first use.
  System& representation();
  const System& representation_const() const;

  std::unique_ptr<Component> clone() const;

 private:
  std::map<std::string, std::unique_ptr<Port>> ports_;
  std::unique_ptr<System> representation_;
};

/// An interaction pathway between components.
class Connector : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Connector; }

  Role& add_role(const std::string& name, const std::string& type_name);
  void remove_role(const std::string& name);
  bool has_role(const std::string& name) const { return roles_.count(name) > 0; }
  Role& role(const std::string& name);
  const Role& role(const std::string& name) const;
  std::vector<const Role*> roles() const;
  std::vector<Role*> roles();

  std::unique_ptr<Connector> clone() const;

 private:
  std::map<std::string, std::unique_ptr<Role>> roles_;
};

}  // namespace arcadia::model
