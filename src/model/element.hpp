// Architectural elements: components, connectors, ports, roles. This is the
// core graph vocabulary of Acme-like ADLs (Section 2): components are the
// computational nodes, connectors the interaction pathways, ports the
// component interfaces, roles the connector endpoints.
//
// Names and property keys are interned util::Symbols: the per-tick paths
// (gauge reports folding into properties, constraint evaluation) hash a
// dense integer instead of comparing strings. String-keyed overloads remain
// for call sites where a symbol is not already at hand; they intern once
// and delegate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/property.hpp"
#include "model/revision.hpp"
#include "util/error.hpp"
#include "util/symbol.hpp"

namespace arcadia::model {

class System;

enum class ElementKind { Component, Connector, Port, Role, System };

const char* to_string(ElementKind kind);

/// Common state: a name, a declared type (from a style), and a property
/// list.
class Element {
 public:
  Element(std::string name, std::string type_name)
      : name_(std::move(name)),
        type_name_(std::move(type_name)),
        name_sym_(util::Symbol::intern(name_)),
        type_sym_(util::Symbol::intern(type_name_)) {}
  virtual ~Element() = default;

  virtual ElementKind kind() const = 0;
  const std::string& name() const { return name_; }
  const std::string& type_name() const { return type_name_; }
  util::Symbol name_symbol() const { return name_sym_; }
  util::Symbol type_symbol() const { return type_sym_; }

  bool has_property(util::Symbol prop) const {
    return properties_.contains(prop);
  }
  bool has_property(std::string_view prop) const {
    return has_property(util::Symbol::intern(prop));
  }
  /// Throws ModelError when absent.
  const PropertyValue& property(util::Symbol prop) const;
  const PropertyValue& property(std::string_view prop) const {
    return property(util::Symbol::intern(prop));
  }
  PropertyValue property_or(util::Symbol prop, PropertyValue fallback) const;
  PropertyValue property_or(std::string_view prop,
                            PropertyValue fallback) const {
    return property_or(util::Symbol::intern(prop), std::move(fallback));
  }
  void set_property(util::Symbol prop, PropertyValue value) {
    properties_.insert_or_assign(prop, std::move(value));
    property_stamp_ = bump_property_clock();
  }
  void set_property(std::string_view prop, PropertyValue value) {
    set_property(util::Symbol::intern(prop), std::move(value));
  }
  /// Removes a property; returns whether it existed.
  bool clear_property(util::Symbol prop) {
    const bool existed = properties_.erase(prop);
    if (existed) property_stamp_ = bump_property_clock();
    return existed;
  }
  bool clear_property(std::string_view prop) {
    return clear_property(util::Symbol::intern(prop));
  }
  const util::SymbolMap<PropertyValue>& properties() const {
    return properties_;
  }

  /// Property-clock value of this element's most recent property write
  /// (0 = never written). Consumed by the incremental constraint checker.
  std::uint64_t property_stamp() const { return property_stamp_; }

  /// Rewind the stamp to a value captured before a journaled write —
  /// Transaction::rollback only. A rolled-back write restores the old value,
  /// so the pre-write stamp is again the truth; leaving the undo's own bump
  /// in place would advertise a change that no longer exists. Rewinding is
  /// safe in either direction because the checker treats any stamp change
  /// (not just advancement) as dirtying the element.
  void restore_property_stamp(std::uint64_t stamp) { property_stamp_ = stamp; }

 protected:
  void copy_properties_from(const Element& other) {
    properties_ = other.properties_;
    property_stamp_ = bump_property_clock();
  }

 private:
  std::string name_;
  std::string type_name_;
  util::Symbol name_sym_;
  util::Symbol type_sym_;
  util::SymbolMap<PropertyValue> properties_;
  std::uint64_t property_stamp_ = 0;
};

/// A component interface point.
class Port : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Port; }
  std::unique_ptr<Port> clone() const;
};

/// A connector endpoint.
class Role : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Role; }
  std::unique_ptr<Role> clone() const;
};

/// A computational element or data store. May carry a representation: a
/// nested System refining the component (the paper's ServerGrpRep holding
/// the replicated servers).
class Component : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Component; }

  Port& add_port(const std::string& name, const std::string& type_name);
  void remove_port(const std::string& name);
  bool has_port(util::Symbol name) const { return ports_.contains(name); }
  bool has_port(std::string_view name) const {
    return has_port(util::Symbol::intern(name));
  }
  Port& port(util::Symbol name);
  const Port& port(util::Symbol name) const;
  Port& port(std::string_view name) { return port(util::Symbol::intern(name)); }
  const Port& port(std::string_view name) const {
    return port(util::Symbol::intern(name));
  }
  std::vector<const Port*> ports() const;
  std::vector<Port*> ports();

  bool has_representation() const { return representation_ != nullptr; }
  /// Creates the representation on first use.
  System& representation();
  const System& representation_const() const;

  std::unique_ptr<Component> clone() const;

 private:
  util::SymbolMap<std::unique_ptr<Port>> ports_;
  std::unique_ptr<System> representation_;
};

/// An interaction pathway between components.
class Connector : public Element {
 public:
  using Element::Element;
  ElementKind kind() const override { return ElementKind::Connector; }

  Role& add_role(const std::string& name, const std::string& type_name);
  void remove_role(const std::string& name);
  bool has_role(util::Symbol name) const { return roles_.contains(name); }
  bool has_role(std::string_view name) const {
    return has_role(util::Symbol::intern(name));
  }
  Role& role(util::Symbol name);
  const Role& role(util::Symbol name) const;
  Role& role(std::string_view name) { return role(util::Symbol::intern(name)); }
  const Role& role(std::string_view name) const {
    return role(util::Symbol::intern(name));
  }
  std::vector<const Role*> roles() const;
  std::vector<Role*> roles();

  std::unique_ptr<Connector> clone() const;

 private:
  util::SymbolMap<std::unique_ptr<Role>> roles_;
};

}  // namespace arcadia::model
