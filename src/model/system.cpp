#include "model/system.hpp"

#include <algorithm>
#include <set>

namespace arcadia::model {

Component& System::add_component(const std::string& name,
                                 const std::string& type_name) {
  const util::Symbol key = util::Symbol::intern(name);
  if (components_.contains(key)) {
    throw ModelError("system '" + name_ + "' already has component '" + name +
                     "'");
  }
  auto& stored = components_.insert_or_assign(
      key, std::make_unique<Component>(name, type_name));
  bump_structure_clock();
  return *stored;
}

void System::remove_component(const std::string& name) {
  const util::Symbol key = util::Symbol::intern(name);
  if (!components_.contains(key)) {
    throw ModelError("system '" + name_ + "' has no component '" + name + "'");
  }
  attachments_.erase(
      std::remove_if(attachments_.begin(), attachments_.end(),
                     [&](const Attachment& a) { return a.component == name; }),
      attachments_.end());
  components_.erase(key);
  bump_structure_clock();
}

Connector& System::add_connector(const std::string& name,
                                 const std::string& type_name) {
  const util::Symbol key = util::Symbol::intern(name);
  if (connectors_.contains(key)) {
    throw ModelError("system '" + name_ + "' already has connector '" + name +
                     "'");
  }
  auto& stored = connectors_.insert_or_assign(
      key, std::make_unique<Connector>(name, type_name));
  bump_structure_clock();
  return *stored;
}

void System::remove_connector(const std::string& name) {
  const util::Symbol key = util::Symbol::intern(name);
  if (!connectors_.contains(key)) {
    throw ModelError("system '" + name_ + "' has no connector '" + name + "'");
  }
  attachments_.erase(
      std::remove_if(attachments_.begin(), attachments_.end(),
                     [&](const Attachment& a) { return a.connector == name; }),
      attachments_.end());
  connectors_.erase(key);
  bump_structure_clock();
}

void System::attach(const Attachment& a) {
  Component& comp = component(a.component);
  if (!comp.has_port(a.port)) {
    throw ModelError("attach: component '" + a.component + "' has no port '" +
                     a.port + "'");
  }
  Connector& conn = connector(a.connector);
  if (!conn.has_role(a.role)) {
    throw ModelError("attach: connector '" + a.connector + "' has no role '" +
                     a.role + "'");
  }
  if (std::find(attachments_.begin(), attachments_.end(), a) !=
      attachments_.end()) {
    throw ModelError("attach: duplicate attachment " + a.component + "." +
                     a.port + " <-> " + a.connector + "." + a.role);
  }
  attachments_.push_back(a);
  bump_structure_clock();
}

void System::detach(const Attachment& a) {
  auto it = std::find(attachments_.begin(), attachments_.end(), a);
  if (it == attachments_.end()) {
    throw ModelError("detach: no attachment " + a.component + "." + a.port +
                     " <-> " + a.connector + "." + a.role);
  }
  attachments_.erase(it);
  bump_structure_clock();
}

Component& System::adopt_component(std::unique_ptr<Component> component) {
  const util::Symbol key = component->name_symbol();
  if (components_.contains(key)) {
    throw ModelError("adopt: duplicate component '" + component->name() + "'");
  }
  auto& stored = components_.insert_or_assign(key, std::move(component));
  bump_structure_clock();
  return *stored;
}

Connector& System::adopt_connector(std::unique_ptr<Connector> connector) {
  const util::Symbol key = connector->name_symbol();
  if (connectors_.contains(key)) {
    throw ModelError("adopt: duplicate connector '" + connector->name() + "'");
  }
  auto& stored = connectors_.insert_or_assign(key, std::move(connector));
  bump_structure_clock();
  return *stored;
}

std::unique_ptr<Component> System::release_component(const std::string& name) {
  std::unique_ptr<Component>* found =
      components_.find(util::Symbol::intern(name));
  if (!found) {
    throw ModelError("release: no component '" + name + "'");
  }
  auto out = std::move(*found);
  components_.erase(out->name_symbol());
  bump_structure_clock();
  return out;
}

std::unique_ptr<Connector> System::release_connector(const std::string& name) {
  std::unique_ptr<Connector>* found =
      connectors_.find(util::Symbol::intern(name));
  if (!found) {
    throw ModelError("release: no connector '" + name + "'");
  }
  auto out = std::move(*found);
  connectors_.erase(out->name_symbol());
  bump_structure_clock();
  return out;
}

Component& System::component(util::Symbol name) {
  std::unique_ptr<Component>* found = components_.find(name);
  if (!found) {
    throw ModelError("system '" + name_ + "' has no component '" + name.str() +
                     "'");
  }
  return **found;
}

const Component& System::component(util::Symbol name) const {
  return const_cast<System*>(this)->component(name);
}

Connector& System::connector(util::Symbol name) {
  std::unique_ptr<Connector>* found = connectors_.find(name);
  if (!found) {
    throw ModelError("system '" + name_ + "' has no connector '" + name.str() +
                     "'");
  }
  return **found;
}

const Connector& System::connector(util::Symbol name) const {
  return const_cast<System*>(this)->connector(name);
}

std::vector<Component*> System::components() {
  std::vector<Component*> out;
  out.reserve(components_.size());
  for (auto& e : components_) out.push_back(e.value.get());
  return out;
}

std::vector<const Component*> System::components() const {
  std::vector<const Component*> out;
  out.reserve(components_.size());
  for (const auto& e : components_) out.push_back(e.value.get());
  return out;
}

std::vector<Connector*> System::connectors() {
  std::vector<Connector*> out;
  out.reserve(connectors_.size());
  for (auto& e : connectors_) out.push_back(e.value.get());
  return out;
}

std::vector<const Connector*> System::connectors() const {
  std::vector<const Connector*> out;
  out.reserve(connectors_.size());
  for (const auto& e : connectors_) out.push_back(e.value.get());
  return out;
}

bool System::connected(const std::string& a, const std::string& b) const {
  for (const auto& e : connectors_) {
    const std::string& name = e.value->name();
    bool touches_a = false;
    bool touches_b = false;
    for (const Attachment& att : attachments_) {
      if (att.connector != name) continue;
      if (att.component == a) touches_a = true;
      if (att.component == b) touches_b = true;
    }
    if (touches_a && touches_b) return true;
  }
  return false;
}

bool System::attached(const std::string& component, const std::string& port,
                      const std::string& connector,
                      const std::string& role) const {
  Attachment a{component, port, connector, role};
  return std::find(attachments_.begin(), attachments_.end(), a) !=
         attachments_.end();
}

std::vector<const Connector*> System::connectors_of(
    const std::string& component) const {
  std::set<std::string> names;
  for (const Attachment& a : attachments_) {
    if (a.component == component) names.insert(a.connector);
  }
  std::vector<const Connector*> out;
  for (const auto& n : names) out.push_back(&connector(n));
  return out;
}

std::vector<const Component*> System::components_on(
    const std::string& connector) const {
  std::set<std::string> names;
  for (const Attachment& a : attachments_) {
    if (a.connector == connector) names.insert(a.component);
  }
  std::vector<const Component*> out;
  for (const auto& n : names) out.push_back(&component(n));
  return out;
}

std::vector<const Component*> System::neighbors(
    const std::string& component) const {
  std::set<std::string> names;
  for (const Connector* conn : connectors_of(component)) {
    for (const Component* c : components_on(conn->name())) {
      if (c->name() != component) names.insert(c->name());
    }
  }
  std::vector<const Component*> out;
  for (const auto& n : names) out.push_back(&this->component(n));
  return out;
}

std::vector<Attachment> System::attachments_of(
    const std::string& component) const {
  std::vector<Attachment> out;
  for (const Attachment& a : attachments_) {
    if (a.component == component) out.push_back(a);
  }
  return out;
}

std::vector<Attachment> System::attachments_on(
    const std::string& connector) const {
  std::vector<Attachment> out;
  for (const Attachment& a : attachments_) {
    if (a.connector == connector) out.push_back(a);
  }
  return out;
}

std::vector<std::string> System::structural_violations() const {
  std::vector<std::string> out;
  std::set<std::pair<std::string, std::string>> seen_roles;
  for (const Attachment& a : attachments_) {
    const std::unique_ptr<Component>* comp =
        components_.find(util::Symbol::intern(a.component));
    if (!comp) {
      out.push_back("attachment references missing component '" + a.component +
                    "'");
      continue;
    }
    if (!(*comp)->has_port(a.port)) {
      out.push_back("attachment references missing port '" + a.component +
                    "." + a.port + "'");
    }
    const std::unique_ptr<Connector>* conn =
        connectors_.find(util::Symbol::intern(a.connector));
    if (!conn) {
      out.push_back("attachment references missing connector '" + a.connector +
                    "'");
      continue;
    }
    if (!(*conn)->has_role(a.role)) {
      out.push_back("attachment references missing role '" + a.connector +
                    "." + a.role + "'");
    }
    auto key = std::make_pair(a.connector, a.role);
    if (!seen_roles.insert(key).second) {
      out.push_back("role '" + a.connector + "." + a.role +
                    "' attached more than once");
    }
  }
  // Recurse into representations.
  for (const auto& e : components_) {
    if (!e.value->has_representation()) continue;
    for (const std::string& v :
         e.value->representation_const().structural_violations()) {
      out.push_back(e.value->name() + ": " + v);
    }
  }
  return out;
}

std::unique_ptr<System> System::clone() const {
  auto copy = std::make_unique<System>(name_);
  for (const auto& e : components_) {
    copy->components_.insert_or_assign(e.key, e.value->clone());
  }
  for (const auto& e : connectors_) {
    copy->connectors_.insert_or_assign(e.key, e.value->clone());
  }
  copy->attachments_ = attachments_;
  return copy;
}

}  // namespace arcadia::model
