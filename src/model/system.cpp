#include "model/system.hpp"

#include <algorithm>
#include <set>

namespace arcadia::model {

Component& System::add_component(const std::string& name,
                                 const std::string& type_name) {
  if (components_.count(name)) {
    throw ModelError("system '" + name_ + "' already has component '" + name +
                     "'");
  }
  auto [it, _] =
      components_.emplace(name, std::make_unique<Component>(name, type_name));
  return *it->second;
}

void System::remove_component(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    throw ModelError("system '" + name_ + "' has no component '" + name + "'");
  }
  attachments_.erase(
      std::remove_if(attachments_.begin(), attachments_.end(),
                     [&](const Attachment& a) { return a.component == name; }),
      attachments_.end());
  components_.erase(it);
}

Connector& System::add_connector(const std::string& name,
                                 const std::string& type_name) {
  if (connectors_.count(name)) {
    throw ModelError("system '" + name_ + "' already has connector '" + name +
                     "'");
  }
  auto [it, _] =
      connectors_.emplace(name, std::make_unique<Connector>(name, type_name));
  return *it->second;
}

void System::remove_connector(const std::string& name) {
  auto it = connectors_.find(name);
  if (it == connectors_.end()) {
    throw ModelError("system '" + name_ + "' has no connector '" + name + "'");
  }
  attachments_.erase(
      std::remove_if(attachments_.begin(), attachments_.end(),
                     [&](const Attachment& a) { return a.connector == name; }),
      attachments_.end());
  connectors_.erase(it);
}

void System::attach(const Attachment& a) {
  Component& comp = component(a.component);
  if (!comp.has_port(a.port)) {
    throw ModelError("attach: component '" + a.component + "' has no port '" +
                     a.port + "'");
  }
  Connector& conn = connector(a.connector);
  if (!conn.has_role(a.role)) {
    throw ModelError("attach: connector '" + a.connector + "' has no role '" +
                     a.role + "'");
  }
  if (std::find(attachments_.begin(), attachments_.end(), a) !=
      attachments_.end()) {
    throw ModelError("attach: duplicate attachment " + a.component + "." +
                     a.port + " <-> " + a.connector + "." + a.role);
  }
  attachments_.push_back(a);
}

void System::detach(const Attachment& a) {
  auto it = std::find(attachments_.begin(), attachments_.end(), a);
  if (it == attachments_.end()) {
    throw ModelError("detach: no attachment " + a.component + "." + a.port +
                     " <-> " + a.connector + "." + a.role);
  }
  attachments_.erase(it);
}

Component& System::adopt_component(std::unique_ptr<Component> component) {
  const std::string name = component->name();
  if (components_.count(name)) {
    throw ModelError("adopt: duplicate component '" + name + "'");
  }
  auto [it, _] = components_.emplace(name, std::move(component));
  return *it->second;
}

Connector& System::adopt_connector(std::unique_ptr<Connector> connector) {
  const std::string name = connector->name();
  if (connectors_.count(name)) {
    throw ModelError("adopt: duplicate connector '" + name + "'");
  }
  auto [it, _] = connectors_.emplace(name, std::move(connector));
  return *it->second;
}

std::unique_ptr<Component> System::release_component(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    throw ModelError("release: no component '" + name + "'");
  }
  auto out = std::move(it->second);
  components_.erase(it);
  return out;
}

std::unique_ptr<Connector> System::release_connector(const std::string& name) {
  auto it = connectors_.find(name);
  if (it == connectors_.end()) {
    throw ModelError("release: no connector '" + name + "'");
  }
  auto out = std::move(it->second);
  connectors_.erase(it);
  return out;
}

Component& System::component(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    throw ModelError("system '" + name_ + "' has no component '" + name + "'");
  }
  return *it->second;
}

const Component& System::component(const std::string& name) const {
  return const_cast<System*>(this)->component(name);
}

Connector& System::connector(const std::string& name) {
  auto it = connectors_.find(name);
  if (it == connectors_.end()) {
    throw ModelError("system '" + name_ + "' has no connector '" + name + "'");
  }
  return *it->second;
}

const Connector& System::connector(const std::string& name) const {
  return const_cast<System*>(this)->connector(name);
}

std::vector<Component*> System::components() {
  std::vector<Component*> out;
  out.reserve(components_.size());
  for (auto& [n, c] : components_) out.push_back(c.get());
  return out;
}

std::vector<const Component*> System::components() const {
  std::vector<const Component*> out;
  out.reserve(components_.size());
  for (const auto& [n, c] : components_) out.push_back(c.get());
  return out;
}

std::vector<Connector*> System::connectors() {
  std::vector<Connector*> out;
  out.reserve(connectors_.size());
  for (auto& [n, c] : connectors_) out.push_back(c.get());
  return out;
}

std::vector<const Connector*> System::connectors() const {
  std::vector<const Connector*> out;
  out.reserve(connectors_.size());
  for (const auto& [n, c] : connectors_) out.push_back(c.get());
  return out;
}

bool System::connected(const std::string& a, const std::string& b) const {
  for (const auto& [name, conn] : connectors_) {
    bool touches_a = false;
    bool touches_b = false;
    for (const Attachment& att : attachments_) {
      if (att.connector != name) continue;
      if (att.component == a) touches_a = true;
      if (att.component == b) touches_b = true;
    }
    if (touches_a && touches_b) return true;
  }
  return false;
}

bool System::attached(const std::string& component, const std::string& port,
                      const std::string& connector,
                      const std::string& role) const {
  Attachment a{component, port, connector, role};
  return std::find(attachments_.begin(), attachments_.end(), a) !=
         attachments_.end();
}

std::vector<const Connector*> System::connectors_of(
    const std::string& component) const {
  std::set<std::string> names;
  for (const Attachment& a : attachments_) {
    if (a.component == component) names.insert(a.connector);
  }
  std::vector<const Connector*> out;
  for (const auto& n : names) out.push_back(&connector(n));
  return out;
}

std::vector<const Component*> System::components_on(
    const std::string& connector) const {
  std::set<std::string> names;
  for (const Attachment& a : attachments_) {
    if (a.connector == connector) names.insert(a.component);
  }
  std::vector<const Component*> out;
  for (const auto& n : names) out.push_back(&component(n));
  return out;
}

std::vector<const Component*> System::neighbors(
    const std::string& component) const {
  std::set<std::string> names;
  for (const Connector* conn : connectors_of(component)) {
    for (const Component* c : components_on(conn->name())) {
      if (c->name() != component) names.insert(c->name());
    }
  }
  std::vector<const Component*> out;
  for (const auto& n : names) out.push_back(&this->component(n));
  return out;
}

std::vector<Attachment> System::attachments_of(
    const std::string& component) const {
  std::vector<Attachment> out;
  for (const Attachment& a : attachments_) {
    if (a.component == component) out.push_back(a);
  }
  return out;
}

std::vector<Attachment> System::attachments_on(
    const std::string& connector) const {
  std::vector<Attachment> out;
  for (const Attachment& a : attachments_) {
    if (a.connector == connector) out.push_back(a);
  }
  return out;
}

std::vector<std::string> System::structural_violations() const {
  std::vector<std::string> out;
  std::set<std::pair<std::string, std::string>> seen_roles;
  for (const Attachment& a : attachments_) {
    auto cit = components_.find(a.component);
    if (cit == components_.end()) {
      out.push_back("attachment references missing component '" + a.component +
                    "'");
      continue;
    }
    if (!cit->second->has_port(a.port)) {
      out.push_back("attachment references missing port '" + a.component +
                    "." + a.port + "'");
    }
    auto kit = connectors_.find(a.connector);
    if (kit == connectors_.end()) {
      out.push_back("attachment references missing connector '" + a.connector +
                    "'");
      continue;
    }
    if (!kit->second->has_role(a.role)) {
      out.push_back("attachment references missing role '" + a.connector +
                    "." + a.role + "'");
    }
    auto key = std::make_pair(a.connector, a.role);
    if (!seen_roles.insert(key).second) {
      out.push_back("role '" + a.connector + "." + a.role +
                    "' attached more than once");
    }
  }
  // Recurse into representations.
  for (const auto& [n, c] : components_) {
    if (!c->has_representation()) continue;
    for (const std::string& v : c->representation_const().structural_violations()) {
      out.push_back(n + ": " + v);
    }
  }
  return out;
}

std::unique_ptr<System> System::clone() const {
  auto copy = std::make_unique<System>(name_);
  for (const auto& [n, c] : components_) copy->components_[n] = c->clone();
  for (const auto& [n, c] : connectors_) copy->connectors_[n] = c->clone();
  copy->attachments_ = attachments_;
  return copy;
}

}  // namespace arcadia::model
