// Journaled model mutation. A repair script runs inside a Transaction:
// every change is applied to the model immediately (so later script steps
// observe earlier ones) and journaled with its inverse. `commit repair`
// seals the transaction and hands the op records to the translator;
// `abort` rolls everything back, leaving the model untouched — Figure 5's
// commit/abort semantics.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "model/system.hpp"

namespace arcadia::model {

class Transaction;

enum class OpKind {
  AddComponent,
  RemoveComponent,
  AddConnector,
  RemoveConnector,
  AddPort,
  RemovePort,
  AddRole,
  RemoveRole,
  Attach,
  Detach,
  SetProperty,
};

const char* to_string(OpKind kind);

/// A committed change, in a form the translator can map to runtime
/// operations. Field use by kind:
///  - Add/RemoveComponent/Connector: element, type_name
///  - Add/RemovePort/Role:           element (owner), sub, type_name
///  - Attach/Detach:                 attachment
///  - SetProperty:                   element_kind, element, sub (port/role
///                                   name or empty), property, value
///
/// Every record also carries enough compensation metadata to build its
/// inverse after commit: SetProperty remembers the pre-write value, and
/// Remove* records capture the removed element's type. This is what lets
/// the repair planner abort a half-enacted plan — the inverse records are
/// replayed (newest first) through the model and the translator to bring
/// both layers back to their pre-repair state.
struct OpRecord {
  OpKind kind;
  std::vector<std::string> scope;  ///< representation path from the root
  std::string element;
  std::string sub;
  std::string type_name;
  std::string property;
  PropertyValue value;
  Attachment attachment;
  ElementKind element_kind = ElementKind::Component;
  /// SetProperty: the value the property held before this write (meaningful
  /// when `had_prev`); the inverse restores it.
  PropertyValue prev_value;
  bool had_prev = false;

  std::string describe() const;

  /// The compensating record: applying it to a model (or translating it to
  /// the runtime) undoes this record's effect. nullopt for kinds that are
  /// not mechanically invertible from the record alone (Add/RemovePort,
  /// Add/RemoveRole). A RemoveComponent/Connector inverse re-creates a
  /// fresh element of the recorded type — properties and sub-structure of
  /// the removed original are not resurrected (repair plans only ever
  /// remove dynamically-recruited servers, which carry none that matter).
  /// A SetProperty inverse with no prior value writes an empty
  /// PropertyValue.
  std::optional<OpRecord> inverse() const;
};

/// Replay one record through an open transaction (used to apply inverse
/// records during plan compensation). Throws ModelError for kinds a
/// Transaction cannot express (RemovePort/RemoveRole) or invalid input.
void apply_op(Transaction& txn, const OpRecord& op);

class Transaction {
 public:
  explicit Transaction(System& root) : root_(root) {}
  /// An open transaction rolls back on destruction (exception safety).
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Resolve a representation path ("ServerGrp1" -> that component's
  /// representation system). An empty scope is the root system.
  System& resolve_scope(const std::vector<std::string>& scope);

  // ---- mutations (all throw ModelError on invalid input, leaving the
  //      transaction consistent and still open) ----
  Component& add_component(const std::vector<std::string>& scope,
                           const std::string& name,
                           const std::string& type_name);
  void remove_component(const std::vector<std::string>& scope,
                        const std::string& name);
  Connector& add_connector(const std::vector<std::string>& scope,
                           const std::string& name,
                           const std::string& type_name);
  void remove_connector(const std::vector<std::string>& scope,
                        const std::string& name);
  Port& add_port(const std::vector<std::string>& scope,
                 const std::string& component, const std::string& port,
                 const std::string& type_name);
  Role& add_role(const std::vector<std::string>& scope,
                 const std::string& connector, const std::string& role,
                 const std::string& type_name);
  void attach(const std::vector<std::string>& scope, Attachment a);
  void detach(const std::vector<std::string>& scope, Attachment a);
  void set_property(const std::vector<std::string>& scope, ElementKind kind,
                    const std::string& element, const std::string& sub,
                    const std::string& property, PropertyValue value);

  // Root-scope conveniences.
  Component& add_component(const std::string& name, const std::string& type) {
    return add_component({}, name, type);
  }
  Connector& add_connector(const std::string& name, const std::string& type) {
    return add_connector({}, name, type);
  }
  void attach(Attachment a) { attach({}, std::move(a)); }
  void detach(Attachment a) { detach({}, std::move(a)); }

  /// Seal the transaction. Changes are already in the model; records()
  /// describes them for the translator.
  void commit();
  /// Undo everything, newest first. Per-element property stamps are
  /// restored to their pre-transaction values (the values are back, so the
  /// stamps must be too — otherwise a rolled-back repair leaves revision
  /// clocks advertising changes that no longer exist and the incremental
  /// checker re-evaluates for nothing). The global clocks are deliberately
  /// NOT rewound: they are process-wide and may have interleaved foreign
  /// writes; leaving them advanced only costs spurious re-evaluation of
  /// non-local constraints, never a stale verdict.
  void rollback();

  bool is_open() const { return state_ == State::Open; }
  bool committed() const { return state_ == State::Committed; }
  const std::vector<OpRecord>& records() const { return records_; }
  std::size_t op_count() const { return records_.size(); }

 private:
  enum class State { Open, Committed, RolledBack };
  void require_open() const;
  Element& resolve_element(System& sys, ElementKind kind,
                           const std::string& element, const std::string& sub);

  System& root_;
  State state_ = State::Open;
  std::vector<OpRecord> records_;
  std::vector<std::function<void()>> undo_;
};

}  // namespace arcadia::model
