#include "model/revision.hpp"

#include <atomic>

namespace arcadia::model {

namespace {
// Start at 1 so a default-initialised "last seen" stamp of 0 always reads
// as stale.
std::atomic<std::uint64_t> g_property_clock{1};
std::atomic<std::uint64_t> g_structure_clock{1};
}  // namespace

std::uint64_t property_clock() {
  return g_property_clock.load(std::memory_order_relaxed);
}

std::uint64_t bump_property_clock() {
  return g_property_clock.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t structure_clock() {
  return g_structure_clock.load(std::memory_order_relaxed);
}

std::uint64_t bump_structure_clock() {
  return g_structure_clock.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace arcadia::model
