// Architectural styles: families of element types with property
// requirements and style invariants. Repairs are written against a style
// ("architecture adaptation operators will be specific to the structure of
// the architecture (this is called an architecture style)" — Section 3.3);
// the style also supplies the vocabulary the paper's Figure 5 strategy
// uses: ClientT, ServerGroupT, ClientRoleT, RequestT...
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/system.hpp"

namespace arcadia::model {

enum class PropertyType { Bool, Int, Double, String, Any };

const char* to_string(PropertyType type);
bool value_matches(PropertyType type, const PropertyValue& value);

struct PropertySpec {
  std::string name;
  PropertyType type = PropertyType::Any;
  bool required = false;
  std::optional<PropertyValue> default_value;
};

struct ElementTypeDef {
  std::string name;
  ElementKind kind = ElementKind::Component;
  std::vector<PropertySpec> properties;

  ElementTypeDef& prop(std::string pname, PropertyType type,
                       bool required = false,
                       std::optional<PropertyValue> def = std::nullopt) {
    properties.push_back({std::move(pname), type, required, std::move(def)});
    return *this;
  }
  const PropertySpec* find_prop(const std::string& pname) const;
};

class Style {
 public:
  explicit Style(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ElementTypeDef& define(const std::string& type_name, ElementKind kind);
  const ElementTypeDef* find(const std::string& type_name) const;
  std::vector<const ElementTypeDef*> types() const;

  /// Armani invariant sources attached to the style; the acme module
  /// parses and the repair module enforces them.
  void add_invariant(std::string source) {
    invariants_.push_back(std::move(source));
  }
  const std::vector<std::string>& invariants() const { return invariants_; }

  /// Fill in defaults for declared-but-absent properties.
  void apply_defaults(Element& element) const;

  /// Type-conformance problems for one element (unknown type, kind
  /// mismatch, missing required property, property type mismatch).
  std::vector<std::string> check_element(const Element& element) const;

  /// Whole-system check: every element (including ports, roles, and
  /// representation members) conforms, plus structural well-formedness.
  std::vector<std::string> check_system(const System& system) const;

 private:
  std::string name_;
  std::map<std::string, ElementTypeDef> types_;
  std::vector<std::string> invariants_;
};

/// The paper's replicated client-server style. Type vocabulary follows
/// Figure 5 and Section 3.3:
///   components: ClientT, ServerT, ServerGroupT
///   connector:  ClientServerConnT with roles ClientRoleT / ServerRoleT
///   ports:      RequestT (client side), ProvideT (server-group side)
/// Properties: client.averageLatency / maxLatency; group.load /
/// replicationCount / utilization / location; role.bandwidth.
Style client_server_style();

/// Well-known names used when instantiating the style.
namespace cs {
inline constexpr const char* kClientT = "ClientT";
inline constexpr const char* kServerT = "ServerT";
inline constexpr const char* kServerGroupT = "ServerGroupT";
inline constexpr const char* kConnT = "ClientServerConnT";
inline constexpr const char* kClientRoleT = "ClientRoleT";
inline constexpr const char* kServerRoleT = "ServerRoleT";
inline constexpr const char* kRequestPortT = "RequestT";
inline constexpr const char* kProvidePortT = "ProvideT";

inline constexpr const char* kPropAvgLatency = "averageLatency";
inline constexpr const char* kPropMaxLatency = "maxLatency";
inline constexpr const char* kPropLoad = "load";
inline constexpr const char* kPropReplication = "replicationCount";
inline constexpr const char* kPropUtilization = "utilization";
inline constexpr const char* kPropBandwidth = "bandwidth";
inline constexpr const char* kPropLocation = "location";
inline constexpr const char* kPropIsActive = "isActive";
}  // namespace cs

}  // namespace arcadia::model
