// Property values on architectural elements. The paper annotates elements
// with property lists (Section 2: "properties associated with a connector
// might define its protocol of interaction, or performance attributes").
// The value domain is shared with bus notifications — gauges report model
// properties, so using one Value type keeps that path conversion-free.
#pragma once

#include "events/value.hpp"

namespace arcadia::model {

using PropertyValue = events::Value;

}  // namespace arcadia::model
