// The crash-recovery seam: a CrashPlan lists seeded sim-times at which the
// recovery runner kills the framework (durability plane abandoned —
// unsynced journal tail lost, exactly like a kill -9) and restarts it from
// durable state. A point may instead target the next snapshot after its
// time, crashing between the snapshot's tmp write and its rename — the
// nastiest window the atomic-replace protocol has.
//
// CrashSignal is deliberately NOT an arcadia::Error: the repair engine and
// plan executor catch `const Error&` to convert operator failures into
// plan aborts, and a simulated process death must tear through those
// handlers, not be absorbed by them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/deterministic_rng.hpp"
#include "util/units.hpp"

namespace arcadia::fault {

/// Thrown to simulate the process dying; escapes every `catch (const
/// arcadia::Error&)` on the stack by design.
struct CrashSignal {
  SimTime at;
  std::string reason;
};

struct CrashPoint {
  SimTime at;
  /// Crash inside the first snapshot at or after `at` (between tmp write
  /// and rename) instead of exactly at `at`.
  bool mid_snapshot = false;
};

/// A seeded schedule of crash points, sorted by time. Drawn from its own
/// Rng so crash grids sweep independently of workload and fault seeds.
struct CrashPlan {
  std::vector<CrashPoint> points;

  bool empty() const { return points.empty(); }

  /// `count` crash times uniform in [earliest, latest), sorted; every
  /// `mid_snapshot_every`-th point (1-based) targets a snapshot window.
  static CrashPlan seeded(std::uint64_t seed, std::size_t count,
                          SimTime earliest, SimTime latest,
                          std::size_t mid_snapshot_every = 0) {
    CrashPlan plan;
    Rng rng(seed ^ 0xC7A5D0DEULL);
    const double span = (latest - earliest).as_seconds();
    for (std::size_t i = 0; i < count; ++i) {
      CrashPoint point;
      point.at = earliest +
                 SimTime::seconds(span > 0.0 ? rng.uniform() * span : 0.0);
      point.mid_snapshot =
          mid_snapshot_every > 0 && ((i + 1) % mid_snapshot_every) == 0;
      plan.points.push_back(point);
    }
    std::sort(plan.points.begin(), plan.points.end(),
              [](const CrashPoint& a, const CrashPoint& b) {
                return a.at < b.at;
              });
    return plan;
  }
};

}  // namespace arcadia::fault
