// FaultyBus: an EventBus decorator that injects monitoring-seam faults on
// the bus path. Only *report* traffic (probe observations and gauge
// reports) is eligible — control traffic (gauge lifecycle, repair-plan
// events) always passes through, matching the failure model: the lossy
// substrate is the shared monitoring network, not the manager's own
// control channel.
//
// Drop:      the notification vanishes (subscribers never see it).
// Duplicate: delivered twice (Siena at-least-once semantics under retry).
// Delay:     delivered once, after an extra plane-drawn delay on top of
//            whatever the inner bus's delay model adds.
//
// Single-threaded like SimEventBus — publish runs on the simulator thread,
// so fault draws land in deterministic event order.
#pragma once

#include <memory>

#include "events/bus.hpp"
#include "fault/fault_plane.hpp"
#include "sim/simulator.hpp"

namespace arcadia::fault {

class FaultyBus : public events::EventBus {
 public:
  FaultyBus(sim::Simulator& sim, events::EventBus& inner, FaultPlane& plane)
      : sim_(sim), inner_(inner), plane_(plane) {}

  events::SubscriptionId subscribe(events::Filter filter,
                                   events::Handler handler,
                                   sim::NodeId subscriber_node) override {
    return inner_.subscribe(std::move(filter), std::move(handler),
                            subscriber_node);
  }
  using events::EventBus::subscribe;

  void unsubscribe(events::SubscriptionId id) override {
    inner_.unsubscribe(id);
  }

  void publish(events::Notification n) override;

  const events::BusStats& stats() const override { return inner_.stats(); }

  /// True for topics eligible for injection (probe.* and gauge.report).
  static bool faultable_topic(util::Symbol topic);

 private:
  sim::Simulator& sim_;
  events::EventBus& inner_;
  FaultPlane& plane_;
};

}  // namespace arcadia::fault
