#include "fault/fault_plane.hpp"

#include <string>

#include "util/error.hpp"

namespace arcadia::fault {

namespace {
// Stream ids for the per-seam forks; arbitrary but fixed — changing them
// changes every faulted run byte-for-byte.
constexpr std::uint64_t kBusStream = 1;
constexpr std::uint64_t kChannelStream = 2;
constexpr std::uint64_t kRepairStream = 3;
constexpr std::uint64_t kFleetStream = 4;
}  // namespace

FaultPlane::FaultPlane(sim::Simulator& sim, FaultProfile profile)
    : sim_(sim),
      profile_(profile),
      bus_rng_(0),
      channel_rng_(0),
      repair_rng_(0),
      fleet_rng_(0) {
  Rng root(profile_.seed);
  bus_rng_ = root.fork(kBusStream);
  channel_rng_ = root.fork(kChannelStream);
  repair_rng_ = root.fork(kRepairStream);
  fleet_rng_ = root.fork(kFleetStream);
}

bool FaultPlane::monitoring_active() const {
  const MonitoringFaults& m = profile_.monitoring;
  return m.report_loss > 0.0 || m.report_dup > 0.0 || m.report_delay > 0.0;
}

BusFault FaultPlane::next_report_fault() {
  if (!profile_.enabled || !monitoring_active()) return {};
  const MonitoringFaults& m = profile_.monitoring;
  // One uniform draw decides the fate; the rates partition [0, 1). This
  // keeps the stream consumption rate fixed at one draw per report, so
  // sweeping the loss rate does not shift the delay-draw sequence.
  const double u = bus_rng_.uniform();
  if (u < m.report_loss) {
    ++stats_.reports_dropped;
    return {BusFaultAction::Drop, SimTime::zero()};
  }
  if (u < m.report_loss + m.report_dup) {
    ++stats_.reports_duplicated;
    return {BusFaultAction::Duplicate, SimTime::zero()};
  }
  if (u < m.report_loss + m.report_dup + m.report_delay) {
    ++stats_.reports_delayed;
    const double span = (m.delay_max - m.delay_min).as_seconds();
    const SimTime extra =
        m.delay_min + SimTime::seconds(span > 0.0 ? bus_rng_.uniform() * span
                                                  : 0.0);
    return {BusFaultAction::Delay, extra};
  }
  return {};
}

bool FaultPlane::channel_down(util::Symbol gauge_id) {
  if (!profile_.enabled) return false;
  if (const SimTime* until = down_until_.find(gauge_id)) {
    if (sim_.now() < *until) {
      ++stats_.reports_suppressed;
      return true;
    }
    // The window expired: close it, so the open-window gauge reflects
    // reality and a fresh hazard draw below may open a new one.
    down_until_.erase(gauge_id);
    if (stats_.channels_disconnected > 0) --stats_.channels_disconnected;
  }
  const double hazard = profile_.monitoring.channel_disconnect;
  if (hazard > 0.0 && channel_rng_.bernoulli(hazard)) {
    const MonitoringFaults& m = profile_.monitoring;
    const double span = (m.disconnect_max - m.disconnect_min).as_seconds();
    const SimTime window =
        m.disconnect_min +
        SimTime::seconds(span > 0.0 ? channel_rng_.uniform() * span : 0.0);
    down_until_.insert_or_assign(gauge_id, sim_.now() + window);
    ++stats_.channel_disconnects;
    ++stats_.channels_disconnected;
    ++stats_.reports_suppressed;
    return true;
  }
  return false;
}

void FaultPlane::force_channel_down(util::Symbol gauge_id, SimTime until) {
  const SimTime* existing = down_until_.find(gauge_id);
  const bool was_open = existing != nullptr && sim_.now() < *existing;
  const bool was_stale = existing != nullptr && !was_open;
  down_until_.insert_or_assign(gauge_id, until);
  // An open window just gets its deadline moved; a stale (expired, never
  // closed) entry is replaced — its count carries over to the new window.
  // Only a genuinely new window bumps the gauge.
  if (!was_open && !was_stale) ++stats_.channels_disconnected;
}

void FaultPlane::finalize(SimTime now) {
  (void)now;
  // Every remaining entry is either expired (never touched again after its
  // window lapsed) or straddles the horizon; both close now. Clearing the
  // map keeps finalize idempotent and consumes no RNG, so calling it
  // before a stats copy cannot perturb determinism.
  down_until_.clear();
  stats_.channels_disconnected = 0;
}

std::vector<Rng::State> FaultPlane::rng_states() const {
  return {bus_rng_.save_state(), channel_rng_.save_state(),
          repair_rng_.save_state(), fleet_rng_.save_state()};
}

void FaultPlane::restore_rng_states(const std::vector<Rng::State>& states) {
  if (states.size() != 4) {
    throw Error("FaultPlane::restore_rng_states: expected 4 streams, got " +
                std::to_string(states.size()));
  }
  bus_rng_.restore_state(states[0]);
  channel_rng_.restore_state(states[1]);
  repair_rng_.restore_state(states[2]);
  fleet_rng_.restore_state(states[3]);
}

std::uint64_t FaultPlane::state_digest() const {
  // FNV-1a over the stream positions and draw counters, in fixed order.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const Rng::State& s : rng_states()) {
    for (std::uint64_t word : s.s) mix(word);
    mix(s.have_spare ? 1 : 0);
  }
  mix(stats_.reports_dropped);
  mix(stats_.reports_duplicated);
  mix(stats_.reports_delayed);
  mix(stats_.channel_disconnects);
  mix(stats_.reports_suppressed);
  mix(stats_.ops_transient);
  mix(stats_.ops_permanent);
  mix(stats_.ops_stalled);
  mix(stats_.tenant_crashes);
  return h;
}

OpFault FaultPlane::next_op_fault() {
  if (!profile_.enabled) return OpFault::None;
  const RepairFaults& r = profile_.repair;
  if (r.op_transient <= 0.0 && r.op_permanent <= 0.0 && r.op_stall <= 0.0) {
    return OpFault::None;
  }
  const SimTime now = sim_.now();
  const bool in_permanent_window = r.op_permanent > 0.0 &&
                                   now >= r.permanent_from &&
                                   now < r.permanent_until;
  // Fixed stream consumption: one draw per step regardless of the window,
  // so the permanent window shifts outcomes, not the draw sequence.
  const double u = repair_rng_.uniform();
  if (in_permanent_window && u < r.op_permanent) {
    ++stats_.ops_permanent;
    return OpFault::Permanent;
  }
  if (u < r.op_transient) {
    ++stats_.ops_transient;
    return OpFault::Transient;
  }
  if (u < r.op_transient + r.op_stall) {
    ++stats_.ops_stalled;
    return OpFault::Stall;
  }
  return OpFault::None;
}

SimTime FaultPlane::next_stall_extra() {
  const RepairFaults& r = profile_.repair;
  const double span = (r.stall_max - r.stall_min).as_seconds();
  return r.stall_min +
         SimTime::seconds(span > 0.0 ? repair_rng_.uniform() * span : 0.0);
}

bool FaultPlane::draw_tenant_crash(SimTime& at, SimTime& duration) {
  if (!profile_.enabled) return false;
  const FleetFaults& f = profile_.fleet;
  if (f.tenant_crash <= 0.0) return false;
  if (!fleet_rng_.bernoulli(f.tenant_crash)) return false;
  const double span = (f.crash_max - f.crash_min).as_seconds();
  at = f.crash_min +
       SimTime::seconds(span > 0.0 ? fleet_rng_.uniform() * span : 0.0);
  duration = f.crash_duration;
  return true;
}

}  // namespace arcadia::fault
