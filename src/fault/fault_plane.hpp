// FaultPlane: the stochastic half of fault injection. One plane per
// framework instance, seeded from FaultProfile::seed, with an independent
// forked Rng stream per seam (bus faults, channel disconnects, operator
// faults, fleet crashes) so sweeping one fault rate does not perturb the
// draw sequences of the others.
//
// Determinism contract: every draw happens on the simulator thread, in
// simulator event order — fault decisions are a pure function of
// (profile, seed, event order), so the same fault seed produces
// bit-identical runs whether the fleet sweeps with 1 thread or N (the
// parallel detect phase never touches the plane).
#pragma once

#include <vector>

#include "fault/profile.hpp"
#include "sim/simulator.hpp"
#include "util/deterministic_rng.hpp"
#include "util/symbol.hpp"

namespace arcadia::fault {

/// Injection counters, one per fault kind (for reports and tests).
struct FaultPlaneStats {
  std::uint64_t reports_dropped = 0;     ///< lost on the bus path
  std::uint64_t reports_duplicated = 0;
  std::uint64_t reports_delayed = 0;
  std::uint64_t channel_disconnects = 0; ///< disconnect windows opened
  std::uint64_t reports_suppressed = 0;  ///< dropped at source: channel down
  std::uint64_t ops_transient = 0;       ///< retryable operator failures
  std::uint64_t ops_permanent = 0;       ///< non-retryable operator failures
  std::uint64_t ops_stalled = 0;         ///< operator cost inflations
  std::uint64_t tenant_crashes = 0;
  /// Disconnect windows currently open — a gauge, not a counter. Windows
  /// close when their channel is next touched after expiry, or at
  /// FaultPlane::finalize (so windows straddling the horizon do not stay
  /// "open" in end-of-run stats).
  std::uint64_t channels_disconnected = 0;
};

/// What the bus should do with one report notification.
enum class BusFaultAction { Deliver, Drop, Duplicate, Delay };
struct BusFault {
  BusFaultAction action = BusFaultAction::Deliver;
  SimTime delay;  ///< extra delivery delay when action == Delay
};

/// What the translator should do with one runtime step.
enum class OpFault { None, Transient, Permanent, Stall };

class FaultPlane {
 public:
  FaultPlane(sim::Simulator& sim, FaultProfile profile);

  const FaultProfile& profile() const { return profile_; }

  /// Monitoring seam, bus path: draw the fate of one report notification.
  /// Consumes the bus stream even when all monitoring rates are zero is
  /// avoided — a profile with no monitoring faults never draws.
  BusFault next_report_fault();

  /// Monitoring seam, channel path: is this gauge's reporting channel in a
  /// disconnect window right now? Each call outside a window also rolls
  /// the disconnect hazard and may open a new window.
  bool channel_down(util::Symbol gauge_id);

  /// Force a channel dark until `until` (tenant crash uses this to take
  /// every channel down at once).
  void force_channel_down(util::Symbol gauge_id, SimTime until);

  /// Repair seam: draw the fate of one runtime-operator step.
  OpFault next_op_fault();

  /// Extra cost for a stalled operator (consumes the repair stream).
  SimTime next_stall_extra();

  /// Fleet seam: one draw per tenant — crash this run? Fills the crash
  /// time and outage duration when it returns true.
  bool draw_tenant_crash(SimTime& at, SimTime& duration);
  void count_tenant_crash() { ++stats_.tenant_crashes; }

  const FaultPlaneStats& stats() const { return stats_; }

  /// Close every disconnect window that has expired or straddles `now`:
  /// the end-of-run stats sweep. Idempotent; the experiment runner calls
  /// it before copying stats and again at teardown.
  void finalize(SimTime now);

  /// The four per-seam stream positions (bus, channel, repair, fleet), in
  /// that fixed order — what the durability plane checkpoints so a crash
  /// dump records exactly where each fault stream stood.
  std::vector<Rng::State> rng_states() const;
  /// Restore positions captured by rng_states(); throws arcadia::Error on
  /// a stream-count mismatch.
  void restore_rng_states(const std::vector<Rng::State>& states);

  /// Order-sensitive fingerprint of every stream position plus the draw
  /// counters: two planes digest equal iff they made the same draws in the
  /// same order. The sharded-kernel determinism tests compare this across
  /// simulation-thread counts — fault sequences must be a pure function of
  /// the shard's event stream, never of which worker ran the window.
  std::uint64_t state_digest() const;

 private:
  bool monitoring_active() const;

  sim::Simulator& sim_;
  FaultProfile profile_;
  Rng bus_rng_;
  Rng channel_rng_;
  Rng repair_rng_;
  Rng fleet_rng_;
  util::SymbolMap<SimTime> down_until_;
  FaultPlaneStats stats_;
};

}  // namespace arcadia::fault
