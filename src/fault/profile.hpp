// Fault profiles: the declarative half of the fault plane. A profile is
// plain data carried by ScenarioConfig (so fault grids are part of the
// experiment configuration, sweepable and replayable), describing fault
// rates at the three injection seams:
//   monitoring — probe/gauge report loss, duplication, delay, and
//                per-channel disconnect windows on the bus path;
//   repair     — transient/permanent runtime-operator failures and stalls
//                in the Translator;
//   fleet      — tenant crash/restart windows (every gauge channel of the
//                tenant goes dark, then comes back).
// All randomness is drawn by the FaultPlane from streams forked off
// `seed` — the profile itself holds no generator state.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace arcadia::fault {

/// Monitoring-seam knobs. Probabilities are per published report (loss,
/// duplication, delay) or per report send attempt (channel disconnect
/// hazard); a tripped disconnect silences that gauge's channel for a
/// window drawn from [disconnect_min, disconnect_max].
struct MonitoringFaults {
  double report_loss = 0.0;        ///< P(drop) per report on the bus
  double report_dup = 0.0;         ///< P(duplicate delivery) per report
  double report_delay = 0.0;       ///< P(extra delivery delay) per report
  SimTime delay_min = SimTime::seconds(1);
  SimTime delay_max = SimTime::seconds(5);
  double channel_disconnect = 0.0; ///< per-send hazard of a disconnect
  SimTime disconnect_min = SimTime::seconds(10);
  SimTime disconnect_max = SimTime::seconds(30);
};

/// Repair-seam knobs. Transient failures throw repair::OpError(Transient)
/// before any operator runs (retryable); inside the permanent window the
/// same draw escalates to OpError(Permanent) (not retryable). A stall lets
/// the operators run but inflates their cost by a draw from
/// [stall_min, stall_max] — the op "hangs", which is what per-op timeouts
/// are for.
struct RepairFaults {
  double op_transient = 0.0;  ///< P(transient failure) per runtime step
  double op_permanent = 0.0;  ///< P(permanent failure) inside the window
  SimTime permanent_from = SimTime::zero();   ///< window start
  SimTime permanent_until = SimTime::zero();  ///< window end (0,0 = never)
  double op_stall = 0.0;      ///< P(stall) per runtime step
  SimTime stall_min = SimTime::seconds(20);
  SimTime stall_max = SimTime::seconds(40);
};

/// Fleet-seam knobs. Each tenant draws once whether it crashes this run;
/// a crashed tenant's gauge channels all go dark at a time drawn from
/// [crash_min, crash_max] and recover after crash_duration (the watchdog
/// marks its elements suspect meanwhile, and sustained silence walks the
/// shard through degraded -> quarantined).
struct FleetFaults {
  double tenant_crash = 0.0;  ///< P(this tenant crashes once)
  SimTime crash_min = SimTime::seconds(60);
  SimTime crash_max = SimTime::seconds(180);
  SimTime crash_duration = SimTime::seconds(60);
};

/// A complete fault profile. `enabled == false` (the default) means the
/// fault plane is not even constructed — zero overhead and bit-identical
/// behavior to pre-fault builds.
struct FaultProfile {
  bool enabled = false;
  /// Seed of the fault plane's root stream; per-seam streams are forked
  /// from it. Independent from the scenario's workload seed so fault grids
  /// can sweep one without perturbing the other.
  std::uint64_t seed = 0xFA117C0DEULL;
  MonitoringFaults monitoring;
  RepairFaults repair;
  FleetFaults fleet;
};

}  // namespace arcadia::fault
