#include "fault/faulty_bus.hpp"

#include "monitor/topics.hpp"

namespace arcadia::fault {

bool FaultyBus::faultable_topic(util::Symbol topic) {
  using namespace monitor::topics;
  return topic == kGaugeReportSym || topic == kProbeLatencySym ||
         topic == kProbeQueueSym || topic == kProbeBandwidthSym ||
         topic == kProbeUtilizationSym || topic == kProbeMethodCallSym;
}

void FaultyBus::publish(events::Notification n) {
  if (!faultable_topic(n.topic)) {
    inner_.publish(std::move(n));
    return;
  }
  const BusFault fault = plane_.next_report_fault();
  switch (fault.action) {
    case BusFaultAction::Drop:
      return;
    case BusFaultAction::Duplicate: {
      events::Notification copy = n;
      inner_.publish(std::move(copy));
      inner_.publish(std::move(n));
      return;
    }
    case BusFaultAction::Delay: {
      auto payload = std::make_shared<events::Notification>(std::move(n));
      sim_.schedule_in(fault.delay, [this, payload] {
        inner_.publish(std::move(*payload));
      });
      return;
    }
    case BusFaultAction::Deliver:
      break;
  }
  inner_.publish(std::move(n));
}

}  // namespace arcadia::fault
