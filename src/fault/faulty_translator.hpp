// FaultyTranslator: a repair::Translator decorator injecting repair-seam
// faults. Transient and Permanent faults throw a typed repair::OpError
// *before* delegating (the operator request never reached the runtime, so
// nothing needs compensating for this step); a Stall lets the inner
// translator apply the records and then inflates the returned cost — the
// operator "hangs", which the executor's per-op timeout detects and rolls
// back.
#pragma once

#include "fault/fault_plane.hpp"
#include "repair/plan.hpp"
#include "repair/retry.hpp"

namespace arcadia::fault {

class FaultyTranslator : public repair::Translator {
 public:
  FaultyTranslator(repair::Translator& inner, FaultPlane& plane)
      : inner_(inner), plane_(plane) {}

  SimTime apply(const std::vector<model::OpRecord>& records) override {
    switch (plane_.next_op_fault()) {
      case OpFault::Transient:
        throw repair::OpError(repair::OpErrorKind::Transient,
                              "injected transient operator failure");
      case OpFault::Permanent:
        throw repair::OpError(repair::OpErrorKind::Permanent,
                              "injected permanent operator failure");
      case OpFault::Stall:
        return inner_.apply(records) + plane_.next_stall_extra();
      case OpFault::None:
        break;
    }
    return inner_.apply(records);
  }

  SimTime estimate(const std::vector<model::OpRecord>& records) const override {
    return inner_.estimate(records);
  }

 private:
  repair::Translator& inner_;
  FaultPlane& plane_;
};

}  // namespace arcadia::fault
