// Per-shard journal staging for the sharded simulation kernel. Under
// SimCoordinator, a tenant's RepairEngine/ArchitectureManager emit journal
// records from whatever pool worker runs the shard's window — they cannot
// write to the shared DurabilityPlane directly (it is single-writer and its
// byte stream must not depend on worker interleaving). Each shard instead
// gets a private StagingSink that records calls verbatim, in emission order,
// tagged with a per-sink sequence number; at every window barrier the fleet
// drains all sinks through a k-way merge by (time, shard, seq) into the real
// plane. The merged order is a total order independent of the worker count,
// so journal bytes stay bit-identical for 1 vs N simulation threads — the
// sharded extension of the "parallel detect, ordered dispatch" contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "durability/sink.hpp"

namespace arcadia::durability {

/// Records every JournalSink call for later replay into a downstream sink.
/// Confined to one shard's lane between drains; drained (replayed and
/// cleared) only at coordinator barriers.
class StagingSink : public JournalSink {
 public:
  struct Record {
    enum class Kind : std::uint8_t { Ops, PlanEvent, GaugeApplied };
    Kind kind;
    std::uint32_t shard = 0;
    SimTime at;
    std::uint64_t seq = 0;  // emission order within this sink
    // Ops
    std::uint64_t repair_index = 0;  // also PlanEvent
    bool compensation = false;
    std::vector<model::OpRecord> ops;
    // PlanEvent
    std::string phase;
    std::uint64_t steps = 0;
    // GaugeApplied
    util::Symbol element;
    util::Symbol sub;
    util::Symbol property;
    events::Value value;
  };

  void on_ops(std::uint32_t shard, SimTime at, std::uint64_t repair_index,
              bool compensation,
              const std::vector<model::OpRecord>& ops) override {
    Record r;
    r.kind = Record::Kind::Ops;
    r.shard = shard;
    r.at = at;
    r.seq = next_seq_++;
    r.repair_index = repair_index;
    r.compensation = compensation;
    r.ops = ops;
    records_.push_back(std::move(r));
  }

  void on_plan_event(std::uint32_t shard, SimTime at, const std::string& phase,
                     std::uint64_t repair_index, std::uint64_t steps) override {
    Record r;
    r.kind = Record::Kind::PlanEvent;
    r.shard = shard;
    r.at = at;
    r.seq = next_seq_++;
    r.repair_index = repair_index;
    r.phase = phase;
    r.steps = steps;
    records_.push_back(std::move(r));
  }

  void on_gauge_applied(std::uint32_t shard, SimTime at, util::Symbol element,
                        util::Symbol sub, util::Symbol property,
                        const events::Value& value) override {
    Record r;
    r.kind = Record::Kind::GaugeApplied;
    r.shard = shard;
    r.at = at;
    r.seq = next_seq_++;
    r.element = element;
    r.sub = sub;
    r.property = property;
    r.value = value;
    records_.push_back(std::move(r));
  }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const Record& at(std::size_t i) const { return records_[i]; }

  /// Replay record `i` into `sink` (the real DurabilityPlane).
  void replay(std::size_t i, JournalSink& sink) const {
    const Record& r = records_[i];
    switch (r.kind) {
      case Record::Kind::Ops:
        sink.on_ops(r.shard, r.at, r.repair_index, r.compensation, r.ops);
        break;
      case Record::Kind::PlanEvent:
        sink.on_plan_event(r.shard, r.at, r.phase, r.repair_index, r.steps);
        break;
      case Record::Kind::GaugeApplied:
        sink.on_gauge_applied(r.shard, r.at, r.element, r.sub, r.property,
                              r.value);
        break;
    }
  }

  void clear() { records_.clear(); }

 private:
  std::vector<Record> records_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace arcadia::durability
