#include "durability/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <dirent.h>

#include <algorithm>

namespace arcadia::durability {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// fdatasync, not fsync: flushes the data and the metadata needed to read
/// it back (file size), skipping timestamp updates — the journal syncs on
/// every committed op batch, so the cheaper flush is the difference
/// between ~2% and ~10% steady-state overhead (BENCH_durability.json).
void fsync_fd(int fd, const std::string& path) {
  if (::fdatasync(fd) != 0) {
    throw DurabilityError("fdatasync " + path + ": " + errno_text());
  }
}

/// fsync the directory containing `path` so a rename is durable.
void fsync_parent(const std::string& path) {
  std::string dir = ".";
  if (const auto slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throw DurabilityError("open dir " + dir + ": " + errno_text());
  }
  // Some filesystems reject fsync on directories; a failed directory sync
  // is not an integrity violation (the rename itself succeeded).
  ::fsync(fd);
  ::close(fd);
}

void write_all(int fd, const std::string& path, const void* data,
               std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DurabilityError("write " + path + ": " + errno_text());
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
}

}  // namespace

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendFile::create(const std::string& path) {
  if (fd_ >= 0) throw DurabilityError("AppendFile already open: " + path_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) throw DurabilityError("create " + path + ": " + errno_text());
  path_ = path;
  written_ = 0;
}

void AppendFile::append(const void* data, std::size_t size) {
  if (fd_ < 0) throw DurabilityError("append to closed file: " + path_);
  write_all(fd_, path_, data, size);
  written_ += size;
}

void AppendFile::sync() {
  if (fd_ < 0) throw DurabilityError("sync of closed file: " + path_);
  fsync_fd(fd_, path_);
}

void AppendFile::close() {
  if (fd_ < 0) return;
  fsync_fd(fd_, path_);
  ::close(fd_);
  fd_ = -1;
}

void AppendFile::abandon() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

bool file_exists(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw DurabilityError("open " + path + ": " + errno_text());
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw DurabilityError("read " + path + ": " + errno_text());
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  return bytes;
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes,
                       const std::function<void()>& between) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw DurabilityError("create " + tmp + ": " + errno_text());
  try {
    write_all(fd, tmp, bytes.data(), bytes.size());
    fsync_fd(fd, tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (between) between();  // mid-snapshot crash point: .tmp durable, no rename
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw DurabilityError("rename " + tmp + " -> " + path + ": " +
                          errno_text());
  }
  fsync_parent(path);
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return;
  if (errno == EEXIST) {
    struct ::stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) return;
  }
  throw DurabilityError("mkdir " + path + ": " + errno_text());
}

std::vector<std::string> list_dir(const std::string& path) {
  ::DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    throw DurabilityError("opendir " + path + ": " + errno_text());
  }
  std::vector<std::string> names;
  while (const ::dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (file_exists(path + "/" + name)) names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    throw DurabilityError("unlink " + path + ": " + errno_text());
  }
}

}  // namespace arcadia::durability
