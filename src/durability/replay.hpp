// Journal replay: reconstruct the architectural model at any LSN or
// sim-time from a snapshot's model encoding plus the journal's committed
// history — without running the simulation. Works because the journal
// captures every model mutation at its three commit points (repair engine
// execute, compensation revert, Applied gauge folds); see DESIGN.md §8.
// Shared by tools/arcreplay and the durability tests.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "durability/journal.hpp"
#include "model/system.hpp"

namespace arcadia::durability {

struct ReplayOptions {
  /// Stop after applying the record with this LSN (inclusive).
  std::uint64_t to_lsn = std::numeric_limits<std::uint64_t>::max();
  /// Stop before the first record newer than this sim-time.
  SimTime to_time = SimTime::infinity();
  /// Shard whose model is being reconstructed (solo runs journal shard 0).
  std::uint32_t shard = 0;
};

struct ReplayStats {
  std::uint64_t records_applied = 0;  ///< op/gauge batches folded in
  std::uint64_t ops_applied = 0;
  std::uint64_t gauge_writes = 0;
  std::uint64_t last_lsn = 0;  ///< newest record consumed (any type)
  SimTime last_time;
};

/// Fold the journal into `system` in LSN order. OpBatch records replay
/// through a model::Transaction (compensation batches are already inverse
/// ops — they apply the same way); GaugeBatch deltas write properties
/// directly, mirroring the architecture manager's Applied fold. Other
/// record types advance the cursor only. Throws DurabilityError on a gauge
/// delta naming a missing element (a journal/model mismatch).
ReplayStats replay_journal(model::System& system,
                           const std::vector<JournalRecord>& records,
                           const ReplayOptions& options = {});

}  // namespace arcadia::durability
