// The journal-emission seam. RepairEngine and ArchitectureManager hold a
// JournalSink pointer (null when durability is off — zero overhead, no
// behavioral change); the DurabilityPlane implements it. All calls happen
// on the simulation thread — the fleet's "parallel detect, ordered
// dispatch" contract means commits land in shard order, so journal bytes
// are identical for any sweep-thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "events/value.hpp"
#include "model/transaction.hpp"
#include "util/symbol.hpp"
#include "util/units.hpp"

namespace arcadia::durability {

class JournalSink {
 public:
  virtual ~JournalSink() = default;

  /// A committed transaction's op records (the engine's execute commit, or
  /// a plan-abort compensation batch when `compensation`).
  virtual void on_ops(std::uint32_t shard, SimTime at,
                      std::uint64_t repair_index, bool compensation,
                      const std::vector<model::OpRecord>& ops) = 0;

  /// A plan lifecycle transition (phase = monitor::topics symbol text).
  virtual void on_plan_event(std::uint32_t shard, SimTime at,
                             const std::string& phase,
                             std::uint64_t repair_index,
                             std::uint64_t steps) = 0;

  /// One applied gauge-report delta (dead-banded Unchanged results are not
  /// reported — only writes that changed the model). Identities are the
  /// model's interned symbols: this is a per-report hot path, and passing
  /// ids instead of strings keeps it allocation-free.
  virtual void on_gauge_applied(std::uint32_t shard, SimTime at,
                                util::Symbol element, util::Symbol sub,
                                util::Symbol property,
                                const events::Value& value) = 0;
};

}  // namespace arcadia::durability
