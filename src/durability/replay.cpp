#include "durability/replay.hpp"

#include "durability/io.hpp"
#include "model/transaction.hpp"
#include "util/symbol.hpp"

namespace arcadia::durability {

namespace {

void apply_gauge_delta(model::System& system, const GaugeDelta& delta) {
  const util::Symbol element = util::Symbol::intern(delta.element);
  const util::Symbol property = util::Symbol::intern(delta.property);
  model::Element* target = nullptr;
  if (delta.sub.empty()) {
    if (system.has_component(element)) target = &system.component(element);
  } else {
    const util::Symbol role = util::Symbol::intern(delta.sub);
    if (system.has_connector(element)) {
      model::Connector& conn = system.connector(element);
      if (conn.has_role(role)) target = &conn.role(role);
    }
  }
  if (target == nullptr) {
    throw DurabilityError("replay: gauge delta names missing element '" +
                          delta.element +
                          (delta.sub.empty() ? "" : "." + delta.sub) +
                          "' — journal does not match this model");
  }
  target->set_property(property, delta.value);
}

}  // namespace

ReplayStats replay_journal(model::System& system,
                           const std::vector<JournalRecord>& records,
                           const ReplayOptions& options) {
  ReplayStats stats;
  for (const JournalRecord& record : records) {
    if (record.lsn > options.to_lsn) break;
    if (record.at > options.to_time) break;
    stats.last_lsn = record.lsn;
    stats.last_time = record.at;
    switch (record.type) {
      case RecordType::OpBatch: {
        if (record.shard != options.shard) break;
        model::Transaction txn(system);
        for (const model::OpRecord& op : record.ops) {
          model::apply_op(txn, op);
          ++stats.ops_applied;
        }
        txn.commit();
        ++stats.records_applied;
        break;
      }
      case RecordType::GaugeBatch: {
        if (record.shard != options.shard) break;
        for (const GaugeDelta& delta : record.gauges) {
          apply_gauge_delta(system, delta);
          ++stats.gauge_writes;
        }
        ++stats.records_applied;
        break;
      }
      case RecordType::PlanEvent:
      case RecordType::RngPositions:
      case RecordType::SnapshotMark:
        break;  // cursor-only: no model effect
    }
  }
  return stats;
}

}  // namespace arcadia::durability
