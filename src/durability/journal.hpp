// The write-ahead journal: an append-only, CRC-framed binary log of every
// committed model mutation, plan lifecycle event, applied gauge delta, and
// fault-plane RNG checkpoint, keyed by (monotonic LSN, sim-time, shard).
//
// File layout:
//   header  "ARCJ" + u32 format version
//   frame*  [u32 payload_len][u32 crc32(payload)][payload]
//   payload u8 record_type, u64 lsn, i64 sim_time_us, u32 shard, body
//
// The reader validates frames in order and stops at the first torn or
// corrupt one, returning the valid prefix plus a warning — a torn tail is
// an expected crash artifact, never an error. Because every model mutation
// flows through exactly three commit points (engine execute, compensation
// revert, gauge apply), replaying OpBatch + GaugeBatch records through a
// snapshot-0 model reconstructs the model at any LSN without running the
// simulation; that is what tools/arcreplay does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "durability/codec.hpp"
#include "durability/io.hpp"
#include "events/value.hpp"
#include "model/transaction.hpp"
#include "util/deterministic_rng.hpp"
#include "util/units.hpp"

namespace arcadia::durability {

inline constexpr char kJournalMagic[4] = {'A', 'R', 'C', 'J'};
inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderSize = 8;
/// Journal file name inside a durability directory.
inline constexpr const char* kJournalFile = "journal.arcj";

enum class RecordType : std::uint8_t {
  OpBatch = 1,       ///< one committed transaction (repair or compensation)
  PlanEvent = 2,     ///< plan lifecycle transition (started/completed/...)
  GaugeBatch = 3,    ///< applied gauge-report property deltas, batched
  RngPositions = 4,  ///< fault-plane stream positions (pre-snapshot)
  SnapshotMark = 5,  ///< a snapshot file became durable
};

const char* to_string(RecordType type);

/// One applied gauge delta: `element`(.`sub`).`property` = `value` at `at`.
/// `sub` is a connector role name or empty for component targets.
struct GaugeDelta {
  SimTime at;
  std::string element;
  std::string sub;
  std::string property;
  events::Value value;
};

/// A decoded journal record. Which fields are meaningful depends on `type`
/// (the unused ones stay default-constructed; the codec writes only the
/// fields of the record's own type).
struct JournalRecord {
  RecordType type = RecordType::OpBatch;
  std::uint64_t lsn = 0;
  SimTime at;
  std::uint32_t shard = 0;

  // OpBatch
  std::uint64_t repair_index = 0;  ///< RepairEngine record index
  bool compensation = false;       ///< true for plan-abort inverse batches
  std::vector<model::OpRecord> ops;

  // PlanEvent
  std::string phase;        ///< monitor::topics phase symbol text
  std::uint64_t plan_steps = 0;

  // GaugeBatch
  std::vector<GaugeDelta> gauges;

  // RngPositions
  std::vector<Rng::State> rng_streams;

  // SnapshotMark
  std::uint64_t snapshot_lsn = 0;
  std::string snapshot_file;
  std::uint64_t model_digest = 0;
};

/// Encode one record as a complete frame (len + crc + payload).
std::vector<std::uint8_t> encode_frame(const JournalRecord& record);

/// The 8-byte journal header.
std::vector<std::uint8_t> journal_header();

struct JournalReadResult {
  std::vector<JournalRecord> records;
  /// Byte length of the valid prefix (header + intact frames); the torn
  /// tail, if any, is everything past this offset.
  std::uint64_t valid_bytes = 0;
  bool torn = false;
  std::string warning;  ///< human-readable torn/corrupt diagnosis ("" = clean)
};

/// Decode as many intact frames as the bytes hold. Throws DurabilityError
/// only for a bad header (not a journal at all); torn tails and CRC
/// mismatches are reported via `torn`/`warning`.
JournalReadResult read_journal_bytes(const std::vector<std::uint8_t>& bytes);

/// read_file + read_journal_bytes.
JournalReadResult read_journal(const std::string& path);

}  // namespace arcadia::durability
