// Canonical binary encoding of the architectural model. The walk order is
// deterministic by construction — components/connectors iterate name-sorted
// (SymbolMap), properties name-sorted, attachments in insertion order
// (itself deterministic under replay) — so two equal models produce equal
// bytes and `system_digest` can stand in for deep comparison in oracles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/codec.hpp"
#include "model/system.hpp"

namespace arcadia::durability {

void encode_system(Encoder& enc, const model::System& sys);
std::vector<std::uint8_t> encode_system(const model::System& sys);

std::unique_ptr<model::System> decode_system(Decoder& dec);
std::unique_ptr<model::System> decode_system(
    const std::vector<std::uint8_t>& bytes);

/// FNV-1a over the canonical encoding.
std::uint64_t system_digest(const model::System& sys);

/// Human-readable structural/property differences, "" when identical
/// (arcreplay's snapshot-vs-replay diff).
std::string diff_systems(const model::System& a, const model::System& b);

}  // namespace arcadia::durability
