// Binary codec for the durability plane: little-endian fixed-width scalars,
// length-prefixed strings, tagged Values, and whole OpRecords. The encoding
// is deliberately positional and versioned at the container level (journal /
// snapshot headers carry the format version) rather than per-field, keeping
// frames compact — a steady-state gauge delta is a few dozen bytes.
//
// Determinism note: symbols encode as their interned TEXT, never their
// process-local ids, so journal bytes are stable across processes and the
// crash-recovery oracle can byte-compare journals from different runs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "events/value.hpp"
#include "model/transaction.hpp"
#include "util/units.hpp"

namespace arcadia::durability {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range; the journal
/// frames every payload with one.
std::uint32_t crc32(const void* data, std::size_t size);

/// FNV-1a 64-bit — the model digest hash (cheap, dependency-free, stable).
std::uint64_t fnv1a(const void* data, std::size_t size);
inline std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  return fnv1a(bytes.data(), bytes.size());
}

/// Append-only byte builder.
class Encoder {
 public:
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);
  void sim_time(SimTime t) { i64(t.as_micros()); }
  void value(const events::Value& v);
  void op(const model::OpRecord& op);
  void raw(const std::vector<std::uint8_t>& bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over an immutable byte range; every underrun or
/// bad tag throws DurabilityError (callers treat that as a torn/corrupt
/// record, never as partial data).
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit Decoder(const std::vector<std::uint8_t>& bytes)
      : Decoder(bytes.data(), bytes.size()) {}

  bool done() const { return p_ == end_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();
  SimTime sim_time() { return SimTime::micros(i64()); }
  events::Value value();
  model::OpRecord op();

 private:
  void need(std::size_t n) const;
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace arcadia::durability
