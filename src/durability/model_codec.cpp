#include "durability/model_codec.hpp"

#include <sstream>

#include "durability/io.hpp"

namespace arcadia::durability {

namespace {

void encode_element_common(Encoder& enc, const model::Element& el) {
  enc.str(el.name());
  enc.str(el.type_name());
  enc.u32(static_cast<std::uint32_t>(el.properties().size()));
  for (const auto& entry : el.properties()) {
    enc.str(entry.key.view());
    enc.value(entry.value);
  }
}

void decode_properties(Decoder& dec, model::Element& el) {
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string prop = dec.str();
    el.set_property(prop, dec.value());
  }
}

}  // namespace

void encode_system(Encoder& enc, const model::System& sys) {
  enc.str(sys.name());
  const auto components = sys.components();
  enc.u32(static_cast<std::uint32_t>(components.size()));
  for (const auto* comp : components) {
    encode_element_common(enc, *comp);
    const auto ports = comp->ports();
    enc.u32(static_cast<std::uint32_t>(ports.size()));
    for (const auto* port : ports) encode_element_common(enc, *port);
    enc.boolean(comp->has_representation());
    if (comp->has_representation()) {
      encode_system(enc, comp->representation_const());
    }
  }
  const auto connectors = sys.connectors();
  enc.u32(static_cast<std::uint32_t>(connectors.size()));
  for (const auto* conn : connectors) {
    encode_element_common(enc, *conn);
    const auto roles = conn->roles();
    enc.u32(static_cast<std::uint32_t>(roles.size()));
    for (const auto* role : roles) encode_element_common(enc, *role);
  }
  enc.u32(static_cast<std::uint32_t>(sys.attachments().size()));
  for (const auto& a : sys.attachments()) {
    enc.str(a.component);
    enc.str(a.port);
    enc.str(a.connector);
    enc.str(a.role);
  }
}

std::vector<std::uint8_t> encode_system(const model::System& sys) {
  Encoder enc;
  encode_system(enc, sys);
  return enc.take();
}

std::unique_ptr<model::System> decode_system(Decoder& dec) {
  auto sys = std::make_unique<model::System>(dec.str());
  const std::uint32_t components = dec.u32();
  for (std::uint32_t i = 0; i < components; ++i) {
    const std::string name = dec.str();
    const std::string type = dec.str();
    model::Component& comp = sys->add_component(name, type);
    decode_properties(dec, comp);
    const std::uint32_t ports = dec.u32();
    for (std::uint32_t p = 0; p < ports; ++p) {
      const std::string port_name = dec.str();
      const std::string port_type = dec.str();
      decode_properties(dec, comp.add_port(port_name, port_type));
    }
    if (dec.boolean()) {
      std::unique_ptr<model::System> rep = decode_system(dec);
      model::System& target = comp.representation();  // creates empty
      target = std::move(*rep);
    }
  }
  const std::uint32_t connectors = dec.u32();
  for (std::uint32_t i = 0; i < connectors; ++i) {
    const std::string name = dec.str();
    const std::string type = dec.str();
    model::Connector& conn = sys->add_connector(name, type);
    decode_properties(dec, conn);
    const std::uint32_t roles = dec.u32();
    for (std::uint32_t r = 0; r < roles; ++r) {
      const std::string role_name = dec.str();
      const std::string role_type = dec.str();
      decode_properties(dec, conn.add_role(role_name, role_type));
    }
  }
  const std::uint32_t attachments = dec.u32();
  for (std::uint32_t i = 0; i < attachments; ++i) {
    model::Attachment a;
    a.component = dec.str();
    a.port = dec.str();
    a.connector = dec.str();
    a.role = dec.str();
    sys->attach(a);
  }
  return sys;
}

std::unique_ptr<model::System> decode_system(
    const std::vector<std::uint8_t>& bytes) {
  Decoder dec(bytes);
  auto sys = decode_system(dec);
  if (!dec.done()) {
    throw DurabilityError("trailing bytes after model encoding");
  }
  return sys;
}

std::uint64_t system_digest(const model::System& sys) {
  const std::vector<std::uint8_t> bytes = encode_system(sys);
  return fnv1a(bytes);
}

namespace {

void diff_element(std::ostringstream& out, const std::string& path,
                  const model::Element& a, const model::Element& b) {
  if (a.type_name() != b.type_name()) {
    out << path << ": type " << a.type_name() << " vs " << b.type_name()
        << "\n";
  }
  for (const auto& entry : a.properties()) {
    const model::PropertyValue* other = b.properties().find(entry.key);
    if (other == nullptr) {
      out << path << "." << entry.key << ": only in first ("
          << entry.value.to_string() << ")\n";
    } else if (!(entry.value == *other)) {
      out << path << "." << entry.key << ": " << entry.value.to_string()
          << " vs " << other->to_string() << "\n";
    }
  }
  for (const auto& entry : b.properties()) {
    if (a.properties().find(entry.key) == nullptr) {
      out << path << "." << entry.key << ": only in second ("
          << entry.value.to_string() << ")\n";
    }
  }
}

void diff_systems_into(std::ostringstream& out, const std::string& prefix,
                       const model::System& a, const model::System& b) {
  for (const auto* comp : a.components()) {
    const std::string path = prefix + comp->name();
    if (!b.has_component(comp->name())) {
      out << path << ": only in first\n";
      continue;
    }
    const model::Component& other = b.component(comp->name());
    diff_element(out, path, *comp, other);
    for (const auto* port : comp->ports()) {
      if (!other.has_port(port->name())) {
        out << path << "." << port->name() << ": port only in first\n";
      } else {
        diff_element(out, path + "." + port->name(), *port,
                     other.port(port->name()));
      }
    }
    if (comp->has_representation() != other.has_representation()) {
      out << path << ": representation only in "
          << (comp->has_representation() ? "first" : "second") << "\n";
    } else if (comp->has_representation()) {
      diff_systems_into(out, path + "/", comp->representation_const(),
                        other.representation_const());
    }
  }
  for (const auto* comp : b.components()) {
    if (!a.has_component(comp->name())) {
      out << prefix << comp->name() << ": only in second\n";
    }
  }
  for (const auto* conn : a.connectors()) {
    const std::string path = prefix + conn->name();
    if (!b.has_connector(conn->name())) {
      out << path << ": only in first\n";
      continue;
    }
    const model::Connector& other = b.connector(conn->name());
    diff_element(out, path, *conn, other);
    for (const auto* role : conn->roles()) {
      if (!other.has_role(role->name())) {
        out << path << "." << role->name() << ": role only in first\n";
      } else {
        diff_element(out, path + "." + role->name(), *role,
                     other.role(role->name()));
      }
    }
  }
  for (const auto* conn : b.connectors()) {
    if (!a.has_connector(conn->name())) {
      out << prefix << conn->name() << ": only in second\n";
    }
  }
  // Attachments compare as sets (insertion order may differ when the same
  // structure was reached via different op interleavings).
  for (const auto& att : a.attachments()) {
    if (!b.attached(att.component, att.port, att.connector, att.role)) {
      out << prefix << att.component << "." << att.port << " -- "
          << att.connector << "." << att.role << ": attachment only in first\n";
    }
  }
  for (const auto& att : b.attachments()) {
    if (!a.attached(att.component, att.port, att.connector, att.role)) {
      out << prefix << att.component << "." << att.port << " -- "
          << att.connector << "." << att.role
          << ": attachment only in second\n";
    }
  }
}

}  // namespace

std::string diff_systems(const model::System& a, const model::System& b) {
  std::ostringstream out;
  diff_systems_into(out, "", a, b);
  return out.str();
}

}  // namespace arcadia::durability
