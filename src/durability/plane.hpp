// The durability plane: owns the journal writer, assigns LSNs, batches
// gauge deltas, writes snapshots, and — during recovery — verifies the
// re-executed run against the previous journal byte-for-byte.
//
// Recovery model (see DESIGN.md §8): runs are pure functions of
// (config, seed), so restore re-executes the simulation from t = 0. While
// re-executing, every frame the plane is about to append is compared
// against the surviving journal's valid prefix ("catchup verification");
// any mismatch throws RecoveryError — divergence means the config, code,
// or seed changed and the durable state cannot be trusted. Once the
// reference is exhausted the run seamlessly continues into new territory.
// This makes the crash oracle exact: a restored run's full journal equals
// the uncrashed run's journal as bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "durability/journal.hpp"
#include "durability/sink.hpp"
#include "durability/snapshot.hpp"

namespace arcadia::durability {

struct Options {
  /// Durability directory ("" disables the plane entirely).
  std::string dir;
  /// Snapshot cadence in sim-time (armed by Framework/Fleet).
  SimTime snapshot_period = SimTime::seconds(120);
  /// Newest snapshots kept on disk.
  std::size_t retention = 3;
  /// Distinct buffered gauge keys (across shards) before a forced flush.
  std::size_t gauge_batch_cap = 256;
  /// Group commit: op batches are appended immediately but fdatasync'd at
  /// most once per this much sim-time (zero = sync every batch). Crash
  /// recovery re-executes from t = 0 either way — a shorter synced prefix
  /// only means less catchup verification, never lost state — so the
  /// interval trades the durable-tail length against per-commit sync cost
  /// (~0.4 ms each; see BENCH_durability.json). flush() and close()
  /// always sync.
  SimTime sync_interval = SimTime::seconds(30);

  bool enabled() const { return !dir.empty(); }
};

class DurabilityPlane : public JournalSink {
 public:
  /// Creates `options.dir` if needed. When a journal already exists there,
  /// its valid prefix becomes the catchup reference (torn tails are
  /// truncated with a warning) and the file is rewritten from scratch by
  /// the re-executing run.
  explicit DurabilityPlane(Options options);
  ~DurabilityPlane() override;

  const Options& options() const { return options_; }
  std::string journal_path() const { return options_.dir + "/" + kJournalFile; }
  std::uint64_t last_lsn() const { return lsn_; }
  /// True while appends are still being verified against a prior journal.
  bool in_catchup() const { return ref_pos_ < reference_.size(); }
  /// Sim-time of the last record in the catchup reference (zero when none):
  /// the point up to which a restored run re-executes before resuming live.
  SimTime reference_horizon() const { return reference_horizon_; }
  std::uint64_t reference_last_lsn() const { return reference_last_lsn_; }
  /// Non-empty when the prior journal ended in a torn tail that was
  /// truncated to the last valid frame (also ARC_WARN-logged).
  const std::string& reference_warning() const { return reference_warning_; }

  // -- JournalSink (sim thread only)
  void on_ops(std::uint32_t shard, SimTime at, std::uint64_t repair_index,
              bool compensation,
              const std::vector<model::OpRecord>& ops) override;
  void on_plan_event(std::uint32_t shard, SimTime at, const std::string& phase,
                     std::uint64_t repair_index, std::uint64_t steps) override;
  void on_gauge_applied(std::uint32_t shard, SimTime at, util::Symbol element,
                        util::Symbol sub, util::Symbol property,
                        const events::Value& value) override;

  /// Flush buffered gauge batches (shard order), journal the RNG stream
  /// positions carried by the shards, write the snapshot atomically,
  /// append its SnapshotMark, fsync, and prune old snapshots. `shards`
  /// need not set lsn/at — the plane stamps them.
  void take_snapshot(SimTime at, std::vector<ShardSnapshot> shards);

  /// Arm the mid-snapshot crash: the hook runs inside the next
  /// take_snapshot between the tmp write and the rename. One-shot.
  void set_snapshot_crash_hook(std::function<void()> hook);
  void crash_next_snapshot() { crash_armed_ = true; }

  /// Flush gauge batches and fsync the journal (a durability point).
  void flush(SimTime at);
  /// flush + close the journal cleanly.
  void close(SimTime at);
  /// Drop everything without syncing — the crash seam's kill -9.
  void abandon();

  /// Bytes appended so far, including frames still in the pending buffer
  /// (diagnostics/bench).
  std::uint64_t journal_bytes() const {
    return writer_.bytes_written() + pending_.size();
  }
  std::uint64_t records_written() const { return records_written_; }
  /// Wall-clock spent inside the plane (encode + buffer + write + sync +
  /// snapshot I/O), accumulated per entry point. BENCH_durability.json
  /// gates on wall_s / run wall: an in-run ratio is immune to the
  /// machine-load drift that plagues back-to-back A/B wall comparisons.
  double wall_s() const { return wall_s_; }

 private:
  void append(JournalRecord record);
  void flush_gauges(SimTime at);
  void commit_pending();
  void verify_against_reference(const std::vector<std::uint8_t>& frame);

  Options options_;
  AppendFile writer_;
  /// Encoded frames not yet handed to the kernel. Writing only at group
  /// commit points collapses hundreds of small write(2)s per run into a
  /// handful, and makes abandon() a faithful kill -9: the un-written tail
  /// is really gone, not sitting in the page cache.
  std::vector<std::uint8_t> pending_;
  std::uint64_t lsn_ = 0;
  std::uint64_t records_written_ = 0;
  SimTime last_time_;  ///< newest record time seen (final-flush stamp)
  /// Sim-time of the last op-batch fdatasync; gates the group commit.
  SimTime last_sync_time_ = SimTime::seconds(-1);
  bool abandoned_ = false;

  // Catchup reference: the previous journal's valid prefix.
  std::vector<std::uint8_t> reference_;
  std::size_t ref_pos_ = 0;
  SimTime reference_horizon_;
  std::uint64_t reference_last_lsn_ = 0;
  std::string reference_warning_;

  /// A buffered gauge delta, coalesced per (element, sub, property): the
  /// batch carries only the newest applied value per key, so replay
  /// reconstructs the same model state at every batch boundary while the
  /// journal stays proportional to distinct gauges, not report rate.
  /// Symbols keep the per-report path allocation-free; text is rendered
  /// once at flush time.
  struct BufferedGauge {
    SimTime at;
    util::Symbol element;
    util::Symbol sub;
    util::Symbol property;
    events::Value value;
  };

  // Per-shard gauge delta buffers, flushed in shard order. Shard ids are
  // small and dense (tenant indices), so a vector indexed by shard works;
  // within a shard the distinct-key count is small (the tenant's deployed
  // gauges), so coalescing is a short linear scan in first-seen order —
  // deterministic, which the byte-identity oracle requires.
  std::vector<std::vector<BufferedGauge>> gauge_buffers_;
  std::size_t buffered_gauges_ = 0;

  std::function<void()> snapshot_crash_hook_;
  bool crash_armed_ = false;
  double wall_s_ = 0.0;
};

}  // namespace arcadia::durability
