// Durable file I/O: the single place in src/ allowed to touch the
// filesystem (arclint rule `durability-io` pins this). Two disciplines:
//   append   — AppendFile wraps an O_APPEND descriptor with explicit
//              fsync, for the write-ahead journal;
//   replace  — write_file_atomic writes <path>.tmp, fsyncs it, then
//              rename(2)s into place and fsyncs the directory, so a
//              reader never observes a half-written snapshot.
// Everything here is POSIX (::open/::write/::fsync/::rename); the rest of
// src/ must route file access through these helpers so the crash-matrix
// lane exercises one audited seam instead of scattered streams.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace arcadia::durability {

/// Durable-storage failures: unwritable directories, short reads, CRC
/// mismatches surfaced by the journal reader.
class DurabilityError : public Error {
 public:
  explicit DurabilityError(const std::string& what)
      : Error("DurabilityError: " + what) {}
};

/// Recovery failures: a restored run diverging from the on-disk journal,
/// manifest/config mismatches, restore from an empty directory.
class RecoveryError : public Error {
 public:
  explicit RecoveryError(const std::string& what)
      : Error("RecoveryError: " + what) {}
};

/// An append-only file descriptor with explicit durability points. close()
/// syncs; abandon() deliberately does not (the crash seam uses it to model
/// a kill -9: whatever was not yet fsynced is at the kernel's mercy).
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Create (truncating any previous file) and open for appending.
  void create(const std::string& path);
  void append(const void* data, std::size_t size);
  void append(const std::vector<std::uint8_t>& bytes) {
    append(bytes.data(), bytes.size());
  }
  /// fsync the descriptor (a journal commit point).
  void sync();
  /// sync + close.
  void close();
  /// Close the descriptor WITHOUT syncing — crash simulation only.
  void abandon();

  bool is_open() const { return fd_ >= 0; }
  std::uint64_t bytes_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t written_ = 0;
};

bool file_exists(const std::string& path);

/// Whole-file read; throws DurabilityError when unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Atomic replace: write `<path>.tmp`, fsync, invoke `between` (the
/// mid-snapshot crash hook — it may throw, leaving only the .tmp behind),
/// rename over `path`, fsync the parent directory.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes,
                       const std::function<void()>& between = {});

/// mkdir -p for one level; no-op when the directory exists.
void ensure_dir(const std::string& path);

/// Regular-file names in `path`, sorted (deterministic retention order).
std::vector<std::string> list_dir(const std::string& path);

/// Delete a file; no-op when absent.
void remove_file(const std::string& path);

}  // namespace arcadia::durability
