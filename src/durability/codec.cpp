#include "durability/codec.hpp"

#include <array>

#include "durability/io.hpp"

namespace arcadia::durability {

namespace {

// Value tags. Symbols and strings are distinct tags so decode restores the
// exact variant alternative (equality would hold either way, but gauge
// hot paths rely on symbol-typed values staying symbols).
constexpr std::uint8_t kTagBool = 0;
constexpr std::uint8_t kTagInt = 1;
constexpr std::uint8_t kTagDouble = 2;
constexpr std::uint8_t kTagSymbol = 3;
constexpr std::uint8_t kTagString = 4;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void Encoder::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::value(const events::Value& v) {
  if (v.is_bool()) {
    u8(kTagBool);
    boolean(v.as_bool());
  } else if (v.is_int()) {
    u8(kTagInt);
    i64(v.as_int());
  } else if (v.is_double()) {
    u8(kTagDouble);
    f64(v.as_double());
  } else if (v.is_symbol()) {  // before is_string(): symbols satisfy both
    u8(kTagSymbol);
    str(v.as_symbol().view());
  } else {
    u8(kTagString);
    str(v.as_string());
  }
}

void Encoder::op(const model::OpRecord& op) {
  u8(static_cast<std::uint8_t>(op.kind));
  u32(static_cast<std::uint32_t>(op.scope.size()));
  for (const auto& s : op.scope) str(s);
  str(op.element);
  str(op.sub);
  str(op.type_name);
  str(op.property);
  value(op.value);
  str(op.attachment.component);
  str(op.attachment.port);
  str(op.attachment.connector);
  str(op.attachment.role);
  u8(static_cast<std::uint8_t>(op.element_kind));
  value(op.prev_value);
  boolean(op.had_prev);
}

void Decoder::need(std::size_t n) const {
  if (remaining() < n) {
    throw DurabilityError("decode underrun: need " + std::to_string(n) +
                          " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t Decoder::u8() {
  need(1);
  return *p_++;
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
  return v;
}

double Decoder::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Decoder::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(p_), n);
  p_ += n;
  return s;
}

events::Value Decoder::value() {
  switch (u8()) {
    case kTagBool:
      return events::Value(boolean());
    case kTagInt:
      return events::Value(i64());
    case kTagDouble:
      return events::Value(f64());
    case kTagSymbol:
      // Re-interning restores symbol identity; ids are process-local, the
      // text is the durable form.
      return events::Value(util::Symbol::intern(str()));
    case kTagString:
      return events::Value(str());
    default:
      throw DurabilityError("decode: unknown Value tag");
  }
}

model::OpRecord Decoder::op() {
  model::OpRecord op;
  const std::uint8_t kind = u8();
  if (kind > static_cast<std::uint8_t>(model::OpKind::SetProperty)) {
    throw DurabilityError("decode: unknown OpKind tag " + std::to_string(kind));
  }
  op.kind = static_cast<model::OpKind>(kind);
  const std::uint32_t scopes = u32();
  op.scope.reserve(scopes);
  for (std::uint32_t i = 0; i < scopes; ++i) op.scope.push_back(str());
  op.element = str();
  op.sub = str();
  op.type_name = str();
  op.property = str();
  op.value = value();
  op.attachment.component = str();
  op.attachment.port = str();
  op.attachment.connector = str();
  op.attachment.role = str();
  const std::uint8_t ek = u8();
  if (ek > static_cast<std::uint8_t>(model::ElementKind::System)) {
    throw DurabilityError("decode: unknown ElementKind tag");
  }
  op.element_kind = static_cast<model::ElementKind>(ek);
  op.prev_value = value();
  op.had_prev = boolean();
  return op;
}

}  // namespace arcadia::durability
