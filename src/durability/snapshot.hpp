// Periodic snapshots: a point-in-time capture of every shard's model,
// gauge-channel liveness, health-FSM state, and fault-plane RNG stream
// positions. Snapshots are written atomically (tmp + fsync + rename via
// durability/io) and named snap-<zero-padded lsn>.arcs so lexical order is
// LSN order; a retention policy keeps the newest N. A snapshot is advisory
// under recovery-by-replay — restore verifies the re-executed model against
// it — and authoritative for arcreplay, which uses snapshot 0 plus the op
// stream to reconstruct the model at any LSN.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "durability/codec.hpp"
#include "util/deterministic_rng.hpp"
#include "util/units.hpp"

namespace arcadia::durability {

inline constexpr char kSnapshotMagic[4] = {'A', 'R', 'C', 'S'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// One gauge channel's monitoring state (mirrors GaugeManager's watchdog
/// bookkeeping; enough to diff liveness across a crash).
struct GaugeState {
  std::string id;
  bool live = false;
  bool suspect = false;
  SimTime last_report;
};

/// One shard's durable state. `shard` 0 is the solo framework; fleets tag
/// each tenant with its index.
struct ShardSnapshot {
  std::uint32_t shard = 0;
  std::string name;
  std::vector<std::uint8_t> model;  ///< canonical encoding (model_codec)
  std::uint64_t model_digest = 0;
  std::vector<GaugeState> gauges;
  std::uint8_t health = 0;  ///< core::ShardHealth (0 = Healthy)
  std::vector<Rng::State> rng_streams;  ///< fault-plane stream positions
  std::uint64_t repairs_committed = 0;
};

struct Snapshot {
  std::uint64_t lsn = 0;  ///< last LSN journaled before the capture
  SimTime at;
  std::vector<ShardSnapshot> shards;
};

/// "snap-<16-digit lsn>.arcs".
std::string snapshot_file_name(std::uint64_t lsn);

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap);
Snapshot decode_snapshot(const std::vector<std::uint8_t>& bytes);

/// Atomic write into `dir`; returns the file name. `between` runs after the
/// tmp file is durable and before the rename (the mid-snapshot crash hook).
std::string write_snapshot(const std::string& dir, const Snapshot& snap,
                           const std::function<void()>& between = {});

Snapshot load_snapshot(const std::string& path);

/// Snapshot file names in `dir`, ascending LSN.
std::vector<std::string> list_snapshots(const std::string& dir);

/// Delete all but the newest `keep` snapshots.
void prune_snapshots(const std::string& dir, std::size_t keep);

}  // namespace arcadia::durability
