#include "durability/plane.hpp"

#include <chrono>
#include <cstring>

#include "util/log.hpp"

namespace arcadia::durability {

namespace {

/// Accumulates wall-clock spent inside a plane entry point; see
/// DurabilityPlane::wall_s(). Mirrors ManagerStats::check_wall_s.
class ScopedWall {
 public:
  explicit ScopedWall(double& acc)
      : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedWall() {
    acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0_)
                .count();
  }
  ScopedWall(const ScopedWall&) = delete;
  ScopedWall& operator=(const ScopedWall&) = delete;

 private:
  double& acc_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

DurabilityPlane::DurabilityPlane(Options options)
    : options_(std::move(options)) {
  if (!options_.enabled()) {
    throw DurabilityError("DurabilityPlane constructed with empty dir");
  }
  ensure_dir(options_.dir);

  const std::string path = journal_path();
  if (file_exists(path)) {
    // A previous run's journal: its valid prefix becomes the catchup
    // reference the re-executing run must reproduce byte-for-byte.
    const std::vector<std::uint8_t> bytes = read_file(path);
    JournalReadResult prior = read_journal_bytes(bytes);
    if (prior.torn) {
      reference_warning_ = prior.warning;
      ARC_WARN << "durability: truncating torn journal tail (" << prior.warning
               << "); recovering to LSN "
               << (prior.records.empty() ? 0 : prior.records.back().lsn);
    }
    reference_.assign(bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(
                                          prior.valid_bytes));
    if (!prior.records.empty()) {
      reference_horizon_ = prior.records.back().at;
      reference_last_lsn_ = prior.records.back().lsn;
    }
  }

  writer_.create(path);
  const std::vector<std::uint8_t> header = journal_header();
  verify_against_reference(header);
  writer_.append(header);
}

DurabilityPlane::~DurabilityPlane() {
  if (abandoned_ || !writer_.is_open()) return;
  try {
    close(last_time_);
  } catch (...) {
    // Destructor: a failed final sync must not terminate; the journal's
    // valid prefix up to the last successful sync is still recoverable.
  }
}

void DurabilityPlane::verify_against_reference(
    const std::vector<std::uint8_t>& frame) {
  if (ref_pos_ >= reference_.size()) return;
  const std::size_t remaining = reference_.size() - ref_pos_;
  if (remaining < frame.size() ||
      std::memcmp(reference_.data() + ref_pos_, frame.data(), frame.size()) !=
          0) {
    throw RecoveryError(
        "replay diverged from the on-disk journal at byte offset " +
        std::to_string(ref_pos_) + " (LSN " + std::to_string(lsn_) +
        "): the restored run is not reproducing the journaled history — "
        "config, seed, or code changed since the crash");
  }
  ref_pos_ += frame.size();
}

void DurabilityPlane::append(JournalRecord record) {
  if (abandoned_) return;
  record.lsn = ++lsn_;
  if (record.at > last_time_) last_time_ = record.at;
  const std::vector<std::uint8_t> frame = encode_frame(record);
  verify_against_reference(frame);
  pending_.insert(pending_.end(), frame.begin(), frame.end());
  ++records_written_;
  // Backstop so a long quiet stretch between commits cannot grow the
  // buffer without bound (write without sync — still one durability
  // point per group commit).
  if (pending_.size() >= (1u << 18)) commit_pending();
}

void DurabilityPlane::commit_pending() {
  if (pending_.empty()) return;
  writer_.append(pending_);
  pending_.clear();
}

void DurabilityPlane::flush_gauges(SimTime at) {
  for (std::uint32_t shard = 0; shard < gauge_buffers_.size(); ++shard) {
    auto& buffer = gauge_buffers_[shard];
    if (buffer.empty()) continue;
    JournalRecord record;
    record.type = RecordType::GaugeBatch;
    record.at = at;
    record.shard = shard;
    record.gauges.reserve(buffer.size());
    for (const BufferedGauge& g : buffer) {
      GaugeDelta delta;
      delta.at = g.at;
      delta.element = g.element.str();
      delta.sub = g.sub.str();
      delta.property = g.property.str();
      delta.value = g.value;
      record.gauges.push_back(std::move(delta));
    }
    buffer.clear();
    append(std::move(record));
  }
  buffered_gauges_ = 0;
}

void DurabilityPlane::on_ops(std::uint32_t shard, SimTime at,
                             std::uint64_t repair_index, bool compensation,
                             const std::vector<model::OpRecord>& ops) {
  if (abandoned_) return;
  ScopedWall wall(wall_s_);
  flush_gauges(at);
  JournalRecord record;
  record.type = RecordType::OpBatch;
  record.at = at;
  record.shard = shard;
  record.repair_index = repair_index;
  record.compensation = compensation;
  record.ops = ops;
  append(std::move(record));
  // An op batch is a commit the translator is about to act on; group
  // commit writes + syncs it unless a sync already happened within
  // sync_interval of sim-time (see Options::sync_interval for why this
  // is safe).
  if (last_sync_time_ < SimTime::zero() ||
      at - last_sync_time_ >= options_.sync_interval) {
    commit_pending();
    writer_.sync();
    last_sync_time_ = at;
  }
}

void DurabilityPlane::on_plan_event(std::uint32_t shard, SimTime at,
                                    const std::string& phase,
                                    std::uint64_t repair_index,
                                    std::uint64_t steps) {
  if (abandoned_) return;
  ScopedWall wall(wall_s_);
  flush_gauges(at);
  JournalRecord record;
  record.type = RecordType::PlanEvent;
  record.at = at;
  record.shard = shard;
  record.phase = phase;
  record.repair_index = repair_index;
  record.plan_steps = steps;
  append(std::move(record));
}

void DurabilityPlane::on_gauge_applied(std::uint32_t shard, SimTime at,
                                       util::Symbol element, util::Symbol sub,
                                       util::Symbol property,
                                       const events::Value& value) {
  if (abandoned_) return;
  ScopedWall wall(wall_s_);
  if (gauge_buffers_.size() <= shard) gauge_buffers_.resize(shard + 1);
  auto& buffer = gauge_buffers_[shard];
  if (at > last_time_) last_time_ = at;
  // Coalesce: a repeat write to the same key within the batch window just
  // refreshes its value (see BufferedGauge). First-seen order is kept so
  // the encoded batch is deterministic.
  for (BufferedGauge& g : buffer) {
    if (g.element == element && g.sub == sub && g.property == property) {
      g.at = at;
      g.value = value;
      return;
    }
  }
  buffer.push_back({at, element, sub, property, value});
  if (++buffered_gauges_ >= options_.gauge_batch_cap) flush_gauges(at);
}

void DurabilityPlane::take_snapshot(SimTime at,
                                    std::vector<ShardSnapshot> shards) {
  if (abandoned_) return;
  ScopedWall wall(wall_s_);
  flush_gauges(at);

  // Journal the fault-plane stream positions first: a reader that trusts
  // the snapshot can cross-check the RNG state it is resuming into.
  JournalRecord rng;
  rng.type = RecordType::RngPositions;
  rng.at = at;
  rng.shard = 0;
  for (const auto& shard : shards) {
    rng.rng_streams.insert(rng.rng_streams.end(), shard.rng_streams.begin(),
                           shard.rng_streams.end());
  }
  append(std::move(rng));

  Snapshot snap;
  snap.lsn = lsn_;
  snap.at = at;
  snap.shards = std::move(shards);

  Encoder digests;
  for (const auto& shard : snap.shards) digests.u64(shard.model_digest);
  const std::uint64_t combined = fnv1a(digests.bytes());

  std::function<void()> between;
  if (crash_armed_ && snapshot_crash_hook_) {
    between = [this] {
      crash_armed_ = false;
      snapshot_crash_hook_();  // throws fault::CrashSignal in crash tests
    };
  }
  const std::string name = write_snapshot(options_.dir, snap, between);

  JournalRecord mark;
  mark.type = RecordType::SnapshotMark;
  mark.at = at;
  mark.shard = 0;
  mark.snapshot_lsn = snap.lsn;
  mark.snapshot_file = name;
  mark.model_digest = combined;
  append(std::move(mark));
  // The snapshot file is already durable (write_file_atomic fsyncs it and
  // its directory); the mark is advisory — recovery discovers snapshots by
  // listing the directory — so it rides the next group commit instead of
  // paying a third sync here.
  commit_pending();

  prune_snapshots(options_.dir, options_.retention);
}

void DurabilityPlane::set_snapshot_crash_hook(std::function<void()> hook) {
  snapshot_crash_hook_ = std::move(hook);
}

void DurabilityPlane::flush(SimTime at) {
  if (abandoned_) return;
  ScopedWall wall(wall_s_);
  flush_gauges(at);
  commit_pending();
  writer_.sync();
  last_sync_time_ = at;
}

void DurabilityPlane::close(SimTime at) {
  if (abandoned_ || !writer_.is_open()) return;
  flush_gauges(at);
  commit_pending();
  writer_.close();
}

void DurabilityPlane::abandon() {
  abandoned_ = true;
  writer_.abandon();
}

}  // namespace arcadia::durability
