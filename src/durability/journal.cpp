#include "durability/journal.hpp"

namespace arcadia::durability {

const char* to_string(RecordType type) {
  switch (type) {
    case RecordType::OpBatch:
      return "op-batch";
    case RecordType::PlanEvent:
      return "plan-event";
    case RecordType::GaugeBatch:
      return "gauge-batch";
    case RecordType::RngPositions:
      return "rng-positions";
    case RecordType::SnapshotMark:
      return "snapshot-mark";
  }
  return "unknown";
}

namespace {

void encode_body(Encoder& enc, const JournalRecord& r) {
  switch (r.type) {
    case RecordType::OpBatch:
      enc.u64(r.repair_index);
      enc.boolean(r.compensation);
      enc.u32(static_cast<std::uint32_t>(r.ops.size()));
      for (const auto& op : r.ops) enc.op(op);
      break;
    case RecordType::PlanEvent:
      enc.str(r.phase);
      enc.u64(r.repair_index);
      enc.u64(r.plan_steps);
      break;
    case RecordType::GaugeBatch:
      enc.u32(static_cast<std::uint32_t>(r.gauges.size()));
      for (const auto& g : r.gauges) {
        enc.sim_time(g.at);
        enc.str(g.element);
        enc.str(g.sub);
        enc.str(g.property);
        enc.value(g.value);
      }
      break;
    case RecordType::RngPositions:
      enc.u32(static_cast<std::uint32_t>(r.rng_streams.size()));
      for (const auto& st : r.rng_streams) {
        for (const std::uint64_t word : st.s) enc.u64(word);
        enc.boolean(st.have_spare);
        enc.f64(st.spare);
      }
      break;
    case RecordType::SnapshotMark:
      enc.u64(r.snapshot_lsn);
      enc.str(r.snapshot_file);
      enc.u64(r.model_digest);
      break;
  }
}

void decode_body(Decoder& dec, JournalRecord& r) {
  switch (r.type) {
    case RecordType::OpBatch: {
      r.repair_index = dec.u64();
      r.compensation = dec.boolean();
      const std::uint32_t n = dec.u32();
      r.ops.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) r.ops.push_back(dec.op());
      break;
    }
    case RecordType::PlanEvent:
      r.phase = dec.str();
      r.repair_index = dec.u64();
      r.plan_steps = dec.u64();
      break;
    case RecordType::GaugeBatch: {
      const std::uint32_t n = dec.u32();
      r.gauges.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        GaugeDelta g;
        g.at = dec.sim_time();
        g.element = dec.str();
        g.sub = dec.str();
        g.property = dec.str();
        g.value = dec.value();
        r.gauges.push_back(std::move(g));
      }
      break;
    }
    case RecordType::RngPositions: {
      const std::uint32_t n = dec.u32();
      r.rng_streams.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        Rng::State st;
        for (auto& word : st.s) word = dec.u64();
        st.have_spare = dec.boolean();
        st.spare = dec.f64();
        r.rng_streams.push_back(st);
      }
      break;
    }
    case RecordType::SnapshotMark:
      r.snapshot_lsn = dec.u64();
      r.snapshot_file = dec.str();
      r.model_digest = dec.u64();
      break;
  }
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const JournalRecord& record) {
  Encoder payload;
  payload.u8(static_cast<std::uint8_t>(record.type));
  payload.u64(record.lsn);
  payload.sim_time(record.at);
  payload.u32(record.shard);
  encode_body(payload, record);

  Encoder frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload.bytes().data(), payload.size()));
  frame.raw(payload.bytes());
  return frame.take();
}

std::vector<std::uint8_t> journal_header() {
  Encoder enc;
  for (const char c : kJournalMagic) enc.u8(static_cast<std::uint8_t>(c));
  enc.u32(kJournalVersion);
  return enc.take();
}

JournalReadResult read_journal_bytes(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kJournalHeaderSize ||
      std::memcmp(bytes.data(), kJournalMagic, 4) != 0) {
    throw DurabilityError("not a journal (bad magic/short header)");
  }
  {
    Decoder header(bytes.data() + 4, 4);
    const std::uint32_t version = header.u32();
    if (version != kJournalVersion) {
      throw DurabilityError("journal format version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kJournalVersion) + ")");
    }
  }

  JournalReadResult result;
  result.valid_bytes = kJournalHeaderSize;
  std::size_t pos = kJournalHeaderSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      result.torn = true;
      result.warning = "torn frame header at offset " + std::to_string(pos);
      break;
    }
    Decoder head(bytes.data() + pos, 8);
    const std::uint32_t len = head.u32();
    const std::uint32_t crc = head.u32();
    if (bytes.size() - pos - 8 < len) {
      result.torn = true;
      result.warning = "torn frame payload at offset " + std::to_string(pos) +
                       " (need " + std::to_string(len) + " bytes)";
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 8;
    if (crc32(payload, len) != crc) {
      result.torn = true;
      result.warning = "CRC mismatch at offset " + std::to_string(pos);
      break;
    }
    JournalRecord record;
    try {
      Decoder dec(payload, len);
      const std::uint8_t type = dec.u8();
      if (type < 1 ||
          type > static_cast<std::uint8_t>(RecordType::SnapshotMark)) {
        throw DurabilityError("unknown record type " + std::to_string(type));
      }
      record.type = static_cast<RecordType>(type);
      record.lsn = dec.u64();
      record.at = dec.sim_time();
      record.shard = dec.u32();
      decode_body(dec, record);
    } catch (const DurabilityError& e) {
      // A CRC-valid but undecodable payload means a format bug or version
      // skew, not a torn write — still refuse to apply it.
      result.torn = true;
      result.warning = std::string("undecodable frame at offset ") +
                       std::to_string(pos) + ": " + e.what();
      break;
    }
    result.records.push_back(std::move(record));
    pos += 8 + len;
    result.valid_bytes = pos;
  }
  return result;
}

JournalReadResult read_journal(const std::string& path) {
  return read_journal_bytes(read_file(path));
}

}  // namespace arcadia::durability
